#!/bin/sh
# Tier-1 thread-sanitizer leg: build the sharded-kernel and fabric test
# suites under the `tsan` preset (see CMakePresets.json) and run them,
# plus a multi-threaded hlcs_fabric verify run.  Any data race makes the
# binary exit non-zero and fails this test.  The build-tsan tree is
# incremental, so after the first run this costs only the re-link of
# whatever changed.
#
# Usage: tsan_shard_suite.sh <source-dir> [jobs]
set -eu

SRC="${1:?usage: tsan_shard_suite.sh <source-dir> [jobs]}"
JOBS="${2:-2}"

TARGETS="test_sim_shard test_fabric hlcs_fabric"

cd "$SRC"
cmake --preset tsan >/dev/null
# gtest discovery runs each fresh binary at build time, so a racy
# initialization can already fail here.
cmake --build build-tsan -j "$JOBS" --target $TARGETS

status=0
for t in test_sim_shard test_fabric; do
  echo "== tsan: $t"
  if ! "./build-tsan/tests/$t" --gtest_brief=1; then
    status=1
  fi
done

echo "== tsan: hlcs_fabric --verify"
if ! ./build-tsan/tools/hlcs_fabric --segments 8 --shards 4 --threads 4 \
    --ops 4 --run 1500 --verify; then
  status=1
fi
exit $status
