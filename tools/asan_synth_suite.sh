#!/bin/sh
# Tier-1 sanitizer leg: build the synthesis test suite under the `asan`
# preset (ASan+UBSan, see CMakePresets.json) and run every binary.  Any
# sanitizer report makes the binary exit non-zero and fails this test.
# The build-asan tree is incremental, so after the first run this costs
# only the re-link of whatever changed.
#
# Usage: asan_synth_suite.sh <source-dir> [jobs]
set -eu

SRC="${1:?usage: asan_synth_suite.sh <source-dir> [jobs]}"
JOBS="${2:-2}"

TARGETS="test_synth_expr test_synth_object_interp test_synth_netlist_sim \
test_synth_comm_synth test_synth_verilog_report test_synth_poly \
test_synth_equiv test_synth_golden test_synth_fuzz test_synth_optimize \
test_synth_parser test_synth_tape test_synth_batch test_synth_jit \
test_vcd_reader \
test_trace_roundtrip \
test_check_property test_check_lowering \
test_osss_arbitration test_contend \
test_sim_shard test_fabric \
test_tlm test_tlm_lt"

cd "$SRC"
cmake --preset asan >/dev/null
# gtest discovery runs each fresh binary at build time, so a sanitizer
# hit can already fail here.
cmake --build build-asan -j "$JOBS" --target $TARGETS

status=0
for t in $TARGETS; do
  echo "== asan: $t"
  if ! "./build-asan/tests/$t" --gtest_brief=1; then
    status=1
  fi
done
exit $status
