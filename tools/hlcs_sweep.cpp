// hlcs_sweep -- design-space exploration driver for the FW1 experiment.
//
// Sweeps arbitration policy x client count over a clocked global object
// and reports mean/max grant latency and throughput per point.  The
// sweep runs on a ParallelSweep thread pool: each point is a private
// deterministic Kernel, so --threads changes wall-clock time only, never
// the numbers.  --verify demonstrates that by re-running serially and
// comparing every transcript byte for byte.
//
// --equiv [lanes] switches to the fig.4 viability loop instead: every
// policy x client point is synthesised to RT level and verified against
// the interpreted specification with the batched lane-parallel
// equivalence engine, points sharded over the same worker pool.
//
// --lt switches to the loosely-timed refinement sweep: workload kind x
// quantum length, each point replaying the same seeded stimuli through
// the quantum-decoupled LT engine and the functional reference and
// requiring transcript equality.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "hlcs/osss/osss.hpp"
#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/sim/sweep.hpp"
#include "hlcs/synth/synth.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/verify/compare.hpp"

namespace {

using namespace hlcs;
using namespace hlcs::sim::literals;
using osss::PolicyKind;

constexpr PolicyKind kPolicies[] = {PolicyKind::Fifo, PolicyKind::RoundRobin,
                                    PolicyKind::StaticPriority,
                                    PolicyKind::Random};
constexpr int kClientCounts[] = {1, 2, 4, 8, 16, 32};

struct SweepConfig {
  std::uint64_t cycles = 2000;
  bool cycles_set = false;
};

void run_point(std::size_t index, sim::Kernel& k, std::string& transcript,
               const SweepConfig& cfg) {
  const std::size_t n_clients = std::size(kClientCounts);
  const PolicyKind policy = kPolicies[index / n_clients];
  const int clients = kClientCounts[index % n_clients];

  sim::Clock clk(k, "clk", 10_ns);
  // Each point gets its own policy seed derived from the point index, so
  // RandomArbitration streams are decorrelated across points yet the
  // whole sweep stays reproducible at any thread count.
  osss::SharedObject<std::uint64_t> obj(
      k, "obj", clk, osss::make_policy(policy, sim::lane_seed(0xF1F0, index)),
      0);
  for (int c = 0; c < clients; ++c) {
    auto client = obj.make_client("c" + std::to_string(c));
    k.spawn("p" + std::to_string(c), [&k, client]() -> sim::Task {
      for (;;) co_await client.call([](std::uint64_t& v) { ++v; });
    });
  }
  k.run_for(sim::Time::ns(cfg.cycles * 10));

  const auto& st = obj.stats();
  std::uint64_t waited = 0, granted = 0, max_wait = 0;
  for (const auto& cs : st.clients) {
    waited += cs.wait_total;
    granted += cs.granted;
    if (cs.wait_max > max_wait) max_wait = cs.wait_max;
  }
  const double mean =
      granted ? static_cast<double>(waited) / static_cast<double>(granted) : 0;
  char line[160];
  std::snprintf(line, sizeof(line),
                "%-15s clients=%-3d grants=%llu mean_wait=%.3f max_wait=%llu "
                "pool_hits=%llu pool_misses=%llu\n",
                osss::policy_name(policy).c_str(), clients,
                static_cast<unsigned long long>(st.grants), mean,
                static_cast<unsigned long long>(max_wait),
                static_cast<unsigned long long>(st.pending_pool_hits),
                static_cast<unsigned long long>(st.pending_pool_misses));
  transcript += line;
}

/// A small comb-dominated shared object for the --equiv sweep: xor/and/
/// mux datapaths keep the batch engine on the bit-parallel path, so the
/// sweep exercises exactly what the fig.4 loop batches.
synth::ObjectDesc make_equiv_object() {
  using namespace hlcs::synth;
  ObjectDesc d("sweep_mix");
  auto& A = d.arena();
  const std::uint32_t acc = d.add_var("acc", 16, 0x1234);
  const std::uint32_t flags = d.add_var("flags", 8, 0xA5);
  {
    auto b = d.add_method("mix");
    b.arg("x", 16);
    ExprId x = A.arg(0, 16);
    ExprId a = A.var(acc, 16);
    ExprId sel = A.bin(ExprOp::Eq, A.slice(x, 0, 2), A.cst(3, 2));
    b.assign(acc, A.mux(sel, A.bin(ExprOp::Xor, a, x),
                        A.bin(ExprOp::And, a, A.un(ExprOp::Not, x))));
    b.assign(flags,
             A.bin(ExprOp::Xor, A.var(flags, 8), A.slice(x, 8, 8)));
    b.returns(A.bin(ExprOp::Or, A.var(flags, 8), A.slice(a, 0, 8)), 8);
  }
  {
    auto b = d.add_method("poke");
    b.arg("m", 8);
    b.assign(flags, A.bin(ExprOp::Or, A.var(flags, 8), A.arg(0, 8)));
  }
  return d;
}

void run_equiv_point(std::size_t index, std::string& transcript,
                     const synth::ObjectDesc& desc, const SweepConfig& cfg,
                     std::size_t lanes, unsigned super, bool jit) {
  using namespace hlcs::synth;
  const std::size_t n_clients = std::size(kClientCounts);
  const PolicyKind policy = kPolicies[index / n_clients];
  const int clients = kClientCounts[index % n_clients];
  // One root seed per point; lanes derive their streams via splitmix64,
  // so the whole sweep is reproducible from the transcript alone.
  const EquivResult r = check_equivalence(
      desc,
      SynthOptions{.clients = static_cast<std::size_t>(clients),
                   .policy = policy},
      EquivOptions{.cycles = cfg.cycles, .seed = 0x5EED0 + index,
                   .reset_percent = 3, .lanes = lanes, .batch = true,
                   .superlanes = super, .jit = jit});
  char line[160];
  std::snprintf(line, sizeof(line),
                "%-15s clients=%-3d equiv=%s lanes=%zu cycles=%zu "
                "grants=%zu scalar_frac=%.3f%s\n",
                osss::policy_name(policy).c_str(), clients,
                r.equal ? "PASS" : "FAIL", r.lanes, r.cycles, r.grants,
                r.batch_scalar_fraction,
                jit ? (r.jit_stats.enabled ? " jit=on" : " jit=off") : "");
  transcript += line;
  if (!r.equal) {
    transcript += "  first mismatch: " + r.first_mismatch + "\n";
  }
}

// ----- loosely-timed refinement sweep (--lt) ---------------------------

constexpr const char* kLtWorkloads[] = {"sequential", "random", "dma"};
constexpr std::uint64_t kLtQuanta[] = {1, 16, 1024};  // commands per quantum

std::vector<pattern::CommandType> lt_workload(std::size_t kind,
                                              std::size_t transactions) {
  const tlm::WorkloadConfig cfg{.base = 0x1000, .span = 0x1000,
                                .seed = 0xBADC0DE};
  switch (kind) {
    case 0: return tlm::sequential_workload(cfg, transactions);
    case 1: return tlm::random_workload(cfg, transactions);
    default:
      return tlm::dma_workload(cfg, transactions / 8,
                               /*block_words=*/16);
  }
}

void run_lt_point(std::size_t index, std::string& transcript,
                  const SweepConfig& cfg) {
  const std::size_t n_quanta = std::size(kLtQuanta);
  const std::size_t kind = index / n_quanta;
  const std::uint64_t quantum_cmds = kLtQuanta[index % n_quanta];
  const auto workload = lt_workload(kind, cfg.cycles);

  // Functional reference.
  sim::Kernel fn_k;
  tlm::TlmMemory fn_mem(0x1000, 0x1000);
  pattern::FunctionalBusInterface fn_bus(fn_k, "iface", fn_mem);
  pattern::Application fn_app(fn_k, "app", fn_bus, workload);
  fn_k.run_for(sim::Time::ms(100));

  // LT fast path: the quantum is expressed in commands' worth of the
  // default 60ns single-word cost, matching the tier-1 suite's points.
  pattern::LtConfig lt_cfg;
  lt_cfg.quantum = sim::Time::ns(60) * quantum_cmds;
  sim::Kernel lt_k;
  tlm::TlmMemory lt_mem(0x1000, 0x1000);
  pattern::LtBusInterface lt_bus(lt_k, "lt", lt_mem, lt_cfg);
  pattern::LtStimuliEngine lt_eng(lt_bus, workload);
  lt_k.run_for(sim::Time::ms(100));

  const bool done = fn_app.done() && lt_eng.done();
  const auto cmp =
      verify::compare_functional(fn_app.transcript(), lt_eng.transcript());
  const auto& ts = lt_bus.tlm_stats();
  char line[200];
  std::snprintf(
      line, sizeof(line),
      "%-10s quantum=%-5llu txns=%-5llu lt=%s syncs=%llu warps=%llu "
      "dmi_hits=%llu dmi_misses=%llu batched=%llu\n",
      kLtWorkloads[kind], static_cast<unsigned long long>(quantum_cmds),
      static_cast<unsigned long long>(ts.transactions),
      done && cmp ? "PASS" : "FAIL",
      static_cast<unsigned long long>(ts.syncs),
      static_cast<unsigned long long>(ts.warps),
      static_cast<unsigned long long>(ts.dmi_hits),
      static_cast<unsigned long long>(ts.dmi_misses),
      static_cast<unsigned long long>(ts.batched_guarded_calls));
  transcript += line;
  if (!cmp) transcript += "  first difference: " + cmp.first_difference + "\n";
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 0;  // 0 = hardware concurrency
  bool verify = false;
  bool equiv_mode = false;
  bool lt_mode = false;
  std::size_t equiv_lanes = 64;
  unsigned equiv_super = 1;
  bool equiv_jit = false;
  SweepConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--equiv")) {
      equiv_mode = true;
      // Optional lane count: consume the next argv only if numeric.
      if (i + 1 < argc && argv[i + 1][0] != '\0' &&
          std::strspn(argv[i + 1], "0123456789") ==
              std::strlen(argv[i + 1])) {
        equiv_lanes = static_cast<std::size_t>(std::strtoul(argv[++i],
                                                            nullptr, 10));
      }
    } else if (!std::strcmp(argv[i], "--super") && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' ||
          (v != 0 && v != 1 && v != 4 && v != 8)) {
        std::fprintf(stderr,
                     "error: --super expects 1, 4, 8 or 0 (auto), got '%s'\n",
                     argv[i]);
        return 2;
      }
      equiv_super = static_cast<unsigned>(v);
    } else if (!std::strcmp(argv[i], "--jit")) {
      equiv_jit = true;  // --equiv blocks run the native tape JIT
    } else if (!std::strcmp(argv[i], "--lt")) {
      lt_mode = true;
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "error: --threads expects a number, got '%s'\n",
                     argv[i]);
        return 2;
      }
      threads = static_cast<unsigned>(v);
    } else if (!std::strcmp(argv[i], "--cycles") && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "error: --cycles expects a number, got '%s'\n",
                     argv[i]);
        return 2;
      }
      cfg.cycles = static_cast<std::uint64_t>(v);
      cfg.cycles_set = true;
    } else if (!std::strcmp(argv[i], "--verify")) {
      verify = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--cycles N] [--verify] "
                   "[--equiv [lanes]] [--super K] [--jit] [--lt]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t points = std::size(kPolicies) * std::size(kClientCounts);

  if (lt_mode) {
    // Loosely-timed refinement sweep: workload kind x quantum length,
    // every point checked against the functional reference.  Points are
    // private kernels, so any thread count gives the same transcript;
    // --cycles sets the per-point transaction count.
    if (!cfg.cycles_set) cfg.cycles = 200;
    const std::size_t lt_points =
        std::size(kLtWorkloads) * std::size(kLtQuanta);
    std::vector<std::string> lines(lt_points);
    sim::parallel_for_indexed(lt_points, threads, [&](std::size_t i) {
      run_lt_point(i, lines[i], cfg);
    });
    std::size_t passed = 0;
    for (const std::string& l : lines) {
      std::fputs(l.c_str(), stdout);
      if (l.find("lt=PASS") != std::string::npos) ++passed;
    }
    if (verify) {
      std::vector<std::string> serial(lt_points);
      sim::parallel_for_indexed(lt_points, 1, [&](std::size_t i) {
        run_lt_point(i, serial[i], cfg);
      });
      for (std::size_t i = 0; i < lt_points; ++i) {
        if (serial[i] != lines[i]) {
          std::fprintf(stderr, "VERIFY FAILED at point %zu\n", i);
          return 1;
        }
      }
      std::puts("verify: serial and threaded lt sweeps identical");
    }
    std::printf("lt sweep: %zu/%zu points PASS\n", passed, lt_points);
    return passed == lt_points ? 0 : 1;
  }

  if (equiv_mode) {
    // Fig.4 viability sweep: synthesise + batch-verify each point.  The
    // per-point verdicts are deterministic (root seed is the point
    // index), so any thread count produces the same transcript.
    if (!cfg.cycles_set) cfg.cycles = 200;  // per lane
    const synth::ObjectDesc desc = make_equiv_object();
    std::vector<std::string> lines(points);
    sim::parallel_for_indexed(points, threads, [&](std::size_t i) {
      run_equiv_point(i, lines[i], desc, cfg, equiv_lanes, equiv_super,
                      equiv_jit);
    });
    bool all_pass = true;
    for (const std::string& l : lines) {
      std::fputs(l.c_str(), stdout);
      if (l.find("equiv=PASS") == std::string::npos) all_pass = false;
    }
    if (verify) {
      std::vector<std::string> serial(points);
      sim::parallel_for_indexed(points, 1, [&](std::size_t i) {
        run_equiv_point(i, serial[i], desc, cfg, equiv_lanes, equiv_super,
                        equiv_jit);
      });
      for (std::size_t i = 0; i < points; ++i) {
        if (serial[i] != lines[i]) {
          std::fprintf(stderr, "VERIFY FAILED at point %zu\n", i);
          return 1;
        }
      }
      std::puts("verify: serial and threaded equiv sweeps identical");
    }
    return all_pass ? 0 : 1;
  }

  sim::ParallelSweep sweep(
      [&cfg](std::size_t i, sim::Kernel& k, std::string& t) {
        run_point(i, k, t, cfg);
      });

  auto results = sweep.run(points, threads);
  for (const auto& r : results) std::fputs(r.transcript.c_str(), stdout);

  if (verify) {
    auto serial = sweep.run(points, 1);
    for (std::size_t i = 0; i < points; ++i) {
      if (serial[i].transcript != results[i].transcript ||
          !(serial[i].stats == results[i].stats) ||
          serial[i].end_time != results[i].end_time) {
        std::fprintf(stderr, "VERIFY FAILED at point %zu\n", i);
        return 1;
      }
    }
    std::puts("verify: serial and threaded sweeps identical");
  }
  return 0;
}
