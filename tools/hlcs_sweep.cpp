// hlcs_sweep -- design-space exploration driver for the FW1 experiment.
//
// Sweeps arbitration policy x client count over a clocked global object
// and reports mean/max grant latency and throughput per point.  The
// sweep runs on a ParallelSweep thread pool: each point is a private
// deterministic Kernel, so --threads changes wall-clock time only, never
// the numbers.  --verify demonstrates that by re-running serially and
// comparing every transcript byte for byte.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "hlcs/osss/osss.hpp"
#include "hlcs/sim/sim.hpp"

namespace {

using namespace hlcs;
using namespace hlcs::sim::literals;
using osss::PolicyKind;

constexpr PolicyKind kPolicies[] = {PolicyKind::Fifo, PolicyKind::RoundRobin,
                                    PolicyKind::StaticPriority,
                                    PolicyKind::Random};
constexpr int kClientCounts[] = {1, 2, 4, 8, 16, 32};

struct SweepConfig {
  std::uint64_t cycles = 2000;
};

void run_point(std::size_t index, sim::Kernel& k, std::string& transcript,
               const SweepConfig& cfg) {
  const std::size_t n_clients = std::size(kClientCounts);
  const PolicyKind policy = kPolicies[index / n_clients];
  const int clients = kClientCounts[index % n_clients];

  sim::Clock clk(k, "clk", 10_ns);
  osss::SharedObject<std::uint64_t> obj(k, "obj", clk,
                                        osss::make_policy(policy), 0);
  for (int c = 0; c < clients; ++c) {
    auto client = obj.make_client("c" + std::to_string(c));
    k.spawn("p" + std::to_string(c), [&k, client]() -> sim::Task {
      for (;;) co_await client.call([](std::uint64_t& v) { ++v; });
    });
  }
  k.run_for(sim::Time::ns(cfg.cycles * 10));

  const auto& st = obj.stats();
  std::uint64_t waited = 0, granted = 0, max_wait = 0;
  for (const auto& cs : st.clients) {
    waited += cs.wait_total;
    granted += cs.granted;
    if (cs.wait_max > max_wait) max_wait = cs.wait_max;
  }
  const double mean =
      granted ? static_cast<double>(waited) / static_cast<double>(granted) : 0;
  char line[160];
  std::snprintf(line, sizeof(line),
                "%-15s clients=%-3d grants=%llu mean_wait=%.3f max_wait=%llu "
                "pool_hits=%llu pool_misses=%llu\n",
                osss::policy_name(policy).c_str(), clients,
                static_cast<unsigned long long>(st.grants), mean,
                static_cast<unsigned long long>(max_wait),
                static_cast<unsigned long long>(st.pending_pool_hits),
                static_cast<unsigned long long>(st.pending_pool_misses));
  transcript += line;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 0;  // 0 = hardware concurrency
  bool verify = false;
  SweepConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "error: --threads expects a number, got '%s'\n",
                     argv[i]);
        return 2;
      }
      threads = static_cast<unsigned>(v);
    } else if (!std::strcmp(argv[i], "--cycles") && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "error: --cycles expects a number, got '%s'\n",
                     argv[i]);
        return 2;
      }
      cfg.cycles = static_cast<std::uint64_t>(v);
    } else if (!std::strcmp(argv[i], "--verify")) {
      verify = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--cycles N] [--verify]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t points = std::size(kPolicies) * std::size(kClientCounts);
  sim::ParallelSweep sweep(
      [&cfg](std::size_t i, sim::Kernel& k, std::string& t) {
        run_point(i, k, t, cfg);
      });

  auto results = sweep.run(points, threads);
  for (const auto& r : results) std::fputs(r.transcript.c_str(), stdout);

  if (verify) {
    auto serial = sweep.run(points, 1);
    for (std::size_t i = 0; i < points; ++i) {
      if (serial[i].transcript != results[i].transcript ||
          !(serial[i].stats == results[i].stats) ||
          serial[i].end_time != results[i].end_time) {
        std::fprintf(stderr, "VERIFY FAILED at point %zu\n", i);
        return 1;
      }
    }
    std::puts("verify: serial and threaded sweeps identical");
  }
  return 0;
}
