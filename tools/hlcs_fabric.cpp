// hlcs_fabric -- generate and run a hierarchical multi-segment bus
// fabric (hlcs/fabric) on the sharded simulation kernel (hlcs/sim/shard).
//
//   hlcs_fabric --topo ring --segments 16 --shards 4 --threads 4
//   hlcs_fabric --segments 8 --verify          # serial vs sharded identity
//   hlcs_fabric --segments 4 --dump-topo       # deterministic topology dump
//
// Exit status is 0 only when every master finished, every DMA copy
// verified, and no protocol violations or property failures were seen
// (and, with --verify, when the sharded run is bit-identical to the
// serial reference).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hlcs/fabric/fabric.hpp"

using namespace hlcs;

namespace {

void usage() {
  std::printf(
      "usage: hlcs_fabric [options]\n"
      "  --topo ring|star      fabric topology (default ring)\n"
      "  --segments N          bus segments (default 4)\n"
      "  --masters N           masters per segment (default 2)\n"
      "  --targets N           targets per segment (default 2)\n"
      "  --shards N            kernel partitions (default 1)\n"
      "  --threads N           worker threads, 0 = hardware (default 1)\n"
      "  --ops N               commands per application master (default 12)\n"
      "  --blocks N            DMA blocks per channel (default 2)\n"
      "  --words N             DMA words per block (default 8)\n"
      "  --latency PS          bridge hop latency in ps (default 120000)\n"
      "  --run US              simulated microseconds (default 2000)\n"
      "  --seed S              workload seed (default 0xB001)\n"
      "  --checkers            attach a temporal property pack per segment\n"
      "  --stats               print per-shard engine statistics\n"
      "  --dump-topo           print the topology and exit (no simulation)\n"
      "  --trace DIR           write one VCD per shard under DIR\n"
      "  --verify              also run the serial reference and compare\n");
}

struct Args {
  fabric::FabricConfig cfg;
  std::uint64_t run_us = 2000;
  bool stats = false;
  bool dump_topo = false;
  bool verify = false;
  std::string trace_dir;
};

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string opt = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", opt.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (opt == "--topo") {
      const std::string t = value();
      if (t == "ring") {
        a.cfg.topo = fabric::Topology::Ring;
      } else if (t == "star") {
        a.cfg.topo = fabric::Topology::Star;
      } else {
        std::fprintf(stderr, "unknown topology '%s'\n", t.c_str());
        return false;
      }
    } else if (opt == "--segments") {
      a.cfg.segments = std::strtoull(value(), nullptr, 0);
    } else if (opt == "--masters") {
      a.cfg.masters = std::strtoull(value(), nullptr, 0);
    } else if (opt == "--targets") {
      a.cfg.targets = std::strtoull(value(), nullptr, 0);
    } else if (opt == "--shards") {
      a.cfg.shards = std::strtoull(value(), nullptr, 0);
    } else if (opt == "--threads") {
      a.cfg.threads = static_cast<unsigned>(std::strtoul(value(), nullptr, 0));
    } else if (opt == "--ops") {
      a.cfg.app_ops = std::strtoull(value(), nullptr, 0);
    } else if (opt == "--blocks") {
      a.cfg.blocks = std::strtoull(value(), nullptr, 0);
    } else if (opt == "--words") {
      a.cfg.words = std::strtoull(value(), nullptr, 0);
    } else if (opt == "--latency") {
      a.cfg.bridge_latency =
          sim::Time::ps(std::strtoull(value(), nullptr, 0));
    } else if (opt == "--run") {
      a.run_us = std::strtoull(value(), nullptr, 0);
    } else if (opt == "--seed") {
      a.cfg.seed = std::strtoull(value(), nullptr, 0);
    } else if (opt == "--checkers") {
      a.cfg.checkers = true;
    } else if (opt == "--stats") {
      a.stats = true;
    } else if (opt == "--dump-topo") {
      a.dump_topo = true;
    } else if (opt == "--trace") {
      a.trace_dir = value();
    } else if (opt == "--verify") {
      a.verify = true;
    } else if (opt == "--help" || opt == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", opt.c_str());
      return false;
    }
  }
  return true;
}

struct RunResult {
  bool done = false;
  std::string transcript;
  std::uint64_t digest = 0;
  std::size_t copy_errors = 0;
  std::size_t violations = 0;
  std::uint64_t check_fails = 0;
};

RunResult run_one(const Args& a, std::size_t shards, unsigned threads,
                  bool attach_trace) {
  fabric::FabricConfig cfg = a.cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  fabric::FabricSystem sys(cfg);
  if (attach_trace && !a.trace_dir.empty()) {
    for (const std::string& p : sys.attach_traces(a.trace_dir)) {
      std::printf("trace: %s\n", p.c_str());
    }
  }
  sys.run_for(sim::Time::us(a.run_us));
  sys.flush_traces();

  RunResult r;
  r.done = sys.all_done();
  r.transcript = sys.transcript();
  r.digest = sys.state_digest();
  r.copy_errors = sys.copy_errors();
  r.violations = sys.violations();
  r.check_fails = sys.check_fails();

  if (a.stats) {
    const auto& st = sys.engine().stats();
    std::printf("engine: %llu windows, window=%s, %u threads\n",
                static_cast<unsigned long long>(sys.engine().windows_run()),
                sys.engine().window().to_string().c_str(),
                sys.engine().threads());
    for (std::size_t i = 0; i < st.size(); ++i) {
      std::printf(
          "  shard %zu: %llu events, %llu deltas, %llu windows "
          "(%llu stalled), %llu msgs out, %llu msgs in, %.1f ms busy\n",
          i, static_cast<unsigned long long>(st[i].kernel.timed_actions),
          static_cast<unsigned long long>(st[i].kernel.deltas),
          static_cast<unsigned long long>(st[i].windows),
          static_cast<unsigned long long>(st[i].stalled_windows),
          static_cast<unsigned long long>(st[i].msgs_sent),
          static_cast<unsigned long long>(st[i].msgs_received),
          static_cast<double>(st[i].busy_ns) / 1e6);
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) {
    usage();
    return 2;
  }

  if (a.dump_topo) {
    fabric::FabricSystem sys(a.cfg);
    std::printf("%s", sys.dump_topology().c_str());
    return 0;
  }

  std::printf("fabric: topo=%s segments=%zu masters=%zu targets=%zu "
              "shards=%zu threads=%u\n",
              fabric::to_string(a.cfg.topo), a.cfg.segments, a.cfg.masters,
              a.cfg.targets, a.cfg.shards, a.cfg.threads);

  const RunResult r = run_one(a, a.cfg.shards, a.cfg.threads,
                              /*attach_trace=*/true);
  std::printf("done=%d copy_errors=%zu violations=%zu check_fails=%llu "
              "digest=%016llx\n",
              r.done, r.copy_errors, r.violations,
              static_cast<unsigned long long>(r.check_fails),
              static_cast<unsigned long long>(r.digest));

  bool ok = r.done && r.copy_errors == 0 && r.violations == 0 &&
            r.check_fails == 0;

  if (a.verify) {
    // The serial reference: everything on one kernel, one thread.
    const RunResult ref = run_one(a, 1, 1, /*attach_trace=*/false);
    const bool identical = ref.done == r.done &&
                           ref.transcript == r.transcript &&
                           ref.digest == r.digest;
    std::printf("verify vs serial reference: %s (digest %016llx vs %016llx)\n",
                identical ? "identical" : "DIVERGED",
                static_cast<unsigned long long>(r.digest),
                static_cast<unsigned long long>(ref.digest));
    ok = ok && identical;
  }

  std::printf("%s\n", ok ? "FABRIC PASS" : "FABRIC FAIL");
  return ok ? 0 : 1;
}
