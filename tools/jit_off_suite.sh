#!/bin/sh
# Tier-1 interpreter-only leg: configure a tree with -DHLCS_JIT=OFF (the
# emitter compiles out, host_supported() reports false, every JIT
# request silently falls back to the bytecode tape) and run the JIT
# parity suite plus the batch suite against it.  This is the proof that
# non-x86-64 hosts keep working: the same degenerate interpreter-vs-
# interpreter checks must pass with the backend absent.
#
# Usage: jit_off_suite.sh <source-dir> [jobs]
set -eu

SRC="${1:?usage: jit_off_suite.sh <source-dir> [jobs]}"
JOBS="${2:-2}"

TARGETS="test_synth_jit test_synth_batch"

cd "$SRC"
cmake -B build-nojit -S . -DCMAKE_BUILD_TYPE=Release -DHLCS_JIT=OFF >/dev/null
cmake --build build-nojit -j "$JOBS" --target $TARGETS

status=0
for t in $TARGETS; do
  echo "== nojit: $t"
  if ! "./build-nojit/tests/$t" --gtest_brief=1; then
    status=1
  fi
done
exit $status
