// hlcs_synth -- the command-line communication synthesiser.
//
// Reads a guarded-method object description (.obj, see
// hlcs/synth/parser.hpp), synthesises it for N clients under a chosen
// arbitration policy, optionally optimises the netlist, verifies the RT
// model against the interpreted specification in lock step, and emits
// structural Verilog plus a self-checking testbench -- the ODETTE flow
// as one tool invocation.
//
//   hlcs_synth mailbox.obj --clients 4 --policy fifo --optimize \
//              --check 2000 -o mailbox.v --testbench mailbox_tb.v --report
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "hlcs/check/check.hpp"
#include "hlcs/osss/osss.hpp"
#include "hlcs/pattern/pattern.hpp"
#include "hlcs/pci/pci.hpp"
#include "hlcs/synth/synth.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/verify/compare.hpp"
#include "hlcs/verify/coverage.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.obj> [options]\n"
               "       %s --monitor <pack> [options]\n"
               "       %s --equiv-lt [N] [--seed S] [--stats]\n"
               "  --clients N        number of connected clients (default 1)\n"
               "  --policy P         fifo | round_robin | static_priority | "
               "random (default static_priority)\n"
               "  --optimize         run constant folding / simplification\n"
               "  --check N          lock-step equivalence check for N cycles "
               "(default 1000; 0 = skip)\n"
               "  --seed S           stimulus seed for --check\n"
               "  --equiv-batch [L]  run the check as L independently seeded "
               "lanes (default 64)\n"
               "                     on the bit-parallel engine (K*64 lanes "
               "per tape\n"
               "                     instruction); individual nets are limited "
               "to 64 bits\n"
               "                     (one bit-plane row per bit)\n"
               "  --equiv-super K    superlane factor for --equiv-batch: 1, 4 "
               "or 8 (K*64\n"
               "                     lanes per instruction), or 0 to match "
               "the host CPU's\n"
               "                     SIMD width (default 1)\n"
               "  --equiv-threads N  worker threads for --equiv-batch "
               "(default 1, 0 = all cores)\n"
               "  --equiv-jit [K]    run the check on the native tape JIT "
               "(implies\n"
               "                     --equiv-batch; optional K sets "
               "--equiv-super).\n"
               "                     Falls back to the interpreter on "
               "unsupported hosts;\n"
               "                     verdicts are bit-identical either way\n"
               "  --stats            print batch engine counters (fused / "
               "scalar-fallback\n"
               "                     ops, per-opcode fusion hits) and, with "
               "--equiv-jit,\n"
               "                     JIT compile/deopt counters\n"
               "  -o FILE            write Verilog (default: stdout)\n"
               "  --testbench FILE   write a self-checking Verilog testbench\n"
               "  --report           print the resource report to stderr\n"
               "  --monitor PACK     instead of synthesising an object, lower "
               "a shipped\n"
               "                     property pack (pci | shared_object) to "
               "its monitor\n"
               "                     netlist and emit that as Verilog\n"
               "  --equiv-lt [N]     instead of synthesising an object, run "
               "the loosely-timed\n"
               "                     refinement gate: replay N seeded random "
               "transactions\n"
               "                     (default 40) through the LT fast path, "
               "the functional\n"
               "                     model and the synthesised pin-level PCI "
               "system, and\n"
               "                     require transcript + coverage "
               "equivalence.  --stats\n"
               "                     prints the LT counters (quanta, warps, "
               "DMI hits, ...)\n",
               argv0, argv0, argv0);
  return 2;
}

// The loosely-timed refinement gate (`--equiv-lt`): the paper's step-3
// consistency check applied to the temporally decoupled engine.  Three
// runs of the same seeded workload -- LT fast path, functional TLM,
// synthesised pin-level RTL -- must agree on transcript and coverage.
int run_equiv_lt(std::size_t transactions, std::uint64_t seed,
                 bool do_stats) {
  namespace pattern = hlcs::pattern;
  namespace tlm = hlcs::tlm;
  namespace verify = hlcs::verify;
  namespace pci = hlcs::pci;
  namespace sim = hlcs::sim;

  const auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x400, .seed = seed},
      transactions);

  // Leg 1: loosely-timed fast path (quantum-decoupled stimuli engine).
  sim::Kernel lt_k;
  tlm::TlmMemory lt_mem(0x1000, 0x1000);
  pattern::LtBusInterface lt_bus(lt_k, "lt", lt_mem);
  pattern::LtStimuliEngine lt_eng(lt_bus, workload);
  for (int s = 0; s < 100 && !lt_eng.done(); ++s)
    lt_k.run_for(sim::Time::ms(1));
  if (!lt_eng.done()) {
    std::fprintf(stderr, "LT REFINEMENT FAILED: LT engine stalled\n");
    return 1;
  }

  // Leg 2: functional (cycle-approximate) model.
  sim::Kernel fn_k;
  tlm::TlmMemory fn_mem(0x1000, 0x1000);
  pattern::FunctionalBusInterface fn_bus(fn_k, "iface", fn_mem);
  pattern::Application fn_app(fn_k, "app", fn_bus, workload);
  for (int s = 0; s < 100 && !fn_app.done(); ++s)
    fn_k.run_for(sim::Time::ms(1));
  if (!fn_app.done()) {
    std::fprintf(stderr, "LT REFINEMENT FAILED: functional model stalled\n");
    return 1;
  }

  // Leg 3: synthesised channel + pin-level PCI system.
  sim::Kernel rtl_k;
  sim::Clock clk(rtl_k, "clk", sim::Time::ns(10));
  pci::PciBus bus(rtl_k, "pci", clk);
  pci::PciArbiter arb(rtl_k, "arb", bus);
  pci::PciMonitor mon(rtl_k, "mon", bus);
  pci::PciTarget target(rtl_k, "t0", bus,
                        pci::TargetConfig{.base = 0x1000, .size = 0x1000});
  pattern::RtlPciSystem system(rtl_k, "rtl_sys", bus, arb);
  verify::Transcript rtl;
  bool rtl_done = false;
  rtl_k.spawn("app", [&]() -> sim::Task {
    for (const pattern::CommandType& cmd : workload) {
      const sim::Time issued = rtl_k.now();
      pattern::ResponseType resp;
      co_await system.execute(cmd, resp);
      rtl.record(cmd, resp, issued, rtl_k.now());
    }
    rtl_done = true;
  });
  for (int s = 0; s < 5000 && !rtl_done; ++s)
    rtl_k.run_for(sim::Time::us(10));
  if (!rtl_done) {
    std::fprintf(stderr, "LT REFINEMENT FAILED: pin-level system stalled\n");
    return 1;
  }
  if (!mon.violations().empty()) {
    std::fprintf(stderr, "LT REFINEMENT FAILED: protocol violation: %s\n",
                 mon.violations().front().c_str());
    return 1;
  }

  const auto fn_cmp =
      verify::compare_functional(fn_app.transcript(), lt_eng.transcript());
  if (!fn_cmp) {
    std::fprintf(stderr, "LT REFINEMENT FAILED: lt vs functional: %s\n",
                 fn_cmp.first_difference.c_str());
    return 1;
  }
  const auto rtl_cmp = verify::compare_functional(lt_eng.transcript(), rtl);
  if (!rtl_cmp) {
    std::fprintf(stderr, "LT REFINEMENT FAILED: lt vs rtl: %s\n",
                 rtl_cmp.first_difference.c_str());
    return 1;
  }
  verify::Coverage cov_lt, cov_fn, cov_rtl;
  cov_lt.observe(lt_eng.transcript());
  cov_fn.observe(fn_app.transcript());
  cov_rtl.observe(rtl);
  if (cov_lt.report() != cov_fn.report() ||
      cov_lt.report() != cov_rtl.report()) {
    std::fprintf(stderr, "LT REFINEMENT FAILED: coverage reports differ\n");
    return 1;
  }

  if (do_stats) {
    const tlm::TlmStats& ts = lt_bus.tlm_stats();
    std::fprintf(stderr,
                 "lt stats: %llu transactions, %llu quanta, %llu syncs "
                 "(%llu warps), %llu dmi hits, %llu dmi misses, %llu "
                 "batched guarded calls\n",
                 static_cast<unsigned long long>(ts.transactions),
                 static_cast<unsigned long long>(ts.quanta),
                 static_cast<unsigned long long>(ts.syncs),
                 static_cast<unsigned long long>(ts.warps),
                 static_cast<unsigned long long>(ts.dmi_hits),
                 static_cast<unsigned long long>(ts.dmi_misses),
                 static_cast<unsigned long long>(ts.batched_guarded_calls));
  }
  std::fprintf(stderr,
               "LT refinement PASS: %zu transactions, seed 0x%llx "
               "(lt == functional == rtl, coverage identical)\n",
               transactions, static_cast<unsigned long long>(seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hlcs::synth;
  if (argc < 2) return usage(argv[0]);

  std::string input;
  std::string monitor_pack;
  std::string out_path;
  std::string tb_path;
  SynthOptions opt;
  std::size_t check_cycles = 1000;
  std::uint64_t seed = 0xCAFE;
  std::size_t equiv_lanes = 1;
  bool equiv_batch = false;
  unsigned equiv_threads = 1;
  unsigned equiv_super = 1;
  bool equiv_jit = false;
  bool equiv_lt = false;
  std::size_t equiv_lt_txns = 40;
  bool do_stats = false;
  bool do_optimize = false;
  bool do_report = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument (%s)\n", a.c_str(),
                     what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--clients") {
      opt.clients = static_cast<std::size_t>(std::stoul(next("count")));
    } else if (a == "--policy") {
      try {
        opt.policy = hlcs::osss::parse_policy(next("name"));
      } catch (const hlcs::Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (a == "--optimize") {
      do_optimize = true;
    } else if (a == "--check") {
      check_cycles = static_cast<std::size_t>(std::stoul(next("cycles")));
    } else if (a == "--seed") {
      seed = std::stoull(next("seed"));
    } else if (a == "--equiv-batch") {
      equiv_batch = true;
      equiv_lanes = 64;
      // Optional lane count: consume the next argv only if it is a
      // bare number, so `--equiv-batch -o out.v` still parses.
      if (i + 1 < argc && argv[i + 1][0] != '\0' &&
          std::strspn(argv[i + 1], "0123456789") ==
              std::strlen(argv[i + 1])) {
        equiv_lanes = static_cast<std::size_t>(std::stoul(argv[++i]));
      }
    } else if (a == "--equiv-jit") {
      equiv_jit = true;
      if (!equiv_batch) {
        equiv_batch = true;
        equiv_lanes = 64;
      }
      // Optional superlane factor, same bare-number idiom as
      // --equiv-batch's lane count.
      if (i + 1 < argc && argv[i + 1][0] != '\0' &&
          std::strspn(argv[i + 1], "0123456789") ==
              std::strlen(argv[i + 1])) {
        equiv_super = static_cast<unsigned>(std::stoul(argv[++i]));
        if (equiv_super != 0 && equiv_super != 1 && equiv_super != 4 &&
            equiv_super != 8) {
          std::fprintf(stderr,
                       "--equiv-jit K must be 1, 4, 8 or 0 (auto), got %u\n",
                       equiv_super);
          return 2;
        }
      }
    } else if (a == "--equiv-lt") {
      equiv_lt = true;
      // Optional transaction count, same bare-number idiom as
      // --equiv-batch's lane count.
      if (i + 1 < argc && argv[i + 1][0] != '\0' &&
          std::strspn(argv[i + 1], "0123456789") ==
              std::strlen(argv[i + 1])) {
        equiv_lt_txns = static_cast<std::size_t>(std::stoul(argv[++i]));
      }
    } else if (a == "--equiv-threads") {
      equiv_threads = static_cast<unsigned>(std::stoul(next("count")));
    } else if (a == "--equiv-super") {
      equiv_super = static_cast<unsigned>(std::stoul(next("factor")));
      if (equiv_super != 0 && equiv_super != 1 && equiv_super != 4 &&
          equiv_super != 8) {
        std::fprintf(stderr,
                     "--equiv-super must be 1, 4, 8 or 0 (auto), got %u\n",
                     equiv_super);
        return 2;
      }
    } else if (a == "--stats") {
      do_stats = true;
    } else if (a == "-o") {
      out_path = next("file");
    } else if (a == "--testbench") {
      tb_path = next("file");
    } else if (a == "--report") {
      do_report = true;
    } else if (a == "--monitor") {
      monitor_pack = next("pack");
    } else if (a == "--help" || a == "-h") {
      return usage(argv[0]);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 2;
    } else if (input.empty()) {
      input = a;
    } else {
      std::fprintf(stderr, "multiple inputs given\n");
      return 2;
    }
  }
  // LT refinement mode: run the three-way loosely-timed consistency
  // gate -- no .obj input involved.
  if (equiv_lt) {
    if (!input.empty() || !tb_path.empty() || !monitor_pack.empty()) {
      std::fprintf(stderr,
                   "--equiv-lt takes no .obj input, --testbench or "
                   "--monitor\n");
      return 2;
    }
    if (equiv_lt_txns == 0) {
      std::fprintf(stderr, "--equiv-lt requires at least 1 transaction\n");
      return 2;
    }
    try {
      return run_equiv_lt(equiv_lt_txns, seed, do_stats);
    } catch (const hlcs::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  // Monitor mode: lower a shipped property pack to its synthesisable
  // monitor automaton -- no .obj input involved.
  if (!monitor_pack.empty()) {
    if (!input.empty() || !tb_path.empty()) {
      std::fprintf(stderr,
                   "--monitor takes no .obj input and no --testbench\n");
      return 2;
    }
    try {
      const hlcs::check::Spec spec = [&]() -> hlcs::check::Spec {
        if (monitor_pack == "pci") {
          return hlcs::check::pci_rules(hlcs::check::PciRuleOptions{
              .arbitration = true, .latency_bound = 16});
        }
        if (monitor_pack == "shared_object") {
          return hlcs::check::shared_object_rules(/*starvation_bound=*/8);
        }
        hlcs::fail("unknown monitor pack '" + monitor_pack +
                   "' (pci | shared_object)");
      }();
      const hlcs::check::Automaton a = hlcs::check::compile(spec);
      Netlist nl = hlcs::check::lower(a);
      std::fprintf(stderr,
                   "monitor pack '%s': %zu signals, %zu properties, %zu "
                   "state registers\n",
                   monitor_pack.c_str(), a.signals.size(), a.props.size(),
                   a.states.size());
      if (do_optimize) {
        OptimizeStats ost;
        nl = optimize(nl, &ost);
        std::fprintf(stderr,
                     "optimized: %zu -> %zu comb nodes (%zu rewrites)\n",
                     ost.nodes_before, ost.nodes_after, ost.folds);
      }
      if (do_report) {
        std::fprintf(stderr, "%s\n", report(nl).to_string().c_str());
      }
      const std::string verilog = emit_verilog(nl);
      if (out_path.empty()) {
        std::cout << verilog;
      } else {
        std::ofstream(out_path) << verilog;
        std::fprintf(stderr, "wrote %s (%zu bytes)\n", out_path.c_str(),
                     verilog.size());
      }
    } catch (const hlcs::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  if (input.empty()) return usage(argv[0]);

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", input.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();

  try {
    std::vector<ObjectDesc> parsed = parse_objects(ss.str());
    ObjectDesc desc = [&]() -> ObjectDesc {
      if (parsed.size() == 1) return std::move(parsed[0]);
      // Several objects in one file: synthesise them as a polymorphic
      // object (late-binding dispatch over a type tag).
      std::vector<const ObjectDesc*> impls;
      for (const ObjectDesc& d : parsed) impls.push_back(&d);
      std::fprintf(stderr,
                   "%zu implementations found: building polymorphic object\n",
                   parsed.size());
      return make_polymorphic(parsed[0].name() + "_poly", impls, 0);
    }();
    std::fprintf(stderr, "parsed object '%s': %zu vars, %zu methods\n",
                 desc.name().c_str(), desc.vars().size(),
                 desc.methods().size());

    Netlist nl = synthesize(desc, opt);
    if (do_optimize) {
      OptimizeStats ost;
      nl = optimize(nl, &ost);
      std::fprintf(stderr,
                   "optimized: %zu -> %zu comb nodes (%zu rewrites)\n",
                   ost.nodes_before, ost.nodes_after, ost.folds);
    }
    if (do_report) {
      std::fprintf(stderr, "%s\n", report(nl).to_string().c_str());
    }

    EquivResult equiv;
    if (check_cycles > 0) {
      equiv = check_equivalence(
          desc, opt,
          EquivOptions{.cycles = check_cycles, .seed = seed,
                       .lanes = equiv_lanes, .batch = equiv_batch,
                       .threads = equiv_threads, .superlanes = equiv_super,
                       .jit = equiv_jit});
      if (!equiv) {
        std::fprintf(stderr, "EQUIVALENCE FAILED: %s\n",
                     equiv.first_mismatch.c_str());
        return 1;
      }
      if (equiv_batch) {
        std::fprintf(stderr,
                     "equivalence PASS: %zu lanes, %zu cycles total, %zu "
                     "method grants (batch, K=%u, %.1f%% scalar fallback%s)\n",
                     equiv.lanes, equiv.cycles, equiv.grants,
                     equiv_super == 0 ? cpu_superlanes() : equiv_super,
                     100.0 * equiv.batch_scalar_fraction,
                     equiv_jit ? (equiv.jit_stats.enabled
                                      ? ", jit"
                                      : ", jit unavailable")
                               : "");
        if (do_stats) {
          const BatchStats& bs = equiv.batch_stats;
          std::fprintf(stderr,
                       "batch stats: %llu settles, %llu plane insns, %llu "
                       "fused ops, %llu scalar ops (%llu scalar lane "
                       "evals)\n",
                       static_cast<unsigned long long>(bs.settles),
                       static_cast<unsigned long long>(bs.plane_instructions),
                       static_cast<unsigned long long>(bs.fused_ops),
                       static_cast<unsigned long long>(bs.scalar_ops),
                       static_cast<unsigned long long>(bs.scalar_lane_evals));
          // Per-opcode fusion hits are a property of the compiled tape,
          // not of how many cycles ran: compile one here to report them.
          const BatchTape bt(nl);
          for (const auto& [name, hits] : bt.fusion_hits()) {
            if (hits == 0) continue;
            std::fprintf(stderr, "  fused %-10s x%llu\n", name.c_str(),
                         static_cast<unsigned long long>(hits));
          }
          if (equiv.jit_stats.enabled) {
            const JitStats& js = equiv.jit_stats;
            std::fprintf(
                stderr,
                "jit stats: %llu ns compile, %llu code bytes, %llu "
                "stencils, %llu segments, %llu/%llu combs native, %llu "
                "native calls, %llu deopt evals\n",
                static_cast<unsigned long long>(js.compile_ns),
                static_cast<unsigned long long>(js.code_bytes),
                static_cast<unsigned long long>(js.stencils),
                static_cast<unsigned long long>(js.segments),
                static_cast<unsigned long long>(js.combs_native),
                static_cast<unsigned long long>(js.combs_native +
                                                js.combs_deopt),
                static_cast<unsigned long long>(js.native_calls),
                static_cast<unsigned long long>(js.deopt_comb_evals));
            for (const auto& [name, hits] : js.deopt_hits()) {
              std::fprintf(stderr, "  deopt %-10s x%llu\n", name.c_str(),
                           static_cast<unsigned long long>(hits));
            }
          }
        }
      } else {
        std::fprintf(stderr,
                     "equivalence PASS: %zu cycles, %zu method grants\n",
                     equiv.cycles, equiv.grants);
      }
    }

    const std::string verilog = emit_verilog(nl);
    if (out_path.empty()) {
      std::cout << verilog;
    } else {
      std::ofstream(out_path) << verilog;
      std::fprintf(stderr, "wrote %s (%zu bytes)\n", out_path.c_str(),
                   verilog.size());
    }
    if (!tb_path.empty()) {
      if (equiv.vectors.empty()) {
        std::fprintf(stderr,
                     "--testbench requires --check > 0 (vectors come from "
                     "the equivalence run)\n");
        return 2;
      }
      std::ofstream(tb_path) << emit_verilog_testbench(nl, equiv.vectors);
      std::fprintf(stderr, "wrote %s (%zu vectors)\n", tb_path.c_str(),
                   equiv.vectors.size());
    }
  } catch (const hlcs::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
