// hlcs_contend -- contention cost-model driver for guarded method calls.
//
// Sweeps arbitration policy x client count x traffic shape over a
// clocked SharedObject and records the grant-latency distribution of
// every cell (docs/CONTENTION.md).  Modes:
//
//   --cell         run one cell and print its JSON record
//   --sweep KIND   run the full or reduced grid; print/emit the dataset
//   --check-dataset FILE  recompute the selected grid and diff each cell
//                  against the committed dataset (byte-identical or fail)
//   --derive       print the tuning derived from the full grid
//   --verify       run the adaptive-arbitration fairness pack on the
//                  adversarial shapes under behavioural + lowered
//                  monitors
//
// Every cell seeds itself from its own key, so a reduced grid computes
// the exact bytes the full grid would for the same cells, at any
// --threads count.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hlcs/contend/contend.hpp"
#include "hlcs/osss/osss.hpp"
#include "hlcs/sim/sim.hpp"

namespace {

using namespace hlcs;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s MODE [options]\n"
      "modes:\n"
      "  --cell               run one cell (--policy/--clients/--traffic)\n"
      "  --sweep full|reduced run a grid and print the dataset JSON\n"
      "  --check-dataset FILE recompute a grid (default reduced; override\n"
      "                       with --sweep) and diff against FILE\n"
      "  --derive             derive adaptive tuning from the full grid\n"
      "  --verify             run the adaptive fairness property pack\n"
      "options:\n"
      "  --policy NAME        fifo|round_robin|static_priority|random|"
      "adaptive\n"
      "  --clients N          2..64 (default 8)\n"
      "  --traffic NAME       uniform|bursty|convoy|stampede\n"
      "  --cycles N           cycles per cell (default %llu)\n"
      "  --threads N          worker threads (0 = hardware concurrency)\n"
      "  -o FILE              write the dataset to FILE instead of stdout\n",
      argv0,
      static_cast<unsigned long long>(contend::kDefaultCycles));
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { None, Cell, Sweep, CheckDataset, Derive, Verify };
  Mode mode = Mode::None;
  contend::GridKind grid_kind = contend::GridKind::Reduced;
  std::string dataset_path;
  std::string out_path;
  contend::CellConfig cell;
  cell.policy = osss::PolicyKind::Fifo;
  cell.clients = 8;
  cell.traffic = contend::TrafficShape::Uniform;
  unsigned threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument (%s)\n", a.c_str(),
                     what);
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (a == "--cell") {
        mode = Mode::Cell;
      } else if (a == "--sweep") {
        if (mode == Mode::None) mode = Mode::Sweep;
        const std::string kind = next("full|reduced");
        if (kind == "full") grid_kind = contend::GridKind::Full;
        else if (kind == "reduced") grid_kind = contend::GridKind::Reduced;
        else {
          std::fprintf(stderr, "--sweep expects full or reduced, got '%s'\n",
                       kind.c_str());
          return 2;
        }
      } else if (a == "--check-dataset") {
        mode = Mode::CheckDataset;
        dataset_path = next("file");
      } else if (a == "--derive") {
        mode = Mode::Derive;
      } else if (a == "--verify") {
        mode = Mode::Verify;
      } else if (a == "--policy") {
        cell.policy = osss::parse_policy(next("name"));
      } else if (a == "--clients") {
        cell.clients =
            static_cast<std::size_t>(std::stoul(next("count")));
      } else if (a == "--traffic") {
        cell.traffic = contend::parse_traffic(next("name"));
      } else if (a == "--cycles") {
        cell.cycles = std::stoull(next("count"));
      } else if (a == "--threads") {
        threads = static_cast<unsigned>(std::stoul(next("count")));
      } else if (a == "-o") {
        out_path = next("file");
      } else {
        return usage(argv[0]);
      }
    } catch (const hlcs::Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  if (mode == Mode::None) return usage(argv[0]);

  try {
    switch (mode) {
      case Mode::Cell: {
        const contend::CellResult r = contend::run_cell(cell);
        std::printf("%s\n", contend::cell_json(r).c_str());
        return 0;
      }
      case Mode::Sweep:
      case Mode::CheckDataset: {
        // --check-dataset defaults to the reduced grid so the gate stays
        // cheap; --sweep full --check-dataset FILE checks every cell.
        const auto grid = contend::make_grid(grid_kind, cell.cycles,
                                             contend::kRootSeed);
        const auto cells = contend::run_grid(grid, threads);
        if (mode == Mode::CheckDataset) {
          std::ifstream in(dataset_path);
          if (!in) {
            std::fprintf(stderr, "cannot read dataset '%s'\n",
                         dataset_path.c_str());
            return 2;
          }
          std::ostringstream ss;
          ss << in.rdbuf();
          const std::string diff =
              contend::diff_against_dataset(cells, ss.str());
          if (!diff.empty()) {
            std::fprintf(stderr, "%s\n", diff.c_str());
            return 1;
          }
          std::printf("dataset OK: %zu cells identical (%s grid)\n",
                      cells.size(),
                      grid_kind == contend::GridKind::Full ? "full"
                                                           : "reduced");
          return 0;
        }
        const std::string json = contend::dataset_json(
            cells, cell.cycles, contend::kRootSeed);
        if (out_path.empty()) {
          std::fputs(json.c_str(), stdout);
        } else {
          std::ofstream out(out_path);
          if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
            return 2;
          }
          out << json;
          std::fprintf(stderr, "wrote %zu cells to %s\n", cells.size(),
                       out_path.c_str());
        }
        return 0;
      }
      case Mode::Derive: {
        const auto grid = contend::make_grid(contend::GridKind::Full,
                                             cell.cycles, contend::kRootSeed);
        const auto cells = contend::run_grid(grid, threads);
        const osss::AdaptiveTuning t = contend::derive_tuning(cells);
        std::printf("derived tuning: starve_bound=%llu window=%u "
                    "hot_threshold=%u\n",
                    static_cast<unsigned long long>(t.starve_bound), t.window,
                    t.hot_threshold);
        const osss::AdaptiveTuning d{};
        std::printf("compiled defaults: starve_bound=%llu window=%u "
                    "hot_threshold=%u (%s)\n",
                    static_cast<unsigned long long>(d.starve_bound), d.window,
                    d.hot_threshold,
                    t.starve_bound == d.starve_bound ? "match" : "DIVERGED");
        return t.starve_bound == d.starve_bound ? 0 : 1;
      }
      case Mode::Verify: {
        const contend::FairnessReport rep =
            contend::verify_fairness(cell.cycles);
        std::printf("%s\n", rep.detail.c_str());
        return rep.ok ? 0 : 1;
      }
      case Mode::None:
        break;
    }
  } catch (const hlcs::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
