#include <gtest/gtest.h>

#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/tlm/tlm.hpp"

namespace hlcs::tlm {
namespace {

TEST(TlmMemory, ReadWriteRoundTrip) {
  TlmMemory m(0x1000, 0x100);
  EXPECT_EQ(m.write(0x1010, {0xAA, 0xBB}), Status::Ok);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(m.read(0x1010, out, 2), Status::Ok);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0xAA, 0xBB}));
  EXPECT_EQ(m.peek(0x10), 0xAAu);
  EXPECT_EQ(m.peek(0x14), 0xBBu);
}

TEST(TlmMemory, UnwrittenReadsZero) {
  TlmMemory m(0, 0x100);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(m.read(0x40, out, 1), Status::Ok);
  EXPECT_EQ(out.at(0), 0u);
}

TEST(TlmMemory, OutOfWindowAborts) {
  TlmMemory m(0x1000, 0x100);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(m.read(0x2000, out, 1), Status::MasterAbort);
  EXPECT_EQ(m.write(0x0FFC, {1}), Status::MasterAbort);
  // A burst that starts inside but runs off the end aborts too.
  EXPECT_EQ(m.read(0x10FC, out, 2), Status::MasterAbort);
}

TEST(TlmMemory, DecodesPredicate) {
  TlmMemory m(0x1000, 0x100);
  EXPECT_TRUE(m.decodes(0x1000));
  EXPECT_TRUE(m.decodes(0x10FF));
  EXPECT_FALSE(m.decodes(0x1100));
  EXPECT_FALSE(m.decodes(0xFFF));
}

TEST(RegisterPeripheral, ScratchAndDataRegisters) {
  RegisterPeripheral p(0x2000);
  EXPECT_EQ(p.write(0x200C, {0x12345678}), Status::Ok);  // SCRATCH
  std::vector<std::uint32_t> out;
  EXPECT_EQ(p.read(0x200C, out, 1), Status::Ok);
  EXPECT_EQ(out.at(0), 0x12345678u);
}

TEST(RegisterPeripheral, OperationSetsBusyThenReady) {
  RegisterPeripheral p(0x2000, /*busy_polls=*/2);
  p.write(0x200C, {0x0000FFFF});  // SCRATCH
  p.write(0x2000, {0x1});         // CTRL: start operation
  std::vector<std::uint32_t> st;
  p.read(0x2004, st, 1);
  EXPECT_EQ(st.at(0), 1u) << "busy on first poll";
  st.clear();
  p.read(0x2004, st, 1);
  EXPECT_EQ(st.at(0), 1u) << "busy on second poll";
  st.clear();
  p.read(0x2004, st, 1);
  EXPECT_EQ(st.at(0), 0u) << "ready on third poll";
  std::vector<std::uint32_t> data;
  p.read(0x2008, data, 1);
  EXPECT_EQ(data.at(0), 0xFFFF0000u) << "DATA holds inverted SCRATCH";
}

TEST(RegisterPeripheral, StatusIsReadOnly) {
  RegisterPeripheral p(0x2000);
  p.write(0x2004, {0x99});
  std::vector<std::uint32_t> st;
  p.read(0x2004, st, 1);
  EXPECT_EQ(st.at(0), 0u);
}

TEST(TlmRouter, RoutesByAddress) {
  TlmMemory a(0x1000, 0x100);
  TlmMemory b(0x2000, 0x100);
  TlmRouter r;
  r.attach(a);
  r.attach(b);
  EXPECT_EQ(r.write(0x1000, {1}), Status::Ok);
  EXPECT_EQ(r.write(0x2000, {2}), Status::Ok);
  EXPECT_EQ(a.peek(0), 1u);
  EXPECT_EQ(b.peek(0), 2u);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(r.read(0x3000, out, 1), Status::MasterAbort);
}

TEST(Stimuli, SequentialIsWriteThenRead) {
  auto w = sequential_workload(WorkloadConfig{.base = 0x1000, .span = 0x100},
                               20);
  ASSERT_EQ(w.size(), 20u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(w[i].op, pattern::BusOp::Write);
  }
  for (std::size_t i = 10; i < 20; ++i) {
    EXPECT_EQ(w[i].op, pattern::BusOp::Read);
  }
}

TEST(Stimuli, RandomIsDeterministicPerSeed) {
  WorkloadConfig cfg{.base = 0, .span = 0x400, .seed = 5};
  auto a = random_workload(cfg, 50);
  auto b = random_workload(cfg, 50);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].data, b[i].data);
  }
  cfg.seed = 6;
  auto c = random_workload(cfg, 50);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].addr != c[i].addr || a[i].op != c[i].op) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds must differ";
}

TEST(Stimuli, RandomStaysInWindow) {
  WorkloadConfig cfg{.base = 0x1000, .span = 0x200, .max_burst = 8,
                     .seed = 11};
  auto w = random_workload(cfg, 200);
  for (const auto& c : w) {
    const std::uint32_t last = c.addr + static_cast<std::uint32_t>(
                                            (c.words() - 1) * 4);
    EXPECT_GE(c.addr, 0x1000u);
    EXPECT_LT(last, 0x1200u) << "burst must stay inside the window";
    EXPECT_EQ(c.addr % 4, 0u);
  }
}

TEST(Stimuli, DmaPairsWriteAndReadBack) {
  auto w = dma_workload(WorkloadConfig{.base = 0x1000, .span = 0x1000}, 3, 8);
  ASSERT_EQ(w.size(), 6u);
  for (std::size_t i = 0; i < w.size(); i += 2) {
    EXPECT_EQ(w[i].op, pattern::BusOp::WriteBurst);
    EXPECT_EQ(w[i + 1].op, pattern::BusOp::ReadBurst);
    EXPECT_EQ(w[i].addr, w[i + 1].addr);
    EXPECT_EQ(w[i].data.size(), w[i + 1].count);
  }
}

TEST(TlmMemory, RejectsUnalignedConstruction) {
  EXPECT_THROW(TlmMemory(0, 0x101), hlcs::Error);
}

TEST(TlmMemory, PagesAllocateOnFirstWriteOnly) {
  TlmMemory m(0x1000, 0x3000);  // three 4 KiB pages
  EXPECT_EQ(m.pages_allocated(), 0u);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(m.read(0x2000, out, 4), Status::Ok);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 0, 0, 0}));
  EXPECT_EQ(m.pages_allocated(), 0u) << "reads must not materialise pages";
  EXPECT_EQ(m.write(0x1004, {1}), Status::Ok);
  EXPECT_EQ(m.pages_allocated(), 1u);
  EXPECT_EQ(m.write(0x3FFC, {2}), Status::Ok);  // last word of page 2
  EXPECT_EQ(m.pages_allocated(), 2u);
  EXPECT_EQ(m.write(0x1008, {3}), Status::Ok);  // same page as the first
  EXPECT_EQ(m.pages_allocated(), 2u);
  EXPECT_EQ(m.peek(0x2FFC), 2u);
}

TEST(TlmMemory, WriteSpanningPagesLandsInBoth) {
  TlmMemory m(0, 0x2000);
  // Two words across the page 0 / page 1 boundary.
  EXPECT_EQ(m.write(0x0FFC, {0xAA, 0xBB}), Status::Ok);
  EXPECT_EQ(m.pages_allocated(), 2u);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(m.read(0x0FFC, out, 2), Status::Ok);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0xAA, 0xBB}));
}

TEST(TlmMemory, DirectWindowIsPageSizedAndStable) {
  TlmMemory m(0x1000, 0x1800);  // one full page + a 2 KiB tail
  DmiWindow w = m.get_direct_window(0x1010);
  ASSERT_TRUE(w.valid());
  EXPECT_EQ(w.base, 0x1000u);
  EXPECT_EQ(w.size, TlmMemory::kPageBytes);
  EXPECT_EQ(w.version, m.dmi_version());
  EXPECT_EQ(m.pages_allocated(), 1u) << "a writable window needs its page";
  EXPECT_TRUE(w.covers(0x1010, 8));
  EXPECT_FALSE(w.covers(0x0FFC, 4));
  EXPECT_FALSE(w.covers(0x1FFC, 8)) << "span past the page is not covered";
  *w.at(0x1010) = 0xD1;
  std::vector<std::uint32_t> out;
  EXPECT_EQ(m.read(0x1010, out, 1), Status::Ok);
  EXPECT_EQ(out.at(0), 0xD1u) << "window stores hit the backing pages";
  // The tail page's window is clamped to the decode window.
  DmiWindow tail = m.get_direct_window(0x2000);
  ASSERT_TRUE(tail.valid());
  EXPECT_EQ(tail.base, 0x2000u);
  EXPECT_EQ(tail.size, 0x800u);
  // Windows never go stale: pages are pointer-stable for the memory's
  // lifetime.
  EXPECT_EQ(m.get_direct_window(0x1010).words, w.words);
  EXPECT_EQ(m.dmi_version(), w.version);
}

TEST(RegisterPeripheral, NeverGrantsDirectWindow) {
  RegisterPeripheral p(0x2000);
  EXPECT_FALSE(p.get_direct_window(0x2000).valid())
      << "read side effects forbid DMI";
}

TEST(TlmRouter, RejectsOverlappingAttach) {
  TlmMemory a(0x1000, 0x100);
  TlmMemory overlap_low(0x0FC0, 0x80);   // tail overlaps a's head
  TlmMemory overlap_high(0x10C0, 0x100);  // head overlaps a's tail
  TlmMemory inside(0x1040, 0x20);
  TlmMemory adjacent(0x1100, 0x100);
  TlmRouter r;
  r.attach(a);
  EXPECT_THROW(r.attach(overlap_low), hlcs::Error);
  EXPECT_THROW(r.attach(overlap_high), hlcs::Error);
  EXPECT_THROW(r.attach(inside), hlcs::Error);
  r.attach(adjacent);  // back-to-back windows are fine
  EXPECT_EQ(r.write(0x1100, {7}), Status::Ok);
  EXPECT_EQ(adjacent.peek(0), 7u);
}

TEST(TlmRouter, BinarySearchRouteOverManyTargets) {
  // Attach out of order; the sorted decode map must route every edge
  // address to the right target and abort in the gaps.
  std::vector<std::unique_ptr<TlmMemory>> mems;
  TlmRouter r;
  for (std::uint32_t i : {7u, 2u, 5u, 0u, 3u}) {
    mems.push_back(std::make_unique<TlmMemory>(0x10000 * (i + 1), 0x100));
    r.attach(*mems.back());
  }
  for (std::uint32_t i : {0u, 2u, 3u, 5u, 7u}) {
    const std::uint32_t base = 0x10000 * (i + 1);
    EXPECT_EQ(r.write(base, {i}), Status::Ok);
    EXPECT_EQ(r.write(base + 0xFC, {i}), Status::Ok);
    std::vector<std::uint32_t> out;
    EXPECT_EQ(r.read(base + 0x100, out, 1), Status::MasterAbort)
        << "gap past target " << i;
  }
}

TEST(TlmRouter, AttachBumpsDmiVersionAndRestampsWindows) {
  TlmMemory a(0x1000, 0x1000);
  TlmRouter r;
  r.attach(a);
  const std::uint64_t v1 = r.dmi_version();
  DmiWindow w = r.get_direct_window(0x1000);
  ASSERT_TRUE(w.valid());
  EXPECT_EQ(w.version, v1) << "router windows carry the router's version";
  TlmMemory b(0x4000, 0x100);
  r.attach(b);
  EXPECT_NE(r.dmi_version(), v1) << "decode change must invalidate windows";
  EXPECT_NE(r.get_direct_window(0x1000).version, w.version);
  // A target with no DMI support yields no window through the router.
  RegisterPeripheral p(0x8000);
  r.attach(p);
  EXPECT_FALSE(r.get_direct_window(0x8000).valid());
}

}  // namespace
}  // namespace hlcs::tlm
