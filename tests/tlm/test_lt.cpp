// Loosely-timed fast path: refinement consistency (LT vs functional vs
// synthesised pin-level RTL), quantum determinism, DMI invalidation and
// batched guarded-method accounting.  This is the paper's step-3
// consistency check extended to the temporally decoupled model: the
// exploitable speed of the LT engine is only admissible because these
// transcripts stay word-for-word equal to the refined models.
#include <gtest/gtest.h>

#include <vector>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/pci/pci.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/verify/compare.hpp"
#include "hlcs/verify/coverage.hpp"

namespace hlcs::pattern {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;
using sim::Task;

// One single-word command costs per_command + per_word = 60ns under the
// default LT timing, so "a quantum of N commands" is 60ns * N.
LtConfig quantum_of(std::uint64_t commands) {
  LtConfig cfg;
  cfg.quantum = sim::Time::ns(60) * commands;
  return cfg;
}

struct LtRun {
  verify::Transcript transcript;
  tlm::TlmStats stats;
  osss::SharedObjectStats object_stats;
  std::uint64_t kernel_warps = 0;
};

LtRun lt_run(const std::vector<CommandType>& workload, LtConfig cfg = {}) {
  Kernel k;
  tlm::TlmMemory mem(0x1000, 0x1000);
  LtBusInterface bus(k, "lt", mem, cfg);
  LtStimuliEngine eng(bus, workload);
  for (int slice = 0; slice < 100 && !eng.done(); ++slice) k.run_for(1000_us);
  EXPECT_TRUE(eng.done()) << "LT engine stalled";
  return LtRun{eng.transcript(), bus.tlm_stats(),
               bus.channel().object().stats(), k.stats().time_warps};
}

verify::Transcript functional_run(const std::vector<CommandType>& workload,
                                  FunctionalTiming timing = {}) {
  Kernel k;
  tlm::TlmMemory mem(0x1000, 0x1000);
  FunctionalBusInterface iface(k, "iface", mem, timing);
  Application app(k, "app", iface, workload);
  for (int slice = 0; slice < 100 && !app.done(); ++slice) k.run_for(1000_us);
  EXPECT_TRUE(app.done()) << "functional reference stalled";
  return app.transcript();
}

// Post-synthesis pin-level leg (the RtlSystemBench shape from
// tests/pattern/test_rtl_system.cpp).
verify::Transcript rtl_run(const std::vector<CommandType>& workload) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arb(k, "arb", bus);
  pci::PciMonitor mon(k, "mon", bus);
  pci::PciTarget target(k, "t0", bus,
                        pci::TargetConfig{.base = 0x1000, .size = 0x1000});
  RtlPciSystem system(k, "rtl_sys", bus, arb);
  verify::Transcript out;
  bool done = false;
  k.spawn("app", [&]() -> Task {
    for (const CommandType& cmd : workload) {
      const sim::Time issued = k.now();
      ResponseType resp;
      co_await system.execute(cmd, resp);
      out.record(cmd, resp, issued, k.now());
    }
    done = true;
  });
  for (int slice = 0; slice < 5000 && !done; ++slice) k.run_for(10_us);
  EXPECT_TRUE(done) << "post-synthesis system stalled";
  EXPECT_TRUE(mon.violations().empty());
  return out;
}

TEST(LtRefinement, SequentialMatchesFunctionalAcrossQuanta) {
  auto workload = tlm::sequential_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x400}, 64);
  verify::Transcript golden = functional_run(workload);
  for (std::uint64_t q : {1u, 16u, 1024u}) {
    LtRun lt = lt_run(workload, quantum_of(q));
    auto cmp = verify::compare_functional(golden, lt.transcript);
    EXPECT_TRUE(cmp) << "quantum=" << q << ": " << cmp.first_difference;
    EXPECT_EQ(cmp.compared, 64u);
  }
}

TEST(LtRefinement, RandomMatchesFunctionalAcrossQuantaAndSeeds) {
  for (std::uint64_t seed : {1ull, 7ull, 0xBADC0DEull}) {
    auto workload = tlm::random_workload(
        tlm::WorkloadConfig{.base = 0x1000, .span = 0x1000, .seed = seed},
        200);
    verify::Transcript golden = functional_run(workload);
    for (std::uint64_t q : {1u, 16u, 1024u}) {
      LtRun lt = lt_run(workload, quantum_of(q));
      auto cmp = verify::compare_functional(golden, lt.transcript);
      EXPECT_TRUE(cmp) << "seed=" << seed << " quantum=" << q << ": "
                       << cmp.first_difference;
      EXPECT_EQ(cmp.compared, 200u);
    }
  }
}

TEST(LtRefinement, ThreeWayWithSynthesisedRtl) {
  // The acceptance gate of the LT fast path: on the same seed, the LT
  // run, the cycle-approximate functional run and the synthesised
  // pin-level system agree on transcript AND coverage.
  auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x400, .seed = 31337}, 40);
  verify::Transcript golden = functional_run(workload);
  LtRun lt = lt_run(workload, quantum_of(16));
  verify::Transcript rtl = rtl_run(workload);

  auto lt_cmp = verify::compare_functional(golden, lt.transcript);
  EXPECT_TRUE(lt_cmp) << lt_cmp.first_difference;
  auto rtl_cmp = verify::compare_functional(lt.transcript, rtl);
  EXPECT_TRUE(rtl_cmp) << rtl_cmp.first_difference;

  verify::Coverage cov_golden, cov_lt, cov_rtl;
  cov_golden.observe(golden);
  cov_lt.observe(lt.transcript);
  cov_rtl.observe(rtl);
  EXPECT_EQ(cov_golden.report(), cov_lt.report());
  EXPECT_EQ(cov_lt.report(), cov_rtl.report());
}

TEST(LtDeterminism, TranscriptBitIdenticalAcrossShrinkingQuantum) {
  // Shrinking the quantum changes only WHEN the kernel synchronises,
  // never what the transactions observe -- ids, data, statuses and even
  // the local-time stamps must be bit-identical.
  auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x1000, .seed = 99}, 300);
  LtRun ref = lt_run(workload, quantum_of(1024));
  for (std::uint64_t q : {256u, 16u, 4u, 1u}) {
    LtRun run = lt_run(workload, quantum_of(q));
    ASSERT_EQ(run.transcript.size(), ref.transcript.size());
    for (std::size_t i = 0; i < ref.transcript.size(); ++i) {
      const auto& a = ref.transcript.entries()[i];
      const auto& b = run.transcript.entries()[i];
      ASSERT_EQ(a.id, b.id) << "quantum=" << q << " entry " << i;
      ASSERT_EQ(a.data, b.data) << "quantum=" << q << " entry " << i;
      ASSERT_EQ(a.status, b.status) << "quantum=" << q << " entry " << i;
      ASSERT_EQ(a.issued.picos(), b.issued.picos())
          << "quantum=" << q << " entry " << i;
      ASSERT_EQ(a.completed.picos(), b.completed.picos())
          << "quantum=" << q << " entry " << i;
    }
    // Smaller quanta mean more syncs, same transactions.
    EXPECT_GE(run.stats.syncs, ref.stats.syncs);
    EXPECT_EQ(run.stats.transactions, ref.stats.transactions);
  }
}

TEST(LtTiming, SpanMatchesPerCommandTimedFunctionalModel) {
  // Temporal decoupling must not change total simulated time: an LT run
  // and a functional run with the same per-command/per-word costs agree
  // on the transcript span exactly.
  auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x800, .seed = 12}, 120);
  LtConfig cfg = quantum_of(16);
  verify::Transcript timed = functional_run(
      workload,
      FunctionalTiming{.per_command = cfg.per_command,
                       .per_word = cfg.per_word});
  LtRun lt = lt_run(workload, cfg);
  EXPECT_EQ(lt.transcript.span().picos(), timed.span().picos());
}

TEST(LtDmi, MixedTargetsFallBackAndStayEquivalent) {
  // Router decoding a DMI-capable memory AND a register peripheral with
  // read side effects: peripheral commands must take the read()/write()
  // fallback (dmi_misses), memory commands the window path, and the
  // transcript must still match the functional element run against an
  // identically configured fresh system.
  std::vector<CommandType> workload;
  for (int i = 0; i < 20; ++i) {
    workload.push_back(CommandType{.op = BusOp::Write,
                                   .addr = 0x1000u + 4 * i,
                                   .data = {0xA0u + static_cast<unsigned>(i)}});
    workload.push_back(
        CommandType{.op = BusOp::Write, .addr = 0x200C, .data = {0x77u}});
    workload.push_back(
        CommandType{.op = BusOp::Read, .addr = 0x1000u + 4 * i, .count = 1});
    workload.push_back(
        CommandType{.op = BusOp::Read, .addr = 0x2004, .count = 1});
  }
  auto build_and_run = [&](auto&& runner) {
    Kernel k;
    tlm::TlmMemory mem(0x1000, 0x1000);
    tlm::RegisterPeripheral periph(0x2000);
    tlm::TlmRouter router;
    router.attach(mem);
    router.attach(periph);
    return runner(k, router);
  };
  verify::Transcript golden =
      build_and_run([&](Kernel& k, tlm::TlmRouter& router) {
        FunctionalBusInterface iface(k, "iface", router);
        Application app(k, "app", iface, workload);
        k.run_for(1000_us);
        EXPECT_TRUE(app.done());
        return app.transcript();
      });
  tlm::TlmStats stats;
  verify::Transcript lt = build_and_run([&](Kernel& k,
                                            tlm::TlmRouter& router) {
    LtBusInterface bus(k, "lt", router, quantum_of(8));
    LtStimuliEngine eng(bus, workload);
    k.run_for(1000_us);
    EXPECT_TRUE(eng.done());
    stats = bus.tlm_stats();
    return eng.transcript();
  });
  auto cmp = verify::compare_functional(golden, lt);
  EXPECT_TRUE(cmp) << cmp.first_difference;
  EXPECT_GT(stats.dmi_hits, 0u) << "memory commands must use the window";
  EXPECT_GE(stats.dmi_misses, 40u) << "peripheral commands must fall back";
}

TEST(LtDmi, RouterAttachInvalidatesCachedWindow) {
  // A decode change between engine runs must invalidate the interface's
  // cached window: accesses after the attach still land correctly.
  Kernel k;
  tlm::TlmMemory mem_a(0x1000, 0x1000);
  tlm::TlmRouter router;
  router.attach(mem_a);
  LtBusInterface bus(k, "lt", router, quantum_of(4));

  std::vector<CommandType> first = {
      CommandType{.op = BusOp::Write, .addr = 0x1000, .data = {0x11u}},
      CommandType{.op = BusOp::Read, .addr = 0x1000, .count = 1}};
  LtStimuliEngine eng1(bus, first);
  k.run_for(1000_us);
  ASSERT_TRUE(eng1.done());
  const std::uint64_t version_before = router.dmi_version();

  tlm::TlmMemory mem_b(0x3000, 0x1000);
  router.attach(mem_b);
  EXPECT_NE(router.dmi_version(), version_before);

  std::vector<CommandType> second = {
      CommandType{.op = BusOp::Write, .addr = 0x3000, .data = {0x22u}},
      CommandType{.op = BusOp::Read, .addr = 0x3000, .count = 1},
      CommandType{.op = BusOp::Read, .addr = 0x1000, .count = 1}};
  LtStimuliEngine eng2(bus, second);
  k.run_for(2000_us);
  ASSERT_TRUE(eng2.done());
  EXPECT_EQ(eng2.transcript().entries()[1].data,
            (std::vector<std::uint32_t>{0x22u}));
  EXPECT_EQ(eng2.transcript().entries()[2].data,
            (std::vector<std::uint32_t>{0x11u}));
  EXPECT_EQ(mem_b.peek(0), 0x22u);
}

TEST(LtBatching, ObjectStatsAccountQuantumCommits) {
  // n transactions = 2n app-side calls (putCommand + appDataGet) + 2n
  // interface-side calls (getCommand + putResponse), committed as one
  // episode per side per quantum.
  const std::size_t n = 64;
  auto workload = tlm::sequential_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x400}, n);
  LtRun run = lt_run(workload, quantum_of(16));
  EXPECT_EQ(run.stats.transactions, n);
  EXPECT_EQ(run.stats.batched_guarded_calls, 4 * n);
  EXPECT_EQ(run.object_stats.grants, 4 * n);
  EXPECT_EQ(run.object_stats.batched_calls, 4 * n);
  EXPECT_GT(run.object_stats.batched_commits, 0u);
  EXPECT_EQ(run.object_stats.batched_commits % 2, 0u)
      << "commits come in app/interface pairs";
  // All batched grants are zero-wait: the latency histograms hold 2n
  // zero samples per batching client.
  std::uint64_t batched_zero_lat = 0;
  for (const auto& cs : run.object_stats.clients) {
    if (cs.name == "lt_batch_app" || cs.name == "lt_batch_if") {
      EXPECT_EQ(cs.calls, 2 * n);
      EXPECT_EQ(cs.granted, 2 * n);
      batched_zero_lat += cs.latency.bucket(0);
    }
  }
  EXPECT_EQ(batched_zero_lat, 4 * n);
  // The quanta all warped (nothing else was pending).
  EXPECT_GT(run.stats.warps, 0u);
  EXPECT_EQ(run.kernel_warps, run.stats.warps);
}

TEST(LtChannel, ApplicationRunsUnchangedAgainstLtInterface) {
  // The Figure-3 substitution test for the new element: the SAME
  // Application drives LtBusInterface through the guarded-method
  // channel, with no engine involved, and the transcript matches the
  // functional element's.
  auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x400, .seed = 4242}, 60);
  verify::Transcript golden = functional_run(workload);
  Kernel k;
  tlm::TlmMemory mem(0x1000, 0x1000);
  LtBusInterface bus(k, "lt", mem, quantum_of(16));
  Application app(k, "app", bus, workload);
  for (int slice = 0; slice < 100 && !app.done(); ++slice) k.run_for(1000_us);
  ASSERT_TRUE(app.done());
  auto cmp = verify::compare_functional(golden, app.transcript());
  EXPECT_TRUE(cmp) << cmp.first_difference;
  EXPECT_EQ(bus.tlm_stats().transactions, 60u);
  EXPECT_GT(bus.stats().commands_served, 0u);
}

TEST(QuantumKeeper, AccruesAndSyncsViaWarpWhenIdle) {
  Kernel k;
  tlm::TlmStats stats;
  tlm::QuantumKeeper qk(k, 100_ns, stats);
  bool checked = false;
  k.spawn("lt", [&]() -> Task {
    EXPECT_TRUE(qk.local_offset().is_zero());
    qk.inc(60_ns);
    EXPECT_FALSE(qk.need_sync());
    EXPECT_EQ(qk.local_now().picos(), 60000u);
    qk.inc(60_ns);
    EXPECT_TRUE(qk.need_sync());
    co_await qk.sync();
    EXPECT_EQ(k.now().picos(), 120000u) << "kernel caught up to local time";
    EXPECT_TRUE(qk.local_offset().is_zero());
    checked = true;
  });
  k.run_for(1_ms);
  EXPECT_TRUE(checked);
  EXPECT_EQ(stats.syncs, 1u);
  EXPECT_EQ(stats.warps, 1u);
  EXPECT_EQ(k.stats().time_warps, 1u);
}

TEST(QuantumKeeper, FallsBackToTimedWaitWhenOthersAreDue) {
  // A second process sleeps INSIDE the keeper's run-ahead span, so the
  // warp is refused and the sync degrades to an ordinary timed wait that
  // lets the other process run at its due time.
  Kernel k;
  tlm::TlmStats stats;
  tlm::QuantumKeeper qk(k, 100_ns, stats);
  std::vector<int> order;
  k.spawn("other", [&]() -> Task {
    co_await k.wait(50_ns);
    order.push_back(1);
  });
  k.spawn("lt", [&]() -> Task {
    qk.inc(200_ns);
    co_await qk.sync();
    order.push_back(2);
    EXPECT_EQ(k.now().picos(), 200000u);
  });
  k.run_for(1_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(stats.syncs, 1u);
  EXPECT_EQ(stats.warps, 0u);
  EXPECT_EQ(k.stats().time_warps, 0u);
}

TEST(QuantumKeeper, ZeroOffsetSyncIsNoop) {
  Kernel k;
  tlm::TlmStats stats;
  tlm::QuantumKeeper qk(k, 100_ns, stats);
  bool ran = false;
  k.spawn("lt", [&]() -> Task {
    co_await qk.sync();
    EXPECT_TRUE(k.now().is_zero());
    ran = true;
  });
  k.run_for(1_us);
  EXPECT_TRUE(ran);
  EXPECT_EQ(stats.syncs, 0u);
}

}  // namespace
}  // namespace hlcs::pattern
