#include "hlcs/osss/arbitration.hpp"

#include <gtest/gtest.h>

#include <map>

namespace hlcs::osss {
namespace {

RequestInfo req(std::size_t client, std::uint64_t seq, int prio = 0,
                std::uint64_t waited = 0) {
  return RequestInfo{client, seq, prio, waited};
}

TEST(FifoArbitration, PicksOldest) {
  FifoArbitration p;
  std::vector<RequestInfo> e = {req(2, 30), req(0, 10), req(1, 20)};
  EXPECT_EQ(p.pick(e), 1u);
}

TEST(FifoArbitration, SingleEligible) {
  FifoArbitration p;
  std::vector<RequestInfo> e = {req(5, 99)};
  EXPECT_EQ(p.pick(e), 0u);
}

TEST(RoundRobinArbitration, RotatesThroughClients) {
  RoundRobinArbitration p;
  std::vector<RequestInfo> e = {req(0, 1), req(1, 2), req(2, 3)};
  EXPECT_EQ(e[p.pick(e)].client, 0u);
  EXPECT_EQ(e[p.pick(e)].client, 1u);
  EXPECT_EQ(e[p.pick(e)].client, 2u);
  EXPECT_EQ(e[p.pick(e)].client, 0u) << "wraps around";
}

TEST(RoundRobinArbitration, SkipsIneligibleClients) {
  RoundRobinArbitration p;
  std::vector<RequestInfo> all = {req(0, 1), req(1, 2), req(2, 3)};
  EXPECT_EQ(all[p.pick(all)].client, 0u);
  // Client 1 not eligible now: next grant should go to 2, not 1.
  std::vector<RequestInfo> sub = {req(0, 4), req(2, 3)};
  EXPECT_EQ(sub[p.pick(sub)].client, 2u);
}

TEST(StaticPriorityArbitration, HigherPriorityWins) {
  StaticPriorityArbitration p;
  std::vector<RequestInfo> e = {req(0, 1, 1), req(1, 2, 5), req(2, 3, 3)};
  EXPECT_EQ(e[p.pick(e)].client, 1u);
}

TEST(StaticPriorityArbitration, FifoAmongEqualPriority) {
  StaticPriorityArbitration p;
  std::vector<RequestInfo> e = {req(0, 9, 2), req(1, 4, 2), req(2, 7, 2)};
  EXPECT_EQ(e[p.pick(e)].client, 1u);
}

TEST(RandomArbitration, DeterministicForFixedSeed) {
  RandomArbitration a(42), b(42);
  std::vector<RequestInfo> e = {req(0, 1), req(1, 2), req(2, 3), req(3, 4)};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.pick(e), b.pick(e));
}

TEST(RandomArbitration, CoversAllChoicesEventually) {
  RandomArbitration p(7);
  std::vector<RequestInfo> e = {req(0, 1), req(1, 2), req(2, 3)};
  std::map<std::size_t, int> hits;
  for (int i = 0; i < 300; ++i) hits[p.pick(e)]++;
  EXPECT_EQ(hits.size(), 3u);
  for (auto& [idx, n] : hits) EXPECT_GT(n, 30) << "choice " << idx;
}

TEST(UserArbitration, DelegatesToFunction) {
  // "Youngest first" -- a deliberately unusual user algorithm.
  UserArbitration p("lifo", [](const std::vector<RequestInfo>& e) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < e.size(); ++i) {
      if (e[i].seq > e[best].seq) best = i;
    }
    return best;
  });
  std::vector<RequestInfo> e = {req(0, 10), req(1, 30), req(2, 20)};
  EXPECT_EQ(p.pick(e), 1u);
  EXPECT_EQ(p.name(), "lifo");
}

TEST(UserArbitration, OutOfRangePickThrows) {
  UserArbitration p("bad",
                    [](const std::vector<RequestInfo>& e) { return e.size(); });
  std::vector<RequestInfo> e = {req(0, 1)};
  EXPECT_THROW(p.pick(e), hlcs::Error);
}

TEST(UserArbitration, NullFunctionThrows) {
  EXPECT_THROW(UserArbitration("null", nullptr), hlcs::Error);
}

TEST(PolicyFactory, MakesAllKinds) {
  EXPECT_EQ(make_policy(PolicyKind::Fifo)->name(), "fifo");
  EXPECT_EQ(make_policy(PolicyKind::RoundRobin)->name(), "round_robin");
  EXPECT_EQ(make_policy(PolicyKind::StaticPriority)->name(), "static_priority");
  EXPECT_EQ(make_policy(PolicyKind::Random)->name(), "random");
}

TEST(PolicyFactory, NamesMatchHelper) {
  for (PolicyKind kind : {PolicyKind::Fifo, PolicyKind::RoundRobin,
                          PolicyKind::StaticPriority, PolicyKind::Random}) {
    EXPECT_EQ(make_policy(kind)->name(), policy_name(kind));
  }
}

}  // namespace
}  // namespace hlcs::osss
