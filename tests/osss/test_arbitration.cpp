#include "hlcs/osss/arbitration.hpp"

#include <gtest/gtest.h>

#include <map>

namespace hlcs::osss {
namespace {

RequestInfo req(std::size_t client, std::uint64_t seq, int prio = 0,
                std::uint64_t waited = 0, std::uint64_t streak = 0) {
  return RequestInfo{client, seq, prio, waited, streak};
}

TEST(FifoArbitration, PicksOldest) {
  FifoArbitration p;
  std::vector<RequestInfo> e = {req(2, 30), req(0, 10), req(1, 20)};
  EXPECT_EQ(p.pick(e), 1u);
}

TEST(FifoArbitration, SingleEligible) {
  FifoArbitration p;
  std::vector<RequestInfo> e = {req(5, 99)};
  EXPECT_EQ(p.pick(e), 0u);
}

TEST(RoundRobinArbitration, RotatesThroughClients) {
  RoundRobinArbitration p;
  std::vector<RequestInfo> e = {req(0, 1), req(1, 2), req(2, 3)};
  EXPECT_EQ(e[p.pick(e)].client, 0u);
  EXPECT_EQ(e[p.pick(e)].client, 1u);
  EXPECT_EQ(e[p.pick(e)].client, 2u);
  EXPECT_EQ(e[p.pick(e)].client, 0u) << "wraps around";
}

TEST(RoundRobinArbitration, SkipsIneligibleClients) {
  RoundRobinArbitration p;
  std::vector<RequestInfo> all = {req(0, 1), req(1, 2), req(2, 3)};
  EXPECT_EQ(all[p.pick(all)].client, 0u);
  // Client 1 not eligible now: next grant should go to 2, not 1.
  std::vector<RequestInfo> sub = {req(0, 4), req(2, 3)};
  EXPECT_EQ(sub[p.pick(sub)].client, 2u);
}

TEST(StaticPriorityArbitration, HigherPriorityWins) {
  StaticPriorityArbitration p;
  std::vector<RequestInfo> e = {req(0, 1, 1), req(1, 2, 5), req(2, 3, 3)};
  EXPECT_EQ(e[p.pick(e)].client, 1u);
}

TEST(StaticPriorityArbitration, FifoAmongEqualPriority) {
  StaticPriorityArbitration p;
  std::vector<RequestInfo> e = {req(0, 9, 2), req(1, 4, 2), req(2, 7, 2)};
  EXPECT_EQ(e[p.pick(e)].client, 1u);
}

TEST(RandomArbitration, DeterministicForFixedSeed) {
  RandomArbitration a(42), b(42);
  std::vector<RequestInfo> e = {req(0, 1), req(1, 2), req(2, 3), req(3, 4)};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.pick(e), b.pick(e));
}

TEST(RandomArbitration, CoversAllChoicesEventually) {
  RandomArbitration p(7);
  std::vector<RequestInfo> e = {req(0, 1), req(1, 2), req(2, 3)};
  std::map<std::size_t, int> hits;
  for (int i = 0; i < 300; ++i) hits[p.pick(e)]++;
  EXPECT_EQ(hits.size(), 3u);
  for (auto& [idx, n] : hits) EXPECT_GT(n, 30) << "choice " << idx;
}

TEST(UserArbitration, DelegatesToFunction) {
  // "Youngest first" -- a deliberately unusual user algorithm.
  UserArbitration p("lifo", [](const std::vector<RequestInfo>& e) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < e.size(); ++i) {
      if (e[i].seq > e[best].seq) best = i;
    }
    return best;
  });
  std::vector<RequestInfo> e = {req(0, 10), req(1, 30), req(2, 20)};
  EXPECT_EQ(p.pick(e), 1u);
  EXPECT_EQ(p.name(), "lifo");
}

TEST(UserArbitration, OutOfRangePickThrows) {
  UserArbitration p("bad",
                    [](const std::vector<RequestInfo>& e) { return e.size(); });
  std::vector<RequestInfo> e = {req(0, 1)};
  EXPECT_THROW(p.pick(e), hlcs::Error);
}

TEST(UserArbitration, NullFunctionThrows) {
  EXPECT_THROW(UserArbitration("null", nullptr), hlcs::Error);
}

TEST(AdaptiveArbitration, ColdModeIsLongestTotalWaitFirst) {
  AdaptiveArbitration p;
  // Uncontended-ish history: streaks are irrelevant while cold.
  std::vector<RequestInfo> e = {req(0, 5, 0, 10, 1), req(1, 3, 0, 40, 2),
                                req(2, 4, 0, 20, 3)};
  EXPECT_EQ(e[p.pick(e)].client, 1u);
  EXPECT_FALSE(p.hot());
}

TEST(AdaptiveArbitration, ColdTiesBreakByPriorityThenSeq) {
  AdaptiveArbitration p;
  std::vector<RequestInfo> same_wait = {req(0, 5, 0, 9), req(1, 3, 2, 9),
                                        req(2, 4, 2, 9)};
  EXPECT_EQ(same_wait[p.pick(same_wait)].client, 1u)
      << "priority wins the tie, then the lower seq";
}

TEST(AdaptiveArbitration, HotModeEngagesAfterContendedWindow) {
  AdaptiveArbitration p(AdaptiveTuning{.starve_bound = 1000, .window = 4,
                                       .hot_threshold = 2});
  std::vector<RequestInfo> contended = {req(0, 1, 0, 8, 1),
                                        req(1, 2, 0, 2, 7)};
  // Window of 4 contended picks flips the mode at the boundary.
  for (int i = 0; i < 4; ++i) p.pick(contended);
  EXPECT_TRUE(p.hot());
  // Hot mode keys on the eligible streak, not the total wait: client 1
  // has waited less overall but has been *eligible* longer.
  EXPECT_EQ(contended[p.pick(contended)].client, 1u);
}

TEST(AdaptiveArbitration, HotModeDisengagesWhenUncontended) {
  AdaptiveArbitration p(AdaptiveTuning{.starve_bound = 1000, .window = 4,
                                       .hot_threshold = 2});
  std::vector<RequestInfo> contended = {req(0, 1, 0, 8), req(1, 2, 0, 2)};
  for (int i = 0; i < 4; ++i) p.pick(contended);
  ASSERT_TRUE(p.hot());
  std::vector<RequestInfo> solo = {req(0, 9)};
  for (int i = 0; i < 4; ++i) p.pick(solo);
  EXPECT_FALSE(p.hot());
}

TEST(AdaptiveArbitration, AgedLaneOverridesEverything) {
  AdaptiveArbitration p(AdaptiveTuning{.starve_bound = 8, .window = 16,
                                       .hot_threshold = 8});
  // Client 2 crossed the aged threshold on eligible streak; client 0 has
  // a larger total wait and a higher priority, but is not aged.
  std::vector<RequestInfo> e = {req(0, 1, 5, 100, 7), req(1, 2, 0, 50, 9),
                                req(2, 3, 0, 60, 8)};
  const std::size_t got = p.pick(e);
  EXPECT_EQ(e[got].client, 1u) << "longest streak among the aged wins";
}

TEST(AdaptiveArbitration, MatchesFifoWhenStreakEqualsWait) {
  // Unguarded saturated traffic: streak == waited for every request, so
  // adaptive must order exactly like FIFO in both modes.
  AdaptiveArbitration p(AdaptiveTuning{.starve_bound = 1000, .window = 2,
                                       .hot_threshold = 1});
  FifoArbitration f;
  for (int round = 0; round < 6; ++round) {
    std::vector<RequestInfo> e = {
        req(0, 10 + round, 0, 5 + round, 5 + round),
        req(1, 3 + round, 0, 12 + round, 12 + round),
        req(2, 7 + round, 0, 9 + round, 9 + round)};
    EXPECT_EQ(p.pick(e), f.pick(e)) << "round " << round;
  }
}

TEST(PolicyFactory, MakesAllKinds) {
  EXPECT_EQ(make_policy(PolicyKind::Fifo)->name(), "fifo");
  EXPECT_EQ(make_policy(PolicyKind::RoundRobin)->name(), "round_robin");
  EXPECT_EQ(make_policy(PolicyKind::StaticPriority)->name(), "static_priority");
  EXPECT_EQ(make_policy(PolicyKind::Random)->name(), "random");
  EXPECT_EQ(make_policy(PolicyKind::Adaptive)->name(), "adaptive");
}

TEST(PolicyFactory, NamesMatchHelper) {
  for (PolicyKind kind : {PolicyKind::Fifo, PolicyKind::RoundRobin,
                          PolicyKind::StaticPriority, PolicyKind::Random,
                          PolicyKind::Adaptive}) {
    EXPECT_EQ(make_policy(kind)->name(), policy_name(kind));
  }
}

TEST(PolicyFactory, SeedDecorrelatesRandomStreams) {
  auto a = make_policy(PolicyKind::Random, 1);
  auto b = make_policy(PolicyKind::Random, 2);
  std::vector<RequestInfo> e = {req(0, 1), req(1, 2), req(2, 3), req(3, 4)};
  int diff = 0;
  for (int i = 0; i < 200; ++i) diff += a->pick(e) != b->pick(e);
  EXPECT_GT(diff, 50) << "different seeds must give different streams";
}

TEST(ParsePolicy, RoundTripsEveryKind) {
  for (PolicyKind kind : {PolicyKind::Fifo, PolicyKind::RoundRobin,
                          PolicyKind::StaticPriority, PolicyKind::Random,
                          PolicyKind::Adaptive}) {
    EXPECT_EQ(parse_policy(policy_name(kind)), kind);
  }
}

TEST(ParsePolicy, RejectsUnknownNameWithHint) {
  try {
    parse_policy("fair_share");
    FAIL() << "expected hlcs::Error";
  } catch (const hlcs::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fair_share"), std::string::npos) << msg;
    EXPECT_NE(msg.find("adaptive"), std::string::npos)
        << "message should list the valid names: " << msg;
  }
}

}  // namespace
}  // namespace hlcs::osss
