// Additional SharedObject behaviours: user-defined arbitration plugged
// into a live object, non-blocking probes under load, reset patterns,
// and pathological schedules.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hlcs/osss/osss.hpp"
#include "hlcs/sim/sim.hpp"

namespace hlcs::osss {
namespace {

using namespace hlcs::sim::literals;
using sim::Clock;
using sim::Kernel;
using sim::Task;

TEST(SharedObjectUser, UserDefinedAlgorithmDrivesGrantOrder) {
  // "the calls are queued and scheduled according to a user defined
  // algorithm" -- here: highest client id first (reverse priority).
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  auto policy = std::make_unique<UserArbitration>(
      "reverse", [](const std::vector<RequestInfo>& e) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < e.size(); ++i) {
          if (e[i].client > e[best].client) best = i;
        }
        return best;
      });
  SharedObject<std::vector<int>> obj(k, "obj", clk, std::move(policy));
  for (int i = 0; i < 3; ++i) {
    auto c = obj.make_client("c" + std::to_string(i));
    k.spawn("p" + std::to_string(i), [&k, c, i]() -> Task {
      co_await c.call([i](std::vector<int>& v) { v.push_back(i); });
    });
  }
  k.run_for(100_ns);
  ASSERT_EQ(obj.peek().size(), 3u);
  EXPECT_EQ(obj.peek(), (std::vector<int>{2, 1, 0}));
}

TEST(SharedObjectUser, TryCallRefusedWhileQueueNonEmpty) {
  // try_call must not jump ahead of blocked callers.
  Kernel k;
  SharedObject<int> obj(k, "obj", std::make_unique<FifoArbitration>(), 0);
  auto blocked = obj.make_client("blocked");
  auto prober = obj.make_client("prober");
  bool probe_refused = false;
  k.spawn("blocked", [&]() -> Task {
    co_await blocked.call([](const int& v) { return v > 100; }, [](int&) {});
  });
  k.spawn("prober", [&]() -> Task {
    co_await k.wait(5_ns);  // let the blocked call enqueue
    auto r = prober.try_call([](const int&) { return true; },
                             [](int& v) { return ++v; });
    probe_refused = !r.has_value();
  });
  k.run_for(100_ns);
  EXPECT_TRUE(probe_refused);
  EXPECT_EQ(obj.peek(), 0) << "probe must not have executed";
}

TEST(SharedObjectUser, ResetStyleUnguardedCallDrainsState) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  SharedObject<std::vector<int>> obj(k, "obj", clk,
                                     std::make_unique<FifoArbitration>());
  auto writer = obj.make_client("writer");
  auto resetter = obj.make_client("resetter");
  k.spawn("writer", [&]() -> Task {
    for (int i = 0; i < 5; ++i) {
      co_await writer.call([i](std::vector<int>& v) { v.push_back(i); });
    }
  });
  k.spawn("resetter", [&]() -> Task {
    co_await k.wait(200_ns);
    co_await resetter.call([](std::vector<int>& v) { v.clear(); });
  });
  k.run_for(1_us);
  EXPECT_TRUE(obj.peek().empty());
}

TEST(SharedObjectUser, ManyClientsManyCallsClockedComplete) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  SharedObject<std::uint64_t> obj(k, "obj", clk,
                                  std::make_unique<RoundRobinArbitration>(),
                                  0);
  constexpr int kClients = 16;
  constexpr int kCalls = 10;
  int finished = 0;
  for (int i = 0; i < kClients; ++i) {
    auto c = obj.make_client("c" + std::to_string(i));
    k.spawn("p" + std::to_string(i), [&k, &finished, c]() -> Task {
      for (int j = 0; j < kCalls; ++j) {
        co_await c.call([](std::uint64_t& v) { ++v; });
      }
      ++finished;
    });
  }
  k.run_for(10_us);  // 1000 cycles >> 160 calls
  EXPECT_EQ(finished, kClients);
  EXPECT_EQ(obj.peek(), static_cast<std::uint64_t>(kClients * kCalls));
  EXPECT_EQ(obj.stats().grants,
            static_cast<std::uint64_t>(kClients * kCalls));
}

TEST(SharedObjectUser, GuardsReferencingExternalStateAreReevaluated) {
  // A guard may capture module state; it is re-evaluated on every
  // service step, not just at call time.
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  SharedObject<int> obj(k, "obj", clk, std::make_unique<FifoArbitration>(),
                        0);
  auto c = obj.make_client("c");
  bool gate = false;
  sim::Time woke;
  k.spawn("caller", [&]() -> Task {
    co_await c.call([&gate](const int&) { return gate; }, [](int& v) { ++v; });
    woke = k.now();
  });
  k.spawn("opener", [&]() -> Task {
    co_await k.wait(300_ns);
    gate = true;
  });
  k.run_for(2_us);
  EXPECT_GE(woke.picos(), 300000u);
  EXPECT_EQ(obj.peek(), 1);
}

TEST(SharedObjectUser, InterleavedProducersConsumersClocked) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  SharedObject<GuardedFifo<int>> fifo(
      k, "fifo", clk, std::make_unique<FifoArbitration>(), GuardedFifo<int>(4));
  std::vector<int> out;
  constexpr int kItems = 30;
  for (int p = 0; p < 2; ++p) {
    auto c = fifo.make_client("prod" + std::to_string(p));
    k.spawn("prod" + std::to_string(p), [&k, c, p]() -> Task {
      for (int i = 0; i < kItems / 2; ++i) {
        const int value = p * 1000 + i;
        co_await c.call([](const GuardedFifo<int>& f) { return !f.full(); },
                        [value](GuardedFifo<int>& f) { f.push(value); });
      }
    });
  }
  auto consumer = fifo.make_client("cons");
  k.spawn("cons", [&]() -> Task {
    for (int i = 0; i < kItems; ++i) {
      int v = co_await consumer.call(
          [](const GuardedFifo<int>& f) { return !f.empty(); },
          [](GuardedFifo<int>& f) { return f.pop(); });
      out.push_back(v);
    }
  });
  k.run_for(10_us);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kItems));
  // Per-producer order is preserved even though grants interleave.
  int last0 = -1, last1 = -1;
  for (int v : out) {
    if (v < 1000) {
      EXPECT_GT(v, last0);
      last0 = v;
    } else {
      EXPECT_GT(v, last1);
      last1 = v;
    }
  }
}

TEST(GuardedFifoUnit, CapacityAndOrdering) {
  GuardedFifo<int> f(3);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.capacity(), 3u);
  f.push(1);
  f.push(2);
  f.push(3);
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.front(), 1);
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.pop(), 2);
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_THROW(f.pop(), hlcs::Error);
  EXPECT_THROW(f.front(), hlcs::Error);
  f.push(9);
  f.push(9);
  f.push(9);
  EXPECT_THROW(f.push(9), hlcs::Error);
  EXPECT_THROW(GuardedFifo<int>(0), hlcs::Error);
}

}  // namespace
}  // namespace hlcs::osss
