#include "hlcs/osss/shared_object.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hlcs/osss/bistable.hpp"
#include "hlcs/osss/guarded_fifo.hpp"
#include "hlcs/sim/clock.hpp"
#include "hlcs/sim/kernel.hpp"

namespace hlcs::osss {
namespace {

using namespace hlcs::sim::literals;
using sim::Clock;
using sim::Kernel;
using sim::Task;

// ---------------------------------------------------------------------
// Figure 1 semantics: connected instances share one state space.
// ---------------------------------------------------------------------

TEST(SharedObjectUntimed, SharedStateSpaceAcrossModules) {
  Kernel k;
  SharedObject<Bistable> bistable(k, "bistable",
                                  std::make_unique<FifoArbitration>());
  auto module_a = bistable.make_client("module_a");
  auto module_b = bistable.make_client("module_b");

  bool observed = false;
  k.spawn("a", [&]() -> Task {
    co_await module_a.call([](Bistable& b) { b.set(); });
  });
  k.spawn("b", [&]() -> Task {
    // Guarded on the state set by module a: suspends until it holds.
    co_await module_b.call([](const Bistable& b) { return b.get_state(); },
                           [&](Bistable&) {});
    observed = true;
  });
  k.run();
  EXPECT_TRUE(observed);
  EXPECT_TRUE(bistable.peek().get_state());
}

TEST(SharedObjectUntimed, GuardSuspendsUntilTrue) {
  Kernel k;
  SharedObject<int> counter(k, "counter",
                            std::make_unique<FifoArbitration>(), 0);
  auto writer = counter.make_client("writer");
  auto waiter = counter.make_client("waiter");

  sim::Time woke = sim::Time::zero();
  k.spawn("waiter", [&]() -> Task {
    co_await waiter.call([](const int& v) { return v >= 3; }, [](int&) {});
    woke = k.now();
  });
  k.spawn("writer", [&]() -> Task {
    for (int i = 0; i < 5; ++i) {
      co_await k.wait(10_ns);
      co_await writer.call([](int& v) { ++v; });
    }
  });
  k.run();
  EXPECT_EQ(woke, 30_ns) << "guard v>=3 becomes true at the third increment";
}

TEST(SharedObjectUntimed, CallReturnsValue) {
  Kernel k;
  SharedObject<int> obj(k, "obj", std::make_unique<FifoArbitration>(), 41);
  auto c = obj.make_client("c");
  int got = 0;
  k.spawn("p", [&]() -> Task {
    got = co_await c.call([](int& v) { return ++v; });
  });
  k.run();
  EXPECT_EQ(got, 42);
}

TEST(SharedObjectUntimed, CallsAreAtomic) {
  // Two processes each do read-modify-write 100 times; with atomic
  // guarded calls no increment is lost.
  Kernel k;
  SharedObject<int> obj(k, "obj", std::make_unique<FifoArbitration>(), 0);
  auto c1 = obj.make_client("c1");
  auto c2 = obj.make_client("c2");
  auto worker = [&k](SharedObject<int>::Client c) -> Task {
    for (int i = 0; i < 100; ++i) {
      co_await c.call([](int& v) {
        int tmp = v;
        v = tmp + 1;
      });
    }
  };
  k.spawn("w1", [&, c1]() -> Task { return worker(c1); });
  k.spawn("w2", [&, c2]() -> Task { return worker(c2); });
  k.run();
  EXPECT_EQ(obj.peek(), 200);
}

TEST(SharedObjectUntimed, ProducerConsumerThroughGuardedFifo) {
  Kernel k;
  SharedObject<GuardedFifo<int>> fifo(k, "fifo",
                                      std::make_unique<FifoArbitration>(),
                                      GuardedFifo<int>(2));
  auto prod = fifo.make_client("prod");
  auto cons = fifo.make_client("cons");
  std::vector<int> received;
  constexpr int kItems = 50;
  k.spawn("producer", [&]() -> Task {
    for (int i = 0; i < kItems; ++i) {
      co_await prod.call(
          [](const GuardedFifo<int>& f) { return !f.full(); },
          [i](GuardedFifo<int>& f) { f.push(i); });
    }
  });
  k.spawn("consumer", [&]() -> Task {
    for (int i = 0; i < kItems; ++i) {
      int v = co_await cons.call(
          [](const GuardedFifo<int>& f) { return !f.empty(); },
          [](GuardedFifo<int>& f) { return f.pop(); });
      received.push_back(v);
    }
  });
  k.run();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
}

TEST(SharedObjectUntimed, UnguardedCallAlwaysEligible) {
  Kernel k;
  SharedObject<int> obj(k, "obj", std::make_unique<FifoArbitration>(), 7);
  auto c = obj.make_client("c");
  bool reset_done = false;
  k.spawn("p", [&]() -> Task {
    co_await c.call([&](int& v) {
      v = 0;
      reset_done = true;
    });
  });
  k.run();
  EXPECT_TRUE(reset_done);
  EXPECT_EQ(obj.peek(), 0);
}

TEST(SharedObjectUntimed, TryCallHitAndMiss) {
  Kernel k;
  SharedObject<int> obj(k, "obj", std::make_unique<FifoArbitration>(), 1);
  auto c = obj.make_client("c");
  auto hit = c.try_call([](const int& v) { return v > 0; },
                        [](int& v) { return v * 10; });
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 10);
  auto miss = c.try_call([](const int& v) { return v > 100; },
                         [](int& v) { return v; });
  EXPECT_FALSE(miss.has_value());
  EXPECT_EQ(obj.stats().try_call_hits, 1u);
  EXPECT_EQ(obj.stats().try_call_misses, 1u);
}

TEST(SharedObjectUntimed, StatsCountCallsAndGrants) {
  Kernel k;
  SharedObject<int> obj(k, "obj", std::make_unique<FifoArbitration>(), 0);
  auto c1 = obj.make_client("alpha");
  auto c2 = obj.make_client("beta");
  k.spawn("p1", [&]() -> Task {
    for (int i = 0; i < 3; ++i) co_await c1.call([](int& v) { ++v; });
  });
  k.spawn("p2", [&]() -> Task {
    for (int i = 0; i < 2; ++i) co_await c2.call([](int& v) { ++v; });
  });
  k.run();
  const auto& st = obj.stats();
  EXPECT_EQ(st.grants, 5u);
  ASSERT_EQ(st.clients.size(), 2u);
  EXPECT_EQ(st.clients[0].name, "alpha");
  EXPECT_EQ(st.clients[0].calls, 3u);
  EXPECT_EQ(st.clients[0].granted, 3u);
  EXPECT_EQ(st.clients[1].calls, 2u);
}

TEST(SharedObjectUntimed, UnconnectedClientThrows) {
  SharedObject<int>::Client c;
  EXPECT_FALSE(c.connected());
  EXPECT_THROW(c.call([](int&) {}), hlcs::Error);
}

TEST(SharedObjectUntimed, GrantsHappenAtSameSimTime) {
  Kernel k;
  SharedObject<int> obj(k, "obj", std::make_unique<FifoArbitration>(), 0);
  auto c = obj.make_client("c");
  sim::Time t_before, t_after;
  k.spawn("p", [&]() -> Task {
    t_before = k.now();
    co_await c.call([](int& v) { ++v; });
    t_after = k.now();
  });
  k.run();
  EXPECT_EQ(t_before, t_after) << "untimed grants take zero simulated time";
}

// ---------------------------------------------------------------------
// Clocked mode: one grant per rising edge ("synchronous logic").
// ---------------------------------------------------------------------

TEST(SharedObjectClocked, OneGrantPerCycle) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  SharedObject<int> obj(k, "obj", clk, std::make_unique<FifoArbitration>(), 0);
  constexpr int kClients = 4;
  std::vector<sim::Time> done(kClients);
  for (int i = 0; i < kClients; ++i) {
    auto c = obj.make_client("c" + std::to_string(i));
    k.spawn("p" + std::to_string(i), [&, c, i]() -> Task {
      co_await c.call([](int& v) { ++v; });
      done[static_cast<std::size_t>(i)] = k.now();
    });
  }
  k.run_for(1_us);
  EXPECT_EQ(obj.peek(), kClients);
  // FIFO policy: grants at consecutive rising edges 5, 15, 25, 35 ns.
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(done[static_cast<std::size_t>(i)].picos(),
              5000u + 10000u * static_cast<std::uint64_t>(i))
        << "client " << i;
  }
}

TEST(SharedObjectClocked, WaitCyclesGrowWithContention) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  SharedObject<int> obj(k, "obj", clk, std::make_unique<FifoArbitration>(), 0);
  constexpr int kClients = 8;
  for (int i = 0; i < kClients; ++i) {
    auto c = obj.make_client("c" + std::to_string(i));
    k.spawn("p" + std::to_string(i), [&, c]() -> Task {
      co_await c.call([](int& v) { ++v; });
    });
  }
  k.run_for(1_us);
  const auto& st = obj.stats();
  // The last-granted client waited ~kClients-1 more cycles than the first.
  std::uint64_t max_wait = 0;
  for (const auto& cs : st.clients) max_wait = std::max(max_wait, cs.wait_max);
  EXPECT_GE(max_wait, static_cast<std::uint64_t>(kClients - 2));
}

TEST(SharedObjectClocked, GuardHoldsCallUntilStateChanges) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  SharedObject<int> obj(k, "obj", clk, std::make_unique<FifoArbitration>(), 0);
  auto setter = obj.make_client("setter");
  auto guarded = obj.make_client("guarded");
  sim::Time woke;
  k.spawn("guarded", [&]() -> Task {
    co_await guarded.call([](const int& v) { return v != 0; }, [](int&) {});
    woke = k.now();
  });
  k.spawn("setter", [&]() -> Task {
    co_await k.wait(100_ns);
    co_await setter.call([](int& v) { v = 1; });
  });
  k.run_for(1_us);
  // Setter enqueues after 100ns, granted at the next edge (105ns); the
  // guarded call becomes eligible and is granted one cycle later (115ns).
  EXPECT_EQ(woke.picos(), 115000u);
}

TEST(SharedObjectClocked, PriorityPolicyPrefersHighPriorityClient) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  SharedObject<std::vector<int>> obj(
      k, "obj", clk, std::make_unique<StaticPriorityArbitration>());
  auto low = obj.make_client("low", /*priority=*/1);
  auto high = obj.make_client("high", /*priority=*/9);
  // Both enqueue at time 0 (same delta); high priority must win the
  // first edge even though low enqueued first.
  k.spawn("low", [&]() -> Task {
    co_await low.call([](std::vector<int>& v) { v.push_back(1); });
  });
  k.spawn("high", [&]() -> Task {
    co_await high.call([](std::vector<int>& v) { v.push_back(9); });
  });
  k.run_for(100_ns);
  ASSERT_EQ(obj.peek().size(), 2u);
  EXPECT_EQ(obj.peek()[0], 9);
  EXPECT_EQ(obj.peek()[1], 1);
}

TEST(SharedObjectClocked, RoundRobinSharesFairlyUnderSaturation) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  SharedObject<int> obj(k, "obj", clk,
                        std::make_unique<RoundRobinArbitration>(), 0);
  constexpr int kClients = 3;
  std::vector<int> grants(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    auto c = obj.make_client("c" + std::to_string(i));
    k.spawn("p" + std::to_string(i), [&, c, i]() -> Task {
      for (;;) {
        co_await c.call([](int& v) { ++v; });
        ++grants[static_cast<std::size_t>(i)];
      }
    });
  }
  k.run_for(3005_ns);  // ~300 cycles
  const int total = grants[0] + grants[1] + grants[2];
  EXPECT_GE(total, 290);
  for (int i = 0; i < kClients; ++i) {
    EXPECT_NEAR(grants[static_cast<std::size_t>(i)], total / kClients, 2)
        << "client " << i;
  }
}

TEST(SharedObjectClocked, ClockedFlagAndPending) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  SharedObject<int> clocked_obj(k, "a", clk,
                                std::make_unique<FifoArbitration>(), 0);
  SharedObject<int> untimed_obj(k, "b", std::make_unique<FifoArbitration>(),
                                0);
  EXPECT_TRUE(clocked_obj.clocked());
  EXPECT_FALSE(untimed_obj.clocked());
  EXPECT_EQ(clocked_obj.pending(), 0u);
}

TEST(SharedObjectClocked, BlockedGuardNeverGranted) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  SharedObject<int> obj(k, "obj", clk, std::make_unique<FifoArbitration>(), 0);
  auto c = obj.make_client("c");
  bool resumed = false;
  k.spawn("p", [&]() -> Task {
    co_await c.call([](const int&) { return false; }, [](int&) {});
    resumed = true;
  });
  k.run_for(500_ns);
  EXPECT_FALSE(resumed);
  EXPECT_EQ(obj.pending(), 1u);
  EXPECT_EQ(obj.stats().grants, 0u);
}

}  // namespace
}  // namespace hlcs::osss
