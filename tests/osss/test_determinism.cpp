// Golden determinism lock-down for the kernel + SharedObject hot paths.
//
// The expected values below were captured from the pre-optimisation
// kernel (std::priority_queue timed queue, virtual pending calls) and
// must stay BIT-IDENTICAL across performance work: grant order, kernel
// statistics, and end times are the observable schedule.  Any diff here
// means an optimisation changed simulation semantics, not just speed.
#include <gtest/gtest.h>

#include <string>

#include "hlcs/osss/osss.hpp"
#include "hlcs/sim/sim.hpp"

namespace {

using namespace hlcs;
using namespace hlcs::sim::literals;
using osss::PolicyKind;

struct CaseResult {
  std::string order;
  std::uint64_t value = 0;
  std::uint64_t grants = 0;
  std::uint64_t wait_total = 0;
  std::uint64_t wait_max = 0;
  std::uint64_t pool_misses = 0;
  sim::KernelStats stats;
  std::uint64_t now_ps = 0;
};

/// Clocked object, 4 contending clients, 40 clock cycles.
CaseResult run_clocked(PolicyKind pk, bool asymmetric) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  osss::SharedObject<std::uint64_t> obj(k, "obj", clk, osss::make_policy(pk),
                                        0);
  CaseResult r;
  for (int c = 0; c < 4; ++c) {
    auto client = obj.make_client("c" + std::to_string(c), asymmetric ? c : 0);
    k.spawn("p" + std::to_string(c), [&k, &r, client, c]() -> sim::Task {
      for (;;) {
        co_await client.call([&r, c](std::uint64_t& v) {
          ++v;
          r.order.push_back(static_cast<char>('0' + c));
        });
      }
    });
  }
  k.run_for(400_ns);
  r.value = obj.peek();
  r.grants = obj.stats().grants;
  r.pool_misses = obj.stats().pending_pool_misses;
  for (const auto& cs : obj.stats().clients) {
    r.wait_total += cs.wait_total;
    if (cs.wait_max > r.wait_max) r.wait_max = cs.wait_max;
  }
  r.stats = k.stats();
  r.now_ps = k.now().picos();
  return r;
}

void expect_clocked_kernel_stats(const CaseResult& r) {
  EXPECT_EQ(r.stats.deltas, 121u);
  EXPECT_EQ(r.stats.resumes, 125u);
  EXPECT_EQ(r.stats.method_runs, 40u);
  EXPECT_EQ(r.stats.updates, 80u);
  EXPECT_EQ(r.stats.timed_actions, 80u);
  EXPECT_EQ(r.stats.events_triggered, 160u);
  EXPECT_EQ(r.now_ps, 400000u);
}

TEST(Determinism, FifoGolden) {
  const CaseResult r = run_clocked(PolicyKind::Fifo, false);
  EXPECT_EQ(r.order, "0123012301230123012301230123012301230123");
  EXPECT_EQ(r.value, 40u);
  EXPECT_EQ(r.grants, 40u);
  EXPECT_EQ(r.wait_total, 154u);
  EXPECT_EQ(r.wait_max, 4u);
  expect_clocked_kernel_stats(r);
}

TEST(Determinism, RoundRobinGolden) {
  const CaseResult r = run_clocked(PolicyKind::RoundRobin, false);
  EXPECT_EQ(r.order, "0123012301230123012301230123012301230123");
  EXPECT_EQ(r.value, 40u);
  EXPECT_EQ(r.grants, 40u);
  EXPECT_EQ(r.wait_total, 154u);
  EXPECT_EQ(r.wait_max, 4u);
  expect_clocked_kernel_stats(r);
}

TEST(Determinism, StaticPriorityGolden) {
  // Asymmetric priorities: client 3 wins every arbitration.
  const CaseResult r = run_clocked(PolicyKind::StaticPriority, true);
  EXPECT_EQ(r.order, "3333333333333333333333333333333333333333");
  EXPECT_EQ(r.value, 40u);
  EXPECT_EQ(r.grants, 40u);
  EXPECT_EQ(r.wait_total, 40u);
  EXPECT_EQ(r.wait_max, 1u);
  expect_clocked_kernel_stats(r);
}

TEST(Determinism, RandomPolicyGoldenSeeded) {
  // "Random" arbitration is a deterministic PRNG: same seed, same grants.
  const CaseResult r = run_clocked(PolicyKind::Random, false);
  EXPECT_EQ(r.order, "1103233023033321033200330000133131123302");
  EXPECT_EQ(r.value, 40u);
  EXPECT_EQ(r.grants, 40u);
  EXPECT_EQ(r.wait_total, 152u);
  EXPECT_EQ(r.wait_max, 16u);
  expect_clocked_kernel_stats(r);
}

TEST(Determinism, RepeatedRunsBitIdentical) {
  const CaseResult a = run_clocked(PolicyKind::Fifo, false);
  const CaseResult b = run_clocked(PolicyKind::Fifo, false);
  EXPECT_EQ(a.order, b.order);
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_EQ(a.now_ps, b.now_ps);
}

TEST(Determinism, ZeroSteadyStateAllocOnGrantedFastPath) {
  // 4 clients contending for 40 cycles issue 40 + contention re-queues;
  // the pending pool must stop growing once it reaches the high-water
  // mark of 4 concurrent calls (vector growth 1->2->4 = 3 misses).
  const CaseResult r = run_clocked(PolicyKind::Fifo, false);
  EXPECT_LE(r.pool_misses, 3u);
}

TEST(Determinism, UntimedGuardedGolden) {
  // Untimed guarded producer/consumer through a bounded counter.
  sim::Kernel k;
  osss::SharedObject<int> obj(k, "ctr",
                              osss::make_policy(PolicyKind::Fifo), 0);
  std::string order;
  auto prod = obj.make_client("prod");
  auto cons = obj.make_client("cons");
  k.spawn("cons", [&]() -> sim::Task {
    for (int i = 0; i < 20; ++i) {
      co_await cons.call([](const int& v) { return v > 0; },
                         [&order](int& v) {
                           --v;
                           order.push_back('C');
                         });
    }
  });
  k.spawn("prod", [&]() -> sim::Task {
    for (int i = 0; i < 20; ++i) {
      co_await k.wait(5_ns);
      co_await prod.call([](const int& v) { return v < 3; },
                         [&order](int& v) {
                           ++v;
                           order.push_back('P');
                         });
    }
  });
  k.run();
  EXPECT_EQ(order, "PCPCPCPCPCPCPCPCPCPCPCPCPCPCPCPCPCPCPCPC");
  EXPECT_EQ(obj.peek(), 0);
  EXPECT_EQ(k.stats().deltas, 81u);
  EXPECT_EQ(k.stats().resumes, 62u);
  EXPECT_EQ(k.stats().method_runs, 60u);
  EXPECT_EQ(k.stats().updates, 0u);
  EXPECT_EQ(k.stats().timed_actions, 20u);
  EXPECT_EQ(k.stats().events_triggered, 60u);
  EXPECT_EQ(k.now().picos(), 100000u);
}

}  // namespace
