// The SimpleBus substrate and its library element, including the
// three-way refinement property: functional, PCI and SimpleBus elements
// all produce the same application transcript.
#include <gtest/gtest.h>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/pattern/simple_bus_interface.hpp"
#include "hlcs/sbus/simple_bus.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/tlm/tlm.hpp"
#include "hlcs/verify/compare.hpp"

namespace hlcs::sbus {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;
using sim::Task;

struct Bench {
  Kernel k;
  sim::Clock clk{k, "clk", 10_ns};
  SimpleBus bus{k, "sbus", clk};
  SimpleBusMaster master{k, "m0", bus};
  SimpleBusTarget target;

  explicit Bench(SimpleTargetConfig cfg = {.base = 0x1000, .size = 0x1000})
      : target(k, "t0", bus, cfg) {}
};

TEST(SimpleBus, WriteThenReadBack) {
  Bench b;
  bool done = false;
  b.k.spawn("drv", [&]() -> Task {
    std::uint32_t w = 0xABCD1234;
    bool ok = false;
    co_await b.master.transfer(true, 0x1010, &w, &ok);
    EXPECT_TRUE(ok);
    std::uint32_t r = 0;
    co_await b.master.transfer(false, 0x1010, &r, &ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(r, 0xABCD1234u);
    done = true;
    b.k.stop();
  });
  b.k.run_for(10_us);
  ASSERT_TRUE(done);
  EXPECT_EQ(b.target.memory().read_word(0x10), 0xABCD1234u);
  EXPECT_EQ(b.master.stats().transfers, 2u);
}

TEST(SimpleBus, DecodeTimeoutReportsError) {
  Bench b;
  bool done = false;
  b.k.spawn("drv", [&]() -> Task {
    std::uint32_t r = 0;
    bool ok = true;
    co_await b.master.transfer(false, 0x9000, &r, &ok);
    EXPECT_FALSE(ok);
    done = true;
    b.k.stop();
  });
  b.k.run_for(10_us);
  ASSERT_TRUE(done);
  EXPECT_EQ(b.master.stats().decode_errors, 1u);
}

TEST(SimpleBus, LatencyAddsWaitCycles) {
  Bench fast;
  Bench slow(SimpleTargetConfig{.base = 0x1000, .size = 0x1000,
                                .latency = 5});
  auto run_one = [](Bench& b) {
    std::uint64_t waits = 0;
    b.k.spawn("drv", [&]() -> Task {
      std::uint32_t w = 1;
      bool ok = false;
      co_await b.master.transfer(true, 0x1000, &w, &ok);
      EXPECT_TRUE(ok);
      b.k.stop();
    });
    b.k.run_for(10_us);
    waits = b.master.stats().wait_cycles;
    return waits;
  };
  const std::uint64_t fast_waits = run_one(fast);
  const std::uint64_t slow_waits = run_one(slow);
  EXPECT_GE(slow_waits, fast_waits + 5);
}

TEST(SimpleBus, TwoTargetsDecodeDisjointWindows) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  SimpleBus bus(k, "sbus", clk);
  SimpleBusMaster m(k, "m0", bus);
  SimpleBusTarget t0(k, "t0", bus, {.base = 0x1000, .size = 0x100});
  SimpleBusTarget t1(k, "t1", bus, {.base = 0x2000, .size = 0x100,
                                    .latency = 2});
  bool done = false;
  k.spawn("drv", [&]() -> Task {
    std::uint32_t a = 11, b = 22;
    bool ok = false;
    co_await m.transfer(true, 0x1000, &a, &ok);
    EXPECT_TRUE(ok);
    co_await m.transfer(true, 0x2000, &b, &ok);
    EXPECT_TRUE(ok);
    done = true;
    k.stop();
  });
  k.run_for(10_us);
  ASSERT_TRUE(done);
  EXPECT_EQ(t0.memory().read_word(0), 11u);
  EXPECT_EQ(t1.memory().read_word(0), 22u);
  EXPECT_EQ(t0.accesses(), 1u);
  EXPECT_EQ(t1.accesses(), 1u);
}

TEST(SimpleBus, BackToBackTransfers) {
  Bench b;
  bool done = false;
  b.k.spawn("drv", [&]() -> Task {
    for (std::uint32_t i = 0; i < 20; ++i) {
      std::uint32_t w = 0x5000 + i;
      bool ok = false;
      co_await b.master.transfer(true, 0x1000 + i * 4, &w, &ok);
      EXPECT_TRUE(ok) << i;
    }
    done = true;
    b.k.stop();
  });
  b.k.run_for(100_us);
  ASSERT_TRUE(done);
  for (std::uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(b.target.memory().read_word(i * 4), 0x5000 + i);
  }
}

// --- the library element + three-way refinement -------------------------

verify::Transcript run_simplebus(
    const std::vector<pattern::CommandType>& workload) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  SimpleBus bus(k, "sbus", clk);
  SimpleBusTarget target(k, "t0", bus, {.base = 0x1000, .size = 0x1000});
  pattern::SimpleBusInterface iface(k, "iface", bus);
  pattern::Application app(k, "app", iface, workload);
  for (int slice = 0; slice < 5000 && !app.done(); ++slice) k.run_for(10_us);
  EXPECT_TRUE(app.done()) << "SimpleBus run stalled";
  return app.transcript();
}

verify::Transcript run_functional(
    const std::vector<pattern::CommandType>& workload) {
  Kernel k;
  tlm::TlmMemory mem(0x1000, 0x1000);
  pattern::FunctionalBusInterface iface(k, "iface", mem);
  pattern::Application app(k, "app", iface, workload);
  k.run();
  return app.transcript();
}

verify::Transcript run_pci(const std::vector<pattern::CommandType>& workload) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arb(k, "arb", bus);
  pci::PciTarget target(k, "t0", bus, {.base = 0x1000, .size = 0x1000});
  pattern::PciBusInterface iface(k, "iface", bus, arb);
  pattern::Application app(k, "app", iface, workload);
  for (int slice = 0; slice < 5000 && !app.done(); ++slice) k.run_for(10_us);
  EXPECT_TRUE(app.done()) << "PCI run stalled";
  return app.transcript();
}

TEST(SimpleBusInterface, ThreeWayRefinementEquivalence) {
  auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x400, .seed = 909}, 60);
  verify::Transcript functional = run_functional(workload);
  verify::Transcript simple = run_simplebus(workload);
  verify::Transcript pci_t = run_pci(workload);
  auto c1 = verify::compare_functional(functional, simple);
  EXPECT_TRUE(c1) << "functional vs SimpleBus: " << c1.first_difference;
  auto c2 = verify::compare_functional(simple, pci_t);
  EXPECT_TRUE(c2) << "SimpleBus vs PCI: " << c2.first_difference;
}

TEST(SimpleBusInterface, AbortsMatchFunctionalModel) {
  // Out-of-window command: every library element must report the same
  // failure the same way.
  std::vector<pattern::CommandType> workload = {
      {.op = pattern::BusOp::Write, .addr = 0x1000, .data = {1}},
      {.op = pattern::BusOp::Read, .addr = 0x8000, .count = 2},
      {.op = pattern::BusOp::Read, .addr = 0x1000, .count = 1},
  };
  verify::Transcript functional = run_functional(workload);
  verify::Transcript simple = run_simplebus(workload);
  EXPECT_EQ(functional.entries()[1].status, pci::PciResult::MasterAbort);
  auto cmp = verify::compare_functional(functional, simple);
  EXPECT_TRUE(cmp) << cmp.first_difference;
}

TEST(SimpleBusInterface, WordProtocolCostsPerWord) {
  // SimpleBus has no bursts: an 8-word transfer costs ~8x a 1-word one.
  std::vector<pattern::CommandType> one = {
      {.op = pattern::BusOp::Read, .addr = 0x1000, .count = 1}};
  std::vector<pattern::CommandType> eight = {
      {.op = pattern::BusOp::ReadBurst, .addr = 0x1000, .count = 8}};
  verify::Transcript t1 = run_simplebus(one);
  verify::Transcript t8 = run_simplebus(eight);
  const auto l1 = (t1.entries()[0].completed - t1.entries()[0].issued).picos();
  const auto l8 = (t8.entries()[0].completed - t8.entries()[0].issued).picos();
  EXPECT_GE(l8, l1 * 6) << "no burst amortisation on a word protocol";
}

}  // namespace
}  // namespace hlcs::sbus
