#include <gtest/gtest.h>

#include "hlcs/verify/compare.hpp"
#include "hlcs/verify/coverage.hpp"
#include "hlcs/verify/transcript.hpp"

namespace hlcs::verify {
namespace {

using namespace hlcs::sim::literals;
using pattern::BusOp;
using pattern::CommandType;
using pattern::ResponseType;

Transcript make_transcript(std::initializer_list<std::uint32_t> addrs) {
  Transcript t;
  std::uint64_t id = 0;
  for (std::uint32_t a : addrs) {
    CommandType c;
    c.op = BusOp::Write;
    c.addr = a;
    c.data = {a * 2};
    ResponseType r;
    r.id = id;
    t.record(c, r, sim::Time::ns(id * 10), sim::Time::ns(id * 10 + 5));
    ++id;
  }
  return t;
}

TEST(Transcript, RecordsEntries) {
  Transcript t = make_transcript({0x10, 0x20});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.entries()[0].addr, 0x10u);
  EXPECT_EQ(t.entries()[0].data, (std::vector<std::uint32_t>{0x20}));
  EXPECT_EQ(t.entries()[1].issued, 10_ns);
  EXPECT_FALSE(t.empty());
}

TEST(Transcript, SpanCoversFirstToLast) {
  Transcript t = make_transcript({1, 2, 3});
  EXPECT_EQ(t.span(), 25_ns);  // 0ns .. 25ns
  EXPECT_EQ(Transcript{}.span(), sim::Time::zero());
}

TEST(Transcript, ReadUsesResponseData) {
  Transcript t;
  CommandType c;
  c.op = BusOp::Read;
  c.addr = 0x40;
  c.count = 2;
  ResponseType r;
  r.data = {7, 8};
  t.record(c, r, 0_ns, 1_ns);
  EXPECT_EQ(t.entries()[0].data, (std::vector<std::uint32_t>{7, 8}));
}

TEST(Transcript, ToStringIsReadable) {
  Transcript t = make_transcript({0xAB});
  std::string s = t.to_string();
  EXPECT_NE(s.find("write"), std::string::npos);
  EXPECT_NE(s.find("@0xab"), std::string::npos);
  EXPECT_NE(s.find("ok"), std::string::npos);
}

TEST(CompareFunctional, EqualTranscripts) {
  Transcript a = make_transcript({1, 2, 3});
  Transcript b = make_transcript({1, 2, 3});
  auto r = compare_functional(a, b);
  EXPECT_TRUE(r);
  EXPECT_EQ(r.compared, 3u);
  EXPECT_TRUE(r.first_difference.empty());
}

TEST(CompareFunctional, TimingDifferencesIgnored) {
  Transcript a = make_transcript({1});
  Transcript b;
  CommandType c;
  c.op = BusOp::Write;
  c.addr = 1;
  c.data = {2};
  b.record(c, ResponseType{}, 500_ns, 900_ns);  // very different timing
  EXPECT_TRUE(compare_functional(a, b));
}

TEST(CompareFunctional, DetectsAddrMismatch) {
  auto r = compare_functional(make_transcript({1, 2}), make_transcript({1, 3}));
  EXPECT_FALSE(r);
  EXPECT_NE(r.first_difference.find("entry 1"), std::string::npos);
  EXPECT_NE(r.first_difference.find("addr"), std::string::npos);
}

TEST(CompareFunctional, DetectsDataMismatch) {
  Transcript a = make_transcript({1});
  Transcript b;
  CommandType c;
  c.op = BusOp::Write;
  c.addr = 1;
  c.data = {999};
  b.record(c, ResponseType{}, 0_ns, 0_ns);
  auto r = compare_functional(a, b);
  EXPECT_FALSE(r);
  EXPECT_NE(r.first_difference.find("data"), std::string::npos);
}

TEST(CompareFunctional, DetectsStatusMismatch) {
  Transcript a = make_transcript({1});
  Transcript b;
  CommandType c;
  c.op = BusOp::Write;
  c.addr = 1;
  c.data = {2};
  ResponseType resp;
  resp.status = pci::PciResult::MasterAbort;
  b.record(c, resp, 0_ns, 0_ns);
  auto r = compare_functional(a, b);
  EXPECT_FALSE(r);
  EXPECT_NE(r.first_difference.find("status"), std::string::npos);
}

TEST(CompareFunctional, DetectsLengthMismatch) {
  auto r = compare_functional(make_transcript({1, 2, 3}),
                              make_transcript({1, 2}));
  EXPECT_FALSE(r);
  EXPECT_NE(r.first_difference.find("length"), std::string::npos);
  EXPECT_EQ(r.compared, 2u);
}

TEST(CompareTiming, ComputesSlowdownAndLatencies) {
  Transcript fast = make_transcript({1, 2});  // span 15ns, latency 5ns each
  Transcript slow;
  for (std::uint64_t i = 0; i < 2; ++i) {
    CommandType c;
    c.op = BusOp::Write;
    c.addr = static_cast<std::uint32_t>(i + 1);
    c.data = {static_cast<std::uint32_t>((i + 1) * 2)};
    slow.record(c, ResponseType{}, sim::Time::ns(i * 100),
                sim::Time::ns(i * 100 + 50));
  }
  auto t = compare_timing(fast, slow);
  EXPECT_EQ(t.span_a, 15_ns);
  EXPECT_EQ(t.span_b, 150_ns);
  EXPECT_NEAR(t.slowdown_b_over_a, 10.0, 0.01);
  EXPECT_EQ(t.mean_latency_ps_a, 5000u);
  EXPECT_EQ(t.mean_latency_ps_b, 50000u);
  EXPECT_NE(t.to_string().find("span"), std::string::npos);
}

TEST(Coverage, BinsTranscriptOps) {
  Coverage cov;
  Transcript t = make_transcript({1, 2, 3});
  cov.observe(t);
  EXPECT_EQ(cov.hits("write"), 3u);
  EXPECT_EQ(cov.hits("read"), 0u);
  EXPECT_EQ(cov.distinct_ops(), 1u);
  EXPECT_EQ(cov.distinct_statuses(), 1u);
}

TEST(Coverage, BinsBusRecords) {
  Coverage cov;
  std::vector<pci::BusRecord> records(2);
  records[0].cmd = pci::PciCommand::MemRead;
  records[0].devsel_seen = true;
  records[0].words = {1, 2, 3};
  records[0].wait_cycles = 2;
  records[1].cmd = pci::PciCommand::MemWrite;
  records[1].devsel_seen = false;  // master abort
  cov.observe(records);
  EXPECT_EQ(cov.distinct_pci_cmds(), 2u);
  EXPECT_EQ(cov.distinct_statuses(), 2u);
  std::string rep = cov.report();
  EXPECT_NE(rep.find("mem_read"), std::string::npos);
  EXPECT_NE(rep.find("master_abort"), std::string::npos);
}

TEST(Coverage, BinsPropertyOutcomes) {
  Coverage cov;
  check::CheckStats cs;
  cs.props.resize(2);
  cs.props[0] = {.name = "m2_trdy_devsel",
                 .attempts = 10,
                 .passes = 9,
                 .fails = 1,
                 .vacuous = 40};
  cs.props[1] = {.name = "lt_release", .vacuous = 50};  // never attempted
  cov.observe(cs);
  cov.observe(cs);  // bins accumulate across monitors/runs

  EXPECT_EQ(cov.distinct_properties(), 2u);
  EXPECT_EQ(cov.non_vacuous_properties(), 1u);
  EXPECT_EQ(cov.property_attempts("m2_trdy_devsel"), 20u);
  EXPECT_EQ(cov.property_attempts("lt_release"), 0u);
  EXPECT_EQ(cov.property_attempts("unknown"), 0u);
  const std::string rep = cov.report();
  EXPECT_NE(rep.find("properties:"), std::string::npos);
  EXPECT_NE(rep.find("m2_trdy_devsel=20/18/2/80"), std::string::npos);
}

}  // namespace
}  // namespace hlcs::verify
