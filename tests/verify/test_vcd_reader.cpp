// VCD reader: hand-written inputs, round-trip against our own Trace
// writer, and waveform comparison of two simulation runs.
#include <gtest/gtest.h>

#include <cstdio>

#include "hlcs/pci/pci.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/verify/vcd_reader.hpp"

namespace hlcs::verify {
namespace {

using namespace hlcs::sim::literals;

const char* kSmallVcd = R"($date today $end
$version test $end
$timescale 1ps $end
$scope module top $end
$var wire 1 ! clk $end
$var wire 4 " bus $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
b0000 "
$end
#1000
1!
b1010 "
#2000
0!
#3000
1!
bzzzz "
)";

TEST(VcdReader, ParsesHeaderAndChanges) {
  VcdFile f = VcdFile::parse(kSmallVcd);
  EXPECT_TRUE(f.has_signal("top.clk"));
  EXPECT_TRUE(f.has_signal("top.bus"));
  EXPECT_FALSE(f.has_signal("nope"));
  EXPECT_EQ(f.signal("top.clk").width, 1u);
  EXPECT_EQ(f.signal("top.bus").width, 4u);
  EXPECT_EQ(f.end_time_ps(), 3000u);
  EXPECT_EQ(f.signal_names().size(), 2u);
}

TEST(VcdReader, ValueAtSamplesLastChange) {
  VcdFile f = VcdFile::parse(kSmallVcd);
  const VcdSignal& clk = f.signal("top.clk");
  EXPECT_EQ(clk.value_at(0), "0");
  EXPECT_EQ(clk.value_at(999), "0");
  EXPECT_EQ(clk.value_at(1000), "1");
  EXPECT_EQ(clk.value_at(2500), "0");
  EXPECT_EQ(clk.value_at(99999), "1");
  const VcdSignal& bus = f.signal("top.bus");
  EXPECT_EQ(bus.value_at(1500), "1010");
  EXPECT_EQ(bus.value_at(3000), "zzzz");
  EXPECT_EQ(clk.transitions(), 3u);
}

TEST(VcdReader, TimescaleNsScalesTimes) {
  VcdFile f = VcdFile::parse(
      "$timescale 1ns $end\n$var wire 1 ! s $end\n"
      "$enddefinitions $end\n#5\n1!\n");
  EXPECT_EQ(f.timescale_ps(), 1000u);
  EXPECT_EQ(f.signal("s").value_at(5000), "1");
  EXPECT_EQ(f.signal("s").value_at(4999), "");
}

TEST(VcdReader, RejectsMalformedInput) {
  EXPECT_THROW(VcdFile::parse("$var wire 1 ! s $end\n$enddefinitions $end\n"
                              "1?unknownid\n"),
               hlcs::Error);
  EXPECT_THROW(VcdFile::parse("garbage tokens"), hlcs::Error);
  VcdFile f = VcdFile::parse("$enddefinitions $end\n");
  EXPECT_THROW(f.signal("missing"), hlcs::Error);
}

// value_at is a binary search over the packed change list; pin its
// behaviour on a dump with thousands of changes: exact hit, between
// changes, before the first change, after the last, and duplicate times
// (the later change at the same #time wins).
TEST(VcdReader, ValueAtBinarySearchOverManyChanges) {
  constexpr int kChanges = 4096;
  std::string vcd =
      "$timescale 1ps $end\n$var wire 16 ! s $end\n$enddefinitions $end\n";
  auto to_bin16 = [](unsigned v) {
    std::string s(16, '0');
    for (int b = 0; b < 16; ++b) {
      if (v & (1u << b)) s[15 - b] = '1';
    }
    return s;
  };
  for (int i = 0; i < kChanges; ++i) {
    vcd += "#" + std::to_string(100 + i * 10) + "\nb" +
           to_bin16(static_cast<unsigned>(i)) + " !\n";
  }
  vcd += "#50000\nb" + to_bin16(0xAAAA) + " !\n";
  vcd += "#50000\nb" + to_bin16(0x5555) + " !\n";  // same time, last wins
  VcdFile f = VcdFile::parse(vcd);
  const VcdSignal& s = f.signal("s");
  EXPECT_EQ(s.num_changes(), static_cast<std::size_t>(kChanges) + 2);
  EXPECT_EQ(s.value_at(99), "");  // before the first change
  EXPECT_EQ(s.value_at(100), to_bin16(0));
  for (int i : {0, 1, 7, 1000, 2047, 4095}) {
    EXPECT_EQ(s.value_at(100 + i * 10), to_bin16(static_cast<unsigned>(i)));
    EXPECT_EQ(s.value_at(100 + i * 10 + 9), to_bin16(static_cast<unsigned>(i)));
  }
  EXPECT_EQ(s.value_at(50'000), to_bin16(0x5555));
  EXPECT_EQ(s.value_at(1'000'000), to_bin16(0x5555));
}

// Round trip: run a simulation with our Trace writer, read the file
// back, and verify waveform facts.
class VcdRoundTrip : public ::testing::Test {
protected:
  std::string path_ = ::testing::TempDir() + "hlcs_vcd_roundtrip.vcd";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(VcdRoundTrip, ClockWaveSurvives) {
  sim::Kernel k;
  {
    sim::Trace t(path_);
    sim::Clock clk(k, "clk", 10_ns);
    sim::Signal<sim::LogicVec> bus(k, "data", sim::LogicVec::of(0, 8));
    t.add(clk.signal());
    t.add(bus);
    k.attach_trace(t);
    k.spawn("drv", [&]() -> sim::Task {
      co_await k.wait(22_ns);
      bus.write(sim::LogicVec::of(0xA5, 8));
      co_await k.wait(20_ns);
      bus.write(sim::LogicVec::all_z(8));
    });
    k.run_for(100_ns);
  }
  VcdFile f = VcdFile::load(path_);
  const VcdSignal& clk = f.signal("clk.clk");
  // Clock edges at 5, 10, 15 ... check levels mid-phase.
  EXPECT_EQ(clk.value_at(7'000), "1");
  EXPECT_EQ(clk.value_at(12'000), "0");
  EXPECT_EQ(clk.value_at(17'000), "1");
  EXPECT_GE(clk.transitions(), 15u);
  const VcdSignal& bus = f.signal("data");
  EXPECT_EQ(bus.value_at(10'000), "00000000");
  EXPECT_EQ(bus.value_at(30'000), "10100101");
  EXPECT_EQ(bus.value_at(50'000), "zzzzzzzz");
}

// Two identical PCI runs produce identical waveforms; a run with a
// different wait-state configuration does not.
std::string run_pci_to_vcd(const std::string& path, unsigned waits) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arb(k, "arb", bus);
  auto port = arb.add_master("m0");
  pci::PciMaster master(k, "m0", bus, *port.req, *port.gnt);
  pci::PciTarget target(k, "t0", bus,
                        pci::TargetConfig{.base = 0x1000,
                                          .size = 0x1000,
                                          .initial_wait = waits});
  sim::Trace t(path);
  bus.trace_all(t);
  k.attach_trace(t);
  k.spawn("drv", [&]() -> sim::Task {
    pci::PciTransaction w{.cmd = pci::PciCommand::MemWrite,
                          .addr = 0x1000,
                          .data = {1, 2, 3}};
    co_await master.execute(w);
    k.stop();
  });
  k.run_for(10_us);
  return path;
}

TEST_F(VcdRoundTrip, IdenticalRunsCompareEqual) {
  const std::string p2 = ::testing::TempDir() + "hlcs_vcd_rt2.vcd";
  run_pci_to_vcd(path_, 0);
  run_pci_to_vcd(p2, 0);
  VcdFile a = VcdFile::load(path_);
  VcdFile b = VcdFile::load(p2);
  auto r = compare_waves(a, b);
  EXPECT_TRUE(r) << r.first_difference;
  EXPECT_GE(r.signals_compared, 9u);
  std::remove(p2.c_str());
}

TEST_F(VcdRoundTrip, DifferentTimingComparesUnequal) {
  const std::string p2 = ::testing::TempDir() + "hlcs_vcd_rt3.vcd";
  run_pci_to_vcd(path_, 0);
  run_pci_to_vcd(p2, 3);
  VcdFile a = VcdFile::load(path_);
  VcdFile b = VcdFile::load(p2);
  auto r = compare_waves(a, b);
  EXPECT_FALSE(r);
  EXPECT_FALSE(r.first_difference.empty());
  std::remove(p2.c_str());
}

TEST(VcdCompare, SamplingGridIgnoresOffGridGlitches) {
  // Two waves identical on the 1000ps grid, different between samples.
  const char* wa =
      "$timescale 1ps $end\n$var wire 1 ! s $end\n$enddefinitions $end\n"
      "#0\n0!\n#1000\n1!\n";
  const char* wb =
      "$timescale 1ps $end\n$var wire 1 ! s $end\n$enddefinitions $end\n"
      "#0\n0!\n#500\n1!\n#700\n0!\n#1000\n1!\n";
  VcdFile a = VcdFile::parse(wa);
  VcdFile b = VcdFile::parse(wb);
  EXPECT_FALSE(compare_waves(a, b));
  EXPECT_TRUE(compare_waves(a, b, 1000));
}

}  // namespace
}  // namespace hlcs::verify
