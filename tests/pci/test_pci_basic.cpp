// Single-master PCI system tests: reads, writes, bursts, wait states,
// decode speeds, config space, parity, and protocol cleanliness (the
// monitor must see zero violations on all legal traffic).
#include <gtest/gtest.h>

#include <memory>

#include "hlcs/pci/pci.hpp"
#include "hlcs/sim/sim.hpp"

namespace hlcs::pci {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;
using sim::Task;

struct Bench {
  Kernel k;
  sim::Clock clk{k, "clk", 10_ns};
  PciBus bus{k, "pci", clk};
  PciArbiter arb{k, "arb", bus};
  PciMonitor mon{k, "mon", bus};
  std::unique_ptr<PciMaster> master;
  std::unique_ptr<PciTarget> target;

  explicit Bench(TargetConfig tcfg = {.base = 0x1000, .size = 0x1000},
                 MasterConfig mcfg = {}) {
    auto port = arb.add_master("m0");
    master = std::make_unique<PciMaster>(k, "m0", bus, *port.req, *port.gnt,
                                         mcfg);
    target = std::make_unique<PciTarget>(k, "t0", bus, tcfg);
  }

  /// Run one transaction to completion and return it.
  PciTransaction run_txn(PciTransaction t, sim::Time limit = 100_us) {
    bool done = false;
    k.spawn("driver", [&]() -> Task {
      co_await master->execute(t);
      done = true;
      k.stop();
    });
    k.run_for(limit);
    EXPECT_TRUE(done) << "transaction did not complete";
    return t;
  }
};

TEST(PciBasic, SingleWordWriteThenReadBack) {
  Bench b;
  auto w = b.run_txn({.cmd = PciCommand::MemWrite,
                      .addr = 0x1010,
                      .data = {0xDEADBEEF}});
  EXPECT_EQ(w.result, PciResult::Ok);
  EXPECT_EQ(w.words_done, 1u);
  EXPECT_EQ(b.target->memory().read_word(0x10), 0xDEADBEEFu);

  auto r = b.run_txn({.cmd = PciCommand::MemRead, .addr = 0x1010, .count = 1});
  EXPECT_EQ(r.result, PciResult::Ok);
  ASSERT_EQ(r.data.size(), 1u);
  EXPECT_EQ(r.data[0], 0xDEADBEEFu);
  EXPECT_TRUE(b.mon.violations().empty())
      << b.mon.violations().front();
}

TEST(PciBasic, ReadOfUnwrittenMemoryReturnsZero) {
  Bench b;
  auto r = b.run_txn({.cmd = PciCommand::MemRead, .addr = 0x1100, .count = 1});
  EXPECT_EQ(r.result, PciResult::Ok);
  ASSERT_EQ(r.data.size(), 1u);
  EXPECT_EQ(r.data[0], 0u);
}

TEST(PciBasic, BurstWriteAndBurstRead) {
  Bench b;
  std::vector<std::uint32_t> payload = {0x11111111, 0x22222222, 0x33333333,
                                        0x44444444};
  auto w = b.run_txn(
      {.cmd = PciCommand::MemWrite, .addr = 0x1000, .data = payload});
  EXPECT_EQ(w.result, PciResult::Ok);
  EXPECT_EQ(w.words_done, 4u);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(b.target->memory().read_word(static_cast<std::uint32_t>(4 * i)),
              payload[i]);
  }
  auto r = b.run_txn(
      {.cmd = PciCommand::MemRead, .addr = 0x1000, .count = 4});
  EXPECT_EQ(r.result, PciResult::Ok);
  EXPECT_EQ(r.data, payload);
  EXPECT_TRUE(b.mon.violations().empty());
}

TEST(PciBasic, MasterAbortOnUnclaimedAddress) {
  Bench b;
  auto t = b.run_txn({.cmd = PciCommand::MemRead, .addr = 0x9999000, .count = 1});
  EXPECT_EQ(t.result, PciResult::MasterAbort);
  EXPECT_EQ(t.words_done, 0u);
  EXPECT_TRUE(b.mon.violations().empty())
      << "a master abort is legal traffic: " << b.mon.violations().front();
  ASSERT_EQ(b.mon.records().size(), 1u);
  EXPECT_EQ(b.mon.records()[0].result(), PciResult::MasterAbort);
}

TEST(PciBasic, TargetRetryIsRetriedAndSucceeds) {
  Bench b(TargetConfig{.base = 0x1000, .size = 0x1000, .retry_first = 3});
  auto t = b.run_txn({.cmd = PciCommand::MemWrite,
                      .addr = 0x1004,
                      .data = {0xAA55AA55}});
  EXPECT_EQ(t.result, PciResult::Ok);
  EXPECT_EQ(t.retries, 3u);
  EXPECT_EQ(b.target->stats().retries_issued, 3u);
  EXPECT_EQ(b.target->memory().read_word(0x4), 0xAA55AA55u);
  EXPECT_TRUE(b.mon.violations().empty())
      << b.mon.violations().front();
}

TEST(PciBasic, DisconnectSplitsBurst) {
  Bench b(TargetConfig{.base = 0x1000, .size = 0x1000, .disconnect_after = 2});
  std::vector<std::uint32_t> payload = {1, 2, 3, 4, 5};
  auto t = b.run_txn(
      {.cmd = PciCommand::MemWrite, .addr = 0x1000, .data = payload});
  EXPECT_EQ(t.result, PciResult::Ok);
  EXPECT_EQ(t.words_done, 5u);
  EXPECT_GE(b.target->stats().disconnects_issued, 2u);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(b.target->memory().read_word(static_cast<std::uint32_t>(4 * i)),
              payload[i]);
  }
  EXPECT_TRUE(b.mon.violations().empty())
      << b.mon.violations().front();
}

TEST(PciBasic, ByteEnablesFromIoWrite) {
  // The simplified master drives all byte lanes enabled; verify the
  // memory-side byte-enable machinery directly.
  PciMemory m(0x100);
  m.write_word(0x10, 0xAABBCCDD);
  m.write_word(0x10, 0x11223344, /*byte_enables_n=*/0xC);  // lanes 0,1 only
  EXPECT_EQ(m.read_word(0x10), 0xAABB3344u);
  m.write_word(0x10, 0x55667788, 0x3);  // lanes 2,3 only
  EXPECT_EQ(m.read_word(0x10), 0x55663344u);
}

TEST(PciBasic, ConfigSpaceReadVendorDevice) {
  Bench b(TargetConfig{.base = 0x1000,
                       .size = 0x1000,
                       .device_number = 3,
                       .vendor_id = 0xBEEF,
                       .device_id = 0xCAFE});
  // Config address: device number in AD[15:11], register in AD[7:2].
  const std::uint32_t cfg_addr = (3u << 11) | (0u << 2);
  auto t = b.run_txn(
      {.cmd = PciCommand::ConfigRead, .addr = cfg_addr, .count = 1});
  EXPECT_EQ(t.result, PciResult::Ok);
  ASSERT_EQ(t.data.size(), 1u);
  EXPECT_EQ(t.data[0], 0xCAFEBEEFu);
}

TEST(PciBasic, ConfigReadWrongDeviceAborts) {
  Bench b(TargetConfig{.base = 0x1000, .size = 0x1000, .device_number = 3});
  const std::uint32_t cfg_addr = (7u << 11);
  auto t = b.run_txn(
      {.cmd = PciCommand::ConfigRead, .addr = cfg_addr, .count = 1});
  EXPECT_EQ(t.result, PciResult::MasterAbort);
}

TEST(PciBasic, IoWindowClaimedOnlyWhenEnabled) {
  Bench claims(TargetConfig{.base = 0x1000, .size = 0x1000, .claim_io = true});
  auto ok = claims.run_txn(
      {.cmd = PciCommand::IoWrite, .addr = 0x1020, .data = {0x77}});
  EXPECT_EQ(ok.result, PciResult::Ok);
  EXPECT_EQ(claims.target->memory().read_word(0x20), 0x77u);

  Bench refuses(TargetConfig{.base = 0x1000, .size = 0x1000});
  auto abort = refuses.run_txn(
      {.cmd = PciCommand::IoWrite, .addr = 0x1020, .data = {0x77}});
  EXPECT_EQ(abort.result, PciResult::MasterAbort);
}

TEST(PciBasic, MonitorRecordsTransactionShape) {
  Bench b;
  b.run_txn({.cmd = PciCommand::MemWrite, .addr = 0x1008, .data = {7, 8}});
  ASSERT_EQ(b.mon.records().size(), 1u);
  const BusRecord& r = b.mon.records()[0];
  EXPECT_EQ(r.cmd, PciCommand::MemWrite);
  EXPECT_EQ(r.addr, 0x1008u);
  ASSERT_EQ(r.words.size(), 2u);
  EXPECT_EQ(r.words[0], 7u);
  EXPECT_EQ(r.words[1], 8u);
  EXPECT_EQ(r.result(), PciResult::Ok);
  EXPECT_GT(r.end_cycle, r.start_cycle);
  EXPECT_EQ(b.mon.transfers(), 2u);
}

TEST(PciBasic, ParityIsCheckedOnTraffic) {
  Bench b;
  b.run_txn({.cmd = PciCommand::MemWrite, .addr = 0x1000, .data = {0x12345678}});
  b.run_txn({.cmd = PciCommand::MemRead, .addr = 0x1000, .count = 1});
  EXPECT_GT(b.mon.parity_checks(), 0u) << "PAR must actually be observed";
  EXPECT_TRUE(b.mon.violations().empty())
      << b.mon.violations().front();
}

TEST(PciBasic, EvenParityFunction) {
  EXPECT_FALSE(even_parity(0x0, 0x0));
  EXPECT_TRUE(even_parity(0x1, 0x0));
  EXPECT_TRUE(even_parity(0x0, 0x8));
  EXPECT_FALSE(even_parity(0x3, 0x0));
  EXPECT_TRUE(even_parity(0x7, 0x0));
  EXPECT_FALSE(even_parity(0xFFFFFFFF, 0xF));  // 36 ones -> even
}

TEST(PciBasic, BackToBackTransactions) {
  Bench b;
  bool done = false;
  b.k.spawn("driver", [&]() -> Task {
    for (std::uint32_t i = 0; i < 10; ++i) {
      PciTransaction t{.cmd = PciCommand::MemWrite,
                       .addr = 0x1000 + i * 4,
                       .data = {i * 100}};
      co_await b.master->execute(t);
      EXPECT_EQ(t.result, PciResult::Ok);
    }
    done = true;
    b.k.stop();
  });
  b.k.run_for(100_us);
  ASSERT_TRUE(done);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(b.target->memory().read_word(i * 4), i * 100);
  }
  EXPECT_EQ(b.mon.records().size(), 10u);
  EXPECT_TRUE(b.mon.violations().empty())
      << b.mon.violations().front();
}

// Wait-state and DEVSEL-speed sweep: everything still correct and clean,
// and timing grows as expected.
class PciTiming : public ::testing::TestWithParam<
                      std::tuple<DevselSpeed, unsigned, unsigned>> {};

TEST_P(PciTiming, CorrectAndCleanAcrossTimings) {
  auto [speed, initial_wait, per_word_wait] = GetParam();
  Bench b(TargetConfig{.base = 0x1000,
                       .size = 0x1000,
                       .devsel = speed,
                       .initial_wait = initial_wait,
                       .per_word_wait = per_word_wait});
  std::vector<std::uint32_t> payload = {0xA, 0xB, 0xC};
  auto w = b.run_txn(
      {.cmd = PciCommand::MemWrite, .addr = 0x1000, .data = payload});
  EXPECT_EQ(w.result, PciResult::Ok);
  auto r = b.run_txn({.cmd = PciCommand::MemRead, .addr = 0x1000, .count = 3});
  EXPECT_EQ(r.result, PciResult::Ok);
  EXPECT_EQ(r.data, payload);
  EXPECT_TRUE(b.mon.violations().empty())
      << b.mon.violations().front();
  // Slower configurations must take more cycles.
  const std::uint64_t min_cycles =
      3 + static_cast<unsigned>(speed) + initial_wait + 2 * per_word_wait;
  EXPECT_GE(w.cycles(), min_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PciTiming,
    ::testing::Combine(::testing::Values(DevselSpeed::Fast,
                                         DevselSpeed::Medium,
                                         DevselSpeed::Slow),
                       ::testing::Values(0u, 1u, 4u),
                       ::testing::Values(0u, 2u)));

TEST(PciBasic, WaitStatesIncreaseLatency) {
  Bench fast(TargetConfig{.base = 0x1000, .size = 0x1000});
  auto t_fast = fast.run_txn(
      {.cmd = PciCommand::MemRead, .addr = 0x1000, .count = 4});
  Bench slow(TargetConfig{.base = 0x1000,
                          .size = 0x1000,
                          .devsel = DevselSpeed::Slow,
                          .initial_wait = 4,
                          .per_word_wait = 3});
  auto t_slow = slow.run_txn(
      {.cmd = PciCommand::MemRead, .addr = 0x1000, .count = 4});
  EXPECT_GT(t_slow.cycles(), t_fast.cycles() + 8);
}

}  // namespace
}  // namespace hlcs::pci
