// Randomised long-run PCI stress: several masters with seeded random
// workloads against several targets with different timing personalities.
// A software scoreboard mirrors every write; all reads must match it, the
// monitor must stay clean, and nothing may deadlock.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "hlcs/pci/pci.hpp"
#include "hlcs/sim/sim.hpp"

namespace hlcs::pci {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;
using sim::Task;

struct StressParam {
  int masters;
  unsigned wait_states;
  unsigned disconnect_after;
  unsigned retry_first;
};

class PciStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(PciStress, ScoreboardedRandomTraffic) {
  const StressParam p = GetParam();
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  PciBus bus(k, "pci", clk);
  PciArbiter arb(k, "arb", bus);
  PciMonitor mon(k, "mon", bus);
  // Two targets: one clean and fast, one configured per the parameter.
  PciTarget fast(k, "fast", bus, TargetConfig{.base = 0x10000,
                                              .size = 0x2000});
  PciTarget nasty(k, "nasty", bus,
                  TargetConfig{.base = 0x20000,
                               .size = 0x2000,
                               .devsel = DevselSpeed::Medium,
                               .initial_wait = p.wait_states,
                               .per_word_wait = p.wait_states,
                               .disconnect_after = p.disconnect_after,
                               .retry_first = p.retry_first});

  // Scoreboard: word address -> last written value.  Each master owns a
  // disjoint address slice so writes never race.
  std::map<std::uint32_t, std::uint32_t> scoreboard;
  std::vector<std::unique_ptr<PciMaster>> masters;
  std::vector<int> completed(static_cast<std::size_t>(p.masters), 0);
  std::vector<int> data_errors(static_cast<std::size_t>(p.masters), 0);

  for (int m = 0; m < p.masters; ++m) {
    auto port = arb.add_master("m" + std::to_string(m));
    masters.push_back(std::make_unique<PciMaster>(
        k, "m" + std::to_string(m), bus, *port.req, *port.gnt));
  }
  for (int m = 0; m < p.masters; ++m) {
    k.spawn("drv" + std::to_string(m), [&k, &masters, &scoreboard, &completed,
                                        &data_errors, m, p]() -> Task {
      sim::Xorshift rng(0x57E55 + static_cast<std::uint64_t>(m) * 7919);
      PciMaster& master = *masters[static_cast<std::size_t>(m)];
      for (int t = 0;; ++t) {
        const bool use_nasty = rng.chance(1, 2);
        const std::uint32_t window = use_nasty ? 0x20000u : 0x10000u;
        // Per-master slice of 64 words inside the window.
        const std::uint32_t slice =
            window + static_cast<std::uint32_t>(m) * 0x100;
        const std::size_t len = 1 + rng.below(6);
        const std::uint32_t max_off = 64 - static_cast<std::uint32_t>(len);
        const std::uint32_t addr =
            slice + static_cast<std::uint32_t>(rng.below(max_off + 1)) * 4;
        if (rng.chance(1, 2)) {
          PciTransaction w{.cmd = PciCommand::MemWrite, .addr = addr};
          for (std::size_t i = 0; i < len; ++i) {
            w.data.push_back(static_cast<std::uint32_t>(rng.next()));
          }
          co_await master.execute(w);
          if (w.result == PciResult::Ok) {
            for (std::size_t i = 0; i < len; ++i) {
              scoreboard[addr + static_cast<std::uint32_t>(i) * 4] = w.data[i];
            }
          }
        } else {
          PciTransaction r{.cmd = PciCommand::MemRead,
                           .addr = addr,
                           .count = len};
          co_await master.execute(r);
          if (r.result == PciResult::Ok) {
            for (std::size_t i = 0; i < len; ++i) {
              const std::uint32_t a = addr + static_cast<std::uint32_t>(i) * 4;
              auto it = scoreboard.find(a);
              const std::uint32_t expect =
                  it == scoreboard.end() ? 0 : it->second;
              if (r.data[i] != expect) {
                data_errors[static_cast<std::size_t>(m)]++;
              }
            }
          }
        }
        completed[static_cast<std::size_t>(m)]++;
      }
    });
  }

  k.run_for(500_us);  // 50k bus cycles

  int total = 0;
  for (int m = 0; m < p.masters; ++m) {
    EXPECT_GT(completed[static_cast<std::size_t>(m)], 20)
        << "master " << m << " starved or deadlocked";
    EXPECT_EQ(data_errors[static_cast<std::size_t>(m)], 0)
        << "master " << m << " read wrong data";
    total += completed[static_cast<std::size_t>(m)];
  }
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
  EXPECT_GT(mon.records().size(), static_cast<std::size_t>(total) / 2)
      << "monitor missed transactions";
  // Retry configuration must actually have produced retries.
  if (p.retry_first > 0) {
    EXPECT_GT(nasty.stats().retries_issued, 0u);
  }
  if (p.disconnect_after > 0) {
    EXPECT_GT(nasty.stats().disconnects_issued, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PciStress,
    ::testing::Values(StressParam{1, 0, 0, 0}, StressParam{2, 1, 0, 0},
                      StressParam{2, 0, 3, 2}, StressParam{4, 2, 2, 1},
                      StressParam{3, 3, 4, 5}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      const StressParam& p = info.param;
      return "m" + std::to_string(p.masters) + "_w" +
             std::to_string(p.wait_states) + "_d" +
             std::to_string(p.disconnect_after) + "_r" +
             std::to_string(p.retry_first);
    });

}  // namespace
}  // namespace hlcs::pci
