// A/B parity between the hand-written PciMonitor and the check:: rule
// pack evaluated by BOTH property engines (behavioural automaton and the
// lowered netlist co-simulation).  On legal traffic all three stay
// silent; on fault-injected traffic (TRDY# without DEVSEL#, corrupted
// PAR) all three flag the same clock edges.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "hlcs/check/check.hpp"
#include "hlcs/pci/pci.hpp"
#include "hlcs/sim/sim.hpp"

namespace hlcs::pci {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;
using sim::Task;

/// Cycle numbers of PciMonitor violations mentioning `tag`, deduplicated
/// (one edge may emit several strings for the same rule).
std::vector<std::uint64_t> monitor_edges(const PciMonitor& mon,
                                         const std::string& tag) {
  std::vector<std::uint64_t> out;
  for (const std::string& v : mon.violations()) {
    if (v.find(tag) == std::string::npos) continue;
    out.push_back(std::stoull(v.substr(std::string("cycle ").size())));
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const check::PropertyStats& prop_stats(const check::CheckStats& s,
                                       const std::string& name) {
  for (const check::PropertyStats& p : s.props) {
    if (p.name == name) return p;
  }
  throw Error("no such property: " + name);
}

/// Per-property stats from the two engines must be bit-identical.
void expect_engines_agree(const check::CheckStats& beh,
                          const check::CheckStats& rtl) {
  EXPECT_EQ(beh.edges, rtl.edges);
  ASSERT_EQ(beh.props.size(), rtl.props.size());
  for (std::size_t i = 0; i < beh.props.size(); ++i) {
    EXPECT_EQ(beh.props[i].attempts, rtl.props[i].attempts)
        << beh.props[i].name;
    EXPECT_EQ(beh.props[i].passes, rtl.props[i].passes) << beh.props[i].name;
    EXPECT_EQ(beh.props[i].fails, rtl.props[i].fails) << beh.props[i].name;
    EXPECT_EQ(beh.props[i].vacuous, rtl.props[i].vacuous)
        << beh.props[i].name;
  }
}

/// Single-master system watched by all three checkers at once.
struct Bench {
  Kernel k;
  sim::Clock clk{k, "clk", 10_ns};
  PciBus bus{k, "pci", clk};
  PciArbiter arb{k, "arb", bus};
  PciMonitor mon;
  std::unique_ptr<PciMaster> master;
  std::unique_ptr<PciTarget> target;
  std::unique_ptr<check::Monitor> beh;
  std::unique_ptr<check::NetlistMonitor> rtl;

  explicit Bench(TargetConfig tcfg = {.base = 0x1000, .size = 0x1000},
                 MasterConfig mcfg = {}, check::PciRuleOptions ropt = {},
                 MonitorConfig moncfg = {})
      : mon(k, "mon", bus, moncfg) {
    auto port = arb.add_master("m0");
    master = std::make_unique<PciMaster>(k, "m0", bus, *port.req, *port.gnt,
                                         mcfg);
    target = std::make_unique<PciTarget>(k, "t0", bus, tcfg);
    const check::Spec spec = check::pci_rules(ropt);
    const bool wants_gnt = ropt.arbitration || ropt.latency_bound > 0;
    const check::ProbeSet probes = wants_gnt
                                       ? check::pci_probes(bus, {port.gnt})
                                       : check::pci_probes(bus);
    const check::MonitorOptions mo{.max_recorded_failures = 256};
    beh = std::make_unique<check::Monitor>(k, "beh", spec, clk, probes, mo);
    rtl = std::make_unique<check::NetlistMonitor>(
        k, "rtl", spec, clk, probes, synth::SettleMode::Incremental, mo);
  }

  PciTransaction run_txn(PciTransaction t, sim::Time limit = 100_us) {
    bool done = false;
    k.spawn("driver", [&]() -> Task {
      co_await master->execute(t);
      done = true;
      k.stop();
    });
    k.run_for(limit);
    EXPECT_TRUE(done) << "transaction did not complete";
    return t;
  }
};

TEST(PciAssertions, LegalTrafficKeepsAllThreeCheckersSilent) {
  Bench b;
  b.run_txn({.cmd = PciCommand::MemWrite, .addr = 0x1010, .data = {0xDEADBEEF}});
  auto r = b.run_txn({.cmd = PciCommand::MemRead, .addr = 0x1010, .count = 1});
  EXPECT_EQ(r.result, PciResult::Ok);
  b.run_txn({.cmd = PciCommand::MemWrite,
             .addr = 0x1000,
             .data = {1, 2, 3, 4, 5, 6}});
  b.run_txn({.cmd = PciCommand::MemRead, .addr = 0x1000, .count = 6});
  // A master abort is legal traffic too.
  auto ma = b.run_txn(
      {.cmd = PciCommand::MemRead, .addr = 0x9999000, .count = 1});
  EXPECT_EQ(ma.result, PciResult::MasterAbort);

  EXPECT_TRUE(b.mon.violations().empty()) << b.mon.violations().front();
  EXPECT_EQ(b.beh->stats().fails(), 0u);
  EXPECT_EQ(b.rtl->stats().fails(), 0u);
  expect_engines_agree(b.beh->stats(), b.rtl->stats());

  // The pack must have seen real traffic, not vacuous truth throughout.
  EXPECT_GT(prop_stats(b.beh->stats(), "m2_trdy_devsel").attempts, 0u);
  EXPECT_GT(prop_stats(b.beh->stats(), "m4_addr_driven").passes, 0u);
  // m5's attempt condition (PAR driven over a defined previous AD/CBE)
  // is exactly PciMonitor's parity-check condition.
  EXPECT_EQ(prop_stats(b.beh->stats(), "m5_parity").attempts,
            b.mon.parity_checks());
}

TEST(PciAssertions, RetryAndDisconnectAreLegalAndExerciseStopRule) {
  Bench b(TargetConfig{.base = 0x1000,
                       .size = 0x1000,
                       .disconnect_after = 2,
                       .retry_first = 2});
  auto t = b.run_txn(
      {.cmd = PciCommand::MemWrite, .addr = 0x1000, .data = {9, 8, 7, 6, 5}});
  EXPECT_EQ(t.result, PciResult::Ok);
  EXPECT_EQ(t.words_done, 5u);

  EXPECT_TRUE(b.mon.violations().empty()) << b.mon.violations().front();
  EXPECT_EQ(b.beh->stats().fails(), 0u);
  EXPECT_EQ(b.rtl->stats().fails(), 0u);
  expect_engines_agree(b.beh->stats(), b.rtl->stats());
  // STOP# was asserted (retry + disconnects), so m6 really attempted.
  EXPECT_GT(prop_stats(b.beh->stats(), "m6_stop_devsel").attempts, 0u);
  EXPECT_EQ(prop_stats(b.beh->stats(), "m6_stop_devsel").fails, 0u);
}

TEST(PciAssertions, DroppedDevselFlagsSameEdgesInAllCheckers) {
  // Fault: the target answers (TRDY#) but never claims (DEVSEL#).  The
  // master master-aborts; every TRDY#-without-DEVSEL# edge must be
  // flagged by PciMonitor's M2 and by m2_trdy_devsel in both engines.
  Bench b(TargetConfig{.base = 0x1000,
                       .size = 0x1000,
                       .faults = {.no_devsel = true}});
  auto t = b.run_txn(
      {.cmd = PciCommand::MemWrite, .addr = 0x1004, .data = {0x42}});
  EXPECT_EQ(t.result, PciResult::MasterAbort);

  const auto mon_edges = monitor_edges(b.mon, "M2");
  const auto beh_edges = b.beh->fail_cycles("m2_trdy_devsel");
  const auto rtl_edges = b.rtl->fail_cycles("m2_trdy_devsel");
  ASSERT_FALSE(mon_edges.empty());
  EXPECT_EQ(mon_edges, beh_edges);
  EXPECT_EQ(mon_edges, rtl_edges);
  expect_engines_agree(b.beh->stats(), b.rtl->stats());
}

TEST(PciAssertions, CorruptedParityFlagsSameEdgesInAllCheckers) {
  // Fault: every second PAR the target drives is inverted.  A read burst
  // makes the target the PAR driver; M5 and m5_parity must agree edge
  // for edge.
  Bench b(TargetConfig{.base = 0x1000,
                       .size = 0x1000,
                       .faults = {.corrupt_par_every = 2}});
  b.run_txn({.cmd = PciCommand::MemWrite,
             .addr = 0x1000,
             .data = {0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}});
  EXPECT_TRUE(b.mon.violations().empty()) << "writes drive PAR from the "
                                             "unfaulted master";
  auto r = b.run_txn({.cmd = PciCommand::MemRead, .addr = 0x1000, .count = 8});
  EXPECT_EQ(r.result, PciResult::Ok);

  const auto mon_edges = monitor_edges(b.mon, "M5");
  const auto beh_edges = b.beh->fail_cycles("m5_parity");
  const auto rtl_edges = b.rtl->fail_cycles("m5_parity");
  ASSERT_FALSE(mon_edges.empty());
  EXPECT_EQ(mon_edges, beh_edges);
  EXPECT_EQ(mon_edges, rtl_edges);
  expect_engines_agree(b.beh->stats(), b.rtl->stats());
}

TEST(PciAssertions, RecordedViolationsAreBoundedButCounted) {
  // Every PAR phase corrupted + a tiny recording cap: the monitor must
  // keep only the cap, count the rest, and the total must still equal
  // the property engines' fail count.
  Bench b(TargetConfig{.base = 0x1000,
                       .size = 0x1000,
                       .faults = {.corrupt_par_every = 1}},
          MasterConfig{}, check::PciRuleOptions{},
          MonitorConfig{.max_recorded_violations = 4});
  b.run_txn({.cmd = PciCommand::MemWrite,
             .addr = 0x1000,
             .data = {1, 2, 3, 4, 5, 6, 7, 8}});
  b.run_txn({.cmd = PciCommand::MemRead, .addr = 0x1000, .count = 8});
  b.run_txn({.cmd = PciCommand::MemRead, .addr = 0x1000, .count = 8});

  EXPECT_EQ(b.mon.violations().size(), 4u);
  EXPECT_GT(b.mon.dropped_violations(), 0u);
  const std::uint64_t m5_fails = prop_stats(b.beh->stats(), "m5_parity").fails;
  EXPECT_EQ(b.mon.total_violations(), m5_fails);
  EXPECT_EQ(prop_stats(b.rtl->stats(), "m5_parity").fails, m5_fails);
}

TEST(PciAssertions, ArbitrationAndLatencyRulesHoldUnderContention) {
  // Two masters with a short latency timer competing for one target:
  // exercises arb_gnt_before_frame (every address phase had GNT# one
  // edge back) and lt_release (a preempted master lets go within the
  // bound).  Everything must stay clean in all three checkers.
  Kernel k;
  sim::Clock clk{k, "clk", 10_ns};
  PciBus bus{k, "pci", clk};
  PciArbiter arb{k, "arb", bus};
  PciMonitor mon{k, "mon", bus};
  auto p0 = arb.add_master("m0");
  auto p1 = arb.add_master("m1");
  const MasterConfig mcfg{.latency_timer = 4};
  PciMaster m0{k, "m0", bus, *p0.req, *p0.gnt, mcfg};
  PciMaster m1{k, "m1", bus, *p1.req, *p1.gnt, mcfg};
  PciTarget t0{k, "t0", bus, TargetConfig{.base = 0x1000, .size = 0x1000}};

  const check::Spec spec = check::pci_rules(
      check::PciRuleOptions{.arbitration = true, .latency_bound = 24});
  const check::ProbeSet probes = check::pci_probes(bus, {p0.gnt, p1.gnt});
  check::Monitor beh{k, "beh", spec, clk, probes};
  check::NetlistMonitor rtl{k, "rtl", spec, clk, probes};

  int done = 0;
  auto driver = [&](PciMaster& m, std::uint32_t base) -> Task {
    for (std::uint32_t i = 0; i < 4; ++i) {
      PciTransaction t{.cmd = PciCommand::MemWrite,
                       .addr = base + 0x40 * i,
                       .data = {i, i + 1, i + 2, i + 3, i + 4, i + 5}};
      co_await m.execute(t);
      EXPECT_EQ(t.result, PciResult::Ok);
    }
    if (++done == 2) k.stop();
  };
  k.spawn("d0", [&]() -> Task { return driver(m0, 0x1000); });
  k.spawn("d1", [&]() -> Task { return driver(m1, 0x1800); });
  k.run_for(200_us);
  ASSERT_EQ(done, 2);
  EXPECT_GT(arb.regrants(), 0u);
  EXPECT_GT(m0.stats().preemptions + m1.stats().preemptions, 0u);

  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
  EXPECT_EQ(beh.stats().fails(), 0u);
  EXPECT_EQ(rtl.stats().fails(), 0u);
  expect_engines_agree(beh.stats(), rtl.stats());
  // Both arbitration rules must have genuinely fired.
  EXPECT_GT(prop_stats(beh.stats(), "arb_gnt_before_frame").attempts, 0u);
  EXPECT_GT(prop_stats(beh.stats(), "arb_gnt_before_frame").passes, 0u);
  EXPECT_GT(prop_stats(beh.stats(), "lt_release").attempts, 0u);
  EXPECT_GT(prop_stats(beh.stats(), "lt_release").passes, 0u);
}

}  // namespace
}  // namespace hlcs::pci
