// The PCI latency timer: a master whose GNT# has been taken away must
// terminate its burst after the timer expires, so long bursts cannot
// starve other masters.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hlcs/pci/pci.hpp"
#include "hlcs/sim/sim.hpp"

namespace hlcs::pci {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;
using sim::Task;

struct TwoMasterBench {
  Kernel k;
  sim::Clock clk{k, "clk", 10_ns};
  PciBus bus{k, "pci", clk};
  PciArbiter arb{k, "arb", bus};
  PciMonitor mon{k, "mon", bus};
  PciTarget target{k, "t0", bus, TargetConfig{.base = 0, .size = 0x10000}};
  std::unique_ptr<PciMaster> burster;
  std::unique_ptr<PciMaster> pinger;

  explicit TwoMasterBench(MasterConfig burst_cfg) {
    auto p0 = arb.add_master("burster");
    burster = std::make_unique<PciMaster>(k, "burster", bus, *p0.req,
                                          *p0.gnt, burst_cfg);
    auto p1 = arb.add_master("pinger");
    pinger = std::make_unique<PciMaster>(k, "pinger", bus, *p1.req, *p1.gnt);
  }
};

/// The pinger issues single-word writes; record the worst-case latency
/// it experiences while the burster streams long bursts.
std::uint64_t worst_ping_latency(TwoMasterBench& b, int pings) {
  std::uint64_t worst = 0;
  bool pings_done = false;
  b.k.spawn("burst_drv", [&]() -> Task {
    for (std::uint32_t i = 0;; ++i) {
      PciTransaction t{.cmd = PciCommand::MemWrite, .addr = 0x1000};
      for (int w = 0; w < 64; ++w) {
        t.data.push_back(i * 100 + static_cast<std::uint32_t>(w));
      }
      co_await b.burster->execute(t);
    }
  });
  b.k.spawn("ping_drv", [&, pings]() -> Task {
    co_await b.k.wait(100_ns);  // let the burster own the bus first
    for (int i = 0; i < pings; ++i) {
      PciTransaction t{.cmd = PciCommand::MemWrite,
                       .addr = 0x8000,
                       .data = {static_cast<std::uint32_t>(i)}};
      co_await b.pinger->execute(t);
      worst = std::max(worst, t.cycles());
    }
    pings_done = true;
  });
  b.k.run_for(2000_us);
  EXPECT_TRUE(pings_done) << "pinger starved";
  return worst;
}

TEST(PciLatencyTimer, BoundsCompetitorLatency) {
  TwoMasterBench unlimited(MasterConfig{});
  const std::uint64_t worst_unlimited = worst_ping_latency(unlimited, 10);

  TwoMasterBench limited(MasterConfig{.latency_timer = 8});
  const std::uint64_t worst_limited = worst_ping_latency(limited, 10);

  // A 64-word burst occupies ~70 cycles; with an 8-cycle latency timer
  // the pinger gets the bus roughly an order of magnitude sooner.
  EXPECT_GT(worst_unlimited, 60u);
  EXPECT_LT(worst_limited, worst_unlimited / 2);
  EXPECT_GT(limited.burster->stats().preemptions, 0u);
  EXPECT_EQ(unlimited.burster->stats().preemptions, 0u);
}

TEST(PciLatencyTimer, PreemptedBurstsStillDeliverAllData) {
  TwoMasterBench b(MasterConfig{.latency_timer = 6});
  bool done = false;
  std::vector<std::uint32_t> payload;
  for (std::uint32_t w = 0; w < 48; ++w) payload.push_back(0xD000 + w);
  b.k.spawn("burst_drv", [&]() -> Task {
    PciTransaction t{.cmd = PciCommand::MemWrite,
                     .addr = 0x2000,
                     .data = payload};
    co_await b.burster->execute(t);
    EXPECT_EQ(t.result, PciResult::Ok);
    EXPECT_EQ(t.words_done, payload.size());
    done = true;
  });
  // Competing traffic forces GNT# away repeatedly.
  b.k.spawn("ping_drv", [&]() -> Task {
    for (std::uint32_t i = 0; i < 20; ++i) {
      PciTransaction t{.cmd = PciCommand::MemWrite,
                       .addr = 0x9000 + i * 4,
                       .data = {i}};
      co_await b.pinger->execute(t);
    }
  });
  b.k.run_for(2000_us);
  ASSERT_TRUE(done);
  for (std::uint32_t w = 0; w < 48; ++w) {
    EXPECT_EQ(b.target.memory().read_word(0x2000 + w * 4), 0xD000 + w) << w;
  }
  EXPECT_TRUE(b.mon.violations().empty()) << b.mon.violations().front();
  EXPECT_GT(b.burster->stats().preemptions, 0u);
}

TEST(PciLatencyTimer, NoPreemptionWithoutContention) {
  // GNT# stays with the sole master (parking), so the timer never fires.
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  PciBus bus(k, "pci", clk);
  PciArbiter arb(k, "arb", bus);
  auto p = arb.add_master("m0");
  PciMaster m(k, "m0", bus, *p.req, *p.gnt, MasterConfig{.latency_timer = 4});
  PciTarget t0(k, "t0", bus, TargetConfig{.base = 0, .size = 0x1000});
  bool done = false;
  k.spawn("drv", [&]() -> Task {
    PciTransaction t{.cmd = PciCommand::MemWrite, .addr = 0};
    for (std::uint32_t w = 0; w < 32; ++w) t.data.push_back(w);
    co_await m.execute(t);
    EXPECT_EQ(t.result, PciResult::Ok);
    done = true;
    k.stop();
  });
  k.run_for(100_us);
  ASSERT_TRUE(done);
  EXPECT_EQ(m.stats().preemptions, 0u);
  EXPECT_EQ(m.stats().disconnects, 0u);
}

}  // namespace
}  // namespace hlcs::pci
