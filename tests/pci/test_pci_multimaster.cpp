// Multi-master arbitration, multiple targets, and monitor negative tests
// (deliberate protocol corruption must be detected).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hlcs/pci/pci.hpp"
#include "hlcs/sim/sim.hpp"

namespace hlcs::pci {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;
using sim::Task;

TEST(PciMultiMaster, TwoMastersShareTheBus) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  PciBus bus(k, "pci", clk);
  PciArbiter arb(k, "arb", bus);
  PciMonitor mon(k, "mon", bus);
  auto p0 = arb.add_master("m0");
  auto p1 = arb.add_master("m1");
  PciMaster m0(k, "m0", bus, *p0.req, *p0.gnt);
  PciMaster m1(k, "m1", bus, *p1.req, *p1.gnt);
  PciTarget t0(k, "t0", bus, TargetConfig{.base = 0x1000, .size = 0x2000});

  int done = 0;
  constexpr int kPer = 8;
  k.spawn("d0", [&]() -> Task {
    for (std::uint32_t i = 0; i < kPer; ++i) {
      PciTransaction t{.cmd = PciCommand::MemWrite,
                       .addr = 0x1000 + i * 4,
                       .data = {0xA0000000u + i}};
      co_await m0.execute(t);
      EXPECT_EQ(t.result, PciResult::Ok);
    }
    ++done;
  });
  k.spawn("d1", [&]() -> Task {
    for (std::uint32_t i = 0; i < kPer; ++i) {
      PciTransaction t{.cmd = PciCommand::MemWrite,
                       .addr = 0x2000 + i * 4,
                       .data = {0xB0000000u + i}};
      co_await m1.execute(t);
      EXPECT_EQ(t.result, PciResult::Ok);
    }
    ++done;
  });
  k.run_for(100_us);
  ASSERT_EQ(done, 2);
  for (std::uint32_t i = 0; i < kPer; ++i) {
    EXPECT_EQ(t0.memory().read_word(0x0000 + i * 4), 0xA0000000u + i);
    EXPECT_EQ(t0.memory().read_word(0x1000 + i * 4), 0xB0000000u + i);
  }
  EXPECT_EQ(mon.records().size(), 2u * kPer);
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
  EXPECT_GT(arb.regrants(), 0u) << "ownership must actually alternate";
}

TEST(PciMultiMaster, FourMastersNoStarvation) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  PciBus bus(k, "pci", clk);
  PciArbiter arb(k, "arb", bus);
  PciMonitor mon(k, "mon", bus);
  PciTarget t0(k, "t0", bus, TargetConfig{.base = 0, .size = 0x10000});

  constexpr int kMasters = 4;
  std::vector<std::unique_ptr<PciMaster>> masters;
  std::vector<int> completed(kMasters, 0);
  for (int m = 0; m < kMasters; ++m) {
    auto port = arb.add_master("m" + std::to_string(m));
    masters.push_back(std::make_unique<PciMaster>(
        k, "m" + std::to_string(m), bus, *port.req, *port.gnt));
  }
  for (int m = 0; m < kMasters; ++m) {
    k.spawn("d" + std::to_string(m), [&, m]() -> Task {
      for (std::uint32_t i = 0;; ++i) {
        PciTransaction t{
            .cmd = PciCommand::MemWrite,
            .addr = static_cast<std::uint32_t>(m) * 0x1000 + (i % 64) * 4,
            .data = {i}};
        co_await masters[static_cast<std::size_t>(m)]->execute(t);
        completed[static_cast<std::size_t>(m)]++;
      }
    });
  }
  k.run_for(200_us);
  int total = 0;
  for (int m = 0; m < kMasters; ++m) {
    EXPECT_GT(completed[static_cast<std::size_t>(m)], 10)
        << "master " << m << " starved";
    total += completed[static_cast<std::size_t>(m)];
  }
  // Rotating arbitration: shares within a factor of ~2 of fair.
  for (int m = 0; m < kMasters; ++m) {
    EXPECT_GT(completed[static_cast<std::size_t>(m)], total / (2 * kMasters));
  }
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(PciMultiMaster, TwoTargetsDecodeDisjointWindows) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  PciBus bus(k, "pci", clk);
  PciArbiter arb(k, "arb", bus);
  PciMonitor mon(k, "mon", bus);
  auto p0 = arb.add_master("m0");
  PciMaster m0(k, "m0", bus, *p0.req, *p0.gnt);
  PciTarget fast(k, "fast", bus,
                 TargetConfig{.base = 0x1000, .size = 0x1000});
  PciTarget slow(k, "slow", bus,
                 TargetConfig{.base = 0x8000,
                              .size = 0x1000,
                              .devsel = DevselSpeed::Slow,
                              .initial_wait = 3});
  bool done = false;
  k.spawn("d", [&]() -> Task {
    PciTransaction a{.cmd = PciCommand::MemWrite,
                     .addr = 0x1000,
                     .data = {111}};
    co_await m0.execute(a);
    PciTransaction b{.cmd = PciCommand::MemWrite,
                     .addr = 0x8000,
                     .data = {222}};
    co_await m0.execute(b);
    PciTransaction ra{.cmd = PciCommand::MemRead, .addr = 0x1000, .count = 1};
    co_await m0.execute(ra);
    PciTransaction rb{.cmd = PciCommand::MemRead, .addr = 0x8000, .count = 1};
    co_await m0.execute(rb);
    EXPECT_EQ(ra.data[0], 111u);
    EXPECT_EQ(rb.data[0], 222u);
    EXPECT_GT(rb.cycles(), ra.cycles()) << "slow target is slower";
    done = true;
    k.stop();
  });
  k.run_for(100_us);
  ASSERT_TRUE(done);
  EXPECT_EQ(fast.memory().read_word(0), 111u);
  EXPECT_EQ(slow.memory().read_word(0), 222u);
  EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

// --- monitor negative tests: corrupt the bus on purpose -----------------

struct RawBench {
  Kernel k;
  sim::Clock clk{k, "clk", 10_ns};
  PciBus bus{k, "pci", clk};
  PciMonitor mon{k, "mon", bus};
  PciAgentDrivers drv{bus};
};

TEST(PciMonitorNegative, DetectsAdConflict) {
  RawBench b;
  auto second = b.bus.ad.make_driver();
  b.k.spawn("corrupt", [&]() -> Task {
    co_await b.clk.posedge();
    b.drv.frame_n.write(sim::Logic::L0);
    b.drv.ad.write_uint(0x1000);
    second.write_uint(0x2000);  // conflict -> X
    b.drv.cbe.write_uint(0x6);
    co_await b.clk.posedge();
    co_await b.clk.posedge();
    b.k.stop();
  });
  b.k.run_for(1_us);
  ASSERT_FALSE(b.mon.violations().empty());
  EXPECT_NE(b.mon.violations()[0].find("M1"), std::string::npos);
}

TEST(PciMonitorNegative, DetectsTrdyWithoutDevsel) {
  RawBench b;
  b.k.spawn("corrupt", [&]() -> Task {
    co_await b.clk.posedge();
    b.drv.frame_n.write(sim::Logic::L0);
    b.drv.ad.write_uint(0x1000);
    b.drv.cbe.write_uint(0x6);
    b.drv.trdy_n.write(sim::Logic::L0);  // TRDY# with no DEVSEL#
    co_await b.clk.posedge();
    co_await b.clk.posedge();
    b.k.stop();
  });
  b.k.run_for(1_us);
  bool found = false;
  for (const auto& v : b.mon.violations()) {
    if (v.find("M2") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PciMonitorNegative, DetectsFrameDropWithoutIrdy) {
  RawBench b;
  b.k.spawn("corrupt", [&]() -> Task {
    co_await b.clk.posedge();
    b.drv.frame_n.write(sim::Logic::L0);
    b.drv.ad.write_uint(0x1000);
    b.drv.cbe.write_uint(0x6);
    co_await b.clk.posedge();
    b.drv.frame_n.write(sim::Logic::L1);  // drop FRAME#, IRDY# never asserted
    co_await b.clk.posedge();
    co_await b.clk.posedge();
    b.k.stop();
  });
  b.k.run_for(1_us);
  bool found = false;
  for (const auto& v : b.mon.violations()) {
    if (v.find("M3") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PciMonitorNegative, DetectsUndrivenAddressPhase) {
  RawBench b;
  b.k.spawn("corrupt", [&]() -> Task {
    co_await b.clk.posedge();
    b.drv.frame_n.write(sim::Logic::L0);  // FRAME# without driving AD
    co_await b.clk.posedge();
    b.drv.irdy_n.write(sim::Logic::L0);
    b.drv.frame_n.write(sim::Logic::L1);
    co_await b.clk.posedge();
    b.drv.irdy_n.write(sim::Logic::L1);
    co_await b.clk.posedge();
    b.k.stop();
  });
  b.k.run_for(1_us);
  bool found = false;
  for (const auto& v : b.mon.violations()) {
    if (v.find("M4") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PciMonitorNegative, DetectsBadParity) {
  RawBench b;
  b.k.spawn("corrupt", [&]() -> Task {
    co_await b.clk.posedge();
    b.drv.frame_n.write(sim::Logic::L0);
    b.drv.ad.write_uint(0x1001);  // odd number of ones with cmd 0x6
    b.drv.cbe.write_uint(0x6);
    co_await b.clk.posedge();
    // Deliberately wrong parity for the address phase.
    const bool correct = even_parity(0x1001, 0x6);
    b.drv.par.write(correct ? sim::Logic::L0 : sim::Logic::L1);
    b.drv.irdy_n.write(sim::Logic::L0);
    b.drv.frame_n.write(sim::Logic::L1);
    co_await b.clk.posedge();
    b.drv.par.release();
    b.drv.irdy_n.write(sim::Logic::L1);
    co_await b.clk.posedge();
    b.k.stop();
  });
  b.k.run_for(1_us);
  bool found = false;
  for (const auto& v : b.mon.violations()) {
    if (v.find("M5") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PciMonitorNegative, ThrowOnViolationMode) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  PciBus bus(k, "pci", clk);
  PciMonitor mon(k, "mon", bus, MonitorConfig{.throw_on_violation = true});
  PciAgentDrivers drv(bus);
  k.spawn("corrupt", [&]() -> Task {
    co_await clk.posedge();
    drv.trdy_n.write(sim::Logic::L0);
    drv.irdy_n.write(sim::Logic::L0);
    co_await clk.posedge();
    co_await clk.posedge();
  });
  EXPECT_THROW(k.run_for(1_us), ProtocolError);
}

}  // namespace
}  // namespace hlcs::pci
