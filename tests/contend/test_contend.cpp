// The contention cost model: instrumentation layer, deterministic
// sweep, adaptive-arbitration payoff and the tuning derivation
// (docs/CONTENTION.md).
#include <gtest/gtest.h>

#include <map>

#include "hlcs/contend/contend.hpp"
#include "hlcs/osss/osss.hpp"
#include "hlcs/sim/sim.hpp"

namespace hlcs::contend {
namespace {

using osss::Log2Histogram;
using osss::PolicyKind;

// ---------------------------------------------------------------- histogram

TEST(Log2Histogram, BucketsByBitWidth) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Log2Histogram::bucket_of(~std::uint64_t{0}), 64u - 0u);
}

TEST(Log2Histogram, RecordAndSummaries) {
  Log2Histogram h;
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 100u}) h.record(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 2u);  // 2 and 3
  EXPECT_EQ(h.used_buckets(), 8u);  // 100 lands in bucket 7, so 7+1
  EXPECT_EQ(h.mean_milli(), 110u * 1000 / 6);
}

TEST(Log2Histogram, PercentileBoundIsBucketCeilingClampedToMax) {
  Log2Histogram h;
  for (int i = 0; i < 99; ++i) h.record(5);
  h.record(40);
  EXPECT_EQ(h.percentile_bound(50), 7u) << "bucket 4..7 ceiling";
  EXPECT_EQ(h.percentile_bound(100), 40u) << "clamped to the true max";
  EXPECT_EQ(Log2Histogram{}.percentile_bound(99), 0u);
}

TEST(Log2Histogram, MergeAddsEverything) {
  Log2Histogram a, b;
  a.record(3);
  a.record(9);
  b.record(70);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 82u);
  EXPECT_EQ(a.max(), 70u);
  EXPECT_EQ(a.bucket(Log2Histogram::bucket_of(70)), 1u);
}

// ------------------------------------------------------- wait attribution

// Saturated unguarded traffic: every queued cycle is the arbiter's
// fault, so guard_blocked stays 0 and the latency histogram sees every
// grant.
TEST(Attribution, UnguardedWaitsAreArbitrationBlocked) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", sim::Time::ns(10));
  osss::SharedObject<std::uint64_t> obj(k, "obj", clk,
                                        osss::make_policy(PolicyKind::Fifo),
                                        0);
  for (int c = 0; c < 4; ++c) {
    auto client = obj.make_client("c" + std::to_string(c));
    k.spawn("p" + std::to_string(c), [client]() -> sim::Task {
      for (;;) co_await client.call([](std::uint64_t& v) { ++v; });
    });
  }
  k.run_for(sim::Time::ns(2000));
  std::uint64_t granted = 0, lat_count = 0;
  for (const auto& cs : obj.stats().clients) {
    EXPECT_EQ(cs.guard_blocked, 0u) << cs.name;
    EXPECT_GT(cs.arb_blocked, 0u) << cs.name;
    EXPECT_EQ(cs.latency.count(), cs.granted) << cs.name;
    EXPECT_EQ(cs.latency.sum(), cs.wait_total) << cs.name;
    granted += cs.granted;
    lat_count += cs.latency.count();
  }
  EXPECT_EQ(lat_count, granted);
  EXPECT_GT(obj.stats().depth.count(), 0u);
  EXPECT_EQ(obj.stats().depth.max(), 4u) << "all four clients queued";
}

// A client whose guard is closed for a long stretch must charge that
// stretch to guard_blocked, not to the arbiter, and its eligible streak
// (starve_max) must stay small.
TEST(Attribution, ClosedGuardChargesGuardBlocked) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", sim::Time::ns(10));
  osss::SharedObject<std::uint64_t> obj(k, "obj", clk,
                                        osss::make_policy(PolicyKind::Fifo),
                                        0);
  auto gated = obj.make_client("gated");
  auto opener = obj.make_client("opener");
  k.spawn("gated", [gated]() -> sim::Task {
    co_await gated.call([](const std::uint64_t& v) { return v >= 50; },
                        [](std::uint64_t& v) { v += 1000; });
  });
  k.spawn("opener", [opener]() -> sim::Task {
    for (;;) co_await opener.call([](std::uint64_t& v) { ++v; });
  });
  k.run_for(sim::Time::ns(2000));
  const auto& cs = obj.stats().clients;
  EXPECT_GE(obj.stats().grants, 51u);
  EXPECT_GT(cs[0].guard_blocked, 40u) << "~50 cycles waiting on the guard";
  EXPECT_LE(cs[0].starve_max, 4u) << "eligible wait itself stayed tiny";
  EXPECT_EQ(cs[0].granted, 1u);
  EXPECT_EQ(cs[0].latency.count(), 1u);
}

// --------------------------------------------------------------- the sweep

TEST(Sweep, CellSeedDependsOnlyOnTheCellKey) {
  const std::uint64_t s =
      cell_seed(kRootSeed, PolicyKind::Adaptive, 16, TrafficShape::Convoy);
  EXPECT_EQ(s, cell_seed(kRootSeed, PolicyKind::Adaptive, 16,
                         TrafficShape::Convoy));
  EXPECT_NE(s, cell_seed(kRootSeed, PolicyKind::Fifo, 16,
                         TrafficShape::Convoy));
  EXPECT_NE(s, cell_seed(kRootSeed, PolicyKind::Adaptive, 17,
                         TrafficShape::Convoy));
  EXPECT_NE(s, cell_seed(kRootSeed, PolicyKind::Adaptive, 16,
                         TrafficShape::Stampede));
}

TEST(Sweep, TrafficNamesRoundTripAndRejectUnknown) {
  for (TrafficShape t : kAllShapes) EXPECT_EQ(parse_traffic(traffic_name(t)), t);
  EXPECT_THROW(parse_traffic("diurnal"), hlcs::Error);
}

TEST(Sweep, GridIsDeterministicAcrossThreadCounts) {
  const auto grid = make_grid(GridKind::Reduced, 512, kRootSeed);
  const auto serial = run_grid(grid, 1);
  const auto threaded = run_grid(grid, 3);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(cell_json(serial[i]), cell_json(threaded[i])) << "cell " << i;
  }
}

TEST(Sweep, ReducedGridCellsMatchFullGridCells) {
  // The property the --check-dataset gate rests on: a cell's bytes
  // depend on its key alone, not on which grid computed it.
  const auto reduced = run_grid(make_grid(GridKind::Reduced, 512, kRootSeed), 3);
  const auto full = run_grid(make_grid(GridKind::Full, 512, kRootSeed), 3);
  std::map<std::uint64_t, std::string> by_key;
  for (const auto& r : full)
    by_key[cell_key(r.policy, r.clients, r.traffic)] = cell_json(r);
  for (const auto& r : reduced) {
    EXPECT_EQ(by_key.at(cell_key(r.policy, r.clients, r.traffic)),
              cell_json(r));
  }
}

TEST(Sweep, DiffReportsTheFirstMismatchedCell) {
  const auto cells = run_grid(make_grid(GridKind::Reduced, 256, kRootSeed), 1);
  const std::string dataset = dataset_json(cells, 256, kRootSeed);
  EXPECT_EQ(diff_against_dataset(cells, dataset), "");
  auto tampered = cells;
  tampered[3].lat_p99 += 1;
  const std::string diff = diff_against_dataset(tampered, dataset);
  EXPECT_NE(diff.find("cell mismatch"), std::string::npos) << diff;
  EXPECT_NE(diff.find("committed:"), std::string::npos) << diff;
}

// ------------------------------------------------------- the payoff itself

// The acceptance criterion of the subsystem: under the adversarial
// convoy/stampede shapes the adaptive policy's p99 grant latency beats
// every static policy's, and it never loses on the benign shapes.
TEST(Adaptive, BeatsBestStaticP99OnAdversarialShapes) {
  for (TrafficShape shape : {TrafficShape::Convoy, TrafficShape::Stampede}) {
    std::uint64_t best_static = ~std::uint64_t{0};
    for (PolicyKind p : {PolicyKind::Fifo, PolicyKind::RoundRobin,
                         PolicyKind::StaticPriority, PolicyKind::Random}) {
      const CellResult r = run_cell(CellConfig{p, 16, shape});
      if (r.lat_p99 < best_static) best_static = r.lat_p99;
    }
    const CellResult a =
        run_cell(CellConfig{PolicyKind::Adaptive, 16, shape});
    EXPECT_LT(a.lat_p99, best_static) << traffic_name(shape);
  }
}

TEST(Adaptive, NeverLosesOnBenignShapes) {
  for (TrafficShape shape : {TrafficShape::Uniform, TrafficShape::Bursty}) {
    for (std::size_t clients : {2u, 16u}) {
      std::uint64_t best_static = ~std::uint64_t{0};
      for (PolicyKind p : {PolicyKind::Fifo, PolicyKind::RoundRobin,
                           PolicyKind::StaticPriority, PolicyKind::Random}) {
        const CellResult r = run_cell(CellConfig{p, clients, shape});
        if (r.lat_p99 < best_static) best_static = r.lat_p99;
      }
      const CellResult a =
          run_cell(CellConfig{PolicyKind::Adaptive, clients, shape});
      EXPECT_LE(a.lat_p99, best_static)
          << traffic_name(shape) << "/" << clients;
    }
  }
}

// The compiled AdaptiveTuning defaults are *derived* from the committed
// dataset, not hand-picked: recompute the full grid and re-derive.  If
// this fails, someone changed the traffic shapes or the policy without
// re-running `hlcs_contend --derive` and updating the defaults.
TEST(Adaptive, TuningDefaultsMatchTheDerivation) {
  const auto cells = run_grid(make_grid(GridKind::Full, kDefaultCycles,
                                        kRootSeed), 3);
  const osss::AdaptiveTuning derived = derive_tuning(cells);
  const osss::AdaptiveTuning compiled{};
  EXPECT_EQ(derived.starve_bound, compiled.starve_bound);
  EXPECT_EQ(derived.window, compiled.window);
  EXPECT_EQ(derived.hot_threshold, compiled.hot_threshold);
}

TEST(Adaptive, FairnessPackPassesOnAdversarialShapes) {
  const FairnessReport rep = verify_fairness(1024);
  EXPECT_TRUE(rep.ok) << rep.detail;
  EXPECT_EQ(rep.checks, 4u);
  EXPECT_GT(rep.attempts, 1000u);
}

}  // namespace
}  // namespace hlcs::contend
