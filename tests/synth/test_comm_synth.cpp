// Synthesis correctness: the netlist produced by synthesize() must agree
// cycle-for-cycle with the GoldenCycleModel (reference interpreter +
// mirrored arbitration) -- the paper's pre/post-synthesis consistency
// check, mechanised.
#include <gtest/gtest.h>

#include <optional>
#include <tuple>
#include <vector>

#include "hlcs/sim/random.hpp"
#include "hlcs/synth/comm_synth.hpp"
#include "hlcs/synth/golden.hpp"
#include "hlcs/synth/rtl_sim.hpp"
#include "objects.hpp"

namespace hlcs::synth {
namespace {

using ClientIn = GoldenCycleModel::ClientIn;

/// Lock-step driver: pushes identical stimulus into the synthesised
/// netlist and the golden model, asserting equivalence every cycle.
class Harness {
public:
  Harness(const ObjectDesc& desc, SynthOptions opt)
      : desc_(desc),
        opt_(opt),
        nl_(synthesize(desc, opt)),
        rtl_(nl_),
        golden_(desc, opt) {}

  /// One cycle; returns the granted client (checked identical in both
  /// models) if any.
  std::optional<std::size_t> step(const std::vector<ClientIn>& in,
                                  bool rst = false) {
    rtl_.set_input("rst", rst ? 1 : 0);
    for (std::size_t i = 0; i < opt_.clients; ++i) {
      rtl_.set_input(req_port(i), in[i].req ? 1 : 0);
      rtl_.set_input(sel_port(i), in[i].sel);
      rtl_.set_input(args_port(i), in[i].args);
    }
    rtl_.settle();
    // Combinational grant/ret, before the edge.
    std::optional<std::size_t> rtl_grant;
    for (std::size_t i = 0; i < opt_.clients; ++i) {
      if (rtl_.get(grant_port(i)) != 0) {
        EXPECT_FALSE(rtl_grant.has_value()) << "grant is not one-hot";
        rtl_grant = i;
      }
    }
    std::uint64_t rtl_ret =
        rtl_grant ? rtl_.get(ret_port(*rtl_grant)) : 0;

    GoldenCycleModel::StepResult g = golden_.step(in, rst);
    EXPECT_EQ(rtl_grant, g.granted) << "grant mismatch at cycle " << cycle_;
    if (rtl_grant && g.granted) {
      const MethodDesc& m = desc_.methods()[in[*rtl_grant].sel];
      if (m.ret_width > 0) {
        EXPECT_EQ(rtl_ret & ExprArena::mask(m.ret_width),
                  g.ret & ExprArena::mask(m.ret_width))
            << "return mismatch at cycle " << cycle_;
      }
    }
    rtl_.clock_edge();
    for (std::size_t v = 0; v < desc_.vars().size(); ++v) {
      EXPECT_EQ(rtl_.get(var_port(desc_, v)), golden_.var(v))
          << "state var '" << desc_.vars()[v].name << "' diverged at cycle "
          << cycle_;
    }
    ++cycle_;
    return g.granted;
  }

  std::size_t clients() const { return opt_.clients; }
  const NetlistSim& rtl() const { return rtl_; }
  GoldenCycleModel& golden() { return golden_; }

private:
  const ObjectDesc& desc_;
  SynthOptions opt_;
  Netlist nl_;
  NetlistSim rtl_;
  GoldenCycleModel golden_;
  std::size_t cycle_ = 0;
};

std::vector<ClientIn> idle(std::size_t n) { return std::vector<ClientIn>(n); }

TEST(CommSynth, SingleClientBistable) {
  ObjectDesc d = testobj::bistable();
  Harness h(d, SynthOptions{.clients = 1});
  auto in = idle(1);
  // set()
  in[0] = {true, d.method_index("set"), 0};
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(0));
  // get_state() returns 1
  in[0] = {true, d.method_index("get_state"), 0};
  EXPECT_TRUE(h.step(in).has_value());
  // reset()
  in[0] = {true, d.method_index("reset"), 0};
  h.step(in);
  // wait_high guard now false: no grant.
  in[0] = {true, d.method_index("wait_high"), 0};
  EXPECT_FALSE(h.step(in).has_value());
}

TEST(CommSynth, GuardBlocksThenUnblocks) {
  ObjectDesc d = testobj::mailbox();
  Harness h(d, SynthOptions{.clients = 2});
  auto in = idle(2);
  // Client 1 tries get() on empty mailbox: blocked for 3 cycles.
  in[1] = {true, d.method_index("get"), 0};
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(h.step(in).has_value());
  // Client 0 puts; put wins (only eligible).
  in[0] = {true, d.method_index("put"), pack_args(d.methods()[0], {0xCAFE})};
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(0));
  in[0].req = false;
  // Now get() is eligible and returns the data.
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(1));
}

TEST(CommSynth, ResetRestoresState) {
  ObjectDesc d = testobj::counter();
  Harness h(d, SynthOptions{.clients = 1});
  auto in = idle(1);
  in[0] = {true, d.method_index("inc"), 0};
  for (int i = 0; i < 5; ++i) h.step(in);
  EXPECT_EQ(h.rtl().get("var_count"), 5u);
  h.step(in, /*rst=*/true);
  EXPECT_EQ(h.rtl().get("var_count"), 0u);
  EXPECT_FALSE(h.step(in, true).has_value()) << "no grants during reset";
}

TEST(CommSynth, ParallelAssignSwapInHardware) {
  ObjectDesc d = testobj::swapper();
  Harness h(d, SynthOptions{.clients = 1});
  auto in = idle(1);
  EXPECT_EQ(h.rtl().get("var_x"), 0xABu);
  in[0] = {true, d.method_index("swap"), 0};
  h.step(in);
  EXPECT_EQ(h.rtl().get("var_x"), 0xCDu);
  EXPECT_EQ(h.rtl().get("var_y"), 0xABu);
}

TEST(CommSynth, InvalidSelectorNeverGranted) {
  ObjectDesc d = testobj::mailbox();  // 3 methods, sel width 2
  Harness h(d, SynthOptions{.clients = 1});
  auto in = idle(1);
  in[0] = {true, 3, 0};  // selector 3: no such method
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(h.step(in).has_value());
}

TEST(CommSynth, RejectsBadOptions) {
  ObjectDesc d = testobj::counter();
  EXPECT_THROW(synthesize(d, SynthOptions{.clients = 0}), SynthesisError);
  EXPECT_THROW(synthesize(d, SynthOptions{.clients = 65}), SynthesisError);
  SynthOptions bad_prio{.clients = 2, .priorities = {1}};
  EXPECT_THROW(synthesize(d, bad_prio), hlcs::Error);
}

TEST(CommSynth, StaticPriorityOrderRespected) {
  ObjectDesc d = testobj::counter();
  SynthOptions opt{.clients = 3,
                   .policy = osss::PolicyKind::StaticPriority,
                   .priorities = {1, 5, 3}};
  Harness h(d, opt);
  auto in = idle(3);
  for (std::size_t i = 0; i < 3; ++i) {
    in[i] = {true, d.method_index("inc"), 0};
  }
  // All requesting forever: grant order by priority 1 > 2 > 0 each cycle.
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(1));
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(1));
  in[1].req = false;
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(2));
  in[2].req = false;
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(0));
}

TEST(CommSynth, RoundRobinRotation) {
  ObjectDesc d = testobj::counter();
  SynthOptions opt{.clients = 3, .policy = osss::PolicyKind::RoundRobin};
  Harness h(d, opt);
  auto in = idle(3);
  for (std::size_t i = 0; i < 3; ++i) {
    in[i] = {true, d.method_index("inc"), 0};
  }
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(0));
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(1));
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(2));
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(0));
}

TEST(CommSynth, FifoGrantsOldestFirst) {
  ObjectDesc d = testobj::counter();
  SynthOptions opt{.clients = 3, .policy = osss::PolicyKind::Fifo};
  Harness h(d, opt);
  auto in = idle(3);
  // Client 2 requests first (alone for 2 cycles while blocked by... use a
  // guarded method that's blocked: dec with count==0).
  in[2] = {true, d.method_index("dec"), 0};
  h.step(in);  // dec ineligible: no grant, but client 2 ages
  h.step(in);
  // Now clients 0 and 1 request inc; 2 still wants dec.
  in[0] = {true, d.method_index("inc"), 0};
  in[1] = {true, d.method_index("inc"), 0};
  // inc is eligible; ages: c0=0, c1=0 -> lowest index first among ties.
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(0));
  in[0].req = false;
  // count now 1: dec eligible, and client 2 is oldest.
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(2));
  in[2].req = false;
  EXPECT_EQ(h.step(in), std::optional<std::size_t>(1));
}

// -----------------------------------------------------------------------
// Randomised lock-step equivalence across all policies x objects x client
// counts.  This is the mechanised Sec. 3 consistency experiment.
// -----------------------------------------------------------------------

using SweepParam = std::tuple<osss::PolicyKind, int /*object*/, std::size_t>;

class SynthesisConsistency : public ::testing::TestWithParam<SweepParam> {
protected:
  static ObjectDesc make_object(int which) {
    switch (which) {
      case 0: return testobj::bistable();
      case 1: return testobj::counter();
      case 2: return testobj::mailbox();
      default: return testobj::swapper();
    }
  }
};

TEST_P(SynthesisConsistency, RandomStimulusLockStep) {
  auto [policy, which, clients] = GetParam();
  ObjectDesc d = make_object(which);
  SynthOptions opt{.clients = clients, .policy = policy};
  Harness h(d, opt);
  sim::Xorshift rng(0x1234u + static_cast<std::uint64_t>(which) * 97 +
                    clients * 131 + static_cast<std::uint64_t>(policy));
  const std::size_t n_methods = d.methods().size();
  std::vector<ClientIn> in(clients);
  for (int cycle = 0; cycle < 400; ++cycle) {
    for (std::size_t i = 0; i < clients; ++i) {
      if (!in[i].req) {
        if (rng.chance(2, 3)) {
          in[i].req = true;
          in[i].sel = rng.below(n_methods);
          in[i].args = rng.next();
        }
      }
    }
    const bool rst = rng.chance(1, 50);
    auto granted = h.step(in, rst);
    if (granted) in[*granted].req = false;  // model a real client
    if (rst) {
      for (auto& ci : in) ci.req = false;
    }
  }
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  auto [policy, which, clients] = info.param;
  static const char* const obj[] = {"bistable", "counter", "mailbox",
                                    "swapper"};
  return osss::policy_name(policy) + "_" + obj[which] + "_c" +
         std::to_string(clients);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesObjectsClients, SynthesisConsistency,
    ::testing::Combine(
        ::testing::Values(osss::PolicyKind::Fifo, osss::PolicyKind::RoundRobin,
                          osss::PolicyKind::StaticPriority,
                          osss::PolicyKind::Random),
        ::testing::Values(0, 1, 2, 3),
        ::testing::Values<std::size_t>(1, 2, 5, 9)),
    sweep_name);

TEST(PackArgs, RoundTrip) {
  ObjectDesc d("multi");
  d.add_var("x", 8, 0);
  auto m = d.add_method("m");
  m.arg("a", 4).arg("b", 12).arg("c", 8);
  m.assign(0, d.lit(0, 8));
  const MethodDesc& md = d.methods()[0];
  std::vector<std::uint64_t> args = {0xA, 0x8F3, 0x7C};
  std::uint64_t packed = pack_args(md, args);
  EXPECT_EQ(packed, 0xAu | (0x8F3u << 4) | (0x7Cull << 16));
  EXPECT_EQ(unpack_args(md, packed), args);
}

TEST(PackArgs, MasksOversizedValues) {
  ObjectDesc d("m");
  d.add_var("x", 8, 0);
  d.add_method("m").arg("a", 4).assign(0, d.lit(0, 8));
  EXPECT_EQ(pack_args(d.methods()[0], {0xFF}), 0xFu);
}

}  // namespace
}  // namespace hlcs::synth
