#include "hlcs/synth/expr.hpp"

#include <gtest/gtest.h>

namespace hlcs::synth {
namespace {

TEST(ExprArena, ConstMasksToWidth) {
  ExprArena a;
  ExprId c = a.cst(0x1FF, 8);
  EXPECT_EQ(a.at(c).imm, 0xFFu);
  EXPECT_EQ(a.at(c).width, 8u);
  EXPECT_EQ(eval(a, c, {}, {}), 0xFFu);
}

TEST(ExprArena, VarAndArgEval) {
  ExprArena a;
  ExprId v = a.var(0, 8);
  ExprId g = a.arg(1, 4);
  EXPECT_EQ(eval(a, v, {0x42}, {}), 0x42u);
  EXPECT_EQ(eval(a, g, {}, {0, 0x1F}), 0xFu) << "arg masked to width 4";
}

TEST(ExprArena, ArithmeticWrapsAtWidth) {
  ExprArena a;
  ExprId x = a.var(0, 8);
  ExprId one = a.cst(1, 8);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Add, x, one), {0xFF}, {}), 0u);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Sub, x, one), {0}, {}), 0xFFu);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Mul, x, a.cst(2, 8)), {0x80}, {}), 0u);
}

TEST(ExprArena, BitwiseOps) {
  ExprArena a;
  ExprId x = a.var(0, 8), y = a.var(1, 8);
  std::vector<std::uint64_t> vars = {0xF0, 0x3C};
  EXPECT_EQ(eval(a, a.bin(ExprOp::And, x, y), vars, {}), 0x30u);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Or, x, y), vars, {}), 0xFCu);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Xor, x, y), vars, {}), 0xCCu);
  EXPECT_EQ(eval(a, a.un(ExprOp::Not, x), vars, {}), 0x0Fu);
  EXPECT_EQ(eval(a, a.un(ExprOp::Neg, x), vars, {}), 0x10u);
}

TEST(ExprArena, Comparisons) {
  ExprArena a;
  ExprId x = a.var(0, 8), y = a.var(1, 8);
  std::vector<std::uint64_t> vars = {5, 9};
  EXPECT_EQ(eval(a, a.bin(ExprOp::Lt, x, y), vars, {}), 1u);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Le, x, y), vars, {}), 1u);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Gt, x, y), vars, {}), 0u);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Ge, x, y), vars, {}), 0u);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Eq, x, y), vars, {}), 0u);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Ne, x, y), vars, {}), 1u);
  EXPECT_EQ(a.at(a.bin(ExprOp::Lt, x, y)).width, 1u);
}

TEST(ExprArena, Reductions) {
  ExprArena a;
  ExprId x = a.var(0, 4);
  EXPECT_EQ(eval(a, a.un(ExprOp::RedOr, x), {0}, {}), 0u);
  EXPECT_EQ(eval(a, a.un(ExprOp::RedOr, x), {2}, {}), 1u);
  EXPECT_EQ(eval(a, a.un(ExprOp::RedAnd, x), {0xF}, {}), 1u);
  EXPECT_EQ(eval(a, a.un(ExprOp::RedAnd, x), {0x7}, {}), 0u);
}

TEST(ExprArena, Shifts) {
  ExprArena a;
  ExprId x = a.var(0, 8);
  ExprId s = a.var(1, 8);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Shl, x, s), {0x01, 3}, {}), 0x08u);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Shr, x, s), {0x80, 4}, {}), 0x08u);
  EXPECT_EQ(eval(a, a.bin(ExprOp::Shl, x, s), {0x01, 200}, {}), 0u)
      << "oversized shift yields zero";
}

TEST(ExprArena, SliceAndConcat) {
  ExprArena a;
  ExprId x = a.var(0, 16);
  ExprId lo = a.slice(x, 0, 8);
  ExprId hi = a.slice(x, 8, 8);
  EXPECT_EQ(eval(a, lo, {0xABCD}, {}), 0xCDu);
  EXPECT_EQ(eval(a, hi, {0xABCD}, {}), 0xABu);
  ExprId back = a.bin(ExprOp::Concat, hi, lo);
  EXPECT_EQ(a.at(back).width, 16u);
  EXPECT_EQ(eval(a, back, {0xABCD}, {}), 0xABCDu);
}

TEST(ExprArena, ZExt) {
  ExprArena a;
  ExprId x = a.var(0, 4);
  ExprId z = a.zext(x, 12);
  EXPECT_EQ(a.at(z).width, 12u);
  EXPECT_EQ(eval(a, z, {0xF}, {}), 0xFu);
  EXPECT_THROW(a.zext(a.var(0, 8), 4), hlcs::Error) << "narrowing zext";
}

TEST(ExprArena, Mux) {
  ExprArena a;
  ExprId sel = a.var(0, 1);
  ExprId t = a.cst(0xAA, 8), f = a.cst(0x55, 8);
  ExprId m = a.mux(sel, t, f);
  EXPECT_EQ(eval(a, m, {1}, {}), 0xAAu);
  EXPECT_EQ(eval(a, m, {0}, {}), 0x55u);
}

TEST(ExprArena, MuxRequiresOneBitSelector) {
  ExprArena a;
  EXPECT_THROW(a.mux(a.var(0, 2), a.cst(0, 8), a.cst(1, 8)), hlcs::Error);
}

TEST(ExprArena, MuxBranchWidthsMustMatch) {
  ExprArena a;
  EXPECT_THROW(a.mux(a.var(0, 1), a.cst(0, 8), a.cst(1, 4)), hlcs::Error);
}

TEST(ExprArena, BinaryWidthMismatchThrows) {
  ExprArena a;
  EXPECT_THROW(a.bin(ExprOp::Add, a.cst(0, 8), a.cst(0, 4)), hlcs::Error);
  EXPECT_THROW(a.bin(ExprOp::Eq, a.cst(0, 8), a.cst(0, 4)), hlcs::Error);
}

TEST(ExprArena, SliceOutOfRangeThrows) {
  ExprArena a;
  EXPECT_THROW(a.slice(a.var(0, 8), 4, 8), hlcs::Error);
}

TEST(ExprArena, ConcatOver64Throws) {
  ExprArena a;
  EXPECT_THROW(a.bin(ExprOp::Concat, a.var(0, 40), a.var(1, 40)), hlcs::Error);
}

TEST(ExprArena, Width64Arithmetic) {
  ExprArena a;
  ExprId x = a.var(0, 64);
  ExprId r = a.bin(ExprOp::Add, x, a.cst(1, 64));
  EXPECT_EQ(eval(a, r, {~0ull}, {}), 0u);
}

TEST(ExprDepth, LeavesAreZeroLogicFree) {
  ExprArena a;
  EXPECT_EQ(depth(a, a.cst(1, 8)), 0u);
  EXPECT_EQ(depth(a, a.var(0, 8)), 0u);
  // Slices and concat are wiring.
  EXPECT_EQ(depth(a, a.slice(a.var(0, 8), 0, 4)), 0u);
}

TEST(ExprDepth, ChainsAccumulate) {
  ExprArena a;
  ExprId e = a.var(0, 8);
  for (int i = 0; i < 5; ++i) e = a.bin(ExprOp::Add, e, a.cst(1, 8));
  EXPECT_EQ(depth(a, e), 5u);
}

TEST(ExprToString, ReadableOutput) {
  ExprArena a;
  ExprId e = a.bin(ExprOp::Add, a.var(0, 8), a.cst(3, 8));
  EXPECT_EQ(to_string(a, e), "(v0 add 3'8)");
  ExprId m = a.mux(a.var(1, 1), a.cst(1, 4), a.cst(0, 4));
  EXPECT_EQ(to_string(a, m), "(v1 ? 1'4 : 0'4)");
  ExprId s = a.slice(a.var(2, 16), 4, 8);
  EXPECT_EQ(to_string(a, s), "v2[11:4]");
}

TEST(ExprArena, BadIdThrows) {
  ExprArena a;
  EXPECT_THROW(a.at(0), hlcs::Error);
  EXPECT_THROW(a.at(kNoExpr), hlcs::Error);
}

TEST(ExprEval, BadLeafIndexThrows) {
  ExprArena a;
  ExprId v = a.var(3, 8);
  EXPECT_THROW(eval(a, v, {1, 2}, {}), hlcs::Error);
  ExprId g = a.arg(2, 8);
  EXPECT_THROW(eval(a, g, {}, {1}), hlcs::Error);
}

}  // namespace
}  // namespace hlcs::synth
