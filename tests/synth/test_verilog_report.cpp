#include <gtest/gtest.h>

#include <string>

#include "hlcs/synth/comm_synth.hpp"
#include "hlcs/synth/report.hpp"
#include "hlcs/synth/verilog.hpp"
#include "objects.hpp"

namespace hlcs::synth {
namespace {

TEST(Verilog, EmitsModuleWithPorts) {
  ObjectDesc d = testobj::mailbox();
  Netlist nl = synthesize(d, SynthOptions{.clients = 2});
  std::string v = emit_verilog(nl);
  EXPECT_NE(v.find("module mailbox_rtl ("), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("input wire rst"), std::string::npos);
  EXPECT_NE(v.find("c0_req"), std::string::npos);
  EXPECT_NE(v.find("c1_req"), std::string::npos);
  EXPECT_NE(v.find("output wire c0_grant"), std::string::npos);
  EXPECT_NE(v.find("[15:0] c0_ret"), std::string::npos);
  EXPECT_NE(v.find("var_full"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, EveryRegisterAssignedInAlwaysBlock) {
  ObjectDesc d = testobj::counter();
  Netlist nl = synthesize(d, SynthOptions{.clients = 1});
  std::string v = emit_verilog(nl);
  for (const RegDesc& r : nl.regs()) {
    const std::string q = nl.nets()[r.q].name;
    EXPECT_NE(v.find(q + "_r <= "), std::string::npos) << q;
  }
}

TEST(Verilog, InitialBlockSetsResetValues) {
  ObjectDesc d = testobj::swapper();  // x init 0xAB = 171, y init 0xCD = 205
  Netlist nl = synthesize(d, SynthOptions{.clients = 1});
  std::string v = emit_verilog(nl);
  EXPECT_NE(v.find("var_x_r = 8'd171"), std::string::npos);
  EXPECT_NE(v.find("var_y_r = 8'd205"), std::string::npos);
}

TEST(Verilog, BalancedBeginEnd) {
  ObjectDesc d = testobj::counter();
  Netlist nl = synthesize(
      d, SynthOptions{.clients = 4, .policy = osss::PolicyKind::RoundRobin});
  std::string v = emit_verilog(nl);
  auto count_of = [&](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = v.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count_of("module "), 1u);
  EXPECT_EQ(count_of("endmodule"), 1u);
  EXPECT_EQ(count_of("begin"), count_of("  end\n"));
}

TEST(Verilog, AllPoliciesEmit) {
  ObjectDesc d = testobj::mailbox();
  for (auto policy : {osss::PolicyKind::Fifo, osss::PolicyKind::RoundRobin,
                      osss::PolicyKind::StaticPriority,
                      osss::PolicyKind::Random}) {
    Netlist nl = synthesize(d, SynthOptions{.clients = 3, .policy = policy});
    std::string v = emit_verilog(nl);
    EXPECT_NE(v.find("endmodule"), std::string::npos)
        << osss::policy_name(policy);
    EXPECT_GT(v.size(), 500u);
  }
}

TEST(Report, CountsFlipFlops) {
  ObjectDesc d = testobj::swapper();  // two 8-bit vars
  Netlist nl = synthesize(d, SynthOptions{.clients = 1});
  ResourceReport r = report(nl);
  EXPECT_EQ(r.flip_flops, 16u);
  EXPECT_GT(r.gate_estimate, 0u);
  EXPECT_GT(r.logic_depth, 0u);
  EXPECT_EQ(r.design, "swapper_rtl");
}

TEST(Report, FifoPolicyAddsAgeCounters) {
  ObjectDesc d = testobj::counter();
  ResourceReport prio = report(synthesize(
      d, SynthOptions{.clients = 4, .policy = osss::PolicyKind::StaticPriority}));
  ResourceReport fifo = report(synthesize(
      d, SynthOptions{.clients = 4, .policy = osss::PolicyKind::Fifo}));
  // 4 clients x 8-bit age counters = 32 extra FFs.
  EXPECT_EQ(fifo.flip_flops, prio.flip_flops + 32u);
}

TEST(Report, RandomPolicyAddsLfsr) {
  ObjectDesc d = testobj::counter();
  ResourceReport prio = report(synthesize(
      d, SynthOptions{.clients = 2, .policy = osss::PolicyKind::StaticPriority}));
  ResourceReport rnd = report(synthesize(
      d, SynthOptions{.clients = 2, .policy = osss::PolicyKind::Random}));
  EXPECT_EQ(rnd.flip_flops, prio.flip_flops + 16u);
}

TEST(Report, GatesGrowWithClients) {
  ObjectDesc d = testobj::mailbox();
  std::size_t prev = 0;
  for (std::size_t c : {1u, 2u, 4u, 8u, 16u}) {
    ResourceReport r = report(synthesize(d, SynthOptions{.clients = c}));
    EXPECT_GT(r.gate_estimate, prev) << c << " clients";
    prev = r.gate_estimate;
  }
}

TEST(Report, ToStringContainsKeyNumbers) {
  ObjectDesc d = testobj::counter();
  ResourceReport r = report(synthesize(d, SynthOptions{.clients = 1}));
  std::string s = r.to_string();
  EXPECT_NE(s.find("counter_rtl"), std::string::npos);
  EXPECT_NE(s.find("FFs"), std::string::npos);
  EXPECT_NE(s.find("gates"), std::string::npos);
}

}  // namespace
}  // namespace hlcs::synth
