// Tape engine: structure tests plus the randomized bit-identity suite.
//
// The compiled tape + event-driven settle must be indistinguishable from
// the recursive tree-walking interpreter on every net, every cycle.  The
// suite generates seeded random netlists (DAG-shaped expressions, shared
// subtrees, registers, feedback through regs) and random ObjectDescs
// (synthesised and cross-checked against the ObjectInterp-backed golden
// model), then drives thousands of edges comparing all three settle
// modes in lock step.
#include <gtest/gtest.h>

#include <vector>

#include "hlcs/sim/random.hpp"
#include "hlcs/synth/equiv.hpp"
#include "hlcs/synth/optimize.hpp"
#include "hlcs/synth/rtl_sim.hpp"
#include "hlcs/synth/tape.hpp"
#include "netlist_gen.hpp"

namespace hlcs::synth {
namespace {

// Random netlist generation lives in netlist_gen.hpp (NetlistGen /
// make_random_netlist), shared with the batch-engine suite.

/// Drive `sims` in lock step with random stimulus and require bit
/// identity on every net after every settle and every edge.
void drive_lockstep(const Netlist& nl, std::vector<NetlistSim*> sims,
                    std::uint64_t seed, int edges) {
  sim::Xorshift rng(seed);
  const std::vector<NetId>& ins = nl.inputs();
  auto expect_identical = [&](int edge, const char* phase) {
    for (NetId n = 0; n < nl.nets().size(); ++n) {
      const std::uint64_t ref = sims[0]->get(n);
      for (std::size_t s = 1; s < sims.size(); ++s) {
        ASSERT_EQ(sims[s]->get(n), ref)
            << "net '" << nl.nets()[n].name << "' differs (" << phase
            << ", edge " << edge << ", " << to_string(sims[s]->mode())
            << " vs " << to_string(sims[0]->mode()) << ")";
      }
    }
  };
  for (int e = 0; e < edges; ++e) {
    for (NetId in : ins) {
      // Sometimes rewrite with the same value, sometimes skip the input
      // entirely: the sparse paths must behave exactly like the dense
      // ones.
      if (rng.chance(1, 4)) continue;
      const std::uint64_t v =
          rng.chance(1, 4) ? sims[0]->get(in) : rng.next();
      for (NetlistSim* s : sims) s->set_input(in, v);
    }
    if (rng.chance(1, 3)) {
      for (NetlistSim* s : sims) s->settle();
      expect_identical(e, "settle");
    }
    for (NetlistSim* s : sims) s->clock_edge();
    expect_identical(e, "edge");
  }
}

// ---------------------------------------------------------------------
// Structure tests
// ---------------------------------------------------------------------

TEST(Tape, CompilesCounterToExpectedShape) {
  Netlist nl("counter8");
  NetId rst = nl.add_net("rst", 1);
  NetId en = nl.add_net("en", 1);
  NetId q = nl.add_net("q", 8);
  NetId d = nl.add_net("d", 8);
  nl.mark_input(rst);
  nl.mark_input(en);
  nl.mark_output(q);
  nl.add_reg(q, d, 0);
  auto& A = nl.arena();
  ExprId inc = A.bin(ExprOp::Add, nl.net_ref(q), A.cst(1, 8));
  ExprId held = A.mux(nl.net_ref(en), inc, nl.net_ref(q));
  nl.add_comb(d, A.mux(nl.net_ref(rst), A.cst(0, 8), held));

  TapeProgram p = TapeProgram::compile(nl);
  ASSERT_EQ(p.combs().size(), 1u);
  EXPECT_EQ(p.combs()[0].target, d);
  EXPECT_EQ(p.combs()[0].level, 0u);
  EXPECT_EQ(p.levels(), 1u);
  EXPECT_GE(p.max_stack(), 3u);
  // Fanout: the comb reads rst, en and q but not d.
  EXPECT_EQ(p.fanout_end(rst) - p.fanout_begin(rst), 1);
  EXPECT_EQ(p.fanout_end(en) - p.fanout_begin(en), 1);
  EXPECT_EQ(p.fanout_end(q) - p.fanout_begin(q), 1);
  EXPECT_EQ(p.fanout_end(d) - p.fanout_begin(d), 0);
}

TEST(Tape, LevelsFollowDependencyChains) {
  Netlist nl("chain");
  NetId in = nl.add_net("in", 4);
  nl.mark_input(in);
  NetId a = nl.add_net("a", 4);
  NetId b = nl.add_net("b", 4);
  NetId c = nl.add_net("c", 4);
  nl.mark_output(c);
  auto& A = nl.arena();
  nl.add_comb(c, A.bin(ExprOp::Add, nl.net_ref(b), A.cst(1, 4)));
  nl.add_comb(b, A.bin(ExprOp::Add, nl.net_ref(a), A.cst(1, 4)));
  nl.add_comb(a, A.bin(ExprOp::Add, nl.net_ref(in), A.cst(1, 4)));
  TapeProgram p = TapeProgram::compile(nl);
  ASSERT_EQ(p.combs().size(), 3u);
  EXPECT_EQ(p.levels(), 3u);
  // Topo order a, b, c with levels 0, 1, 2.
  EXPECT_EQ(p.combs()[0].target, a);
  EXPECT_EQ(p.combs()[0].level, 0u);
  EXPECT_EQ(p.combs()[1].target, b);
  EXPECT_EQ(p.combs()[1].level, 1u);
  EXPECT_EQ(p.combs()[2].target, c);
  EXPECT_EQ(p.combs()[2].level, 2u);
}

TEST(Tape, SharedSubtreesCompileToSlots) {
  // (x*x) appears three times through the same arena node: the tape
  // must compute it once (one Mul) and re-push it from a slot.
  Netlist nl("cse");
  NetId x = nl.add_net("x", 16);
  nl.mark_input(x);
  NetId y = nl.add_net("y", 16);
  nl.mark_output(y);
  auto& A = nl.arena();
  ExprId sq = A.bin(ExprOp::Mul, nl.net_ref(x), nl.net_ref(x));
  ExprId sum = A.bin(ExprOp::Add, sq, sq);
  nl.add_comb(y, A.bin(ExprOp::Add, sum, sq));
  TapeProgram p = TapeProgram::compile(nl);
  EXPECT_GE(p.max_slots(), 1u);
  std::size_t muls = 0, pushes = 0;
  for (const TapeInsn& i : p.code()) {
    if (i.op == TapeOp::Mul) ++muls;
    if (i.op == TapeOp::PushSlot) ++pushes;
  }
  EXPECT_EQ(muls, 1u) << "shared subtree evaluated more than once";
  EXPECT_EQ(pushes, 3u);

  NetlistSim s(nl);
  s.set_input("x", 7);
  s.settle();
  EXPECT_EQ(s.get("y"), (7u * 7u) * 3u);
}

// ---------------------------------------------------------------------
// Incremental-settle behaviour (NetlistStats)
// ---------------------------------------------------------------------

TEST(NetlistSimIncremental, QuiescentSettleEvaluatesNothing) {
  Netlist nl = make_random_netlist(0xBEEF);
  NetlistSim s(nl);
  s.clock_edge();
  s.clock_edge();
  // Let register feedback reach a fixed point (or not -- either way a
  // settle with no new events after a settle must be free).
  s.settle();
  const std::uint64_t before = s.stats().combs_evaluated;
  s.settle();
  EXPECT_EQ(s.stats().combs_evaluated, before)
      << "settle with empty worklist re-evaluated combs";
  // Re-writing an input with its current value must not dirty anything.
  const NetId in = nl.inputs()[0];
  s.set_input(in, s.get(in));
  s.settle();
  EXPECT_EQ(s.stats().combs_evaluated, before);
}

TEST(NetlistSimIncremental, SparseInputTouchesOnlyTheCone) {
  // chain: in0 -> a -> b ; in1 -> c   (two independent cones)
  Netlist nl("cones");
  NetId in0 = nl.add_net("in0", 8);
  NetId in1 = nl.add_net("in1", 8);
  nl.mark_input(in0);
  nl.mark_input(in1);
  NetId a = nl.add_net("a", 8);
  NetId b = nl.add_net("b", 8);
  NetId c = nl.add_net("c", 8);
  nl.mark_output(b);
  nl.mark_output(c);
  auto& A = nl.arena();
  nl.add_comb(a, A.bin(ExprOp::Add, nl.net_ref(in0), A.cst(1, 8)));
  nl.add_comb(b, A.bin(ExprOp::Add, nl.net_ref(a), A.cst(1, 8)));
  nl.add_comb(c, A.bin(ExprOp::Add, nl.net_ref(in1), A.cst(1, 8)));

  NetlistSim s(nl);
  const std::uint64_t base = s.stats().combs_evaluated;
  s.set_input(in1, 5);
  s.settle();
  // Only c is in in1's cone.
  EXPECT_EQ(s.stats().combs_evaluated, base + 1);
  EXPECT_EQ(s.get(c), 6u);
  s.set_input(in0, 1);
  s.settle();
  EXPECT_EQ(s.stats().combs_evaluated, base + 3);  // a and b
  EXPECT_EQ(s.get(b), 3u);
  EXPECT_GE(s.stats().peak_worklist, 1u);
  EXPECT_EQ(s.stats().settles, 3u);  // reset_state + the two above
}

TEST(NetlistSimIncremental, ChangePropagationStopsWhenValueIsStable) {
  // b = redor(zext(a)) stays 1 for most values of a: changing a must
  // re-evaluate a's cone but stop before b's reader when b is unchanged.
  Netlist nl("stable");
  NetId in = nl.add_net("in", 8);
  nl.mark_input(in);
  NetId a = nl.add_net("a", 8);
  NetId b = nl.add_net("b", 1);
  NetId c = nl.add_net("c", 1);
  nl.mark_output(c);
  auto& A = nl.arena();
  nl.add_comb(a, A.bin(ExprOp::Or, nl.net_ref(in), A.cst(1, 8)));
  nl.add_comb(b, A.un(ExprOp::RedOr, nl.net_ref(a)));  // always 1
  nl.add_comb(c, A.un(ExprOp::Not, nl.net_ref(b)));
  NetlistSim s(nl);
  const std::uint64_t base = s.stats().combs_evaluated;
  s.set_input(in, 0x40);
  s.settle();
  // a changed, b recomputed but unchanged, c never dirtied.
  EXPECT_EQ(s.stats().combs_evaluated, base + 2);
}

// ---------------------------------------------------------------------
// Randomized bit-identity
// ---------------------------------------------------------------------

TEST(TapeEquivalence, RandomNetlistsAllModesBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Netlist nl = make_random_netlist(seed * 0x9E3779B9u);
    NetlistSim tree(nl, SettleMode::TreeWalk);
    NetlistSim full(nl, SettleMode::FullTape);
    NetlistSim incr(nl, SettleMode::Incremental);
    drive_lockstep(nl, {&tree, &full, &incr}, seed ^ 0xD1CE, 400);
    // The incremental engine must not have done more comb evaluations
    // than the full engine (it may do fewer).
    EXPECT_LE(incr.stats().combs_evaluated, full.stats().combs_evaluated)
        << "seed " << seed;
  }
}

TEST(TapeEquivalence, OptimizedRandomNetlistsStayBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Netlist nl = make_random_netlist(seed * 0xABCDu + 17);
    Netlist opt = optimize(nl);
    NetlistSim ref(nl, SettleMode::TreeWalk);
    NetlistSim fast(opt, SettleMode::Incremental);
    sim::Xorshift rng(seed);
    for (int e = 0; e < 300; ++e) {
      for (NetId in : nl.inputs()) {
        const std::uint64_t v = rng.next();
        ref.set_input(in, v);
        fast.set_input(in, v);
      }
      ref.clock_edge();
      fast.clock_edge();
      for (NetId out : nl.outputs()) {
        ASSERT_EQ(fast.get(out), ref.get(out))
            << "seed " << seed << " edge " << e << " net "
            << nl.nets()[out].name;
      }
      for (const RegDesc& r : nl.regs()) {
        ASSERT_EQ(fast.get(r.q), ref.get(r.q)) << "seed " << seed;
      }
    }
  }
}

/// Randomized ObjectDesc -> synthesis -> lock-step against the
/// ObjectInterp-backed golden model (check_equivalence drives the
/// default incremental NetlistSim).
TEST(TapeEquivalence, RandomObjectsMatchInterpreter) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Xorshift rng(seed * 77 + 3);
    ObjectDesc d("rand_obj");
    const std::size_t n_vars = rng.range(1, 3);
    std::vector<unsigned> var_w;
    for (std::size_t v = 0; v < n_vars; ++v) {
      var_w.push_back(static_cast<unsigned>(rng.range(1, 16)));
      d.add_var("v" + std::to_string(v), var_w.back(), rng.next());
    }
    const std::size_t n_methods = rng.range(1, 3);
    for (std::size_t m = 0; m < n_methods; ++m) {
      auto mb = d.add_method("m" + std::to_string(m));
      unsigned arg_w = 0;
      if (rng.chance(1, 2)) {
        arg_w = static_cast<unsigned>(rng.range(1, 16));
        mb.arg("a0", arg_w);
      }
      auto operand = [&](unsigned w) -> ExprId {
        // A width-w expression over state, argument and constants.
        ExprId e;
        const std::uint32_t v =
            static_cast<std::uint32_t>(rng.below(n_vars));
        switch (rng.below(3)) {
          case 0:
            e = d.v(v);
            if (var_w[v] < w) e = d.arena().zext(e, w);
            else if (var_w[v] > w) e = d.arena().slice(e, 0, w);
            break;
          case 1:
            if (arg_w > 0) {
              e = d.a(0, arg_w);
              if (arg_w < w) e = d.arena().zext(e, w);
              else if (arg_w > w) e = d.arena().slice(e, 0, w);
              break;
            }
            [[fallthrough]];
          default:
            e = d.lit(rng.next(), w);
        }
        return e;
      };
      if (rng.chance(2, 3)) {
        static constexpr ExprOp cmp[] = {ExprOp::Ne, ExprOp::Lt, ExprOp::Ge};
        const unsigned w = var_w[rng.below(n_vars)];
        mb.guard(d.arena().bin(cmp[rng.below(3)], operand(w), operand(w)));
      }
      for (std::size_t v = 0; v < n_vars; ++v) {
        if (!rng.chance(2, 3)) continue;
        static constexpr ExprOp ops[] = {ExprOp::Add, ExprOp::Sub,
                                         ExprOp::Xor, ExprOp::And};
        mb.assign(static_cast<std::uint32_t>(v),
                  d.arena().bin(ops[rng.below(4)], operand(var_w[v]),
                                operand(var_w[v])));
      }
      if (rng.chance(1, 2)) {
        const unsigned rw = static_cast<unsigned>(rng.range(1, 16));
        mb.returns(operand(rw), rw);
      }
    }
    d.validate();

    SynthOptions opt;
    opt.clients = rng.range(1, 3);
    static constexpr osss::PolicyKind policies[] = {
        osss::PolicyKind::Fifo, osss::PolicyKind::RoundRobin,
        osss::PolicyKind::StaticPriority, osss::PolicyKind::Random};
    opt.policy = policies[rng.below(4)];
    EquivOptions eopt;
    eopt.cycles = 500;
    eopt.seed = seed * 0x5EED;
    eopt.reset_percent = 2;
    EquivResult r = check_equivalence(d, opt, eopt);
    EXPECT_TRUE(r.equal) << "seed " << seed << ": " << r.first_mismatch;
  }
}

/// The real synthesised channel, all policies: thousands of edges of
/// three-way mode identity under the equivalence stimulus.
TEST(TapeEquivalence, SynthesisedChannelModesBitIdentical) {
  ObjectDesc d("mbox");
  const std::uint32_t full = d.add_var("full", 1, 0);
  const std::uint32_t data = d.add_var("data", 16, 0);
  d.add_method("put")
      .arg("d", 16)
      .guard(d.arena().bin(ExprOp::Eq, d.v(full), d.lit(0, 1)))
      .assign(full, d.lit(1, 1))
      .assign(data, d.a(0, 16));
  d.add_method("get")
      .guard(d.arena().bin(ExprOp::Eq, d.v(full), d.lit(1, 1)))
      .assign(full, d.lit(0, 1))
      .returns(d.v(data), 16);
  for (auto policy :
       {osss::PolicyKind::Fifo, osss::PolicyKind::RoundRobin,
        osss::PolicyKind::StaticPriority, osss::PolicyKind::Random}) {
    SynthOptions opt;
    opt.clients = 3;
    opt.policy = policy;
    Netlist nl = synthesize(d, opt);
    NetlistSim tree(nl, SettleMode::TreeWalk);
    NetlistSim full_tape(nl, SettleMode::FullTape);
    NetlistSim incr(nl, SettleMode::Incremental);
    drive_lockstep(nl, {&tree, &full_tape, &incr}, 0xCAB + (int)policy, 700);
  }
}

}  // namespace
}  // namespace hlcs::synth
