// The textual front end: the .obj description language.
#include <gtest/gtest.h>

#include "hlcs/synth/equiv.hpp"
#include "hlcs/synth/interp.hpp"
#include "hlcs/synth/parser.hpp"
#include "hlcs/synth/poly.hpp"

namespace hlcs::synth {
namespace {

TEST(Parser, MinimalObject) {
  ObjectDesc d = parse_object(R"(
    object toggle {
      var state : 1 = 0;
      method flip { state = !state; }
      method read returns 1 { return state; }
    }
  )");
  EXPECT_EQ(d.name(), "toggle");
  EXPECT_EQ(d.vars().size(), 1u);
  EXPECT_EQ(d.methods().size(), 2u);
  ObjectInterp it(d);
  it.invoke(0);
  EXPECT_EQ(it.invoke(1), 1u);
  it.invoke(0);
  EXPECT_EQ(it.invoke(1), 0u);
}

TEST(Parser, MailboxMatchesHandBuilt) {
  ObjectDesc d = parse_object(R"(
    // A one-slot mailbox, as in the bus-interface pattern.
    object mailbox {
      var full : 1 = 0;
      var data : 16 = 0;
      method put(d : 16) guard !full {
        full = 1;
        data = d;
      }
      method get guard full returns 16 {
        full = 0;
        return data;
      }
    }
  )");
  ObjectInterp it(d);
  EXPECT_TRUE(it.guard_ok(0, {0x1234}));
  EXPECT_FALSE(it.guard_ok(1));
  it.invoke(0, {0x1234});
  EXPECT_FALSE(it.guard_ok(0, {0}));
  EXPECT_EQ(it.invoke(1), 0x1234u);
}

TEST(Parser, ArithmeticAndComparisons) {
  ObjectDesc d = parse_object(R"(
    object alu {
      var acc : 8 = 10;
      method addc(k : 8) { acc = acc + k * 2; }
      method clamp { acc = acc > 100 ? 100 : acc; }
      method is_zero returns 1 { return acc == 0; }
    }
  )");
  ObjectInterp it(d);
  it.invoke(0, {5});
  EXPECT_EQ(it.var(0), 20u);
  it.invoke(0, {60});
  EXPECT_EQ(it.var(0), 140u & 0xFF);
  it.invoke(1);
  EXPECT_EQ(it.var(0), 100u);
  EXPECT_EQ(it.invoke(2), 0u);
}

TEST(Parser, HexAndSizedLiterals) {
  ObjectDesc d = parse_object(R"(
    object lits {
      var x : 16 = 0;
      method a { x = 0xAB; }
      method b { x = 16'hFFFF; }
      method c { x = 16'd1234; }
      method e { x = 16'b1010; }
    }
  )");
  ObjectInterp it(d);
  it.invoke(0);
  EXPECT_EQ(it.var(0), 0xABu);
  it.invoke(1);
  EXPECT_EQ(it.var(0), 0xFFFFu);
  it.invoke(2);
  EXPECT_EQ(it.var(0), 1234u);
  it.invoke(3);
  EXPECT_EQ(it.var(0), 0b1010u);
}

TEST(Parser, BuiltinsAndShifts) {
  ObjectDesc d = parse_object(R"(
    object builtins {
      var w : 16 = 0;
      var n : 4 = 0;
      method pack(hi : 8, lo : 8) { w = concat(hi, lo); }
      method hi_nibble { n = slice(w, 12, 4); }
      method widen(k : 4) { w = zext(k, 16) << 4; }
      method any returns 1 { return redor(w); }
      method all_set returns 1 { return redand(n); }
    }
  )");
  ObjectInterp it(d);
  it.invoke(0, {0xAB, 0xCD});
  EXPECT_EQ(it.var(0), 0xABCDu);
  it.invoke(1);
  EXPECT_EQ(it.var(1), 0xAu);
  it.invoke(2, {0x7});
  EXPECT_EQ(it.var(0), 0x70u);
  EXPECT_EQ(it.invoke(3), 1u);
  EXPECT_EQ(it.invoke(4), 0u);
}

TEST(Parser, LogicalOperatorsOnWideValues) {
  ObjectDesc d = parse_object(R"(
    object logic {
      var a : 8 = 0;
      var b : 8 = 0;
      method set(x : 8, y : 8) { a = x; b = y; }
      method both returns 1 { return a && b; }
      method either returns 1 { return a || b; }
      method nota returns 1 { return !a; }
    }
  )");
  ObjectInterp it(d);
  it.invoke(0, {5, 0});
  EXPECT_EQ(it.invoke(1), 0u);
  EXPECT_EQ(it.invoke(2), 1u);
  EXPECT_EQ(it.invoke(3), 0u);
  it.invoke(0, {0, 0});
  EXPECT_EQ(it.invoke(3), 1u);
}

TEST(Parser, GuardOverWideVariableUsesReduction) {
  ObjectDesc d = parse_object(R"(
    object g {
      var pending : 8 = 0;
      method post(m : 8) { pending = pending | m; }
      method take guard pending { pending = 0; }
    }
  )");
  ObjectInterp it(d);
  EXPECT_FALSE(it.guard_ok(1));
  it.invoke(0, {0x10});
  EXPECT_TRUE(it.guard_ok(1));
}

TEST(Parser, ParsedObjectSurvivesFullSynthesisFlow) {
  ObjectDesc d = parse_object(R"(
    object channel {
      var cmd_valid : 1 = 0;
      var cmd : 36 = 0;
      method putCommand(op : 4, addr : 32) guard !cmd_valid {
        cmd_valid = 1;
        cmd = concat(op, addr);
      }
      method getCommand guard cmd_valid returns 36 {
        cmd_valid = 0;
        return cmd;
      }
      method reset {
        cmd_valid = 0;
        cmd = 36'd0;
      }
    }
  )");
  EquivResult r = check_equivalence(d, SynthOptions{.clients = 2},
                                    EquivOptions{.cycles = 400, .seed = 5});
  EXPECT_TRUE(r) << r.first_mismatch;
  EXPECT_GT(r.grants, 50u);
}

TEST(Parser, CommentsAndWhitespace) {
  ObjectDesc d = parse_object(
      "object c { /* block\ncomment */ var x : 1 = 1; // line\n"
      "method m { x = 0; } }");
  EXPECT_EQ(d.vars()[0].init, 1u);
}

// --- error diagnostics ---------------------------------------------------

TEST(ParserErrors, UnknownIdentifier) {
  try {
    parse_object("object o { var x : 8 = 0; method m { x = y + 1; } }");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown identifier 'y'"),
              std::string::npos);
  }
}

TEST(ParserErrors, WidthMismatchNeedsExplicitConversion) {
  EXPECT_THROW(parse_object(R"(
    object o {
      var a : 8 = 0;
      var b : 16 = 0;
      method m { b = a + 1; }
    }
  )"),
               ParseError);
}

TEST(ParserErrors, ReturnWithoutReturns) {
  EXPECT_THROW(
      parse_object("object o { var x : 1 = 0; method m { return x; } }"),
      ParseError);
}

TEST(ParserErrors, ReturnsWithoutReturn) {
  EXPECT_THROW(
      parse_object("object o { var x:1=0; method m returns 1 { x = 1; } }"),
      ParseError);
}

TEST(ParserErrors, DuplicateVariable) {
  EXPECT_THROW(
      parse_object("object o { var x : 1 = 0; var x : 2 = 0; "
                   "method m { x = 1; } }"),
      ParseError);
}

TEST(ParserErrors, BadWidth) {
  EXPECT_THROW(parse_object("object o { var x : 65 = 0; method m {x=1;} }"),
               ParseError);
  EXPECT_THROW(parse_object("object o { var x : 0 = 0; method m {x=1;} }"),
               ParseError);
}

TEST(ParserErrors, UninferableLiteralWidth) {
  // A comparison of two bare literals has no width anchor.
  EXPECT_THROW(parse_object(R"(
    object o {
      var x : 1 = 0;
      method m { x = 1 == 2; }
    }
  )"),
               ParseError);
}

TEST(ParserErrors, TrailingGarbage) {
  EXPECT_THROW(
      parse_object("object o { var x:1=0; method m {x=1;} } extra"),
      ParseError);
}

TEST(ParserErrors, ErrorMessagesCarryLineNumbers) {
  try {
    parse_object("object o {\n  var x : 8 = 0;\n  method m { x = @; }\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos)
        << e.what();
  }
}

TEST(ParserErrors, AssignmentToUnknownVariable) {
  EXPECT_THROW(
      parse_object("object o { var x:1=0; method m { q = 1; } }"),
      ParseError);
}

TEST(ParserIf, IfLowersToConditionalAssignment) {
  ObjectDesc d = parse_object(R"(
    object cnt {
      var count : 8 = 0;
      var max_seen : 8 = 0;
      method step(k : 8) {
        count = count + k;
        if (count + k > max_seen) {
          max_seen = count + k;
        }
      }
    }
  )");
  ObjectInterp it(d);
  it.invoke(0, {5});
  EXPECT_EQ(it.var(0), 5u);
  EXPECT_EQ(it.var(1), 5u);
  it.invoke(0, {1});
  EXPECT_EQ(it.var(0), 6u);
  EXPECT_EQ(it.var(1), 6u);
  it.invoke(0, {0});
  EXPECT_EQ(it.var(1), 6u) << "max_seen holds when condition is false";
}

TEST(ParserIf, IfElseBothBranches) {
  ObjectDesc d = parse_object(R"(
    object updown {
      var v : 8 = 100;
      method step(up : 1) {
        if (up) { v = v + 1; } else { v = v - 1; }
      }
    }
  )");
  ObjectInterp it(d);
  it.invoke(0, {1});
  EXPECT_EQ(it.var(0), 101u);
  it.invoke(0, {0});
  it.invoke(0, {0});
  EXPECT_EQ(it.var(0), 99u);
}

TEST(ParserIf, NestedIf) {
  ObjectDesc d = parse_object(R"(
    object clampstep {
      var v : 8 = 0;
      method step(en : 1) {
        if (en) {
          if (v < 10) { v = v + 1; }
        }
      }
    }
  )");
  ObjectInterp it(d);
  for (int i = 0; i < 20; ++i) it.invoke(0, {1});
  EXPECT_EQ(it.var(0), 10u);
  it.invoke(0, {0});
  EXPECT_EQ(it.var(0), 10u);
}

TEST(ParserIf, IfObjectSurvivesSynthesis) {
  ObjectDesc d = parse_object(R"(
    object credit {
      var credits : 4 = 8;
      method take guard credits != 0 {
        credits = credits - 1;
      }
      method give {
        if (credits < 15) { credits = credits + 1; }
      }
      method level returns 4 { return credits; }
    }
  )");
  EquivResult r = check_equivalence(d, SynthOptions{.clients = 3},
                                    EquivOptions{.cycles = 400, .seed = 77});
  EXPECT_TRUE(r) << r.first_mismatch;
}

TEST(ParserIf, DoubleAssignAcrossIfRejected) {
  EXPECT_THROW(parse_object(R"(
    object o {
      var x : 8 = 0;
      method m(c : 1) {
        x = 1;
        if (c) { x = 2; }
      }
    }
  )"),
               ParseError);
}

TEST(ParserIf, ReturnInsideIfRejected) {
  EXPECT_THROW(parse_object(R"(
    object o {
      var x : 8 = 0;
      method m(c : 1) returns 8 {
        if (c) { return x; }
      }
    }
  )"),
               ParseError);
}

TEST(ParserMulti, ParseObjectsReadsSeveral) {
  auto objs = parse_objects(R"(
    object a { var x : 1 = 0; method m { x = 1; } }
    object b { var y : 4 = 2; method n { y = y + 1; } }
  )");
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_EQ(objs[0].name(), "a");
  EXPECT_EQ(objs[1].name(), "b");
  EXPECT_EQ(objs[1].vars()[0].init, 2u);
}

TEST(ParserMulti, VariableScopesDoNotLeakBetweenObjects) {
  // 'x' from object a must not be visible in object b.
  EXPECT_THROW(parse_objects(R"(
    object a { var x : 1 = 0; method m { x = 1; } }
    object b { var y : 1 = 0; method n { x = 1; } }
  )"),
               ParseError);
}

TEST(ParserMulti, EmptyInputRejected) {
  EXPECT_THROW(parse_objects("   // nothing here\n"), ParseError);
}

TEST(ParserMulti, ParsedImplsBuildPolymorphicObject) {
  auto objs = parse_objects(R"(
    object up { var c : 8 = 0; method step { c = c + 1; }
                method read returns 8 { return c; } }
    object dn { var c : 8 = 50; method step { c = c - 1; }
                method read returns 8 { return c; } }
  )");
  std::vector<const ObjectDesc*> impls;
  for (const ObjectDesc& o : objs) impls.push_back(&o);
  ObjectDesc poly = make_polymorphic("ud", impls, 0);
  ObjectInterp it(poly);
  it.invoke(poly.method_index("step"));
  EXPECT_EQ(it.invoke(poly.method_index("read")), 1u);
  it.invoke(poly.method_index("set_type"), {1});
  EXPECT_EQ(it.invoke(poly.method_index("read")), 50u);
}

}  // namespace
}  // namespace hlcs::synth
