// Batch engine: 64-lane bit-identity against the scalar engine.
//
// The contract under test is absolute: a BatchNetlistSim lane must be
// indistinguishable, net for net and cycle for cycle, from a scalar
// NetlistSim driven with the same stimulus -- across random netlists
// (including word arithmetic, which takes the per-lane scalar
// fallback), every scalar settle mode, synthesized objects with reset
// pulses and register feedback, and any BatchRunner thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "hlcs/sim/random.hpp"
#include "hlcs/synth/batch_tape.hpp"
#include "hlcs/synth/equiv.hpp"
#include "hlcs/synth/parser.hpp"
#include "hlcs/synth/poly.hpp"
#include "hlcs/synth/rtl_sim.hpp"
#include "netlist_gen.hpp"
#include "objects.hpp"

namespace hlcs::synth {
namespace {

constexpr std::size_t kLanes = BatchNetlistSim::kLanes;

/// Drive the batch sim and kLanes scalar reference sims with identical
/// per-lane random stimulus and require bit identity on every net of
/// every lane after every settle and edge.
void drive_batch_lockstep(const Netlist& nl, std::uint64_t seed, int edges,
                          SettleMode ref_mode) {
  BatchNetlistSim batch(nl);
  std::vector<std::unique_ptr<NetlistSim>> refs;
  std::vector<sim::Xorshift> rngs;
  refs.reserve(kLanes);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    refs.push_back(std::make_unique<NetlistSim>(nl, ref_mode));
    rngs.emplace_back(sim::lane_seed(seed, lane));
  }
  const std::vector<NetId>& ins = nl.inputs();

  auto expect_identical = [&](int edge, const char* phase) {
    for (NetId n = 0; n < nl.nets().size(); ++n) {
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        ASSERT_EQ(batch.get(n, lane), refs[lane]->get(n))
            << "net '" << nl.nets()[n].name << "' lane " << lane << " ("
            << phase << ", edge " << edge << ", ref "
            << to_string(ref_mode) << ")";
      }
    }
  };

  for (int e = 0; e < edges; ++e) {
    for (NetId in : ins) {
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        // Mirror the scalar suite's stimulus shape: sometimes skip the
        // input, sometimes rewrite the current value.
        if (rngs[lane].chance(1, 4)) continue;
        const std::uint64_t v = rngs[lane].chance(1, 4)
                                    ? refs[lane]->get(in)
                                    : rngs[lane].next();
        batch.set_input(in, lane, v);
        refs[lane]->set_input(in, v);
      }
    }
    if ((e & 3) == 0) {
      batch.settle();
      for (auto& r : refs) r->settle();
      expect_identical(e, "settle");
    }
    batch.clock_edge();
    for (auto& r : refs) r->clock_edge();
    expect_identical(e, "edge");
  }
}

TEST(BatchSim, RandomNetlistsMatchScalarOnAllLanes) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("netlist seed " + std::to_string(seed));
    Netlist nl = make_random_netlist(seed * 0xB17C0DE + 5);
    drive_batch_lockstep(nl, seed * 0x51357, 24, SettleMode::Incremental);
  }
}

TEST(BatchSim, AgreesWithEveryScalarSettleMode) {
  Netlist nl = make_random_netlist(0xD15EA5E);
  for (SettleMode mode : {SettleMode::Incremental, SettleMode::FullTape,
                          SettleMode::TreeWalk}) {
    SCOPED_TRACE(to_string(mode));
    drive_batch_lockstep(nl, 0xCAFE, 16, mode);
  }
}

TEST(BatchSim, RandomSuiteExercisesBothEvaluationPaths) {
  // The generator emits word arithmetic alongside bitwise logic, so
  // across a handful of seeds the classification must see both kinds;
  // otherwise the fallback (or the bit-parallel path) is dead code and
  // the suite above proves less than it claims.
  std::uint64_t parallel = 0, scalar = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Netlist nl = make_random_netlist(seed * 0xB17C0DE + 5);
    BatchNetlistSim s(nl);
    parallel += s.stats().combs_bit_parallel;
    scalar += s.stats().combs_scalar;
    EXPECT_EQ(s.stats().combs_evaluated,
              s.stats().combs_bit_parallel + s.stats().combs_scalar);
  }
  EXPECT_GT(parallel, 0u);
  EXPECT_GT(scalar, 0u);
}

TEST(BatchSim, Width64Boundary) {
  // Full-width planes: every per-op loop runs to exactly 64, where an
  // off-by-one in plane counts or lane masks would show.
  Netlist nl("wide");
  const NetId a = nl.add_net("a", 64);
  const NetId b = nl.add_net("b", 64);
  const NetId s = nl.add_net("s", 1);
  nl.mark_input(a);
  nl.mark_input(b);
  nl.mark_input(s);
  auto& A = nl.arena();
  const NetId x = nl.add_net("x", 64);
  nl.add_comb(x, A.bin(ExprOp::Xor, nl.net_ref(a), nl.net_ref(b)));
  const NetId m = nl.add_net("m", 64);
  nl.add_comb(m, A.mux(nl.net_ref(s), nl.net_ref(x),
                       A.un(ExprOp::Not, nl.net_ref(a))));
  const NetId r = nl.add_net("r", 1);
  nl.add_comb(r, A.un(ExprOp::RedAnd, nl.net_ref(m)));
  const NetId cat = nl.add_net("cat", 64);
  nl.add_comb(cat, A.bin(ExprOp::Concat, A.slice(nl.net_ref(m), 0, 32),
                         A.slice(nl.net_ref(x), 32, 32)));
  nl.mark_output(m);
  nl.mark_output(r);
  nl.mark_output(cat);
  nl.validate_and_order();
  drive_batch_lockstep(nl, 0x64646464, 20, SettleMode::Incremental);
}

// ---------------------------------------------------------------------
// check_equivalence: batch backend vs scalar backend
// ---------------------------------------------------------------------

void expect_same_result(const EquivResult& a, const EquivResult& b) {
  EXPECT_EQ(a.equal, b.equal);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.lanes, b.lanes);
  EXPECT_EQ(a.first_bad_lane, b.first_bad_lane);
  EXPECT_EQ(a.first_bad_seed, b.first_bad_seed);
  ASSERT_EQ(a.vectors.size(), b.vectors.size());
  for (std::size_t i = 0; i < a.vectors.size(); ++i) {
    const EquivVector& va = a.vectors[i];
    const EquivVector& vb = b.vectors[i];
    ASSERT_EQ(va.rst, vb.rst) << "vector " << i;
    ASSERT_EQ(va.grant, vb.grant) << "vector " << i;
    ASSERT_EQ(va.ret, vb.ret) << "vector " << i;
    ASSERT_EQ(va.vars, vb.vars) << "vector " << i;
    ASSERT_EQ(va.in.size(), vb.in.size()) << "vector " << i;
    for (std::size_t c = 0; c < va.in.size(); ++c) {
      ASSERT_EQ(va.in[c].req, vb.in[c].req) << "vector " << i;
      ASSERT_EQ(va.in[c].sel, vb.in[c].sel) << "vector " << i;
      ASSERT_EQ(va.in[c].args, vb.in[c].args) << "vector " << i;
    }
  }
}

TEST(BatchEquiv, VerdictsBitIdenticalToScalarBackend) {
  for (int which = 0; which < 4; ++which) {
    ObjectDesc d = which == 0   ? testobj::bistable()
                   : which == 1 ? testobj::counter()
                   : which == 2 ? testobj::mailbox()
                                : testobj::swapper();
    SCOPED_TRACE(d.name());
    SynthOptions opt;
    opt.clients = 3;
    opt.policy = which % 2 == 0 ? osss::PolicyKind::StaticPriority
                                : osss::PolicyKind::Fifo;
    EquivOptions scalar{.cycles = 150,
                        .seed = 0xBA7C4 + static_cast<std::uint64_t>(which),
                        .reset_percent = 4,
                        .lanes = 64};
    EquivOptions batch = scalar;
    batch.batch = true;
    const EquivResult rs = check_equivalence(d, opt, scalar);
    const EquivResult rb = check_equivalence(d, opt, batch);
    EXPECT_TRUE(rs.equal) << rs.first_mismatch;
    EXPECT_TRUE(rb.equal) << rb.first_mismatch;
    EXPECT_GT(rb.grants, 0u);
    EXPECT_EQ(rb.cycles, 150u * 64u);
    expect_same_result(rs, rb);
  }
}

TEST(BatchEquiv, ShippedObjectsBitIdenticalScalarVsBatch) {
  // The CLI objects under tools/objs/ are the shipped surface of the
  // flow; the batch backend must reproduce the scalar verdict on each
  // of them exactly (counters.obj carries several implementations and
  // goes through the same polymorphic flattening as hlcs_synth).
  for (const char* file : {"mailbox.obj", "semaphore.obj", "counters.obj"}) {
    SCOPED_TRACE(file);
    std::ifstream in(std::string(HLCS_OBJS_DIR) + "/" + file);
    ASSERT_TRUE(in) << "cannot open shipped object " << file;
    std::stringstream ss;
    ss << in.rdbuf();
    std::vector<ObjectDesc> parsed = parse_objects(ss.str());
    ASSERT_FALSE(parsed.empty());
    ObjectDesc d = [&]() -> ObjectDesc {
      if (parsed.size() == 1) return std::move(parsed[0]);
      std::vector<const ObjectDesc*> impls;
      for (const ObjectDesc& o : parsed) impls.push_back(&o);
      return make_polymorphic(parsed[0].name() + "_poly", impls, 0);
    }();
    for (osss::PolicyKind policy :
         {osss::PolicyKind::StaticPriority, osss::PolicyKind::RoundRobin}) {
      SCOPED_TRACE(osss::policy_name(policy));
      SynthOptions opt;
      opt.clients = 3;
      opt.policy = policy;
      EquivOptions scalar{.cycles = 150,
                          .seed = 0x0B15C0 + static_cast<std::uint64_t>(policy),
                          .reset_percent = 4,
                          .lanes = 64};
      EquivOptions batch = scalar;
      batch.batch = true;
      const EquivResult rs = check_equivalence(d, opt, scalar);
      const EquivResult rb = check_equivalence(d, opt, batch);
      EXPECT_TRUE(rs.equal) << rs.first_mismatch;
      EXPECT_TRUE(rb.equal) << rb.first_mismatch;
      EXPECT_GT(rb.grants, 0u);
      expect_same_result(rs, rb);
    }
  }
}

TEST(BatchEquiv, DeterministicAtAnyThreadCount) {
  // 130 lanes = three blocks (64 + 64 + 2), claimed in racy order by
  // the pool; results must not depend on who ran what.
  const ObjectDesc d = testobj::mailbox();
  SynthOptions opt;
  opt.clients = 4;
  opt.policy = osss::PolicyKind::RoundRobin;
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<EquivResult> runs;
  for (unsigned threads : {1u, 2u, hw == 0 ? 4u : hw}) {
    EquivOptions eopt{.cycles = 120,
                      .seed = 0x7EAD,
                      .reset_percent = 3,
                      .lanes = 130,
                      .batch = true,
                      .threads = threads};
    runs.push_back(check_equivalence(d, opt, eopt));
  }
  for (const EquivResult& r : runs) {
    EXPECT_TRUE(r.equal) << r.first_mismatch;
    EXPECT_EQ(r.cycles, 120u * 130u);
  }
  expect_same_result(runs[0], runs[1]);
  expect_same_result(runs[0], runs[2]);
}

TEST(BatchEquiv, ScalarMultiLaneMatchesBatchAndSingleLaneReplay) {
  const ObjectDesc d = testobj::counter();
  SynthOptions opt;
  opt.clients = 2;
  opt.policy = osss::PolicyKind::StaticPriority;
  EquivOptions multi{.cycles = 100, .seed = 0x1DEA, .lanes = 5};
  const EquivResult rm = check_equivalence(d, opt, multi);
  EXPECT_TRUE(rm.equal) << rm.first_mismatch;
  EXPECT_EQ(rm.cycles, 500u);

  // The recorded vectors are lane 0's stream, which a plain single-lane
  // run with the same root seed reproduces exactly.
  EquivOptions one{.cycles = 100, .seed = 0x1DEA};
  const EquivResult r1 = check_equivalence(d, opt, one);
  ASSERT_EQ(r1.vectors.size(), rm.vectors.size());
  for (std::size_t i = 0; i < r1.vectors.size(); ++i) {
    ASSERT_EQ(r1.vectors[i].rst, rm.vectors[i].rst) << "vector " << i;
    ASSERT_EQ(r1.vectors[i].grant, rm.vectors[i].grant) << "vector " << i;
    ASSERT_EQ(r1.vectors[i].vars, rm.vectors[i].vars) << "vector " << i;
  }

  EquivOptions batch = multi;
  batch.batch = true;
  const EquivResult rb = check_equivalence(d, opt, batch);
  expect_same_result(rm, rb);
}

// ---------------------------------------------------------------------
// BatchRunner
// ---------------------------------------------------------------------

TEST(BatchRunner, BlocksPartitionTheLanePopulation) {
  EXPECT_EQ(BatchRunner::block_count(1), 1u);
  EXPECT_EQ(BatchRunner::block_count(64), 1u);
  EXPECT_EQ(BatchRunner::block_count(65), 2u);
  EXPECT_EQ(BatchRunner::block_count(200), 4u);

  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> seen(
      BatchRunner::block_count(200));
  BatchRunner::run(200, 4,
                   [&](std::size_t block, std::size_t lane0, std::size_t n) {
                     std::lock_guard<std::mutex> lock(mu);
                     seen[block] = {lane0, n};
                   });
  std::size_t covered = 0;
  for (std::size_t b = 0; b < seen.size(); ++b) {
    EXPECT_EQ(seen[b].first, b * 64) << "block " << b;
    covered += seen[b].second;
  }
  EXPECT_EQ(seen.back().second, 200u % 64u);
  EXPECT_EQ(covered, 200u);
}

TEST(BatchRunner, PropagatesTheLowestBlockError) {
  try {
    BatchRunner::run(200, 3, [&](std::size_t block, std::size_t, std::size_t) {
      if (block >= 1) throw std::runtime_error("block " +
                                               std::to_string(block));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "block 1");
  }
}

TEST(LaneSeeds, StableAndDistinct) {
  // The derivation is part of the reproducibility contract: a logged
  // lane seed from an old failure must mean the same stream forever.
  EXPECT_EQ(sim::lane_seed(0, 0), sim::splitmix64(0));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t lane = 0; lane < 128; ++lane) {
    seeds.push_back(sim::lane_seed(0xEC1, lane));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

}  // namespace
}  // namespace hlcs::synth
