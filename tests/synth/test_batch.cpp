// Batch engine: K*64-lane bit-identity against the scalar engine.
//
// The contract under test is absolute: a BatchNetlistSim lane must be
// indistinguishable, net for net and cycle for cycle, from a scalar
// NetlistSim driven with the same stimulus -- across random netlists
// (including word arithmetic, which takes the per-lane scalar
// fallback), every scalar settle mode, every superlane factor
// K in {1, 4, 8}, synthesized objects with reset pulses and register
// feedback, and any BatchRunner thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "hlcs/sim/random.hpp"
#include "hlcs/synth/batch_tape.hpp"
#include "hlcs/synth/equiv.hpp"
#include "hlcs/synth/parser.hpp"
#include "hlcs/synth/poly.hpp"
#include "hlcs/synth/rtl_sim.hpp"
#include "netlist_gen.hpp"
#include "objects.hpp"

namespace hlcs::synth {
namespace {

constexpr std::size_t kLanes = BatchNetlistSim::kLanes;

/// Drive the batch sim (at superlane factor `super`) and one scalar
/// reference sim per lane with identical per-lane random stimulus and
/// require bit identity on every net of every lane after every settle
/// and edge.  This is the lane-for-lane statement: batch lane L at any
/// K equals the scalar engine seeded for lane L, hence K=8 lane L
/// equals K=1 lane L.
void drive_batch_lockstep(const Netlist& nl, std::uint64_t seed, int edges,
                          SettleMode ref_mode, unsigned super = 1) {
  BatchNetlistSim batch(nl, super);
  const std::size_t lanes = batch.lanes();
  std::vector<std::unique_ptr<NetlistSim>> refs;
  std::vector<sim::Xorshift> rngs;
  refs.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    refs.push_back(std::make_unique<NetlistSim>(nl, ref_mode));
    rngs.emplace_back(sim::lane_seed(seed, lane));
  }
  const std::vector<NetId>& ins = nl.inputs();

  auto expect_identical = [&](int edge, const char* phase) {
    for (NetId n = 0; n < nl.nets().size(); ++n) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        ASSERT_EQ(batch.get(n, lane), refs[lane]->get(n))
            << "net '" << nl.nets()[n].name << "' lane " << lane << " ("
            << phase << ", edge " << edge << ", ref " << to_string(ref_mode)
            << ", super " << super << ")";
      }
    }
  };

  for (int e = 0; e < edges; ++e) {
    for (NetId in : ins) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        // Mirror the scalar suite's stimulus shape: sometimes skip the
        // input, sometimes rewrite the current value.
        if (rngs[lane].chance(1, 4)) continue;
        const std::uint64_t v = rngs[lane].chance(1, 4)
                                    ? refs[lane]->get(in)
                                    : rngs[lane].next();
        batch.set_input(in, lane, v);
        refs[lane]->set_input(in, v);
      }
    }
    if ((e & 3) == 0) {
      batch.settle();
      for (auto& r : refs) r->settle();
      expect_identical(e, "settle");
    }
    batch.clock_edge();
    for (auto& r : refs) r->clock_edge();
    expect_identical(e, "edge");
  }
}

TEST(BatchSim, RandomNetlistsMatchScalarOnAllLanes) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("netlist seed " + std::to_string(seed));
    Netlist nl = make_random_netlist(seed * 0xB17C0DE + 5);
    drive_batch_lockstep(nl, seed * 0x51357, 24, SettleMode::Incremental);
  }
}

TEST(BatchSim, AgreesWithEveryScalarSettleMode) {
  Netlist nl = make_random_netlist(0xD15EA5E);
  for (SettleMode mode : {SettleMode::Incremental, SettleMode::FullTape,
                          SettleMode::TreeWalk}) {
    SCOPED_TRACE(to_string(mode));
    drive_batch_lockstep(nl, 0xCAFE, 16, mode);
  }
}

TEST(BatchSim, SuperlaneSettleModeParityMatrix) {
  // K x settle-mode matrix over randomized netlists: every lane of a
  // K=4 / K=8 superlane sim must match its own scalar reference, in
  // every scalar settle mode.  The generator mixes word arithmetic in,
  // so the K-wide scalar fallback (gather/exec/scatter over K*64
  // lanes) is exercised too, not just the row loops.
  for (unsigned super : {1u, 4u, 8u}) {
    Netlist nl = make_random_netlist(0x5AFE + super);
    for (SettleMode mode : {SettleMode::Incremental, SettleMode::FullTape,
                            SettleMode::TreeWalk}) {
      SCOPED_TRACE("super " + std::to_string(super) + ", " +
                   to_string(mode));
      drive_batch_lockstep(nl, 0x9E3779B9 * super, super == 8 ? 6 : 10,
                           mode, super);
    }
  }
}

TEST(BatchSim, FusionCountersAreObservableAndConsistent) {
  // Synthesized arbitration logic is what the fusion pass targets: the
  // priority chains (and-not), compare-feeds-mux selectors and CSE slot
  // stores must actually hit, and the dynamic counter must be the
  // static per-settle count times the number of settles.
  const ObjectDesc d = testobj::mailbox();
  SynthOptions opt;
  opt.clients = 3;
  const Netlist nl = synthesize(d, opt);
  BatchNetlistSim sim(nl);
  const BatchTape& bt = sim.tape();
  EXPECT_GT(bt.fused_insns(), 0u);
  std::uint64_t hits_total = 0, and_not_family = 0;
  for (const auto& [name, hits] : bt.fusion_hits()) {
    hits_total += hits;
    if (name == "and_not" || name == "and_not_net") and_not_family += hits;
  }
  EXPECT_EQ(hits_total, bt.fused_insns());
  EXPECT_GT(and_not_family, 0u) << "priority chains should fuse";

  sim.reset_stats();
  sim.clock_edge();  // settles twice
  EXPECT_EQ(sim.stats().fused_ops, 2 * bt.fused_insns());
  EXPECT_EQ(sim.stats().scalar_ops, 0u) << "mailbox is fully bit-parallel";
  EXPECT_EQ(sim.stats().combs_scalar, 0u);
}

TEST(BatchSim, RandomSuiteExercisesBothEvaluationPaths) {
  // The generator emits word arithmetic alongside bitwise logic, so
  // across a handful of seeds the classification must see both kinds;
  // otherwise the fallback (or the bit-parallel path) is dead code and
  // the suite above proves less than it claims.
  std::uint64_t parallel = 0, scalar = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Netlist nl = make_random_netlist(seed * 0xB17C0DE + 5);
    BatchNetlistSim s(nl);
    parallel += s.stats().combs_bit_parallel;
    scalar += s.stats().combs_scalar;
    EXPECT_EQ(s.stats().combs_evaluated,
              s.stats().combs_bit_parallel + s.stats().combs_scalar);
  }
  EXPECT_GT(parallel, 0u);
  EXPECT_GT(scalar, 0u);
}

TEST(BatchSim, Width64Boundary) {
  // Full-width planes: every per-op loop runs to exactly 64 rows, where
  // an off-by-one in plane counts or lane masks would show.  At K=4 the
  // row address is plane_off * K, where a stride bug would alias
  // adjacent nets' rows.
  Netlist nl("wide");
  const NetId a = nl.add_net("a", 64);
  const NetId b = nl.add_net("b", 64);
  const NetId s = nl.add_net("s", 1);
  nl.mark_input(a);
  nl.mark_input(b);
  nl.mark_input(s);
  auto& A = nl.arena();
  const NetId x = nl.add_net("x", 64);
  nl.add_comb(x, A.bin(ExprOp::Xor, nl.net_ref(a), nl.net_ref(b)));
  const NetId m = nl.add_net("m", 64);
  nl.add_comb(m, A.mux(nl.net_ref(s), nl.net_ref(x),
                       A.un(ExprOp::Not, nl.net_ref(a))));
  const NetId r = nl.add_net("r", 1);
  nl.add_comb(r, A.un(ExprOp::RedAnd, nl.net_ref(m)));
  const NetId cat = nl.add_net("cat", 64);
  nl.add_comb(cat, A.bin(ExprOp::Concat, A.slice(nl.net_ref(m), 0, 32),
                         A.slice(nl.net_ref(x), 32, 32)));
  nl.mark_output(m);
  nl.mark_output(r);
  nl.mark_output(cat);
  nl.validate_and_order();
  drive_batch_lockstep(nl, 0x64646464, 20, SettleMode::Incremental);
  drive_batch_lockstep(nl, 0x64646464, 10, SettleMode::Incremental, 4);
}

// ---------------------------------------------------------------------
// check_equivalence: batch backend vs scalar backend
// ---------------------------------------------------------------------

void expect_same_result(const EquivResult& a, const EquivResult& b) {
  EXPECT_EQ(a.equal, b.equal);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.lanes, b.lanes);
  EXPECT_EQ(a.first_bad_lane, b.first_bad_lane);
  EXPECT_EQ(a.first_bad_seed, b.first_bad_seed);
  ASSERT_EQ(a.vectors.size(), b.vectors.size());
  for (std::size_t i = 0; i < a.vectors.size(); ++i) {
    const EquivVector& va = a.vectors[i];
    const EquivVector& vb = b.vectors[i];
    ASSERT_EQ(va.rst, vb.rst) << "vector " << i;
    ASSERT_EQ(va.grant, vb.grant) << "vector " << i;
    ASSERT_EQ(va.ret, vb.ret) << "vector " << i;
    ASSERT_EQ(va.vars, vb.vars) << "vector " << i;
    ASSERT_EQ(va.in.size(), vb.in.size()) << "vector " << i;
    for (std::size_t c = 0; c < va.in.size(); ++c) {
      ASSERT_EQ(va.in[c].req, vb.in[c].req) << "vector " << i;
      ASSERT_EQ(va.in[c].sel, vb.in[c].sel) << "vector " << i;
      ASSERT_EQ(va.in[c].args, vb.in[c].args) << "vector " << i;
    }
  }
}

TEST(BatchEquiv, VerdictsBitIdenticalToScalarBackend) {
  for (int which = 0; which < 4; ++which) {
    ObjectDesc d = which == 0   ? testobj::bistable()
                   : which == 1 ? testobj::counter()
                   : which == 2 ? testobj::mailbox()
                                : testobj::swapper();
    SCOPED_TRACE(d.name());
    SynthOptions opt;
    opt.clients = 3;
    opt.policy = which % 2 == 0 ? osss::PolicyKind::StaticPriority
                                : osss::PolicyKind::Fifo;
    EquivOptions scalar{.cycles = 150,
                        .seed = 0xBA7C4 + static_cast<std::uint64_t>(which),
                        .reset_percent = 4,
                        .lanes = 64};
    EquivOptions batch = scalar;
    batch.batch = true;
    const EquivResult rs = check_equivalence(d, opt, scalar);
    const EquivResult rb = check_equivalence(d, opt, batch);
    EXPECT_TRUE(rs.equal) << rs.first_mismatch;
    EXPECT_TRUE(rb.equal) << rb.first_mismatch;
    EXPECT_GT(rb.grants, 0u);
    EXPECT_EQ(rb.cycles, 150u * 64u);
    expect_same_result(rs, rb);
  }
}

TEST(BatchEquiv, ShippedObjectsBitIdenticalScalarVsBatch) {
  // The CLI objects under tools/objs/ are the shipped surface of the
  // flow; the batch backend must reproduce the scalar verdict on each
  // of them exactly (counters.obj carries several implementations and
  // goes through the same polymorphic flattening as hlcs_synth).
  for (const char* file : {"mailbox.obj", "semaphore.obj", "counters.obj"}) {
    SCOPED_TRACE(file);
    std::ifstream in(std::string(HLCS_OBJS_DIR) + "/" + file);
    ASSERT_TRUE(in) << "cannot open shipped object " << file;
    std::stringstream ss;
    ss << in.rdbuf();
    std::vector<ObjectDesc> parsed = parse_objects(ss.str());
    ASSERT_FALSE(parsed.empty());
    ObjectDesc d = [&]() -> ObjectDesc {
      if (parsed.size() == 1) return std::move(parsed[0]);
      std::vector<const ObjectDesc*> impls;
      for (const ObjectDesc& o : parsed) impls.push_back(&o);
      return make_polymorphic(parsed[0].name() + "_poly", impls, 0);
    }();
    for (osss::PolicyKind policy :
         {osss::PolicyKind::StaticPriority, osss::PolicyKind::RoundRobin}) {
      SCOPED_TRACE(osss::policy_name(policy));
      SynthOptions opt;
      opt.clients = 3;
      opt.policy = policy;
      EquivOptions scalar{.cycles = 150,
                          .seed = 0x0B15C0 + static_cast<std::uint64_t>(policy),
                          .reset_percent = 4,
                          .lanes = 64};
      EquivOptions batch = scalar;
      batch.batch = true;
      const EquivResult rs = check_equivalence(d, opt, scalar);
      const EquivResult rb = check_equivalence(d, opt, batch);
      EXPECT_TRUE(rs.equal) << rs.first_mismatch;
      EXPECT_TRUE(rb.equal) << rb.first_mismatch;
      EXPECT_GT(rb.grants, 0u);
      expect_same_result(rs, rb);
    }
  }
}

TEST(BatchEquiv, DeterministicAtAnyThreadCount) {
  // 130 lanes = three blocks (64 + 64 + 2), claimed in racy order by
  // the pool; results must not depend on who ran what.
  const ObjectDesc d = testobj::mailbox();
  SynthOptions opt;
  opt.clients = 4;
  opt.policy = osss::PolicyKind::RoundRobin;
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<EquivResult> runs;
  for (unsigned threads : {1u, 2u, hw == 0 ? 4u : hw}) {
    EquivOptions eopt{.cycles = 120,
                      .seed = 0x7EAD,
                      .reset_percent = 3,
                      .lanes = 130,
                      .batch = true,
                      .threads = threads};
    runs.push_back(check_equivalence(d, opt, eopt));
  }
  for (const EquivResult& r : runs) {
    EXPECT_TRUE(r.equal) << r.first_mismatch;
    EXPECT_EQ(r.cycles, 120u * 130u);
  }
  expect_same_result(runs[0], runs[1]);
  expect_same_result(runs[0], runs[2]);
}

TEST(BatchEquiv, SuperlaneParityMatrixOnShippedObjects) {
  // Randomized K x thread-count matrix over the shipped .obj surface
  // (counters.obj goes through polymorphic flattening): every batch
  // configuration must reproduce the scalar backend's verdict, grants,
  // vectors and counters exactly, with reset pulses in the stimulus.
  sim::Xorshift rng(0x5C277);
  for (const char* file : {"mailbox.obj", "semaphore.obj", "counters.obj"}) {
    SCOPED_TRACE(file);
    std::ifstream in(std::string(HLCS_OBJS_DIR) + "/" + file);
    ASSERT_TRUE(in) << "cannot open shipped object " << file;
    std::stringstream ss;
    ss << in.rdbuf();
    std::vector<ObjectDesc> parsed = parse_objects(ss.str());
    ASSERT_FALSE(parsed.empty());
    ObjectDesc d = [&]() -> ObjectDesc {
      if (parsed.size() == 1) return std::move(parsed[0]);
      std::vector<const ObjectDesc*> impls;
      for (const ObjectDesc& o : parsed) impls.push_back(&o);
      return make_polymorphic(parsed[0].name() + "_poly", impls, 0);
    }();
    SynthOptions opt;
    opt.clients = 2;
    opt.policy = osss::PolicyKind::RoundRobin;
    // A lane count that is no multiple of any block width, re-rolled
    // per object so the matrix drifts across runs of the suite's seeds.
    const std::size_t lanes = 65 + rng.below(140);
    EquivOptions scalar{.cycles = 60,
                        .seed = rng.next(),
                        .reset_percent = 4,
                        .lanes = lanes};
    const EquivResult rs = check_equivalence(d, opt, scalar);
    EXPECT_TRUE(rs.equal) << rs.first_mismatch;
    for (unsigned super : {1u, 4u, 8u}) {
      for (unsigned threads : {1u, 3u}) {
        SCOPED_TRACE("super " + std::to_string(super) + " threads " +
                     std::to_string(threads) + " lanes " +
                     std::to_string(lanes));
        EquivOptions batch = scalar;
        batch.batch = true;
        batch.superlanes = super;
        batch.threads = threads;
        const EquivResult rb = check_equivalence(d, opt, batch);
        EXPECT_TRUE(rb.equal) << rb.first_mismatch;
        expect_same_result(rs, rb);
        EXPECT_GT(rb.batch_stats.combs_evaluated, 0u);
        EXPECT_DOUBLE_EQ(rb.batch_scalar_fraction,
                         rb.batch_stats.scalar_fraction());
      }
    }
  }
}

TEST(BatchEquiv, SuperlaneVerdictsIdenticalToK1UnderTheSameSeed) {
  // The K determinism statement at the service level: with one root
  // seed, K=8 produces the same verdict, grant totals, recorded
  // vectors and failure attribution as K=1 -- lane L's stimulus stream
  // is a function of lane_seed(seed, L) only, never of the block shape
  // it ran in.  (Per-lane net values are covered lane-for-lane by
  // BatchSim.SuperlaneSettleModeParityMatrix against the scalar sim.)
  const ObjectDesc d = testobj::mailbox();
  SynthOptions opt;
  opt.clients = 3;
  opt.policy = osss::PolicyKind::StaticPriority;
  std::vector<EquivResult> by_super;
  for (unsigned super : {1u, 8u}) {
    EquivOptions eopt{.cycles = 100,
                      .seed = 0xD0D0,
                      .reset_percent = 3,
                      .lanes = 512,
                      .batch = true,
                      .superlanes = super};
    by_super.push_back(check_equivalence(d, opt, eopt));
  }
  for (const EquivResult& r : by_super) {
    EXPECT_TRUE(r.equal) << r.first_mismatch;
    EXPECT_EQ(r.cycles, 100u * 512u);
    EXPECT_GT(r.batch_stats.fused_ops, 0u);
  }
  expect_same_result(by_super[0], by_super[1]);
}

TEST(BatchEquiv, ScalarMultiLaneMatchesBatchAndSingleLaneReplay) {
  const ObjectDesc d = testobj::counter();
  SynthOptions opt;
  opt.clients = 2;
  opt.policy = osss::PolicyKind::StaticPriority;
  EquivOptions multi{.cycles = 100, .seed = 0x1DEA, .lanes = 5};
  const EquivResult rm = check_equivalence(d, opt, multi);
  EXPECT_TRUE(rm.equal) << rm.first_mismatch;
  EXPECT_EQ(rm.cycles, 500u);

  // The recorded vectors are lane 0's stream, which a plain single-lane
  // run with the same root seed reproduces exactly.
  EquivOptions one{.cycles = 100, .seed = 0x1DEA};
  const EquivResult r1 = check_equivalence(d, opt, one);
  ASSERT_EQ(r1.vectors.size(), rm.vectors.size());
  for (std::size_t i = 0; i < r1.vectors.size(); ++i) {
    ASSERT_EQ(r1.vectors[i].rst, rm.vectors[i].rst) << "vector " << i;
    ASSERT_EQ(r1.vectors[i].grant, rm.vectors[i].grant) << "vector " << i;
    ASSERT_EQ(r1.vectors[i].vars, rm.vectors[i].vars) << "vector " << i;
  }

  EquivOptions batch = multi;
  batch.batch = true;
  const EquivResult rb = check_equivalence(d, opt, batch);
  expect_same_result(rm, rb);
}

// ---------------------------------------------------------------------
// BatchRunner
// ---------------------------------------------------------------------

TEST(BatchRunner, BlocksPartitionTheLanePopulation) {
  EXPECT_EQ(BatchRunner::block_count(1), 1u);
  EXPECT_EQ(BatchRunner::block_count(64), 1u);
  EXPECT_EQ(BatchRunner::block_count(65), 2u);
  EXPECT_EQ(BatchRunner::block_count(200), 4u);

  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> seen(
      BatchRunner::block_count(200));
  BatchRunner::run(200, 4, 1,
                   [&](std::size_t block, const BatchRunner::Block& blk) {
                     std::lock_guard<std::mutex> lock(mu);
                     seen[block] = {blk.lane0, blk.lanes};
                   });
  std::size_t covered = 0;
  for (std::size_t b = 0; b < seen.size(); ++b) {
    EXPECT_EQ(seen[b].first, b * 64) << "block " << b;
    covered += seen[b].second;
  }
  EXPECT_EQ(seen.back().second, 200u % 64u);
  EXPECT_EQ(covered, 200u);
}

TEST(BatchRunner, SuperlanePartitionCoversEveryLaneExactlyOnce) {
  // The partition depends only on (lanes, super): full super-wide
  // blocks, then one tail at the smallest superlane that covers the
  // rest.  Spot shapes first, then sweep the invariants.
  auto p = BatchRunner::partition(512, 8);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].super, 8u);
  EXPECT_EQ(p[0].lanes, 512u);

  p = BatchRunner::partition(576, 8);  // 512 + 64
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].super, 8u);
  EXPECT_EQ(p[1].super, 1u);  // 64-lane tail never pays for idle words
  EXPECT_EQ(p[1].lane0, 512u);

  p = BatchRunner::partition(64, 8);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].super, 1u);

  p = BatchRunner::partition(130, 8);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].super, 4u);

  for (unsigned super : {1u, 4u, 8u}) {
    for (std::size_t lanes : {1u, 63u, 64u, 65u, 130u, 256u, 300u, 512u,
                              577u, 1000u}) {
      SCOPED_TRACE("super " + std::to_string(super) + " lanes " +
                   std::to_string(lanes));
      std::size_t next = 0;
      for (const auto& b : BatchRunner::partition(lanes, super)) {
        EXPECT_EQ(b.lane0, next);
        EXPECT_GE(b.lanes, 1u);
        EXPECT_LE(b.lanes, std::size_t{b.super} * 64);
        EXPECT_LE(b.super, super);
        next = b.lane0 + b.lanes;
      }
      EXPECT_EQ(next, lanes);
    }
  }
}

TEST(BatchRunner, PropagatesTheLowestBlockError) {
  try {
    BatchRunner::run(200, 3, 1,
                     [&](std::size_t block, const BatchRunner::Block&) {
                       if (block >= 1) {
                         throw std::runtime_error("block " +
                                                  std::to_string(block));
                       }
                     });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "block 1");
  }
}

TEST(LaneSeeds, StableAndDistinct) {
  // The derivation is part of the reproducibility contract: a logged
  // lane seed from an old failure must mean the same stream forever.
  EXPECT_EQ(sim::lane_seed(0, 0), sim::splitmix64(0));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t lane = 0; lane < 128; ++lane) {
    seeds.push_back(sim::lane_seed(0xEC1, lane));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

}  // namespace
}  // namespace hlcs::synth
