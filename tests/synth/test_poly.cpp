// Hardware polymorphism: late-binding dispatch over implementation
// classes, flattened into the synthesisable subset and pushed through
// the complete flow (interpreter, synthesis, golden lock-step, Verilog).
#include <gtest/gtest.h>

#include "hlcs/sim/random.hpp"
#include "hlcs/synth/golden.hpp"
#include "hlcs/synth/poly.hpp"
#include "hlcs/synth/rtl_sim.hpp"
#include "hlcs/synth/report.hpp"
#include "hlcs/synth/verilog.hpp"
#include "objects.hpp"

namespace hlcs::synth {
namespace {

/// Interface: step(), read() -> 8 bits.  Three behaviours.
ObjectDesc up_counter() {
  ObjectDesc d("up");
  auto c = d.add_var("count", 8, 0);
  auto& A = d.arena();
  d.add_method("step").assign(c, A.bin(ExprOp::Add, d.v(c), d.lit(1, 8)));
  d.add_method("read").returns(d.v(c), 8);
  return d;
}

ObjectDesc down_counter() {
  ObjectDesc d("down");
  auto c = d.add_var("count", 8, 100);
  auto& A = d.arena();
  d.add_method("step").assign(c, A.bin(ExprOp::Sub, d.v(c), d.lit(1, 8)));
  d.add_method("read").returns(d.v(c), 8);
  return d;
}

ObjectDesc saturating_counter() {
  ObjectDesc d("sat");
  auto c = d.add_var("count", 8, 0);
  auto& A = d.arena();
  ExprId at_max = A.bin(ExprOp::Eq, d.v(c), d.lit(10, 8));
  d.add_method("step").assign(
      c, A.mux(at_max, d.v(c), A.bin(ExprOp::Add, d.v(c), d.lit(1, 8))));
  d.add_method("read").returns(d.v(c), 8);
  return d;
}

/// A guarded variant pair: gated_step is only eligible when armed.
ObjectDesc guarded_a() {
  ObjectDesc d("ga");
  auto armed = d.add_var("armed", 1, 1);
  auto c = d.add_var("value", 8, 0);
  auto& A = d.arena();
  d.add_method("gated_step")
      .guard(d.v(armed))
      .assign(c, A.bin(ExprOp::Add, d.v(c), d.lit(2, 8)));
  d.add_method("arm").arg("on", 1).assign(armed, d.a(0, 1));
  d.add_method("read").returns(d.v(c), 8);
  return d;
}

ObjectDesc guarded_b() {
  ObjectDesc d("gb");
  auto armed = d.add_var("armed", 1, 0);  // starts DISarmed
  auto c = d.add_var("value", 8, 50);
  auto& A = d.arena();
  d.add_method("gated_step")
      .guard(d.v(armed))
      .assign(c, A.bin(ExprOp::Sub, d.v(c), d.lit(5, 8)));
  d.add_method("arm").arg("on", 1).assign(armed, d.a(0, 1));
  d.add_method("read").returns(d.v(c), 8);
  return d;
}

TEST(Polymorphic, InterfaceCheckAcceptsMatching) {
  ObjectDesc a = up_counter(), b = down_counter(), c = saturating_counter();
  EXPECT_NO_THROW(check_same_interface({&a, &b, &c}));
}

TEST(Polymorphic, InterfaceCheckRejectsMismatch) {
  ObjectDesc a = up_counter();
  ObjectDesc b = testobj::mailbox();
  EXPECT_THROW(check_same_interface({&a, &b}), SynthesisError);
  EXPECT_THROW(check_same_interface({}), SynthesisError);
}

TEST(Polymorphic, RejectsBadInitialTag) {
  ObjectDesc a = up_counter(), b = down_counter();
  EXPECT_THROW(make_polymorphic("p", {&a, &b}, 2), SynthesisError);
}

TEST(Polymorphic, FlattenedShape) {
  ObjectDesc a = up_counter(), b = down_counter(), c = saturating_counter();
  PolymorphicLayout lay;
  ObjectDesc poly = make_polymorphic("poly_counter", {&a, &b, &c}, 0, &lay);
  EXPECT_EQ(poly.vars().size(), 4u);  // __type + 3 counts
  EXPECT_EQ(poly.vars()[lay.type_var].name, "__type");
  EXPECT_EQ(poly.vars()[lay.type_var].width, 2u);
  EXPECT_EQ(poly.methods().size(), 3u);  // step, read, set_type
  EXPECT_EQ(poly.methods()[lay.set_type_method].name, "set_type");
  EXPECT_EQ(poly.vars()[lay.var_base[1]].name, "down_count");
  EXPECT_EQ(poly.vars()[lay.var_base[1]].init, 100u);
}

TEST(Polymorphic, LateBindingDispatchInInterpreter) {
  ObjectDesc a = up_counter(), b = down_counter(), c = saturating_counter();
  PolymorphicLayout lay;
  ObjectDesc poly = make_polymorphic("poly", {&a, &b, &c}, 0, &lay);
  ObjectInterp it(poly);
  const auto step = poly.method_index("step");
  const auto read = poly.method_index("read");
  const auto set_type = poly.method_index("set_type");

  // Type 0: up counter.
  it.invoke(step);
  it.invoke(step);
  EXPECT_EQ(it.invoke(read), 2u);
  // Re-bind to the down counter: ITS state (100) is live, and the up
  // counter's state is preserved.
  it.invoke(set_type, {1});
  EXPECT_EQ(it.invoke(read), 100u);
  it.invoke(step);
  EXPECT_EQ(it.invoke(read), 99u);
  // Back to type 0: the up counter still holds 2 (no cross-talk).
  it.invoke(set_type, {0});
  EXPECT_EQ(it.invoke(read), 2u);
  // Saturating impl clamps at 10.
  it.invoke(set_type, {2});
  for (int i = 0; i < 20; ++i) it.invoke(step);
  EXPECT_EQ(it.invoke(read), 10u);
}

TEST(Polymorphic, InactiveImplStateHolds) {
  ObjectDesc a = up_counter(), b = down_counter();
  ObjectDesc poly = make_polymorphic("poly", {&a, &b}, 0);
  ObjectInterp it(poly);
  const auto step = poly.method_index("step");
  for (int i = 0; i < 7; ++i) it.invoke(step);
  // down_count (var index 2: __type, up_count, down_count) untouched.
  EXPECT_EQ(it.var(2), 100u);
  EXPECT_EQ(it.var(1), 7u);
}

TEST(Polymorphic, GuardsDispatchThroughTag) {
  ObjectDesc a = guarded_a(), b = guarded_b();
  ObjectDesc poly = make_polymorphic("gpoly", {&a, &b}, 0);
  ObjectInterp it(poly);
  const auto gated = poly.method_index("gated_step");
  const auto arm = poly.method_index("arm");
  const auto set_type = poly.method_index("set_type");
  // Impl a starts armed -> eligible; impl b starts disarmed.
  EXPECT_TRUE(it.guard_ok(gated));
  it.invoke(set_type, {1});
  EXPECT_FALSE(it.guard_ok(gated)) << "impl b is disarmed";
  it.invoke(arm, {1});
  EXPECT_TRUE(it.guard_ok(gated));
  it.invoke(gated);
  EXPECT_EQ(it.invoke(poly.method_index("read")), 45u);
}

TEST(Polymorphic, SynthesisesAndMatchesGolden) {
  ObjectDesc a = up_counter(), b = down_counter(), c = saturating_counter();
  ObjectDesc poly = make_polymorphic("poly", {&a, &b, &c}, 0);
  for (auto policy : {osss::PolicyKind::Fifo, osss::PolicyKind::RoundRobin}) {
    SynthOptions opt{.clients = 3, .policy = policy};
    Netlist nl = synthesize(poly, opt);
    NetlistSim rtl(nl);
    GoldenCycleModel golden(poly, opt);
    sim::Xorshift rng(0xD15B + static_cast<std::uint64_t>(policy));
    std::vector<GoldenCycleModel::ClientIn> in(3);
    for (int cycle = 0; cycle < 400; ++cycle) {
      for (std::size_t cl = 0; cl < 3; ++cl) {
        if (!in[cl].req && rng.chance(2, 3)) {
          in[cl].req = true;
          in[cl].sel = rng.below(poly.methods().size());
          in[cl].args = rng.below(3);  // keep tags mostly in range
        }
        rtl.set_input(req_port(cl), in[cl].req);
        rtl.set_input(sel_port(cl), in[cl].sel);
        rtl.set_input(args_port(cl), in[cl].args);
      }
      rtl.set_input("rst", 0);
      rtl.settle();
      std::optional<std::size_t> rtl_grant;
      for (std::size_t cl = 0; cl < 3; ++cl) {
        if (rtl.get(grant_port(cl)) != 0) rtl_grant = cl;
      }
      auto g = golden.step(in);
      ASSERT_EQ(rtl_grant, g.granted) << "cycle " << cycle;
      rtl.clock_edge();
      for (std::size_t v = 0; v < poly.vars().size(); ++v) {
        ASSERT_EQ(rtl.get(var_port(poly, v)), golden.var(v))
            << poly.vars()[v].name << " cycle " << cycle;
      }
      if (g.granted) in[*g.granted].req = false;
    }
  }
}

TEST(Polymorphic, VerilogEmission) {
  ObjectDesc a = up_counter(), b = down_counter();
  ObjectDesc poly = make_polymorphic("poly", {&a, &b}, 0);
  Netlist nl = synthesize(poly, SynthOptions{.clients = 1});
  std::string v = emit_verilog(nl);
  EXPECT_NE(v.find("var___type"), std::string::npos);
  EXPECT_NE(v.find("var_up_count"), std::string::npos);
  EXPECT_NE(v.find("var_down_count"), std::string::npos);
}

TEST(Polymorphic, DispatchCostsGates) {
  // Ablation hook: the muxed dispatch must cost more logic than a single
  // monomorphic implementation but share one interface.
  ObjectDesc a = up_counter(), b = down_counter(), c = saturating_counter();
  ObjectDesc poly = make_polymorphic("poly", {&a, &b, &c}, 0);
  ResourceReport mono = report(synthesize(a, SynthOptions{.clients = 2}));
  ResourceReport rp = report(synthesize(poly, SynthOptions{.clients = 2}));
  EXPECT_GT(rp.flip_flops, mono.flip_flops);
  EXPECT_GT(rp.gate_estimate, mono.gate_estimate);
}

}  // namespace
}  // namespace hlcs::synth
