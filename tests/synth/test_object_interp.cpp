#include <gtest/gtest.h>

#include "hlcs/synth/interp.hpp"
#include "objects.hpp"

namespace hlcs::synth {
namespace {

TEST(ObjectDesc, BistableShape) {
  ObjectDesc d = testobj::bistable();
  EXPECT_EQ(d.name(), "bistable");
  EXPECT_EQ(d.vars().size(), 1u);
  EXPECT_EQ(d.methods().size(), 4u);
  EXPECT_EQ(d.method_index("set"), 0u);
  EXPECT_EQ(d.method_index("wait_high"), 3u);
  EXPECT_THROW(d.method_index("nope"), hlcs::Error);
  EXPECT_NO_THROW(d.validate());
}

TEST(ObjectDesc, PortWidths) {
  ObjectDesc d = testobj::mailbox();
  EXPECT_EQ(d.sel_width(), 2u);  // 3 methods
  EXPECT_EQ(d.args_width(), 16u);
  EXPECT_EQ(d.ret_width(), 16u);
  ObjectDesc b = testobj::bistable();
  EXPECT_EQ(b.sel_width(), 2u);  // 4 methods
  EXPECT_EQ(b.args_width(), 1u);  // no args -> min width 1
  EXPECT_EQ(b.ret_width(), 1u);
}

TEST(ObjectDescValidate, RejectsEmptyObject) {
  ObjectDesc d("empty");
  EXPECT_THROW(d.validate(), SynthesisError);
  d.add_var("x", 1, 0);
  EXPECT_THROW(d.validate(), SynthesisError) << "still no methods";
}

TEST(ObjectDescValidate, RejectsWideGuard) {
  ObjectDesc d("bad");
  auto x = d.add_var("x", 8, 0);
  d.add_method("m").guard(d.v(x)).assign(x, d.lit(0, 8));
  EXPECT_THROW(d.validate(), SynthesisError);
}

TEST(ObjectDescValidate, RejectsAssignWidthMismatch) {
  ObjectDesc d("bad");
  auto x = d.add_var("x", 8, 0);
  d.add_method("m").assign(x, d.lit(0, 4));
  EXPECT_THROW(d.validate(), SynthesisError);
}

TEST(ObjectDescValidate, RejectsDoubleAssign) {
  ObjectDesc d("bad");
  auto x = d.add_var("x", 8, 0);
  d.add_method("m").assign(x, d.lit(1, 8)).assign(x, d.lit(2, 8));
  EXPECT_THROW(d.validate(), SynthesisError);
}

TEST(ObjectDescValidate, RejectsRetWidthMismatch) {
  ObjectDesc d("bad");
  auto x = d.add_var("x", 8, 0);
  d.add_method("m").returns(d.v(x), 4);
  EXPECT_THROW(d.validate(), SynthesisError);
}

TEST(ObjectDescValidate, RejectsBadArgLeaf) {
  ObjectDesc d("bad");
  auto x = d.add_var("x", 8, 0);
  // References arg 0 but declares no args.
  d.add_method("m").assign(x, d.a(0, 8));
  EXPECT_THROW(d.validate(), SynthesisError);
}

TEST(ObjectInterp, BistableSemantics) {
  ObjectDesc d = testobj::bistable();
  ObjectInterp it(d);
  EXPECT_EQ(it.var(0), 0u);
  EXPECT_FALSE(it.guard_ok(d.method_index("wait_high")));
  it.invoke(d.method_index("set"));
  EXPECT_EQ(it.var(0), 1u);
  EXPECT_TRUE(it.guard_ok(d.method_index("wait_high")));
  EXPECT_EQ(it.invoke(d.method_index("get_state")), 1u);
  it.invoke(d.method_index("reset"));
  EXPECT_EQ(it.invoke(d.method_index("get_state")), 0u);
}

TEST(ObjectInterp, CounterWithArgs) {
  ObjectDesc d = testobj::counter();
  ObjectInterp it(d);
  const auto inc = d.method_index("inc");
  const auto dec = d.method_index("dec");
  const auto add = d.method_index("add");
  const auto read = d.method_index("read");
  it.invoke(inc);
  it.invoke(inc);
  EXPECT_EQ(it.invoke(read), 2u);
  it.invoke(add, {10});
  EXPECT_EQ(it.invoke(read), 12u);
  EXPECT_TRUE(it.guard_ok(dec));
  it.invoke(dec);
  EXPECT_EQ(it.invoke(read), 11u);
}

TEST(ObjectInterp, GuardBlocksDecAtZero) {
  ObjectDesc d = testobj::counter();
  ObjectInterp it(d);
  EXPECT_FALSE(it.guard_ok(d.method_index("dec")));
  it.invoke(d.method_index("inc"));
  EXPECT_TRUE(it.guard_ok(d.method_index("dec")));
}

TEST(ObjectInterp, CounterWrapsAt8Bits) {
  ObjectDesc d = testobj::counter();
  ObjectInterp it(d);
  it.invoke(d.method_index("add"), {0xFF});
  it.invoke(d.method_index("inc"));
  EXPECT_EQ(it.invoke(d.method_index("read")), 0u);
}

TEST(ObjectInterp, MailboxPutGet) {
  ObjectDesc d = testobj::mailbox();
  ObjectInterp it(d);
  const auto put = d.method_index("put");
  const auto get = d.method_index("get");
  EXPECT_TRUE(it.guard_ok(put));
  EXPECT_FALSE(it.guard_ok(get));
  it.invoke(put, {0xBEEF});
  EXPECT_FALSE(it.guard_ok(put)) << "mailbox full";
  EXPECT_TRUE(it.guard_ok(get));
  EXPECT_EQ(it.invoke(get), 0xBEEFu);
  EXPECT_TRUE(it.guard_ok(put));
  EXPECT_FALSE(it.guard_ok(get));
}

TEST(ObjectInterp, ParallelAssignmentSwap) {
  ObjectDesc d = testobj::swapper();
  ObjectInterp it(d);
  EXPECT_EQ(it.var(0), 0xABu);
  EXPECT_EQ(it.var(1), 0xCDu);
  it.invoke(d.method_index("swap"));
  EXPECT_EQ(it.var(0), 0xCDu) << "x gets the OLD y";
  EXPECT_EQ(it.var(1), 0xABu) << "y gets the OLD x";
  it.invoke(d.method_index("swap"));
  EXPECT_EQ(it.var(0), 0xABu);
}

TEST(ObjectInterp, ReturnUsesEntryState) {
  // get() on the mailbox clears full but returns the data that was there.
  ObjectDesc d = testobj::mailbox();
  ObjectInterp it(d);
  it.invoke(d.method_index("put"), {0x1234});
  const std::uint64_t got = it.invoke(d.method_index("get"));
  EXPECT_EQ(got, 0x1234u);
  EXPECT_EQ(it.var(0), 0u) << "full cleared after the call";
}

TEST(ObjectInterp, ResetRestoresInitialValues) {
  ObjectDesc d = testobj::swapper();
  ObjectInterp it(d);
  it.invoke(d.method_index("swap"));
  it.reset();
  EXPECT_EQ(it.var(0), 0xABu);
  EXPECT_EQ(it.var(1), 0xCDu);
}

TEST(ObjectInterp, WrongArgCountThrows) {
  ObjectDesc d = testobj::counter();
  ObjectInterp it(d);
  EXPECT_THROW(it.invoke(d.method_index("add"), {}), hlcs::Error);
  EXPECT_THROW(it.invoke(d.method_index("inc"), {1}), hlcs::Error);
}

}  // namespace
}  // namespace hlcs::synth
