// Example synthesisable objects shared by the synth tests and benches.
#pragma once

#include "hlcs/synth/object_desc.hpp"

namespace hlcs::synth::testobj {

/// The paper's Fig. 1 bistable: set / reset / get_state, plus a guarded
/// wait_high (eligible only when the state is 1).
inline ObjectDesc bistable() {
  ObjectDesc d("bistable");
  auto state = d.add_var("state", 1, 0);
  d.add_method("set").assign(state, d.lit(1, 1));
  d.add_method("reset").assign(state, d.lit(0, 1));
  d.add_method("get_state").returns(d.v(state), 1);
  d.add_method("wait_high").guard(d.v(state)).returns(d.v(state), 1);
  return d;
}

/// An 8-bit counter: inc, dec (guarded on count > 0), add(amount), read.
inline ObjectDesc counter() {
  ObjectDesc d("counter");
  auto count = d.add_var("count", 8, 0);
  auto& A = d.arena();
  d.add_method("inc").assign(count,
                             A.bin(ExprOp::Add, d.v(count), d.lit(1, 8)));
  d.add_method("dec")
      .guard(A.bin(ExprOp::Gt, d.v(count), d.lit(0, 8)))
      .assign(count, A.bin(ExprOp::Sub, d.v(count), d.lit(1, 8)));
  d.add_method("add").arg("amount", 8).assign(
      count, A.bin(ExprOp::Add, d.v(count), d.a(0, 8)));
  d.add_method("read").returns(d.v(count), 8);
  return d;
}

/// A one-slot mailbox: put(d) guarded on !full, get guarded on full.
/// This is the shape of the bus-interface command channel.
inline ObjectDesc mailbox() {
  ObjectDesc d("mailbox");
  auto full = d.add_var("full", 1, 0);
  auto data = d.add_var("data", 16, 0);
  auto& A = d.arena();
  d.add_method("put")
      .arg("d", 16)
      .guard(A.un(ExprOp::Not, d.v(full)))
      .assign(full, d.lit(1, 1))
      .assign(data, d.a(0, 16));
  d.add_method("get")
      .guard(d.v(full))
      .assign(full, d.lit(0, 1))
      .returns(d.v(data), 16);
  d.add_method("peek_full").returns(d.v(full), 1);
  return d;
}

/// Two variables swapped in one call -- exercises parallel assignment.
inline ObjectDesc swapper() {
  ObjectDesc d("swapper");
  auto x = d.add_var("x", 8, 0xAB);
  auto y = d.add_var("y", 8, 0xCD);
  d.add_method("swap").assign(x, d.v(y)).assign(y, d.v(x));
  d.add_method("read_x").returns(d.v(x), 8);
  d.add_method("read_y").returns(d.v(y), 8);
  return d;
}

}  // namespace hlcs::synth::testobj
