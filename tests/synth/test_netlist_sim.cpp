#include <gtest/gtest.h>

#include "hlcs/sim/clock.hpp"
#include "hlcs/synth/netlist.hpp"
#include "hlcs/synth/rtl_sim.hpp"

namespace hlcs::synth {
namespace {

using namespace hlcs::sim::literals;

/// An 8-bit counter with enable: q <= rst ? 0 : (en ? q+1 : q).
Netlist make_counter_netlist() {
  Netlist nl("counter8");
  NetId rst = nl.add_net("rst", 1);
  NetId en = nl.add_net("en", 1);
  NetId q = nl.add_net("q", 8);
  NetId d = nl.add_net("d", 8);
  nl.mark_input(rst);
  nl.mark_input(en);
  nl.mark_output(q);
  nl.add_reg(q, d, 0);
  auto& A = nl.arena();
  ExprId inc = A.bin(ExprOp::Add, nl.net_ref(q), A.cst(1, 8));
  ExprId held = A.mux(nl.net_ref(en), inc, nl.net_ref(q));
  nl.add_comb(d, A.mux(nl.net_ref(rst), A.cst(0, 8), held));
  return nl;
}

TEST(Netlist, ValidatesCleanDesign) {
  Netlist nl = make_counter_netlist();
  EXPECT_NO_THROW(nl.validate_and_order());
}

TEST(Netlist, DetectsUndrivenNet) {
  Netlist nl("bad");
  nl.add_net("floating", 4);
  EXPECT_THROW(nl.validate_and_order(), SynthesisError);
}

TEST(Netlist, DetectsMultipleDrivers) {
  Netlist nl("bad");
  NetId a = nl.add_net("a", 1);
  nl.mark_input(a);
  nl.add_comb(a, nl.arena().cst(0, 1));
  EXPECT_THROW(nl.validate_and_order(), SynthesisError);
}

TEST(Netlist, DetectsCombinationalCycle) {
  Netlist nl("bad");
  NetId a = nl.add_net("a", 1);
  NetId b = nl.add_net("b", 1);
  nl.add_comb(a, nl.arena().un(ExprOp::Not, nl.net_ref(b)));
  nl.add_comb(b, nl.arena().un(ExprOp::Not, nl.net_ref(a)));
  EXPECT_THROW(nl.validate_and_order(), SynthesisError);
}

TEST(Netlist, RegisterBreaksCycle) {
  // a = ~q; q <= a  is fine: the register breaks the loop.
  Netlist nl("toggler");
  NetId a = nl.add_net("a", 1);
  NetId q = nl.add_net("q", 1);
  nl.mark_output(q);
  nl.add_comb(a, nl.arena().un(ExprOp::Not, nl.net_ref(q)));
  nl.add_reg(q, a, 0);
  EXPECT_NO_THROW(nl.validate_and_order());
  NetlistSim s(nl);
  EXPECT_EQ(s.get(q), 0u);
  s.clock_edge();
  EXPECT_EQ(s.get(q), 1u);
  s.clock_edge();
  EXPECT_EQ(s.get(q), 0u);
}

TEST(Netlist, TopoOrderIsDependencyOrder) {
  // c depends on b depends on a (added in reverse order).
  Netlist nl("chain");
  NetId in = nl.add_net("in", 4);
  nl.mark_input(in);
  NetId a = nl.add_net("a", 4);
  NetId b = nl.add_net("b", 4);
  NetId c = nl.add_net("c", 4);
  nl.mark_output(c);
  auto& A = nl.arena();
  nl.add_comb(c, A.bin(ExprOp::Add, nl.net_ref(b), A.cst(1, 4)));  // idx 0
  nl.add_comb(b, A.bin(ExprOp::Add, nl.net_ref(a), A.cst(1, 4)));  // idx 1
  nl.add_comb(a, A.bin(ExprOp::Add, nl.net_ref(in), A.cst(1, 4))); // idx 2
  auto order = nl.validate_and_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 0u);
  NetlistSim s(nl);
  s.set_input("in", 5);
  s.settle();
  EXPECT_EQ(s.get("c"), 8u);
}

TEST(Netlist, FindByName) {
  Netlist nl = make_counter_netlist();
  EXPECT_EQ(nl.nets()[nl.find("q")].width, 8u);
  EXPECT_THROW(nl.find("nonexistent"), hlcs::Error);
}

TEST(NetlistSim, CounterCountsWithEnable) {
  Netlist nl = make_counter_netlist();
  NetlistSim s(nl);
  s.set_input("rst", 0);
  s.set_input("en", 1);
  for (int i = 0; i < 5; ++i) s.clock_edge();
  EXPECT_EQ(s.get("q"), 5u);
  s.set_input("en", 0);
  for (int i = 0; i < 3; ++i) s.clock_edge();
  EXPECT_EQ(s.get("q"), 5u) << "disabled counter holds";
  s.set_input("rst", 1);
  s.clock_edge();
  EXPECT_EQ(s.get("q"), 0u);
}

TEST(NetlistSim, ResetStateRestoresInit) {
  Netlist nl = make_counter_netlist();
  NetlistSim s(nl);
  s.set_input("rst", 0);
  s.set_input("en", 1);
  s.clock_edge();
  s.clock_edge();
  EXPECT_EQ(s.get("q"), 2u);
  s.reset_state();
  EXPECT_EQ(s.get("q"), 0u);
}

TEST(NetlistSim, InputsMaskedToWidth) {
  Netlist nl = make_counter_netlist();
  NetlistSim s(nl);
  s.set_input("en", 0xFF);  // masked to 1 bit
  s.set_input("rst", 0);
  s.clock_edge();
  EXPECT_EQ(s.get("q"), 1u);
}

TEST(NetlistSim, CounterWrapsAtWidth) {
  Netlist nl = make_counter_netlist();
  NetlistSim s(nl);
  s.set_input("rst", 0);
  s.set_input("en", 1);
  for (int i = 0; i < 256; ++i) s.clock_edge();
  EXPECT_EQ(s.get("q"), 0u);
}

TEST(RtlModule, CountsOnKernelClock) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  Netlist nl = make_counter_netlist();
  RtlModule rtl(k, "dut", nl, clk);
  rtl.in("rst").write(0);
  rtl.in("en").write(1);
  k.run_for(105_ns);  // edges at 5,15,...,95,105 -> 11 edges
  EXPECT_EQ(rtl.edges(), 11u);
  EXPECT_EQ(rtl.out("q").read(), 11u);
}

TEST(RtlModule, EnableControlsCounting) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  Netlist nl = make_counter_netlist();
  RtlModule rtl(k, "dut", nl, clk);
  rtl.in("rst").write(0);
  rtl.in("en").write(1);
  k.spawn("ctrl", [&]() -> sim::Task {
    co_await k.wait(52_ns);  // after 5 edges
    rtl.in("en").write(0);
  });
  k.run_for(200_ns);
  // Enable change commits at 52ns; edge at 55ns samples en=0.
  EXPECT_EQ(rtl.out("q").read(), 5u);
}

TEST(RtlModule, UnknownPinThrows) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  Netlist nl = make_counter_netlist();
  RtlModule rtl(k, "dut", nl, clk);
  EXPECT_THROW(rtl.in("bogus"), hlcs::Error);
  EXPECT_THROW(rtl.out("bogus"), hlcs::Error);
}

TEST(RtlModule, PinEnumerationIsSorted) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  Netlist nl = make_counter_netlist();
  RtlModule rtl(k, "dut", nl, clk);
  const std::vector<std::string> ins = rtl.input_pins();
  EXPECT_EQ(ins, (std::vector<std::string>{"en", "rst"}));
  const std::vector<std::string> outs = rtl.output_pins();
  EXPECT_EQ(outs, (std::vector<std::string>{"q"}));
}

TEST(Netlist, RejectsDuplicateNetName) {
  Netlist nl("dup");
  nl.add_net("x", 4);
  EXPECT_THROW(nl.add_net("x", 8), SynthesisError);
}

TEST(NetlistSim, StatsCountEdgesAndRegisterChanges) {
  Netlist nl = make_counter_netlist();
  NetlistSim s(nl);
  s.reset_stats();
  s.set_input("rst", 0);
  s.set_input("en", 1);
  for (int i = 0; i < 4; ++i) s.clock_edge();
  const NetlistStats& st = s.stats();
  EXPECT_EQ(st.edges, 4u);
  EXPECT_EQ(st.reg_changes, 4u);  // q changes every edge while counting
  EXPECT_EQ(st.input_changes, 1u);  // rst was already 0, only en changed
  s.set_input("en", 0);
  s.clock_edge();
  s.clock_edge();
  EXPECT_EQ(s.stats().reg_changes, 4u) << "disabled counter latched anyway";
}

}  // namespace
}  // namespace hlcs::synth
