// The equivalence-check service and Verilog testbench emission.
#include <gtest/gtest.h>

#include "hlcs/synth/equiv.hpp"
#include "hlcs/synth/poly.hpp"
#include "objects.hpp"

namespace hlcs::synth {
namespace {

TEST(Equivalence, AllTestObjectsPass) {
  for (int which = 0; which < 4; ++which) {
    ObjectDesc d = which == 0   ? testobj::bistable()
                   : which == 1 ? testobj::counter()
                   : which == 2 ? testobj::mailbox()
                                : testobj::swapper();
    EquivResult r = check_equivalence(
        d, SynthOptions{.clients = 3},
        EquivOptions{.cycles = 300, .seed = 0xAB + static_cast<std::uint64_t>(which)});
    EXPECT_TRUE(r) << d.name() << ": " << r.first_mismatch;
    EXPECT_EQ(r.cycles, 300u);
    EXPECT_GT(r.grants, 50u) << d.name() << " made too little progress";
    EXPECT_EQ(r.vectors.size(), 300u);
  }
}

TEST(Equivalence, WithResetPulses) {
  ObjectDesc d = testobj::counter();
  EquivResult r = check_equivalence(
      d, SynthOptions{.clients = 2},
      EquivOptions{.cycles = 400, .seed = 9, .reset_percent = 5});
  EXPECT_TRUE(r) << r.first_mismatch;
  bool any_reset = false;
  for (const auto& v : r.vectors) any_reset |= v.rst;
  EXPECT_TRUE(any_reset) << "reset path was not exercised";
}

TEST(Equivalence, AllPoliciesAllClientCounts) {
  ObjectDesc d = testobj::mailbox();
  for (auto policy : {osss::PolicyKind::Fifo, osss::PolicyKind::RoundRobin,
                      osss::PolicyKind::StaticPriority,
                      osss::PolicyKind::Random, osss::PolicyKind::Adaptive}) {
    for (std::size_t clients : {1u, 3u, 7u}) {
      EquivResult r = check_equivalence(
          d, SynthOptions{.clients = clients, .policy = policy},
          EquivOptions{.cycles = 200});
      EXPECT_TRUE(r) << osss::policy_name(policy) << "/" << clients << ": "
                     << r.first_mismatch;
    }
  }
}

// Tight adaptive tuning so 400 random cycles exercise every arbiter
// regime -- aged-lane overrides, hot/cold mode flips at each 4-step
// window boundary -- not just the cold path the defaults would give.
TEST(Equivalence, AdaptiveTightTuningExercisesAgedLane) {
  ObjectDesc d = testobj::mailbox();
  for (std::size_t clients : {2u, 5u}) {
    EquivResult r = check_equivalence(
        d,
        SynthOptions{.clients = clients, .policy = osss::PolicyKind::Adaptive,
                     .adaptive_starve_bound = 4, .adaptive_window_log2 = 2,
                     .adaptive_hot_threshold = 2},
        EquivOptions{.cycles = 400, .seed = 0xADA7, .reset_percent = 3});
    EXPECT_TRUE(r) << "adaptive/" << clients << ": " << r.first_mismatch;
    EXPECT_GT(r.grants, 100u);
  }
}

TEST(Equivalence, PolymorphicObjectPasses) {
  ObjectDesc a("up");
  {
    auto c = a.add_var("count", 8, 0);
    a.add_method("step").assign(c,
                                a.arena().bin(ExprOp::Add, a.v(c), a.lit(1, 8)));
    a.add_method("read").returns(a.v(c), 8);
  }
  ObjectDesc b("down");
  {
    auto c = b.add_var("count", 8, 50);
    b.add_method("step").assign(c,
                                b.arena().bin(ExprOp::Sub, b.v(c), b.lit(1, 8)));
    b.add_method("read").returns(b.v(c), 8);
  }
  ObjectDesc poly = make_polymorphic("poly", {&a, &b}, 0);
  EquivResult r = check_equivalence(poly, SynthOptions{.clients = 2},
                                    EquivOptions{.cycles = 500, .seed = 3});
  EXPECT_TRUE(r) << r.first_mismatch;
}

TEST(Equivalence, VectorsRecordGrantsAndState) {
  ObjectDesc d = testobj::counter();
  EquivResult r = check_equivalence(d, SynthOptions{.clients = 1},
                                    EquivOptions{.cycles = 50, .seed = 1});
  ASSERT_TRUE(r) << r.first_mismatch;
  std::size_t grant_count = 0;
  for (const auto& v : r.vectors) {
    ASSERT_EQ(v.in.size(), 1u);
    ASSERT_EQ(v.vars.size(), d.vars().size());
    if (v.grant[0]) ++grant_count;
  }
  EXPECT_EQ(grant_count, r.grants);
}

TEST(VerilogTestbench, EmitsSelfCheckingBench) {
  ObjectDesc d = testobj::mailbox();
  SynthOptions opt{.clients = 2};
  Netlist nl = synthesize(d, opt);
  EquivResult r =
      check_equivalence(d, opt, EquivOptions{.cycles = 20, .seed = 7});
  ASSERT_TRUE(r);
  std::string tb = emit_verilog_testbench(nl, r.vectors);
  EXPECT_NE(tb.find("module mailbox_rtl_tb;"), std::string::npos);
  EXPECT_NE(tb.find("mailbox_rtl dut ("), std::string::npos);
  EXPECT_NE(tb.find("always #5 clk = ~clk;"), std::string::npos);
  EXPECT_NE(tb.find("$fatal"), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  // One check line per client per vector.
  std::size_t checks = 0, pos = 0;
  while ((pos = tb.find("check(", pos)) != std::string::npos) {
    ++checks;
    pos += 6;
  }
  EXPECT_EQ(checks, 1u + 20u * 2u) << "task definition + per-vector checks";
}

TEST(VerilogTestbench, EmptyVectorsThrow) {
  ObjectDesc d = testobj::counter();
  Netlist nl = synthesize(d, SynthOptions{.clients = 1});
  EXPECT_THROW(emit_verilog_testbench(nl, {}), hlcs::Error);
}

}  // namespace
}  // namespace hlcs::synth
