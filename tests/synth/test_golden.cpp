// GoldenCycleModel unit tests: the reference arbiter semantics that the
// synthesised hardware is held to (tie-breaks, counters, LFSR, reset).
#include <gtest/gtest.h>

#include "hlcs/synth/golden.hpp"
#include "objects.hpp"

namespace hlcs::synth {
namespace {

using ClientIn = GoldenCycleModel::ClientIn;

std::vector<ClientIn> all_requesting(std::size_t n, std::uint64_t sel) {
  std::vector<ClientIn> in(n);
  for (auto& c : in) {
    c.req = true;
    c.sel = sel;
  }
  return in;
}

TEST(Golden, NoRequestsNoGrant) {
  ObjectDesc d = testobj::counter();
  GoldenCycleModel g(d, SynthOptions{.clients = 2});
  auto r = g.step(std::vector<ClientIn>(2));
  EXPECT_FALSE(r.granted.has_value());
}

TEST(Golden, InvalidSelectorNeverEligible) {
  ObjectDesc d = testobj::counter();  // 4 methods
  GoldenCycleModel g(d, SynthOptions{.clients = 1});
  auto in = all_requesting(1, 7);  // out of range
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(g.step(in).granted.has_value());
  }
}

TEST(Golden, StaticPriorityDefaultFavoursClientZero) {
  ObjectDesc d = testobj::counter();
  GoldenCycleModel g(
      d, SynthOptions{.clients = 3,
                      .policy = osss::PolicyKind::StaticPriority});
  auto in = all_requesting(3, d.method_index("inc"));
  EXPECT_EQ(g.step(in).granted, std::optional<std::size_t>(0));
  EXPECT_EQ(g.step(in).granted, std::optional<std::size_t>(0))
      << "client 0 keeps winning while it requests";
}

TEST(Golden, RoundRobinWrapsPastHighestIndex) {
  ObjectDesc d = testobj::counter();
  GoldenCycleModel g(d, SynthOptions{.clients = 3,
                                     .policy = osss::PolicyKind::RoundRobin});
  auto in = all_requesting(3, d.method_index("inc"));
  EXPECT_EQ(*g.step(in).granted, 0u);
  EXPECT_EQ(*g.step(in).granted, 1u);
  EXPECT_EQ(*g.step(in).granted, 2u);
  EXPECT_EQ(*g.step(in).granted, 0u) << "wrap";
  // Drop client 1: rotation skips it.
  in[1].req = false;
  EXPECT_EQ(*g.step(in).granted, 2u);
  EXPECT_EQ(*g.step(in).granted, 0u);
}

TEST(Golden, FifoPrefersLongestWaiter) {
  ObjectDesc d = testobj::counter();
  GoldenCycleModel g(d, SynthOptions{.clients = 2,
                                     .policy = osss::PolicyKind::Fifo});
  // Client 1 waits on a blocked method (dec with count 0) for 3 cycles.
  std::vector<ClientIn> in(2);
  in[1] = {true, d.method_index("dec"), 0};
  for (int i = 0; i < 3; ++i) g.step(in);
  // Client 0 arrives wanting inc; inc is eligible and granted (dec is
  // not eligible yet).
  in[0] = {true, d.method_index("inc"), 0};
  EXPECT_EQ(*g.step(in).granted, 0u);
  in[0].req = false;
  // Now count>0: dec eligible, client 1 has aged -> granted.
  EXPECT_EQ(*g.step(in).granted, 1u);
}

TEST(Golden, FifoAgeTieBreaksToLowerIndex) {
  ObjectDesc d = testobj::counter();
  GoldenCycleModel g(d, SynthOptions{.clients = 3,
                                     .policy = osss::PolicyKind::Fifo});
  auto in = all_requesting(3, d.method_index("inc"));
  EXPECT_EQ(*g.step(in).granted, 0u) << "equal ages: lowest index";
}

TEST(Golden, RandomPolicyIsDeterministicPerSeed) {
  ObjectDesc d = testobj::counter();
  SynthOptions opt{.clients = 4, .policy = osss::PolicyKind::Random,
                   .lfsr_seed = 0x1234};
  GoldenCycleModel g1(d, opt), g2(d, opt);
  auto in = all_requesting(4, d.method_index("inc"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(g1.step(in).granted, g2.step(in).granted) << "cycle " << i;
  }
}

TEST(Golden, RandomPolicyDiffersAcrossSeeds) {
  ObjectDesc d = testobj::counter();
  GoldenCycleModel g1(
      d, SynthOptions{.clients = 4, .policy = osss::PolicyKind::Random,
                      .lfsr_seed = 0x1111});
  GoldenCycleModel g2(
      d, SynthOptions{.clients = 4, .policy = osss::PolicyKind::Random,
                      .lfsr_seed = 0x2222});
  auto in = all_requesting(4, d.method_index("inc"));
  int diffs = 0;
  for (int i = 0; i < 50; ++i) {
    if (g1.step(in).granted != g2.step(in).granted) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(Golden, ReturnValueFromEntryState) {
  ObjectDesc d = testobj::mailbox();
  GoldenCycleModel g(d, SynthOptions{.clients = 1});
  std::vector<ClientIn> in(1);
  in[0] = {true, d.method_index("put"),
           pack_args(d.methods()[d.method_index("put")], {0x7777})};
  g.step(in);
  in[0] = {true, d.method_index("get"), 0};
  auto r = g.step(in);
  ASSERT_TRUE(r.granted.has_value());
  EXPECT_EQ(r.ret, 0x7777u);
  EXPECT_EQ(g.var(0), 0u) << "full cleared after get";
}

TEST(Golden, ResetRestoresStateAndArbiter) {
  ObjectDesc d = testobj::counter();
  GoldenCycleModel g(d, SynthOptions{.clients = 2,
                                     .policy = osss::PolicyKind::RoundRobin});
  auto in = all_requesting(2, d.method_index("inc"));
  g.step(in);
  g.step(in);
  EXPECT_EQ(g.var(0), 2u);
  auto r = g.step(in, /*rst=*/true);
  EXPECT_FALSE(r.granted.has_value()) << "no grant during reset";
  EXPECT_EQ(g.var(0), 0u);
  // Round-robin pointer reset: client 0 wins next.
  EXPECT_EQ(*g.step(in).granted, 0u);
}

TEST(Golden, MismatchedClientCountThrows) {
  ObjectDesc d = testobj::counter();
  GoldenCycleModel g(d, SynthOptions{.clients = 2});
  EXPECT_THROW(g.step(std::vector<ClientIn>(3)), hlcs::Error);
}

TEST(Golden, BadPrioritiesSizeThrows) {
  ObjectDesc d = testobj::counter();
  SynthOptions opt{.clients = 3, .priorities = {1, 2}};
  EXPECT_THROW(GoldenCycleModel(d, opt), hlcs::Error);
}

}  // namespace
}  // namespace hlcs::synth
