// Synthesis fuzzing: randomly generated synthesisable objects (random
// state variables, random guarded methods built from random expression
// trees) must survive the complete flow -- validation, synthesis,
// netlist checks, and lock-step equivalence against the interpreter.
// Every seed is deterministic, so a failure here is a reproducible
// counterexample against the synthesiser.
#include <gtest/gtest.h>

#include "hlcs/sim/random.hpp"
#include "hlcs/synth/equiv.hpp"

namespace hlcs::synth {
namespace {

/// Build a random expression over `vars` (widths given) and the args of
/// the method under construction.
ExprId random_expr(ObjectDesc& d, sim::Xorshift& rng,
                   const std::vector<std::pair<std::uint32_t, unsigned>>& vars,
                   const std::vector<ArgDesc>& args, unsigned want_width,
                   int depth) {
  auto& A = d.arena();
  // Leaves.
  if (depth <= 0 || rng.chance(1, 4)) {
    switch (rng.below(3)) {
      case 0:
        return A.cst(rng.next(), want_width);
      case 1: {
        // A variable, width-adjusted.
        auto [idx, w] = vars[rng.below(vars.size())];
        ExprId v = A.var(idx, w);
        if (w == want_width) return v;
        if (w > want_width) return A.slice(v, 0, want_width);
        return A.zext(v, want_width);
      }
      default: {
        if (args.empty()) return A.cst(rng.next(), want_width);
        const std::uint32_t ai =
            static_cast<std::uint32_t>(rng.below(args.size()));
        ExprId a = A.arg(ai, args[ai].width);
        if (args[ai].width == want_width) return a;
        if (args[ai].width > want_width) return A.slice(a, 0, want_width);
        return A.zext(a, want_width);
      }
    }
  }
  // Operators.
  switch (rng.below(8)) {
    case 0:
      return A.bin(ExprOp::Add,
                   random_expr(d, rng, vars, args, want_width, depth - 1),
                   random_expr(d, rng, vars, args, want_width, depth - 1));
    case 1:
      return A.bin(ExprOp::Sub,
                   random_expr(d, rng, vars, args, want_width, depth - 1),
                   random_expr(d, rng, vars, args, want_width, depth - 1));
    case 2:
      return A.bin(ExprOp::Xor,
                   random_expr(d, rng, vars, args, want_width, depth - 1),
                   random_expr(d, rng, vars, args, want_width, depth - 1));
    case 3:
      return A.bin(ExprOp::And,
                   random_expr(d, rng, vars, args, want_width, depth - 1),
                   random_expr(d, rng, vars, args, want_width, depth - 1));
    case 4:
      return A.un(ExprOp::Not,
                  random_expr(d, rng, vars, args, want_width, depth - 1));
    case 5: {
      ExprId sel = A.bin(ExprOp::Eq,
                         random_expr(d, rng, vars, args, 4, depth - 1),
                         random_expr(d, rng, vars, args, 4, depth - 1));
      return A.mux(sel, random_expr(d, rng, vars, args, want_width, depth - 1),
                   random_expr(d, rng, vars, args, want_width, depth - 1));
    }
    case 6: {
      // Comparison zero-extended to the wanted width.
      ExprId c = A.bin(ExprOp::Lt,
                       random_expr(d, rng, vars, args, 8, depth - 1),
                       random_expr(d, rng, vars, args, 8, depth - 1));
      return want_width == 1 ? c : A.zext(c, want_width);
    }
    default:
      return A.bin(ExprOp::Or,
                   random_expr(d, rng, vars, args, want_width, depth - 1),
                   random_expr(d, rng, vars, args, want_width, depth - 1));
  }
}

ObjectDesc random_object(std::uint64_t seed) {
  sim::Xorshift rng(seed);
  ObjectDesc d("fuzz_" + std::to_string(seed));
  const std::size_t n_vars = 1 + rng.below(4);
  std::vector<std::pair<std::uint32_t, unsigned>> vars;
  for (std::size_t v = 0; v < n_vars; ++v) {
    static const unsigned widths[] = {1, 4, 8, 16, 32};
    const unsigned w = widths[rng.below(5)];
    vars.emplace_back(d.add_var("v" + std::to_string(v), w, rng.next()), w);
  }
  const std::size_t n_methods = 1 + rng.below(5);
  for (std::size_t m = 0; m < n_methods; ++m) {
    auto b = d.add_method("m" + std::to_string(m));
    std::vector<ArgDesc> args;
    const std::size_t n_args = rng.below(3);
    for (std::size_t a = 0; a < n_args; ++a) {
      static const unsigned widths[] = {1, 8, 16};
      const unsigned w = widths[rng.below(3)];
      b.arg("a" + std::to_string(a), w);
      args.push_back(ArgDesc{"a" + std::to_string(a), w});
    }
    // Guards must not be uniformly false or the object deadlocks; bias
    // toward "some variable bit" style guards half the time, none the
    // other half.
    if (rng.chance(1, 2)) {
      auto [idx, w] = vars[rng.below(vars.size())];
      ExprId v = d.arena().var(idx, w);
      ExprId bit = w == 1 ? v : d.arena().slice(v, 0, 1);
      if (rng.chance(1, 2)) bit = d.arena().un(ExprOp::Not, bit);
      b.guard(bit);
    }
    // Assign a random subset of variables.
    for (std::size_t v = 0; v < n_vars; ++v) {
      if (!rng.chance(1, 2)) continue;
      b.assign(vars[v].first,
               random_expr(d, rng, vars, args, vars[v].second, 3));
    }
    if (rng.chance(1, 2)) {
      const unsigned rw = vars[rng.below(vars.size())].second;
      b.returns(random_expr(d, rng, vars, args, rw, 3), rw);
    }
  }
  return d;
}

class SynthFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthFuzz, RandomObjectSurvivesFullFlow) {
  const std::uint64_t seed = GetParam();
  ObjectDesc d = random_object(seed);
  ASSERT_NO_THROW(d.validate()) << "generator produced invalid object";
  for (auto policy : {osss::PolicyKind::StaticPriority,
                      osss::PolicyKind::Fifo, osss::PolicyKind::Adaptive}) {
    // Four independently seeded stimulus lanes on the batch engine: 4x
    // the coverage per seed, and fuzz objects are arithmetic-heavy so
    // this also soaks the scalar-fallback path.  A failure names the
    // lane's derived seed -- reproducible standalone by feeding it back
    // as the root seed of a single-lane run.
    EquivResult r = check_equivalence(
        d, SynthOptions{.clients = 2, .policy = policy},
        EquivOptions{.cycles = 300, .seed = seed ^ 0xF00D,
                     .reset_percent = 3, .lanes = 4, .batch = true});
    EXPECT_TRUE(r) << "seed " << seed << " policy "
                   << osss::policy_name(policy) << ": " << r.first_mismatch
                   << " [replay: seed 0x" << std::hex << r.first_bad_seed
                   << ", lanes=1]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(SynthFuzzBatch, BatchAndScalarBackendsAgreeOnFuzzObjects) {
  // Same objects, both backends, full-result identity: the batch
  // engine's scalar fallback (Add/Sub/Mul/compare combs) must not leak
  // any difference into verdicts, grants or recorded vectors.
  for (std::uint64_t seed : {3u, 11u, 19u}) {
    ObjectDesc d = random_object(seed);
    const SynthOptions opt{.clients = 2, .policy = osss::PolicyKind::Fifo};
    EquivOptions scalar{.cycles = 200, .seed = seed * 0xABC, .reset_percent = 3,
                        .lanes = 8};
    EquivOptions batch = scalar;
    batch.batch = true;
    const EquivResult rs = check_equivalence(d, opt, scalar);
    const EquivResult rb = check_equivalence(d, opt, batch);
    EXPECT_EQ(rs.equal, rb.equal) << "seed " << seed;
    EXPECT_EQ(rs.grants, rb.grants) << "seed " << seed;
    EXPECT_EQ(rs.cycles, rb.cycles) << "seed " << seed;
    EXPECT_EQ(rs.first_mismatch, rb.first_mismatch) << "seed " << seed;
    EXPECT_EQ(rs.vectors.size(), rb.vectors.size()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hlcs::synth
