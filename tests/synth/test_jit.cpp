// Native tape JIT: bit-identity against the interpreter, everywhere.
//
// The contract is the same absolute one the batch engine carries: a
// simulation whose combs run as native code must be indistinguishable,
// net for net and cycle for cycle, from the interpreted tape -- across
// random netlists (including Mul and data-dependent shifts, which deopt
// per comb), every scalar settle mode, every superlane factor
// K in {1, 4, 8}, the shipped CLI objects, the lowered monitor
// automata, reset pulses, and any worker thread count.  On hosts where
// host_supported() is false (non-x86-64, or HLCS_JIT=OFF builds) the
// JIT request is a silent no-op and these suites degenerate into
// interpreter-vs-interpreter checks that must still pass.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hlcs/check/object_rules.hpp"
#include "hlcs/check/pci_rules.hpp"
#include "hlcs/sim/random.hpp"
#include "hlcs/synth/batch_tape.hpp"
#include "hlcs/synth/equiv.hpp"
#include "hlcs/synth/jit.hpp"
#include "hlcs/synth/parser.hpp"
#include "hlcs/synth/poly.hpp"
#include "hlcs/synth/rtl_sim.hpp"
#include "netlist_gen.hpp"
#include "objects.hpp"

namespace hlcs::synth {
namespace {

// ---------------------------------------------------------------------
// Scalar JIT vs the interpreted settle modes
// ---------------------------------------------------------------------

/// Drive a SettleMode::Jit sim and an interpreted reference in lock
/// step with identical stimulus and require bit identity on every net
/// after every settle and edge.
void drive_scalar_lockstep(const Netlist& nl, std::uint64_t seed, int edges,
                           SettleMode ref_mode) {
  NetlistSim jit(nl, SettleMode::Jit);
  NetlistSim ref(nl, ref_mode);
  sim::Xorshift rng(seed);
  const std::vector<NetId>& ins = nl.inputs();

  auto expect_identical = [&](int edge, const char* phase) {
    for (NetId n = 0; n < nl.nets().size(); ++n) {
      ASSERT_EQ(jit.get(n), ref.get(n))
          << "net '" << nl.nets()[n].name << "' (" << phase << ", edge "
          << edge << ", ref " << to_string(ref_mode) << ")";
    }
  };

  for (int e = 0; e < edges; ++e) {
    for (NetId in : ins) {
      if (rng.chance(1, 4)) continue;
      const std::uint64_t v =
          rng.chance(1, 4) ? ref.get(in) : rng.next();
      jit.set_input(in, v);
      ref.set_input(in, v);
    }
    if ((e & 3) == 0) {
      jit.settle();
      ref.settle();
      expect_identical(e, "settle");
    }
    jit.clock_edge();
    ref.clock_edge();
    expect_identical(e, "edge");
  }
}

TEST(TapeJitScalar, RandomNetlistsMatchEverySettleMode) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("netlist seed " + std::to_string(seed));
    Netlist nl = make_random_netlist(seed * 0x117C0DE + 3);
    for (SettleMode mode : {SettleMode::Incremental, SettleMode::FullTape,
                            SettleMode::TreeWalk}) {
      SCOPED_TRACE(to_string(mode));
      drive_scalar_lockstep(nl, seed * 0x2F00D, 24, mode);
    }
  }
}

TEST(TapeJitScalar, RegistersResetAndLatchIdentically) {
  // Register-heavy synthesized object: init values, feedback, and the
  // two-phase latch must behave identically through reset_state().
  const ObjectDesc d = testobj::counter();
  SynthOptions opt;
  opt.clients = 3;
  const Netlist nl = synthesize(d, opt);
  NetlistSim jit(nl, SettleMode::Jit);
  NetlistSim ref(nl, SettleMode::FullTape);
  for (NetId n = 0; n < nl.nets().size(); ++n) {
    ASSERT_EQ(jit.get(n), ref.get(n)) << "after construction, net " << n;
  }
  jit.reset_state();
  ref.reset_state();
  for (NetId n = 0; n < nl.nets().size(); ++n) {
    ASSERT_EQ(jit.get(n), ref.get(n)) << "after reset_state, net " << n;
  }
  drive_scalar_lockstep(nl, 0xC0117E4, 40, SettleMode::Incremental);
}

TEST(TapeJitScalar, StatsReportCompilationAndDeopts) {
  if (!TapeJit::host_supported()) GTEST_SKIP() << "no JIT on this host";
  // The generator's op mix includes Mul/Shl/Shr, so across a handful of
  // seeds we must observe both native combs and per-opcode deopts, and
  // the counters must be consistent with the tape.
  bool saw_deopt = false, saw_native = false;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Netlist nl = make_random_netlist(seed * 0xDE0B7 + 1);
    NetlistSim sim(nl, SettleMode::Jit);
    const JitStats* js = sim.jit_stats();
    if (js == nullptr) continue;  // nothing compilable in this netlist
    EXPECT_TRUE(js->enabled);
    EXPECT_GT(js->compile_ns, 0u);
    EXPECT_GT(js->code_bytes, 0u);
    EXPECT_GT(js->stencils, 0u);
    EXPECT_EQ(js->combs_native + js->combs_deopt,
              sim.tape().combs().size());
    std::uint64_t attributed = 0;
    for (const auto& [name, hits] : js->deopt_hits()) {
      EXPECT_FALSE(name.empty());
      attributed += hits;
    }
    EXPECT_EQ(attributed, js->combs_deopt);
    if (js->combs_native > 0) saw_native = true;
    if (js->combs_deopt > 0) {
      saw_deopt = true;
      // Run a few edges: deopted combs are interpreted and counted.
      sim::Xorshift rng(seed);
      for (int e = 0; e < 4; ++e) {
        for (NetId in : nl.inputs()) sim.set_input(in, rng.next());
        sim.clock_edge();
      }
      EXPECT_GT(sim.jit_stats()->deopt_comb_evals, 0u);
    }
  }
  EXPECT_TRUE(saw_native);
  EXPECT_TRUE(saw_deopt);
}

TEST(TapeJitScalar, CrossPageEmissionStaysBitIdentical) {
  // A netlist big enough that the emitted code spans several pages:
  // many wide arithmetic combs chained together.  Exercises segment
  // layout and the mmap'd buffer end to end.
  NetlistGen g(0xB16C0DE);
  for (int i = 0; i < 6; ++i) {
    NetId n = g.nl.add_net("in" + std::to_string(i), 48);
    g.nl.mark_input(n);
    g.avail.push_back(n);
  }
  for (int i = 0; i < 400; ++i) {
    NetId n = g.nl.add_net("m" + std::to_string(i), 48);
    g.nl.add_comb(n, g.expr(48, 3));
    g.avail.push_back(n);
  }
  g.nl.validate_and_order();
  if (TapeJit::host_supported()) {
    NetlistSim sim(g.nl, SettleMode::Jit);
    const JitStats* js = sim.jit_stats();
    ASSERT_NE(js, nullptr);
    EXPECT_GT(js->code_bytes, 2u * 4096u) << "netlist too small to span pages";
  }
  drive_scalar_lockstep(g.nl, 0x9A6E5, 8, SettleMode::FullTape);
}

TEST(TapeJitScalar, WriteXorExecuteRoundTrip) {
  // Many compile/run/destroy cycles: every TapeJit maps, protects and
  // unmaps its own executable pages; leaks or stale mappings show up
  // under the ASan leg of this suite.
  const Netlist nl = make_random_netlist(0x3E4C15E);
  const TapeProgram tape = TapeProgram::compile(nl);
  for (int i = 0; i < 64; ++i) {
    TapeJit jit(tape);
    if (!TapeJit::host_supported()) {
      EXPECT_FALSE(jit.available());
      continue;
    }
    if (!jit.available()) continue;
    std::vector<std::uint64_t> nets(nl.nets().size(), 0);
    std::vector<std::uint64_t> stack(
        std::max<std::uint32_t>(tape.max_stack(), 1), 0);
    std::vector<std::uint64_t> slots(
        std::max<std::uint32_t>(tape.max_slots(), 1), 0);
    NetlistStats stats;
    jit.run_full(nets.data(), stack.data(), slots.data(), &stats);
    EXPECT_EQ(stats.combs_evaluated, tape.combs().size());
  }
}

TEST(TapeJitScalar, RtlModuleRunsInJitMode) {
  // The kernel-integration wrapper accepts a settle mode; a JIT-backed
  // module and a default module must publish identical pin values.
  const ObjectDesc d = testobj::mailbox();
  SynthOptions opt;
  opt.clients = 2;
  const Netlist nl = synthesize(d, opt);
  drive_scalar_lockstep(nl, 0x4E7115, 32, SettleMode::Incremental);
  NetlistSim jit_sim(nl, SettleMode::Jit);
  EXPECT_EQ(jit_sim.mode(), SettleMode::Jit);
}

// ---------------------------------------------------------------------
// Batch JIT vs the batch interpreter and the scalar engine
// ---------------------------------------------------------------------

/// Drive a JIT-backed batch sim, an interpreted batch sim, and one
/// scalar reference per lane with identical stimulus; require
/// three-way bit identity on every net of every lane.
void drive_batch_jit_lockstep(const Netlist& nl, std::uint64_t seed,
                              int edges, unsigned super) {
  BatchNetlistSim jit(nl, super, /*jit=*/true);
  BatchNetlistSim interp(nl, super, /*jit=*/false);
  const std::size_t lanes = jit.lanes();
  std::vector<std::unique_ptr<NetlistSim>> refs;
  std::vector<sim::Xorshift> rngs;
  refs.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    refs.push_back(std::make_unique<NetlistSim>(nl, SettleMode::FullTape));
    rngs.emplace_back(sim::lane_seed(seed, lane));
  }
  const std::vector<NetId>& ins = nl.inputs();

  auto expect_identical = [&](int edge, const char* phase) {
    for (NetId n = 0; n < nl.nets().size(); ++n) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        ASSERT_EQ(jit.get(n, lane), interp.get(n, lane))
            << "jit vs interp: net '" << nl.nets()[n].name << "' lane "
            << lane << " (" << phase << ", edge " << edge << ", super "
            << super << ")";
        ASSERT_EQ(jit.get(n, lane), refs[lane]->get(n))
            << "jit vs scalar: net '" << nl.nets()[n].name << "' lane "
            << lane << " (" << phase << ", edge " << edge << ", super "
            << super << ")";
      }
    }
  };

  for (int e = 0; e < edges; ++e) {
    for (NetId in : ins) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        if (rngs[lane].chance(1, 4)) continue;
        const std::uint64_t v = rngs[lane].chance(1, 4)
                                    ? refs[lane]->get(in)
                                    : rngs[lane].next();
        jit.set_input(in, lane, v);
        interp.set_input(in, lane, v);
        refs[lane]->set_input(in, v);
      }
    }
    if ((e & 3) == 0) {
      jit.settle();
      interp.settle();
      for (auto& r : refs) r->settle();
      expect_identical(e, "settle");
    }
    jit.clock_edge();
    interp.clock_edge();
    for (auto& r : refs) r->clock_edge();
    expect_identical(e, "edge");
  }
}

TEST(TapeJitBatch, SuperlaneParityMatrixOnRandomNetlists) {
  for (unsigned super : {1u, 4u, 8u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE("super " + std::to_string(super) + " seed " +
                   std::to_string(seed));
      Netlist nl = make_random_netlist(0x7A6B17 + seed * 31 + super);
      drive_batch_jit_lockstep(nl, seed * 0x5EED + super,
                               super == 8 ? 5 : 8, super);
    }
  }
}

TEST(TapeJitBatch, StatsAccountingMatchesInterpreter) {
  if (!BatchJit::host_supported()) GTEST_SKIP() << "no JIT on this host";
  // The per-settle BatchStats the JIT maintains must equal the
  // interpreter's exactly: same evaluation counts, same fused-op and
  // plane-instruction totals for whatever stayed interpreted.
  const Netlist nl = make_random_netlist(0xACC7);
  for (unsigned super : {1u, 4u}) {
    BatchNetlistSim jit(nl, super, true);
    BatchNetlistSim interp(nl, super, false);
    sim::Xorshift rng(0x57A75);
    for (int e = 0; e < 10; ++e) {
      for (NetId in : nl.inputs()) {
        const std::uint64_t v = rng.next();
        for (std::size_t lane = 0; lane < jit.lanes(); ++lane) {
          jit.set_input(in, lane, v);
          interp.set_input(in, lane, v);
        }
      }
      jit.clock_edge();
      interp.clock_edge();
    }
    const BatchStats& a = jit.stats();
    const BatchStats& b = interp.stats();
    EXPECT_EQ(a.settles, b.settles);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.combs_evaluated, b.combs_evaluated);
    EXPECT_EQ(a.combs_scalar, b.combs_scalar);
    EXPECT_EQ(a.scalar_lane_evals, b.scalar_lane_evals);
    if (jit.jit_stats() != nullptr) {
      // Native combs don't execute plane instructions; whatever the
      // interpreter ran must be >= what the JIT left interpreted.
      EXPECT_LE(a.plane_instructions, b.plane_instructions);
      EXPECT_GT(jit.jit_stats()->native_calls, 0u);
    } else {
      EXPECT_EQ(a.plane_instructions, b.plane_instructions);
    }
  }
}

// ---------------------------------------------------------------------
// Monitor automata (PR 4 property packs) under the JIT
// ---------------------------------------------------------------------

TEST(TapeJitMonitor, LoweredPropertyPacksBitIdentical) {
  for (int pack = 0; pack < 2; ++pack) {
    const check::Spec spec =
        pack == 0 ? check::pci_rules(check::PciRuleOptions{
                        .arbitration = true, .latency_bound = 16})
                  : check::shared_object_rules(/*starvation_bound=*/8);
    SCOPED_TRACE(pack == 0 ? "pci" : "shared_object");
    const check::Automaton a = check::compile(spec);
    const Netlist nl = check::lower(a);
    for (SettleMode mode : {SettleMode::Incremental, SettleMode::FullTape}) {
      SCOPED_TRACE(to_string(mode));
      drive_scalar_lockstep(nl, 0x1107 + pack, 48, mode);
    }
    drive_batch_jit_lockstep(nl, 0x2207 + pack, 6, 1);
  }
}

// ---------------------------------------------------------------------
// check_equivalence with the JIT backend
// ---------------------------------------------------------------------

void expect_same_result(const EquivResult& a, const EquivResult& b) {
  EXPECT_EQ(a.equal, b.equal);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.lanes, b.lanes);
  EXPECT_EQ(a.first_bad_lane, b.first_bad_lane);
  EXPECT_EQ(a.first_bad_seed, b.first_bad_seed);
  ASSERT_EQ(a.vectors.size(), b.vectors.size());
  for (std::size_t i = 0; i < a.vectors.size(); ++i) {
    const EquivVector& va = a.vectors[i];
    const EquivVector& vb = b.vectors[i];
    ASSERT_EQ(va.rst, vb.rst) << "vector " << i;
    ASSERT_EQ(va.grant, vb.grant) << "vector " << i;
    ASSERT_EQ(va.ret, vb.ret) << "vector " << i;
    ASSERT_EQ(va.vars, vb.vars) << "vector " << i;
  }
}

TEST(TapeJitEquiv, ShippedObjectsVerdictsBitIdentical) {
  // The shipped .obj surface: scalar backend, batch interpreter and
  // batch JIT must produce identical verdicts, grants and vectors,
  // with reset pulses in the stimulus.
  for (const char* file : {"mailbox.obj", "semaphore.obj", "counters.obj"}) {
    SCOPED_TRACE(file);
    std::ifstream in(std::string(HLCS_OBJS_DIR) + "/" + file);
    ASSERT_TRUE(in) << "cannot open shipped object " << file;
    std::stringstream ss;
    ss << in.rdbuf();
    std::vector<ObjectDesc> parsed = parse_objects(ss.str());
    ASSERT_FALSE(parsed.empty());
    ObjectDesc d = [&]() -> ObjectDesc {
      if (parsed.size() == 1) return std::move(parsed[0]);
      std::vector<const ObjectDesc*> impls;
      for (const ObjectDesc& o : parsed) impls.push_back(&o);
      return make_polymorphic(parsed[0].name() + "_poly", impls, 0);
    }();
    SynthOptions opt;
    opt.clients = 3;
    opt.policy = osss::PolicyKind::RoundRobin;
    EquivOptions scalar{.cycles = 120,
                        .seed = 0x71D,
                        .reset_percent = 4,
                        .lanes = 64};
    const EquivResult rs = check_equivalence(d, opt, scalar);
    EXPECT_TRUE(rs.equal) << rs.first_mismatch;
    for (unsigned super : {1u, 8u}) {
      SCOPED_TRACE("super " + std::to_string(super));
      EquivOptions interp = scalar;
      interp.batch = true;
      interp.superlanes = super;
      EquivOptions jit = interp;
      jit.jit = true;
      const EquivResult ri = check_equivalence(d, opt, interp);
      const EquivResult rj = check_equivalence(d, opt, jit);
      EXPECT_TRUE(ri.equal) << ri.first_mismatch;
      EXPECT_TRUE(rj.equal) << rj.first_mismatch;
      expect_same_result(rs, ri);
      expect_same_result(rs, rj);
      EXPECT_EQ(rj.jit_stats.enabled, BatchJit::host_supported());
      if (rj.jit_stats.enabled) {
        EXPECT_GT(rj.jit_stats.native_calls, 0u);
        EXPECT_GT(rj.jit_stats.code_bytes, 0u);
      }
    }
  }
}

TEST(TapeJitEquiv, DeterministicAtAnyThreadCount) {
  // 130 lanes = three superlane blocks claimed in racy order; the JIT
  // backend must be invariant to who compiled and ran what.
  const ObjectDesc d = testobj::mailbox();
  SynthOptions opt;
  opt.clients = 4;
  opt.policy = osss::PolicyKind::RoundRobin;
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<EquivResult> runs;
  for (unsigned threads : {1u, 2u, hw == 0 ? 4u : hw}) {
    EquivOptions eopt{.cycles = 100,
                      .seed = 0x7EAD1,
                      .reset_percent = 3,
                      .lanes = 130,
                      .batch = true,
                      .threads = threads,
                      .jit = true};
    runs.push_back(check_equivalence(d, opt, eopt));
  }
  for (const EquivResult& r : runs) {
    EXPECT_TRUE(r.equal) << r.first_mismatch;
    EXPECT_EQ(r.cycles, 100u * 130u);
  }
  expect_same_result(runs[0], runs[1]);
  expect_same_result(runs[0], runs[2]);
  // JIT compile counters accumulate per block, independent of threads.
  EXPECT_EQ(runs[0].jit_stats.combs_native, runs[1].jit_stats.combs_native);
  EXPECT_EQ(runs[0].jit_stats.combs_deopt, runs[2].jit_stats.combs_deopt);
  EXPECT_EQ(runs[0].jit_stats.native_calls, runs[1].jit_stats.native_calls);
}

}  // namespace
}  // namespace hlcs::synth
