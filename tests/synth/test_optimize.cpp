// The netlist optimiser: specific rewrites, and the global guarantee --
// optimisation never changes cycle-accurate behaviour.
#include <gtest/gtest.h>

#include "hlcs/sim/random.hpp"
#include "hlcs/synth/comm_synth.hpp"
#include "hlcs/synth/optimize.hpp"
#include "hlcs/synth/report.hpp"
#include "hlcs/synth/rtl_sim.hpp"
#include "objects.hpp"

namespace hlcs::synth {
namespace {

/// Build a tiny netlist with one comb output `y` = f(inputs a, b).
struct MiniNet {
  Netlist nl{"mini"};
  NetId a, b, y;
  MiniNet(unsigned wa, unsigned wb, unsigned wy) {
    a = nl.add_net("a", wa);
    b = nl.add_net("b", wb);
    y = nl.add_net("y", wy);
    nl.mark_input(a);
    nl.mark_input(b);
    nl.mark_output(y);
  }
  void finish(ExprId e) { nl.add_comb(y, e); }
};

TEST(Optimize, FoldsConstantArithmetic) {
  MiniNet m(8, 8, 8);
  auto& A = m.nl.arena();
  // y = (3 + 4) * 2  -> constant 14 (inputs unused but still ports).
  ExprId e = A.bin(ExprOp::Mul, A.bin(ExprOp::Add, A.cst(3, 8), A.cst(4, 8)),
                   A.cst(2, 8));
  // Keep inputs referenced through a no-op so they are not dangling:
  e = A.bin(ExprOp::Or, e, A.bin(ExprOp::And, m.nl.net_ref(m.a),
                                 A.cst(0, 8)));
  m.finish(e);
  OptimizeStats st;
  Netlist opt = optimize(m.nl, &st);
  EXPECT_GT(st.folds, 0u);
  EXPECT_LT(st.nodes_after, st.nodes_before);
  const CombAssign& c = opt.combs()[0];
  EXPECT_EQ(opt.arena().at(c.value).op, ExprOp::Const);
  EXPECT_EQ(opt.arena().at(c.value).imm, 14u);
}

TEST(Optimize, IdentityLaws) {
  struct Case {
    ExprOp op;
    std::uint64_t c;
    bool const_rhs;
  };
  for (Case cs : {Case{ExprOp::And, 0xFF, true}, Case{ExprOp::Or, 0, true},
                  Case{ExprOp::Xor, 0, true}, Case{ExprOp::Add, 0, true},
                  Case{ExprOp::Sub, 0, true}, Case{ExprOp::Mul, 1, true},
                  Case{ExprOp::And, 0xFF, false}}) {
    MiniNet m(8, 8, 8);
    auto& A = m.nl.arena();
    ExprId x = m.nl.net_ref(m.a);
    ExprId k = A.cst(cs.c, 8);
    m.finish(cs.const_rhs ? A.bin(cs.op, x, k) : A.bin(cs.op, k, x));
    Netlist opt = optimize(m.nl);
    const ExprNode& n = opt.arena().at(opt.combs()[0].value);
    EXPECT_EQ(n.op, ExprOp::Var) << op_name(cs.op);
    EXPECT_EQ(n.imm, m.a) << op_name(cs.op);
  }
}

TEST(Optimize, AnnihilatorLaws) {
  MiniNet m(8, 8, 8);
  auto& A = m.nl.arena();
  m.finish(A.bin(ExprOp::And, m.nl.net_ref(m.a), A.cst(0, 8)));
  Netlist opt = optimize(m.nl);
  const ExprNode& n = opt.arena().at(opt.combs()[0].value);
  EXPECT_EQ(n.op, ExprOp::Const);
  EXPECT_EQ(n.imm, 0u);
}

TEST(Optimize, MuxSimplifications) {
  {
    MiniNet m(8, 8, 8);
    auto& A = m.nl.arena();
    m.finish(A.mux(A.cst(1, 1), m.nl.net_ref(m.a), m.nl.net_ref(m.b)));
    Netlist opt = optimize(m.nl);
    EXPECT_EQ(opt.arena().at(opt.combs()[0].value).imm, m.a);
  }
  {
    MiniNet m(1, 8, 8);
    auto& A = m.nl.arena();
    // mux(sel, a-expr, a-expr): both branches structurally equal.
    ExprId t = A.bin(ExprOp::Add, m.nl.net_ref(m.b), A.cst(1, 8));
    ExprId f = A.bin(ExprOp::Add, m.nl.net_ref(m.b), A.cst(1, 8));
    m.finish(A.mux(m.nl.net_ref(m.a), t, f));
    Netlist opt = optimize(m.nl);
    EXPECT_EQ(opt.arena().at(opt.combs()[0].value).op, ExprOp::Add);
  }
}

TEST(Optimize, DoubleNegationAndSelfComparison) {
  {
    MiniNet m(8, 8, 8);
    auto& A = m.nl.arena();
    m.finish(A.un(ExprOp::Not, A.un(ExprOp::Not, m.nl.net_ref(m.a))));
    Netlist opt = optimize(m.nl);
    EXPECT_EQ(opt.arena().at(opt.combs()[0].value).op, ExprOp::Var);
  }
  {
    MiniNet m(8, 8, 1);
    auto& A = m.nl.arena();
    m.finish(A.bin(ExprOp::Eq, m.nl.net_ref(m.a), m.nl.net_ref(m.a)));
    Netlist opt = optimize(m.nl);
    const ExprNode& n = opt.arena().at(opt.combs()[0].value);
    EXPECT_EQ(n.op, ExprOp::Const);
    EXPECT_EQ(n.imm, 1u);
  }
}

TEST(Optimize, SliceAndZextFolds) {
  MiniNet m(16, 8, 8);
  auto& A = m.nl.arena();
  // slice(zext(a16 -> 16), 0, 8) with zext being a no-op.
  ExprId e = A.slice(A.zext(m.nl.net_ref(m.a), 16), 0, 8);
  m.finish(e);
  OptimizeStats st;
  Netlist opt = optimize(m.nl, &st);
  EXPECT_GT(st.folds, 0u);
  EXPECT_EQ(opt.arena().at(opt.combs()[0].value).op, ExprOp::Slice);
}

/// The global guarantee: optimised synthesis output behaves identically
/// under random stimulus for every test object and policy.
class OptimizeEquiv
    : public ::testing::TestWithParam<std::tuple<int, osss::PolicyKind>> {};

TEST_P(OptimizeEquiv, LockStepOriginalVsOptimized) {
  auto [which, policy] = GetParam();
  ObjectDesc d = which == 0   ? testobj::bistable()
                 : which == 1 ? testobj::counter()
                 : which == 2 ? testobj::mailbox()
                              : testobj::swapper();
  SynthOptions opt{.clients = 3, .policy = policy};
  Netlist orig = synthesize(d, opt);
  OptimizeStats st;
  Netlist optd = optimize(orig, &st);
  EXPECT_GT(st.folds, 0u) << "synthesised logic should have foldable slack";
  EXPECT_LE(st.nodes_after, st.nodes_before);

  NetlistSim s1(orig);
  NetlistSim s2(optd);
  sim::Xorshift rng(0x0B7 + static_cast<std::uint64_t>(which));
  for (int cycle = 0; cycle < 500; ++cycle) {
    for (std::size_t c = 0; c < opt.clients; ++c) {
      const std::uint64_t req = rng.chance(1, 2);
      const std::uint64_t sel = rng.below(d.methods().size() + 1);
      const std::uint64_t args = rng.next();
      for (NetlistSim* s : {&s1, &s2}) {
        s->set_input(req_port(c), req);
        s->set_input(sel_port(c), sel);
        s->set_input(args_port(c), args);
        s->set_input("rst", cycle % 97 == 0);
      }
    }
    s1.settle();
    s2.settle();
    for (std::size_t c = 0; c < opt.clients; ++c) {
      ASSERT_EQ(s1.get(grant_port(c)), s2.get(grant_port(c)))
          << "cycle " << cycle;
      ASSERT_EQ(s1.get(ret_port(c)), s2.get(ret_port(c))) << "cycle " << cycle;
    }
    s1.clock_edge();
    s2.clock_edge();
    for (std::size_t v = 0; v < d.vars().size(); ++v) {
      ASSERT_EQ(s1.get(var_port(d, v)), s2.get(var_port(d, v)))
          << "cycle " << cycle;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ObjectsAndPolicies, OptimizeEquiv,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(osss::PolicyKind::Fifo,
                                         osss::PolicyKind::RoundRobin,
                                         osss::PolicyKind::StaticPriority,
                                         osss::PolicyKind::Random)));

TEST(Optimize, ReducesGateEstimateOnRealDesign) {
  ObjectDesc d = testobj::mailbox();
  Netlist orig = synthesize(d, SynthOptions{.clients = 4});
  Netlist optd = optimize(orig);
  ResourceReport before = report(orig);
  ResourceReport after = report(optd);
  EXPECT_LT(after.gate_estimate, before.gate_estimate);
  EXPECT_EQ(after.flip_flops, before.flip_flops) << "registers untouched";
}

}  // namespace
}  // namespace hlcs::synth
