// Seeded random netlist generation shared by the tape and batch-engine
// bit-identity suites: DAG-shaped expressions with shared subtrees (to
// exercise slot CSE), the full operator set including word arithmetic
// (to exercise the batch engine's scalar fallback), and registers
// feeding back into the logic.
#pragma once

#include <string>
#include <vector>

#include "hlcs/sim/random.hpp"
#include "hlcs/synth/netlist.hpp"

namespace hlcs::synth {

struct NetlistGen {
  Netlist nl;
  sim::Xorshift rng;
  std::vector<NetId> inputs;
  /// Nets usable as expression sources at the current build point.
  std::vector<NetId> avail;
  /// Previously built expressions by rough size class, for DAG sharing.
  std::vector<ExprId> pool;

  explicit NetlistGen(std::uint64_t seed) : nl("rand"), rng(seed) {}

  unsigned rand_width() {
    // Bias towards narrow nets, with occasional wide ones.
    switch (rng.below(4)) {
      case 0: return 1;
      case 1: return static_cast<unsigned>(rng.range(2, 8));
      case 2: return static_cast<unsigned>(rng.range(9, 24));
      default: return static_cast<unsigned>(rng.range(25, 64));
    }
  }

  /// An expression of exactly `width` bits from an existing net.
  ExprId net_leaf(unsigned width) {
    const NetId n = avail[rng.below(avail.size())];
    const unsigned w = nl.nets()[n].width;
    ExprId e = nl.net_ref(n);
    if (w == width) return e;
    if (w > width) {
      const unsigned lsb = static_cast<unsigned>(rng.below(w - width + 1));
      return nl.arena().slice(e, lsb, width);
    }
    return nl.arena().zext(e, width);
  }

  ExprId expr(unsigned width, unsigned depth) {
    // Occasionally reuse an already-built expression of this width: that
    // makes the arena a DAG and exercises the tape's slot-CSE path.
    if (!pool.empty() && rng.chance(1, 5)) {
      const ExprId cand = pool[rng.below(pool.size())];
      if (nl.arena().at(cand).width == width) return cand;
    }
    ExprId out = build(width, depth);
    pool.push_back(out);
    return out;
  }

  ExprId build(unsigned width, unsigned depth) {
    auto& A = nl.arena();
    if (depth == 0 || rng.chance(1, 4)) {
      if (rng.chance(1, 3)) return A.cst(rng.next(), width);
      return net_leaf(width);
    }
    const unsigned d = depth - 1;
    if (width == 1 && rng.chance(1, 2)) {
      // 1-bit results: comparisons and reductions.
      const unsigned ow = rand_width();
      switch (rng.below(4)) {
        case 0: return A.un(ExprOp::RedOr, expr(ow, d));
        case 1: return A.un(ExprOp::RedAnd, expr(ow, d));
        case 2: {
          static constexpr ExprOp cmp[] = {ExprOp::Eq, ExprOp::Ne, ExprOp::Lt,
                                           ExprOp::Le, ExprOp::Gt, ExprOp::Ge};
          return A.bin(cmp[rng.below(6)], expr(ow, d), expr(ow, d));
        }
        default: break;  // fall through to the generic ops
      }
    }
    switch (rng.below(8)) {
      case 0: return A.un(rng.chance(1, 2) ? ExprOp::Not : ExprOp::Neg,
                          expr(width, d));
      case 1: {
        static constexpr ExprOp arith[] = {ExprOp::Add, ExprOp::Sub,
                                           ExprOp::Mul};
        return A.bin(arith[rng.below(3)], expr(width, d), expr(width, d));
      }
      case 2: {
        static constexpr ExprOp bitw[] = {ExprOp::And, ExprOp::Or, ExprOp::Xor};
        return A.bin(bitw[rng.below(3)], expr(width, d), expr(width, d));
      }
      case 3:
        return A.bin(rng.chance(1, 2) ? ExprOp::Shl : ExprOp::Shr,
                     expr(width, d),
                     expr(static_cast<unsigned>(rng.range(1, 7)), d));
      case 4:
        if (width >= 2) {
          const unsigned wb = static_cast<unsigned>(rng.range(1, width - 1));
          return A.bin(ExprOp::Concat, expr(width - wb, d), expr(wb, d));
        }
        [[fallthrough]];
      case 5:
        return A.mux(expr(1, d), expr(width, d), expr(width, d));
      case 6:
        if (width < 64) {
          const unsigned narrower =
              static_cast<unsigned>(rng.range(1, width));
          return A.zext(expr(narrower, d), width);
        }
        [[fallthrough]];
      default: {
        const unsigned wider = static_cast<unsigned>(rng.range(width, 64));
        const unsigned lsb =
            static_cast<unsigned>(rng.below(wider - width + 1));
        return A.slice(expr(wider, d), lsb, width);
      }
    }
  }
};

/// A random-but-valid netlist: inputs, a comb pipeline where net i only
/// reads earlier nets (acyclic by construction), and registers feeding
/// back into the logic.
inline Netlist make_random_netlist(std::uint64_t seed) {
  NetlistGen g(seed);
  const std::size_t n_in = g.rng.range(1, 4);
  const std::size_t n_reg = g.rng.range(1, 4);
  const std::size_t n_mid = g.rng.range(2, 10);

  for (std::size_t i = 0; i < n_in; ++i) {
    NetId n = g.nl.add_net("in" + std::to_string(i), g.rand_width());
    g.nl.mark_input(n);
    g.inputs.push_back(n);
    g.avail.push_back(n);
  }
  struct Reg {
    NetId q, d;
  };
  std::vector<Reg> regs;
  for (std::size_t i = 0; i < n_reg; ++i) {
    const unsigned w = g.rand_width();
    Reg r;
    r.q = g.nl.add_net("q" + std::to_string(i), w);
    r.d = g.nl.add_net("d" + std::to_string(i), w);
    g.nl.add_reg(r.q, r.d, g.rng.next());
    regs.push_back(r);
    g.avail.push_back(r.q);  // feedback: combs may read register outputs
  }
  for (std::size_t i = 0; i < n_mid; ++i) {
    const unsigned w = g.rand_width();
    NetId n = g.nl.add_net("m" + std::to_string(i), w);
    g.nl.add_comb(n, g.expr(w, static_cast<unsigned>(g.rng.range(1, 4))));
    g.avail.push_back(n);  // later combs may read it: stays acyclic
    if (g.rng.chance(1, 2)) g.nl.mark_output(n);
  }
  for (const Reg& r : regs) {
    const unsigned w = g.nl.nets()[r.d].width;
    g.nl.add_comb(r.d, g.expr(w, static_cast<unsigned>(g.rng.range(1, 4))));
  }
  g.nl.validate_and_order();
  return g.nl;
}

}  // namespace hlcs::synth
