#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "hlcs/sim/clock.hpp"
#include "hlcs/sim/kernel.hpp"
#include "hlcs/sim/signal.hpp"
#include "hlcs/sim/trace.hpp"

namespace hlcs::sim {
namespace {

using namespace hlcs::sim::literals;

TEST(Clock, GeneratesExpectedCycleCount) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  k.run_for(100_ns);
  // Rising edges at 5, 15, ..., 95 ns -> 10 edges.
  EXPECT_EQ(clk.cycles(), 10u);
}

TEST(Clock, SignalLevelMatchesEdgeEvents) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  int pos_seen = 0, neg_seen = 0;
  bool level_ok = true;
  k.spawn("pos", [&]() -> Task {
    for (int i = 0; i < 5; ++i) {
      co_await clk.posedge();
      if (!clk.high()) level_ok = false;
      ++pos_seen;
    }
  });
  k.spawn("neg", [&]() -> Task {
    for (int i = 0; i < 5; ++i) {
      co_await clk.negedge();
      if (clk.high()) level_ok = false;
      ++neg_seen;
    }
  });
  k.run_for(200_ns);
  EXPECT_EQ(pos_seen, 5);
  EXPECT_EQ(neg_seen, 5);
  EXPECT_TRUE(level_ok);
}

TEST(Clock, PosedgeTimesAreRegular) {
  Kernel k;
  Clock clk(k, "clk", 8_ns);
  std::vector<std::uint64_t> times;
  k.spawn("obs", [&]() -> Task {
    for (int i = 0; i < 4; ++i) {
      co_await clk.posedge();
      times.push_back(k.now().picos());
    }
  });
  k.run_for(100_ns);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_EQ(times[0], 4000u);
  EXPECT_EQ(times[1], 12000u);
  EXPECT_EQ(times[2], 20000u);
  EXPECT_EQ(times[3], 28000u);
}

TEST(Clock, TooSmallPeriodThrows) {
  Kernel k;
  EXPECT_THROW(Clock(k, "clk", 1_ps), hlcs::Error);
}

class TraceTest : public ::testing::Test {
protected:
  std::string path_ = ::testing::TempDir() + "hlcs_trace_test.vcd";
  void TearDown() override { std::remove(path_.c_str()); }

  std::string slurp() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(TraceTest, WritesVcdHeaderAndChanges) {
  Kernel k;
  {
    Trace trace(path_);
    Signal<bool> s(k, "sig_a", false);
    Signal<LogicVec> v(k, "bus_b", LogicVec::of(0, 4));
    trace.add(s);
    trace.add(v);
    k.attach_trace(trace);
    k.spawn("p", [&]() -> Task {
      co_await k.wait(5_ns);
      s.write(true);
      v.write(LogicVec::of(0xA, 4));
      co_await k.wait(5_ns);
      s.write(false);
      co_return;
    });
    k.run();
  }  // trace flushed on destruction
  std::string vcd = slurp();
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! sig_a $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 4 \" bus_b $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("#5000"), std::string::npos);
  EXPECT_NE(vcd.find("#10000"), std::string::npos);
  EXPECT_NE(vcd.find("1!"), std::string::npos);
  EXPECT_NE(vcd.find("b1010 \""), std::string::npos);
}

TEST_F(TraceTest, NoSpuriousChangesRecorded) {
  Kernel k;
  {
    Trace trace(path_);
    Signal<bool> s(k, "quiet", false);
    trace.add(s);
    k.attach_trace(trace);
    k.spawn("p", [&]() -> Task {
      co_await k.wait(5_ns);
      s.write(false);  // no value change
      co_return;
    });
    k.run();
  }
  std::string vcd = slurp();
  EXPECT_EQ(vcd.find("#5000"), std::string::npos)
      << "a write that does not change the value must not appear";
}

TEST_F(TraceTest, UnwritablePathThrows) {
  EXPECT_THROW(Trace("/nonexistent_dir_xyz/out.vcd"), hlcs::Error);
}

TEST_F(TraceTest, ClockWaveIsTraced) {
  Kernel k;
  {
    Trace trace(path_);
    Clock clk(k, "clk", 10_ns);
    trace.add(clk.signal());
    k.attach_trace(trace);
    k.run_for(50_ns);
  }
  std::string vcd = slurp();
  // Edges at 5, 10(ish: falls at 10+5?) -- count transitions of "0!"/"1!".
  int ones = 0, zeros = 0;
  std::istringstream is(vcd);
  std::string line;
  bool in_dump = false;
  while (std::getline(is, line)) {
    if (line == "$end") in_dump = true;
    if (!in_dump) continue;
    if (line == "1!") ++ones;
    if (line == "0!") ++zeros;
  }
  EXPECT_GE(ones, 4);
  EXPECT_GE(zeros, 4);
}

}  // namespace
}  // namespace hlcs::sim
