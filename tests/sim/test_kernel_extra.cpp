// Additional kernel semantics: delta-cycle determinism details, timed
// event interactions, tracing integration, and scheduling corner cases.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hlcs/sim/sim.hpp"

namespace hlcs::sim {
namespace {

using namespace hlcs::sim::literals;

TEST(KernelExtra, SignalUpdateHappensBetweenDeltas) {
  // Two processes write and read the same signal in the same instant;
  // both readers observe the pre-write value in delta 0 and the new
  // value in delta 1, regardless of process order.
  Kernel k;
  Signal<int> s(k, "s", 1);
  std::vector<int> observed;
  k.spawn("writer", [&]() -> Task {
    s.write(2);
    co_return;
  });
  for (int i = 0; i < 2; ++i) {
    k.spawn("reader" + std::to_string(i), [&]() -> Task {
      observed.push_back(s.read());
      co_await k.wait_delta();
      observed.push_back(s.read());
    });
  }
  k.run();
  EXPECT_EQ(observed, (std::vector<int>{1, 1, 2, 2}));
}

TEST(KernelExtra, ImmediateNotifyWithinSameEvaluation) {
  // An immediate notification wakes a waiter within the same evaluation
  // phase -- before any signal updates commit.
  Kernel k;
  Event ev(k, "ev");
  Signal<int> s(k, "s", 0);
  int seen = -1;
  k.spawn("waiter", [&]() -> Task {
    co_await ev;
    seen = s.read();
  });
  k.spawn("notifier", [&]() -> Task {
    s.write(5);
    ev.notify();  // waiter runs in this evaluation: sees the OLD value
    co_return;
  });
  k.run();
  EXPECT_EQ(seen, 0);
}

TEST(KernelExtra, TimedNotificationsAccumulate) {
  Kernel k;
  Event ev(k, "ev");
  std::vector<std::uint64_t> wakes;
  k.spawn("waiter", [&]() -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await ev;
      wakes.push_back(k.now().picos());
    }
  });
  k.spawn("notifier", [&]() -> Task {
    ev.notify(10_ns);
    ev.notify(20_ns);
    ev.notify(30_ns);
    co_return;
  });
  k.run();
  EXPECT_EQ(wakes, (std::vector<std::uint64_t>{10000, 20000, 30000}));
}

TEST(KernelExtra, EventWaitersFromDifferentTimesCoexist) {
  Kernel k;
  Event ev(k, "ev");
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    k.spawn("w" + std::to_string(i), [&, i]() -> Task {
      co_await k.wait(Time::ns(static_cast<std::uint64_t>(i)));
      co_await ev;
      ++woken;
    });
  }
  k.spawn("n", [&]() -> Task {
    co_await k.wait(10_ns);
    ev.notify();
    co_return;
  });
  k.run();
  EXPECT_EQ(woken, 3);
}

TEST(KernelExtra, ZeroTimeWaitResumesAtSameTime) {
  Kernel k;
  Time before, after;
  k.spawn("p", [&]() -> Task {
    before = k.now();
    co_await k.wait(Time::zero());
    after = k.now();
  });
  k.run();
  EXPECT_EQ(before, after);
}

TEST(KernelExtra, RunUntilZeroExecutesTimeZeroActivity) {
  Kernel k;
  bool ran = false;
  k.spawn("p", [&]() -> Task {
    ran = true;
    co_return;
  });
  k.run_until(Time::zero());
  EXPECT_TRUE(ran);
}

TEST(KernelExtra, StopInsideMethodProcess) {
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  int edges = 0;
  MethodProcess& m = k.method("counter", [&] {
    if (++edges == 3) k.stop();
  }, false);
  clk.posedge().add_static(m);
  k.run();  // would run forever without the stop
  EXPECT_EQ(edges, 3);
}

TEST(KernelExtra, ManyEventsManyWaitersDeterministicOrder) {
  Kernel k;
  std::string log;
  std::vector<std::unique_ptr<Event>> evs;
  for (int i = 0; i < 5; ++i) {
    evs.push_back(std::make_unique<Event>(k, "e" + std::to_string(i)));
  }
  for (int i = 0; i < 5; ++i) {
    k.spawn("w" + std::to_string(i), [&, i]() -> Task {
      co_await *evs[static_cast<std::size_t>(i)];
      log += static_cast<char>('a' + i);
    });
  }
  k.spawn("n", [&]() -> Task {
    // Notify in reverse order; wake order follows notify order.
    for (int i = 4; i >= 0; --i) evs[static_cast<std::size_t>(i)]->notify();
    co_return;
  });
  k.run();
  EXPECT_EQ(log, "edcba");
}

TEST(KernelExtra, ExceptionInMethodProcessSurfaces) {
  Kernel k;
  k.method("bad", [] { throw hlcs::Error("method boom"); });
  EXPECT_THROW(k.run(), hlcs::Error);
}

TEST(KernelExtra, KernelUsableAfterStop) {
  Kernel k;
  int phase = 0;
  k.spawn("p", [&]() -> Task {
    phase = 1;
    k.stop();
    co_await k.wait(5_ns);
    phase = 2;
  });
  k.run();
  EXPECT_EQ(phase, 1);
  k.run();  // resumes where it left off
  EXPECT_EQ(phase, 2);
  EXPECT_EQ(k.now(), 5_ns);
}

TEST(KernelExtra, WaitersOnSignalEdgeSeeSettledValues) {
  // Clocked producer/consumer through two signals: the consumer never
  // observes a half-updated pair (delta-cycle atomicity).
  Kernel k;
  Clock clk(k, "clk", 10_ns);
  Signal<int> a(k, "a", 0);
  Signal<int> b(k, "b", 0);
  bool consistent = true;
  k.spawn("producer", [&]() -> Task {
    for (int i = 1; i <= 50; ++i) {
      co_await clk.posedge();
      a.write(i);
      b.write(-i);
    }
  });
  k.spawn("consumer", [&]() -> Task {
    for (;;) {
      co_await clk.posedge();
      if (a.read() != -b.read()) consistent = false;
    }
  });
  k.run_for(1_us);
  EXPECT_TRUE(consistent);
}

TEST(KernelExtra, TraceSamplesEveryDeltaButRecordsOnChange) {
  const std::string path = ::testing::TempDir() + "hlcs_kernel_extra.vcd";
  Kernel k;
  {
    Trace t(path);
    Signal<bool> s(k, "sig", false);
    t.add(s);
    k.attach_trace(t);
    k.spawn("p", [&]() -> Task {
      for (int i = 0; i < 4; ++i) {
        co_await k.wait(10_ns);
        s.write(i % 2 == 0);
      }
    });
    k.run();
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string vcd = ss.str();
  // Changes at 10ns (0->1), 20ns (1->0), 30ns (0->1), 40ns (1->0).
  EXPECT_NE(vcd.find("#10000"), std::string::npos);
  EXPECT_NE(vcd.find("#40000"), std::string::npos);
  std::remove(path.c_str());
}

TEST(KernelExtra, StatsCountUpdatesAndEvents) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  k.spawn("p", [&]() -> Task {
    for (int i = 1; i <= 10; ++i) {
      s.write(i);
      co_await k.wait(1_ns);
    }
  });
  k.run();
  EXPECT_GE(k.stats().updates, 10u);
  EXPECT_GE(k.stats().events_triggered, 10u);
}

TEST(TryWarp, AdvancesClockWhenSoleActivity) {
  Kernel k;
  bool checked = false;
  k.spawn("lt", [&]() -> Task {
    EXPECT_TRUE(k.try_warp(Time::ns(500)));
    EXPECT_EQ(k.now().picos(), 500000u);
    // A warp to the past or present is a successful no-op.
    EXPECT_TRUE(k.try_warp(Time::ns(100)));
    EXPECT_EQ(k.now().picos(), 500000u);
    // Timed waits keep working after a warp (the queue base advanced).
    co_await k.wait(10_ns);
    EXPECT_EQ(k.now().picos(), 510000u);
    checked = true;
  });
  k.run_for(1_ms);
  EXPECT_TRUE(checked);
  EXPECT_EQ(k.stats().time_warps, 1u);
}

TEST(TryWarp, RefusedWhenEarlierTimedEntryPending) {
  Kernel k;
  std::vector<int> order;
  k.spawn("sleeper", [&]() -> Task {
    co_await k.wait(50_ns);
    order.push_back(1);
  });
  k.spawn("lt", [&]() -> Task {
    co_await k.wait_delta();  // let the sleeper park its timed entry
    EXPECT_FALSE(k.try_warp(Time::ns(100)))
        << "may not jump over the sleeper";
    EXPECT_TRUE(k.now().is_zero()) << "refused warp changes nothing";
    co_await k.wait(100_ns);
    order.push_back(2);
  });
  k.run_for(1_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(k.stats().time_warps, 0u);
}

TEST(TryWarp, RefusedBeyondRunHorizonAndOutsideRun) {
  Kernel k;
  EXPECT_FALSE(k.try_warp(Time::ns(1))) << "no run() in progress";
  k.spawn("lt", [&]() -> Task {
    EXPECT_FALSE(k.try_warp(Time::us(2))) << "past the run_for slice limit";
    EXPECT_TRUE(k.now().is_zero());
    EXPECT_TRUE(k.try_warp(Time::us(1))) << "exactly the horizon is fine";
    co_return;
  });
  k.run_for(1_us);
  EXPECT_EQ(k.now().picos(), Time::us(1).picos());
  EXPECT_EQ(k.stats().time_warps, 1u);
  // A later slice resumes cleanly from the warped time.
  bool ran = false;
  k.spawn("later", [&]() -> Task {
    co_await k.wait(1_us);
    ran = true;
  });
  k.run_for(2_us);
  EXPECT_TRUE(ran);
}

TEST(TryWarp, RefusedWhilePendingDeltaWork) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  bool checked = false;
  k.spawn("lt", [&]() -> Task {
    s.write(1);  // queues an update: the delta is not finished
    EXPECT_FALSE(k.try_warp(Time::ns(10)));
    co_await k.wait_delta();
    checked = true;
  });
  k.run_for(1_us);
  EXPECT_TRUE(checked);
  EXPECT_EQ(s.read(), 1);
  EXPECT_EQ(k.stats().time_warps, 0u);
}

}  // namespace
}  // namespace hlcs::sim
