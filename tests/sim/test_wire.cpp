#include "hlcs/sim/wire.hpp"

#include <gtest/gtest.h>

#include "hlcs/sim/kernel.hpp"
#include "hlcs/sim/time.hpp"

namespace hlcs::sim {
namespace {

using namespace hlcs::sim::literals;

TEST(Wire, UndrivenReadsZ) {
  Kernel k;
  Wire w(k, "w");
  EXPECT_EQ(w.read(), Logic::Z);
}

TEST(Wire, SingleDriver) {
  Kernel k;
  Wire w(k, "w");
  auto d = w.make_driver();
  k.spawn("p", [&]() -> Task {
    d.write(Logic::L0);
    co_await k.wait_delta();
    EXPECT_EQ(w.read(), Logic::L0);
    d.write(Logic::L1);
    co_await k.wait_delta();
    EXPECT_EQ(w.read(), Logic::L1);
    d.release();
    co_await k.wait_delta();
    EXPECT_EQ(w.read(), Logic::Z);
  });
  k.run();
}

TEST(Wire, TwoDriversConflictResolvesToX) {
  Kernel k;
  Wire w(k, "w");
  auto d1 = w.make_driver();
  auto d2 = w.make_driver();
  k.spawn("p", [&]() -> Task {
    d1.write(Logic::L0);
    d2.write(Logic::L1);
    co_await k.wait_delta();
    EXPECT_EQ(w.read(), Logic::X);
    d2.release();
    co_await k.wait_delta();
    EXPECT_EQ(w.read(), Logic::L0);
  });
  k.run();
}

TEST(Wire, ChangedEventOnResolutionChangeOnly) {
  Kernel k;
  Wire w(k, "w");
  auto d1 = w.make_driver();
  auto d2 = w.make_driver();
  int wakes = 0;
  MethodProcess& m = k.method("m", [&] { ++wakes; }, false);
  w.changed().add_static(m);
  k.spawn("p", [&]() -> Task {
    d1.write(Logic::L1);  // Z -> 1 : change
    co_await k.wait(1_ns);
    d2.write(Logic::L1);  // still 1 : no change
    co_await k.wait(1_ns);
    d2.release();  // still 1 : no change
    co_await k.wait(1_ns);
    d1.release();  // 1 -> Z : change
    co_return;
  });
  k.run();
  EXPECT_EQ(wakes, 2);
}

TEST(Wire, UnboundDriverThrows) {
  Wire::Driver d;
  EXPECT_FALSE(d.bound());
  EXPECT_THROW(d.write(Logic::L0), hlcs::Error);
}

TEST(Wire, ActiveLowHelpers) {
  Kernel k;
  Wire w(k, "w");
  auto d = w.make_driver();
  k.spawn("p", [&]() -> Task {
    d.write(Logic::L0);
    co_await k.wait_delta();
    EXPECT_TRUE(w.is_low());
    EXPECT_FALSE(w.is_high());
    d.write(Logic::L1);
    co_await k.wait_delta();
    EXPECT_TRUE(w.is_high());
    d.release();
    co_await k.wait_delta();
    EXPECT_FALSE(w.is_low());
    EXPECT_FALSE(w.is_high());
  });
  k.run();
}

TEST(WireVec, UndrivenReadsAllZ) {
  Kernel k;
  WireVec w(k, "w", 32);
  EXPECT_TRUE(w.read().is_all_z());
  EXPECT_EQ(w.width(), 32u);
}

TEST(WireVec, SingleDriverValue) {
  Kernel k;
  WireVec w(k, "ad", 32);
  auto d = w.make_driver();
  k.spawn("p", [&]() -> Task {
    d.write_uint(0xDEADBEEF);
    co_await k.wait_delta();
    EXPECT_EQ(w.read().to_uint(), 0xDEADBEEFu);
    d.release();
    co_await k.wait_delta();
    EXPECT_TRUE(w.read().is_all_z());
  });
  k.run();
}

TEST(WireVec, BusHandoverBetweenDrivers) {
  Kernel k;
  WireVec w(k, "ad", 16);
  auto master = w.make_driver();
  auto target = w.make_driver();
  k.spawn("p", [&]() -> Task {
    master.write_uint(0x1234);
    co_await k.wait_delta();
    EXPECT_EQ(w.read().to_uint(), 0x1234u);
    master.release();  // turnaround: nobody drives
    co_await k.wait_delta();
    EXPECT_TRUE(w.read().is_all_z());
    target.write_uint(0xABCD);
    co_await k.wait_delta();
    EXPECT_EQ(w.read().to_uint(), 0xABCDu);
  });
  k.run();
}

TEST(WireVec, ConflictProducesX) {
  Kernel k;
  WireVec w(k, "ad", 8);
  auto d1 = w.make_driver();
  auto d2 = w.make_driver();
  k.spawn("p", [&]() -> Task {
    d1.write_uint(0x0F);
    d2.write_uint(0xF0);
    co_await k.wait_delta();
    EXPECT_TRUE(w.read().has_x());
    co_return;
  });
  k.run();
}

TEST(WireVec, DriverWidthMismatchThrows) {
  Kernel k;
  WireVec w(k, "w", 8);
  auto d = w.make_driver();
  EXPECT_THROW(d.write(LogicVec::of(0, 16)), hlcs::Error);
}

TEST(WireVec, UnboundDriverThrows) {
  WireVec::Driver d;
  EXPECT_FALSE(d.bound());
  EXPECT_THROW(d.write_uint(0), hlcs::Error);
  EXPECT_THROW(d.release(), hlcs::Error);
}

TEST(WireVec, ManyDriversOnlyOneActive) {
  Kernel k;
  WireVec w(k, "ad", 32);
  std::vector<WireVec::Driver> drivers;
  for (int i = 0; i < 8; ++i) drivers.push_back(w.make_driver());
  k.spawn("p", [&]() -> Task {
    for (int i = 0; i < 8; ++i) {
      drivers[i].write_uint(0x100u + i);
      co_await k.wait_delta();
      EXPECT_EQ(w.read().to_uint(), 0x100u + i);
      drivers[i].release();
      co_await k.wait_delta();
    }
  });
  k.run();
}

}  // namespace
}  // namespace hlcs::sim
