#include "hlcs/sim/time.hpp"

#include <gtest/gtest.h>

namespace hlcs::sim {
namespace {

using namespace hlcs::sim::literals;

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t.picos(), 0u);
  EXPECT_TRUE(t.is_zero());
}

TEST(Time, UnitConversions) {
  EXPECT_EQ(Time::ns(1).picos(), 1000u);
  EXPECT_EQ(Time::us(1).picos(), 1000000u);
  EXPECT_EQ(Time::ms(1).picos(), 1000000000u);
  EXPECT_EQ((5_ns).picos(), 5000u);
  EXPECT_EQ((7_ps).picos(), 7u);
  EXPECT_EQ((2_us).picos(), 2000000u);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ((3_ns + 500_ps).picos(), 3500u);
  EXPECT_EQ((3_ns - 500_ps).picos(), 2500u);
  EXPECT_EQ((3_ns * 4).picos(), 12000u);
  EXPECT_EQ(4 * (3_ns), 12_ns);
  EXPECT_EQ((10_ns) / (2_ns), 5u);
  Time t = 1_ns;
  t += 1_ns;
  EXPECT_EQ(t, 2_ns);
}

TEST(Time, Comparisons) {
  EXPECT_LT(1_ns, 2_ns);
  EXPECT_LE(2_ns, 2_ns);
  EXPECT_GT(1_us, 999_ns);
  EXPECT_NE(1_ns, 1_ps);
  EXPECT_EQ(1000_ps, 1_ns);
  EXPECT_LT(Time::zero(), Time::max());
}

TEST(Time, ToString) {
  EXPECT_EQ(Time::zero().to_string(), "0s");
  EXPECT_EQ((5_ns).to_string(), "5ns");
  EXPECT_EQ((1500_ps).to_string(), "1500ps");
  EXPECT_EQ((3_us).to_string(), "3us");
}

TEST(Time, FloatingConversions) {
  EXPECT_DOUBLE_EQ((1500_ps).to_ns(), 1.5);
  EXPECT_DOUBLE_EQ((2500000_ps).to_us(), 2.5);
}

}  // namespace
}  // namespace hlcs::sim
