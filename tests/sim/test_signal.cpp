#include "hlcs/sim/signal.hpp"

#include <gtest/gtest.h>

#include <string>

#include "hlcs/sim/kernel.hpp"
#include "hlcs/sim/time.hpp"

namespace hlcs::sim {
namespace {

using namespace hlcs::sim::literals;

TEST(Signal, InitialValue) {
  Kernel k;
  Signal<int> s(k, "s", 42);
  EXPECT_EQ(s.read(), 42);
}

TEST(Signal, WriteVisibleNextDelta) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  int seen_same_delta = -1;
  int seen_next_delta = -1;
  k.spawn("p", [&]() -> Task {
    s.write(7);
    seen_same_delta = s.read();  // evaluate phase: old value still visible
    co_await k.wait_delta();
    seen_next_delta = s.read();
  });
  k.run();
  EXPECT_EQ(seen_same_delta, 0);
  EXPECT_EQ(seen_next_delta, 7);
}

TEST(Signal, ChangedEventFiresOnChange) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  int wakes = 0;
  k.spawn("w", [&]() -> Task {
    co_await s.changed();
    ++wakes;
    co_await s.changed();
    ++wakes;
  });
  k.spawn("d", [&]() -> Task {
    co_await k.wait(1_ns);
    s.write(1);
    co_await k.wait(1_ns);
    s.write(2);
    co_return;
  });
  k.run();
  EXPECT_EQ(wakes, 2);
}

TEST(Signal, NoChangeNoEvent) {
  Kernel k;
  Signal<int> s(k, "s", 5);
  bool woke = false;
  k.spawn("w", [&]() -> Task {
    co_await s.changed();
    woke = true;
  });
  k.spawn("d", [&]() -> Task {
    co_await k.wait(1_ns);
    s.write(5);  // same value: no event
    co_return;
  });
  k.run();
  EXPECT_FALSE(woke);
}

TEST(Signal, LastWriteInDeltaWins) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  k.spawn("p", [&]() -> Task {
    s.write(1);
    s.write(2);
    s.write(3);
    co_return;
  });
  k.run();
  EXPECT_EQ(s.read(), 3);
}

TEST(Signal, TwoReadersSeeConsistentValue) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  int r1 = -1, r2 = -1;
  k.spawn("w", [&]() -> Task {
    co_await k.wait(1_ns);
    s.write(9);
    co_return;
  });
  for (auto* out : {&r1, &r2}) {
    k.spawn("r", [&, out]() -> Task {
      co_await s.changed();
      *out = s.read();
    });
  }
  k.run();
  EXPECT_EQ(r1, 9);
  EXPECT_EQ(r2, 9);
}

TEST(Signal, BoolTraceRepr) {
  Kernel k;
  Signal<bool> s(k, "b", true);
  EXPECT_EQ(s.trace_value(), "1");
  EXPECT_EQ(s.trace_width(), 1u);
  EXPECT_EQ(s.trace_name(), "b");
}

TEST(Signal, LogicTraceRepr) {
  Kernel k;
  Signal<Logic> s(k, "l", Logic::Z);
  EXPECT_EQ(s.trace_value(), "z");
  EXPECT_EQ(s.trace_width(), 1u);
}

TEST(Signal, LogicVecTraceRepr) {
  Kernel k;
  Signal<LogicVec> s(k, "v", LogicVec::of(0x5, 4));
  EXPECT_EQ(s.trace_value(), "0101");
  EXPECT_EQ(s.trace_width(), 4u);
}

TEST(Signal, IntTraceReprWidth) {
  Kernel k;
  Signal<std::uint8_t> s(k, "u", 0xA5);
  EXPECT_EQ(s.trace_width(), 8u);
  EXPECT_EQ(s.trace_value(), "10100101");
}

TEST(Signal, PingPongBetweenProcesses) {
  Kernel k;
  Signal<int> req(k, "req", 0);
  Signal<int> ack(k, "ack", 0);
  int rounds = 0;
  k.spawn("client", [&]() -> Task {
    for (int i = 1; i <= 5; ++i) {
      req.write(i);
      co_await await_condition(ack.changed(), [&] { return ack.read() == i; });
      ++rounds;
    }
  });
  k.spawn("server", [&]() -> Task {
    for (;;) {
      co_await req.changed();
      ack.write(req.read());
    }
  });
  k.run_for(1_us);
  EXPECT_EQ(rounds, 5);
}

}  // namespace
}  // namespace hlcs::sim
