#include "hlcs/sim/logic.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace hlcs::sim {
namespace {

TEST(Logic, FromBool) {
  EXPECT_EQ(logic_from_bool(true), Logic::L1);
  EXPECT_EQ(logic_from_bool(false), Logic::L0);
}

TEST(Logic, Predicates) {
  EXPECT_TRUE(is_01(Logic::L0));
  EXPECT_TRUE(is_01(Logic::L1));
  EXPECT_FALSE(is_01(Logic::Z));
  EXPECT_FALSE(is_01(Logic::X));
  EXPECT_TRUE(is_one(Logic::L1));
  EXPECT_FALSE(is_one(Logic::Z));
  EXPECT_TRUE(is_zero(Logic::L0));
}

TEST(Logic, Not) {
  EXPECT_EQ(logic_not(Logic::L0), Logic::L1);
  EXPECT_EQ(logic_not(Logic::L1), Logic::L0);
  EXPECT_EQ(logic_not(Logic::Z), Logic::X);
  EXPECT_EQ(logic_not(Logic::X), Logic::X);
}

// Full wired-resolution truth table.
class LogicResolveTable
    : public ::testing::TestWithParam<std::tuple<Logic, Logic, Logic>> {};

TEST_P(LogicResolveTable, Resolve) {
  auto [a, b, expected] = GetParam();
  EXPECT_EQ(resolve(a, b), expected);
  EXPECT_EQ(resolve(b, a), expected) << "resolution must be commutative";
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, LogicResolveTable,
    ::testing::Values(
        std::make_tuple(Logic::L0, Logic::L0, Logic::L0),
        std::make_tuple(Logic::L0, Logic::L1, Logic::X),
        std::make_tuple(Logic::L0, Logic::Z, Logic::L0),
        std::make_tuple(Logic::L0, Logic::X, Logic::X),
        std::make_tuple(Logic::L1, Logic::L1, Logic::L1),
        std::make_tuple(Logic::L1, Logic::Z, Logic::L1),
        std::make_tuple(Logic::L1, Logic::X, Logic::X),
        std::make_tuple(Logic::Z, Logic::Z, Logic::Z),
        std::make_tuple(Logic::Z, Logic::X, Logic::X),
        std::make_tuple(Logic::X, Logic::X, Logic::X)));

TEST(LogicVec, DefaultIsZeroWidth) {
  LogicVec v;
  EXPECT_EQ(v.width(), 0u);
}

TEST(LogicVec, ConstructAllX) {
  LogicVec v(8);
  EXPECT_EQ(v.width(), 8u);
  EXPECT_TRUE(v.has_x());
  EXPECT_FALSE(v.is_fully_defined());
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(v.bit(i), Logic::X);
}

TEST(LogicVec, OfValue) {
  LogicVec v = LogicVec::of(0xA5, 8);
  EXPECT_TRUE(v.is_fully_defined());
  EXPECT_EQ(v.to_uint(), 0xA5u);
  EXPECT_EQ(v.bit(0), Logic::L1);
  EXPECT_EQ(v.bit(1), Logic::L0);
  EXPECT_EQ(v.bit(7), Logic::L1);
}

TEST(LogicVec, OfValueMasksHighBits) {
  LogicVec v = LogicVec::of(0x1FF, 8);
  EXPECT_EQ(v.to_uint(), 0xFFu);
}

TEST(LogicVec, Width64) {
  LogicVec v = LogicVec::of(~0ull, 64);
  EXPECT_EQ(v.to_uint(), ~0ull);
  EXPECT_EQ(v.width(), 64u);
}

TEST(LogicVec, AllZ) {
  LogicVec v = LogicVec::all_z(16);
  EXPECT_TRUE(v.is_all_z());
  EXPECT_FALSE(v.is_fully_defined());
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(v.bit(i), Logic::Z);
}

TEST(LogicVec, SetBit) {
  LogicVec v = LogicVec::of(0, 4);
  v.set_bit(2, Logic::L1);
  EXPECT_EQ(v.to_uint(), 4u);
  v.set_bit(2, Logic::Z);
  EXPECT_FALSE(v.is_fully_defined());
  EXPECT_EQ(v.bit(2), Logic::Z);
  v.set_bit(2, Logic::X);
  EXPECT_EQ(v.bit(2), Logic::X);
  v.set_bit(2, Logic::L0);
  EXPECT_EQ(v.to_uint(), 0u);
}

TEST(LogicVec, ResolveUndrivenYields) {
  LogicVec z = LogicVec::all_z(8);
  LogicVec d = LogicVec::of(0x3C, 8);
  EXPECT_EQ(z.resolved_with(d), d);
  EXPECT_EQ(d.resolved_with(z), d);
}

TEST(LogicVec, ResolveConflictIsX) {
  LogicVec a = LogicVec::of(0x0F, 8);
  LogicVec b = LogicVec::of(0xF0, 8);
  LogicVec r = a.resolved_with(b);
  EXPECT_TRUE(r.has_x());
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(r.bit(i), Logic::X);
}

TEST(LogicVec, ResolveAgreementKeepsValue) {
  LogicVec a = LogicVec::of(0xAA, 8);
  EXPECT_EQ(a.resolved_with(a).to_uint(), 0xAAu);
}

TEST(LogicVec, ResolvePartialDrive) {
  // Driver A drives low nibble, driver B drives high nibble.
  LogicVec a = LogicVec::all_z(8);
  for (unsigned i = 0; i < 4; ++i)
    a.set_bit(i, (0x5u >> i & 1) ? Logic::L1 : Logic::L0);
  LogicVec b = LogicVec::all_z(8);
  for (unsigned i = 4; i < 8; ++i)
    b.set_bit(i, (0xA0u >> i & 1) ? Logic::L1 : Logic::L0);
  LogicVec r = a.resolved_with(b);
  EXPECT_TRUE(r.is_fully_defined());
  EXPECT_EQ(r.to_uint(), 0xA5u);
}

TEST(LogicVec, ResolveXPropagates) {
  LogicVec a = LogicVec::all_x(8);
  LogicVec b = LogicVec::of(0x00, 8);
  EXPECT_TRUE(a.resolved_with(b).has_x());
}

TEST(LogicVec, ToUintLenient) {
  LogicVec v = LogicVec::of(0xFF, 8);
  v.set_bit(7, Logic::Z);
  v.set_bit(6, Logic::X);
  EXPECT_EQ(v.to_uint_lenient(), 0x3Fu);
}

TEST(LogicVec, ToUintThrowsOnUndefined) {
  LogicVec v = LogicVec::all_z(8);
  EXPECT_THROW(v.to_uint(), hlcs::Error);
}

TEST(LogicVec, ToString) {
  LogicVec v = LogicVec::of(0x5, 4);
  EXPECT_EQ(v.to_string(), "0101");
  v.set_bit(3, Logic::Z);
  v.set_bit(2, Logic::X);
  EXPECT_EQ(v.to_string(), "zx01");
}

TEST(LogicVec, BadWidthThrows) {
  EXPECT_THROW(LogicVec::of(0, 0), hlcs::Error);
  EXPECT_THROW(LogicVec::of(0, 65), hlcs::Error);
  EXPECT_THROW(LogicVec(70), hlcs::Error);
}

TEST(LogicVec, ResolveWidthMismatchThrows) {
  LogicVec a = LogicVec::of(0, 8);
  LogicVec b = LogicVec::of(0, 16);
  EXPECT_THROW(a.resolved_with(b), hlcs::Error);
}

// Property sweep: resolution against all-Z is identity, against itself is
// idempotent, and is commutative, across widths and patterns.
class LogicVecProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(LogicVecProperty, ResolutionLaws) {
  const unsigned width = GetParam();
  std::uint64_t patterns[] = {0ull, 1ull, 0x5555555555555555ull,
                              0xAAAAAAAAAAAAAAAAull, ~0ull};
  for (std::uint64_t pa : patterns) {
    LogicVec a = LogicVec::of(pa, width);
    EXPECT_EQ(a.resolved_with(LogicVec::all_z(width)), a);
    EXPECT_EQ(a.resolved_with(a), a);
    for (std::uint64_t pb : patterns) {
      LogicVec b = LogicVec::of(pb, width);
      EXPECT_EQ(a.resolved_with(b), b.resolved_with(a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LogicVecProperty,
                         ::testing::Values(1u, 4u, 8u, 32u, 63u, 64u));

}  // namespace
}  // namespace hlcs::sim
