// Tests aimed at the two-level (calendar ring + far-future heap) timed
// queue behind Kernel::wait / Event::notify(Time).  The queue is an
// internal detail; everything here is asserted through kernel-visible
// ordering, which is exactly what must not change.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hlcs/sim/sim.hpp"

namespace {

using namespace hlcs::sim;
using namespace hlcs::sim::literals;

TEST(TimedQueue, SameTimeEntriesFireInScheduleOrder) {
  // Entries scheduled for the same instant wake in scheduling (FIFO)
  // order, regardless of how many there are.
  Kernel k;
  std::string order;
  for (int i = 0; i < 10; ++i) {
    k.spawn("p" + std::to_string(i), [&k, &order, i]() -> Task {
      co_await k.wait(5_ns);
      order.push_back(static_cast<char>('0' + i));
    });
  }
  k.run();
  EXPECT_EQ(order, "0123456789");
  EXPECT_EQ(k.now(), 5_ns);
}

TEST(TimedQueue, FarFutureBeyondHorizonStillOrdered) {
  // The calendar ring covers 32768 ps; schedule across and far beyond it
  // so entries split between ring and heap, and check global ordering.
  Kernel k;
  std::vector<int> order;
  const Time waits[] = {1_us, 3_ns, 500_us, 40_ns, 100_us, 1_ns};
  for (int i = 0; i < 6; ++i) {
    const Time w = waits[i];
    k.spawn("p" + std::to_string(i), [&k, &order, i, w]() -> Task {
      co_await k.wait(w);
      order.push_back(i);
    });
  }
  k.run();
  EXPECT_EQ(order, (std::vector<int>{5, 1, 3, 0, 4, 2}));
  EXPECT_EQ(k.now(), 500_us);
}

TEST(TimedQueue, DisplacedFrontKeepsFifoAmongSameTimeEntries) {
  // A (scheduled first, t=100ps) holds the bypass-front slot; B joins
  // the calendar at the same instant; C (t=50ps) then displaces A out
  // of the front slot into the calendar.  A must still fire before B --
  // the displaced front predates every live same-time entry.
  Kernel k;
  std::string order;
  k.spawn("A", [&]() -> Task {
    co_await k.wait(100_ps);
    order.push_back('A');
  });
  k.spawn("B", [&]() -> Task {
    co_await k.wait(100_ps);
    order.push_back('B');
  });
  k.spawn("C", [&]() -> Task {
    co_await k.wait(50_ps);
    order.push_back('C');
  });
  k.run();
  EXPECT_EQ(order, "CAB");
  EXPECT_EQ(k.now(), 100_ps);
}

TEST(TimedQueue, RingAndHeapEntriesAtSameInstantKeepFifo) {
  // One process schedules a wake far in the future (heap path at push
  // time); later, another schedules the SAME instant from close range
  // (ring path).  The first scheduled must still wake first.
  Kernel k;
  std::string order;
  k.spawn("far", [&]() -> Task {
    co_await k.wait(100_us);  // >> horizon at schedule time
    order.push_back('F');
  });
  k.spawn("near", [&]() -> Task {
    co_await k.wait(Time::ps(100_us .picos() - 100));  // land 100 ps short
    co_await k.wait(Time::ps(100));                    // same instant, in-window
    order.push_back('N');
  });
  k.run();
  EXPECT_EQ(order, "FN");
  EXPECT_EQ(k.now().picos(), (100_us).picos());
}

TEST(TimedQueue, RepeatedHorizonCrossingsStayOrdered) {
  // A process hopping in steps larger than the ring horizon (32768 ps)
  // forces every wake through the far-future heap and repeated window
  // advances.
  Kernel k;
  int hops = 0;
  k.spawn("hop", [&]() -> Task {
    for (int i = 0; i < 50; ++i) {
      co_await k.wait(50_ns);  // 50000 ps > horizon
      ++hops;
    }
  });
  k.run();
  EXPECT_EQ(hops, 50);
  EXPECT_EQ(k.now(), Time::ps(50u * 50000u));
}

TEST(TimedQueue, MixedScalesStress) {
  // Many processes with co-prime periods from 1 ps to 1000 ns: exercises
  // bucket collisions, window slides, heap spills, and the bypass front
  // all at once.  Checked against an arithmetic model.
  Kernel k;
  const std::uint64_t periods[] = {1, 7, 31, 32, 33, 1024, 4096, 32768,
                                   33000, 1000000};
  std::uint64_t fired[std::size(periods)] = {};
  constexpr std::uint64_t kEnd = 3000000;  // 3 us in ps
  for (std::size_t i = 0; i < std::size(periods); ++i) {
    const std::uint64_t p = periods[i];
    k.spawn("p" + std::to_string(i), [&k, &fired, i, p]() -> Task {
      for (std::uint64_t t = p; t <= kEnd; t += p) {
        co_await k.wait(Time::ps(p));
        fired[i]++;
      }
    });
  }
  k.run();
  for (std::size_t i = 0; i < std::size(periods); ++i) {
    EXPECT_EQ(fired[i], kEnd / periods[i]) << "period " << periods[i];
  }
  EXPECT_EQ(k.now().picos(), kEnd);
}

TEST(TimedQueue, RunForBoundaryThenResumeLater) {
  // run_for(t) executes events AT the boundary but must not consume
  // entries beyond it; a later run() picks them up -- including entries
  // that sat in the far-future heap across the pause.
  Kernel k;
  std::string order;
  k.spawn("a", [&]() -> Task {
    co_await k.wait(10_ns);
    order.push_back('a');  // exactly at the first boundary
    co_await k.wait(100_us);
    order.push_back('b');  // far beyond it
  });
  k.run_for(10_ns);
  EXPECT_EQ(order, "a");
  EXPECT_EQ(k.now(), 10_ns);
  k.run();
  EXPECT_EQ(order, "ab");
}

TEST(TimedQueue, TimedPeakTracksSimultaneousEntries) {
  Kernel k;
  for (int i = 0; i < 8; ++i) {
    k.spawn("p" + std::to_string(i), [&k, i]() -> Task {
      co_await k.wait(Time::ns(static_cast<std::uint64_t>(i + 1)));
    });
  }
  k.run();
  EXPECT_EQ(k.stats().timed_peak, 8u);
  EXPECT_EQ(k.stats().timed_actions, 8u);
}

TEST(TimedQueue, SingleSleeperStatsUnchanged) {
  // The bypass-front fast path must be observationally identical to the
  // general path: one timed action and one delta per wake.
  Kernel k;
  constexpr int kWakes = 100;
  k.spawn("s", [&]() -> Task {
    for (int i = 0; i < kWakes; ++i) co_await k.wait(1_ns);
  });
  k.run();
  EXPECT_EQ(k.stats().timed_actions, static_cast<std::uint64_t>(kWakes));
  EXPECT_EQ(k.stats().resumes, static_cast<std::uint64_t>(kWakes) + 1);
  EXPECT_EQ(k.stats().deltas, static_cast<std::uint64_t>(kWakes) + 1);
  EXPECT_EQ(k.stats().timed_peak, 1u);
  EXPECT_EQ(k.now(), Time::ns(kWakes));
}

}  // namespace
