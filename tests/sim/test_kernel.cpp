#include "hlcs/sim/kernel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hlcs/sim/time.hpp"

namespace hlcs::sim {
namespace {

using namespace hlcs::sim::literals;

TEST(Kernel, StartsAtTimeZero) {
  Kernel k;
  EXPECT_EQ(k.now(), Time::zero());
  k.run();  // nothing scheduled: returns immediately
  EXPECT_EQ(k.now(), Time::zero());
}

TEST(Kernel, SpawnedProcessRunsAtTimeZero) {
  Kernel k;
  bool ran = false;
  k.spawn("p", [&]() -> Task {
    ran = true;
    co_return;
  });
  k.run();
  EXPECT_TRUE(ran);
}

TEST(Kernel, WaitAdvancesTime) {
  Kernel k;
  std::vector<std::uint64_t> stamps;
  k.spawn("p", [&]() -> Task {
    stamps.push_back(k.now().picos());
    co_await k.wait(10_ns);
    stamps.push_back(k.now().picos());
    co_await k.wait(5_ns);
    stamps.push_back(k.now().picos());
  });
  k.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 0u);
  EXPECT_EQ(stamps[1], 10000u);
  EXPECT_EQ(stamps[2], 15000u);
  EXPECT_EQ(k.now(), 15_ns);
}

TEST(Kernel, TwoProcessesInterleaveDeterministically) {
  Kernel k;
  std::string log;
  k.spawn("a", [&]() -> Task {
    log += 'a';
    co_await k.wait(2_ns);
    log += 'A';
  });
  k.spawn("b", [&]() -> Task {
    log += 'b';
    co_await k.wait(1_ns);
    log += 'B';
  });
  k.run();
  EXPECT_EQ(log, "abBA");
}

TEST(Kernel, SameTimeWakeupsFifoOrder) {
  Kernel k;
  std::string log;
  for (char c : {'1', '2', '3'}) {
    k.spawn(std::string(1, c), [&log, &k, c]() -> Task {
      co_await k.wait(5_ns);
      log += c;
    });
  }
  k.run();
  EXPECT_EQ(log, "123");
}

TEST(Kernel, EventImmediateNotify) {
  Kernel k;
  Event ev(k, "ev");
  std::string log;
  k.spawn("waiter", [&]() -> Task {
    co_await ev;
    log += 'w';
  });
  k.spawn("notifier", [&]() -> Task {
    log += 'n';
    ev.notify();
    co_return;
  });
  k.run();
  EXPECT_EQ(log, "nw");
  EXPECT_EQ(k.now(), Time::zero());
}

TEST(Kernel, EventTimedNotify) {
  Kernel k;
  Event ev(k, "ev");
  Time woke = Time::zero();
  k.spawn("waiter", [&]() -> Task {
    co_await ev;
    woke = k.now();
  });
  k.spawn("notifier", [&]() -> Task {
    ev.notify(7_ns);
    co_return;
  });
  k.run();
  EXPECT_EQ(woke, 7_ns);
}

TEST(Kernel, EventDeltaNotifyStaysAtSameTime) {
  Kernel k;
  Event ev(k, "ev");
  std::uint64_t deltas_at_wake = 0;
  Time woke = 1_us;
  k.spawn("waiter", [&]() -> Task {
    co_await ev;
    woke = k.now();
    deltas_at_wake = k.stats().deltas;
  });
  k.spawn("notifier", [&]() -> Task {
    ev.notify_delta();
    co_return;
  });
  k.run();
  EXPECT_EQ(woke, Time::zero());
  EXPECT_GE(deltas_at_wake, 1u);
}

TEST(Kernel, EventNotifyWithNoWaitersIsHarmless) {
  Kernel k;
  Event ev(k, "ev");
  k.spawn("p", [&]() -> Task {
    ev.notify();
    ev.notify_delta();
    ev.notify(1_ns);
    co_return;
  });
  k.run();
  EXPECT_EQ(k.now(), 1_ns);
}

TEST(Kernel, MultipleWaitersAllWake) {
  Kernel k;
  Event ev(k, "ev");
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    k.spawn("w" + std::to_string(i), [&]() -> Task {
      co_await ev;
      ++woke;
    });
  }
  k.spawn("n", [&]() -> Task {
    co_await k.wait(1_ns);
    ev.notify();
    co_return;
  });
  k.run();
  EXPECT_EQ(woke, 5);
}

TEST(Kernel, WaitersAreOneShot) {
  Kernel k;
  Event ev(k, "ev");
  int wakes = 0;
  k.spawn("w", [&]() -> Task {
    co_await ev;
    ++wakes;
    // Does not wait again; a second notify must not wake it.
  });
  k.spawn("n", [&]() -> Task {
    co_await k.wait(1_ns);
    ev.notify();
    co_await k.wait(1_ns);
    ev.notify();
    co_return;
  });
  k.run();
  EXPECT_EQ(wakes, 1);
}

TEST(Kernel, NestedTaskCompletesBeforeParentContinues) {
  Kernel k;
  std::string log;
  auto child = [&]() -> Task {
    log += 'c';
    co_await k.wait(3_ns);
    log += 'C';
  };
  k.spawn("parent", [&, child]() -> Task {
    log += 'p';
    co_await child();
    log += 'P';
  });
  k.run();
  EXPECT_EQ(log, "pcCP");
  EXPECT_EQ(k.now(), 3_ns);
}

TEST(Kernel, DeeplyNestedTasks) {
  Kernel k;
  int depth_reached = 0;
  std::function<Task(int)> rec = [&](int d) -> Task {
    if (d == 0) {
      depth_reached = 1;
      co_return;
    }
    co_await k.wait(1_ps);
    co_await rec(d - 1);
  };
  k.spawn("root", [&]() -> Task { co_await rec(50); });
  k.run();
  EXPECT_EQ(depth_reached, 1);
  EXPECT_EQ(k.now(), 50_ps);
}

TEST(Kernel, ExceptionInRootProcessSurfacesFromRun) {
  Kernel k;
  k.spawn("bad", [&]() -> Task {
    co_await k.wait(1_ns);
    throw hlcs::Error("boom");
  });
  EXPECT_THROW(k.run(), hlcs::Error);
}

TEST(Kernel, ExceptionPropagatesThroughNestedTask) {
  Kernel k;
  bool caught = false;
  auto child = [&]() -> Task {
    co_await k.wait(1_ns);
    throw hlcs::Error("inner");
  };
  k.spawn("parent", [&, child]() -> Task {
    try {
      co_await child();
    } catch (const hlcs::Error&) {
      caught = true;
    }
  });
  k.run();
  EXPECT_TRUE(caught);
}

TEST(Kernel, RunForLimitsTime) {
  Kernel k;
  int ticks = 0;
  k.spawn("ticker", [&]() -> Task {
    for (;;) {
      co_await k.wait(10_ns);
      ++ticks;
    }
  });
  k.run_for(35_ns);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(k.now(), 35_ns);
  k.run_for(10_ns);  // continues: boundary event at 40ns fires
  EXPECT_EQ(ticks, 4);
}

TEST(Kernel, RunUntilIncludesBoundary) {
  Kernel k;
  bool fired = false;
  k.spawn("p", [&]() -> Task {
    co_await k.wait(10_ns);
    fired = true;
  });
  k.run_until(10_ns);
  EXPECT_TRUE(fired);
}

TEST(Kernel, StopHaltsRun) {
  Kernel k;
  int ticks = 0;
  k.spawn("ticker", [&]() -> Task {
    for (;;) {
      co_await k.wait(1_ns);
      if (++ticks == 5) k.stop();
    }
  });
  k.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(k.now(), 5_ns);
}

TEST(Kernel, MethodProcessInitialTrigger) {
  Kernel k;
  int runs = 0;
  k.method("m", [&] { ++runs; });
  k.run();
  EXPECT_EQ(runs, 1);
}

TEST(Kernel, MethodProcessStaticSensitivity) {
  Kernel k;
  Event ev(k, "ev");
  int runs = 0;
  MethodProcess& m = k.method("m", [&] { ++runs; }, /*initial_trigger=*/false);
  ev.add_static(m);
  k.spawn("n", [&]() -> Task {
    co_await k.wait(1_ns);
    ev.notify();
    co_await k.wait(1_ns);
    ev.notify();
    co_return;
  });
  k.run();
  EXPECT_EQ(runs, 2) << "static sensitivity is persistent";
}

TEST(Kernel, MethodQueueDeduplicatesWithinPhase) {
  Kernel k;
  Event a(k, "a"), b(k, "b");
  int runs = 0;
  MethodProcess& m = k.method("m", [&] { ++runs; }, false);
  a.add_static(m);
  b.add_static(m);
  k.spawn("n", [&]() -> Task {
    a.notify();  // both notifications land in the same evaluation phase
    b.notify();
    co_return;
  });
  k.run();
  EXPECT_EQ(runs, 1);
}

TEST(Kernel, AwaitConditionHelper) {
  Kernel k;
  Event ev(k, "ev");
  int x = 0;
  Time done = Time::zero();
  k.spawn("waiter", [&]() -> Task {
    co_await await_condition(ev, [&] { return x >= 3; });
    done = k.now();
  });
  k.spawn("driver", [&]() -> Task {
    for (int i = 0; i < 5; ++i) {
      co_await k.wait(1_ns);
      ++x;
      ev.notify();
    }
  });
  k.run();
  EXPECT_EQ(done, 3_ns);
}

TEST(Kernel, WaitDelta) {
  Kernel k;
  int phase = 0;
  k.spawn("p", [&]() -> Task {
    phase = 1;
    co_await k.wait_delta();
    phase = 2;
    co_await k.wait_delta();
    phase = 3;
  });
  k.run();
  EXPECT_EQ(phase, 3);
  EXPECT_EQ(k.now(), Time::zero());
  EXPECT_GE(k.stats().deltas, 2u);
}

TEST(Kernel, StatsAccumulate) {
  Kernel k;
  k.spawn("p", [&]() -> Task {
    for (int i = 0; i < 10; ++i) co_await k.wait(1_ns);
  });
  k.run();
  EXPECT_GE(k.stats().resumes, 10u);
  EXPECT_GE(k.stats().timed_actions, 10u);
  EXPECT_GE(k.stats().deltas, 10u);
}

TEST(Kernel, ManyProcessesStress) {
  Kernel k;
  constexpr int kProcs = 200;
  int finished = 0;
  for (int i = 0; i < kProcs; ++i) {
    k.spawn("p" + std::to_string(i), [&k, &finished, i]() -> Task {
      for (int j = 0; j < 20; ++j) co_await k.wait(Time::ps(1 + i % 7));
      ++finished;
    });
  }
  k.run();
  EXPECT_EQ(finished, kProcs);
}

TEST(Kernel, SpawnDuringRun) {
  Kernel k;
  bool child_ran = false;
  k.spawn("parent", [&]() -> Task {
    co_await k.wait(1_ns);
    k.spawn("child", [&]() -> Task {
      child_ran = true;
      co_return;
    });
  });
  k.run();
  EXPECT_TRUE(child_ran);
}

}  // namespace
}  // namespace hlcs::sim
