// ShardEngine and Link: conservative-lookahead windows, staged message
// delivery, and the determinism contract -- observable behaviour must be
// bit-identical at every shard and thread count, including the serial
// reference (everything on one kernel).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"

namespace hlcs::sim {
namespace {

using namespace hlcs::sim::literals;

struct IntMsg {
  int value;
};

/// Sends `count` messages on a fixed schedule; logs each send.
class Producer : public Module {
public:
  Producer(Kernel& k, std::string name, Link<IntMsg>& out, int count,
           Time period)
      : Module(k, std::move(name)), out_(out), count_(count), period_(period) {
    spawn("main", [this]() { return run(); });
  }

private:
  Task run() {
    for (int i = 0; i < count_; ++i) {
      co_await kernel().wait(period_);
      out_.send(IntMsg{i});
    }
  }

  Link<IntMsg>& out_;
  int count_;
  Time period_;
};

/// Receives everything and logs (time, value) pairs.
class Consumer : public Module {
public:
  Consumer(Kernel& k, std::string name, Link<IntMsg>& in)
      : Module(k, std::move(name)), in_(in) {
    spawn("main", [this]() { return run(); });
  }

  const std::string& log() const { return log_; }

private:
  Task run() {
    for (;;) {
      while (!in_.ready()) co_await in_.arrival();
      const IntMsg m = in_.pop();
      std::ostringstream os;
      os << kernel().now().picos() << ":" << m.value << ";";
      log_ += os.str();
    }
  }

  Link<IntMsg>& in_;
  std::string log_;
};

TEST(Link, DeliversAtExactLatency) {
  Kernel a, b;
  Link<IntMsg> link(a, b, "ab", 100_ns);
  Producer prod(a, "prod", link, 3, 50_ns);
  Consumer cons(b, "cons", link);
  ShardEngine eng({&a, &b}, {&link});
  eng.run_for(1_us);
  // Sends at 50/100/150 ns arrive at 150/200/250 ns.
  EXPECT_EQ(cons.log(), "150000:0;200000:1;250000:2;");
  EXPECT_EQ(link.sent(), 3u);
  EXPECT_EQ(link.delivered(), 3u);
}

TEST(Link, IntraKernelBehavesLikeCrossKernel) {
  // The same model split two ways must produce the same consumer log --
  // this is what makes partitions interchangeable.
  std::string logs[2];
  for (int split = 0; split < 2; ++split) {
    Kernel a;
    Kernel b;
    Kernel& dst = split ? b : a;
    Link<IntMsg> link(a, dst, "l", 70_ns);
    Producer prod(a, "prod", link, 5, 30_ns);
    Consumer cons(dst, "cons", link);
    std::vector<Kernel*> shards = {&a};
    if (split) shards.push_back(&b);
    ShardEngine eng(std::move(shards), {&link});
    eng.run_for(1_us);
    logs[split] = cons.log();
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_FALSE(logs[0].empty());
}

TEST(Link, RejectsZeroLatency) {
  Kernel a, b;
  EXPECT_THROW(Link<IntMsg>(a, b, "bad", Time::zero()), Error);
}

TEST(ShardEngine, WindowDefaultsToMinLinkLatency) {
  Kernel a, b;
  Link<IntMsg> l1(a, b, "l1", 100_ns);
  Link<IntMsg> l2(b, a, "l2", 40_ns);
  ShardEngine eng({&a, &b}, {&l1, &l2});
  EXPECT_EQ(eng.window(), 40_ns);
}

TEST(ShardEngine, RejectsWindowWiderThanLookahead) {
  Kernel a, b;
  Link<IntMsg> l(a, b, "l", 40_ns);
  ShardEngine::Options opt;
  opt.window = 50_ns;
  EXPECT_THROW(ShardEngine({&a, &b}, {&l}, opt), Error);
}

TEST(ShardEngine, RejectsForeignLinkEndpoints) {
  Kernel a, b, c;
  Link<IntMsg> l(a, c, "l", 40_ns);
  EXPECT_THROW(ShardEngine({&a, &b}, {&l}), Error);
}

TEST(ShardEngine, ThreadCountIsCappedAtShardCount) {
  Kernel a, b;
  Link<IntMsg> l(a, b, "l", 40_ns);
  ShardEngine::Options opt;
  opt.threads = 16;
  ShardEngine eng({&a, &b}, {&l}, opt);
  EXPECT_EQ(eng.threads(), 2u);
}

TEST(ShardEngine, IncrementalRunMatchesOneShot) {
  std::string logs[2];
  for (int mode = 0; mode < 2; ++mode) {
    Kernel a, b;
    Link<IntMsg> link(a, b, "ab", 100_ns);
    Producer prod(a, "prod", link, 6, 90_ns);
    Consumer cons(b, "cons", link);
    ShardEngine eng({&a, &b}, {&link});
    if (mode == 0) {
      eng.run_for(2_us);
    } else {
      for (int i = 0; i < 8; ++i) eng.run_for(250_ns);
    }
    EXPECT_EQ(eng.now(), 2_us);
    logs[mode] = cons.log();
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_FALSE(logs[0].empty());
}

TEST(ShardEngine, CountsWindowsAndMessages) {
  Kernel a, b;
  Link<IntMsg> link(a, b, "ab", 100_ns);
  Producer prod(a, "prod", link, 4, 80_ns);
  Consumer cons(b, "cons", link);
  ShardEngine eng({&a, &b}, {&link});
  eng.run_for(1_us);
  EXPECT_GT(eng.windows_run(), 0u);
  const std::vector<ShardStats>& st = eng.stats();
  ASSERT_EQ(st.size(), 2u);
  EXPECT_EQ(st[0].msgs_sent, 4u);
  EXPECT_EQ(st[0].msgs_received, 0u);
  EXPECT_EQ(st[1].msgs_sent, 0u);
  EXPECT_EQ(st[1].msgs_received, 4u);
  EXPECT_GT(st[0].kernel.timed_actions, 0u);
  // The consumer-only shard does nothing after the last delivery: its
  // stall counter must move while the producer keeps scheduling.
  EXPECT_GE(st[1].stalled_windows, 0u);
}

TEST(ShardEngine, PropagatesShardExceptions) {
  Kernel a, b;
  Link<IntMsg> link(a, b, "ab", 50_ns);
  a.spawn("boom", [&a]() -> Task {
    co_await a.wait(120_ns);
    fail("deliberate shard failure");
  });
  ShardEngine eng({&a, &b}, {&link});
  EXPECT_THROW(eng.run_for(1_us), Error);
}

// --------------------------------------------------------------------
// Determinism gates on a real system: the PCI test system of
// examples/pci_system run under the engine must match a plain kernel.

std::string run_pci_system(bool under_engine) {
  Kernel k;
  Clock clk(k, "clk", 30_ns);
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arbiter(k, "arb", bus);
  pci::PciMonitor monitor(k, "mon", bus);
  pci::PciTarget target(k, "target", bus,
                        pci::TargetConfig{.base = 0x40000000,
                                          .size = 0x1000,
                                          .devsel = pci::DevselSpeed::Medium,
                                          .initial_wait = 1,
                                          .per_word_wait = 1});
  pattern::PciBusInterface iface(k, "iface", bus, arbiter);
  std::vector<pattern::CommandType> workload = {
      {.op = pattern::BusOp::Write, .addr = 0x40000010, .data = {0xCAFEBABE}},
      {.op = pattern::BusOp::Read, .addr = 0x40000010, .count = 1},
      {.op = pattern::BusOp::WriteBurst,
       .addr = 0x40000100,
       .data = {0x11, 0x22, 0x33, 0x44}},
      {.op = pattern::BusOp::ReadBurst, .addr = 0x40000100, .count = 4},
  };
  pattern::Application app(k, "app", iface, workload);
  if (under_engine) {
    ShardEngine eng({&k}, {});
    eng.run_for(100_us);
  } else {
    k.run_for(100_us);
  }
  EXPECT_TRUE(app.done());
  EXPECT_TRUE(monitor.violations().empty());
  return app.transcript().to_string();
}

TEST(ShardEngine, PciSystemMatchesPlainKernel) {
  const std::string plain = run_pci_system(false);
  const std::string sharded = run_pci_system(true);
  EXPECT_EQ(plain, sharded);
  EXPECT_FALSE(plain.empty());
}

// Two PCI systems coupled by a message ping-pong, split across shards
// and driven by 1 and 2 threads: consumer logs must be identical.
std::string run_coupled(std::size_t shards, unsigned threads) {
  Kernel k1;
  Kernel k2_storage;
  Kernel& k2 = shards == 2 ? k2_storage : k1;
  Link<IntMsg> fwd(k1, k2, "fwd", 90_ns);
  Link<IntMsg> bwd(k2, k1, "bwd", 90_ns);
  Producer prod(k1, "prod", fwd, 8, 60_ns);
  // An echo stage: every received value goes back incremented.
  k2.spawn("echo", [&]() -> Task {
    for (;;) {
      while (!fwd.ready()) co_await fwd.arrival();
      IntMsg m = fwd.pop();
      bwd.send(IntMsg{m.value + 100});
    }
  });
  Consumer cons(k1, "cons", bwd);
  std::vector<Kernel*> ks = {&k1};
  if (shards == 2) ks.push_back(&k2_storage);
  ShardEngine::Options opt;
  opt.threads = threads;
  ShardEngine eng(std::move(ks), {&fwd, &bwd}, opt);
  eng.run_for(3_us);
  return cons.log();
}

TEST(ShardEngine, CoupledSystemIdenticalAcrossShardsAndThreads) {
  const std::string ref = run_coupled(1, 1);
  EXPECT_FALSE(ref.empty());
  EXPECT_EQ(run_coupled(2, 1), ref);
  EXPECT_EQ(run_coupled(2, 2), ref);
}

}  // namespace
}  // namespace hlcs::sim
