// ParallelSweep: N independent kernels across a thread pool must give
// results bit-identical to a serial loop -- transcripts, stats, and end
// times -- because every sweep point owns a private deterministic
// kernel.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "hlcs/osss/osss.hpp"
#include "hlcs/sim/sim.hpp"

namespace {

using namespace hlcs;
using namespace hlcs::sim::literals;

/// A contention scenario whose schedule depends on the sweep index.
void scenario(std::size_t index, sim::Kernel& k, std::string& transcript) {
  const int clients = static_cast<int>(index % 5) + 1;
  sim::Clock clk(k, "clk", 10_ns);
  osss::SharedObject<std::uint64_t> obj(
      k, "obj", clk, osss::make_policy(osss::PolicyKind::RoundRobin), 0);
  auto* tr = &transcript;
  for (int c = 0; c < clients; ++c) {
    auto client = obj.make_client("c" + std::to_string(c));
    k.spawn("p" + std::to_string(c), [&k, client, c, tr]() -> sim::Task {
      for (;;) {
        co_await client.call([c, tr](std::uint64_t& v) {
          ++v;
          tr->push_back(static_cast<char>('a' + c));
        });
      }
    });
  }
  k.run_for(sim::Time::ns(10 * (20 + index)));
}

TEST(ParallelSweep, SerialAndThreadedBitIdentical) {
  sim::ParallelSweep sweep(scenario);
  const std::size_t kPoints = 12;
  auto serial = sweep.run(kPoints, 1);
  auto threaded = sweep.run(kPoints, 4);
  ASSERT_EQ(serial.size(), kPoints);
  ASSERT_EQ(threaded.size(), kPoints);
  for (std::size_t i = 0; i < kPoints; ++i) {
    EXPECT_EQ(serial[i].index, i);
    EXPECT_EQ(threaded[i].index, i);
    EXPECT_EQ(serial[i].transcript, threaded[i].transcript) << "point " << i;
    EXPECT_TRUE(serial[i].stats == threaded[i].stats) << "point " << i;
    EXPECT_EQ(serial[i].end_time, threaded[i].end_time) << "point " << i;
    EXPECT_FALSE(serial[i].transcript.empty());
  }
}

TEST(ParallelSweep, DefaultThreadCountMatchesSerial) {
  sim::ParallelSweep sweep(scenario);
  auto serial = sweep.run(6, 1);
  auto pooled = sweep.run(6, 0);  // hardware concurrency
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(serial[i].transcript, pooled[i].transcript);
  }
}

TEST(ParallelSweep, ZeroPointsIsEmpty) {
  sim::ParallelSweep sweep(scenario);
  EXPECT_TRUE(sweep.run(0, 4).empty());
}

TEST(ParallelSweep, ScenarioExceptionPropagates) {
  std::atomic<int> completed{0};
  sim::ParallelSweep sweep(
      [&](std::size_t i, sim::Kernel& k, std::string& transcript) {
        if (i == 3) throw std::runtime_error("sweep point exploded");
        k.spawn("p", [&k]() -> sim::Task { co_await k.wait(1_ns); });
        k.run();
        transcript = "ok";
        completed.fetch_add(1, std::memory_order_relaxed);
      });
  EXPECT_THROW(sweep.run(8, 4), std::runtime_error);
  // All non-throwing points still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 7);
}

TEST(ParallelSweep, MoreThreadsThanPointsIsFine) {
  sim::ParallelSweep sweep(scenario);
  auto r = sweep.run(2, 16);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_FALSE(r[0].transcript.empty());
}

}  // namespace
