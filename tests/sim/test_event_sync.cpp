// Regression tests for the documented lost-notification rule and the
// sync() opening-handshake helper.
//
// notify() when nothing waits is a no-op BY DESIGN (no latching): a
// process that registers its wait later must not observe an earlier
// notification.  sync() is the sanctioned way to open a handshake whose
// peer registers in the same phase -- it defers the trigger by one delta,
// giving every process spawned or woken in the current phase a chance to
// reach its co_await first.
#include <gtest/gtest.h>

#include <string>

#include "hlcs/sim/sim.hpp"

namespace {

using namespace hlcs::sim;
using namespace hlcs::sim::literals;

TEST(EventSync, NotifyBeforeAnyWaiterIsANoOp) {
  Kernel k;
  Event ev(k, "ev");
  bool woke = false;
  k.spawn("early", [&]() -> Task {
    // Fires before anyone waits: must be dropped, not latched.
    ev.notify();
    co_return;
  });
  k.spawn("late", [&]() -> Task {
    co_await k.wait(1_ns);
    // Waits only now; the earlier notify must not satisfy this wait.
    co_await ev;
    woke = true;
  });
  k.run_for(10_ns);
  EXPECT_FALSE(woke);
  // The dropped notification still counts as a trigger (observability).
  EXPECT_EQ(k.stats().events_triggered, 1u);
}

TEST(EventSync, NotifyWithNoWaiterLeavesNoWaiters) {
  Kernel k;
  Event ev(k, "ev");
  EXPECT_FALSE(ev.has_waiters());
  ev.notify();
  EXPECT_FALSE(ev.has_waiters());
}

TEST(EventSync, PlainNotifyLosesRaceAgainstLaterSpawn) {
  // Spawn order: the notifier runs before the waiter has registered, so
  // a plain notify() is lost and the waiter stalls forever.
  Kernel k;
  Event ev(k, "ev");
  bool woke = false;
  k.spawn("a", [&]() -> Task {
    ev.notify();
    co_return;
  });
  k.spawn("b", [&]() -> Task {
    co_await ev;
    woke = true;
  });
  k.run_for(100_ns);
  EXPECT_FALSE(woke);
}

TEST(EventSync, SyncSurvivesTheSameRace) {
  // Identical spawn order, but sync() defers the trigger one delta, so
  // "b" registers its wait before the event fires.
  Kernel k;
  Event ev(k, "ev");
  bool woke = false;
  k.spawn("a", [&]() -> Task {
    ev.sync();
    co_return;
  });
  k.spawn("b", [&]() -> Task {
    co_await ev;
    woke = true;
  });
  k.run_for(100_ns);
  EXPECT_TRUE(woke);
}

TEST(EventSync, SyncOpensPingPongRegardlessOfSpawnOrder) {
  // Ping-pong where the OPENER spawns first (the order that loses the
  // first notification with plain notify()).
  Kernel k;
  Event ping(k, "ping"), pong(k, "pong");
  int rounds_done = 0;
  constexpr int kRounds = 5;
  k.spawn("a", [&]() -> Task {
    ping.sync();  // opening handshake
    for (int i = 0; i < kRounds; ++i) {
      co_await pong;
      ++rounds_done;
      if (i + 1 < kRounds) ping.notify();
    }
  });
  k.spawn("b", [&]() -> Task {
    for (int i = 0; i < kRounds; ++i) {
      co_await ping;
      pong.notify();
    }
  });
  k.run_for(100_ns);
  EXPECT_EQ(rounds_done, kRounds);
}

TEST(EventSync, InlineWaiterOverflowWakesEveryoneInOrder) {
  // More simultaneous waiters than the inline slots: the overflow path
  // must wake all of them, preserving registration (FIFO) order.
  Kernel k;
  Event ev(k, "ev");
  std::string order;
  constexpr int kWaiters = 7;  // > kInlineWaiters (4)
  for (int i = 0; i < kWaiters; ++i) {
    k.spawn("w" + std::to_string(i), [&k, &ev, &order, i]() -> Task {
      co_await ev;
      order.push_back(static_cast<char>('0' + i));
    });
  }
  k.spawn("n", [&]() -> Task {
    co_await k.wait(1_ns);
    ev.notify();
    co_return;
  });
  k.run_for(10_ns);
  EXPECT_EQ(order, "0123456");
  EXPECT_FALSE(ev.has_waiters());
}

TEST(EventSync, WaiterReallocsCountedOnOverflowGrowth) {
  Kernel k;
  Event ev(k, "ev");
  constexpr int kWaiters = 12;
  int woke = 0;
  for (int i = 0; i < kWaiters; ++i) {
    k.spawn("w" + std::to_string(i), [&k, &ev, &woke]() -> Task {
      co_await ev;
      ++woke;
    });
  }
  k.spawn("n", [&]() -> Task {
    co_await k.wait(1_ns);
    ev.notify();
    co_return;
  });
  k.run_for(10_ns);
  EXPECT_EQ(woke, kWaiters);
  // 8 waiters spilled past the 4 inline slots; the overflow vector grew
  // from zero capacity at least once.
  EXPECT_GE(k.stats().waiter_reallocs, 1u);
}

}  // namespace
