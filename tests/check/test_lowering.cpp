// RTL lowering consistency: randomized traces replayed through the
// behavioural automaton (tree-walk over the property arena) and through
// the lowered netlist in NetlistSim -- in every settle mode -- must give
// bit-identical attempt/pass/fail/vacuous verdicts on every edge,
// including random disable pulses that cancel in-flight attempts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hlcs/check/check.hpp"
#include "hlcs/sim/random.hpp"
#include "hlcs/synth/batch_tape.hpp"
#include "hlcs/synth/verilog.hpp"

namespace hlcs::check {
namespace {

/// Every sequence kind, the temporal sugar, and a spread of widths/ops.
Spec kitchen_sink() {
  Spec s("sink");
  E a = s.signal("a");
  E b = s.signal("b");
  E v = s.signal("v", 8);
  E w = s.signal("w", 8);
  s.prop("imp", a, b);
  s.prop("del3", s.rose(a), s.delay(3, b || s.fell(a)));
  s.prop("until_q", a, s.until(b, v == w));
  s.prop("event4", s.stable(v), s.eventually_within(4, b));
  s.prop("cmp", v != w, (v < w) || (v > w));
  s.prop("past3", a, s.past(b, 3));
  s.always("mux_pick", s.mux(a, v, w) == s.mux(!a, w, v));
  s.prop("parity", a,
         s.red_xor(s.concat(v, w)) == (s.red_xor(v) ^ s.red_xor(w)));
  return s;
}

/// Drive the lowered netlist the way NetlistMonitor does: inputs + rst,
/// settle, read verdicts, clock_edge.
struct NlDriver {
  synth::Netlist nl;
  synth::NetlistSim sim;
  synth::NetId rst;
  std::vector<synth::NetId> sigs;
  struct Outs {
    synth::NetId attempt, vacuous, pass, fail;
  };
  std::vector<Outs> outs;

  NlDriver(const Automaton& a, synth::SettleMode mode)
      : nl(lower(a)), sim(nl, mode), rst(nl.find("rst")) {
    for (const SignalDecl& sd : a.signals) sigs.push_back(nl.find(sd.name));
    for (const PropertyAutomaton& p : a.props) {
      outs.push_back(Outs{nl.find(p.name + "_attempt"),
                          nl.find(p.name + "_vacuous"),
                          nl.find(p.name + "_pass"),
                          nl.find(p.name + "_fail")});
    }
  }

  void step(const std::vector<std::uint64_t>& samples, bool disabled,
            std::vector<AutomatonEval::Verdict>& v) {
    for (std::size_t i = 0; i < sigs.size(); ++i) {
      sim.set_input(sigs[i], samples[i]);
    }
    sim.set_input(rst, disabled ? 1 : 0);
    sim.settle();
    v.resize(outs.size());
    for (std::size_t i = 0; i < outs.size(); ++i) {
      v[i] = AutomatonEval::Verdict{sim.get(outs[i].attempt),
                                    sim.get(outs[i].pass),
                                    sim.get(outs[i].fail),
                                    sim.get(outs[i].vacuous)};
    }
    sim.clock_edge();
  }
};

void run_lockstep(const Automaton& a, synth::SettleMode mode,
                  std::uint64_t seed, int edges) {
  AutomatonEval ev(a);
  NlDriver nld(a, mode);
  sim::Xorshift rng(seed);
  std::vector<std::uint64_t> samples(a.signals.size());
  std::vector<AutomatonEval::Verdict> vb, vn;
  std::uint64_t resolved = 0;
  for (int t = 0; t < edges; ++t) {
    samples[0] = rng.chance(1, 2);                  // a
    samples[1] = rng.chance(1, 2);                  // b
    // Mostly small values so v==w / stable(v) actually happen, with
    // occasional full-width bytes to exercise the parity logic.
    samples[2] = rng.chance(1, 4) ? (rng.next() & 0xFF) : rng.below(4);
    samples[3] = rng.chance(1, 4) ? (rng.next() & 0xFF) : rng.below(4);
    const bool disabled = rng.chance(1, 16);
    ev.step(samples, disabled, vb);
    nld.step(samples, disabled, vn);
    ASSERT_EQ(vb.size(), vn.size());
    for (std::size_t i = 0; i < vb.size(); ++i) {
      ASSERT_EQ(vb[i].attempt, vn[i].attempt)
          << to_string(mode) << " seed " << seed << " edge " << t << " prop "
          << a.props[i].name;
      ASSERT_EQ(vb[i].pass, vn[i].pass)
          << to_string(mode) << " seed " << seed << " edge " << t << " prop "
          << a.props[i].name;
      ASSERT_EQ(vb[i].fail, vn[i].fail)
          << to_string(mode) << " seed " << seed << " edge " << t << " prop "
          << a.props[i].name;
      ASSERT_EQ(vb[i].vacuous, vn[i].vacuous)
          << to_string(mode) << " seed " << seed << " edge " << t << " prop "
          << a.props[i].name;
      resolved += vb[i].pass + vb[i].fail;
    }
  }
  // The trace must actually exercise the automata.
  EXPECT_GT(resolved, 0u);
}

TEST(CheckLowering, LockstepIncremental) {
  const Automaton a = compile(kitchen_sink());
  run_lockstep(a, synth::SettleMode::Incremental, 1, 1500);
}

TEST(CheckLowering, LockstepFullTape) {
  const Automaton a = compile(kitchen_sink());
  run_lockstep(a, synth::SettleMode::FullTape, 2, 1500);
}

TEST(CheckLowering, LockstepTreeWalk) {
  const Automaton a = compile(kitchen_sink());
  run_lockstep(a, synth::SettleMode::TreeWalk, 3, 1500);
}

TEST(CheckLowering, LockstepManySeeds) {
  const Automaton a = compile(kitchen_sink());
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    run_lockstep(a, synth::SettleMode::Incremental, seed, 400);
  }
}

TEST(CheckLowering, BatchedLockstep64Lanes) {
  // The same behavioural-vs-RT lock-step, but 64 independently seeded
  // stimulus lanes at once on the bit-parallel engine: every lane's
  // verdict nets must match its own behavioural monitor on every edge.
  const Automaton a = compile(kitchen_sink());
  const synth::Netlist nl = lower(a);
  synth::BatchNetlistSim sim(nl);
  constexpr std::size_t kLanes = synth::BatchNetlistSim::kLanes;

  const synth::NetId rst = nl.find("rst");
  std::vector<synth::NetId> sigs;
  for (const SignalDecl& sd : a.signals) sigs.push_back(nl.find(sd.name));
  struct Outs {
    synth::NetId attempt, vacuous, pass, fail;
  };
  std::vector<Outs> outs;
  for (const PropertyAutomaton& p : a.props) {
    outs.push_back(Outs{nl.find(p.name + "_attempt"),
                        nl.find(p.name + "_vacuous"),
                        nl.find(p.name + "_pass"),
                        nl.find(p.name + "_fail")});
  }

  std::vector<AutomatonEval> evs;
  std::vector<sim::Xorshift> rngs;
  evs.reserve(kLanes);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    evs.emplace_back(a);
    rngs.emplace_back(sim::lane_seed(0xC4EC, lane));
  }
  std::vector<std::vector<std::uint64_t>> samples(
      kLanes, std::vector<std::uint64_t>(a.signals.size()));
  std::vector<std::uint8_t> disabled(kLanes);
  std::vector<AutomatonEval::Verdict> vb;
  std::uint64_t resolved = 0;

  for (int t = 0; t < 300; ++t) {
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      auto& rng = rngs[lane];
      samples[lane][0] = rng.chance(1, 2);
      samples[lane][1] = rng.chance(1, 2);
      samples[lane][2] = rng.chance(1, 4) ? (rng.next() & 0xFF) : rng.below(4);
      samples[lane][3] = rng.chance(1, 4) ? (rng.next() & 0xFF) : rng.below(4);
      disabled[lane] = rng.chance(1, 16) ? 1 : 0;
      for (std::size_t i = 0; i < sigs.size(); ++i) {
        sim.set_input(sigs[i], lane, samples[lane][i]);
      }
      sim.set_input(rst, lane, disabled[lane]);
    }
    sim.settle();
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      evs[lane].step(samples[lane], disabled[lane] != 0, vb);
      for (std::size_t i = 0; i < outs.size(); ++i) {
        ASSERT_EQ(vb[i].attempt, sim.get(outs[i].attempt, lane))
            << "lane " << lane << " edge " << t << " " << a.props[i].name;
        ASSERT_EQ(vb[i].pass, sim.get(outs[i].pass, lane))
            << "lane " << lane << " edge " << t << " " << a.props[i].name;
        ASSERT_EQ(vb[i].fail, sim.get(outs[i].fail, lane))
            << "lane " << lane << " edge " << t << " " << a.props[i].name;
        ASSERT_EQ(vb[i].vacuous, sim.get(outs[i].vacuous, lane))
            << "lane " << lane << " edge " << t << " " << a.props[i].name;
        resolved += vb[i].pass + vb[i].fail;
      }
    }
    sim.clock_edge();
  }
  EXPECT_GT(resolved, 0u);
}

TEST(CheckLowering, PciPackLockstep) {
  const Automaton a = compile(
      pci_rules(PciRuleOptions{.arbitration = true, .latency_bound = 6}));
  AutomatonEval ev(a);
  NlDriver nld(a, synth::SettleMode::Incremental);
  sim::Xorshift rng(42);
  std::vector<std::uint64_t> samples(a.signals.size());
  std::vector<AutomatonEval::Verdict> vb, vn;
  for (int t = 0; t < 2000; ++t) {
    for (std::size_t i = 0; i < a.signals.size(); ++i) {
      samples[i] = rng.next() & synth::ExprArena::mask(a.signals[i].width);
    }
    ev.step(samples, false, vb);
    nld.step(samples, false, vn);
    for (std::size_t i = 0; i < vb.size(); ++i) {
      ASSERT_EQ(vb[i].pass, vn[i].pass) << "edge " << t << " "
                                        << a.props[i].name;
      ASSERT_EQ(vb[i].fail, vn[i].fail) << "edge " << t << " "
                                        << a.props[i].name;
    }
  }
}

TEST(CheckLowering, LoweredNetlistShape) {
  const Automaton a = compile(kitchen_sink());
  const synth::Netlist nl = lower(a);
  EXPECT_NO_THROW(nl.validate_and_order());
  // rst + the four signals.
  EXPECT_EQ(nl.inputs().size(), 1u + a.signals.size());
  // Four verdict nets per property.
  EXPECT_EQ(nl.outputs().size(), 4 * a.props.size());
  // One register per automaton state.
  EXPECT_EQ(nl.regs().size(), a.states.size());
  const std::string v = synth::emit_verilog(nl);
  EXPECT_NE(v.find("module"), std::string::npos);
  EXPECT_NE(v.find("imp_fail"), std::string::npos);
  EXPECT_NE(v.find("rst"), std::string::npos);
}

TEST(CheckLowering, ResetInputRestoresInitialState) {
  Spec s("rst");
  E a = s.signal("a");
  s.prop("p", a, s.delay(1, a));
  const Automaton au = compile(s);
  NlDriver nld(au, synth::SettleMode::Incremental);
  std::vector<AutomatonEval::Verdict> v;
  nld.step({1}, false, v);   // attempt in flight
  nld.step({0}, true, v);    // disable: verdicts zero, state back to init
  EXPECT_EQ(v[0].attempt, 0u);
  EXPECT_EQ(v[0].fail, 0u);
  nld.step({0}, false, v);   // cancelled attempt must not resolve
  EXPECT_EQ(v[0].pass, 0u);
  EXPECT_EQ(v[0].fail, 0u);
}

}  // namespace
}  // namespace hlcs::check
