// Behavioural semantics of the temporal property DSL: per-edge verdicts
// of the compiled automaton on hand-written traces, attempt accounting,
// disable/reset, the monitor engines on a live kernel, and the
// shared-object rule pack.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hlcs/check/check.hpp"
#include "hlcs/osss/arbitration.hpp"
#include "hlcs/sim/sim.hpp"

namespace hlcs::check {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;
using sim::Task;

/// Compile a Spec and step it over explicit sample rows.
struct Eval {
  Automaton a;
  AutomatonEval ev;
  std::vector<AutomatonEval::Verdict> v;

  explicit Eval(const Spec& s) : a(compile(s)), ev(a) {}

  const std::vector<AutomatonEval::Verdict>& step(
      std::vector<std::uint64_t> samples, bool disabled = false) {
    ev.step(samples, disabled, v);
    return v;
  }
};

TEST(CheckProperty, RoseFellStableSemantics) {
  Spec s("edges");
  E a = s.signal("a");
  s.prop("rose", s.rose(a), s.lit(1));
  s.prop("fell", s.fell(a), s.lit(1));
  s.prop("stab", s.stable(a), s.lit(1));
  Eval e(s);

  const std::uint64_t trace[] = {0, 1, 1, 0, 1};
  const std::uint64_t want_rose[] = {0, 1, 0, 0, 1};
  const std::uint64_t want_fell[] = {0, 0, 0, 1, 0};
  const std::uint64_t want_stab[] = {1, 0, 1, 0, 0};  // past() starts at 0
  for (int i = 0; i < 5; ++i) {
    const auto& v = e.step({trace[i]});
    EXPECT_EQ(v[0].attempt, want_rose[i]) << "edge " << i;
    EXPECT_EQ(v[1].attempt, want_fell[i]) << "edge " << i;
    EXPECT_EQ(v[2].attempt, want_stab[i]) << "edge " << i;
    // Consequent is constant true: every attempt passes immediately.
    EXPECT_EQ(v[0].pass, v[0].attempt);
    EXPECT_EQ(v[0].fail, 0u);
  }
}

TEST(CheckProperty, ImpliesAttemptPassFailVacuous) {
  Spec s("implies");
  E a = s.signal("a");
  E b = s.signal("b");
  s.prop("p", a, b);
  Eval e(s);

  struct Row {
    std::uint64_t a, b, att, pass, fail, vac;
  };
  const Row rows[] = {
      {1, 1, 1, 1, 0, 0}, {1, 0, 1, 0, 1, 0}, {0, 0, 0, 0, 0, 1},
      {0, 1, 0, 0, 0, 1}, {1, 1, 1, 1, 0, 0},
  };
  std::uint64_t att = 0, pass = 0, fail = 0, vac = 0;
  for (const Row& r : rows) {
    const auto& v = e.step({r.a, r.b});
    EXPECT_EQ(v[0].attempt, r.att);
    EXPECT_EQ(v[0].pass, r.pass);
    EXPECT_EQ(v[0].fail, r.fail);
    EXPECT_EQ(v[0].vacuous, r.vac);
    att += v[0].attempt;
    pass += v[0].pass;
    fail += v[0].fail;
    vac += v[0].vacuous;
    // Exactly one of attempt/vacuous per enabled edge.
    EXPECT_EQ(v[0].attempt + v[0].vacuous, 1u);
  }
  EXPECT_EQ(att, 3u);
  EXPECT_EQ(pass, 2u);
  EXPECT_EQ(fail, 1u);
  EXPECT_EQ(vac, 2u);
}

TEST(CheckProperty, DelayPipelinesOverlappingAttempts) {
  Spec s("delay");
  E a = s.signal("a");
  E b = s.signal("b");
  s.prop("p", a, s.delay(2, b));
  Eval e(s);

  // Attempts at edges 0 and 1 resolve at edges 2 (b=1: pass) and 3
  // (b=0: fail).
  struct Row {
    std::uint64_t a, b, pass, fail;
  };
  const Row rows[] = {{1, 0, 0, 0}, {1, 1, 0, 0}, {0, 1, 1, 0}, {0, 0, 0, 1}};
  for (const Row& r : rows) {
    const auto& v = e.step({r.a, r.b});
    EXPECT_EQ(v[0].pass, r.pass);
    EXPECT_EQ(v[0].fail, r.fail);
  }
}

TEST(CheckProperty, UntilResolvesAllPendingAttempts) {
  Spec s("until");
  E a = s.signal("a");
  E p = s.signal("p");
  E q = s.signal("q");
  s.prop("u", a, s.until(p, q));
  Eval e(s);

  // Two attempts accumulate while p holds; q passes both at once.
  EXPECT_EQ(e.step({1, 1, 0})[0].pass, 0u);
  EXPECT_EQ(e.step({1, 1, 0})[0].fail, 0u);
  const auto& v2 = e.step({0, 0, 1});
  EXPECT_EQ(v2[0].pass, 2u);
  EXPECT_EQ(v2[0].fail, 0u);
  // A fresh attempt hitting !p && !q fails on its own edge.
  const auto& v3 = e.step({1, 0, 0});
  EXPECT_EQ(v3[0].fail, 1u);
  // Weak until: p holding forever leaves the attempt pending.
  std::uint64_t resolved = 0;
  for (int i = 0; i < 8; ++i) {
    const auto& v = e.step({i == 0 ? 1u : 0u, 1, 0});
    resolved += v[0].pass + v[0].fail;
  }
  EXPECT_EQ(resolved, 0u);
}

TEST(CheckProperty, UntilReleaseOnAttemptEdgePasses) {
  Spec s("until0");
  E a = s.signal("a");
  E p = s.signal("p");
  E q = s.signal("q");
  s.prop("u", a, s.until(p, q));
  Eval e(s);
  const auto& v = e.step({1, 0, 1});  // q already true when the attempt starts
  EXPECT_EQ(v[0].pass, 1u);
  EXPECT_EQ(v[0].fail, 0u);
}

TEST(CheckProperty, EventuallyWithinWindow) {
  Spec s("event");
  E a = s.signal("a");
  E p = s.signal("p");
  s.prop("ev", a, s.eventually_within(2, p));
  Eval e(s);

  // Immediate satisfaction on the attempt edge.
  EXPECT_EQ(e.step({1, 1})[0].pass, 1u);
  // Two staggered attempts pass together when p finally holds.
  EXPECT_EQ(e.step({1, 0})[0].pass, 0u);
  EXPECT_EQ(e.step({1, 0})[0].pass, 0u);
  const auto& v = e.step({0, 1});
  EXPECT_EQ(v[0].pass, 2u);
  EXPECT_EQ(v[0].fail, 0u);
  // Expiry: attempt at t with p never true fails exactly at t+2.
  EXPECT_EQ(e.step({1, 0})[0].fail, 0u);
  EXPECT_EQ(e.step({0, 0})[0].fail, 0u);
  EXPECT_EQ(e.step({0, 0})[0].fail, 1u);
  EXPECT_EQ(e.step({0, 0})[0].fail, 0u);
}

TEST(CheckProperty, DisableCancelsInFlightAttempts) {
  Spec s("dis");
  E a = s.signal("a");
  E b = s.signal("b");
  s.prop("p", a, s.delay(2, b));
  Eval e(s);

  e.step({1, 0});              // attempt in flight
  const auto& vd = e.step({0, 0}, /*disabled=*/true);
  EXPECT_EQ(vd[0].attempt, 0u);
  EXPECT_EQ(vd[0].fail, 0u);
  // The cancelled attempt must not resolve after the disable window.
  for (int i = 0; i < 4; ++i) {
    const auto& v = e.step({0, 0});
    EXPECT_EQ(v[0].pass, 0u) << "edge " << i;
    EXPECT_EQ(v[0].fail, 0u) << "edge " << i;
  }
}

TEST(CheckProperty, AlwaysPropertyIsNeverVacuous) {
  Spec s("inv");
  E a = s.signal("a");
  s.always("never_x", !a);
  Eval e(s);
  const auto& v0 = e.step({0});
  EXPECT_EQ(v0[0].attempt, 1u);
  EXPECT_EQ(v0[0].pass, 1u);
  EXPECT_EQ(v0[0].vacuous, 0u);
  const auto& v1 = e.step({1});
  EXPECT_EQ(v1[0].fail, 1u);
  EXPECT_EQ(v1[0].vacuous, 0u);
}

// ---------------------------------------------------------------------
// Monitor engines on a live kernel.
// ---------------------------------------------------------------------

/// One failing property over a toggling signal, both engines.
struct MonitorBench {
  Kernel k;
  sim::Clock clk{k, "clk", 10_ns};
  sim::Signal<bool> a{k, "a", false};
  Spec spec{make_spec()};
  ProbeSet probes{ProbeSet{}.add(sim::probe("a", a))};

  static Spec make_spec() {
    Spec s("bench");
    E a = s.signal("a");
    s.prop("hold_low", s.rose(a), !a);  // fails on every rising sample
    return s;
  }
};

TEST(CheckMonitor, FailureRecordingIsBounded) {
  MonitorBench b;
  Monitor mon(b.k, "mon", b.spec, b.clk, b.probes,
              MonitorOptions{.max_recorded_failures = 2});
  // Toggle `a` every cycle: rose() holds on every second sampled edge.
  b.k.spawn("stim", [&]() -> Task {
    for (;;) {
      co_await b.clk.posedge();
      b.a.write(!b.a.read());
    }
  });
  b.k.run_for(200_ns);  // ~20 edges
  const CheckStats& cs = mon.stats();
  ASSERT_EQ(cs.props.size(), 1u);
  EXPECT_GT(cs.props[0].fails, 2u);
  EXPECT_EQ(cs.failures.size(), 2u);
  EXPECT_EQ(cs.dropped_failures, cs.props[0].fails - 2);
  EXPECT_NE(mon.describe(cs.failures[0]).find("hold_low"), std::string::npos);
}

TEST(CheckMonitor, BehaviouralAndNetlistEnginesAgreeOnKernel) {
  MonitorBench b;
  Monitor bm(b.k, "bm", b.spec, b.clk, b.probes);
  NetlistMonitor nm(b.k, "nm", b.spec, b.clk, b.probes,
                    synth::SettleMode::Incremental);
  sim::Xorshift rng(7);
  b.k.spawn("stim", [&]() -> Task {
    for (;;) {
      co_await b.clk.posedge();
      b.a.write(rng.chance(1, 2));
    }
  });
  b.k.run_for(1_us);
  EXPECT_GT(bm.stats().edges, 50u);
  EXPECT_EQ(bm.stats().edges, nm.stats().edges);
  ASSERT_EQ(bm.stats().props.size(), nm.stats().props.size());
  for (std::size_t i = 0; i < bm.stats().props.size(); ++i) {
    const PropertyStats& pb = bm.stats().props[i];
    const PropertyStats& pn = nm.stats().props[i];
    EXPECT_EQ(pb.attempts, pn.attempts);
    EXPECT_EQ(pb.passes, pn.passes);
    EXPECT_EQ(pb.fails, pn.fails);
    EXPECT_EQ(pb.vacuous, pn.vacuous);
  }
  ASSERT_EQ(bm.stats().failures.size(), nm.stats().failures.size());
  for (std::size_t i = 0; i < bm.stats().failures.size(); ++i) {
    EXPECT_EQ(bm.stats().failures[i].cycle, nm.stats().failures[i].cycle);
  }
}

TEST(CheckMonitor, MissingProbeAndWidthMismatchThrow) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  Spec s("strict");
  s.signal("wide", 8);
  ProbeSet empty;
  EXPECT_THROW(Monitor(k, "m0", s, clk, empty), Error);
  ProbeSet narrow;
  narrow.add(sim::probe_fn("wide", 4, [] { return 0u; }));
  EXPECT_THROW(Monitor(k, "m1", s, clk, narrow), Error);
}

// ---------------------------------------------------------------------
// Shared-object rule pack.
// ---------------------------------------------------------------------

TEST(CheckObjectRules, CleanContentionSatisfiesPack) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  osss::SharedObject<int> counter(k, "counter", clk,
                                  std::make_unique<osss::FifoArbitration>(),
                                  0);
  auto inc = counter.make_client("inc");
  auto dec = counter.make_client("dec");

  const Spec spec = shared_object_rules(/*starvation_bound=*/8);
  const ProbeSet probes = shared_object_probes(counter);
  Monitor bm(k, "bm", spec, clk, probes);
  NetlistMonitor nm(k, "nm", spec, clk, probes);

  k.spawn("inc", [&]() -> Task {
    for (int i = 0; i < 24; ++i) {
      co_await inc.call([](int& v) { ++v; });
    }
  });
  k.spawn("dec", [&]() -> Task {
    for (int i = 0; i < 8; ++i) {
      // Guarded: only dispatchable while the counter is positive.
      co_await dec.call([](const int& v) { return v > 0; },
                        [](int& v) { --v; });
    }
  });
  k.run_for(5_us);
  EXPECT_EQ(counter.peek(), 16);

  EXPECT_EQ(bm.stats().fails(), 0u);
  EXPECT_EQ(nm.stats().fails(), 0u);
  // Every grant edge was a non-vacuous guard_at_dispatch attempt.
  EXPECT_GT(bm.stats().props[0].attempts, 0u);
  for (std::size_t i = 0; i < bm.stats().props.size(); ++i) {
    EXPECT_EQ(bm.stats().props[i].passes, nm.stats().props[i].passes)
        << spec.properties()[i].name;
  }
}

TEST(CheckObjectRules, StarvationBeyondBoundFails) {
  // Synthetic trace: a call stays eligible while the grant counter never
  // moves -- the bound-2 window must expire.
  const Spec spec = shared_object_rules(/*starvation_bound=*/2);
  Eval e(spec);
  // samples: {grants, guard_held, eligible}
  EXPECT_EQ(e.step({0, 1, 1})[1].fail, 0u);
  EXPECT_EQ(e.step({0, 1, 1})[1].fail, 0u);
  EXPECT_EQ(e.step({0, 1, 1})[1].fail, 1u);  // first attempt expires
  // A grant resolves everything still pending.
  const auto& v = e.step({1, 1, 1});
  EXPECT_GT(v[1].pass, 0u);
}

}  // namespace
}  // namespace hlcs::check
