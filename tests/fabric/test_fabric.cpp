// hlcs::fabric -- topology generation, endpoint routing, and the
// acceptance gate of the sharded kernel: serial and sharded runs of the
// same fabric must be bit-identical (transcripts, memory digests, check
// verdicts, waveforms) at every shard and thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hlcs/fabric/fabric.hpp"
#include "hlcs/verify/vcd_reader.hpp"

namespace hlcs::fabric {
namespace {

using namespace hlcs::sim::literals;

TEST(EndpointRegistry, RoutesByAddress) {
  EndpointRegistry reg;
  reg.add("a", 0x1000, 0x100, 0);
  reg.add("c", 0x3000, 0x100, 2);
  reg.add("b", 0x2000, 0x100, 1);
  ASSERT_NE(reg.route(0x1000), nullptr);
  EXPECT_EQ(reg.route(0x1000)->segment, 0u);
  EXPECT_EQ(reg.route(0x10FF)->segment, 0u);
  EXPECT_EQ(reg.route(0x2080)->segment, 1u);
  EXPECT_EQ(reg.route(0x3000)->segment, 2u);
  EXPECT_EQ(reg.route(0x1100), nullptr);
  EXPECT_EQ(reg.route(0x0), nullptr);
  EXPECT_EQ(reg.route(0xFFFFFFFF), nullptr);
  // Registration order does not matter: endpoints() is base-sorted.
  EXPECT_EQ(reg.endpoints()[0].name, "a");
  EXPECT_EQ(reg.endpoints()[1].name, "b");
  EXPECT_EQ(reg.endpoints()[2].name, "c");
}

TEST(EndpointRegistry, RejectsOverlaps) {
  EndpointRegistry reg;
  reg.add("a", 0x1000, 0x100, 0);
  EXPECT_THROW(reg.add("mid", 0x1080, 0x100, 1), Error);
  EXPECT_THROW(reg.add("head", 0x0FFF, 0x2, 1), Error);
  EXPECT_THROW(reg.add("dup", 0x1000, 0x100, 1), Error);
  EXPECT_THROW(reg.add("empty", 0x5000, 0, 1), Error);
  reg.add("ok", 0x1100, 0x100, 1);  // flush against the end is fine
}

TEST(FabricSystem, TopologyDumpIsDeterministic) {
  FabricConfig cfg;
  cfg.segments = 3;
  cfg.shards = 2;
  FabricSystem sys1(cfg);
  FabricSystem sys2(cfg);
  EXPECT_EQ(sys1.dump_topology(), sys2.dump_topology());
  EXPECT_NE(sys1.dump_topology().find("segments=3"), std::string::npos);
  EXPECT_NE(sys1.dump_topology().find("shard0[s0 s1]"), std::string::npos);
}

TEST(FabricSystem, ShardCountIsClampedToSegments) {
  FabricConfig cfg;
  cfg.segments = 2;
  cfg.shards = 8;
  FabricSystem sys(cfg);
  EXPECT_EQ(sys.config().shards, 2u);
  EXPECT_EQ(sys.engine().shard_count(), 2u);
}

struct Observed {
  bool done = false;
  std::string transcript;
  std::uint64_t digest = 0;
  std::size_t copy_errors = 0;
  std::size_t violations = 0;
  std::uint64_t check_fails = 0;
};

Observed run(FabricConfig cfg, std::size_t shards, unsigned threads,
             sim::Time span) {
  cfg.shards = shards;
  cfg.threads = threads;
  FabricSystem sys(cfg);
  sys.run_for(span);
  Observed o;
  o.done = sys.all_done();
  o.transcript = sys.transcript();
  o.digest = sys.state_digest();
  o.copy_errors = sys.copy_errors();
  o.violations = sys.violations();
  o.check_fails = sys.check_fails();
  return o;
}

void expect_identical(const Observed& ref, const Observed& got,
                      const std::string& what) {
  EXPECT_EQ(got.done, ref.done) << what;
  EXPECT_EQ(got.transcript, ref.transcript) << what;
  EXPECT_EQ(got.digest, ref.digest) << what;
  EXPECT_EQ(got.copy_errors, ref.copy_errors) << what;
  EXPECT_EQ(got.violations, ref.violations) << what;
  EXPECT_EQ(got.check_fails, ref.check_fails) << what;
}

TEST(FabricIdentity, Ring4SegmentsAllShardAndThreadCounts) {
  FabricConfig cfg;
  cfg.segments = 4;
  cfg.app_ops = 6;
  const sim::Time span = 1500_us;
  const Observed ref = run(cfg, 1, 1, span);
  EXPECT_TRUE(ref.done);
  EXPECT_EQ(ref.copy_errors, 0u);
  EXPECT_EQ(ref.violations, 0u);
  EXPECT_FALSE(ref.transcript.empty());
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  for (std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    for (unsigned threads : {1u, 2u, hw}) {
      expect_identical(ref, run(cfg, shards, threads, span),
                       "shards=" + std::to_string(shards) +
                           " threads=" + std::to_string(threads));
    }
  }
}

TEST(FabricIdentity, Star5SegmentsWithCheckers) {
  FabricConfig cfg;
  cfg.topo = Topology::Star;
  cfg.segments = 5;
  cfg.app_ops = 5;
  cfg.checkers = true;
  const sim::Time span = 1500_us;
  const Observed ref = run(cfg, 1, 1, span);
  EXPECT_TRUE(ref.done);
  EXPECT_EQ(ref.violations, 0u);
  EXPECT_EQ(ref.check_fails, 0u);
  expect_identical(ref, run(cfg, 2, 2, span), "shards=2");
  expect_identical(ref, run(cfg, 5, 2, span), "shards=5");
}

TEST(FabricIdentity, Ring16Segments) {
  FabricConfig cfg;
  cfg.segments = 16;
  cfg.app_ops = 3;
  const sim::Time span = 2000_us;
  const Observed ref = run(cfg, 1, 1, span);
  EXPECT_TRUE(ref.done);
  EXPECT_EQ(ref.copy_errors, 0u);
  expect_identical(ref, run(cfg, 4, 4, span), "shards=4");
  expect_identical(ref, run(cfg, 16, 0, span), "shards=16 threads=hw");
}

TEST(FabricIdentity, Ring64Segments) {
  FabricConfig cfg;
  cfg.segments = 64;
  cfg.app_ops = 2;
  const sim::Time span = 3000_us;
  const Observed ref = run(cfg, 1, 1, span);
  EXPECT_TRUE(ref.done);
  EXPECT_EQ(ref.copy_errors, 0u);
  EXPECT_EQ(ref.violations, 0u);
  expect_identical(ref, run(cfg, 8, 4, span), "shards=8");
}

// --------------------------------------------------------------------
// Waveform identity: per-signal VCD comparison across partitions, and
// byte identity across thread counts for a fixed partition.

std::vector<std::string> run_traced(FabricConfig cfg, std::size_t shards,
                                    unsigned threads, const std::string& dir,
                                    sim::Time span) {
  cfg.shards = shards;
  cfg.threads = threads;
  FabricSystem sys(cfg);
  std::vector<std::string> paths = sys.attach_traces(dir);
  sys.run_for(span);
  sys.flush_traces();
  EXPECT_TRUE(sys.all_done());
  return paths;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(FabricWaves, ShardVcdsMatchSerialReferencePerSignal) {
  FabricConfig cfg;
  cfg.segments = 4;
  cfg.app_ops = 4;
  const sim::Time span = 1000_us;
  const std::string dir = ::testing::TempDir();
  const auto serial =
      run_traced(cfg, 1, 1, dir + "fabric_serial", span);
  const auto sharded =
      run_traced(cfg, 2, 2, dir + "fabric_sharded", span);
  ASSERT_EQ(serial.size(), 1u);
  ASSERT_EQ(sharded.size(), 2u);
  verify::VcdFile all = verify::VcdFile::load(serial[0]);
  for (const std::string& path : sharded) {
    verify::VcdFile part = verify::VcdFile::load(path);
    EXPECT_FALSE(part.signal_names().empty());
    const verify::WaveCompareResult r = verify::compare_waves(all, part);
    EXPECT_TRUE(r.equal) << path << ": " << r.first_difference;
  }
}

TEST(FabricWaves, FixedPartitionVcdsAreByteIdenticalAcrossThreads) {
  FabricConfig cfg;
  cfg.segments = 4;
  cfg.app_ops = 4;
  const sim::Time span = 1000_us;
  const std::string dir = ::testing::TempDir();
  const auto t1 = run_traced(cfg, 4, 1, dir + "fabric_t1", span);
  const auto t4 = run_traced(cfg, 4, 4, dir + "fabric_t4", span);
  ASSERT_EQ(t1.size(), t4.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(slurp(t1[i]), slurp(t4[i])) << t1[i];
  }
}

// Temp-dir creation for the trace tests: gtest's TempDir always exists,
// but the per-test subdirectories do not.  FabricSystem::attach_traces
// opens files directly, so create the directories up front.
class FabricWavesEnv : public ::testing::Environment {
public:
  void SetUp() override {
    const std::string base = ::testing::TempDir();
    for (const char* d : {"fabric_serial", "fabric_sharded", "fabric_t1",
                          "fabric_t4"}) {
      std::filesystem::create_directories(base + d);
    }
  }
};

const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new FabricWavesEnv);

}  // namespace
}  // namespace hlcs::fabric
