// The synthesisable bus-access channel: interpreter semantics, synthesis
// to RTL, golden lock-step consistency, and Verilog emission -- the
// paper's full Sec. 3 flow applied to its own communication element.
#include <gtest/gtest.h>

#include "hlcs/pattern/synthesisable_channel.hpp"
#include "hlcs/synth/synth.hpp"

namespace hlcs::pattern {
namespace {

using synth::GoldenCycleModel;
using synth::NetlistSim;
using synth::ObjectInterp;
using synth::SynthOptions;

TEST(SynthChannel, DescValidates) {
  SynthesisableChannel ch = make_synthesisable_channel();
  EXPECT_NO_THROW(ch.desc.validate());
  EXPECT_EQ(ch.desc.methods().size(), 7u);
  EXPECT_EQ(ch.desc.sel_width(), 3u);
  EXPECT_EQ(ch.desc.args_width(), 44u);  // putCommand: 4+8+32
  EXPECT_EQ(ch.desc.ret_width(), 44u);   // getCommand return
}

TEST(SynthChannel, InterpreterPingPong) {
  SynthesisableChannel ch = make_synthesisable_channel();
  ObjectInterp it(ch.desc);
  // Initially: putCommand eligible, getCommand not.
  EXPECT_TRUE(it.guard_ok(ch.methods.put_command, {0x6, 4, 0x1000}));
  EXPECT_FALSE(it.guard_ok(ch.methods.get_command));
  it.invoke(ch.methods.put_command, {0x6, 4, 0x1000});
  EXPECT_FALSE(it.guard_ok(ch.methods.put_command, {0, 0, 0}));
  EXPECT_TRUE(it.guard_ok(ch.methods.get_command));
  std::uint64_t packed = it.invoke(ch.methods.get_command);
  EXPECT_EQ(unpack_cmd_op(packed), 0x6u);
  EXPECT_EQ(unpack_cmd_len(packed), 4u);
  EXPECT_EQ(unpack_cmd_addr(packed), 0x1000u);
  EXPECT_TRUE(it.guard_ok(ch.methods.put_command, {0, 0, 0}));
}

TEST(SynthChannel, InterpreterResponsePath) {
  SynthesisableChannel ch = make_synthesisable_channel();
  ObjectInterp it(ch.desc);
  EXPECT_FALSE(it.guard_ok(ch.methods.app_data_get));
  it.invoke(ch.methods.put_response, {0x2, 0xDEADBEEF});
  EXPECT_TRUE(it.guard_ok(ch.methods.app_data_get));
  EXPECT_FALSE(it.guard_ok(ch.methods.put_response, {0, 0}));
  std::uint64_t packed = it.invoke(ch.methods.app_data_get);
  EXPECT_EQ(unpack_resp_status(packed), 0x2u);
  EXPECT_EQ(unpack_resp_data(packed), 0xDEADBEEFu);
}

TEST(SynthChannel, InterpreterResetClearsEverything) {
  SynthesisableChannel ch = make_synthesisable_channel();
  ObjectInterp it(ch.desc);
  it.invoke(ch.methods.put_command, {0x7, 1, 0x2000});
  it.invoke(ch.methods.put_response, {0x1, 0x55});
  EXPECT_TRUE(it.guard_ok(ch.methods.reset));
  it.invoke(ch.methods.reset);
  EXPECT_FALSE(it.guard_ok(ch.methods.get_command));
  EXPECT_FALSE(it.guard_ok(ch.methods.app_data_get));
}

TEST(SynthChannel, SynthesisesToRtl) {
  SynthesisableChannel ch = make_synthesisable_channel();
  synth::Netlist nl =
      synth::synthesize(ch.desc, SynthOptions{.clients = 2});
  EXPECT_NO_THROW(nl.validate_and_order());
  synth::ResourceReport r = synth::report(nl);
  // State: 1+4+8+32+1+2+32+1+32 = 113 flip-flops.
  EXPECT_EQ(r.flip_flops, 113u);
  EXPECT_GT(r.gate_estimate, 100u);
}

TEST(SynthChannel, RtlPingPongThroughPorts) {
  // Client 0 = application, client 1 = interface (as in the pattern).
  SynthesisableChannel ch = make_synthesisable_channel();
  synth::Netlist nl =
      synth::synthesize(ch.desc, SynthOptions{.clients = 2});
  NetlistSim rtl(nl);

  auto step = [&](bool req0, std::uint64_t sel0, std::uint64_t args0,
                  bool req1, std::uint64_t sel1, std::uint64_t args1) {
    rtl.set_input("rst", 0);
    rtl.set_input("c0_req", req0);
    rtl.set_input("c0_sel", sel0);
    rtl.set_input("c0_args", args0);
    rtl.set_input("c1_req", req1);
    rtl.set_input("c1_sel", sel1);
    rtl.set_input("c1_args", args1);
    rtl.settle();
    std::pair<bool, bool> grants{rtl.get("c0_grant") != 0,
                                 rtl.get("c1_grant") != 0};
    rtl.clock_edge();
    return grants;
  };

  const auto put_cmd = ch.methods.put_command;
  const auto get_cmd = ch.methods.get_command;
  // App puts a command (op=6, len=4, addr=0x1000): packed args.
  const std::uint64_t args =
      0x6ull | (4ull << 4) | (0x1000ull << 12);
  auto g = step(true, put_cmd, args, false, 0, 0);
  EXPECT_TRUE(g.first);
  EXPECT_EQ(rtl.get("var_cmd_valid"), 1u);
  EXPECT_EQ(rtl.get("var_cmd_op"), 0x6u);
  EXPECT_EQ(rtl.get("var_cmd_len"), 4u);
  EXPECT_EQ(rtl.get("var_cmd_addr"), 0x1000u);

  // Interface fetches it; check the packed return on the port.
  rtl.set_input("c1_req", 1);
  rtl.set_input("c1_sel", get_cmd);
  rtl.set_input("c0_req", 0);
  rtl.settle();
  EXPECT_EQ(rtl.get("c1_grant"), 1u);
  const std::uint64_t ret = rtl.get("c1_ret");
  EXPECT_EQ(unpack_cmd_op(ret), 0x6u);
  EXPECT_EQ(unpack_cmd_addr(ret), 0x1000u);
  rtl.clock_edge();
  EXPECT_EQ(rtl.get("var_cmd_valid"), 0u);
}

TEST(SynthChannel, GoldenLockStepAllPolicies) {
  SynthesisableChannel ch = make_synthesisable_channel();
  for (auto policy :
       {osss::PolicyKind::Fifo, osss::PolicyKind::RoundRobin,
        osss::PolicyKind::StaticPriority, osss::PolicyKind::Random}) {
    SynthOptions opt{.clients = 3, .policy = policy};
    synth::Netlist nl = synth::synthesize(ch.desc, opt);
    NetlistSim rtl(nl);
    GoldenCycleModel golden(ch.desc, opt);
    sim::Xorshift rng(1234 + static_cast<std::uint64_t>(policy));
    std::vector<GoldenCycleModel::ClientIn> in(3);
    for (int cycle = 0; cycle < 300; ++cycle) {
      for (std::size_t c = 0; c < 3; ++c) {
        if (!in[c].req && rng.chance(1, 2)) {
          in[c].req = true;
          in[c].sel = rng.below(ch.desc.methods().size());
          in[c].args = rng.next();
        }
        rtl.set_input(synth::req_port(c), in[c].req);
        rtl.set_input(synth::sel_port(c), in[c].sel);
        rtl.set_input(synth::args_port(c), in[c].args);
      }
      rtl.set_input("rst", 0);
      rtl.settle();
      std::optional<std::size_t> rtl_grant;
      for (std::size_t c = 0; c < 3; ++c) {
        if (rtl.get(synth::grant_port(c)) != 0) rtl_grant = c;
      }
      auto g = golden.step(in);
      ASSERT_EQ(rtl_grant, g.granted)
          << osss::policy_name(policy) << " cycle " << cycle;
      rtl.clock_edge();
      for (std::size_t v = 0; v < ch.desc.vars().size(); ++v) {
        ASSERT_EQ(rtl.get(synth::var_port(ch.desc, v)), golden.var(v))
            << osss::policy_name(policy) << " var " << v;
      }
      if (g.granted) in[*g.granted].req = false;
    }
  }
}

TEST(SynthChannel, VerilogEmission) {
  SynthesisableChannel ch = make_synthesisable_channel();
  synth::Netlist nl =
      synth::synthesize(ch.desc, SynthOptions{.clients = 2});
  std::string v = synth::emit_verilog(nl);
  EXPECT_NE(v.find("module bus_access_channel_rtl ("), std::string::npos);
  EXPECT_NE(v.find("var_cmd_addr"), std::string::npos);
  EXPECT_NE(v.find("[43:0] c0_args"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

}  // namespace
}  // namespace hlcs::pattern
