// Post-synthesis system co-simulation: behavioural application + the
// SYNTHESISED channel netlist + pin-level PCI.  The full Figure 2
// implementation model, checked for functional equivalence against the
// original functional model.
#include <gtest/gtest.h>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/tlm/tlm.hpp"
#include "hlcs/verify/compare.hpp"

namespace hlcs::pattern {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;
using sim::Task;

TEST(RtlChannel, SingleCallGrantsOnEdge) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  SynthesisableChannel ch = make_synthesisable_channel();
  synth::Netlist nl =
      synth::synthesize(ch.desc, synth::SynthOptions{.clients = 1});
  RtlChannel chan(k, "chan", nl, clk);
  auto port = chan.make_port();
  sim::Time granted_at;
  k.spawn("caller", [&]() -> Task {
    const std::uint64_t args = 0x6ull | (1ull << 4) | (0x40ull << 12);
    co_await port.call(ch.methods.put_command, args);
    granted_at = k.now();
  });
  k.run_for(1_us);
  EXPECT_EQ(granted_at.picos(), 5000u) << "granted at the first rising edge";
  EXPECT_EQ(chan.state("var_cmd_valid"), 1u);
  EXPECT_EQ(chan.state("var_cmd_addr"), 0x40u);
  EXPECT_EQ(chan.grants(), 1u);
}

TEST(RtlChannel, GuardBlocksSecondPutUntilGet) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  SynthesisableChannel ch = make_synthesisable_channel();
  synth::Netlist nl =
      synth::synthesize(ch.desc, synth::SynthOptions{.clients = 2});
  RtlChannel chan(k, "chan", nl, clk);
  auto app = chan.make_port();
  auto ifc = chan.make_port();
  std::vector<int> order;
  k.spawn("app", [&]() -> Task {
    co_await app.call(ch.methods.put_command, 0x6ull);
    order.push_back(1);
    co_await app.call(ch.methods.put_command, 0x7ull);  // blocked: full
    order.push_back(3);
  });
  k.spawn("ifc", [&]() -> Task {
    co_await k.wait(100_ns);
    co_await ifc.call(ch.methods.get_command);
    order.push_back(2);
  });
  k.run_for(1_us);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RtlChannel, ReturnsRetValue) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  SynthesisableChannel ch = make_synthesisable_channel();
  synth::Netlist nl =
      synth::synthesize(ch.desc, synth::SynthOptions{.clients = 2});
  RtlChannel chan(k, "chan", nl, clk);
  auto app = chan.make_port();
  auto ifc = chan.make_port();
  std::uint64_t got = 0;
  k.spawn("app", [&]() -> Task {
    const std::uint64_t args = 0xAull | (3ull << 4) | (0x123ull << 12);
    co_await app.call(ch.methods.put_command, args);
  });
  k.spawn("ifc", [&]() -> Task {
    got = co_await ifc.call(ch.methods.get_command);
  });
  k.run_for(1_us);
  EXPECT_EQ(unpack_cmd_op(got), 0xAu);
  EXPECT_EQ(unpack_cmd_len(got), 3u);
  EXPECT_EQ(unpack_cmd_addr(got), 0x123u);
}

TEST(RtlChannel, DoubleCallOnSamePortThrows) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  SynthesisableChannel ch = make_synthesisable_channel();
  synth::Netlist nl =
      synth::synthesize(ch.desc, synth::SynthOptions{.clients = 1});
  RtlChannel chan(k, "chan", nl, clk);
  auto port = chan.make_port();
  // The second process reuses the same port while the first call is in
  // flight (blocked on an ineligible guard).
  k.spawn("first", [&]() -> Task {
    co_await port.call(ch.methods.get_command);  // blocks: no command
  });
  k.spawn("second", [&]() -> Task {
    co_await k.wait(50_ns);
    co_await port.call(ch.methods.put_command, 1);
  });
  EXPECT_THROW(k.run_for(1_us), hlcs::Error);
}

struct RtlSystemBench {
  Kernel k;
  sim::Clock clk{k, "clk", 10_ns};
  pci::PciBus bus{k, "pci", clk};
  pci::PciArbiter arb{k, "arb", bus};
  pci::PciMonitor mon{k, "mon", bus};
  pci::PciTarget target;
  RtlPciSystem system{k, "rtl_sys", bus, arb};

  explicit RtlSystemBench(pci::TargetConfig tcfg = {.base = 0x1000,
                                                    .size = 0x1000})
      : target(k, "t0", bus, tcfg) {}

  verify::Transcript run(const std::vector<CommandType>& workload) {
    verify::Transcript out;
    bool done = false;
    k.spawn("app", [&]() -> Task {
      for (const CommandType& cmd : workload) {
        const sim::Time issued = k.now();
        ResponseType resp;
        co_await system.execute(cmd, resp);
        out.record(cmd, resp, issued, k.now());
      }
      done = true;
    });
    for (int slice = 0; slice < 5000 && !done; ++slice) k.run_for(10_us);
    EXPECT_TRUE(done) << "post-synthesis system stalled";
    return out;
  }
};

verify::Transcript functional_reference(
    const std::vector<CommandType>& workload) {
  Kernel k;
  tlm::TlmMemory mem(0x1000, 0x1000);
  FunctionalBusInterface iface(k, "iface", mem);
  Application app(k, "app", iface, workload);
  k.run();
  return app.transcript();
}

TEST(RtlPciSystem, SingleWriteReadRoundTrip) {
  RtlSystemBench b;
  CommandType wr;
  wr.op = BusOp::Write;
  wr.addr = 0x1010;
  wr.data = {0xFACE};
  CommandType rd;
  rd.op = BusOp::Read;
  rd.addr = 0x1010;
  rd.count = 1;
  verify::Transcript t = b.run({wr, rd});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.entries()[0].status, pci::PciResult::Ok);
  EXPECT_EQ(t.entries()[1].data, (std::vector<std::uint32_t>{0xFACE}));
  EXPECT_TRUE(b.mon.violations().empty()) << b.mon.violations().front();
  EXPECT_GT(b.system.rtl_channel().grants(), 4u)
      << "every word and command passes through the synthesised object";
}

TEST(RtlPciSystem, BurstTransfersStreamThroughRtlObject) {
  RtlSystemBench b;
  CommandType wr;
  wr.op = BusOp::WriteBurst;
  wr.addr = 0x1000;
  wr.data = {10, 20, 30, 40, 50};
  CommandType rd;
  rd.op = BusOp::ReadBurst;
  rd.addr = 0x1000;
  rd.count = 5;
  verify::Transcript t = b.run({wr, rd});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.entries()[1].data,
            (std::vector<std::uint32_t>{10, 20, 30, 40, 50}));
  // putCommand + 5 wdata (x2 grants each: put and get) + responses...
  EXPECT_GE(b.system.rtl_channel().grants(), 20u);
}

TEST(RtlPciSystem, MasterAbortPropagatesAsStatus) {
  RtlSystemBench b;
  CommandType rd;
  rd.op = BusOp::Read;
  rd.addr = 0x900000;  // nobody decodes this
  rd.count = 1;
  verify::Transcript t = b.run({rd});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.entries()[0].status, pci::PciResult::MasterAbort);
}

TEST(RtlPciSystem, EquivalentToFunctionalModel) {
  // The paper's consistency claim at FULL system scope: spec-level
  // functional model vs post-synthesis implementation model.
  auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x400, .seed = 31337}, 40);
  verify::Transcript golden = functional_reference(workload);
  RtlSystemBench b;
  verify::Transcript rtl = b.run(workload);
  auto cmp = verify::compare_functional(golden, rtl);
  EXPECT_TRUE(cmp) << cmp.first_difference;
  EXPECT_EQ(cmp.compared, 40u);
  EXPECT_TRUE(b.mon.violations().empty());
}

TEST(RtlPciSystem, EquivalentUnderHostileTargetTiming) {
  auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x200, .seed = 777}, 25);
  verify::Transcript golden = functional_reference(workload);
  RtlSystemBench b(pci::TargetConfig{.base = 0x1000,
                                     .size = 0x1000,
                                     .devsel = pci::DevselSpeed::Slow,
                                     .initial_wait = 4,
                                     .per_word_wait = 2,
                                     .disconnect_after = 2,
                                     .retry_first = 3});
  verify::Transcript rtl = b.run(workload);
  auto cmp = verify::compare_functional(golden, rtl);
  EXPECT_TRUE(cmp) << cmp.first_difference;
}

}  // namespace
}  // namespace hlcs::pattern
