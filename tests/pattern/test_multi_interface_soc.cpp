// The pattern at SoC scope: several units under design, EACH owning its
// own PCI bus-interface library element, all sharing one physical bus --
// the deployment the paper's Figure 2 sketches.  Checks isolation
// (per-unit transcripts correct), bus-level protocol cleanliness, and
// fairness across interfaces.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/tlm/tlm.hpp"
#include "hlcs/verify/compare.hpp"

namespace hlcs::pattern {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;

struct Soc {
  Kernel k;
  sim::Clock clk{k, "clk", 10_ns};
  pci::PciBus bus{k, "pci", clk};
  pci::PciArbiter arb{k, "arb", bus};
  pci::PciMonitor mon{k, "mon", bus};
  std::vector<std::unique_ptr<pci::PciTarget>> targets;
  std::vector<std::unique_ptr<PciBusInterface>> ifaces;
  std::vector<std::unique_ptr<Application>> apps;

  void add_target(std::uint32_t base, pci::DevselSpeed speed,
                  unsigned waits) {
    targets.push_back(std::make_unique<pci::PciTarget>(
        k, "t" + std::to_string(targets.size()), bus,
        pci::TargetConfig{.base = base,
                          .size = 0x1000,
                          .devsel = speed,
                          .initial_wait = waits}));
  }

  void add_unit(const std::vector<CommandType>& workload) {
    auto iface = std::make_unique<PciBusInterface>(
        k, "iface" + std::to_string(ifaces.size()), bus, arb);
    apps.push_back(std::make_unique<Application>(
        k, "app" + std::to_string(apps.size()), *iface, workload));
    ifaces.push_back(std::move(iface));
  }

  void run() {
    auto all_done = [&] {
      for (const auto& a : apps) {
        if (!a->done()) return false;
      }
      return true;
    };
    for (int slice = 0; slice < 20000 && !all_done(); ++slice) {
      k.run_for(10_us);
    }
    for (const auto& a : apps) EXPECT_TRUE(a->done()) << a->name();
  }
};

verify::Transcript functional_golden(const std::vector<CommandType>& w,
                                     std::uint32_t base) {
  Kernel k;
  tlm::TlmMemory mem(base, 0x1000);
  FunctionalBusInterface iface(k, "iface", mem);
  Application app(k, "app", iface, w);
  k.run();
  return app.transcript();
}

TEST(MultiInterfaceSoc, ThreeUnitsThreeTargetsAllConsistent) {
  Soc soc;
  soc.add_target(0x10000, pci::DevselSpeed::Fast, 0);
  soc.add_target(0x20000, pci::DevselSpeed::Medium, 1);
  soc.add_target(0x30000, pci::DevselSpeed::Slow, 3);
  std::vector<std::vector<CommandType>> workloads;
  for (int u = 0; u < 3; ++u) {
    const std::uint32_t base = 0x10000u * static_cast<std::uint32_t>(u + 1);
    workloads.push_back(tlm::random_workload(
        tlm::WorkloadConfig{.base = base,
                            .span = 0x400,
                            .seed = 0x50Cu + static_cast<std::uint64_t>(u)},
        40));
    soc.add_unit(workloads.back());
  }
  soc.run();
  // Each unit's transcript matches its own functional golden run: the
  // shared bus and cross-unit contention change timing only.
  for (int u = 0; u < 3; ++u) {
    const std::uint32_t base = 0x10000u * static_cast<std::uint32_t>(u + 1);
    verify::Transcript golden = functional_golden(workloads[static_cast<std::size_t>(u)], base);
    auto cmp = verify::compare_functional(
        golden, soc.apps[static_cast<std::size_t>(u)]->transcript());
    EXPECT_TRUE(cmp) << "unit " << u << ": " << cmp.first_difference;
  }
  EXPECT_TRUE(soc.mon.violations().empty()) << soc.mon.violations().front();
  EXPECT_GT(soc.arb.regrants(), 10u) << "units must actually interleave";
}

TEST(MultiInterfaceSoc, UnitsShareOneTargetWithoutInterference) {
  // All units write to the SAME target but disjoint regions; after the
  // run every region holds exactly its unit's data.
  Soc soc;
  soc.add_target(0x10000, pci::DevselSpeed::Fast, 0);
  constexpr int kUnits = 4;
  constexpr std::uint32_t kWords = 32;
  for (int u = 0; u < kUnits; ++u) {
    std::vector<CommandType> w;
    const std::uint32_t base =
        0x10000u + static_cast<std::uint32_t>(u) * kWords * 4;
    for (std::uint32_t i = 0; i < kWords; ++i) {
      CommandType c;
      c.op = BusOp::Write;
      c.addr = base + i * 4;
      c.data = {0xCAFE0000u + static_cast<std::uint32_t>(u) * 0x100 + i};
      w.push_back(std::move(c));
    }
    soc.add_unit(w);
  }
  soc.run();
  for (int u = 0; u < kUnits; ++u) {
    for (std::uint32_t i = 0; i < kWords; ++i) {
      const std::uint32_t off = static_cast<std::uint32_t>(u) * kWords * 4 + i * 4;
      EXPECT_EQ(soc.targets[0]->memory().read_word(off),
                0xCAFE0000u + static_cast<std::uint32_t>(u) * 0x100 + i)
          << "unit " << u << " word " << i;
    }
  }
  EXPECT_TRUE(soc.mon.violations().empty());
}

TEST(MultiInterfaceSoc, MixedAbstractionUnitsCoexist) {
  // One unit on the pin-accurate interface, one on a functional
  // interface with its own TLM memory: the design flow's intermediate
  // state where only part of the system has been refined.
  Soc soc;
  soc.add_target(0x10000, pci::DevselSpeed::Fast, 0);
  auto pci_workload = tlm::sequential_workload(
      tlm::WorkloadConfig{.base = 0x10000, .span = 0x200}, 30);
  soc.add_unit(pci_workload);

  tlm::TlmMemory func_mem(0x50000, 0x1000);
  FunctionalBusInterface func_iface(soc.k, "func_iface", func_mem);
  auto func_workload = tlm::sequential_workload(
      tlm::WorkloadConfig{.base = 0x50000, .span = 0x200}, 30);
  Application func_app(soc.k, "func_app", func_iface, func_workload);

  soc.run();
  for (int slice = 0; slice < 100 && !func_app.done(); ++slice) {
    soc.k.run_for(10_us);
  }
  ASSERT_TRUE(func_app.done());
  verify::Transcript g1 = functional_golden(pci_workload, 0x10000);
  auto c1 = verify::compare_functional(g1, soc.apps[0]->transcript());
  EXPECT_TRUE(c1) << c1.first_difference;
  verify::Transcript g2 = functional_golden(func_workload, 0x50000);
  auto c2 = verify::compare_functional(g2, func_app.transcript());
  EXPECT_TRUE(c2) << c2.first_difference;
}

}  // namespace
}  // namespace hlcs::pattern
