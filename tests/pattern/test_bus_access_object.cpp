// The guarded-method contract of the bus-access global object, exactly
// as the paper specifies it (Sec. 3).
#include <gtest/gtest.h>

#include "hlcs/pattern/bus_access_object.hpp"
#include "hlcs/sim/sim.hpp"

namespace hlcs::pattern {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;
using sim::Task;

TEST(BusAccessState, GuardPredicates) {
  BusAccessState s;
  EXPECT_FALSE(s.isPendingCommand());
  EXPECT_FALSE(s.isApplicationReadData());
  s.putCommand(CommandType{.op = BusOp::Read, .addr = 4});
  EXPECT_TRUE(s.isPendingCommand());
  CommandType c = s.getCommand();
  EXPECT_EQ(c.addr, 4u);
  EXPECT_FALSE(s.isPendingCommand());
  s.putResponse(ResponseType{.id = 0});
  EXPECT_TRUE(s.isApplicationReadData());
  s.appDataGet();
  EXPECT_FALSE(s.isApplicationReadData());
}

TEST(BusAccessState, GuardViolationsThrow) {
  BusAccessState s;
  EXPECT_THROW(s.getCommand(), hlcs::Error);
  EXPECT_THROW(s.appDataGet(), hlcs::Error);
  s.putCommand(CommandType{});
  EXPECT_THROW(s.putCommand(CommandType{}), hlcs::Error);
}

TEST(BusAccessState, ResetCancelsPendingWork) {
  BusAccessState s;
  s.putCommand(CommandType{});
  s.putResponse(ResponseType{});
  s.reset();
  EXPECT_FALSE(s.isPendingCommand());
  EXPECT_FALSE(s.isApplicationReadData());
  EXPECT_EQ(s.take_id(), 0u) << "ids restart after reset";
}

TEST(BusAccessState, IdsAreSequential) {
  BusAccessState s;
  EXPECT_EQ(s.take_id(), 0u);
  EXPECT_EQ(s.take_id(), 1u);
  EXPECT_EQ(s.take_id(), 2u);
}

TEST(BusAccessChannel, PutCommandBlocksUntilSlotFree) {
  // "the method is guarded upon the condition that there is no other
  // command pending for execution; otherwise, the caller module is
  // suspended until its request can be handled."
  Kernel k;
  BusAccessChannel chan(k, "chan");
  auto app = chan.app_port("app");
  auto ifc = chan.if_port("iface");
  std::vector<int> order;
  k.spawn("app", [&]() -> Task {
    co_await app.putCommand(CommandType{.op = BusOp::Read, .addr = 0x10});
    order.push_back(1);
    // Second put must block until the interface fetches the first.
    co_await app.putCommand(CommandType{.op = BusOp::Read, .addr = 0x20});
    order.push_back(3);
  });
  k.spawn("iface", [&]() -> Task {
    co_await k.wait(50_ns);
    CommandType c = co_await ifc.getCommand();
    EXPECT_EQ(c.addr, 0x10u);
    order.push_back(2);
    co_await k.wait(50_ns);
    CommandType c2 = co_await ifc.getCommand();
    EXPECT_EQ(c2.addr, 0x20u);
    order.push_back(4);
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(BusAccessChannel, GetCommandBlocksUntilCommandArrives) {
  // "it returns the command being asked by the application, if there is
  // one pending; otherwise the calling process is blocked."
  Kernel k;
  BusAccessChannel chan(k, "chan");
  auto app = chan.app_port("app");
  auto ifc = chan.if_port("iface");
  sim::Time got_at;
  k.spawn("iface", [&]() -> Task {
    co_await ifc.getCommand();
    got_at = k.now();
  });
  k.spawn("app", [&]() -> Task {
    co_await k.wait(77_ns);
    co_await app.putCommand(CommandType{});
  });
  k.run();
  EXPECT_EQ(got_at, 77_ns);
}

TEST(BusAccessChannel, AppDataGetBlocksUntilResponse) {
  Kernel k;
  BusAccessChannel chan(k, "chan");
  auto app = chan.app_port("app");
  auto ifc = chan.if_port("iface");
  sim::Time got_at;
  std::uint32_t value = 0;
  k.spawn("app", [&]() -> Task {
    ResponseType r = co_await app.appDataGet();
    got_at = k.now();
    value = r.data.at(0);
  });
  k.spawn("iface", [&]() -> Task {
    co_await k.wait(33_ns);
    ResponseType r;
    r.data = {0xFEED};
    co_await ifc.putResponse(std::move(r));
  });
  k.run();
  EXPECT_EQ(got_at, 33_ns);
  EXPECT_EQ(value, 0xFEEDu);
}

TEST(BusAccessChannel, ResetUnblocksNothingButClearsState) {
  Kernel k;
  BusAccessChannel chan(k, "chan");
  auto app = chan.app_port("app");
  k.spawn("app", [&]() -> Task {
    co_await app.putCommand(CommandType{.addr = 1});
    co_await app.reset();
    EXPECT_FALSE(chan.object().peek().isPendingCommand());
    // After reset the slot is free again.
    co_await app.putCommand(CommandType{.addr = 2});
  });
  k.run();
  EXPECT_TRUE(chan.object().peek().isPendingCommand());
}

TEST(BusAccessChannel, TryVariantsDoNotBlock) {
  Kernel k;
  BusAccessChannel chan(k, "chan");
  auto app = chan.app_port("app");
  k.spawn("app", [&]() -> Task {
    EXPECT_FALSE(app.try_appDataGet().has_value());
    CommandType c1;
    c1.addr = 1;
    auto id1 = app.try_putCommand(c1);
    EXPECT_TRUE(id1.has_value());
    CommandType c2;
    c2.addr = 2;
    auto id2 = app.try_putCommand(c2);
    EXPECT_FALSE(id2.has_value()) << "slot already occupied";
    co_return;
  });
  k.run();
}

TEST(BusAccessChannel, CommandIdsMatchResponses) {
  Kernel k;
  BusAccessChannel chan(k, "chan");
  auto app = chan.app_port("app");
  auto ifc = chan.if_port("iface");
  std::vector<std::uint64_t> issued_ids, response_ids;
  k.spawn("app", [&]() -> Task {
    for (int i = 0; i < 5; ++i) {
      std::uint64_t id =
          co_await app.putCommand(CommandType{.addr = 0x100u + static_cast<std::uint32_t>(i)});
      issued_ids.push_back(id);
      ResponseType r = co_await app.appDataGet();
      response_ids.push_back(r.id);
    }
  });
  k.spawn("iface", [&]() -> Task {
    for (int i = 0; i < 5; ++i) {
      CommandType c = co_await ifc.getCommand();
      co_await ifc.putResponse(ResponseType{.id = c.id});
    }
  });
  k.run();
  EXPECT_EQ(issued_ids, response_ids);
  EXPECT_EQ(issued_ids, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(BusAccessChannel, ClockedChannelConsumesCycles) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  BusAccessChannel chan(k, "chan", clk);
  auto app = chan.app_port("app");
  auto ifc = chan.if_port("iface");
  sim::Time t_done;
  k.spawn("app", [&]() -> Task {
    co_await app.putCommand(CommandType{});
    t_done = k.now();
  });
  k.spawn("iface", [&]() -> Task { co_await ifc.getCommand(); });
  k.run_for(1_us);
  // First rising edge is at 5ns: the grant consumes a clock edge.
  EXPECT_GE(t_done.picos(), 5000u);
}

}  // namespace
}  // namespace hlcs::pattern
