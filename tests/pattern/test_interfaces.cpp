// The two library elements (functional and pin-accurate PCI) and the
// Figure 3 refinement property: one application, interchangeable
// interfaces, identical transcripts.
#include <gtest/gtest.h>

#include <memory>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/tlm/tlm.hpp"
#include "hlcs/verify/compare.hpp"
#include "hlcs/verify/coverage.hpp"

namespace hlcs::pattern {
namespace {

using namespace hlcs::sim::literals;
using sim::Kernel;
using sim::Task;

TEST(FunctionalInterface, ServesReadsAndWrites) {
  Kernel k;
  tlm::TlmMemory mem(0x1000, 0x1000);
  FunctionalBusInterface iface(k, "iface", mem);
  Application app(k, "app", iface,
                  {CommandType{.op = BusOp::Write, .addr = 0x1004,
                               .data = {0xAB}},
                   CommandType{.op = BusOp::Read, .addr = 0x1004, .count = 1}});
  k.run();
  ASSERT_TRUE(app.done());
  ASSERT_EQ(app.transcript().size(), 2u);
  EXPECT_EQ(app.transcript().entries()[1].data.at(0), 0xABu);
  EXPECT_EQ(iface.stats().commands_served, 2u);
  EXPECT_EQ(mem.peek(0x4), 0xABu);
}

TEST(FunctionalInterface, OutOfWindowReportsMasterAbort) {
  Kernel k;
  tlm::TlmMemory mem(0x1000, 0x100);
  FunctionalBusInterface iface(k, "iface", mem);
  Application app(k, "app", iface,
                  {CommandType{.op = BusOp::Read, .addr = 0x9000, .count = 1}});
  k.run();
  ASSERT_TRUE(app.done());
  EXPECT_EQ(app.transcript().entries()[0].status, pci::PciResult::MasterAbort);
  EXPECT_EQ(iface.stats().failures, 1u);
}

TEST(FunctionalInterface, LooseTimingConsumesSimTime) {
  Kernel k;
  tlm::TlmMemory mem(0x0, 0x1000);
  FunctionalBusInterface iface(
      k, "iface", mem,
      FunctionalTiming{.per_command = 100_ns, .per_word = 10_ns});
  Application app(k, "app", iface,
                  {CommandType{.op = BusOp::ReadBurst, .addr = 0, .count = 4}});
  k.run();
  ASSERT_TRUE(app.done());
  EXPECT_GE(k.now(), 140_ns);
}

struct PciFixture {
  Kernel k;
  sim::Clock clk{k, "clk", 10_ns};
  pci::PciBus bus{k, "pci", clk};
  pci::PciArbiter arb{k, "arb", bus};
  pci::PciMonitor mon{k, "mon", bus};
  pci::PciTarget target;
  PciBusInterface iface;

  explicit PciFixture(pci::TargetConfig tcfg = {.base = 0x1000,
                                                .size = 0x1000})
      : target(k, "t0", bus, tcfg), iface(k, "iface", bus, arb) {}
};

TEST(PciInterface, ServesCommandsOverPinLevelBus) {
  PciFixture f;
  Application app(
      f.k, "app", f.iface,
      {CommandType{.op = BusOp::Write, .addr = 0x1010, .data = {0x1234}},
       CommandType{.op = BusOp::Read, .addr = 0x1010, .count = 1},
       CommandType{.op = BusOp::WriteBurst, .addr = 0x1020,
                   .data = {1, 2, 3, 4}},
       CommandType{.op = BusOp::ReadBurst, .addr = 0x1020, .count = 4}});
  f.k.run_for(100_us);
  ASSERT_TRUE(app.done());
  const auto& es = app.transcript().entries();
  ASSERT_EQ(es.size(), 4u);
  EXPECT_EQ(es[1].data.at(0), 0x1234u);
  EXPECT_EQ(es[3].data, (std::vector<std::uint32_t>{1, 2, 3, 4}));
  for (const auto& e : es) EXPECT_EQ(e.status, pci::PciResult::Ok);
  EXPECT_TRUE(f.mon.violations().empty()) << f.mon.violations().front();
  EXPECT_EQ(f.mon.records().size(), 4u) << "four pin-level transactions";
  EXPECT_GT(f.iface.master_stats().words, 0u);
}

TEST(PciInterface, RetriesAreTransparentToApplication) {
  PciFixture f(pci::TargetConfig{.base = 0x1000, .size = 0x1000,
                                 .retry_first = 2});
  Application app(
      f.k, "app", f.iface,
      {CommandType{.op = BusOp::Write, .addr = 0x1000, .data = {0x42}}});
  f.k.run_for(100_us);
  ASSERT_TRUE(app.done());
  EXPECT_EQ(app.transcript().entries()[0].status, pci::PciResult::Ok);
  EXPECT_GE(f.iface.master_stats().retries, 2u);
  EXPECT_TRUE(f.mon.violations().empty()) << f.mon.violations().front();
}

// ----------------------------------------------------------------------
// Figure 3: communication refinement.  The same application workload runs
// against the functional interface and against the pin-accurate PCI
// interface; transcripts must be functionally identical.
// ----------------------------------------------------------------------

verify::Transcript run_functional(const std::vector<CommandType>& workload) {
  Kernel k;
  tlm::TlmMemory mem(0x1000, 0x1000);
  FunctionalBusInterface iface(k, "iface", mem);
  Application app(k, "app", iface, workload);
  k.run();
  EXPECT_TRUE(app.done());
  return app.transcript();
}

verify::Transcript run_pci(const std::vector<CommandType>& workload,
                           pci::TargetConfig tcfg = {.base = 0x1000,
                                                     .size = 0x1000}) {
  PciFixture f(tcfg);
  Application app(f.k, "app", f.iface, workload);
  f.k.run_for(10000_us);
  EXPECT_TRUE(app.done());
  EXPECT_TRUE(f.mon.violations().empty());
  return app.transcript();
}

TEST(Refinement, SequentialWorkloadTranscriptsMatch) {
  auto workload = tlm::sequential_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x200}, 60);
  verify::Transcript func = run_functional(workload);
  verify::Transcript pin = run_pci(workload);
  auto cmp = verify::compare_functional(func, pin);
  EXPECT_TRUE(cmp) << cmp.first_difference;
  EXPECT_EQ(cmp.compared, 60u);
}

TEST(Refinement, RandomWorkloadTranscriptsMatch) {
  auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x400, .seed = 99}, 80);
  verify::Transcript func = run_functional(workload);
  verify::Transcript pin = run_pci(workload);
  auto cmp = verify::compare_functional(func, pin);
  EXPECT_TRUE(cmp) << cmp.first_difference;
}

TEST(Refinement, MatchEvenWithSlowRetryingTarget) {
  auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x200, .seed = 7}, 40);
  verify::Transcript func = run_functional(workload);
  verify::Transcript pin = run_pci(
      workload, pci::TargetConfig{.base = 0x1000,
                                  .size = 0x1000,
                                  .devsel = pci::DevselSpeed::Slow,
                                  .initial_wait = 3,
                                  .per_word_wait = 2,
                                  .disconnect_after = 3,
                                  .retry_first = 2});
  auto cmp = verify::compare_functional(func, pin);
  EXPECT_TRUE(cmp) << cmp.first_difference;
}

TEST(Refinement, PinLevelIsSlowerInSimulatedTime) {
  auto workload = tlm::sequential_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x100}, 30);
  verify::Transcript func = run_functional(workload);
  verify::Transcript pin = run_pci(workload);
  auto t = verify::compare_timing(func, pin);
  EXPECT_EQ(t.span_a, sim::Time::zero()) << "functional model is untimed";
  EXPECT_GT(t.span_b, 1_us) << "pin-level model consumes bus cycles";
}

TEST(Refinement, DmaWorkloadMatches) {
  auto workload = tlm::dma_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x800, .seed = 3}, 4, 16);
  verify::Transcript func = run_functional(workload);
  verify::Transcript pin = run_pci(workload);
  auto cmp = verify::compare_functional(func, pin);
  EXPECT_TRUE(cmp) << cmp.first_difference;
}

TEST(Coverage, ObservesOpsAndStatuses) {
  auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x400, .seed = 21}, 50);
  verify::Transcript t = run_functional(workload);
  verify::Coverage cov;
  cov.observe(t);
  EXPECT_GE(cov.distinct_ops(), 3u);
  EXPECT_GE(cov.distinct_statuses(), 1u);
  EXPECT_GT(cov.hits("write") + cov.hits("write_burst"), 0u);
  EXPECT_NE(cov.report().find("ops:"), std::string::npos);
}

TEST(ClockedChannel, PciInterfaceWithClockedChannelStillCorrect) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arb(k, "arb", bus);
  pci::PciMonitor mon(k, "mon", bus);
  pci::PciTarget target(k, "t0", bus,
                        pci::TargetConfig{.base = 0x1000, .size = 0x1000});
  PciBusInterface iface(k, "iface", bus, arb, clk);
  auto workload = tlm::sequential_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x100}, 20);
  Application app(k, "app", iface, workload);
  k.run_for(10000_us);
  ASSERT_TRUE(app.done());
  verify::Transcript func = run_functional(workload);
  auto cmp = verify::compare_functional(func, app.transcript());
  EXPECT_TRUE(cmp) << cmp.first_difference;
  EXPECT_TRUE(mon.violations().empty());
}

}  // namespace
}  // namespace hlcs::pattern
