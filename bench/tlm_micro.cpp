// TLM: loosely-timed fast-path microbenchmarks -- transaction throughput
// of the three refinement levels of the SAME random workload, and the
// LT-vs-pin-level speedup gate.
//
//   BM_LtTxnRate          -- quantum-decoupled LtStimuliEngine (DMI +
//                            warp + batched commits), per quantum size.
//   BM_FunctionalTxnRate  -- untimed functional element driven through
//                            the guarded-method channel (the PR-scale
//                            reference everything else refines).
//   BM_PinLevelTxnRate    -- synthesised pin-level PCI system clocked
//                            at 10ns (RtlPciSystem), the slowest and
//                            most detailed model.
//
// BM_TlmSpeedup is the acceptance gate: each iteration runs the
// pin-level reference and the LT engine back to back on the same
// workload (interleaved A/B, so host drift hits both sides equally)
// and reports the per-iteration txn-rate ratio; with
// --benchmark_repetitions the JSON carries the medians.  speedup >= 50
// on the random workload is the bar (docs/PERF.md, "Loosely-timed
// fast path").  Equivalence of what the two sides compute is not
// re-checked here -- that is tier-1's job (test_tlm_lt, cli_equiv_lt).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/pci/pci.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/tlm/stimuli.hpp"

namespace {

using namespace hlcs;
using namespace hlcs::sim::literals;
using pattern::CommandType;
using pattern::ResponseType;
using sim::Kernel;
using sim::Task;

std::vector<CommandType> bench_workload(std::size_t transactions) {
  return tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x400, .seed = 31337},
      transactions);
}

struct RunSample {
  double wall_s = 0;  ///< wall time of the run loop only
  std::uint64_t txns = 0;
};

/// Construction/destruction stay outside the timed region in all three
/// runners: the bench measures simulation throughput, not setup cost.
RunSample run_lt(const std::vector<CommandType>& workload,
                 std::uint64_t quantum_cmds) {
  Kernel k;
  tlm::TlmMemory mem(0x1000, 0x1000);
  pattern::LtConfig cfg;
  cfg.quantum = sim::Time::ns(60) * quantum_cmds;
  pattern::LtBusInterface bus(k, "lt", mem, cfg);
  pattern::LtStimuliEngine eng(bus, workload);

  const auto t0 = std::chrono::steady_clock::now();
  while (!eng.done()) k.run_for(1000_us);
  const auto t1 = std::chrono::steady_clock::now();

  return RunSample{std::chrono::duration<double>(t1 - t0).count(),
                   bus.tlm_stats().transactions};
}

RunSample run_functional(const std::vector<CommandType>& workload) {
  Kernel k;
  tlm::TlmMemory mem(0x1000, 0x1000);
  pattern::FunctionalBusInterface iface(k, "iface", mem);
  pattern::Application app(k, "app", iface, workload);

  const auto t0 = std::chrono::steady_clock::now();
  while (!app.done()) k.run_for(1000_us);
  const auto t1 = std::chrono::steady_clock::now();

  return RunSample{std::chrono::duration<double>(t1 - t0).count(),
                   app.transcript().size()};
}

RunSample run_pin_level(const std::vector<CommandType>& workload) {
  Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arb(k, "arb", bus);
  pci::PciTarget target(k, "t0", bus,
                        pci::TargetConfig{.base = 0x1000, .size = 0x1000});
  pattern::RtlPciSystem system(k, "rtl_sys", bus, arb);
  std::uint64_t txns = 0;
  bool done = false;
  k.spawn("app", [&]() -> Task {
    for (const CommandType& cmd : workload) {
      ResponseType resp;
      co_await system.execute(cmd, resp);
      ++txns;
    }
    done = true;
  });

  const auto t0 = std::chrono::steady_clock::now();
  while (!done) k.run_for(100_us);
  const auto t1 = std::chrono::steady_clock::now();

  return RunSample{std::chrono::duration<double>(t1 - t0).count(), txns};
}

void BM_LtTxnRate(benchmark::State& state) {
  const auto workload =
      bench_workload(static_cast<std::size_t>(state.range(0)));
  const auto quantum = static_cast<std::uint64_t>(state.range(1));
  std::uint64_t txns = 0;
  for (auto _ : state) {
    const RunSample r = run_lt(workload, quantum);
    state.SetIterationTime(r.wall_s);
    txns += r.txns;
  }
  state.counters["txn/s"] = benchmark::Counter(static_cast<double>(txns),
                                               benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LtTxnRate)
    ->UseManualTime()
    ->ArgNames({"txns", "quantum"})
    ->Args({1024, 1})
    ->Args({1024, 16})
    ->Args({1024, 1024})
    ->Unit(benchmark::kMicrosecond);

void BM_FunctionalTxnRate(benchmark::State& state) {
  const auto workload =
      bench_workload(static_cast<std::size_t>(state.range(0)));
  std::uint64_t txns = 0;
  for (auto _ : state) {
    const RunSample r = run_functional(workload);
    state.SetIterationTime(r.wall_s);
    txns += r.txns;
  }
  state.counters["txn/s"] = benchmark::Counter(static_cast<double>(txns),
                                               benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalTxnRate)
    ->UseManualTime()
    ->ArgNames({"txns"})
    ->Args({1024})
    ->Unit(benchmark::kMicrosecond);

void BM_PinLevelTxnRate(benchmark::State& state) {
  const auto workload =
      bench_workload(static_cast<std::size_t>(state.range(0)));
  std::uint64_t txns = 0;
  for (auto _ : state) {
    const RunSample r = run_pin_level(workload);
    state.SetIterationTime(r.wall_s);
    txns += r.txns;
  }
  state.counters["txn/s"] = benchmark::Counter(static_cast<double>(txns),
                                               benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PinLevelTxnRate)
    ->UseManualTime()
    ->ArgNames({"txns"})
    ->Args({256})
    ->Unit(benchmark::kMillisecond);

/// Pin-level-vs-LT A/B: both runs inside every iteration, reference
/// first, so scheduler drift cancels in the ratio.  Medians of the
/// per-iteration ratios (run with --benchmark_repetitions) are the
/// numbers quoted in docs/PERF.md; speedup >= 50 is the acceptance bar.
void BM_TlmSpeedup(benchmark::State& state) {
  const auto workload =
      bench_workload(static_cast<std::size_t>(state.range(0)));
  const auto quantum = static_cast<std::uint64_t>(state.range(1));
  double pin_wall = 0, lt_wall = 0;
  std::uint64_t txns = 0;
  for (auto _ : state) {
    const RunSample a = run_pin_level(workload);
    const RunSample b = run_lt(workload, quantum);
    state.SetIterationTime(a.wall_s + b.wall_s);
    pin_wall += a.wall_s;
    lt_wall += b.wall_s;
    txns += a.txns + b.txns;
  }
  // Guard: both sides must have executed the same workload or the
  // ratio is meaningless.
  benchmark::DoNotOptimize(txns);
  state.counters["speedup"] = lt_wall > 0 ? pin_wall / lt_wall : 0;
}
BENCHMARK(BM_TlmSpeedup)
    ->UseManualTime()
    ->ArgNames({"txns", "quantum"})
    ->Args({256, 16})
    ->Args({256, 1024})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
