// TRACE: waveform-path microbenchmarks -- the A/B evidence for the
// dirty-list VCD emitter and the streaming verify pipeline.
//
//   BM_TraceDelta   the paper's PCI test system running a full
//                   application workload, with tracing off (baseline
//                   kernel throughput) and on (the emitter riding every
//                   delta).  The gap between the two is the entire cost
//                   of waveform dumping.
//   BM_TraceSparse  pure emitter cost under sparse activity: many
//                   registered signals, one toggling.  dirty_frac shows
//                   the dirty list visiting a fraction of the items the
//                   old poll-everything emitter walked each sample.
//   BM_VcdParse     consumer side: zero-copy tokenizer + packed change
//                   storage over a real PCI dump, reported as bytes/s.
//   BM_VcdCompare   the streaming two-file comparator over the same
//                   dump pair (the Fig. 4 consistency check's hot loop).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/verify/vcd_reader.hpp"

namespace {

using namespace hlcs;
using namespace hlcs::sim::literals;

/// One full PCI system run (the pci_system example's shape): write,
/// read, burst write, burst read.  Returns the kernel delta count.
std::uint64_t run_pci_workload(sim::Trace* trace) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 30_ns);
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arb(k, "arb", bus);
  pci::PciTarget target(k, "t0", bus,
                        pci::TargetConfig{.base = 0x1000,
                                          .size = 0x1000,
                                          .initial_wait = 1});
  pattern::PciBusInterface iface(k, "iface", bus, arb);
  if (trace) {
    bus.trace_all(*trace);
    k.attach_trace(*trace);
  }
  std::vector<pattern::CommandType> workload = {
      {.op = pattern::BusOp::Write, .addr = 0x1000, .data = {0xCAFED00D}},
      {.op = pattern::BusOp::Read, .addr = 0x1000, .count = 1},
      {.op = pattern::BusOp::WriteBurst,
       .addr = 0x1040,
       .data = {1, 2, 3, 4, 5, 6, 7, 8}},
      {.op = pattern::BusOp::ReadBurst, .addr = 0x1040, .count = 8},
  };
  pattern::Application app(k, "app", iface, workload);
  for (int slice = 0; slice < 100 && !app.done(); ++slice) k.run_for(10_us);
  return k.stats().deltas;
}

/// Delta throughput of the PCI system with tracing off (arg 0) and on
/// (arg 1).  The trace file lives in the build tree and is rewritten
/// every iteration, so file-system append cost is included -- that is
/// part of what the chunked buffer is for.
void BM_TraceDelta(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  const std::string path = HLCS_TRACE_DIR "/trace_micro_delta.vcd";
  std::uint64_t deltas = 0;
  std::uint64_t dirty_visits = 0, samples = 0, registered = 0;
  for (auto _ : state) {
    if (traced) {
      sim::Trace t(path);
      deltas += run_pci_workload(&t);
      t.flush();
      const sim::TraceStats& st = t.stats();
      dirty_visits += st.dirty_visits;
      samples += st.samples;
      registered = st.registered;
    } else {
      deltas += run_pci_workload(nullptr);
    }
  }
  state.counters["deltas/s"] = benchmark::Counter(
      static_cast<double>(deltas), benchmark::Counter::kIsRate);
  if (traced && samples > 0 && registered > 0) {
    state.counters["dirty_frac"] =
        static_cast<double>(dirty_visits) /
        (static_cast<double>(samples) * static_cast<double>(registered));
  }
}
BENCHMARK(BM_TraceDelta)->ArgName("traced")->Arg(0)->Arg(1);

/// Pure emitter cost under sparse activity: 64 registered signals, one
/// toggling each delta.  This isolates Trace::sample from the kernel --
/// the old emitter walked all 64 items per sample, the dirty list
/// visits ~1.
void BM_TraceSparse(benchmark::State& state) {
  const std::string path = HLCS_TRACE_DIR "/trace_micro_sparse.vcd";
  sim::Kernel k;
  std::vector<std::unique_ptr<sim::Signal<std::uint32_t>>> quiet;
  for (int i = 0; i < 63; ++i) {
    quiet.push_back(std::make_unique<sim::Signal<std::uint32_t>>(
        k, "q" + std::to_string(i), 0u));
  }
  sim::Signal<bool> busy(k, "busy", false);
  sim::Trace t(path);
  for (auto& q : quiet) t.add(*q);
  t.add(busy);
  k.attach_trace(t);
  bool v = false;
  for (auto _ : state) {
    v = !v;
    busy.write(v);
    k.run_for(1_ns);  // one delta + one sample per iteration
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  const sim::TraceStats& st = t.stats();
  if (st.samples > 0 && st.registered > 0) {
    state.counters["dirty_frac"] =
        static_cast<double>(st.dirty_visits) /
        (static_cast<double>(st.samples) * static_cast<double>(st.registered));
  }
}
BENCHMARK(BM_TraceSparse);

/// Generate the PCI dump once per benchmark binary run and hand the
/// bytes to the parser / the paths to the comparator.
const std::string& pci_dump_path() {
  static const std::string path = [] {
    const std::string p = HLCS_TRACE_DIR "/trace_micro_parse.vcd";
    sim::Trace t(p);
    run_pci_workload(&t);
    return p;
  }();
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void BM_VcdParse(benchmark::State& state) {
  const std::string text = slurp(pci_dump_path());
  std::uint64_t changes = 0;
  for (auto _ : state) {
    verify::VcdFile f = verify::VcdFile::parse(text);
    for (const auto& name : f.signal_names()) {
      changes += f.signal(name).num_changes();
    }
    benchmark::DoNotOptimize(changes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
  state.counters["dump_bytes"] = static_cast<double>(text.size());
}
BENCHMARK(BM_VcdParse);

void BM_VcdCompare(benchmark::State& state) {
  const std::string& a = pci_dump_path();
  const std::uint64_t bytes = slurp(a).size();
  for (auto _ : state) {
    verify::WaveCompareResult r = verify::compare_vcd_files(a, a);
    if (!r) state.SkipWithError("self-compare failed");
    benchmark::DoNotOptimize(r.signals_compared);
  }
  // Two files streamed per comparison.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * bytes));
}
BENCHMARK(BM_VcdCompare);

}  // namespace

BENCHMARK_MAIN();
