// KERN: substrate microbenchmarks -- raw cost of the simulation kernel
// primitives that every experiment above sits on (honesty check: the
// abstraction-level comparisons in fig2_flow are only meaningful if the
// kernel itself is not the bottleneck at the functional level).
#include <benchmark/benchmark.h>

#include "hlcs/osss/osss.hpp"
#include "hlcs/sim/sim.hpp"

namespace {

using namespace hlcs::sim;
using namespace hlcs::sim::literals;

/// Timed-event scheduling throughput: one process sleeping repeatedly.
void BM_TimedWait(benchmark::State& state) {
  const int waits_per_run = static_cast<int>(state.range(0));
  std::uint64_t total = 0;
  std::uint64_t timed_peak = 0;
  for (auto _ : state) {
    Kernel k;
    k.spawn("sleeper", [&]() -> Task {
      for (int i = 0; i < waits_per_run; ++i) co_await k.wait(1_ns);
    });
    k.run();
    total += k.stats().timed_actions;
    timed_peak = k.stats().timed_peak;
  }
  state.counters["waits/s"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
  // A lone sleeper must ride the bypass front: peak stays at 1.
  state.counters["timed_peak"] = static_cast<double>(timed_peak);
}
BENCHMARK(BM_TimedWait)->Arg(1000)->Arg(10000);

/// Event notify/wake round trip between two processes.
void BM_EventPingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  std::uint64_t total = 0;
  std::uint64_t waiter_reallocs = 0;
  for (auto _ : state) {
    Kernel k;
    Event ping(k, "ping"), pong(k, "pong");
    int completed = 0;
    // The waiter spawns first so the opening notify() is not lost
    // (notify() before any waiter is a documented no-op).  When spawn
    // order is not under your control, open with Event::sync() instead;
    // here the order is fixed so the raw notify() cost is what's timed.
    k.spawn("b", [&]() -> Task {
      for (int i = 0; i < rounds; ++i) {
        co_await ping;
        pong.notify();
      }
    });
    k.spawn("a", [&]() -> Task {
      for (int i = 0; i < rounds; ++i) {
        ping.notify();
        co_await pong;
        ++completed;
      }
    });
    k.run();
    if (completed != rounds) state.SkipWithError("ping-pong stalled");
    total += static_cast<std::uint64_t>(rounds) * 2;
    waiter_reallocs = k.stats().waiter_reallocs;
  }
  state.counters["wakeups/s"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
  // Single waiter per event: the inline slots absorb every wait, so the
  // overflow vector never grows.
  state.counters["waiter_reallocs"] = static_cast<double>(waiter_reallocs);
}
BENCHMARK(BM_EventPingPong)->Arg(1000)->Arg(10000);

/// Signal write -> update -> changed-event delivery.
void BM_SignalPropagation(benchmark::State& state) {
  const int writes = static_cast<int>(state.range(0));
  std::uint64_t total = 0;
  for (auto _ : state) {
    Kernel k;
    Signal<int> s(k, "s", 0);
    int seen = 0;
    MethodProcess& m = k.method("obs", [&] { ++seen; }, false);
    s.changed().add_static(m);
    k.spawn("w", [&]() -> Task {
      for (int i = 1; i <= writes; ++i) {
        s.write(i);
        co_await k.wait_delta();
      }
    });
    k.run();
    total += static_cast<std::uint64_t>(seen);
  }
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SignalPropagation)->Arg(1000)->Arg(10000);

/// Resolved-wire update with several drivers.
void BM_WireResolution(benchmark::State& state) {
  const int drivers = static_cast<int>(state.range(0));
  std::uint64_t total = 0;
  for (auto _ : state) {
    Kernel k;
    WireVec w(k, "ad", 32);
    std::vector<WireVec::Driver> ds;
    for (int i = 0; i < drivers; ++i) ds.push_back(w.make_driver());
    k.spawn("drv", [&]() -> Task {
      for (int i = 0; i < 2000; ++i) {
        auto& d = ds[static_cast<std::size_t>(i % drivers)];
        d.write_uint(static_cast<std::uint64_t>(i));
        co_await k.wait_delta();
        d.release();
        co_await k.wait_delta();
      }
    });
    k.run();
    total += 2000;
  }
  state.counters["writes/s"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WireResolution)->Arg(1)->Arg(4)->Arg(16);

/// Clock-edge fan-out to many waiting processes.
void BM_ClockFanout(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  std::uint64_t total = 0;
  for (auto _ : state) {
    Kernel k;
    Clock clk(k, "clk", 10_ns);
    std::uint64_t wakes = 0;
    for (int p = 0; p < procs; ++p) {
      k.spawn("p" + std::to_string(p), [&]() -> Task {
        for (;;) {
          co_await clk.posedge();
          ++wakes;
        }
      });
    }
    k.run_for(1000_ns);  // 100 edges
    total += wakes;
  }
  state.counters["wakes/s"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClockFanout)->Arg(1)->Arg(16)->Arg(128);

/// Granted SharedObject::call throughput under contention, with the
/// allocation-observability counters: pool misses stay at the vector
/// growth count (high-water mark), every further call is a pool hit --
/// i.e. the granted fast path does zero steady-state heap allocation.
void BM_SharedObjectCall(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  std::uint64_t grants = 0, pool_hits = 0, pool_misses = 0;
  for (auto _ : state) {
    Kernel k;
    hlcs::osss::SharedObject<std::uint64_t> obj(
        k, "obj", hlcs::osss::make_policy(hlcs::osss::PolicyKind::Fifo), 0);
    for (int c = 0; c < clients; ++c) {
      auto client = obj.make_client("c" + std::to_string(c));
      k.spawn("p" + std::to_string(c), [&k, client]() -> Task {
        for (int i = 0; i < 1000; ++i) {
          co_await client.call([](std::uint64_t& v) { ++v; });
        }
      });
    }
    k.run();
    grants += obj.stats().grants;
    pool_hits = obj.stats().pending_pool_hits;
    pool_misses = obj.stats().pending_pool_misses;
  }
  state.counters["grants/s"] = benchmark::Counter(
      static_cast<double>(grants), benchmark::Counter::kIsRate);
  state.counters["pool_hits"] = static_cast<double>(pool_hits);
  state.counters["pool_misses"] = static_cast<double>(pool_misses);
}
BENCHMARK(BM_SharedObjectCall)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
