// EQUIV: batch-verification microbenchmarks -- the A/B evidence for the
// 64-lane bit-parallel engine.  Both sides of each comparison run
// interleaved in the same binary on the same synthesised netlist; the
// only variable is the execution strategy, so the medians from
// --benchmark_repetitions are an honest scalar-vs-batch ratio.
//
//   BM_BatchEdge   engine-level: random stimulus lanes stepped through
//                  full clock edges, as 64 independent scalar
//                  NetlistSims (mode 0 = FullTape, mode 1 =
//                  Incremental) or one BatchNetlistSim (mode 2 = K=1 /
//                  64 lanes, mode 3 = K=4 / 256 lanes, mode 4 = K=8 /
//                  512 lanes; the superlane rows carry K x 64 lanes per
//                  tape instruction).  policy 0 (static_priority) is
//                  the comb-dominated case -- arbitration, guards and
//                  muxes are all bitwise, so the whole design runs on
//                  bit-planes; policy 1 (round_robin) carries Add combs
//                  from the rotating-pointer arbiter, so its rows price
//                  the per-lane scalar fallback honestly.  lane_edges/s
//                  is the headline number; the batch rows also report
//                  scalar_frac (fraction of comb evaluations that fell
//                  back to the per-lane scalar tape) and the fused /
//                  scalar-fallback instruction counters.
//   BM_EquivCheck  end-to-end: check_equivalence with independently
//                  seeded lock-step lanes, scalar backend (mode 0, 64
//                  lanes) vs batch backend (mode 1, 64 lanes at K=1;
//                  mode 2, 512 lanes at K=8).  Includes synthesis +
//                  golden-model cost on both sides, so the ratio is
//                  what a fig.4 gate or a fuzz CI budget actually sees.
//
// Modes 5/6/7 of the edge benchmarks (and 3/4 of BM_EquivCheck) run
// the same superlane widths through the native tape JIT
// (hlcs/synth/jit.hpp).  The JIT-backed sim is constructed OUTSIDE the
// timed loop, so compilation never pollutes the steady-state medians;
// compile time is priced separately by BM_JitCompile and echoed on
// every JIT row as the jit_compile_ns / jit_code_bytes counters.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "hlcs/check/check.hpp"
#include "hlcs/sim/random.hpp"
#include "hlcs/synth/synth.hpp"

namespace {

using namespace hlcs::synth;

/// The paper's mailbox channel, same shape as netlist_micro: guarded
/// put/get over a 16-bit datapath.  Comb-dominated -- the arbitration
/// one-hot logic, guards and muxes all run on the bit-parallel path.
ObjectDesc make_mailbox() {
  ObjectDesc d("mailbox");
  const std::uint32_t full = d.add_var("full", 1, 0);
  const std::uint32_t data = d.add_var("data", 16, 0);
  d.add_method("put")
      .arg("d", 16)
      .guard(d.arena().bin(ExprOp::Eq, d.v(full), d.lit(0, 1)))
      .assign(full, d.lit(1, 1))
      .assign(data, d.a(0, 16));
  d.add_method("get")
      .guard(d.arena().bin(ExprOp::Eq, d.v(full), d.lit(1, 1)))
      .assign(full, d.lit(0, 1))
      .returns(d.v(data), 16);
  return d;
}

Netlist make_channel(std::size_t clients, hlcs::osss::PolicyKind policy) {
  SynthOptions opt;
  opt.clients = clients;
  opt.policy = policy;
  return synthesize(make_mailbox(), opt);
}

/// Superlane factor for a benchmark mode argument: modes 2/3/4 are the
/// batch interpreter at K = 1/4/8 (64/256/512 lanes), modes 5/6/7 the
/// batch JIT at the same widths; modes 0/1 are scalar.
unsigned mode_super(long mode) {
  switch (mode) {
    case 2: case 5: return 1u;
    case 3: case 6: return 4u;
    case 4: case 7: return 8u;
    default: return 0u;
  }
}

bool mode_jit(long mode) { return mode >= 5; }

void report_batch_counters(benchmark::State& state,
                           const BatchNetlistSim& sim) {
  state.counters["scalar_frac"] = sim.stats().scalar_fraction();
  state.counters["plane_insns"] =
      static_cast<double>(sim.stats().plane_instructions);
  state.counters["fused_ops"] = static_cast<double>(sim.stats().fused_ops);
  state.counters["scalar_ops"] = static_cast<double>(sim.stats().scalar_ops);
  if (const JitStats* js = sim.jit_stats()) {
    // One-time compile cost, reported but never inside the timed loop.
    state.counters["jit_compile_ns"] = static_cast<double>(js->compile_ns);
    state.counters["jit_code_bytes"] = static_cast<double>(js->code_bytes);
    state.counters["jit_native_combs"] =
        static_cast<double>(js->combs_native);
    state.counters["jit_deopt_combs"] = static_cast<double>(js->combs_deopt);
  }
}

/// Dense random stimulus lanes through full clock edges.
/// range(0): 0 = scalar FullTape, 1 = scalar Incremental, 2/3/4 = batch
/// interpreter at K=1/4/8 (64/256/512 lanes), 5/6/7 = batch JIT at the
/// same widths.  range(1) = clients.  range(2): 0 = static_priority,
/// 1 = round_robin.  One iteration = lanes lane-edges on every side.
void BM_BatchEdge(benchmark::State& state) {
  const unsigned super = mode_super(state.range(0));
  const bool batch = super != 0;
  const std::size_t lanes =
      BatchNetlistSim::kLanes * (batch ? super : 1);
  const SettleMode scalar_mode = state.range(0) == 0
                                     ? SettleMode::FullTape
                                     : SettleMode::Incremental;
  const std::size_t clients = static_cast<std::size_t>(state.range(1));
  const auto policy = state.range(2) == 0
                          ? hlcs::osss::PolicyKind::StaticPriority
                          : hlcs::osss::PolicyKind::RoundRobin;
  Netlist nl = make_channel(clients, policy);
  std::vector<NetId> req, sel, args;
  for (std::size_t i = 0; i < clients; ++i) {
    req.push_back(nl.find(req_port(i)));
    sel.push_back(nl.find(sel_port(i)));
    args.push_back(nl.find(args_port(i)));
  }
  std::vector<hlcs::sim::Xorshift> rngs;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    rngs.emplace_back(hlcs::sim::lane_seed(0xED6E, lane));
  }

  if (batch) {
    // Construction (and hence JIT compilation) happens here, outside
    // the timed loop: the medians below are pure steady-state.
    BatchNetlistSim sim(nl, super, mode_jit(state.range(0)));
    for (auto _ : state) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const std::uint64_t r = rngs[lane].next();
        for (std::size_t i = 0; i < clients; ++i) {
          sim.set_input(req[i], lane, (r >> i) & 1);
          sim.set_input(sel[i], lane, (r >> (8 + i)) & 1);
          sim.set_input(args[i], lane, r >> 16);
        }
      }
      sim.clock_edge();
    }
    report_batch_counters(state, sim);
  } else {
    std::vector<std::unique_ptr<NetlistSim>> sims;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      sims.push_back(std::make_unique<NetlistSim>(nl, scalar_mode));
    }
    for (auto _ : state) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const std::uint64_t r = rngs[lane].next();
        for (std::size_t i = 0; i < clients; ++i) {
          sims[lane]->set_input(req[i], (r >> i) & 1);
          sims[lane]->set_input(sel[i], (r >> (8 + i)) & 1);
          sims[lane]->set_input(args[i], r >> 16);
        }
        sims[lane]->clock_edge();
      }
    }
  }
  const double lane_edges =
      static_cast<double>(state.iterations()) * static_cast<double>(lanes);
  state.SetItemsProcessed(static_cast<std::int64_t>(lane_edges));
  state.counters["lane_edges/s"] =
      benchmark::Counter(lane_edges, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchEdge)
    ->ArgNames({"mode", "clients", "policy"})
    ->Args({0, 4, 0})
    ->Args({1, 4, 0})
    ->Args({2, 4, 0})
    ->Args({3, 4, 0})
    ->Args({4, 4, 0})
    ->Args({5, 4, 0})
    ->Args({6, 4, 0})
    ->Args({7, 4, 0})
    ->Args({0, 4, 1})
    ->Args({1, 4, 1})
    ->Args({2, 4, 1})
    ->Args({3, 4, 1})
    ->Args({4, 4, 1})
    ->Args({5, 4, 1})
    ->Args({7, 4, 1});

/// A lowered property-monitor automaton: the temporal operators expand
/// to 1-bit state machines, so nearly every net is one plane wide and
/// the 64-lane transposition is at its densest.  This is the netlist
/// shape the batched check lock-step tests drive.
hlcs::check::Spec monitor_spec() {
  using namespace hlcs::check;
  Spec s("bench");
  E a = s.signal("a");
  E b = s.signal("b");
  E v = s.signal("v", 8);
  E w = s.signal("w", 8);
  s.prop("imp", a, b);
  s.prop("del3", s.rose(a), s.delay(3, b || s.fell(a)));
  s.prop("until_q", a, s.until(b, v == w));
  s.prop("event4", s.stable(v), s.eventually_within(4, b));
  s.prop("past3", a, s.past(b, 3));
  s.always("mux_pick", s.mux(a, v, w) == s.mux(!a, w, v));
  return s;
}

/// Random stimulus lanes through a lowered monitor netlist.
/// range(0): 0 = scalar FullTape, 1 = scalar Incremental, 2/3/4 = batch
/// interpreter at K=1/4/8 (64/256/512 lanes), 5/6/7 = batch JIT.
void BM_BatchMonitorEdge(benchmark::State& state) {
  const unsigned super = mode_super(state.range(0));
  const bool batch = super != 0;
  const std::size_t lanes =
      BatchNetlistSim::kLanes * (batch ? super : 1);
  const SettleMode scalar_mode = state.range(0) == 0
                                     ? SettleMode::FullTape
                                     : SettleMode::Incremental;
  const hlcs::check::Automaton a = hlcs::check::compile(monitor_spec());
  Netlist nl = hlcs::check::lower(a);
  std::vector<NetId> sigs;
  std::vector<std::uint64_t> masks;
  for (const hlcs::check::SignalDecl& sd : a.signals) {
    sigs.push_back(nl.find(sd.name));
    masks.push_back(hlcs::synth::ExprArena::mask(sd.width));
  }
  const NetId rst = nl.find("rst");
  std::vector<hlcs::sim::Xorshift> rngs;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    rngs.emplace_back(hlcs::sim::lane_seed(0xC4EC, lane));
  }

  if (batch) {
    BatchNetlistSim sim(nl, super, mode_jit(state.range(0)));
    sim.set_input_broadcast(rst, 0);
    for (auto _ : state) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const std::uint64_t r = rngs[lane].next();
        for (std::size_t i = 0; i < sigs.size(); ++i) {
          sim.set_input(sigs[i], lane, (r >> (8 * i)) & masks[i]);
        }
      }
      sim.clock_edge();
    }
    report_batch_counters(state, sim);
  } else {
    std::vector<std::unique_ptr<NetlistSim>> sims;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      sims.push_back(std::make_unique<NetlistSim>(nl, scalar_mode));
      sims.back()->set_input(rst, 0);
    }
    for (auto _ : state) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const std::uint64_t r = rngs[lane].next();
        for (std::size_t i = 0; i < sigs.size(); ++i) {
          sims[lane]->set_input(sigs[i], (r >> (8 * i)) & masks[i]);
        }
        sims[lane]->clock_edge();
      }
    }
  }
  const double lane_edges =
      static_cast<double>(state.iterations()) * static_cast<double>(lanes);
  state.SetItemsProcessed(static_cast<std::int64_t>(lane_edges));
  state.counters["lane_edges/s"] =
      benchmark::Counter(lane_edges, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchMonitorEdge)
    ->ArgName("mode")
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

/// The evaluation engine alone, interleaved A/B: stimulus is driven
/// once, then every iteration is one full clock edge (full-tape batch
/// evaluation -- every comb, every settle; register feedback keeps the
/// state vector live).  BM_BatchEdge above prices a replay workload
/// where per-lane stimulus scatter dominates; this row prices what the
/// JIT actually replaces, so it is the honest interpreter-vs-native
/// ratio.  range(0): 2/3/4 = batch interpreter at K=1/4/8, 5/6/7 =
/// batch JIT at the same widths.
void BM_JitEdge(benchmark::State& state) {
  const unsigned super = mode_super(state.range(0));
  Netlist nl = make_channel(4, hlcs::osss::PolicyKind::StaticPriority);
  BatchNetlistSim sim(nl, super, mode_jit(state.range(0)));
  hlcs::sim::Xorshift rng(0x1D6E);
  for (NetId in : nl.inputs()) {
    for (std::size_t lane = 0; lane < sim.lanes(); ++lane) {
      sim.set_input(in, lane, rng.next());
    }
  }
  for (auto _ : state) {
    sim.clock_edge();
  }
  report_batch_counters(state, sim);
  const double lane_edges = static_cast<double>(state.iterations()) *
                            static_cast<double>(sim.lanes());
  state.SetItemsProcessed(static_cast<std::int64_t>(lane_edges));
  state.counters["lane_edges/s"] =
      benchmark::Counter(lane_edges, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_JitEdge)
    ->ArgName("mode")->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

/// Same engine-only A/B over the lowered property-monitor automaton:
/// nearly every net is one bit wide, so this is the densest plane
/// layout and the shape the batched lock-step checks drive.
void BM_JitMonitorEdge(benchmark::State& state) {
  const unsigned super = mode_super(state.range(0));
  const hlcs::check::Automaton a = hlcs::check::compile(monitor_spec());
  Netlist nl = hlcs::check::lower(a);
  BatchNetlistSim sim(nl, super, mode_jit(state.range(0)));
  sim.set_input_broadcast(nl.find("rst"), 0);
  hlcs::sim::Xorshift rng(0x6D17);
  for (const hlcs::check::SignalDecl& sd : a.signals) {
    const NetId n = nl.find(sd.name);
    const std::uint64_t mask = hlcs::synth::ExprArena::mask(sd.width);
    for (std::size_t lane = 0; lane < sim.lanes(); ++lane) {
      sim.set_input(n, lane, rng.next() & mask);
    }
  }
  for (auto _ : state) {
    sim.clock_edge();
  }
  report_batch_counters(state, sim);
  const double lane_edges = static_cast<double>(state.iterations()) *
                            static_cast<double>(sim.lanes());
  state.SetItemsProcessed(static_cast<std::int64_t>(lane_edges));
  state.counters["lane_edges/s"] =
      benchmark::Counter(lane_edges, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_JitMonitorEdge)
    ->ArgName("mode")->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

/// JIT compilation priced as its own metric: one iteration = compile
/// the mailbox channel's tape to native code (scalar TapeJit at
/// range(0) == 0, superlane BatchJit at K = range(0) otherwise) and
/// throw it away.  This is the cost the edge benchmarks above pay once
/// outside their timed loops.
void BM_JitCompile(benchmark::State& state) {
  const unsigned super = static_cast<unsigned>(state.range(0));
  Netlist nl = make_channel(4, hlcs::osss::PolicyKind::StaticPriority);
  if (!TapeJit::host_supported()) {
    state.SkipWithError("JIT unavailable on this host");
    return;
  }
  double code_bytes = 0, native = 0;
  if (super == 0) {
    const TapeProgram tape = TapeProgram::compile(nl);
    for (auto _ : state) {
      TapeJit jit(tape);
      benchmark::DoNotOptimize(jit.available());
      code_bytes = static_cast<double>(jit.stats().code_bytes);
      native = static_cast<double>(jit.stats().combs_native);
    }
  } else {
    BatchTape bt(nl, super);
    for (auto _ : state) {
      BatchJit jit(bt);
      benchmark::DoNotOptimize(jit.available());
      code_bytes = static_cast<double>(jit.stats().code_bytes);
      native = static_cast<double>(jit.stats().combs_native);
    }
  }
  state.counters["jit_code_bytes"] = code_bytes;
  state.counters["jit_native_combs"] = native;
}
BENCHMARK(BM_JitCompile)->ArgName("K")->Arg(0)->Arg(1)->Arg(4)->Arg(8);

/// End-to-end lock-step equivalence: independently seeded stimulus
/// lanes against the golden interpreter.  range(0): 0 = scalar backend
/// (64 lanes, one at a time), 1 = batch backend (64 lanes at K=1),
/// 2 = batch backend (512 lanes at K=8, one superlane block); 3 and 4
/// repeat modes 1 and 2 through the native JIT (which recompiles every
/// invocation, like a fresh CI run would).
void BM_EquivCheck(benchmark::State& state) {
  const bool batch = state.range(0) >= 1;
  const bool jit = state.range(0) >= 3;
  const unsigned super =
      (state.range(0) == 2 || state.range(0) == 4) ? 8 : 1;
  const std::size_t lanes = super == 8 ? 512 : 64;
  const ObjectDesc d = make_mailbox();
  SynthOptions opt;
  opt.clients = 4;
  opt.policy = hlcs::osss::PolicyKind::StaticPriority;
  constexpr std::size_t kCycles = 256;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const EquivResult r = check_equivalence(
        d, opt,
        EquivOptions{.cycles = kCycles, .seed = seed++, .reset_percent = 4,
                     .lanes = lanes, .batch = batch, .superlanes = super,
                     .jit = jit});
    if (!r.equal) {
      state.SkipWithError("equivalence mismatch");
      return;
    }
    benchmark::DoNotOptimize(r.grants);
  }
  const double lane_cycles = static_cast<double>(state.iterations()) *
                             static_cast<double>(kCycles * lanes);
  state.SetItemsProcessed(static_cast<std::int64_t>(lane_cycles));
  state.counters["lane_cycles/s"] =
      benchmark::Counter(lane_cycles, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EquivCheck)
    ->ArgName("mode")->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
