// FW1: the paper's stated future work, executed --
//
//   "An interesting future work will be the evaluation of the temporal
//    cost of the method calls: these are implemented with synchronous
//    logic, and the completion of a transaction require an amount of
//    time that depends on different factors (among which the number of
//    concurrent processes accessing the same resource)."
//
// A clocked global object is saturated by 1..32 concurrent processes
// under every arbitration policy.  Reported (deterministic, simulated
// cycles): mean and max grant latency per call, throughput per cycle.
// Expected SHAPE: with one grant per cycle, mean latency grows linearly
// with the number of contending processes (~N-1 cycles under fairness),
// max latency depends on the policy's tail behaviour.
//
// ABL1 (fairness ablation): asymmetric priorities under static-priority
// arbitration starve low-priority clients; FIFO and round-robin bound
// the spread.
#include <benchmark/benchmark.h>

#include "hlcs/osss/osss.hpp"
#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"

namespace {

using namespace hlcs;
using namespace hlcs::sim::literals;
using osss::PolicyKind;

struct LatencyResult {
  double mean_wait = 0;
  double max_wait = 0;
  double grants_per_cycle = 0;
  double spread = 0;  ///< max/min per-client mean wait (fairness)
};

LatencyResult measure(PolicyKind policy, int clients, bool asymmetric,
                      std::uint64_t cycles) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 10_ns);
  // Seed the policy from the measurement point so RandomArbitration
  // streams are decorrelated across the client/shape axes.
  osss::SharedObject<std::uint64_t> obj(
      k, "obj", clk,
      osss::make_policy(policy,
                        sim::lane_seed(0xBE7C4, static_cast<std::uint64_t>(
                                                    clients * 2 + asymmetric))),
      0);
  for (int c = 0; c < clients; ++c) {
    // Asymmetric: client index is its priority (matters only for the
    // static-priority policy).
    auto client = obj.make_client("c" + std::to_string(c),
                                  asymmetric ? c : 0);
    k.spawn("p" + std::to_string(c), [&k, client]() -> sim::Task {
      for (;;) co_await client.call([](std::uint64_t& v) { ++v; });
    });
  }
  k.run_for(sim::Time::ns(cycles * 10));
  LatencyResult r;
  const auto& st = obj.stats();
  std::uint64_t waited = 0, granted = 0, max_wait = 0;
  double min_client_mean = 1e18, max_client_mean = 0;
  for (const auto& cs : st.clients) {
    waited += cs.wait_total;
    granted += cs.granted;
    max_wait = std::max(max_wait, cs.wait_max);
    if (cs.granted > 0) {
      const double mean = static_cast<double>(cs.wait_total) /
                          static_cast<double>(cs.granted);
      min_client_mean = std::min(min_client_mean, mean);
      max_client_mean = std::max(max_client_mean, mean);
    } else {
      max_client_mean = 1e18;  // starved
    }
  }
  if (granted > 0) {
    r.mean_wait = static_cast<double>(waited) / static_cast<double>(granted);
  }
  r.max_wait = static_cast<double>(max_wait);
  r.grants_per_cycle =
      static_cast<double>(st.grants) / static_cast<double>(cycles);
  r.spread = min_client_mean > 0 && max_client_mean < 1e17
                 ? max_client_mean / min_client_mean
                 : 1e9;
  return r;
}

/// The headline FW1 sweep: contention x policy.
void BM_MethodCallLatency(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  const int clients = static_cast<int>(state.range(1));
  LatencyResult r;
  for (auto _ : state) {
    r = measure(policy, clients, /*asymmetric=*/false, /*cycles=*/2000);
  }
  state.SetLabel(osss::policy_name(policy));
  state.counters["mean_wait_cycles"] = r.mean_wait;
  state.counters["max_wait_cycles"] = r.max_wait;
  state.counters["grants_per_cycle"] = r.grants_per_cycle;
}
BENCHMARK(BM_MethodCallLatency)
    ->ArgsProduct({{static_cast<int>(PolicyKind::Fifo),
                    static_cast<int>(PolicyKind::RoundRobin),
                    static_cast<int>(PolicyKind::StaticPriority),
                    static_cast<int>(PolicyKind::Random)},
                   {1, 2, 4, 8, 16, 32}});

/// ABL1: fairness under asymmetric priorities -- the per-client latency
/// spread (max mean / min mean).  Expected: huge for static priority
/// (starvation), ~1 for FIFO and round-robin.
void BM_FairnessSpread(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  constexpr int kClients = 8;
  LatencyResult r;
  for (auto _ : state) {
    r = measure(policy, kClients, /*asymmetric=*/true, /*cycles=*/2000);
  }
  state.SetLabel(osss::policy_name(policy));
  state.counters["latency_spread"] = r.spread;
  state.counters["grants_per_cycle"] = r.grants_per_cycle;
}
BENCHMARK(BM_FairnessSpread)
    ->Arg(static_cast<int>(PolicyKind::Fifo))
    ->Arg(static_cast<int>(PolicyKind::RoundRobin))
    ->Arg(static_cast<int>(PolicyKind::StaticPriority))
    ->Arg(static_cast<int>(PolicyKind::Random));

/// Temporal cost seen END TO END by the application of the paper's test
/// system: several applications contending on one PCI bus interface.
void BM_EndToEndContention(benchmark::State& state) {
  const int apps = static_cast<int>(state.range(0));
  double mean_latency_ns = 0;
  std::uint64_t txns_total = 0;
  for (auto _ : state) {
    sim::Kernel k;
    sim::Clock clk(k, "clk", 30_ns);
    pci::PciBus bus(k, "pci", clk);
    pci::PciArbiter arb(k, "arb", bus);
    pci::PciTarget target(k, "t0", bus,
                          pci::TargetConfig{.base = 0, .size = 0x10000});
    pattern::PciBusInterface iface(k, "iface", bus, arb);
    struct AppState {
      std::uint64_t txns = 0;
      std::uint64_t latency_ps = 0;
    };
    std::vector<AppState> results(static_cast<std::size_t>(apps));
    for (int a = 0; a < apps; ++a) {
      auto port = iface.app_port("app" + std::to_string(a));
      k.spawn("app" + std::to_string(a),
              [&k, port, a, &results]() -> sim::Task {
                auto& mine = results[static_cast<std::size_t>(a)];
                for (std::uint32_t i = 0;; ++i) {
                  pattern::CommandType cmd;
                  cmd.op = pattern::BusOp::Write;
                  cmd.addr = static_cast<std::uint32_t>(a) * 0x1000 +
                             (i % 256) * 4;
                  cmd.data = {i};
                  const sim::Time t0 = k.now();
                  co_await port.putCommand(cmd);
                  co_await port.appDataGet();
                  mine.txns++;
                  mine.latency_ps += (k.now() - t0).picos();
                }
              });
    }
    k.run_for(300_us);
    std::uint64_t txns = 0, lat = 0;
    for (const auto& r : results) {
      txns += r.txns;
      lat += r.latency_ps;
    }
    txns_total += txns;
    mean_latency_ns = txns ? static_cast<double>(lat) /
                                 static_cast<double>(txns) / 1e3
                           : 0;
  }
  state.counters["txns"] = static_cast<double>(txns_total);
  state.counters["mean_txn_latency_ns"] = mean_latency_ns;
}
BENCHMARK(BM_EndToEndContention)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// ABL3: the PCI latency timer -- worst-case latency a single-word
/// competitor sees while another master streams 64-word bursts, as a
/// function of the timer setting (0 = unlimited tenure).
void BM_LatencyTimerAblation(benchmark::State& state) {
  const unsigned timer = static_cast<unsigned>(state.range(0));
  double worst_cycles = 0, mean_cycles = 0;
  std::uint64_t preemptions = 0;
  for (auto _ : state) {
    sim::Kernel k;
    sim::Clock clk(k, "clk", 10_ns);
    pci::PciBus bus(k, "pci", clk);
    pci::PciArbiter arb(k, "arb", bus);
    pci::PciTarget target(k, "t0", bus,
                          pci::TargetConfig{.base = 0, .size = 0x10000});
    auto p0 = arb.add_master("burster");
    pci::PciMaster burster(k, "burster", bus, *p0.req, *p0.gnt,
                           pci::MasterConfig{.latency_timer = timer});
    auto p1 = arb.add_master("pinger");
    pci::PciMaster pinger(k, "pinger", bus, *p1.req, *p1.gnt);
    k.spawn("burst", [&]() -> sim::Task {
      for (std::uint32_t i = 0;; ++i) {
        pci::PciTransaction t{.cmd = pci::PciCommand::MemWrite,
                              .addr = 0x1000};
        for (int w = 0; w < 64; ++w) t.data.push_back(i + static_cast<std::uint32_t>(w));
        co_await burster.execute(t);
      }
    });
    std::uint64_t worst = 0, sum = 0, count = 0;
    k.spawn("ping", [&]() -> sim::Task {
      co_await k.wait(100_ns);
      for (int i = 0; i < 20; ++i) {
        pci::PciTransaction t{.cmd = pci::PciCommand::MemWrite,
                              .addr = 0x8000,
                              .data = {static_cast<std::uint32_t>(i)}};
        co_await pinger.execute(t);
        worst = std::max(worst, t.cycles());
        sum += t.cycles();
        ++count;
      }
      k.stop();
    });
    k.run_for(5000_us);
    worst_cycles = static_cast<double>(worst);
    mean_cycles = count ? static_cast<double>(sum) / static_cast<double>(count) : 0;
    preemptions = burster.stats().preemptions;
  }
  state.counters["worst_ping_cycles"] = worst_cycles;
  state.counters["mean_ping_cycles"] = mean_cycles;
  state.counters["preemptions"] = static_cast<double>(preemptions);
}
BENCHMARK(BM_LatencyTimerAblation)->Arg(0)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// The whole FW1 contention sweep as one ParallelSweep run: every
/// (policy, client-count) point is an independent deterministic kernel,
/// so the sweep parallelises across worker threads with bit-identical
/// results.  Arg = thread count (1 = serial reference).
void BM_ParallelPolicySweep(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  constexpr PolicyKind kPolicies[] = {PolicyKind::Fifo, PolicyKind::RoundRobin,
                                      PolicyKind::StaticPriority,
                                      PolicyKind::Random};
  constexpr int kClients[] = {1, 2, 4, 8, 16, 32};
  const std::size_t points = std::size(kPolicies) * std::size(kClients);
  std::uint64_t grants = 0;
  sim::ParallelSweep sweep([&](std::size_t i, sim::Kernel& k,
                               std::string& transcript) {
    const PolicyKind policy = kPolicies[i / std::size(kClients)];
    const int clients = kClients[i % std::size(kClients)];
    sim::Clock clk(k, "clk", 10_ns);
    osss::SharedObject<std::uint64_t> obj(
        k, "obj", clk, osss::make_policy(policy, sim::lane_seed(0xF1F0, i)),
        0);
    for (int c = 0; c < clients; ++c) {
      auto client = obj.make_client("c" + std::to_string(c));
      k.spawn("p" + std::to_string(c), [&k, client]() -> sim::Task {
        for (;;) co_await client.call([](std::uint64_t& v) { ++v; });
      });
    }
    k.run_for(sim::Time::ns(500 * 10));
    transcript = std::to_string(obj.stats().grants);
  });
  for (auto _ : state) {
    auto results = sweep.run(points, threads);
    for (const auto& r : results) {
      grants += static_cast<std::uint64_t>(std::stoull(r.transcript));
    }
  }
  state.counters["grants"] = static_cast<double>(grants);
}
BENCHMARK(BM_ParallelPolicySweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
