// CONTEND: contention cost-model microbenchmarks.  Three questions:
// (1) what does the instrumentation layer cost per serve edge (it rides
// inside BM_SharedObjectCall's 10% regress gate, this row isolates it),
// (2) what does an AdaptiveArbitration::pick cost next to the static
// policies at realistic queue depths, and (3) the payoff ledger -- the
// adaptive vs best-static p99 grant latencies on every traffic shape,
// recorded as counters so BENCH_contend.json documents the win the
// tier-1 suite asserts.
#include <benchmark/benchmark.h>

#include "hlcs/contend/contend.hpp"
#include "hlcs/osss/osss.hpp"
#include "hlcs/sim/sim.hpp"

namespace {

using namespace hlcs;
using osss::PolicyKind;

/// Clocked serve-edge throughput with the full instrumentation layer
/// hot: per-client latency histograms, depth histogram, wait
/// attribution and streak tracking all update on every queue scan.
void BM_InstrumentedServeEdge(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  std::uint64_t grants = 0, hist_samples = 0;
  for (auto _ : state) {
    sim::Kernel k;
    sim::Clock clk(k, "clk", sim::Time::ns(10));
    osss::SharedObject<std::uint64_t> obj(
        k, "obj", clk, osss::make_policy(PolicyKind::Fifo), 0);
    for (int c = 0; c < clients; ++c) {
      auto client = obj.make_client("c" + std::to_string(c));
      k.spawn("p" + std::to_string(c), [client]() -> sim::Task {
        for (;;) co_await client.call([](std::uint64_t& v) { ++v; });
      });
    }
    k.run_for(sim::Time::ns(10 * 1000));
    grants += obj.stats().grants;
    for (const auto& cs : obj.stats().clients)
      hist_samples += cs.latency.count();
  }
  state.counters["grants/s"] = benchmark::Counter(
      static_cast<double>(grants), benchmark::Counter::kIsRate);
  state.counters["hist_samples"] = static_cast<double>(hist_samples);
}
BENCHMARK(BM_InstrumentedServeEdge)->Arg(4)->Arg(16)->Arg(64);

/// Raw pick() cost at a fixed queue depth, adaptive vs the static
/// policies it blends.  The eligible set alternates between contended
/// and solo so the adaptive window logic actually flips modes.
void BM_PolicyPick(benchmark::State& state) {
  const auto kind = static_cast<PolicyKind>(state.range(0));
  const std::size_t depth = static_cast<std::size_t>(state.range(1));
  auto policy = osss::make_policy(kind, 0xC0FFEE);
  std::vector<osss::RequestInfo> eligible;
  for (std::size_t i = 0; i < depth; ++i) {
    eligible.push_back(osss::RequestInfo{i, 1000 - i, static_cast<int>(i % 4),
                                         10 + i, 5 + i});
  }
  std::uint64_t picks = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->pick(eligible));
    ++picks;
  }
  state.counters["picks/s"] = benchmark::Counter(
      static_cast<double>(picks), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PolicyPick)
    ->ArgsProduct({{static_cast<long>(PolicyKind::Fifo),
                    static_cast<long>(PolicyKind::Adaptive)},
                   {4, 64}});

/// The payoff ledger: one full cost-model cell per policy class on each
/// traffic shape at 16 clients (the contention knee of the committed
/// dataset).  The counters record the adaptive and best-static p99
/// grant latencies; the tier-1 suite asserts adaptive <= best-static
/// everywhere and strictly < on the adversarial shapes.
void BM_ContendCellP99(benchmark::State& state) {
  const auto shape = static_cast<contend::TrafficShape>(state.range(0));
  std::uint64_t adaptive_p99 = 0, best_static_p99 = 0, cells = 0;
  for (auto _ : state) {
    best_static_p99 = ~std::uint64_t{0};
    for (PolicyKind p : {PolicyKind::Fifo, PolicyKind::RoundRobin,
                         PolicyKind::StaticPriority, PolicyKind::Random}) {
      const contend::CellResult r =
          contend::run_cell(contend::CellConfig{p, 16, shape});
      if (r.lat_p99 < best_static_p99) best_static_p99 = r.lat_p99;
    }
    adaptive_p99 =
        contend::run_cell(contend::CellConfig{PolicyKind::Adaptive, 16, shape})
            .lat_p99;
    ++cells;
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells * 5), benchmark::Counter::kIsRate);
  state.counters["adaptive_p99"] = static_cast<double>(adaptive_p99);
  state.counters["best_static_p99"] = static_cast<double>(best_static_p99);
}
BENCHMARK(BM_ContendCellP99)
    ->Arg(static_cast<long>(contend::TrafficShape::Uniform))
    ->Arg(static_cast<long>(contend::TrafficShape::Bursty))
    ->Arg(static_cast<long>(contend::TrafficShape::Convoy))
    ->Arg(static_cast<long>(contend::TrafficShape::Stampede));

}  // namespace

BENCHMARK_MAIN();
