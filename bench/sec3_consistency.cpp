// SEC3: the viability experiment of the paper's Section 3, as a
// benchmark: synthesis of the bus-access channel for every policy and
// client count, then lock-step re-simulation of the RT model against the
// original (interpreted) model.  Counters report mismatches (must be 0),
// synthesis resources, and the relative simulation cost of the RT model.
#include <benchmark/benchmark.h>

#include "hlcs/pattern/synthesisable_channel.hpp"
#include "hlcs/sim/random.hpp"
#include "hlcs/synth/synth.hpp"

namespace {

using namespace hlcs;
using osss::PolicyKind;

void BM_Synthesis(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  const auto clients = static_cast<std::size_t>(state.range(1));
  pattern::SynthesisableChannel ch = pattern::make_synthesisable_channel();
  synth::SynthOptions opt{.clients = clients, .policy = policy};
  synth::ResourceReport rep;
  for (auto _ : state) {
    synth::Netlist nl = synth::synthesize(ch.desc, opt);
    rep = synth::report(nl);
    benchmark::DoNotOptimize(nl);
  }
  state.SetLabel(osss::policy_name(policy));
  state.counters["flip_flops"] = static_cast<double>(rep.flip_flops);
  state.counters["gates"] = static_cast<double>(rep.gate_estimate);
  state.counters["depth"] = static_cast<double>(rep.logic_depth);
}
BENCHMARK(BM_Synthesis)
    ->ArgsProduct({{static_cast<int>(PolicyKind::Fifo),
                    static_cast<int>(PolicyKind::RoundRobin),
                    static_cast<int>(PolicyKind::StaticPriority),
                    static_cast<int>(PolicyKind::Random)},
                   {1, 2, 4, 8, 16}});

/// Lock-step pre/post-synthesis consistency over random stimulus.
void BM_ConsistencyLockStep(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  const auto clients = static_cast<std::size_t>(state.range(1));
  pattern::SynthesisableChannel ch = pattern::make_synthesisable_channel();
  synth::SynthOptions opt{.clients = clients, .policy = policy};
  synth::Netlist nl = synth::synthesize(ch.desc, opt);
  std::uint64_t cycles_total = 0, grants = 0, mismatches = 0;
  for (auto _ : state) {
    synth::NetlistSim rtl(nl);
    synth::GoldenCycleModel golden(ch.desc, opt);
    sim::Xorshift rng(0x5EC3);
    std::vector<synth::GoldenCycleModel::ClientIn> in(clients);
    std::vector<unsigned> blocked(clients, 0);
    constexpr int kCycles = 1000;
    for (int cycle = 0; cycle < kCycles; ++cycle) {
      for (std::size_t c = 0; c < clients; ++c) {
        if (!in[c].req && rng.chance(1, 2)) {
          in[c].req = true;
          in[c].sel = rng.below(ch.desc.methods().size());
          in[c].args = rng.next();
          blocked[c] = 0;
        } else if (in[c].req && ++blocked[c] > 4) {
          in[c].sel = rng.below(ch.desc.methods().size());
          blocked[c] = 0;
        }
        rtl.set_input(synth::req_port(c), in[c].req);
        rtl.set_input(synth::sel_port(c), in[c].sel);
        rtl.set_input(synth::args_port(c), in[c].args);
      }
      rtl.set_input("rst", 0);
      rtl.settle();
      std::optional<std::size_t> rtl_grant;
      for (std::size_t c = 0; c < clients; ++c) {
        if (rtl.get(synth::grant_port(c)) != 0) rtl_grant = c;
      }
      auto g = golden.step(in);
      if (rtl_grant != g.granted) ++mismatches;
      rtl.clock_edge();
      for (std::size_t v = 0; v < ch.desc.vars().size(); ++v) {
        if (rtl.get(synth::var_port(ch.desc, v)) != golden.var(v)) {
          ++mismatches;
        }
      }
      if (g.granted) {
        ++grants;
        in[*g.granted].req = false;
        blocked[*g.granted] = 0;
      }
    }
    cycles_total += kCycles;
  }
  if (mismatches != 0) state.SkipWithError("pre/post-synthesis mismatch!");
  state.SetLabel(osss::policy_name(policy));
  state.counters["rtl_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles_total), benchmark::Counter::kIsRate);
  state.counters["grants"] = static_cast<double>(grants);
  state.counters["mismatches"] = static_cast<double>(mismatches);
}
BENCHMARK(BM_ConsistencyLockStep)
    ->ArgsProduct({{static_cast<int>(PolicyKind::Fifo),
                    static_cast<int>(PolicyKind::RoundRobin),
                    static_cast<int>(PolicyKind::StaticPriority),
                    static_cast<int>(PolicyKind::Random)},
                   {2, 4, 8}});

/// Raw simulation speed of the two models, separately -- quantifies the
/// cost of simulating at RT level vs interpreting the specification
/// (the flow's reason to validate at high level first).
/// The optimisation pass: cost of running it and the gate-count win.
void BM_OptimizePass(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  pattern::SynthesisableChannel ch = pattern::make_synthesisable_channel();
  synth::Netlist nl =
      synth::synthesize(ch.desc, synth::SynthOptions{.clients = clients});
  synth::OptimizeStats ost;
  std::size_t gates_before = synth::report(nl).gate_estimate;
  std::size_t gates_after = 0;
  for (auto _ : state) {
    synth::Netlist optd = synth::optimize(nl, &ost);
    gates_after = synth::report(optd).gate_estimate;
    benchmark::DoNotOptimize(optd);
  }
  state.counters["gates_before"] = static_cast<double>(gates_before);
  state.counters["gates_after"] = static_cast<double>(gates_after);
  state.counters["rewrites"] = static_cast<double>(ost.folds);
}
BENCHMARK(BM_OptimizePass)->Arg(1)->Arg(4)->Arg(16);

void BM_SpecInterpreterSpeed(benchmark::State& state) {
  pattern::SynthesisableChannel ch = pattern::make_synthesisable_channel();
  synth::ObjectInterp interp(ch.desc);
  std::uint64_t calls = 0;
  sim::Xorshift rng(9);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      // Alternate put/get so guards stay satisfiable.
      interp.invoke(ch.methods.put_command,
                    {rng.below(16), rng.below(256), rng.next() & 0xFFFFFFFF});
      interp.invoke(ch.methods.get_command);
      calls += 2;
    }
  }
  state.counters["methods/s"] = benchmark::Counter(
      static_cast<double>(calls), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpecInterpreterSpeed);

void BM_RtlNetlistSpeed(benchmark::State& state) {
  pattern::SynthesisableChannel ch = pattern::make_synthesisable_channel();
  synth::Netlist nl =
      synth::synthesize(ch.desc, synth::SynthOptions{.clients = 2});
  synth::NetlistSim rtl(nl);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      rtl.set_input("c0_req", i & 1);
      rtl.clock_edge();
      ++cycles;
    }
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RtlNetlistSpeed);

}  // namespace

BENCHMARK_MAIN();
