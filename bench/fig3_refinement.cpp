// FIG3: communication refinement.  The same application runs over the
// functional and the pin-accurate library element; every iteration also
// CHECKS transcript equivalence (a refinement that changed behaviour
// would abort the bench).  Reported counters give the cost of the
// refined model relative to the abstract one, per workload shape.
#include <benchmark/benchmark.h>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sbus/simple_bus.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/tlm/tlm.hpp"
#include "hlcs/verify/compare.hpp"

namespace {

using namespace hlcs;
using namespace hlcs::sim::literals;

enum Shape { kSequential = 0, kRandom = 1, kDma = 2 };

std::vector<pattern::CommandType> make_workload(Shape shape) {
  tlm::WorkloadConfig cfg{.base = 0x1000, .span = 0x800, .seed = 4242};
  switch (shape) {
    case kSequential: return tlm::sequential_workload(cfg, 100);
    case kRandom: return tlm::random_workload(cfg, 100);
    case kDma: return tlm::dma_workload(cfg, 6, 16);
  }
  return {};
}

const char* shape_name(Shape s) {
  switch (s) {
    case kSequential: return "sequential";
    case kRandom: return "random";
    case kDma: return "dma";
  }
  return "?";
}

verify::Transcript run_functional(const std::vector<pattern::CommandType>& w) {
  sim::Kernel k;
  tlm::TlmMemory mem(0x1000, 0x1000);
  pattern::FunctionalBusInterface iface(k, "iface", mem);
  pattern::Application app(k, "app", iface, w);
  k.run();
  return app.transcript();
}

verify::Transcript run_pin(const std::vector<pattern::CommandType>& w) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 30_ns);
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arb(k, "arb", bus);
  pci::PciTarget target(k, "t0", bus,
                        pci::TargetConfig{.base = 0x1000, .size = 0x1000});
  pattern::PciBusInterface iface(k, "iface", bus, arb);
  pattern::Application app(k, "app", iface, w);
  for (int slice = 0; slice < 2000 && !app.done(); ++slice) k.run_for(10_us);
  return app.transcript();
}

void BM_RefinementFunctional(benchmark::State& state) {
  const auto shape = static_cast<Shape>(state.range(0));
  const auto w = make_workload(shape);
  std::uint64_t txns = 0;
  for (auto _ : state) {
    verify::Transcript t = run_functional(w);
    txns += t.size();
  }
  state.SetLabel(shape_name(shape));
  state.counters["txn/s"] = benchmark::Counter(
      static_cast<double>(txns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RefinementFunctional)->Arg(kSequential)->Arg(kRandom)->Arg(kDma);

void BM_RefinementPinAccurate(benchmark::State& state) {
  const auto shape = static_cast<Shape>(state.range(0));
  const auto w = make_workload(shape);
  // Equivalence reference computed once.
  const verify::Transcript golden = run_functional(w);
  std::uint64_t txns = 0;
  sim::Time sim_span;
  std::uint64_t mean_latency_ps = 0;
  for (auto _ : state) {
    verify::Transcript t = run_pin(w);
    auto cmp = verify::compare_functional(golden, t);
    if (!cmp) {
      state.SkipWithError(("refinement broke behaviour: " +
                           cmp.first_difference).c_str());
      return;
    }
    txns += t.size();
    sim_span = t.span();
    mean_latency_ps = verify::compare_timing(golden, t).mean_latency_ps_b;
  }
  state.SetLabel(shape_name(shape));
  state.counters["txn/s"] = benchmark::Counter(
      static_cast<double>(txns), benchmark::Counter::kIsRate);
  state.counters["sim_span_ns"] = static_cast<double>(sim_span.picos()) / 1e3;
  state.counters["mean_txn_latency_ns"] =
      static_cast<double>(mean_latency_ps) / 1e3;
}
BENCHMARK(BM_RefinementPinAccurate)->Arg(kSequential)->Arg(kRandom)->Arg(kDma);

/// The refined model with a clocked command channel (guarded methods
/// consume cycles too, the closest software model to the synthesised
/// implementation).
void BM_RefinementClockedChannel(benchmark::State& state) {
  const auto shape = static_cast<Shape>(state.range(0));
  const auto w = make_workload(shape);
  const verify::Transcript golden = run_functional(w);
  std::uint64_t txns = 0;
  for (auto _ : state) {
    sim::Kernel k;
    sim::Clock clk(k, "clk", 30_ns);
    pci::PciBus bus(k, "pci", clk);
    pci::PciArbiter arb(k, "arb", bus);
    pci::PciTarget target(k, "t0", bus,
                          pci::TargetConfig{.base = 0x1000, .size = 0x1000});
    pattern::PciBusInterface iface(k, "iface", bus, arb, clk);
    pattern::Application app(k, "app", iface, w);
    for (int slice = 0; slice < 2000 && !app.done(); ++slice) {
      k.run_for(10_us);
    }
    auto cmp = verify::compare_functional(golden, app.transcript());
    if (!cmp) {
      state.SkipWithError(("refinement broke behaviour: " +
                           cmp.first_difference).c_str());
      return;
    }
    txns += app.transcript().size();
  }
  state.SetLabel(shape_name(shape));
  state.counters["txn/s"] = benchmark::Counter(
      static_cast<double>(txns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RefinementClockedChannel)
    ->Arg(kSequential)
    ->Arg(kRandom)
    ->Arg(kDma);

/// The second pin-level library element (SimpleBus, word protocol):
/// demonstrates that the library offers multiple refinement targets and
/// measures the cost of a burst-less protocol.
void BM_RefinementSimpleBus(benchmark::State& state) {
  const auto shape = static_cast<Shape>(state.range(0));
  const auto w = make_workload(shape);
  const verify::Transcript golden = run_functional(w);
  std::uint64_t txns = 0;
  sim::Time sim_span;
  for (auto _ : state) {
    sim::Kernel k;
    sim::Clock clk(k, "clk", 30_ns);
    sbus::SimpleBus bus(k, "sbus", clk);
    sbus::SimpleBusTarget target(k, "t0", bus,
                                 {.base = 0x1000, .size = 0x1000});
    pattern::SimpleBusInterface iface(k, "iface", bus);
    pattern::Application app(k, "app", iface, w);
    for (int slice = 0; slice < 4000 && !app.done(); ++slice) {
      k.run_for(10_us);
    }
    auto cmp = verify::compare_functional(golden, app.transcript());
    if (!cmp) {
      state.SkipWithError(("refinement broke behaviour: " +
                           cmp.first_difference).c_str());
      return;
    }
    txns += app.transcript().size();
    sim_span = app.transcript().span();
  }
  state.SetLabel(shape_name(shape));
  state.counters["txn/s"] = benchmark::Counter(
      static_cast<double>(txns), benchmark::Counter::kIsRate);
  state.counters["sim_span_ns"] = static_cast<double>(sim_span.picos()) / 1e3;
}
BENCHMARK(BM_RefinementSimpleBus)->Arg(kSequential)->Arg(kRandom)->Arg(kDma);

}  // namespace

BENCHMARK_MAIN();
