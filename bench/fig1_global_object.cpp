// FIG1: the shared global object of the paper's Figure 1.
//
// Measures guarded-method call cost in both service modes:
//   * untimed (functional): zero simulated time, wall-clock throughput
//   * clocked (synchronous): one grant per rising edge; simulated-time
//     cost is exactly one cycle per call when uncontended
// and demonstrates the Figure 1 semantics at scale (N connected modules
// sharing one state space, all policies).
#include <benchmark/benchmark.h>

#include "hlcs/osss/osss.hpp"
#include "hlcs/sim/sim.hpp"

namespace {

using namespace hlcs;
using namespace hlcs::sim::literals;
using osss::PolicyKind;

/// Untimed global object: raw guarded-call throughput (wall clock).
void BM_UntimedCalls(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kCallsPerClient = 2000;
  std::uint64_t grants = 0;
  for (auto _ : state) {
    sim::Kernel k;
    osss::SharedObject<std::uint64_t> obj(
        k, "obj", std::make_unique<osss::FifoArbitration>(), 0);
    for (int c = 0; c < clients; ++c) {
      auto client = obj.make_client("c" + std::to_string(c));
      k.spawn("p" + std::to_string(c), [&k, client]() -> sim::Task {
        for (int i = 0; i < kCallsPerClient; ++i) {
          co_await client.call([](std::uint64_t& v) { ++v; });
        }
      });
    }
    k.run();
    grants += obj.stats().grants;
  }
  state.counters["calls/s"] = benchmark::Counter(
      static_cast<double>(grants), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UntimedCalls)->Arg(1)->Arg(2)->Arg(8)->Arg(32);

/// Clocked global object: grants are pinned to clock edges; report both
/// wall throughput and the simulated cost (cycles per call).
void BM_ClockedCalls(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  std::uint64_t grants = 0;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim::Kernel k;
    sim::Clock clk(k, "clk", 10_ns);
    osss::SharedObject<std::uint64_t> obj(
        k, "obj", clk, std::make_unique<osss::FifoArbitration>(), 0);
    for (int c = 0; c < clients; ++c) {
      auto client = obj.make_client("c" + std::to_string(c));
      k.spawn("p" + std::to_string(c), [&k, client]() -> sim::Task {
        for (;;) {
          co_await client.call([](std::uint64_t& v) { ++v; });
        }
      });
    }
    k.run_for(20_us);  // 2000 cycles
    grants += obj.stats().grants;
    cycles += clk.cycles();
  }
  state.counters["grants/s"] = benchmark::Counter(
      static_cast<double>(grants), benchmark::Counter::kIsRate);
  state.counters["cycles_per_grant"] =
      grants ? static_cast<double>(cycles) / static_cast<double>(grants) : 0;
}
BENCHMARK(BM_ClockedCalls)->Arg(1)->Arg(2)->Arg(8)->Arg(32);

/// Figure 1 exactly: one module sets, N-1 modules guarded-wait on the
/// state; measure the delta cost of the broadcast wake-up.
void BM_BistableBroadcast(benchmark::State& state) {
  const int watchers = static_cast<int>(state.range(0));
  std::uint64_t woken_total = 0;
  for (auto _ : state) {
    sim::Kernel k;
    osss::SharedObject<osss::Bistable> obj(
        k, "bistable", std::make_unique<osss::FifoArbitration>());
    int woken = 0;
    for (int w = 0; w < watchers; ++w) {
      auto c = obj.make_client("watch" + std::to_string(w));
      k.spawn("w" + std::to_string(w), [&woken, c]() -> sim::Task {
        co_await c.call([](const osss::Bistable& b) { return b.get_state(); },
                        [](osss::Bistable&) {});
        ++woken;
      });
    }
    auto setter = obj.make_client("setter");
    k.spawn("setter", [&k, setter]() -> sim::Task {
      co_await k.wait(10_ns);
      co_await setter.call([](osss::Bistable& b) { b.set(); });
    });
    k.run();
    woken_total += static_cast<std::uint64_t>(woken);
  }
  state.counters["wakeups/s"] = benchmark::Counter(
      static_cast<double>(woken_total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BistableBroadcast)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

/// All policies at fixed contention: wall cost of the scheduling
/// algorithm itself.
void BM_PolicyOverhead(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  constexpr int kClients = 8;
  std::uint64_t grants = 0;
  for (auto _ : state) {
    sim::Kernel k;
    sim::Clock clk(k, "clk", 10_ns);
    osss::SharedObject<std::uint64_t> obj(k, "obj", clk,
                                          osss::make_policy(policy), 0);
    for (int c = 0; c < kClients; ++c) {
      auto client = obj.make_client("c" + std::to_string(c));
      k.spawn("p" + std::to_string(c), [&k, client]() -> sim::Task {
        for (;;) co_await client.call([](std::uint64_t& v) { ++v; });
      });
    }
    k.run_for(10_us);
    grants += obj.stats().grants;
  }
  state.SetLabel(osss::policy_name(policy));
  state.counters["grants/s"] = benchmark::Counter(
      static_cast<double>(grants), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PolicyOverhead)
    ->Arg(static_cast<int>(PolicyKind::Fifo))
    ->Arg(static_cast<int>(PolicyKind::RoundRobin))
    ->Arg(static_cast<int>(PolicyKind::StaticPriority))
    ->Arg(static_cast<int>(PolicyKind::Random));

}  // namespace

BENCHMARK_MAIN();
