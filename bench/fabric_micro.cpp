// FABRIC: sharded-kernel scaling microbenchmarks -- event throughput of
// the generated multi-segment fabric (hlcs/fabric) as a function of
// shard count, and the serial-vs-sharded speedup gate.
//
// Two throughput views are reported, because they answer different
// questions:
//
//   events/s     -- events per wall-second of the whole run_for() call.
//                   This is what a user of THIS host observes; it only
//                   scales with shard count when the host has cores to
//                   spend (threads follow std::thread::hardware_concurrency
//                   via threads=0).
//   cp_events/s  -- events per second of the CRITICAL PATH: the busiest
//                   shard's accumulated busy time (ShardStats::busy_ns,
//                   which excludes barrier waits).  This is the standard
//                   conservative-PDES potential-throughput metric: it
//                   measures what the decomposition itself delivers
//                   (partition balance + per-shard kernel cost) and is
//                   host-core-count independent, so the committed
//                   baseline stays meaningful on a 1-core CI container.
//
// BM_FabricSpeedup is the acceptance gate: each iteration runs the
// serial reference and the sharded configuration back to back
// (interleaved A/B, so host drift hits both sides equally) and reports
// the per-iteration speedup ratios; with --benchmark_repetitions the
// JSON carries their medians.  speedup_cp >= 3 at 4+ shards on the
// 16-segment fabric is the bar (docs/PERF.md, "Sharded kernel").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "hlcs/fabric/fabric.hpp"

namespace {

using namespace hlcs;

struct RunSample {
  double wall_s = 0;      ///< wall time of run_for()
  double critical_s = 0;  ///< busiest shard's busy time
  std::uint64_t events = 0;
};

/// Build a fabric, run a fixed simulated span, and harvest the counters.
/// Construction/destruction stay outside the timed region: the bench
/// measures simulation throughput, not generator cost.
RunSample run_fabric(std::size_t segments, std::size_t shards,
                     unsigned threads) {
  fabric::FabricConfig cfg;
  cfg.segments = segments;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.app_ops = 6;
  fabric::FabricSystem sys(cfg);

  const auto t0 = std::chrono::steady_clock::now();
  sys.run_for(sim::Time::us(1000));
  const auto t1 = std::chrono::steady_clock::now();

  RunSample r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (const sim::ShardStats& st : sys.engine().stats()) {
    r.events += st.kernel.timed_actions;
    r.critical_s =
        std::max(r.critical_s, static_cast<double>(st.busy_ns) / 1e9);
  }
  return r;
}

/// Event throughput vs shard count on 1/4/16-segment ring fabrics.
/// threads=0: one worker per hardware thread (capped at shard count).
void BM_FabricEvents(benchmark::State& state) {
  const auto segments = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  std::uint64_t events = 0;
  double critical_s = 0;
  for (auto _ : state) {
    const RunSample r = run_fabric(segments, shards, /*threads=*/0);
    state.SetIterationTime(r.wall_s);
    events += r.events;
    critical_s += r.critical_s;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["cp_events/s"] =
      critical_s > 0 ? static_cast<double>(events) / critical_s : 0;
}
BENCHMARK(BM_FabricEvents)
    ->UseManualTime()
    ->ArgNames({"segments", "shards"})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Args({16, 16})
    ->Unit(benchmark::kMillisecond);

/// Serial-vs-sharded A/B: both runs inside every iteration, reference
/// first, so scheduler drift cancels in the ratio.  Medians of the
/// per-iteration ratios (run with --benchmark_repetitions) are the
/// numbers quoted in docs/PERF.md.
void BM_FabricSpeedup(benchmark::State& state) {
  const auto segments = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  double serial_wall = 0, serial_cp = 0;
  double sharded_wall = 0, sharded_cp = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const RunSample a = run_fabric(segments, /*shards=*/1, /*threads=*/1);
    const RunSample b = run_fabric(segments, shards, /*threads=*/0);
    state.SetIterationTime(a.wall_s + b.wall_s);
    serial_wall += a.wall_s;
    serial_cp += a.critical_s;
    sharded_wall += b.wall_s;
    sharded_cp += b.critical_s;
    events += b.events;
  }
  // Guard: both sides must have simulated the same workload or the
  // ratio is meaningless.
  benchmark::DoNotOptimize(events);
  state.counters["speedup_wall"] =
      sharded_wall > 0 ? serial_wall / sharded_wall : 0;
  state.counters["speedup_cp"] = sharded_cp > 0 ? serial_cp / sharded_cp : 0;
}
BENCHMARK(BM_FabricSpeedup)
    ->UseManualTime()
    ->ArgNames({"segments", "shards"})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Args({16, 16})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
