// FIG4: regenerates the paper's simulation waveforms (a VCD of the
// synthesised PCI handler serving application transactions) and prints
// the per-transaction pin-level timing table the waveforms show.
//
// Also runs the ABL2 ablation: transaction cycle cost as a function of
// target wait states, DEVSEL decode speed, and disconnect behaviour --
// the design-space of the library element's environment.
//
// Unlike the other benches this is a report generator (deterministic
// simulated-time results), so it is a plain executable, not a
// google-benchmark binary.
#include <cstdio>

#include "hlcs/check/check.hpp"
#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/verify/vcd_reader.hpp"

using namespace hlcs;
using namespace hlcs::sim::literals;

namespace {

struct RunResult {
  std::uint64_t cycles_single_read = 0;
  std::uint64_t cycles_single_write = 0;
  std::uint64_t cycles_burst8_read = 0;
  std::uint64_t cycles_burst8_write = 0;
  std::size_t violations = 0;
  /// Temporal-property results: total failures across both engines, a
  /// bit-identity flag between them, and the behavioural per-property
  /// pass counts (for cross-run comparison).
  std::uint64_t prop_fails = 0;
  bool engines_agree = false;
  std::vector<std::pair<std::string, std::uint64_t>> prop_passes;
};

RunResult run_system(const pci::TargetConfig& tcfg, sim::Trace* trace) {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 30_ns);
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arb(k, "arb", bus);
  pci::PciMonitor mon(k, "mon", bus);
  pci::PciTarget target(k, "t0", bus, tcfg);
  pattern::PciBusInterface iface(k, "iface", bus, arb);
  // The same PCI rule pack watches the run twice: behaviourally and as
  // the synthesised monitor netlist (the paper's step-3 consistency
  // check restated over properties).
  const check::Spec spec =
      check::pci_rules(check::PciRuleOptions{.arbitration = true});
  const check::ProbeSet probes =
      check::pci_probes(bus, {iface.arb_port().gnt});
  check::Monitor beh(k, "beh", spec, clk, probes);
  check::NetlistMonitor rtl(k, "rtl", spec, clk, probes);
  if (trace) {
    bus.trace_all(*trace);
    k.attach_trace(*trace);
  }
  std::vector<pattern::CommandType> workload = {
      {.op = pattern::BusOp::Write, .addr = tcfg.base, .data = {0xCAFED00D}},
      {.op = pattern::BusOp::Read, .addr = tcfg.base, .count = 1},
      {.op = pattern::BusOp::WriteBurst,
       .addr = tcfg.base + 0x40,
       .data = {1, 2, 3, 4, 5, 6, 7, 8}},
      {.op = pattern::BusOp::ReadBurst, .addr = tcfg.base + 0x40, .count = 8},
  };
  pattern::Application app(k, "app", iface, workload);
  for (int slice = 0; slice < 1000 && !app.done(); ++slice) k.run_for(10_us);
  RunResult r;
  if (!app.done() || mon.records().size() < 4) {
    std::fprintf(stderr, "run did not complete cleanly!\n");
    return r;
  }
  // Monitor records are in bus order == workload order (auto-retry may
  // split one command over several tenures; sum per command by matching
  // completion counts).
  const auto& es = app.transcript().entries();
  r.cycles_single_write = (es[0].completed - es[0].issued).picos() / 30000;
  r.cycles_single_read = (es[1].completed - es[1].issued).picos() / 30000;
  r.cycles_burst8_write = (es[2].completed - es[2].issued).picos() / 30000;
  r.cycles_burst8_read = (es[3].completed - es[3].issued).picos() / 30000;
  r.violations = mon.violations().size();
  r.prop_fails = beh.stats().fails() + rtl.stats().fails();
  const auto& sb = beh.stats().props;
  const auto& sr = rtl.stats().props;
  r.engines_agree =
      beh.stats().edges == rtl.stats().edges && sb.size() == sr.size();
  for (std::size_t i = 0; i < sb.size() && i < sr.size(); ++i) {
    r.engines_agree = r.engines_agree && sb[i].attempts == sr[i].attempts &&
                      sb[i].passes == sr[i].passes &&
                      sb[i].fails == sr[i].fails &&
                      sb[i].vacuous == sr[i].vacuous;
    r.prop_passes.emplace_back(sb[i].name, sb[i].passes);
  }
  return r;
}

}  // namespace

int main() {
  std::printf("FIG4 -- waveform regeneration and pin-level transaction "
              "timing\n");
  std::printf("=============================================================="
              "==\n\n");

  int status = 0;

  // The headline run (matches the paper's test system: one application,
  // the PCI library element, one target) with the VCD dump.
  const char* vcd_path = HLCS_TRACE_DIR "/fig4_waveforms.vcd";
  RunResult r1;
  {
    sim::Trace trace(vcd_path);
    RunResult& r = r1;
    r = run_system(
        pci::TargetConfig{.base = 0x40000000,
                          .size = 0x1000,
                          .devsel = pci::DevselSpeed::Medium,
                          .initial_wait = 1,
                          .per_word_wait = 0},
        &trace);
    std::printf("VCD written to %s (open in GTKWave)\n\n", vcd_path);
    std::printf("transaction timings at 33 MHz (medium DEVSEL, 1 initial "
                "wait):\n");
    std::printf("  single write : %3llu cycles end-to-end\n",
                static_cast<unsigned long long>(r.cycles_single_write));
    std::printf("  single read  : %3llu cycles\n",
                static_cast<unsigned long long>(r.cycles_single_read));
    std::printf("  8-word write : %3llu cycles\n",
                static_cast<unsigned long long>(r.cycles_burst8_write));
    std::printf("  8-word read  : %3llu cycles\n",
                static_cast<unsigned long long>(r.cycles_burst8_read));
    std::printf("  protocol violations: %zu\n\n", r.violations);
  }

  // The paper's step-3 check, waveform edition: re-simulate the same
  // system and verify pin-level consistency against the dump above.
  // The comparison streams both files change-by-change (only the
  // current value per signal is held, never a full timeline).
  {
    const char* vcd2 = HLCS_TRACE_DIR "/fig4_waveforms_check.vcd";
    RunResult r2;
    {
      sim::Trace trace(vcd2);
      r2 = run_system(pci::TargetConfig{.base = 0x40000000,
                                        .size = 0x1000,
                                        .devsel = pci::DevselSpeed::Medium,
                                        .initial_wait = 1,
                                        .per_word_wait = 0},
                      &trace);
    }
    const verify::WaveCompareResult wc = verify::compare_vcd_files(
        vcd_path, vcd2);
    std::printf("waveform consistency (streamed re-simulation): %s "
                "(%zu signals)\n",
                wc ? "PASS" : wc.first_difference.c_str(),
                wc.signals_compared);
    if (!wc) status = 1;

    // Property edition of the same gate: no failures on either side of
    // the refinement, the behavioural and netlist engines bit-agree
    // within each run, and the non-vacuous pass profile matches across
    // the two runs.
    const bool props_ok = r1.prop_fails == 0 && r2.prop_fails == 0 &&
                          r1.engines_agree && r2.engines_agree &&
                          !r1.prop_passes.empty() &&
                          r1.prop_passes == r2.prop_passes;
    std::printf("property consistency (behavioural vs RTL monitors): %s\n",
                props_ok ? "PASS" : "FAIL");
    for (const auto& [name, passes] : r1.prop_passes) {
      std::printf("  %-22s passes=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(passes));
    }
    std::printf("\n");
    if (!props_ok) status = 1;
  }

  // ABL2: wait states x DEVSEL speed sweep.
  std::printf("ABL2 -- transaction cycles vs target timing "
              "(rd1/wr1/rd8/wr8):\n");
  std::printf("%-8s %-6s | %6s %6s %6s %6s | %s\n", "devsel", "waits", "wr1",
              "rd1", "wr8", "rd8", "violations");
  std::printf("--------------------------------------------------------\n");
  for (auto speed : {pci::DevselSpeed::Fast, pci::DevselSpeed::Medium,
                     pci::DevselSpeed::Slow}) {
    for (unsigned waits : {0u, 1u, 2u, 4u, 7u}) {
      RunResult r = run_system(
          pci::TargetConfig{.base = 0x1000,
                            .size = 0x1000,
                            .devsel = speed,
                            .initial_wait = waits,
                            .per_word_wait = waits},
          nullptr);
      const char* sname = speed == pci::DevselSpeed::Fast ? "fast"
                          : speed == pci::DevselSpeed::Medium ? "medium"
                                                              : "slow";
      std::printf("%-8s %-6u | %6llu %6llu %6llu %6llu | %zu\n", sname, waits,
                  static_cast<unsigned long long>(r.cycles_single_write),
                  static_cast<unsigned long long>(r.cycles_single_read),
                  static_cast<unsigned long long>(r.cycles_burst8_write),
                  static_cast<unsigned long long>(r.cycles_burst8_read),
                  r.violations);
    }
  }

  // Disconnect / retry ablation.
  std::printf("\nABL2b -- burst-8 cycles vs disconnect/retry behaviour:\n");
  std::printf("%-24s | %6s %6s\n", "target behaviour", "wr8", "rd8");
  std::printf("----------------------------------------\n");
  struct Case {
    const char* name;
    pci::TargetConfig cfg;
  } cases[] = {
      {"clean", {.base = 0x1000, .size = 0x1000}},
      {"disconnect every 4", {.base = 0x1000, .size = 0x1000,
                              .disconnect_after = 4}},
      {"disconnect every 2", {.base = 0x1000, .size = 0x1000,
                              .disconnect_after = 2}},
      {"retry first 2 tenures", {.base = 0x1000, .size = 0x1000,
                                 .retry_first = 2}},
  };
  for (const Case& c : cases) {
    RunResult r = run_system(c.cfg, nullptr);
    std::printf("%-24s | %6llu %6llu\n", c.name,
                static_cast<unsigned long long>(r.cycles_burst8_write),
                static_cast<unsigned long long>(r.cycles_burst8_read));
  }
  std::printf("\nShape check: every wait state adds ~1 cycle per affected "
              "phase;\nbursts amortise the address phase; disconnects "
              "re-arbitrate per fragment.\n");
  return status;
}
