#!/usr/bin/env python3
"""Compare two Google-Benchmark JSON files and fail on regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.10]

For every benchmark present in both files, the real_time of CURRENT is
compared against BASELINE.  A benchmark whose time grew by more than the
tolerance (default 10%) is a regression; any regression makes the script
exit non-zero, so it can gate CI (see the `bench-regress` target).

Benchmarks present in only one file are reported but never fatal: the
suite is allowed to grow.  When a file was produced with
--benchmark_repetitions, the median aggregate is used (robust against
scheduler noise); otherwise the raw single-run time is used.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    raw = {}
    medians = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[b["run_name"]] = float(b["real_time"])
        else:
            raw[b.get("run_name", b["name"])] = float(b["real_time"])
    # Prefer the median aggregate wherever repetitions were recorded.
    raw.update(medians)
    return raw


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown before failing (default 0.10)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    curr = load(args.current)

    regressions = []
    improvements = []
    width = max((len(n) for n in base), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(base):
        if name not in curr:
            print(f"{name:<{width}}  {base[name]:>12.1f}  {'MISSING':>12}")
            continue
        b, c = base[name], curr[name]
        delta = (c - b) / b if b > 0 else 0.0
        flag = ""
        if delta > args.tolerance:
            flag = "  REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.tolerance:
            flag = "  improved"
            improvements.append((name, delta))
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {delta:+7.1%}{flag}")
    for name in sorted(set(curr) - set(base)):
        print(f"{name:<{width}}  {'NEW':>12}  {curr[name]:>12.1f}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.tolerance:.0%}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(
        f"\nOK: no regression beyond {args.tolerance:.0%} "
        f"({len(improvements)} improved)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
