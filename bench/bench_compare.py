#!/usr/bin/env python3
"""Compare two Google-Benchmark JSON files and fail on regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.10]
    bench_compare.py --list FILE.json [FILE.json ...]

For every benchmark present in both files, the real_time of CURRENT is
compared against BASELINE.  A benchmark whose time grew by more than the
tolerance (default 10%) is a regression; any regression makes the script
exit non-zero, so it can gate CI (see the `bench-regress` target).

Benchmarks present in only one file are reported but never fatal: the
suite is allowed to grow.  When a file was produced with
--benchmark_repetitions, the median aggregate is used (robust against
scheduler noise); otherwise the raw single-run time is used.

--list prints the benchmarks a file contains (name and the time that
would be compared) without comparing anything -- handy for checking what
a rebase captured.

Every input problem (unreadable file, malformed JSON, an entry without
the compared metric) is reported as a single actionable line naming the
file and what is missing; the script never surfaces a raw traceback for
bad input.
"""

import argparse
import json
import sys


def die(msg):
    """One-line diagnosis on stderr, exit 2 (distinct from regressions)."""
    print(f"bench_compare: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except OSError as e:
        die(f"{path}: cannot read file ({e.strerror or e})")
    except json.JSONDecodeError as e:
        die(
            f"{path}: malformed JSON at line {e.lineno}, column {e.colno}: "
            f"{e.msg}"
        )
    if not isinstance(data, dict) or "benchmarks" not in data:
        die(
            f"{path}: no 'benchmarks' array -- is this a Google-Benchmark "
            f"--benchmark_format=json output?"
        )
    raw = {}
    medians = {}
    for i, b in enumerate(data["benchmarks"]):
        if not isinstance(b, dict):
            die(f"{path}: benchmarks[{i}] is not an object")
        name = b.get("run_name", b.get("name"))
        if name is None:
            die(f"{path}: benchmarks[{i}] has neither 'run_name' nor 'name'")
        if "real_time" not in b:
            die(f"{path}: benchmark '{name}' is missing metric 'real_time'")
        try:
            time = float(b["real_time"])
        except (TypeError, ValueError):
            die(
                f"{path}: benchmark '{name}' has non-numeric 'real_time' "
                f"({b['real_time']!r})"
            )
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[name] = time
        else:
            raw[name] = time
    # Prefer the median aggregate wherever repetitions were recorded.
    raw.update(medians)
    return raw


def list_files(paths):
    for path in paths:
        bench = load(path)
        print(f"{path}: {len(bench)} benchmark(s)")
        width = max((len(n) for n in bench), default=10)
        for name in sorted(bench):
            print(f"  {name:<{width}}  {bench[name]:>12.1f} ns")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", metavar="FILE",
                    help="BASELINE CURRENT, or one or more files with --list")
    ap.add_argument(
        "--list",
        action="store_true",
        help="print the benchmarks each FILE contains and exit",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown before failing (default 0.10)",
    )
    args = ap.parse_args()

    if args.list:
        return list_files(args.files)
    if len(args.files) != 2:
        die("expected exactly BASELINE.json and CURRENT.json "
            f"(got {len(args.files)} file(s); use --list to inspect files)")

    base = load(args.files[0])
    curr = load(args.files[1])

    regressions = []
    improvements = []
    width = max((len(n) for n in base), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(base):
        if name not in curr:
            print(f"{name:<{width}}  {base[name]:>12.1f}  {'MISSING':>12}")
            continue
        b, c = base[name], curr[name]
        delta = (c - b) / b if b > 0 else 0.0
        flag = ""
        if delta > args.tolerance:
            flag = "  REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.tolerance:
            flag = "  improved"
            improvements.append((name, delta))
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {delta:+7.1%}{flag}")
    for name in sorted(set(curr) - set(base)):
        print(f"{name:<{width}}  {'NEW':>12}  {curr[name]:>12.1f}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.tolerance:.0%}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(
        f"\nOK: no regression beyond {args.tolerance:.0%} "
        f"({len(improvements)} improved)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
