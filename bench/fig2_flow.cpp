// FIG2: the design-flow motivation -- "the high simulation speeds
// achievable with such descriptions".
//
// The same 200-transaction workload is simulated at every abstraction
// level of the flow of Figure 2:
//   L1 functional, untimed          (executable system model)
//   L2 functional, loosely timed    (budgeted per-word latency)
//   L3 pin-accurate PCI             (implementation model)
//   L4 synthesised RTL channel      (post-synthesis netlist simulation)
// The expected SHAPE: wall-clock throughput drops by orders of magnitude
// from L1 to L3/L4, which is precisely why the paper models and
// validates at the high level and synthesises the communication
// afterwards.
#include <benchmark/benchmark.h>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/synth/synth.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/tlm/tlm.hpp"

namespace {

using namespace hlcs;
using namespace hlcs::sim::literals;

std::vector<pattern::CommandType> workload() {
  return tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x800, .seed = 77}, 200);
}

void BM_L1_FunctionalUntimed(benchmark::State& state) {
  const auto cmds = workload();
  std::uint64_t txns = 0;
  for (auto _ : state) {
    sim::Kernel k;
    tlm::TlmMemory mem(0x1000, 0x1000);
    pattern::FunctionalBusInterface iface(k, "iface", mem);
    pattern::Application app(k, "app", iface, cmds);
    k.run();
    if (!app.done()) state.SkipWithError("app did not finish");
    txns += app.transcript().size();
  }
  state.counters["txn/s"] = benchmark::Counter(
      static_cast<double>(txns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_L1_FunctionalUntimed);

void BM_L2_FunctionalTimed(benchmark::State& state) {
  const auto cmds = workload();
  std::uint64_t txns = 0;
  for (auto _ : state) {
    sim::Kernel k;
    tlm::TlmMemory mem(0x1000, 0x1000);
    pattern::FunctionalBusInterface iface(
        k, "iface", mem,
        pattern::FunctionalTiming{.per_command = 90_ns, .per_word = 30_ns});
    pattern::Application app(k, "app", iface, cmds);
    k.run();
    if (!app.done()) state.SkipWithError("app did not finish");
    txns += app.transcript().size();
  }
  state.counters["txn/s"] = benchmark::Counter(
      static_cast<double>(txns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_L2_FunctionalTimed);

void BM_L3_PinAccuratePci(benchmark::State& state) {
  const auto cmds = workload();
  std::uint64_t txns = 0;
  for (auto _ : state) {
    sim::Kernel k;
    sim::Clock clk(k, "clk", 30_ns);
    pci::PciBus bus(k, "pci", clk);
    pci::PciArbiter arb(k, "arb", bus);
    pci::PciTarget target(k, "t0", bus,
                          pci::TargetConfig{.base = 0x1000, .size = 0x1000});
    pattern::PciBusInterface iface(k, "iface", bus, arb);
    pattern::Application app(k, "app", iface, cmds);
    for (int slice = 0; slice < 1000 && !app.done(); ++slice) {
      k.run_for(10_us);
    }
    if (!app.done()) state.SkipWithError("app did not finish");
    txns += app.transcript().size();
  }
  state.counters["txn/s"] = benchmark::Counter(
      static_cast<double>(txns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_L3_PinAccuratePci);

/// Post-synthesis model of the communication channel: commands pushed
/// through the synthesised RTL mailbox, one netlist clock per cycle.
void BM_L4_SynthesisedRtlChannel(benchmark::State& state) {
  const auto cmds = workload();
  pattern::SynthesisableChannel ch = pattern::make_synthesisable_channel();
  synth::Netlist nl =
      synth::synthesize(ch.desc, synth::SynthOptions{.clients = 2});
  std::uint64_t txns = 0;
  for (auto _ : state) {
    synth::NetlistSim rtl(nl);
    // Client 0 = app, client 1 = interface; emulate the service loop at
    // cycle accuracy: put command, fetch command, put response, get it.
    for (const auto& cmd : cmds) {
      const std::uint64_t args =
          static_cast<std::uint64_t>(pattern::to_pci_command(cmd.op)) |
          (static_cast<std::uint64_t>(cmd.words() & 0xFF) << 4) |
          (static_cast<std::uint64_t>(cmd.addr) << 12);
      auto drive = [&](std::size_t client, std::size_t sel,
                       std::uint64_t a) {
        rtl.set_input("rst", 0);
        rtl.set_input(synth::req_port(client), 1);
        rtl.set_input(synth::sel_port(client), sel);
        rtl.set_input(synth::args_port(client), a);
        // Wait (bounded) for the grant, then clock through it.
        for (int guard_cycles = 0; guard_cycles < 8; ++guard_cycles) {
          rtl.settle();
          const bool granted = rtl.get(synth::grant_port(client)) != 0;
          rtl.clock_edge();
          if (granted) break;
        }
        rtl.set_input(synth::req_port(client), 0);
      };
      drive(0, ch.methods.put_command, args);
      drive(1, ch.methods.get_command, 0);
      drive(1, ch.methods.put_response, 0x0ull | (0xABCDull << 2));
      drive(0, ch.methods.app_data_get, 0);
      ++txns;
    }
  }
  state.counters["txn/s"] = benchmark::Counter(
      static_cast<double>(txns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_L4_SynthesisedRtlChannel);

}  // namespace

BENCHMARK_MAIN();
