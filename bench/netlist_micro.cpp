// NETLIST: execution-engine microbenchmarks -- the A/B evidence for the
// bytecode-tape settle engine.  Every benchmark is parameterised over
// SettleMode so the legacy recursive interpreter (TreeWalk), the flat
// full-tape evaluator (FullTape) and the event-driven engine
// (Incremental) run interleaved in the same binary, same process, same
// netlist: the only variable is the execution strategy.
//
//   BM_NetlistEdge   dense stimulus -- every client port rewritten each
//                    edge, so Incremental has no sparsity to exploit and
//                    the comparison isolates tape-vs-tree dispatch cost.
//   BM_SettleSparse  one 1-bit input toggles between settles; the
//                    reeval_frac counter shows Incremental touching only
//                    the dirty cone while the full modes re-run all combs.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "hlcs/sim/random.hpp"
#include "hlcs/synth/synth.hpp"

namespace {

using namespace hlcs::synth;

/// The paper's mailbox channel: two state vars, guarded put/get, a
/// 16-bit datapath -- the same shape sec3_consistency measures.
ObjectDesc make_mailbox() {
  ObjectDesc d("mailbox");
  const std::uint32_t full = d.add_var("full", 1, 0);
  const std::uint32_t data = d.add_var("data", 16, 0);
  d.add_method("put")
      .arg("d", 16)
      .guard(d.arena().bin(ExprOp::Eq, d.v(full), d.lit(0, 1)))
      .assign(full, d.lit(1, 1))
      .assign(data, d.a(0, 16));
  d.add_method("get")
      .guard(d.arena().bin(ExprOp::Eq, d.v(full), d.lit(1, 1)))
      .assign(full, d.lit(0, 1))
      .returns(d.v(data), 16);
  return d;
}

Netlist make_channel(std::size_t clients) {
  SynthOptions opt;
  opt.clients = clients;
  opt.policy = hlcs::osss::PolicyKind::RoundRobin;
  return synthesize(make_mailbox(), opt);
}

SettleMode mode_of(std::int64_t arg) {
  switch (arg) {
    case 0: return SettleMode::TreeWalk;
    case 1: return SettleMode::FullTape;
    default: return SettleMode::Incremental;
  }
}

void report_stats(benchmark::State& state, const NetlistSim& sim) {
  const NetlistStats& st = sim.stats();
  if (st.edges > 0) {
    state.counters["combs/edge"] =
        static_cast<double>(st.combs_evaluated) / static_cast<double>(st.edges);
  }
  if (st.combs_possible > 0) {
    state.counters["reeval_frac"] = static_cast<double>(st.combs_evaluated) /
                                    static_cast<double>(st.combs_possible);
  }
  state.counters["peak_worklist"] = static_cast<double>(st.peak_worklist);
  state.counters["tape_insns"] =
      static_cast<double>(sim.tape().code().size());
}

/// Full clock edges under dense stimulus: every request/select/argument
/// port is rewritten from the RNG each edge.  range(0) = mode,
/// range(1) = clients.
void BM_NetlistEdge(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(1));
  Netlist nl = make_channel(clients);
  NetlistSim sim(nl, mode_of(state.range(0)));
  std::vector<NetId> req, sel, args;
  for (std::size_t i = 0; i < clients; ++i) {
    req.push_back(nl.find(req_port(i)));
    sel.push_back(nl.find(sel_port(i)));
    args.push_back(nl.find(args_port(i)));
  }
  hlcs::sim::Xorshift rng(0xED6E);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    for (std::size_t i = 0; i < clients; ++i) {
      sim.set_input(req[i], (r >> i) & 1);
      sim.set_input(sel[i], (r >> (8 + i)) & 1);
      sim.set_input(args[i], r >> 16);
    }
    sim.clock_edge();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  report_stats(state, sim);
}
BENCHMARK(BM_NetlistEdge)
    ->ArgNames({"mode", "clients"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({2, 4});

/// Sparse settles: one client's 1-bit request toggles, everything else
/// holds.  The incremental engine should re-evaluate only the request's
/// fan-out cone (reeval_frac << 1); the full modes pay for every comb.
void BM_SettleSparse(benchmark::State& state) {
  const std::size_t clients = 4;
  Netlist nl = make_channel(clients);
  NetlistSim sim(nl, mode_of(state.range(0)));
  const NetId toggled = nl.find(req_port(clients - 1));
  sim.clock_edge();  // out of reset, machine in steady state
  sim.reset_stats();
  std::uint64_t v = 0;
  for (auto _ : state) {
    v ^= 1;
    sim.set_input(toggled, v);
    sim.settle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["settles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  const NetlistStats& st = sim.stats();
  if (st.settles > 0 && !nl.combs().empty()) {
    // Combs re-evaluated per settle, as a fraction of the full design.
    state.counters["reeval_frac"] =
        static_cast<double>(st.combs_evaluated) /
        (static_cast<double>(st.settles) *
         static_cast<double>(nl.combs().size()));
  }
  state.counters["peak_worklist"] = static_cast<double>(st.peak_worklist);
}
BENCHMARK(BM_SettleSparse)->ArgName("mode")->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
