// Clocked property monitors.  Both flavours sample the same ProbeSet on
// every rising edge and keep CheckStats; they differ only in the engine
// that turns samples into verdicts:
//
//   * check::Monitor         -- AutomatonEval (behavioural tree-walk)
//   * check::NetlistMonitor  -- the lowered netlist in a NetlistSim
//
// Running one of each against the same design is the paper's Fig. 4
// step-3 consistency check restated over properties: identical stats
// from two independent evaluators of one specification.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hlcs/check/automaton.hpp"
#include "hlcs/check/stats.hpp"
#include "hlcs/sim/clock.hpp"
#include "hlcs/sim/module.hpp"
#include "hlcs/sim/probe.hpp"
#include "hlcs/synth/rtl_sim.hpp"

namespace hlcs::check {

/// Named probes bound to automaton signals by name at monitor
/// construction; width mismatches and missing probes throw there.
class ProbeSet {
public:
  ProbeSet& add(sim::Probe p) {
    probes_.push_back(std::move(p));
    return *this;
  }
  const std::vector<sim::Probe>& probes() const { return probes_; }

  /// Probe readers in automaton signal order.
  std::vector<const sim::Probe*> bind(const Automaton& a) const {
    std::vector<const sim::Probe*> out;
    out.reserve(a.signals.size());
    for (const SignalDecl& s : a.signals) {
      const sim::Probe* found = nullptr;
      for (const sim::Probe& p : probes_) {
        if (p.name == s.name) {
          found = &p;
          break;
        }
      }
      if (!found) fail(a.name + ": no probe bound for signal '" + s.name + "'");
      if (found->width != s.width) {
        fail(a.name + ": probe '" + s.name + "' width " +
             std::to_string(found->width) + " != signal width " +
             std::to_string(s.width));
      }
      out.push_back(found);
    }
    return out;
  }

private:
  std::vector<sim::Probe> probes_;
};

struct MonitorOptions {
  std::size_t max_recorded_failures = 64;
  bool throw_on_fail = false;
  /// Optional disable-iff condition, sampled per edge (e.g. reset).
  std::function<bool()> disable;
};

namespace detail {

/// Everything engine-independent: sampling, accounting, failure capture.
class MonitorBase : public sim::Module {
public:
  const CheckStats& stats() const { return stats_; }
  const Automaton& automaton() const { return a_; }

  std::string describe(const CheckFailure& f) const {
    return "cycle " + std::to_string(f.cycle) + ": property " +
           a_.props[f.property].name + " failed (x" +
           std::to_string(f.count) + ")";
  }
  /// Failing cycles of one property, by name (A/B comparison helper).
  std::vector<std::uint64_t> fail_cycles(const std::string& prop) const {
    std::vector<std::uint64_t> out;
    for (const CheckFailure& f : stats_.failures) {
      if (a_.props[f.property].name == prop) out.push_back(f.cycle);
    }
    return out;
  }

protected:
  MonitorBase(sim::Kernel& k, std::string name, Automaton a, sim::Clock& clk,
              const ProbeSet& probes, MonitorOptions opt)
      : Module(k, std::move(name)),
        a_(std::move(a)),
        clk_(clk),
        probes_(probes),  // owned copy: binding points into it
        bound_(probes_.bind(a_)),
        opt_(std::move(opt)),
        samples_(a_.signals.size(), 0) {
    stats_.props.resize(a_.props.size());
    for (std::size_t i = 0; i < a_.props.size(); ++i) {
      stats_.props[i].name = a_.props[i].name;
    }
    sim::MethodProcess& m =
        method("sample", [this] { on_edge(); }, /*initial_trigger=*/false);
    clk.posedge().add_static(m);
  }

  /// Engine hook: consume this edge's samples, produce verdicts.
  virtual void evaluate(const std::vector<std::uint64_t>& samples,
                        bool disabled,
                        std::vector<AutomatonEval::Verdict>& verdicts) = 0;

  Automaton a_;

private:
  void on_edge() {
    for (std::size_t i = 0; i < bound_.size(); ++i) {
      samples_[i] = bound_[i]->read();
    }
    const bool disabled = opt_.disable && opt_.disable();
    evaluate(samples_, disabled, verdicts_);
    ++stats_.edges;
    if (disabled) {
      ++stats_.disabled_edges;
      return;
    }
    for (std::size_t i = 0; i < verdicts_.size(); ++i) {
      const AutomatonEval::Verdict& v = verdicts_[i];
      PropertyStats& ps = stats_.props[i];
      ps.attempts += v.attempt;
      ps.passes += v.pass;
      ps.fails += v.fail;
      ps.vacuous += v.vacuous;
      if (v.fail != 0) {
        const CheckFailure f{clk_.cycles(), static_cast<std::uint32_t>(i),
                             v.fail};
        if (stats_.failures.size() < opt_.max_recorded_failures) {
          stats_.failures.push_back(f);
        } else {
          ++stats_.dropped_failures;
        }
        if (opt_.throw_on_fail) throw ProtocolError(name() + ": " + describe(f));
      }
    }
  }

  sim::Clock& clk_;
  ProbeSet probes_;
  std::vector<const sim::Probe*> bound_;
  MonitorOptions opt_;
  std::vector<std::uint64_t> samples_;
  std::vector<AutomatonEval::Verdict> verdicts_;
  CheckStats stats_;
};

}  // namespace detail

/// Behavioural monitor: the automaton evaluated by tree walk.
class Monitor final : public detail::MonitorBase {
public:
  Monitor(sim::Kernel& k, std::string name, const Spec& spec, sim::Clock& clk,
          const ProbeSet& probes, MonitorOptions opt = {})
      : MonitorBase(k, std::move(name), compile(spec), clk, probes,
                    std::move(opt)),
        eval_(a_) {}

private:
  void evaluate(const std::vector<std::uint64_t>& samples, bool disabled,
                std::vector<AutomatonEval::Verdict>& verdicts) override {
    eval_.step(samples, disabled, verdicts);
  }

  AutomatonEval eval_;
};

/// RT-level monitor: the same spec lowered to a netlist and co-simulated
/// cycle by cycle.  Verdict nets are combinational over the pre-edge
/// register state, so the order is settle -> read -> clock_edge.
class NetlistMonitor final : public detail::MonitorBase {
public:
  NetlistMonitor(sim::Kernel& k, std::string name, const Spec& spec,
                 sim::Clock& clk, const ProbeSet& probes,
                 synth::SettleMode mode = synth::SettleMode::Incremental,
                 MonitorOptions opt = {})
      : MonitorBase(k, std::move(name), compile(spec), clk, probes,
                    std::move(opt)),
        nl_(lower(a_)),
        sim_(nl_, mode),
        rst_(nl_.find("rst")) {
    for (const SignalDecl& s : a_.signals) sig_nets_.push_back(nl_.find(s.name));
    for (const PropertyAutomaton& p : a_.props) {
      outs_.push_back(Outs{nl_.find(p.name + "_attempt"),
                           nl_.find(p.name + "_vacuous"),
                           nl_.find(p.name + "_pass"),
                           nl_.find(p.name + "_fail")});
    }
  }

  const synth::Netlist& netlist() const { return nl_; }
  synth::NetlistSim& netlist_sim() { return sim_; }

private:
  void evaluate(const std::vector<std::uint64_t>& samples, bool disabled,
                std::vector<AutomatonEval::Verdict>& verdicts) override {
    for (std::size_t i = 0; i < sig_nets_.size(); ++i) {
      sim_.set_input(sig_nets_[i], samples[i]);
    }
    sim_.set_input(rst_, disabled ? 1 : 0);
    sim_.settle();
    verdicts.resize(outs_.size());
    for (std::size_t i = 0; i < outs_.size(); ++i) {
      verdicts[i] = AutomatonEval::Verdict{
          sim_.get(outs_[i].attempt), sim_.get(outs_[i].pass),
          sim_.get(outs_[i].fail), sim_.get(outs_[i].vacuous)};
    }
    sim_.clock_edge();
  }

  struct Outs {
    synth::NetId attempt, vacuous, pass, fail;
  };

  synth::Netlist nl_;
  synth::NetlistSim sim_;
  synth::NetId rst_;
  std::vector<synth::NetId> sig_nets_;
  std::vector<Outs> outs_;
};

}  // namespace hlcs::check
