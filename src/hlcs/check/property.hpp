// Temporal property DSL.
//
// A Spec declares a set of sampled signals and a list of properties over
// them.  Properties are clocked: everything is evaluated once per rising
// edge of whichever clock the monitor binds, over the values the probes
// sampled at that edge.  A property has the SVA-like shape
//
//     antecedent |-> consequent
//
// where the antecedent is a 1-bit value expression (an "attempt" starts
// on every edge it holds; edges where it does not hold are *vacuous*)
// and the consequent is a sequence:
//
//     seq(expr)                  satisfied/violated on the attempt edge
//     delay(n, seq)              ##n: the inner sequence starts n edges later
//     until(p, q)                weak until: p must hold every edge until
//                                q holds (q resolves all pending attempts
//                                as passes; !p && !q fails them)
//     eventually_within(n, p)    p must hold on the attempt edge or one of
//                                the following n edges; expiry is a fail
//
// Value expressions are the synthesisable ExprArena subset plus three
// pieces of temporal sugar that allocate hidden state registers:
// past(e, n), rose(e), fell(e), stable(e).  Because every property
// compiles to registers + combinational logic over them (check/automaton
// .hpp), the same Spec runs behaviourally and as a synthesised netlist.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "hlcs/sim/assert.hpp"
#include "hlcs/synth/expr.hpp"

namespace hlcs::check {

using synth::ExprArena;
using synth::ExprId;
using synth::ExprOp;
using synth::kNoExpr;

class Spec;

/// Value-expression handle: a node in the Spec's arena with operator
/// sugar so rule packs read like boolean formulas.
struct E {
  Spec* spec = nullptr;
  ExprId id = kNoExpr;
};

using SeqId = std::uint32_t;
inline constexpr SeqId kNoSeq = ~SeqId{0};

enum class SeqKind : std::uint8_t { Expr, Delay, Until, EventuallyWithin };

struct SeqNode {
  SeqKind kind;
  unsigned n = 0;          ///< Delay / EventuallyWithin bound
  ExprId p = kNoExpr;      ///< Expr body / Until hold / EventuallyWithin goal
  ExprId q = kNoExpr;      ///< Until release
  SeqId inner = kNoSeq;    ///< Delay continuation
};

struct PropertyDef {
  std::string name;
  ExprId antecedent = kNoExpr;  ///< kNoExpr: unconditional (never vacuous)
  SeqId consequent = kNoSeq;
};

struct SignalDecl {
  std::string name;
  unsigned width;
};

/// Hidden state allocated by past()/rose()/fell()/stable().
struct SpecState {
  std::string name;
  unsigned width;
  std::uint64_t init;
  ExprId next;  ///< value latched on each enabled edge
};

/// Var index base for SpecState references inside the Spec arena; the
/// compiler renumbers them after the (by then final) signal count.
inline constexpr std::uint32_t kSpecStateBase = 1u << 20;

class Spec {
public:
  explicit Spec(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const ExprArena& arena() const { return arena_; }
  const std::vector<SignalDecl>& signals() const { return signals_; }
  const std::vector<SpecState>& states() const { return states_; }
  const std::vector<PropertyDef>& properties() const { return props_; }
  const SeqNode& seq_node(SeqId s) const {
    HLCS_ASSERT(s < seqs_.size(), "Spec: bad SeqId");
    return seqs_[s];
  }

  /// Declare a sampled input signal.  The monitor binds a probe of the
  /// same name and width.
  E signal(std::string sig_name, unsigned width = 1) {
    HLCS_ASSERT(signals_.size() < kSpecStateBase, "too many signals");
    const auto idx = static_cast<std::uint32_t>(signals_.size());
    signals_.push_back(SignalDecl{std::move(sig_name), width});
    return wrap(arena_.var(idx, width));
  }

  E lit(std::uint64_t value, unsigned width = 1) {
    return wrap(arena_.cst(value, width));
  }

  // ---- temporal sugar -------------------------------------------------
  /// Value of `e` as sampled `n` edges ago (0 before n edges elapsed).
  E past(E e, unsigned n = 1) {
    own(e);
    if (n == 0) return e;
    E prev = past(e, n - 1);
    auto it = past_of_.find(prev.id);
    if (it != past_of_.end()) return wrap(it->second);
    const unsigned w = arena_.at(prev.id).width;
    const auto sidx = static_cast<std::uint32_t>(states_.size());
    states_.push_back(
        SpecState{"past" + std::to_string(sidx), w, 0, prev.id});
    const ExprId ref = arena_.var(kSpecStateBase + sidx, w);
    past_of_.emplace(prev.id, ref);
    return wrap(ref);
  }
  E rose(E e) { return band(e, bnot(past(e))); }
  E fell(E e) { return band(bnot(e), past(e)); }
  E stable(E e) { return wrap(arena_.bin(ExprOp::Eq, e.id, past(e).id)); }

  // ---- raw builders (for widths / slices the operators don't cover) ---
  E zext(E e, unsigned width) { own(e); return wrap(arena_.zext(e.id, width)); }
  E slice(E e, unsigned lsb, unsigned width) {
    own(e);
    return wrap(arena_.slice(e.id, lsb, width));
  }
  E mux(E sel, E then_e, E else_e) {
    own(sel);
    return wrap(arena_.mux(sel.id, then_e.id, else_e.id));
  }
  E concat(E hi, E lo) {
    own(hi);
    return wrap(arena_.bin(ExprOp::Concat, hi.id, lo.id));
  }
  /// XOR-reduction to one bit (there is no RedXor op: shift-fold).
  E red_xor(E e) {
    own(e);
    ExprId z = arena_.zext(e.id, 64);
    for (unsigned sh = 32; sh >= 1; sh >>= 1) {
      z = arena_.bin(ExprOp::Xor, z, arena_.bin(ExprOp::Shr, z, arena_.cst(sh, 64)));
    }
    return wrap(arena_.slice(z, 0, 1));
  }

  // ---- sequences ------------------------------------------------------
  SeqId seq(E b) { return push_seq({SeqKind::Expr, 0, bool1(b), kNoExpr, kNoSeq}); }
  SeqId delay(unsigned n, SeqId inner) {
    HLCS_ASSERT(inner < seqs_.size(), "delay: bad inner sequence");
    return push_seq({SeqKind::Delay, n, kNoExpr, kNoExpr, inner});
  }
  SeqId delay(unsigned n, E b) { return delay(n, seq(b)); }
  SeqId until(E p, E q) {
    return push_seq({SeqKind::Until, 0, bool1(p), bool1(q), kNoSeq});
  }
  SeqId eventually_within(unsigned n, E p) {
    return push_seq({SeqKind::EventuallyWithin, n, bool1(p), kNoExpr, kNoSeq});
  }

  // ---- properties -----------------------------------------------------
  /// antecedent |-> consequent.
  void prop(std::string prop_name, E antecedent, SeqId consequent) {
    check_name(prop_name);
    props_.push_back(
        PropertyDef{std::move(prop_name), bool1(antecedent), consequent});
  }
  void prop(std::string prop_name, E antecedent, E consequent) {
    prop(std::move(prop_name), antecedent, seq(consequent));
  }
  /// Unconditional: attempted on every enabled edge, never vacuous.
  void always(std::string prop_name, SeqId consequent) {
    check_name(prop_name);
    props_.push_back(PropertyDef{std::move(prop_name), kNoExpr, consequent});
  }
  void always(std::string prop_name, E invariant) {
    always(std::move(prop_name), seq(invariant));
  }

  // internal: used by the E operators
  E wrap(ExprId id) { return E{this, id}; }
  E band(E a, E b) { return wrap(arena_.bin(ExprOp::And, bool1(a), bool1(b))); }
  E bor(E a, E b) { return wrap(arena_.bin(ExprOp::Or, bool1(a), bool1(b))); }
  E bnot(E a) { return wrap(arena_.un(ExprOp::Not, bool1(a))); }
  E cmpl(E a) { own(a); return wrap(arena_.un(ExprOp::Not, a.id)); }
  E cmp(ExprOp op, E a, E b) { return wrap(arena_.bin(op, a.id, b.id)); }
  E arith(ExprOp op, E a, E b) { return wrap(arena_.bin(op, a.id, b.id)); }
  void own(E e) const {
    HLCS_ASSERT(e.spec == this && e.id != kNoExpr,
                "expression belongs to a different Spec");
  }

private:
  /// Booleans must be 1 bit; widen via != 0 would hide bugs, so assert.
  ExprId bool1(E e) {
    own(e);
    HLCS_ASSERT(arena_.at(e.id).width == 1,
                name_ + ": boolean position needs a 1-bit expression");
    return e.id;
  }
  void check_name(const std::string& n) const {
    HLCS_ASSERT(!n.empty(), "property needs a name");
    for (const PropertyDef& p : props_) {
      HLCS_ASSERT(p.name != n, name_ + ": duplicate property '" + n + "'");
    }
  }
  SeqId push_seq(SeqNode n) {
    seqs_.push_back(n);
    return static_cast<SeqId>(seqs_.size() - 1);
  }

  std::string name_;
  ExprArena arena_;
  std::vector<SignalDecl> signals_;
  std::vector<SpecState> states_;
  std::vector<SeqNode> seqs_;
  std::vector<PropertyDef> props_;
  std::map<ExprId, ExprId> past_of_;  ///< memo: expr -> its past-register ref
};

// Operator sugar.  Logical ops require 1-bit operands (checked);
// comparisons/arithmetic follow ExprArena width rules.
inline E operator!(E a) { return a.spec->bnot(a); }
inline E operator&&(E a, E b) { return a.spec->band(a, b); }
inline E operator||(E a, E b) { return a.spec->bor(a, b); }
inline E operator~(E a) { return a.spec->cmpl(a); }
inline E operator==(E a, E b) { return a.spec->cmp(ExprOp::Eq, a, b); }
inline E operator!=(E a, E b) { return a.spec->cmp(ExprOp::Ne, a, b); }
inline E operator<(E a, E b) { return a.spec->cmp(ExprOp::Lt, a, b); }
inline E operator<=(E a, E b) { return a.spec->cmp(ExprOp::Le, a, b); }
inline E operator>(E a, E b) { return a.spec->cmp(ExprOp::Gt, a, b); }
inline E operator>=(E a, E b) { return a.spec->cmp(ExprOp::Ge, a, b); }
inline E operator+(E a, E b) { return a.spec->arith(ExprOp::Add, a, b); }
inline E operator-(E a, E b) { return a.spec->arith(ExprOp::Sub, a, b); }
inline E operator&(E a, E b) { return a.spec->arith(ExprOp::And, a, b); }
inline E operator|(E a, E b) { return a.spec->arith(ExprOp::Or, a, b); }
inline E operator^(E a, E b) { return a.spec->arith(ExprOp::Xor, a, b); }

}  // namespace hlcs::check
