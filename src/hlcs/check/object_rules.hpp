// Shared-object rule pack (clocked SharedObjects): the scheduler must
// only dispatch a call whose guard holds over the object state at the
// grant moment, and an eligible (guard-true) pending call must be
// granted within a bound -- the paper's "suspended until the condition
// becomes true" contract plus a fairness bound on the arbitration
// policy.
#pragma once

#include <cstdint>
#include <string>

#include "hlcs/check/monitor.hpp"
#include "hlcs/check/property.hpp"
#include "hlcs/osss/shared_object.hpp"

namespace hlcs::check {

/// `starvation_bound` > 0 adds no_starvation: while any queued call is
/// eligible, some grant must happen within that many edges.  Size it to
/// the worst-case contention (one grant per edge, so pending-high-water
/// + slack); 0 ships only the dispatch-guard rule.
inline Spec shared_object_rules(unsigned starvation_bound = 0) {
  Spec s("shared_object_rules");
  E grants = s.signal("grants", 32);
  E guard_held = s.signal("guard_held");
  E eligible = s.signal("eligible");
  E granted = grants != s.past(grants);
  s.prop("guard_at_dispatch", granted, guard_held);
  if (starvation_bound > 0) {
    s.prop("no_starvation", eligible,
           s.eventually_within(starvation_bound, grants != s.past(grants)));
  }
  return s;
}

/// Policy-fairness pack (hlcs::contend): the live eligible-wait streak
/// -- the longest run of edges any one queued call has stayed
/// guard-true without being granted -- must never exceed `wait_bound`.
/// This is strictly stronger than no_starvation above: no_starvation
/// accepts ANY grant while a call is eligible, whereas this bound is
/// per-call, so a policy that starves one client while granting others
/// fails here.  Pair with policy_fairness_probes.
inline Spec policy_fairness_rules(unsigned wait_bound) {
  HLCS_ASSERT(wait_bound > 0, "policy_fairness_rules needs a bound > 0");
  Spec s("policy_fairness_rules");
  E wait = s.signal("elig_wait", 16);
  s.always("bounded_eligible_wait", wait <= s.lit(wait_bound, 16));
  return s;
}

template <class T>
ProbeSet policy_fairness_probes(const osss::SharedObject<T>& so) {
  ProbeSet ps;
  ps.add(sim::probe_fn("elig_wait", 16, [&so] {
    const std::uint64_t w = so.max_eligible_wait();
    return w > 0xFFFFull ? 0xFFFFull : w;  // saturate at the probe width
  }));
  return ps;
}

template <class T>
ProbeSet shared_object_probes(const osss::SharedObject<T>& so) {
  ProbeSet ps;
  ps.add(sim::probe_fn(
            "grants", 32,
            [&so] { return so.grant_count() & 0xFFFFFFFFull; }))
      .add(sim::probe_fn("guard_held", 1,
                         [&so] {
                           return so.last_grant_guard_held() ? std::uint64_t{1}
                                                            : std::uint64_t{0};
                         }))
      .add(sim::probe_fn("eligible", 1, [&so] {
        return so.has_eligible() ? std::uint64_t{1} : std::uint64_t{0};
      }));
  return ps;
}

}  // namespace hlcs::check
