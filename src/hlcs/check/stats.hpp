// Attempt/pass/fail/vacuous accounting for property monitors, in the
// same plain-counter style as KernelStats / NetlistStats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hlcs::check {

struct PropertyStats {
  std::string name;
  std::uint64_t attempts = 0;  ///< edges where the antecedent held
  std::uint64_t passes = 0;    ///< resolved attempts that satisfied the seq
  std::uint64_t fails = 0;     ///< resolved attempts that violated it
  std::uint64_t vacuous = 0;   ///< enabled edges where the antecedent did not hold

  /// Attempts still in flight (delayed / until / eventually windows).
  std::uint64_t pending() const { return attempts - passes - fails; }
};

/// One recorded failing edge (bounded; see MonitorOptions).
struct CheckFailure {
  std::uint64_t cycle = 0;
  std::uint32_t property = 0;  ///< index into CheckStats::props
  std::uint64_t count = 0;     ///< attempts that failed on this edge
};

struct CheckStats {
  std::uint64_t edges = 0;           ///< sampled rising edges
  std::uint64_t disabled_edges = 0;  ///< edges spent in disable/reset
  std::vector<PropertyStats> props;
  std::vector<CheckFailure> failures;  ///< bounded record of failing edges
  std::uint64_t dropped_failures = 0;  ///< failures beyond the cap

  std::uint64_t attempts() const { return sum(&PropertyStats::attempts); }
  std::uint64_t passes() const { return sum(&PropertyStats::passes); }
  std::uint64_t fails() const { return sum(&PropertyStats::fails); }
  std::uint64_t vacuous() const { return sum(&PropertyStats::vacuous); }

private:
  std::uint64_t sum(std::uint64_t PropertyStats::* f) const {
    std::uint64_t t = 0;
    for (const PropertyStats& p : props) t += p.*f;
    return t;
  }
};

}  // namespace hlcs::check
