#include "hlcs/check/automaton.hpp"

#include <functional>

namespace hlcs::check {

namespace {

/// Sequence compiler: shared by every property of one Spec.  Allocates
/// automaton states (token shift registers, pending counters) and emits
/// pass/fail count expressions, all directly in the automaton arena.
struct Compiler {
  const Spec& spec;
  Automaton& a;

  ExprId clone(ExprId src) const {
    const auto s = static_cast<std::uint32_t>(a.signals.size());
    return synth::clone_expr(
        spec.arena(), src, a.arena,
        [&](std::uint32_t idx, unsigned w) -> ExprId {
          if (idx < kSpecStateBase) return a.arena.var(idx, w);
          return a.arena.var(s + (idx - kSpecStateBase), w);
        },
        [](std::uint32_t, unsigned) -> ExprId {
          throw SynthesisError("check: Arg leaf in a property expression");
        });
  }

  std::uint32_t new_state(std::string name, unsigned width,
                          std::uint64_t init, ExprId next) {
    a.states.push_back(AutomatonState{std::move(name), width, init, next});
    return a.state_var(a.states.size() - 1);
  }
  ExprId state_ref(std::uint32_t var) {
    return a.arena.var(var, a.states[var - a.signals.size()].width);
  }

  ExprId cnt(ExprId bit1) { return a.arena.zext(bit1, kCountWidth); }
  ExprId zero() { return a.arena.cst(0, kCountWidth); }

  struct PF {
    ExprId pass;
    ExprId fail;
  };

  /// Emit pass/fail counts for sequence `sid` whose attempts start on
  /// edges where the 1-bit `att` holds.  `tag` keeps state names unique.
  PF emit(ExprId att, SeqId sid, const std::string& tag) {
    ExprArena& ar = a.arena;
    const SeqNode& n = spec.seq_node(sid);
    switch (n.kind) {
      case SeqKind::Expr: {
        const ExprId b = clone(n.p);
        return PF{cnt(ar.bin(ExprOp::And, att, b)),
                  cnt(ar.bin(ExprOp::And, att, ar.un(ExprOp::Not, b)))};
      }
      case SeqKind::Delay: {
        // n 1-bit token registers pipeline the attempt; at most one
        // attempt starts per edge, so tokens never collide.
        ExprId cur = att;
        for (unsigned i = 1; i <= n.n; ++i) {
          cur = state_ref(new_state(tag + "_d" + std::to_string(i), 1, 0, cur));
        }
        return emit(cur, n.inner, tag + "x");
      }
      case SeqKind::Until: {
        // One pending-attempt counter.  q releases everything as passes;
        // !p && !q fails everything; otherwise attempts accumulate
        // (weak until: unresolved attempts stay pending forever).
        const std::uint32_t r =
            new_state(tag + "_u", kCountWidth, 0, kNoExpr);
        const ExprId p = clone(n.p);
        const ExprId q = clone(n.q);
        const ExprId total = ar.bin(ExprOp::Add, state_ref(r), cnt(att));
        const ExprId notp = ar.un(ExprOp::Not, p);
        a.states[r - a.signals.size()].next = ar.mux(
            ar.bin(ExprOp::Or, q, notp), zero(), total);
        return PF{ar.mux(q, total, zero()),
                  ar.mux(ar.bin(ExprOp::And, ar.un(ExprOp::Not, q), notp),
                         total, zero())};
      }
      case SeqKind::EventuallyWithin: {
        if (n.n == 0) {
          const ExprId p0 = clone(n.p);
          return PF{cnt(ar.bin(ExprOp::And, att, p0)),
                    cnt(ar.bin(ExprOp::And, att, ar.un(ExprOp::Not, p0)))};
        }
        // b[i] = "an attempt has i edges left before expiry".  p resolves
        // every slot (and the incoming attempt) as a pass and clears the
        // window; otherwise b[1] expires as a fail and the rest shift.
        const ExprId p = clone(n.p);
        const ExprId notp = ar.un(ExprOp::Not, p);
        std::vector<std::uint32_t> slots;
        slots.reserve(n.n);
        for (unsigned i = 1; i <= n.n; ++i) {
          slots.push_back(
              new_state(tag + "_e" + std::to_string(i), 1, 0, kNoExpr));
        }
        for (unsigned i = 0; i < n.n; ++i) {
          const ExprId feed = (i + 1 < n.n)
                                  ? state_ref(slots[i + 1])
                                  : ar.bin(ExprOp::And, att, notp);
          a.states[slots[i] - a.signals.size()].next =
              ar.bin(ExprOp::And, notp, feed);
        }
        ExprId sum = cnt(att);
        for (std::uint32_t sv : slots) {
          sum = ar.bin(ExprOp::Add, sum, cnt(state_ref(sv)));
        }
        return PF{ar.mux(p, sum, zero()),
                  ar.mux(p, zero(), cnt(state_ref(slots[0])))};
      }
    }
    throw SynthesisError("check: unknown sequence kind");
  }
};

}  // namespace

Automaton compile(const Spec& spec) {
  Automaton a;
  a.name = spec.name();
  a.signals = spec.signals();
  for (const SignalDecl& s : a.signals) {
    HLCS_ASSERT(s.name != "rst",
                spec.name() + ": signal name 'rst' is reserved");
  }
  Compiler c{spec, a};
  // Spec-level past registers come first so kSpecStateBase+i lands on
  // state slot i; their next expressions may reference each other.
  for (const SpecState& s : spec.states()) {
    a.states.push_back(AutomatonState{s.name, s.width, s.init, kNoExpr});
  }
  for (std::size_t i = 0; i < spec.states().size(); ++i) {
    a.states[i].next = c.clone(spec.states()[i].next);
  }
  for (const PropertyDef& p : spec.properties()) {
    PropertyAutomaton pa;
    pa.name = p.name;
    if (p.antecedent != kNoExpr) {
      pa.attempt = c.clone(p.antecedent);
      pa.vacuous = a.arena.un(ExprOp::Not, pa.attempt);
    } else {
      pa.attempt = a.arena.cst(1, 1);
      pa.vacuous = a.arena.cst(0, 1);
    }
    const Compiler::PF pf = c.emit(pa.attempt, p.consequent, p.name);
    pa.pass = pf.pass;
    pa.fail = pf.fail;
    a.props.push_back(std::move(pa));
  }
  return a;
}

synth::Netlist lower(const Automaton& a) {
  synth::Netlist nl(a.name);
  const synth::NetId rst = nl.add_net("rst", 1);
  nl.mark_input(rst);
  std::vector<synth::NetId> sig_nets;
  sig_nets.reserve(a.signals.size());
  for (const SignalDecl& s : a.signals) {
    const synth::NetId n = nl.add_net(s.name, s.width);
    nl.mark_input(n);
    sig_nets.push_back(n);
  }
  std::vector<synth::NetId> q_nets;
  q_nets.reserve(a.states.size());
  for (const AutomatonState& s : a.states) {
    q_nets.push_back(nl.add_net("st_" + s.name, s.width));
  }
  auto map_var = [&](std::uint32_t idx, unsigned) -> ExprId {
    if (idx < a.signals.size()) return nl.net_ref(sig_nets[idx]);
    return nl.net_ref(q_nets[idx - a.signals.size()]);
  };
  auto no_arg = [](std::uint32_t, unsigned) -> ExprId {
    throw SynthesisError("check: Arg leaf in a property expression");
  };
  auto clone = [&](ExprId id) {
    return synth::clone_expr(a.arena, id, nl.arena(), map_var, no_arg);
  };
  // rst is synchronous: it forces D back to the initial value and zeroes
  // the verdicts combinationally, matching AutomatonEval's disabled step.
  for (std::size_t i = 0; i < a.states.size(); ++i) {
    const AutomatonState& s = a.states[i];
    const synth::NetId d = nl.add_net("st_" + s.name + "_d", s.width);
    nl.add_comb(d, nl.arena().mux(nl.net_ref(rst),
                                  nl.arena().cst(s.init, s.width),
                                  clone(s.next)));
    nl.add_reg(q_nets[i], d, s.init);
  }
  auto out = [&](const std::string& name, ExprId value, unsigned width) {
    const synth::NetId n = nl.add_net(name, width);
    nl.add_comb(n, nl.arena().mux(nl.net_ref(rst),
                                  nl.arena().cst(0, width), clone(value)));
    nl.mark_output(n);
  };
  for (const PropertyAutomaton& p : a.props) {
    out(p.name + "_attempt", p.attempt, 1);
    out(p.name + "_vacuous", p.vacuous, 1);
    out(p.name + "_pass", p.pass, kCountWidth);
    out(p.name + "_fail", p.fail, kCountWidth);
  }
  return nl;
}

void AutomatonEval::reset() {
  for (std::size_t i = 0; i < a_.states.size(); ++i) {
    vars_[a_.signals.size() + i] = a_.states[i].init;
  }
}

void AutomatonEval::step(const std::vector<std::uint64_t>& samples,
                         bool disabled, std::vector<Verdict>& verdicts) {
  HLCS_ASSERT(samples.size() == a_.signals.size(),
              a_.name + ": sample count != signal count");
  verdicts.assign(a_.props.size(), Verdict{});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    vars_[i] = samples[i] & ExprArena::mask(a_.signals[i].width);
  }
  if (disabled) {
    reset();
    return;
  }
  for (std::size_t i = 0; i < a_.props.size(); ++i) {
    const PropertyAutomaton& p = a_.props[i];
    verdicts[i].attempt = synth::eval(a_.arena, p.attempt, vars_, {});
    verdicts[i].vacuous = synth::eval(a_.arena, p.vacuous, vars_, {});
    verdicts[i].pass = synth::eval(a_.arena, p.pass, vars_, {});
    verdicts[i].fail = synth::eval(a_.arena, p.fail, vars_, {});
  }
  // Two-phase state commit: every next value is computed over the old
  // state, exactly like the netlist's simultaneous register latch.
  for (std::size_t i = 0; i < a_.states.size(); ++i) {
    scratch_[i] = synth::eval(a_.arena, a_.states[i].next, vars_, {}) &
                  ExprArena::mask(a_.states[i].width);
  }
  for (std::size_t i = 0; i < a_.states.size(); ++i) {
    vars_[a_.signals.size() + i] = scratch_[i];
  }
}

}  // namespace hlcs::check
