// Umbrella header for the temporal assertion subsystem.
#pragma once

#include "hlcs/check/automaton.hpp"
#include "hlcs/check/monitor.hpp"
#include "hlcs/check/object_rules.hpp"
#include "hlcs/check/pci_rules.hpp"
#include "hlcs/check/property.hpp"
#include "hlcs/check/stats.hpp"
