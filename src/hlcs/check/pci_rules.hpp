// The shipped PCI rule pack: PciMonitor's hard-coded M1-M6 re-expressed
// as temporal properties, plus the arbitration rules the monitor never
// had (GNT# must precede FRAME# assertion; a master that lost GNT# must
// release the bus within a latency-timer bound).  One Spec, evaluated
// behaviourally (check::Monitor) and as a synthesised netlist
// (check::NetlistMonitor) against the same probes.
#pragma once

#include <string>
#include <vector>

#include "hlcs/check/monitor.hpp"
#include "hlcs/check/property.hpp"
#include "hlcs/pci/pci_arbiter.hpp"
#include "hlcs/pci/pci_bus.hpp"

namespace hlcs::check {

struct PciRuleOptions {
  /// Add arb_gnt_before_frame (requires a "gnt" probe: OR of all GNT#).
  bool arbitration = false;
  /// >0: add lt_release -- FRAME# held without GNT# must deassert within
  /// this many edges.  Size it as latency_timer + burst slack (decode,
  /// wait states, final data phase); 0 disables the rule.
  unsigned latency_bound = 0;
};

inline Spec pci_rules(PciRuleOptions opt = {}) {
  Spec s("pci_rules");
  E frame = s.signal("frame");
  E irdy = s.signal("irdy");
  E trdy = s.signal("trdy");
  E devsel = s.signal("devsel");
  E stop = s.signal("stop");
  E ad_x = s.signal("ad_x");
  E cbe_x = s.signal("cbe_x");
  E ad_def = s.signal("ad_def");
  E cbe_def = s.signal("cbe_def");
  E ad = s.signal("ad", 32);
  E cbe = s.signal("cbe", 4);
  E par_val = s.signal("par_val");
  E par_driven = s.signal("par_driven");

  s.prop("m1_no_x_active", frame || irdy, !(ad_x || cbe_x));
  s.prop("m2_trdy_devsel", trdy, devsel);
  s.prop("m3_frame_release", s.fell(frame), irdy);
  s.prop("m4_addr_driven", s.rose(frame), ad_def && cbe_def);
  // M5: PAR, whenever actively driven, covers the previous edge's AD and
  // C/BE# (even parity == XOR-reduction of all 36 bits).  The past()
  // registers start at 0, so the first edge is vacuous exactly like the
  // monitor's "no previous sample yet" guard.
  s.prop("m5_parity",
         par_driven && s.past(ad_def) && s.past(cbe_def),
         par_val == s.red_xor(s.concat(s.past(cbe), s.past(ad))));
  s.prop("m6_stop_devsel", stop, devsel);

  if (opt.arbitration || opt.latency_bound > 0) {
    E gnt = s.signal("gnt");
    if (opt.arbitration) {
      // A master reacting to GNT# at edge E drives FRAME# visibly at
      // E+1, so a legal address phase always shows GNT# one edge back.
      s.prop("arb_gnt_before_frame", s.rose(frame), s.past(gnt));
    }
    if (opt.latency_bound > 0) {
      s.prop("lt_release", frame && !gnt,
             s.eventually_within(opt.latency_bound, !frame));
    }
  }
  return s;
}

/// Probes over the shared bus wires, matching pci_rules() signal names.
inline ProbeSet pci_probes(const pci::PciBus& bus) {
  ProbeSet ps;
  ps.add(sim::probe_low("frame", bus.frame_n))
      .add(sim::probe_low("irdy", bus.irdy_n))
      .add(sim::probe_low("trdy", bus.trdy_n))
      .add(sim::probe_low("devsel", bus.devsel_n))
      .add(sim::probe_low("stop", bus.stop_n))
      .add(sim::probe_has_x("ad_x", bus.ad))
      .add(sim::probe_has_x("cbe_x", bus.cbe))
      .add(sim::probe_defined("ad_def", bus.ad))
      .add(sim::probe_defined("cbe_def", bus.cbe))
      .add(sim::probe_value("ad", bus.ad))
      .add(sim::probe_value("cbe", bus.cbe))
      .add(sim::probe_high("par_val", bus.par))
      .add(sim::probe_driven("par_driven", bus.par));
  return ps;
}

/// Same, plus a "gnt" probe ORing every master's grant line (for the
/// arbitration / latency rules).
inline ProbeSet pci_probes(const pci::PciBus& bus,
                           std::vector<const sim::Signal<bool>*> gnts) {
  ProbeSet ps = pci_probes(bus);
  ps.add(sim::probe_fn("gnt", 1, [gnts = std::move(gnts)] {
    for (const sim::Signal<bool>* g : gnts) {
      if (g->read()) return std::uint64_t{1};
    }
    return std::uint64_t{0};
  }));
  return ps;
}

}  // namespace hlcs::check
