// Property automata: the compile target shared by both checker engines.
//
// compile() turns a Spec into a synchronous automaton -- state registers
// (next-value expressions over signals and other registers) plus four
// verdict expressions per property:
//
//   attempt  (1 bit)   the antecedent held on this edge
//   vacuous  (1 bit)   enabled edge, antecedent did not hold
//   pass     (count)   attempts resolving as satisfied on this edge
//   fail     (count)   attempts resolving as violated on this edge
//
// pass/fail are kCountWidth-bit *counts* because delayed sequences keep
// several attempts in flight and may resolve many at once (e.g. `until`
// released by q passes every pending attempt together).
//
// Two independent evaluators consume the automaton:
//   * AutomatonEval -- tree-walks the verdict and next-state expressions
//     with synth::eval (behavioural engine);
//   * lower() -- clones the same expressions into a synth::Netlist whose
//     registers mirror the automaton states, evaluated by NetlistSim
//     (tape or tree-walk).
// Both follow identical sample -> verdict -> state-commit ordering, so
// verdicts are bit-identical by construction; the randomized lock-step
// suite in tests/check/test_lowering.cpp enforces it.
//
// Disable/reset: both engines take a per-edge `disabled` flag.  A
// disabled edge yields all-zero verdicts and returns every state to its
// initial value (the netlist does it through an explicit `rst` input
// feeding the register-D and verdict muxes), cancelling in-flight
// attempts -- SVA `disable iff` semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hlcs/check/property.hpp"
#include "hlcs/synth/netlist.hpp"

namespace hlcs::check {

/// Width of the pass/fail count outputs (bounds simultaneous
/// resolutions; counts wrap modulo 2^kCountWidth in both engines).
inline constexpr unsigned kCountWidth = 16;

struct AutomatonState {
  std::string name;
  unsigned width;
  std::uint64_t init;
  ExprId next;
};

struct PropertyAutomaton {
  std::string name;
  ExprId attempt;
  ExprId vacuous;
  ExprId pass;
  ExprId fail;
};

/// Var index layout in `arena`: [0, signals.size()) are sampled signal
/// values, [signals.size(), +states.size()) are state registers.
struct Automaton {
  std::string name;
  ExprArena arena;
  std::vector<SignalDecl> signals;
  std::vector<AutomatonState> states;
  std::vector<PropertyAutomaton> props;

  std::uint32_t state_var(std::size_t i) const {
    return static_cast<std::uint32_t>(signals.size() + i);
  }
};

Automaton compile(const Spec& spec);

/// Lower the automaton to a synthesisable netlist.  Inputs: one net per
/// signal plus 1-bit `rst`; outputs: `<prop>_attempt`, `<prop>_vacuous`
/// (1 bit) and `<prop>_pass`, `<prop>_fail` (kCountWidth bits) per
/// property, combinational over the pre-edge register state.  Read them
/// after settle(), before clock_edge().
synth::Netlist lower(const Automaton& a);

/// Behavioural engine: per-edge tree-walk evaluation.
class AutomatonEval {
public:
  explicit AutomatonEval(const Automaton& a)
      : a_(a),
        vars_(a.signals.size() + a.states.size(), 0),
        scratch_(a.states.size(), 0) {
    reset();
  }

  struct Verdict {
    std::uint64_t attempt = 0;
    std::uint64_t pass = 0;
    std::uint64_t fail = 0;
    std::uint64_t vacuous = 0;
  };

  /// Return every state register to its initial value.
  void reset();

  /// One rising edge: publish verdicts for this edge, then advance the
  /// state.  `samples` must hold one value per automaton signal;
  /// `verdicts` is resized to one entry per property.
  void step(const std::vector<std::uint64_t>& samples, bool disabled,
            std::vector<Verdict>& verdicts);

  const Automaton& automaton() const { return a_; }
  /// Current value of state register `i` (tests/diagnostics).
  std::uint64_t state(std::size_t i) const {
    return vars_.at(a_.signals.size() + i);
  }

private:
  const Automaton& a_;
  std::vector<std::uint64_t> vars_;     ///< signals then states
  std::vector<std::uint64_t> scratch_;  ///< next-state staging
};

}  // namespace hlcs::check
