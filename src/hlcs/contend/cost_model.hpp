// The contention cost model: per-cell results of the (policy x clients
// x traffic) design-space sweep, their canonical JSON serialization,
// and the derivation of the adaptive policy's tuning from the data.
//
// Everything in a CellResult is an integer (means are scaled by 1000
// and truncated), and every cell's seed derives from the cell KEY
// rather than its position in any particular grid -- so the committed
// dataset (bench/COSTMODEL_contend.json) regenerates byte-for-byte at
// any thread count, and a reduced grid regenerates the exact same bytes
// for the cells it covers (the tier-1 determinism gate diffs on that).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hlcs/contend/traffic.hpp"
#include "hlcs/osss/arbitration.hpp"
#include "hlcs/sim/random.hpp"

namespace hlcs::contend {

/// Root of the per-cell seed derivation (splitmix64 lane scheme).
inline constexpr std::uint64_t kRootSeed = 0xC0DE5EEDull;
/// Simulated cycles per cell.
inline constexpr std::uint64_t kDefaultCycles = 4096;

inline constexpr osss::PolicyKind kAllPolicies[] = {
    osss::PolicyKind::Fifo, osss::PolicyKind::RoundRobin,
    osss::PolicyKind::StaticPriority, osss::PolicyKind::Random,
    osss::PolicyKind::Adaptive};
inline constexpr std::size_t kPolicyCount = 5;

/// Position-independent cell key: identical for a cell no matter which
/// grid (full, reduced, single --cell run) produced it.
inline std::uint64_t cell_key(osss::PolicyKind policy, std::size_t clients,
                              TrafficShape traffic) {
  return static_cast<std::uint64_t>(policy) * 65 * kShapeCount +
         static_cast<std::uint64_t>(clients) * kShapeCount +
         static_cast<std::uint64_t>(traffic);
}

inline std::uint64_t cell_seed(std::uint64_t root, osss::PolicyKind policy,
                               std::size_t clients, TrafficShape traffic) {
  return sim::lane_seed(root, cell_key(policy, clients, traffic));
}

struct CellResult {
  osss::PolicyKind policy = osss::PolicyKind::Fifo;
  std::size_t clients = 0;
  TrafficShape traffic = TrafficShape::Uniform;
  std::uint64_t seed = 0;
  std::uint64_t grants = 0;
  std::uint64_t throughput_milli = 0;  ///< grants * 1000 / cycles
  // Grant latency (enqueue -> grant, cycles), pooled over every
  // completed call of every client.  Percentiles are exact
  // (nearest-rank over the per-call recordings, not histogram bounds).
  std::uint64_t lat_count = 0;
  std::uint64_t lat_mean_milli = 0;
  std::uint64_t lat_p50 = 0;
  std::uint64_t lat_p90 = 0;
  std::uint64_t lat_p99 = 0;
  std::uint64_t lat_max = 0;
  /// Worst contiguous eligible-but-waiting streak of any call.
  std::uint64_t starve_max = 0;
  // Wait attribution sums over all clients (ticks).
  std::uint64_t guard_blocked = 0;
  std::uint64_t arb_blocked = 0;
  // Queue depth over time (sampled at busy service steps).
  std::uint64_t depth_mean_milli = 0;
  std::uint64_t depth_max = 0;
};

/// Canonical one-line JSON object for one cell -- the unit of the
/// determinism diff.  Field order and spelling are part of the schema.
inline std::string cell_json(const CellResult& r) {
  std::string s = "{\"policy\":\"" + osss::policy_name(r.policy) +
                  "\",\"clients\":" + std::to_string(r.clients) +
                  ",\"traffic\":\"" + traffic_name(r.traffic) + "\"";
  auto field = [&s](const char* name, std::uint64_t v) {
    s += ",\"";
    s += name;
    s += "\":";
    s += std::to_string(v);
  };
  field("seed", r.seed);
  field("grants", r.grants);
  field("throughput_milli", r.throughput_milli);
  field("lat_count", r.lat_count);
  field("lat_mean_milli", r.lat_mean_milli);
  field("lat_p50", r.lat_p50);
  field("lat_p90", r.lat_p90);
  field("lat_p99", r.lat_p99);
  field("lat_max", r.lat_max);
  field("starve_max", r.starve_max);
  field("guard_blocked", r.guard_blocked);
  field("arb_blocked", r.arb_blocked);
  field("depth_mean_milli", r.depth_mean_milli);
  field("depth_max", r.depth_max);
  s += "}";
  return s;
}

/// The dataset file: header + one cell per line, in grid order.
inline std::string dataset_json(const std::vector<CellResult>& cells,
                                std::uint64_t cycles, std::uint64_t root) {
  std::string s = "{\n  \"schema\": \"hlcs-contend-cost-model-v1\",\n";
  s += "  \"cycles\": " + std::to_string(cycles) + ",\n";
  s += "  \"root_seed\": " + std::to_string(root) + ",\n";
  s += "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    s += "    " + cell_json(cells[i]);
    if (i + 1 < cells.size()) s += ",";
    s += "\n";
  }
  s += "  ]\n}\n";
  return s;
}

/// Derive the adaptive policy's tuning from swept data.  The aged lane
/// must stay quiet under load a well-chosen static policy handles
/// cleanly, so the starvation bound is the smallest power of two
/// strictly above the worst "best static" p99 across the sweep (for
/// each cell, the best static policy is the one with the lowest p99;
/// the bound covers the worst such cell).  The mode window is fixed at
/// 16 steps (2^4: a wrapping 4-bit register in RTL) with the hot
/// threshold at half the window.  A tier-1 test pins the result of this
/// derivation over the committed full grid to osss::AdaptiveTuning's
/// defaults, so dataset and defaults cannot drift apart.
inline osss::AdaptiveTuning derive_tuning(
    const std::vector<CellResult>& cells) {
  std::uint64_t worst_best_static = 0;
  // Group by (clients, traffic): minimum static p99, maximised over
  // groups.  Quadratic over a <=200-cell dataset; clarity wins.
  for (const CellResult& a : cells) {
    if (a.policy == osss::PolicyKind::Adaptive) continue;
    std::uint64_t best = a.lat_p99;
    for (const CellResult& b : cells) {
      if (b.policy == osss::PolicyKind::Adaptive) continue;
      if (b.clients == a.clients && b.traffic == a.traffic &&
          b.lat_p99 < best) {
        best = b.lat_p99;
      }
    }
    if (best > worst_best_static) worst_best_static = best;
  }
  std::uint64_t bound = 1;
  while (bound <= worst_best_static) bound <<= 1;
  osss::AdaptiveTuning t;
  t.starve_bound = bound;
  t.window = 16;
  t.hot_threshold = 8;
  return t;
}

}  // namespace hlcs::contend
