// Traffic shapes for the contention cost model (hlcs::contend).
//
// Each shape is a deterministic population of client coroutines driving
// one clocked SharedObject.  The adversarial shapes are built around a
// guard-gated "convoy": a pacer client toggles a phase gate in the
// shared state, sleeper clients guard on the gate and therefore wake in
// synchronized waves carrying ancient arrival sequence numbers, and the
// remaining fast clients saturate the object with unguarded calls.
// Arrival-order policies (FIFO and friends) serve the whole woken
// convoy ahead of every fast client, spiking the fast clients' tail
// latency by the convoy size each wave -- the pattern the adaptive
// policy's eligible-streak mode is built to flatten (docs/CONTENTION.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "hlcs/sim/assert.hpp"

namespace hlcs::contend {

/// The shared state every traffic shape contends on: a plain counter
/// plus the phase gate the convoy shapes guard on.
struct GateState {
  std::uint64_t value = 0;
  std::uint64_t phase = 0;
};

enum class TrafficShape {
  Uniform,   ///< every client saturates with back-to-back unguarded calls
  Bursty,    ///< per-client random bursts separated by random idle gaps
  Convoy,    ///< small guard-gated convoy, wakes once per pacer period
  Stampede,  ///< large guard-gated herd, longer gate-open window
};

inline constexpr TrafficShape kAllShapes[] = {
    TrafficShape::Uniform, TrafficShape::Bursty, TrafficShape::Convoy,
    TrafficShape::Stampede};
inline constexpr std::size_t kShapeCount = 4;

inline std::string traffic_name(TrafficShape shape) {
  switch (shape) {
    case TrafficShape::Uniform: return "uniform";
    case TrafficShape::Bursty: return "bursty";
    case TrafficShape::Convoy: return "convoy";
    case TrafficShape::Stampede: return "stampede";
  }
  return "?";
}

/// Inverse of traffic_name; throws hlcs::Error on an unknown name.
inline TrafficShape parse_traffic(std::string_view name) {
  if (name == "uniform") return TrafficShape::Uniform;
  if (name == "bursty") return TrafficShape::Bursty;
  if (name == "convoy") return TrafficShape::Convoy;
  if (name == "stampede") return TrafficShape::Stampede;
  fail("unknown traffic shape '" + std::string(name) +
       "' (expected uniform, bursty, convoy or stampede)");
}

/// Geometry of the guard-gated shapes.  The gate-open window is sized so
/// a woken sleeper is always served within one window even by the
/// adaptive policy (which makes it wait ~#clients ticks rather than
/// jumping the queue), so no shape can starve a sleeper outright; and
/// sleeper wakes are rare enough (<1% of grants) that the pooled p99
/// measures the fast clients' tail, not the sleepers' sleep time.
struct ShapeGeometry {
  std::uint64_t period = 0;   ///< pacer cycle length, cycles
  std::uint64_t high = 0;     ///< gate-open window, cycles
  std::size_t sleepers = 0;   ///< guard-gated clients (ids 1..sleepers)
};

inline ShapeGeometry shape_geometry(TrafficShape shape, std::size_t clients) {
  ShapeGeometry g;
  if (shape != TrafficShape::Convoy && shape != TrafficShape::Stampede) {
    return g;
  }
  g.period = 1024;
  g.high = shape == TrafficShape::Convoy ? 128 : 192;
  const std::size_t want = shape == TrafficShape::Convoy
                               ? (clients / 8 > 1 ? clients / 8 : 1)
                               : (clients / 2 > 1 ? clients / 2 : 1);
  const std::size_t cap = shape == TrafficShape::Convoy ? 3 : 6;
  g.sleepers = want > cap ? cap : want;
  // Need at least one fast client besides the pacer.
  const std::size_t room = clients >= 3 ? clients - 2 : 0;
  if (g.sleepers > room) g.sleepers = room;
  return g;
}

}  // namespace hlcs::contend
