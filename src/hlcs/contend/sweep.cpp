#include "hlcs/contend/sweep.hpp"

#include <algorithm>
#include <numeric>

#include "hlcs/check/object_rules.hpp"
#include "hlcs/osss/osss.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/sim/sweep.hpp"

namespace hlcs::contend {

namespace {

/// Spawn the client population of one cell onto `k`.  Latencies of every
/// completed sleeper/fast/bursty call are appended to `lat` (the pacer,
/// being the load generator, is not recorded; its calls still show up in
/// the object's own histograms).  Everything `lat` points to must
/// outlive the kernel run.
void spawn_traffic(sim::Kernel& k, sim::Clock& clk,
                   osss::SharedObject<GateState>& obj, const CellConfig& cfg,
                   std::uint64_t seed, std::vector<std::uint64_t>* lat) {
  const ShapeGeometry geom = shape_geometry(cfg.traffic, cfg.clients);
  const bool gated = geom.period != 0;
  for (std::size_t c = 0; c < cfg.clients; ++c) {
    auto client = obj.make_client("c" + std::to_string(c));
    const std::string pname = "p" + std::to_string(c);
    if (gated && c == 0) {
      k.spawn(pname, [&k, client, geom]() -> sim::Task {
        for (;;) {
          co_await k.wait(sim::Time::ns(10 * (geom.period - geom.high)));
          co_await client.call([](GateState& s) { s.phase = 1; });
          co_await k.wait(sim::Time::ns(10 * geom.high));
          co_await client.call([](GateState& s) { s.phase = 0; });
        }
      });
    } else if (gated && c <= geom.sleepers) {
      k.spawn(pname, [&clk, client, lat]() -> sim::Task {
        for (;;) {
          const std::uint64_t t0 = clk.cycles();
          co_await client.call([](const GateState& s) { return s.phase == 1; },
                               [](GateState& s) { ++s.value; });
          if (lat) lat->push_back(clk.cycles() - t0);
        }
      });
    } else if (cfg.traffic == TrafficShape::Bursty) {
      const std::uint64_t rng_seed = sim::lane_seed(seed, c + 1);
      k.spawn(pname, [&k, &clk, client, lat, rng_seed]() -> sim::Task {
        sim::Xorshift rng(rng_seed);
        for (;;) {
          const std::uint64_t burst = 2 + rng.below(14);
          for (std::uint64_t b = 0; b < burst; ++b) {
            const std::uint64_t t0 = clk.cycles();
            co_await client.call([](GateState& s) { ++s.value; });
            if (lat) lat->push_back(clk.cycles() - t0);
          }
          co_await k.wait(sim::Time::ns(10 * (1 + rng.below(96))));
        }
      });
    } else {
      k.spawn(pname, [&clk, client, lat]() -> sim::Task {
        for (;;) {
          const std::uint64_t t0 = clk.cycles();
          co_await client.call([](GateState& s) { ++s.value; });
          if (lat) lat->push_back(clk.cycles() - t0);
        }
      });
    }
  }
}

std::uint64_t nearest_rank(const std::vector<std::uint64_t>& sorted,
                           unsigned pct) {
  std::size_t rank = (sorted.size() * pct + 99) / 100;
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

}  // namespace

CellResult run_cell_on(sim::Kernel& k, const CellConfig& cfg) {
  HLCS_ASSERT(cfg.clients >= 2 && cfg.clients <= 64,
              "contend cell: clients must be in [2,64]");
  HLCS_ASSERT(cfg.cycles > 0, "contend cell: cycles must be > 0");
  const std::uint64_t seed =
      cell_seed(cfg.root_seed, cfg.policy, cfg.clients, cfg.traffic);
  sim::Clock clk(k, "clk", sim::Time::ns(10));
  osss::SharedObject<GateState> obj(
      k, "obj", clk, osss::make_policy(cfg.policy, sim::lane_seed(seed, 0)),
      GateState{});
  std::vector<std::uint64_t> lat;
  lat.reserve(static_cast<std::size_t>(cfg.cycles) + cfg.clients);
  spawn_traffic(k, clk, obj, cfg, seed, &lat);
  k.run_for(sim::Time::ns(cfg.cycles * 10));

  CellResult r;
  r.policy = cfg.policy;
  r.clients = cfg.clients;
  r.traffic = cfg.traffic;
  r.seed = seed;
  const osss::SharedObjectStats& st = obj.stats();
  r.grants = st.grants;
  r.throughput_milli = st.grants * 1000 / cfg.cycles;
  std::sort(lat.begin(), lat.end());
  r.lat_count = lat.size();
  if (!lat.empty()) {
    const std::uint64_t sum =
        std::accumulate(lat.begin(), lat.end(), std::uint64_t{0});
    r.lat_mean_milli = sum * 1000 / lat.size();
    r.lat_p50 = nearest_rank(lat, 50);
    r.lat_p90 = nearest_rank(lat, 90);
    r.lat_p99 = nearest_rank(lat, 99);
    r.lat_max = lat.back();
  }
  for (const osss::ClientStats& cs : st.clients) {
    if (cs.starve_max > r.starve_max) r.starve_max = cs.starve_max;
    r.guard_blocked += cs.guard_blocked;
    r.arb_blocked += cs.arb_blocked;
  }
  r.depth_mean_milli = st.depth.mean_milli();
  r.depth_max = st.depth.max();
  return r;
}

CellResult run_cell(const CellConfig& cfg) {
  sim::Kernel k;
  return run_cell_on(k, cfg);
}

std::vector<CellConfig> make_grid(GridKind kind, std::uint64_t cycles,
                                  std::uint64_t root_seed) {
  const std::size_t full[] = {2, 4, 8, 16, 32, 64};
  const std::size_t reduced[] = {2, 16};
  const std::size_t* counts = kind == GridKind::Full ? full : reduced;
  const std::size_t n_counts = kind == GridKind::Full ? 6 : 2;
  std::vector<CellConfig> grid;
  grid.reserve(kPolicyCount * n_counts * kShapeCount);
  for (osss::PolicyKind policy : kAllPolicies) {
    for (std::size_t ci = 0; ci < n_counts; ++ci) {
      for (TrafficShape shape : kAllShapes) {
        grid.push_back(CellConfig{policy, counts[ci], shape, cycles,
                                  root_seed});
      }
    }
  }
  return grid;
}

std::vector<CellResult> run_grid(const std::vector<CellConfig>& grid,
                                 unsigned threads) {
  std::vector<CellResult> out(grid.size());
  sim::ParallelSweep sweep(
      [&](std::size_t i, sim::Kernel& k, std::string& transcript) {
        out[i] = run_cell_on(k, grid[i]);
        transcript = cell_json(out[i]);
      });
  sweep.run(grid.size(), threads);
  return out;
}

std::string diff_against_dataset(const std::vector<CellResult>& cells,
                                 const std::string& dataset_text) {
  for (const CellResult& r : cells) {
    const std::string line = cell_json(r);
    if (dataset_text.find(line) != std::string::npos) continue;
    // Mismatch: find the committed line for the same cell key to report
    // expected vs actual.
    const std::string prefix = "{\"policy\":\"" + osss::policy_name(r.policy) +
                               "\",\"clients\":" + std::to_string(r.clients) +
                               ",\"traffic\":\"" + traffic_name(r.traffic) +
                               "\"";
    const std::size_t at = dataset_text.find(prefix);
    if (at == std::string::npos) {
      return "cell " + prefix + " is missing from the dataset";
    }
    const std::size_t end = dataset_text.find('\n', at);
    std::string committed = dataset_text.substr(at, end - at);
    if (!committed.empty() && committed.back() == ',') committed.pop_back();
    return "cell mismatch\n  committed: " + committed +
           "\n  recomputed: " + line;
  }
  return "";
}

FairnessReport verify_fairness(std::uint64_t cycles) {
  FairnessReport rep;
  const osss::AdaptiveTuning tuning{};
  const TrafficShape shapes[] = {TrafficShape::Convoy,
                                 TrafficShape::Stampede};
  const std::size_t counts[] = {8, 16};
  for (TrafficShape shape : shapes) {
    for (std::size_t n : counts) {
      sim::Kernel k;
      sim::Clock clk(k, "clk", sim::Time::ns(10));
      osss::SharedObject<GateState> obj(
          k, "obj", clk,
          std::make_unique<osss::AdaptiveArbitration>(tuning), GateState{});
      // One grant per edge, so a starvation window of clients + slack
      // covers the worst legal backlog; the per-call eligible-wait
      // bound additionally allows the aged-lane threshold.
      const check::Spec pack =
          check::shared_object_rules(static_cast<unsigned>(n) + 16);
      const check::Spec fair = check::policy_fairness_rules(
          static_cast<unsigned>(tuning.starve_bound + n + 16));
      const check::ProbeSet pack_probes = check::shared_object_probes(obj);
      const check::ProbeSet fair_probes = check::policy_fairness_probes(obj);
      check::Monitor pack_bm(k, "pack_bm", pack, clk, pack_probes);
      check::NetlistMonitor pack_nm(k, "pack_nm", pack, clk, pack_probes);
      check::Monitor fair_bm(k, "fair_bm", fair, clk, fair_probes);
      check::NetlistMonitor fair_nm(k, "fair_nm", fair, clk, fair_probes);
      CellConfig cfg{osss::PolicyKind::Adaptive, n, shape, cycles, kRootSeed};
      const std::uint64_t seed =
          cell_seed(cfg.root_seed, cfg.policy, cfg.clients, cfg.traffic);
      spawn_traffic(k, clk, obj, cfg, seed, nullptr);
      k.run_for(sim::Time::ns(cycles * 10));
      ++rep.checks;
      const check::CheckStats* all[] = {&pack_bm.stats(), &pack_nm.stats(),
                                          &fair_bm.stats(), &fair_nm.stats()};
      for (const check::CheckStats* ms : all) {
        for (const auto& p : ms->props) rep.attempts += p.attempts;
        if (ms->fails() != 0) {
          rep.detail = traffic_name(shape) + "/" + std::to_string(n) +
                       " clients: " + std::to_string(ms->fails()) +
                       " property failure(s)";
          return rep;
        }
      }
      // Behavioural and lowered monitors must agree verdict-for-verdict.
      for (std::size_t p = 0; p < pack_bm.stats().props.size(); ++p) {
        if (pack_bm.stats().props[p].passes != pack_nm.stats().props[p].passes) {
          rep.detail = traffic_name(shape) + "/" + std::to_string(n) +
                       " clients: behavioural/netlist monitor divergence";
          return rep;
        }
      }
    }
  }
  rep.ok = true;
  rep.detail = "fairness OK: " + std::to_string(rep.checks) +
               " adversarial scenarios, " + std::to_string(rep.attempts) +
               " property attempts, 0 failures";
  return rep;
}

}  // namespace hlcs::contend
