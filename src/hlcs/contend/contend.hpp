// Umbrella header for hlcs::contend -- the guarded-call contention cost
// model and the adaptive-arbitration feedback loop built on it
// (docs/CONTENTION.md).
#pragma once

#include "hlcs/contend/cost_model.hpp"
#include "hlcs/contend/sweep.hpp"
#include "hlcs/contend/traffic.hpp"
