// The contention design-space exploration driver: one cell = one
// deterministic clocked-SharedObject simulation (policy x client count
// x traffic shape), a grid = many cells over the ParallelSweep worker
// pool with bit-identical results at any thread count, plus the
// monitor-backed fairness verification of the adaptive policy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hlcs/contend/cost_model.hpp"
#include "hlcs/contend/traffic.hpp"

namespace hlcs::sim {
class Kernel;
}

namespace hlcs::contend {

struct CellConfig {
  osss::PolicyKind policy = osss::PolicyKind::Fifo;
  std::size_t clients = 2;             ///< 2..64
  TrafficShape traffic = TrafficShape::Uniform;
  std::uint64_t cycles = kDefaultCycles;
  std::uint64_t root_seed = kRootSeed;
};

/// Run one cell on a caller-provided (fresh) kernel.
CellResult run_cell_on(sim::Kernel& k, const CellConfig& cfg);
/// Run one cell on a private kernel.
CellResult run_cell(const CellConfig& cfg);

enum class GridKind {
  Full,     ///< every policy x clients {2,4,8,16,32,64} x every shape
  Reduced,  ///< every policy x clients {2,16} x every shape (tier-1 gate)
};

std::vector<CellConfig> make_grid(GridKind kind,
                                  std::uint64_t cycles = kDefaultCycles,
                                  std::uint64_t root_seed = kRootSeed);

/// Run a grid over the ParallelSweep pool.  `threads == 0` picks the
/// hardware concurrency, 1 runs serially; results are in grid order and
/// bit-identical at any thread count.
std::vector<CellResult> run_grid(const std::vector<CellConfig>& grid,
                                 unsigned threads = 0);

/// Diff freshly computed cells against a committed dataset file's text:
/// every cell's canonical JSON line must appear byte-identically.
/// Returns a human-readable failure description, empty when clean.
std::string diff_against_dataset(const std::vector<CellResult>& cells,
                                 const std::string& dataset_text);

/// Monitor-backed fairness verification of AdaptiveArbitration: for
/// every adversarial traffic shape and several client counts, attach
/// the shared_object_rules no-starvation pack AND the
/// policy_fairness_rules bounded-eligible-wait pack (behavioural and
/// lowered-netlist monitors both) to an adaptive-policy object and run
/// the shape.  `ok` iff zero property failures everywhere.
struct FairnessReport {
  bool ok = false;
  std::uint64_t checks = 0;   ///< monitored (shape, clients) scenarios
  std::uint64_t attempts = 0; ///< property attempts across all monitors
  std::string detail;         ///< first failure, or summary when ok
};

FairnessReport verify_fairness(std::uint64_t cycles = kDefaultCycles);

}  // namespace hlcs::contend
