// The bus-access global object, expressed in the synthesisable subset.
//
// This is the artefact that makes the paper's flow close end-to-end: the
// same command/response contract the application uses at system level
// (putCommand / getCommand / appDataGet / putResponse / reset, each with
// its guard) written as an ObjectDesc, so hlcs::synth can compile it to
// RTL, emit Verilog, and the pre/post-synthesis models can be checked
// for consistency.
//
// Packing (all little-endian bit packing, LSB first):
//   putCommand(op[4], len[8], addr[32])          guard: !cmd_valid
//   getCommand() -> {addr[32], len[8], op[4]}    guard: cmd_valid
//   putResponse(status[2], data[32])             guard: !resp_valid
//   appDataGet() -> {data[32], status[2]}        guard: resp_valid
//   putWData(data[32])                           guard: !wdata_valid
//   getWData() -> data[32]                       guard: wdata_valid
//   reset()                                      guard: true
//
// putWData/getWData form the application -> interface write-data path
// (one word per grant), so burst payloads stream through the synthesised
// object exactly as read results stream back through putResponse.
#pragma once

#include <cstdint>

#include "hlcs/synth/object_desc.hpp"

namespace hlcs::pattern {

struct ChannelMethodIds {
  std::size_t put_command;
  std::size_t get_command;
  std::size_t put_response;
  std::size_t app_data_get;
  std::size_t put_wdata;
  std::size_t get_wdata;
  std::size_t reset;
};

struct ChannelVarIds {
  std::uint32_t cmd_valid;
  std::uint32_t cmd_op;
  std::uint32_t cmd_len;
  std::uint32_t cmd_addr;
  std::uint32_t resp_valid;
  std::uint32_t resp_status;
  std::uint32_t resp_data;
  std::uint32_t wdata_valid;
  std::uint32_t wdata;
};

struct SynthesisableChannel {
  synth::ObjectDesc desc;
  ChannelVarIds vars;
  ChannelMethodIds methods;
};

inline SynthesisableChannel make_synthesisable_channel() {
  synth::ObjectDesc d("bus_access_channel");
  auto& A = d.arena();

  ChannelVarIds v{};
  v.cmd_valid = d.add_var("cmd_valid", 1, 0);
  v.cmd_op = d.add_var("cmd_op", 4, 0);
  v.cmd_len = d.add_var("cmd_len", 8, 0);
  v.cmd_addr = d.add_var("cmd_addr", 32, 0);
  v.resp_valid = d.add_var("resp_valid", 1, 0);
  v.resp_status = d.add_var("resp_status", 2, 0);
  v.resp_data = d.add_var("resp_data", 32, 0);
  v.wdata_valid = d.add_var("wdata_valid", 1, 0);
  v.wdata = d.add_var("wdata", 32, 0);

  ChannelMethodIds m{};

  {
    auto b = d.add_method("putCommand");
    b.arg("op", 4).arg("len", 8).arg("addr", 32);
    b.guard(A.un(synth::ExprOp::Not, d.v(v.cmd_valid)));
    b.assign(v.cmd_valid, d.lit(1, 1));
    b.assign(v.cmd_op, d.a(0, 4));
    b.assign(v.cmd_len, d.a(1, 8));
    b.assign(v.cmd_addr, d.a(2, 32));
    m.put_command = b.index();
  }
  {
    auto b = d.add_method("getCommand");
    b.guard(d.v(v.cmd_valid));
    b.assign(v.cmd_valid, d.lit(0, 1));
    // {op, len, addr}: addr in bits [31:0], len in [39:32], op in [43:40].
    synth::ExprId packed = A.bin(
        synth::ExprOp::Concat, d.v(v.cmd_op),
        A.bin(synth::ExprOp::Concat, d.v(v.cmd_len), d.v(v.cmd_addr)));
    b.returns(packed, 44);
    m.get_command = b.index();
  }
  {
    auto b = d.add_method("putResponse");
    b.arg("status", 2).arg("data", 32);
    b.guard(A.un(synth::ExprOp::Not, d.v(v.resp_valid)));
    b.assign(v.resp_valid, d.lit(1, 1));
    b.assign(v.resp_status, d.a(0, 2));
    b.assign(v.resp_data, d.a(1, 32));
    m.put_response = b.index();
  }
  {
    auto b = d.add_method("appDataGet");
    b.guard(d.v(v.resp_valid));
    b.assign(v.resp_valid, d.lit(0, 1));
    // {status, data}: data in bits [31:0], status in [33:32].
    synth::ExprId packed =
        A.bin(synth::ExprOp::Concat, d.v(v.resp_status), d.v(v.resp_data));
    b.returns(packed, 34);
    m.app_data_get = b.index();
  }
  {
    auto b = d.add_method("putWData");
    b.arg("data", 32);
    b.guard(A.un(synth::ExprOp::Not, d.v(v.wdata_valid)));
    b.assign(v.wdata_valid, d.lit(1, 1));
    b.assign(v.wdata, d.a(0, 32));
    m.put_wdata = b.index();
  }
  {
    auto b = d.add_method("getWData");
    b.guard(d.v(v.wdata_valid));
    b.assign(v.wdata_valid, d.lit(0, 1));
    b.returns(d.v(v.wdata), 32);
    m.get_wdata = b.index();
  }
  {
    auto b = d.add_method("reset");
    b.assign(v.cmd_valid, d.lit(0, 1));
    b.assign(v.resp_valid, d.lit(0, 1));
    b.assign(v.cmd_op, d.lit(0, 4));
    b.assign(v.cmd_len, d.lit(0, 8));
    b.assign(v.cmd_addr, d.lit(0, 32));
    b.assign(v.resp_status, d.lit(0, 2));
    b.assign(v.resp_data, d.lit(0, 32));
    b.assign(v.wdata_valid, d.lit(0, 1));
    b.assign(v.wdata, d.lit(0, 32));
    m.reset = b.index();
  }

  return SynthesisableChannel{std::move(d), v, m};
}

// --- packed-field helpers for getCommand / appDataGet return values ----
inline std::uint32_t unpack_cmd_addr(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed & 0xFFFFFFFFull);
}
inline std::uint8_t unpack_cmd_len(std::uint64_t packed) {
  return static_cast<std::uint8_t>((packed >> 32) & 0xFF);
}
inline std::uint8_t unpack_cmd_op(std::uint64_t packed) {
  return static_cast<std::uint8_t>((packed >> 40) & 0xF);
}
inline std::uint32_t unpack_resp_data(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed & 0xFFFFFFFFull);
}
inline std::uint8_t unpack_resp_status(std::uint64_t packed) {
  return static_cast<std::uint8_t>((packed >> 32) & 0x3);
}

}  // namespace hlcs::pattern
