// The global object at the heart of the bus-interface pattern.
//
// The paper defines the application/interface contract as four guarded
// methods on a shared global object:
//
//   GUARDED_METHOD(void, putCommand(CommandType&), !isPendingCommand)
//   GUARDED_METHOD(CommandType, getCommand(), isPendingCommand)
//   GUARDED_METHOD(DataType, appDataGet(), isApplicationReadData)
//   GUARDED_METHOD(void, reset(), true)
//
// BusAccessChannel reproduces exactly that: it owns a
// SharedObject<BusAccessState> and exposes a typed application port and a
// typed interface port whose operations are guarded-method calls with the
// guards above.  Both blocking and non-blocking (try_*) variants are
// provided, as the paper mentions a blocking "version" of the interface.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "hlcs/osss/shared_object.hpp"
#include "hlcs/pattern/command.hpp"

namespace hlcs::pattern {

/// Shared state: one command slot (ping-pong with the interface) plus a
/// response queue toward the application.
class BusAccessState {
public:
  bool isPendingCommand() const { return pending_.has_value(); }
  bool isApplicationReadData() const { return !responses_.empty(); }

  void putCommand(CommandType c) {
    HLCS_ASSERT(!pending_, "putCommand guard violated");
    pending_ = std::move(c);
  }

  CommandType getCommand() {
    HLCS_ASSERT(pending_, "getCommand guard violated");
    CommandType c = std::move(*pending_);
    pending_.reset();
    return c;
  }

  void putResponse(ResponseType r) { responses_.push_back(std::move(r)); }

  ResponseType appDataGet() {
    HLCS_ASSERT(!responses_.empty(), "appDataGet guard violated");
    ResponseType r = std::move(responses_.front());
    responses_.pop_front();
    return r;
  }

  /// "It cancels all the pending commands and perform other initialising
  /// operations."
  void reset() {
    pending_.reset();
    responses_.clear();
    next_id_ = 0;
  }

  std::uint64_t take_id() { return next_id_++; }
  std::size_t responses_queued() const { return responses_.size(); }

private:
  std::optional<CommandType> pending_;
  std::deque<ResponseType> responses_;
  std::uint64_t next_id_ = 0;
};

class BusAccessChannel : public sim::Module {
public:
  using Shared = osss::SharedObject<BusAccessState>;

  /// Untimed channel (functional model).
  BusAccessChannel(sim::Kernel& k, std::string name,
                   std::unique_ptr<osss::ArbitrationPolicy> policy =
                       std::make_unique<osss::FifoArbitration>())
      : Module(k, std::move(name)),
        obj_(k, sub("object"), std::move(policy)) {}

  /// Clocked channel: guarded-method grants consume clock cycles, as the
  /// synthesised implementation does.
  BusAccessChannel(sim::Kernel& k, std::string name, sim::Clock& clk,
                   std::unique_ptr<osss::ArbitrationPolicy> policy =
                       std::make_unique<osss::FifoArbitration>())
      : Module(k, std::move(name)),
        obj_(k, sub("object"), clk, std::move(policy)) {}

  /// Application-side instance of the global object.
  class AppPort {
  public:
    AppPort() = default;

    /// Blocking: suspends while another command is pending.  Returns the
    /// command id used to match the response.
    auto putCommand(CommandType c) const {
      return client_.call(
          [](const BusAccessState& s) { return !s.isPendingCommand(); },
          [c = std::move(c)](BusAccessState& s) mutable {
            c.id = s.take_id();
            const std::uint64_t id = c.id;
            s.putCommand(std::move(c));
            return id;
          });
    }

    /// Blocking: suspends until a response is available.
    auto appDataGet() const {
      return client_.call(
          [](const BusAccessState& s) { return s.isApplicationReadData(); },
          [](BusAccessState& s) { return s.appDataGet(); });
    }

    /// Always eligible.
    auto reset() const {
      return client_.call([](BusAccessState& s) { s.reset(); });
    }

    /// Non-blocking probe variants.
    std::optional<std::uint64_t> try_putCommand(CommandType c) const {
      return client_.try_call(
          [](const BusAccessState& s) { return !s.isPendingCommand(); },
          [c = std::move(c)](BusAccessState& s) mutable {
            c.id = s.take_id();
            const std::uint64_t id = c.id;
            s.putCommand(std::move(c));
            return id;
          });
    }
    std::optional<ResponseType> try_appDataGet() const {
      return client_.try_call(
          [](const BusAccessState& s) { return s.isApplicationReadData(); },
          [](BusAccessState& s) { return s.appDataGet(); });
    }

  private:
    friend class BusAccessChannel;
    explicit AppPort(Shared::Client c) : client_(c) {}
    Shared::Client client_;
  };

  /// Interface-side instance of the global object ("invoked by the
  /// processes that implement the bus protocol handling").
  class IfPort {
  public:
    IfPort() = default;

    /// Blocking: suspends until the application posts a command.
    auto getCommand() const {
      return client_.call(
          [](const BusAccessState& s) { return s.isPendingCommand(); },
          [](BusAccessState& s) { return s.getCommand(); });
    }

    auto putResponse(ResponseType r) const {
      return client_.call([r = std::move(r)](BusAccessState& s) mutable {
        s.putResponse(std::move(r));
      });
    }

  private:
    friend class BusAccessChannel;
    explicit IfPort(Shared::Client c) : client_(c) {}
    Shared::Client client_;
  };

  /// Connect an application module to the shared state space.
  AppPort app_port(const std::string& who, int priority = 0) {
    return AppPort(obj_.make_client(who, priority));
  }
  /// Connect the protocol-handling side.
  IfPort if_port(const std::string& who, int priority = 0) {
    return IfPort(obj_.make_client(who, priority));
  }

  const Shared& object() const { return obj_; }
  Shared& object() { return obj_; }

private:
  Shared obj_;
};

}  // namespace hlcs::pattern
