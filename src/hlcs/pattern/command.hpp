// CommandType / ResponseType -- the transaction-level vocabulary the
// application uses to talk to a bus interface through the global object
// (paper Sec. 3: "This method is invoked by the application (the module
// that uses the bus) in order to perform a bus operation").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hlcs/pci/pci_types.hpp"

namespace hlcs::pattern {

enum class BusOp : std::uint8_t {
  Read,
  Write,
  ReadBurst,
  WriteBurst,
  IoRead,
  IoWrite,
  ConfigRead,
  ConfigWrite,
};

inline bool op_is_read(BusOp op) {
  return op == BusOp::Read || op == BusOp::ReadBurst || op == BusOp::IoRead ||
         op == BusOp::ConfigRead;
}

inline const char* to_string(BusOp op) {
  switch (op) {
    case BusOp::Read: return "read";
    case BusOp::Write: return "write";
    case BusOp::ReadBurst: return "read_burst";
    case BusOp::WriteBurst: return "write_burst";
    case BusOp::IoRead: return "io_read";
    case BusOp::IoWrite: return "io_write";
    case BusOp::ConfigRead: return "cfg_read";
    case BusOp::ConfigWrite: return "cfg_write";
  }
  return "?";
}

/// Map a transaction-level operation onto the PCI command encoding the
/// pin-accurate interface drives during the address phase.
inline pci::PciCommand to_pci_command(BusOp op) {
  switch (op) {
    case BusOp::Read: return pci::PciCommand::MemRead;
    case BusOp::ReadBurst: return pci::PciCommand::MemReadMultiple;
    case BusOp::Write: return pci::PciCommand::MemWrite;
    case BusOp::WriteBurst: return pci::PciCommand::MemWrite;
    case BusOp::IoRead: return pci::PciCommand::IoRead;
    case BusOp::IoWrite: return pci::PciCommand::IoWrite;
    case BusOp::ConfigRead: return pci::PciCommand::ConfigRead;
    case BusOp::ConfigWrite: return pci::PciCommand::ConfigWrite;
  }
  return pci::PciCommand::MemRead;
}

struct CommandType {
  BusOp op = BusOp::Read;
  std::uint32_t addr = 0;
  std::vector<std::uint32_t> data;  ///< payload for writes
  std::size_t count = 1;            ///< words to fetch for reads
  std::uint64_t id = 0;             ///< filled by the channel (sequence no.)

  std::size_t words() const { return op_is_read(op) ? count : data.size(); }
};

struct ResponseType {
  std::uint64_t id = 0;
  pci::PciResult status = pci::PciResult::Ok;
  std::vector<std::uint32_t> data;  ///< read results
  std::uint64_t issue_cycle = 0;    ///< bus cycle when service began
  std::uint64_t complete_cycle = 0;
};

}  // namespace hlcs::pattern
