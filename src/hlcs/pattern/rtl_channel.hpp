// RtlChannel: a synthesised netlist co-simulated inside the kernel as
// the communication fabric between behavioural modules -- the "Model
// implementation" of the paper's Figure 2, where the communication part
// of the design has been replaced by its RT-level synthesis result while
// the surrounding modules stay behavioural.
//
// Each behavioural client holds a Port.  A call drives the client's
// req/sel/args pins; on every rising edge the channel feeds all pins into
// the netlist, reads the combinational grant/ret (pre-latch, exactly
// what the hardware client FSM would sample), latches the edge, and
// resumes granted callers.  Like a hardware client FSM, a Port's request
// deasserts in the grant cycle, so a call executes exactly once.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hlcs/sim/clock.hpp"
#include "hlcs/sim/module.hpp"
#include "hlcs/synth/comm_synth.hpp"
#include "hlcs/synth/rtl_sim.hpp"

namespace hlcs::pattern {

class RtlChannel : public sim::Module {
  struct ClientState {
    bool req = false;
    std::uint64_t sel = 0;
    std::uint64_t args = 0;
    std::uint64_t ret = 0;
    std::coroutine_handle<> waiter;
    std::uint64_t waited_cycles = 0;
  };

public:
  /// `netlist` must outlive the channel; it must have been synthesised
  /// with at least as many clients as ports created.
  RtlChannel(sim::Kernel& k, std::string name, const synth::Netlist& netlist,
             sim::Clock& clk)
      : Module(k, std::move(name)), rtl_(netlist) {
    rtl_.set_input("rst", 0);
    sim::MethodProcess& m =
        method("edge", [this] { on_edge(); }, /*initial_trigger=*/false);
    clk.posedge().add_static(m);
  }

  class Port {
  public:
    Port() = default;

    /// Awaitable guarded-method call through the synthesised object:
    /// suspends until the hardware grants it; returns the ret-port value.
    struct CallAwaiter {
      RtlChannel* chan;
      std::size_t client;
      std::uint64_t sel;
      std::uint64_t args;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        ClientState& cs = *chan->clients_[client];
        HLCS_ASSERT(!cs.req, "RtlChannel: port already has a call in flight");
        cs.req = true;
        cs.sel = sel;
        cs.args = args;
        cs.waited_cycles = 0;
        cs.waiter = h;
      }
      std::uint64_t await_resume() const {
        return chan->clients_[client]->ret;
      }
    };

    CallAwaiter call(std::size_t method_index, std::uint64_t args = 0) const {
      HLCS_ASSERT(chan_ != nullptr, "call through unconnected RtlChannel::Port");
      return CallAwaiter{chan_, client_, method_index, args};
    }

    bool connected() const { return chan_ != nullptr; }

  private:
    friend class RtlChannel;
    Port(RtlChannel* c, std::size_t id) : chan_(c), client_(id) {}
    RtlChannel* chan_ = nullptr;
    std::size_t client_ = 0;
  };

  Port make_port() {
    clients_.push_back(std::make_unique<ClientState>());
    return Port(this, clients_.size() - 1);
  }

  synth::NetlistSim& netlist_sim() { return rtl_; }
  std::uint64_t grants() const { return grants_; }
  std::uint64_t edges() const { return edges_; }

  /// Peek a synthesised state variable by net name ("var_<name>").
  std::uint64_t state(const std::string& var_net) const {
    return rtl_.get(var_net);
  }

private:
  void on_edge() {
    ++edges_;
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      ClientState& cs = *clients_[c];
      rtl_.set_input(synth::req_port(c), cs.req ? 1 : 0);
      rtl_.set_input(synth::sel_port(c), cs.sel);
      rtl_.set_input(synth::args_port(c), cs.args);
    }
    rtl_.settle();
    // Capture combinational grant/ret before latching -- the values a
    // hardware client samples on this edge.  The grant list is a
    // persistent scratch buffer so the per-edge hot path never
    // allocates.
    granted_.clear();
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      ClientState& cs = *clients_[c];
      if (!cs.req) continue;
      if (rtl_.get(synth::grant_port(c)) != 0) {
        cs.ret = rtl_.get(synth::ret_port(c));
        granted_.push_back(c);
      } else {
        cs.waited_cycles++;
      }
    }
    rtl_.clock_edge();
    for (std::size_t c : granted_) {
      ClientState& cs = *clients_[c];
      cs.req = false;  // the client FSM deasserts on grant
      ++grants_;
      if (cs.waiter) {
        auto h = cs.waiter;
        cs.waiter = nullptr;
        kernel().make_runnable(h);
      }
    }
  }

  synth::NetlistSim rtl_;
  std::vector<std::size_t> granted_;  ///< per-edge scratch (no allocation)
  std::vector<std::unique_ptr<ClientState>> clients_;
  std::uint64_t grants_ = 0;
  std::uint64_t edges_ = 0;
};

}  // namespace hlcs::pattern
