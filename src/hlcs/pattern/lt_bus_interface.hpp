// Loosely-timed library element: the quantum-decoupled fast path of the
// communication refinement flow.  It implements the same BusInterface
// contract as FunctionalBusInterface and PciBusInterface -- the
// application is untouched (paper Fig. 3) -- but serves transactions
// with three accelerations:
//
//   1. DMI direct windows: commands that fall inside a target-granted
//      raw span (tlm::DmiWindow) execute as plain loads/stores.  The
//      cached window is revalidated against the provider's
//      dmi_version() once per command, so decode changes (e.g. a
//      TlmRouter::attach) are honoured without a per-word check.
//   2. Temporal decoupling: per-command cost accrues in a
//      tlm::QuantumKeeper local offset instead of a kernel wait; the
//      kernel is synchronised only at quantum boundaries, usually by a
//      direct clock warp (Kernel::try_warp).
//   3. Batched guarded-method commits: the decoupled stimuli engine
//      bypasses the per-command global-object handshake and commits a
//      quantum's worth of putCommand/getCommand/putResponse/appDataGet
//      calls as one arbitration episode per side
//      (SharedObject::commit_batch), keeping the contention
//      instrumentation consistent with what a call-by-call run records.
//
// The refinement-consistency obligation is unchanged: the LT transcript
// must match the functional and pin-level transcripts word for word
// (verify::compare_functional); tests/tlm/test_lt.cpp and the
// `hlcs_synth --equiv-lt` gate check exactly that.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "hlcs/pattern/bus_interface.hpp"
#include "hlcs/tlm/lt.hpp"
#include "hlcs/tlm/tlm.hpp"
#include "hlcs/verify/transcript.hpp"

namespace hlcs::pattern {

struct LtConfig {
  sim::Time quantum = sim::Time::us(1);       ///< run-ahead bound
  sim::Time per_command = sim::Time::ns(30);  ///< accrued cost per command
  sim::Time per_word = sim::Time::ns(30);     ///< accrued cost per word
};

class LtStimuliEngine;

class LtBusInterface final : public BusInterface {
public:
  LtBusInterface(sim::Kernel& k, std::string name, tlm::TlmTarget& target,
                 LtConfig cfg = {})
      : BusInterface(k, std::move(name)),
        target_(target),
        cfg_(cfg),
        keeper_(k, cfg.quantum, tlm_stats_),
        batch_app_(chan_.object().make_client("lt_batch_app")),
        batch_if_(chan_.object().make_client("lt_batch_if")) {
    spawn("serve", [this]() { return serve_forever(chan_.if_port("iface")); });
  }

  const tlm::TlmStats& tlm_stats() const { return tlm_stats_; }
  const tlm::QuantumKeeper& keeper() const { return keeper_; }

protected:
  /// Channel-served path (an ordinary Application connected through
  /// app_port): the command/response handshake still runs through the
  /// global object, but service is a direct call plus local-time accrual
  /// -- the kernel advances only at quantum boundaries.
  sim::Task execute(const CommandType& cmd, ResponseType& resp) override {
    serve_direct(cmd, resp);
    keeper_.inc(cost_of(cmd));
    if (keeper_.need_sync()) {
      tlm_stats_.quanta++;
      co_await keeper_.sync();
    }
  }

private:
  friend class LtStimuliEngine;

  /// Local cost of a command under the LT timing model.  Matches the
  /// FunctionalTiming shape so an LT run and a per-command-timed
  /// functional run agree on total simulated time.
  sim::Time cost_of(const CommandType& cmd) const {
    return cfg_.per_command + cfg_.per_word * cmd.words();
  }

  /// Serve one command immediately (no kernel interaction).  Reads and
  /// writes whose whole span lies inside a direct window are plain
  /// memcpy-style loops; everything else -- peripheral registers,
  /// window-crossing bursts, undecoded addresses -- falls back to ONE
  /// target read()/write() call, byte-for-byte the functional element's
  /// behaviour (including the first-target routing of crossing bursts).
  void serve_direct(const CommandType& cmd, ResponseType& resp) {
    resp.id = cmd.id;
    if (op_is_read(cmd.op)) {
      resp.data.clear();
      if (window_for(cmd.addr, cmd.count * 4)) {
        const std::uint32_t* p = win_.at(cmd.addr);
        resp.data.insert(resp.data.end(), p, p + cmd.count);
        resp.status = tlm::Status::Ok;
        tlm_stats_.dmi_hits++;
      } else {
        tlm_stats_.dmi_misses++;
        resp.status = target_.read(cmd.addr, resp.data, cmd.count);
        // Match the other elements: a failed read delivers no data.
        if (resp.status != tlm::Status::Ok) resp.data.clear();
      }
    } else {
      if (window_for(cmd.addr, cmd.data.size() * 4)) {
        std::uint32_t* p = win_.at(cmd.addr);
        for (std::size_t i = 0; i < cmd.data.size(); ++i) p[i] = cmd.data[i];
        resp.status = tlm::Status::Ok;
        tlm_stats_.dmi_hits++;
      } else {
        tlm_stats_.dmi_misses++;
        resp.status = target_.write(cmd.addr, cmd.data);
      }
    }
    tlm_stats_.transactions++;
  }

  /// True iff a fresh direct window covers [addr, addr+bytes).  The
  /// cached window is version-checked once here (per command); a miss
  /// re-acquires through the target.
  bool window_for(std::uint32_t addr, std::size_t bytes) {
    if (win_.valid() && win_.version != target_.dmi_version()) win_ = {};
    if (win_.covers(addr, bytes)) return true;
    win_ = target_.get_direct_window(addr);
    return win_.covers(addr, bytes);
  }

  /// Commit a quantum's worth of decoupled handshakes on the global
  /// object: `n` transactions are 2n application-side calls (putCommand
  /// + appDataGet) and 2n interface-side calls (getCommand +
  /// putResponse).  The application-side mutation consumes the channel's
  /// id sequence so call-by-call users attached later stay in sync with
  /// the ids the engine assigned.
  void commit_quantum(std::uint64_t n) {
    if (n == 0) return;
    batch_app_.commit_batch(2 * n, [n](BusAccessState& s) {
      for (std::uint64_t i = 0; i < n; ++i) s.take_id();
    });
    batch_if_.commit_batch(2 * n, [](BusAccessState&) {});
    tlm_stats_.batched_guarded_calls += 4 * n;
  }

  /// Mirror of serve_forever's InterfaceStats accounting, for commands
  /// served outside the channel loop (the decoupled engine).
  void account(const CommandType& cmd, const ResponseType& resp) {
    stats_.commands_served++;
    stats_.words_transferred +=
        resp.data.size() + (op_is_read(cmd.op) ? 0 : cmd.data.size());
    if (resp.status != pci::PciResult::Ok) stats_.failures++;
  }

  tlm::TlmTarget& target_;
  LtConfig cfg_;
  tlm::TlmStats tlm_stats_;
  tlm::QuantumKeeper keeper_;
  tlm::DmiWindow win_;  // cached grant; revalidated per command
  BusAccessChannel::Shared::Client batch_app_;
  BusAccessChannel::Shared::Client batch_if_;
};

/// Quantum-decoupled stimuli engine: replays a workload against an
/// LtBusInterface as a tight loop of direct calls, recording a
/// transcript stamped with LOCAL time (kernel time + run-ahead offset).
/// The per-command global-object handshake is batched: at every quantum
/// boundary the accumulated calls commit as one arbitration episode per
/// side, then the keeper synchronises the kernel.  Ids are assigned from
/// the engine's own counter, which matches the channel's take_id()
/// sequence exactly (and commit_quantum consumes the channel's counter
/// in step), so transcripts compare 1:1 with call-by-call runs.
class LtStimuliEngine : public sim::Module {
public:
  LtStimuliEngine(LtBusInterface& bus, std::vector<CommandType> workload)
      : Module(bus.kernel(), bus.sub("engine")),
        bus_(bus),
        workload_(std::move(workload)) {
    spawn("replay", [this]() { return replay(); });
  }

  bool done() const { return done_; }
  const verify::Transcript& transcript() const { return transcript_; }

private:
  sim::Task replay() {
    std::uint64_t in_quantum = 0;
    ResponseType resp;
    for (const CommandType& w : workload_) {
      CommandType cmd = w;
      cmd.id = next_id_++;
      const sim::Time issued = bus_.keeper_.local_now();
      resp = ResponseType{};
      bus_.serve_direct(cmd, resp);
      bus_.keeper_.inc(bus_.cost_of(cmd));
      bus_.account(cmd, resp);
      transcript_.record(cmd, resp, issued, bus_.keeper_.local_now());
      ++in_quantum;
      if (bus_.keeper_.need_sync()) {
        bus_.commit_quantum(in_quantum);
        in_quantum = 0;
        bus_.tlm_stats_.quanta++;
        co_await bus_.keeper_.sync();
      }
    }
    // Final partial quantum: commit and bring the kernel up to local
    // time so `span()` and kernel().now() agree at completion.
    bus_.commit_quantum(in_quantum);
    co_await bus_.keeper_.sync();
    done_ = true;
  }

  LtBusInterface& bus_;
  std::vector<CommandType> workload_;
  verify::Transcript transcript_;
  std::uint64_t next_id_ = 0;
  bool done_ = false;
};

}  // namespace hlcs::pattern
