// The complete post-synthesis system model: the application talks to the
// SYNTHESISED bus-access channel (RtlChannel, netlist co-simulation);
// a service process fetches commands from the RTL object and drives the
// pin-level PCI master; responses stream back through the RTL object one
// word per grant.  This is the right-hand box of the paper's Figure 2 --
// everything between application logic and bus pins is the synthesis
// result, simulated cycle-accurately inside the behavioural testbench.
//
// Word-level protocol over the synthesised channel (single-slot regs):
//   write of N words : putCommand, then N x putWData, then 1 response
//   read of N words  : putCommand, then N responses (status in each)
#pragma once

#include <string>
#include <vector>

#include "hlcs/pattern/command.hpp"
#include "hlcs/pattern/rtl_channel.hpp"
#include "hlcs/pattern/synthesisable_channel.hpp"
#include "hlcs/pci/pci.hpp"
#include "hlcs/verify/transcript.hpp"

namespace hlcs::pattern {

class RtlPciSystem : public sim::Module {
public:
  RtlPciSystem(sim::Kernel& k, std::string name, pci::PciBus& bus,
               pci::PciArbiter& arbiter)
      : Module(k, std::move(name)),
        channel_desc_(make_synthesisable_channel()),
        netlist_(synth::synthesize(
            channel_desc_.desc,
            synth::SynthOptions{.clients = 2,
                                .policy = osss::PolicyKind::Fifo})),
        rtl_(k, sub("rtl_channel"), netlist_, bus.clk),
        app_port_(rtl_.make_port()),
        if_port_(rtl_.make_port()),
        port_(arbiter.add_master(this->name())),
        master_(k, sub("master"), bus, *port_.req, *port_.gnt) {
    spawn("serve", [this]() { return serve(); });
  }

  /// Application entry point: one command end-to-end through the
  /// synthesised channel and the pin-level bus.
  sim::Task execute(const CommandType& cmd, ResponseType& resp) {
    const std::uint64_t args =
        static_cast<std::uint64_t>(to_pci_command(cmd.op)) |
        (static_cast<std::uint64_t>(cmd.words() & 0xFF) << 4) |
        (static_cast<std::uint64_t>(cmd.addr) << 12);
    co_await app_port_.call(channel_desc_.methods.put_command, args);
    if (!op_is_read(cmd.op)) {
      for (std::uint32_t w : cmd.data) {
        co_await app_port_.call(channel_desc_.methods.put_wdata, w);
      }
    }
    const std::size_t responses = op_is_read(cmd.op) ? cmd.count : 1;
    resp.data.clear();
    resp.status = pci::PciResult::Ok;
    for (std::size_t i = 0; i < responses; ++i) {
      std::uint64_t packed =
          co_await app_port_.call(channel_desc_.methods.app_data_get);
      const auto st =
          static_cast<pci::PciResult>(unpack_resp_status(packed));
      if (st != pci::PciResult::Ok) resp.status = st;
      if (op_is_read(cmd.op)) resp.data.push_back(unpack_resp_data(packed));
    }
    // Match the other library elements: failed reads deliver no data.
    if (resp.status != pci::PciResult::Ok) resp.data.clear();
  }

  RtlChannel& rtl_channel() { return rtl_; }
  const pci::MasterStats& master_stats() const { return master_.stats(); }

private:
  /// The protocol-handler process on the far side of the RTL object.
  sim::Task serve() {
    for (;;) {
      const std::uint64_t packed =
          co_await if_port_.call(channel_desc_.methods.get_command);
      const auto op = static_cast<pci::PciCommand>(unpack_cmd_op(packed));
      const std::size_t len = unpack_cmd_len(packed);
      const std::uint32_t addr = unpack_cmd_addr(packed);

      pci::PciTransaction t;
      t.cmd = op;
      t.addr = addr;
      if (pci::is_write(op)) {
        for (std::size_t i = 0; i < len; ++i) {
          const std::uint64_t w =
              co_await if_port_.call(channel_desc_.methods.get_wdata);
          t.data.push_back(static_cast<std::uint32_t>(w));
        }
      } else {
        t.count = len;
      }
      co_await master_.execute(t);

      const auto status = static_cast<std::uint64_t>(t.result) & 0x3;
      if (pci::is_write(op)) {
        const std::uint64_t packed_resp = status | (0ull << 2);
        co_await if_port_.call(channel_desc_.methods.put_response,
                               packed_resp);
      } else {
        for (std::size_t i = 0; i < len; ++i) {
          const std::uint64_t word = i < t.data.size() ? t.data[i] : 0;
          const std::uint64_t packed_resp = status | (word << 2);
          co_await if_port_.call(channel_desc_.methods.put_response,
                                 packed_resp);
        }
      }
    }
  }

  SynthesisableChannel channel_desc_;
  synth::Netlist netlist_;
  RtlChannel rtl_;
  RtlChannel::Port app_port_;
  RtlChannel::Port if_port_;
  pci::PciArbiter::Port port_;
  pci::PciMaster master_;
};

}  // namespace hlcs::pattern
