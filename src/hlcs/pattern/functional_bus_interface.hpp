// Transaction-level library element: serves application commands by
// calling the TLM IP models directly.  Optionally consumes simulated
// time per word (a loosely-timed model); by default it is untimed, which
// is the "high simulation speeds achievable with such descriptions" the
// paper exploits during functional modelling.
#pragma once

#include <string>

#include "hlcs/pattern/bus_interface.hpp"
#include "hlcs/tlm/tlm.hpp"

namespace hlcs::pattern {

struct FunctionalTiming {
  sim::Time per_command = sim::Time::zero();
  sim::Time per_word = sim::Time::zero();
};

class FunctionalBusInterface final : public BusInterface {
public:
  FunctionalBusInterface(sim::Kernel& k, std::string name,
                         tlm::TlmTarget& target, FunctionalTiming timing = {})
      : BusInterface(k, std::move(name)), target_(target), timing_(timing) {
    spawn("serve", [this]() { return serve_forever(chan_.if_port("iface")); });
  }

protected:
  sim::Task execute(const CommandType& cmd, ResponseType& resp) override {
    if (!timing_.per_command.is_zero()) {
      co_await kernel().wait(timing_.per_command);
    }
    if (!timing_.per_word.is_zero()) {
      co_await kernel().wait(timing_.per_word * cmd.words());
    }
    if (op_is_read(cmd.op)) {
      resp.status = target_.read(cmd.addr, resp.data, cmd.count);
      // Match the pin-level elements: a failed read delivers no data.
      if (resp.status != pci::PciResult::Ok) resp.data.clear();
    } else {
      resp.status = target_.write(cmd.addr, cmd.data);
    }
  }

private:
  tlm::TlmTarget& target_;
  FunctionalTiming timing_;
};

}  // namespace hlcs::pattern
