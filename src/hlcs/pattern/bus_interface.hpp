// The abstract bus interface of the pattern (paper Sec. 3): an element
// that (1) offers the application the guarded-method command/response
// contract through a global object, and (2) implements the service
// toward the IP models at SOME abstraction level.  Concrete elements --
// FunctionalBusInterface (transaction level) and PciBusInterface
// (pin-accurate) -- are interchangeable behind this class, which is
// exactly the communication refinement of Figure 3: replace the library
// element, leave the application untouched.
#pragma once

#include <cstdint>
#include <string>

#include "hlcs/pattern/bus_access_object.hpp"

namespace hlcs::pattern {

struct InterfaceStats {
  std::uint64_t commands_served = 0;
  std::uint64_t words_transferred = 0;
  std::uint64_t failures = 0;  ///< responses with status != Ok
};

class BusInterface : public sim::Module {
public:
  BusInterface(sim::Kernel& k, std::string name)
      : Module(k, std::move(name)), chan_(k, sub("chan")) {}
  BusInterface(sim::Kernel& k, std::string name, sim::Clock& clk)
      : Module(k, std::move(name)), chan_(k, sub("chan"), clk) {}

  /// The application connects here; this is the only coupling point, so
  /// swapping interface implementations never touches application code.
  BusAccessChannel::AppPort app_port(const std::string& who,
                                     int priority = 0) {
    return chan_.app_port(who, priority);
  }

  BusAccessChannel& channel() { return chan_; }
  const InterfaceStats& stats() const { return stats_; }

protected:
  /// Service loop skeleton shared by implementations.
  sim::Task serve_forever(BusAccessChannel::IfPort port) {
    for (;;) {
      CommandType cmd = co_await port.getCommand();
      ResponseType resp;
      resp.id = cmd.id;
      co_await execute(cmd, resp);
      stats_.commands_served++;
      stats_.words_transferred += resp.data.size() +
          (op_is_read(cmd.op) ? 0 : cmd.data.size());
      if (resp.status != pci::PciResult::Ok) stats_.failures++;
      co_await port.putResponse(std::move(resp));
    }
  }

  /// Implementation-specific service: fill `resp` for `cmd`.
  virtual sim::Task execute(const CommandType& cmd, ResponseType& resp) = 0;

  BusAccessChannel chan_;
  InterfaceStats stats_;
};

}  // namespace hlcs::pattern
