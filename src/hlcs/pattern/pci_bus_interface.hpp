// The pin-accurate PCI library element -- the representative interface
// the paper implements: "an handler of a simplified version of the PCI
// bus ... receives requests by an application in the form of function
// and procedure invocation and translates them into pin-level PCI
// operation requests".
//
// Structure (paper Sec. 1): "The interface module consists of one of
// such global objects, needed to communicate with the application, and
// of several processes that implement the pin-level PCI protocol."
// Here: the inherited BusAccessChannel is the global object; the service
// coroutine plus the PciMaster engine are the protocol processes.
#pragma once

#include <string>

#include "hlcs/pattern/bus_interface.hpp"
#include "hlcs/pci/pci.hpp"

namespace hlcs::pattern {

class PciBusInterface final : public BusInterface {
public:
  /// Untimed command channel: only the bus itself is cycle-accurate.
  PciBusInterface(sim::Kernel& k, std::string name, pci::PciBus& bus,
                  pci::PciArbiter& arbiter, pci::MasterConfig mcfg = {})
      : BusInterface(k, std::move(name)),
        bus_(bus),
        port_(arbiter.add_master(this->name())),
        master_(k, sub("master"), bus, *port_.req, *port_.gnt, mcfg) {
    spawn("serve", [this]() { return serve_forever(chan_.if_port("iface")); });
  }

  /// Clocked command channel: the guarded methods themselves consume
  /// clock cycles, as they do in the synthesised implementation.
  PciBusInterface(sim::Kernel& k, std::string name, pci::PciBus& bus,
                  pci::PciArbiter& arbiter, sim::Clock& channel_clk,
                  pci::MasterConfig mcfg = {})
      : BusInterface(k, std::move(name), channel_clk),
        bus_(bus),
        port_(arbiter.add_master(this->name())),
        master_(k, sub("master"), bus, *port_.req, *port_.gnt, mcfg) {
    spawn("serve", [this]() { return serve_forever(chan_.if_port("iface")); });
  }

  const pci::MasterStats& master_stats() const { return master_.stats(); }

  /// The REQ#/GNT# pair this interface arbitrates with (GNT# feeds the
  /// arbitration properties in hlcs/check/pci_rules.hpp).
  const pci::PciArbiter::Port& arb_port() const { return port_; }

protected:
  sim::Task execute(const CommandType& cmd, ResponseType& resp) override {
    pci::PciTransaction t;
    t.cmd = to_pci_command(cmd.op);
    t.addr = cmd.addr;
    if (op_is_read(cmd.op)) {
      t.count = cmd.count;
    } else {
      t.data = cmd.data;
    }
    resp.issue_cycle = bus_.cycle();
    co_await master_.execute(t);
    resp.complete_cycle = bus_.cycle();
    resp.status = t.result;
    if (op_is_read(cmd.op) && resp.status == pci::PciResult::Ok) {
      resp.data = std::move(t.data);
    }
  }

private:
  pci::PciBus& bus_;
  pci::PciArbiter::Port port_;
  pci::PciMaster master_;
};

}  // namespace hlcs::pattern
