// The SimpleBus library element: same guarded-method contract toward the
// application, ready/valid handshake toward the IPs.  Together with
// FunctionalBusInterface and PciBusInterface this is the "library of
// such interfaces" the methodology calls for -- refinement is picking
// one of the three.
#pragma once

#include <string>

#include "hlcs/pattern/bus_interface.hpp"
#include "hlcs/sbus/simple_bus.hpp"

namespace hlcs::pattern {

class SimpleBusInterface final : public BusInterface {
public:
  SimpleBusInterface(sim::Kernel& k, std::string name, sbus::SimpleBus& bus,
                     sbus::SimpleMasterConfig mcfg = {})
      : BusInterface(k, std::move(name)),
        master_(k, sub("master"), bus, mcfg) {
    spawn("serve", [this]() { return serve_forever(chan_.if_port("iface")); });
  }

  const sbus::SimpleMasterStats& master_stats() const {
    return master_.stats();
  }

protected:
  sim::Task execute(const CommandType& cmd, ResponseType& resp) override {
    // SimpleBus is a word protocol: bursts become word sequences.
    resp.status = pci::PciResult::Ok;
    if (op_is_read(cmd.op)) {
      for (std::size_t i = 0; i < cmd.count; ++i) {
        std::uint32_t word = 0;
        bool ok = false;
        co_await master_.transfer(
            false, cmd.addr + static_cast<std::uint32_t>(i) * 4, &word, &ok);
        if (!ok) {
          resp.status = pci::PciResult::MasterAbort;
          // Mirror the functional model: a failed read returns no data.
          resp.data.clear();
          co_return;
        }
        resp.data.push_back(word);
      }
    } else {
      for (std::size_t i = 0; i < cmd.data.size(); ++i) {
        std::uint32_t word = cmd.data[i];
        bool ok = false;
        co_await master_.transfer(
            true, cmd.addr + static_cast<std::uint32_t>(i) * 4, &word, &ok);
        if (!ok) {
          resp.status = pci::PciResult::MasterAbort;
          co_return;
        }
      }
    }
  }

private:
  sbus::SimpleBusMaster master_;
};

}  // namespace hlcs::pattern
