// Umbrella header for the bus-interface design pattern (the paper's
// primary contribution).
#pragma once

#include "hlcs/pattern/application.hpp"
#include "hlcs/pattern/bridge.hpp"
#include "hlcs/pattern/bus_access_object.hpp"
#include "hlcs/pattern/bus_interface.hpp"
#include "hlcs/pattern/command.hpp"
#include "hlcs/pattern/functional_bus_interface.hpp"
#include "hlcs/pattern/lt_bus_interface.hpp"
#include "hlcs/pattern/pci_bus_interface.hpp"
#include "hlcs/pattern/rtl_channel.hpp"
#include "hlcs/pattern/simple_bus_interface.hpp"
#include "hlcs/pattern/rtl_pci_system.hpp"
#include "hlcs/pattern/synthesisable_channel.hpp"
