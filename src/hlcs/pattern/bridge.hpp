// DmaBridge -- the DMA-style bridge application promoted from
// examples/dma_bridge.cpp into the pattern library: it copies `blocks`
// blocks of `words` words from a source window to a destination window
// through any BusInterface's guarded-method port (read a block, write it
// back, repeat).  Because it only touches the AppPort it runs unchanged
// over the functional interface, the pin-accurate PCI interface, and the
// fabric's routed interface -- including destinations that live on a
// remote bus segment reached through bridges (hlcs/fabric).
//
// Every copied block is recorded in a verify::Transcript at the
// command/response boundary, so bridge traffic participates in the same
// behavioural-consistency checks as Application workloads.
#pragma once

#include <string>

#include "hlcs/pattern/bus_interface.hpp"
#include "hlcs/verify/transcript.hpp"

namespace hlcs::pattern {

class DmaBridge : public sim::Module {
public:
  DmaBridge(sim::Kernel& k, std::string name, BusInterface& iface,
            std::uint32_t src, std::uint32_t dst, std::size_t blocks,
            std::size_t words)
      : Module(k, std::move(name)),
        port_(iface.app_port(this->name())),
        src_(src),
        dst_(dst),
        blocks_(blocks),
        words_(words) {
    spawn("copy", [this]() { return run(); });
  }

  bool done() const { return done_; }
  std::uint64_t words_copied() const { return words_copied_; }
  const verify::Transcript& transcript() const { return transcript_; }

private:
  sim::Task run() {
    for (std::size_t b = 0; b < blocks_; ++b) {
      const auto off = static_cast<std::uint32_t>(b * words_ * 4);
      // Read a block from the source device...
      CommandType rd;
      rd.op = BusOp::ReadBurst;
      rd.addr = src_ + off;
      rd.count = words_;
      sim::Time issued = kernel().now();
      co_await port_.putCommand(rd);
      ResponseType block = co_await port_.appDataGet();
      transcript_.record(rd, block, issued, kernel().now());
      if (block.status != pci::PciResult::Ok) continue;
      // ...and write it to the destination device.
      CommandType wr;
      wr.op = BusOp::WriteBurst;
      wr.addr = dst_ + off;
      wr.data = block.data;
      issued = kernel().now();
      co_await port_.putCommand(wr);
      ResponseType ack = co_await port_.appDataGet();
      transcript_.record(wr, ack, issued, kernel().now());
      if (ack.status == pci::PciResult::Ok) words_copied_ += words_;
    }
    done_ = true;
  }

  BusAccessChannel::AppPort port_;
  std::uint32_t src_, dst_;
  std::size_t blocks_, words_;
  std::uint64_t words_copied_ = 0;
  verify::Transcript transcript_;
  bool done_ = false;
};

}  // namespace hlcs::pattern
