// A reusable application module: replays a command workload against any
// bus interface through the guarded-method AppPort and records a
// transcript.  This is the paper's "application performing a series of
// bus transactions ... modelled to act as a high-level stimuli
// generator"; because it only touches the AppPort, the same application
// binary-identically drives the functional interface, the pin-accurate
// interface, and the clocked-channel variants (Figure 3).
#pragma once

#include <string>
#include <vector>

#include "hlcs/pattern/bus_interface.hpp"
#include "hlcs/verify/transcript.hpp"

namespace hlcs::pattern {

class Application : public sim::Module {
public:
  Application(sim::Kernel& k, std::string name, BusInterface& iface,
              std::vector<CommandType> workload)
      : Module(k, std::move(name)),
        port_(iface.app_port(this->name())),
        workload_(std::move(workload)) {
    spawn("main", [this]() { return run(); });
  }

  bool done() const { return done_; }
  const verify::Transcript& transcript() const { return transcript_; }

  /// In-order command/response: issue, wait for the matching response,
  /// record, repeat.
  sim::Task run() {
    for (const CommandType& cmd : workload_) {
      const sim::Time issued = kernel().now();
      co_await port_.putCommand(cmd);
      ResponseType resp = co_await port_.appDataGet();
      transcript_.record(cmd, resp, issued, kernel().now());
    }
    done_ = true;
  }

private:
  BusAccessChannel::AppPort port_;
  std::vector<CommandType> workload_;
  verify::Transcript transcript_;
  bool done_ = false;
};

}  // namespace hlcs::pattern
