#include "hlcs/fabric/fabric.hpp"

#include <algorithm>
#include <sstream>

#include "hlcs/check/pci_rules.hpp"

namespace hlcs::fabric {

namespace {

constexpr std::uint32_t kWindowSize = 0x4000;   // per-target decode window
constexpr std::uint32_t kWindowStride = 0x10000;
constexpr std::uint32_t kFabricBase = 0x10000000;
constexpr std::uint32_t kDmaDstOffset = 0x1000;  // bridge copies land here
constexpr std::uint32_t kAppRegion = 0x2000;     // apps operate above this

/// Deterministic preload value for word `w` of global target `g`.
std::uint32_t pattern_word(std::uint64_t seed, std::size_t g, std::uint32_t w) {
  return static_cast<std::uint32_t>(
      sim::lane_seed(seed ^ 0xFABull, (static_cast<std::uint64_t>(g) << 32) | w));
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
}

}  // namespace

const char* to_string(Topology t) {
  switch (t) {
    case Topology::Ring: return "ring";
    case Topology::Star: return "star";
  }
  return "?";
}

// ---------------------------------------------------------------------
// EndpointRegistry

void EndpointRegistry::add(std::string name, std::uint32_t base,
                           std::uint32_t size, std::uint32_t segment) {
  HLCS_ASSERT(size > 0, "EndpointRegistry: zero-sized window");
  Endpoint e{std::move(name), base, size, segment};
  auto it = std::lower_bound(
      eps_.begin(), eps_.end(), e,
      [](const Endpoint& a, const Endpoint& b) { return a.base < b.base; });
  // Overlap against the neighbours in base order.
  if (it != eps_.end() && e.base + e.size > it->base) {
    fail("EndpointRegistry: window '" + e.name + "' overlaps '" + it->name +
         "'");
  }
  if (it != eps_.begin()) {
    const Endpoint& prev = *(it - 1);
    if (prev.base + prev.size > e.base) {
      fail("EndpointRegistry: window '" + e.name + "' overlaps '" + prev.name +
           "'");
    }
  }
  eps_.insert(it, std::move(e));
}

const Endpoint* EndpointRegistry::route(std::uint32_t addr) const {
  auto it = std::upper_bound(
      eps_.begin(), eps_.end(), addr,
      [](std::uint32_t a, const Endpoint& e) { return a < e.base; });
  if (it == eps_.begin()) return nullptr;
  const Endpoint& e = *(it - 1);
  return (addr >= e.base && addr - e.base < e.size) ? &e : nullptr;
}

std::string EndpointRegistry::dump() const {
  std::ostringstream os;
  for (const Endpoint& e : eps_) {
    os << "  " << std::hex << "0x" << e.base << "..0x" << e.base + e.size - 1
       << std::dec << " seg " << e.segment << " " << e.name << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------
// FabricBusInterface

FabricBusInterface::FabricBusInterface(sim::Kernel& k, std::string name,
                                       std::uint32_t segment,
                                       const EndpointRegistry& registry,
                                       pci::PciBus& bus,
                                       pci::PciArbiter& arbiter)
    : BusInterface(k, std::move(name)),
      segment_(segment),
      registry_(registry),
      bus_(bus),
      port_(arbiter.add_master(this->name())),
      master_(k, sub("master"), bus, *port_.req, *port_.gnt),
      resp_ev_(k, sub("resp_ev")) {
  spawn("serve", [this]() { return serve_forever(chan_.if_port("iface")); });
}

void FabricBusInterface::complete(std::uint64_t txn,
                                  pattern::ResponseType resp) {
  done_.emplace(txn, std::move(resp));
  resp_ev_.notify();
}

sim::Task FabricBusInterface::execute(const pattern::CommandType& cmd,
                                      pattern::ResponseType& resp) {
  const Endpoint* ep = registry_.route(cmd.addr);
  if (ep == nullptr || ep->segment == segment_) {
    // Local (or unmapped, which the local bus answers with a master
    // abort after the decode timeout): the PciBusInterface path.
    ++local_commands_;
    pci::PciTransaction t;
    t.cmd = pattern::to_pci_command(cmd.op);
    t.addr = cmd.addr;
    if (pattern::op_is_read(cmd.op)) {
      t.count = cmd.count;
    } else {
      t.data = cmd.data;
    }
    resp.issue_cycle = bus_.cycle();
    co_await master_.execute(t);
    resp.complete_cycle = bus_.cycle();
    resp.status = t.result;
    if (pattern::op_is_read(cmd.op) && resp.status == pci::PciResult::Ok) {
      resp.data = std::move(t.data);
    }
    co_return;
  }

  // Remote: tunnel the command to the owning segment and wait for the
  // response to find its way home.
  HLCS_ASSERT(route_ != nullptr, "FabricBusInterface: not connected");
  ++remote_commands_;
  const std::uint64_t txn = next_txn_++;
  FabricMsg m;
  m.kind = FabricMsg::Kind::Command;
  m.src_segment = segment_;
  m.dst_segment = ep->segment;
  m.txn = txn;
  m.cmd = cmd;
  route_(ep->segment).send(std::move(m));
  while (done_.find(txn) == done_.end()) co_await resp_ev_;
  auto it = done_.find(txn);
  const std::uint64_t id = resp.id;  // channel-assigned sequence number
  resp = std::move(it->second);
  resp.id = id;
  done_.erase(it);
}

// ---------------------------------------------------------------------
// BridgeUnit

BridgeUnit::BridgeUnit(sim::Kernel& k, std::string name, std::uint32_t segment,
                       pci::PciBus& bus, pci::PciArbiter& arbiter,
                       FabricBusInterface& iface)
    : Module(k, std::move(name)),
      segment_(segment),
      bus_(bus),
      port_(arbiter.add_master(this->name())),
      master_(k, sub("master"), bus, *port_.req, *port_.gnt),
      iface_(iface),
      exec_ev_(k, sub("exec_ev")) {
  spawn("exec", [this]() { return exec_loop(); });
}

void BridgeUnit::add_incoming(FabricLink& in) {
  FabricLink* link = &in;
  spawn("rx" + std::to_string(inputs_++),
        [this, link]() { return receive_loop(*link); });
}

sim::Task BridgeUnit::receive_loop(FabricLink& in) {
  for (;;) {
    while (!in.ready()) co_await in.arrival();
    FabricMsg m = in.pop();
    if (m.dst_segment != segment_) {
      // Through-traffic: forward without consuming simulated time.
      HLCS_ASSERT(route_ != nullptr, "BridgeUnit: not connected");
      route_(m.dst_segment).send(std::move(m));
      ++stats_.forwarded;
      continue;
    }
    if (m.kind == FabricMsg::Kind::Command) {
      exec_q_.push_back(std::move(m));
      exec_ev_.notify();
    } else {
      ++stats_.completed;
      iface_.complete(m.txn, std::move(m.resp));
    }
  }
}

sim::Task BridgeUnit::exec_loop() {
  for (;;) {
    while (exec_q_.empty()) co_await exec_ev_;
    FabricMsg m = std::move(exec_q_.front());
    exec_q_.pop_front();

    pci::PciTransaction t;
    t.cmd = pattern::to_pci_command(m.cmd.op);
    t.addr = m.cmd.addr;
    if (pattern::op_is_read(m.cmd.op)) {
      t.count = m.cmd.count;
    } else {
      t.data = m.cmd.data;
    }

    FabricMsg r;
    r.kind = FabricMsg::Kind::Response;
    r.src_segment = segment_;
    r.dst_segment = m.src_segment;
    r.txn = m.txn;
    r.resp.id = m.cmd.id;
    r.resp.issue_cycle = bus_.cycle();
    co_await master_.execute(t);
    r.resp.complete_cycle = bus_.cycle();
    r.resp.status = t.result;
    if (pattern::op_is_read(m.cmd.op) && t.result == pci::PciResult::Ok) {
      r.resp.data = std::move(t.data);
    }
    ++stats_.executed;
    HLCS_ASSERT(route_ != nullptr, "BridgeUnit: not connected");
    route_(m.src_segment).send(std::move(r));
  }
}

// ---------------------------------------------------------------------
// FabricSystem

FabricSystem::FabricSystem(FabricConfig cfg) : cfg_(cfg) {
  HLCS_ASSERT(cfg_.segments >= 1, "fabric: need at least one segment");
  HLCS_ASSERT(cfg_.masters >= 1, "fabric: need at least one master/segment");
  HLCS_ASSERT(cfg_.targets >= 1, "fabric: need at least one target/segment");
  HLCS_ASSERT(cfg_.blocks * cfg_.words * 4 <= kDmaDstOffset,
              "fabric: DMA copy exceeds its reserved window region");

  const std::size_t n = cfg_.segments;
  std::size_t s = cfg_.shards == 0 ? 1 : cfg_.shards;
  if (s > n) s = n;
  cfg_.shards = s;

  partition_.resize(n);
  for (std::size_t seg = 0; seg < n; ++seg) partition_[seg] = seg * s / n;

  kernels_.reserve(s);
  for (std::size_t j = 0; j < s; ++j) {
    kernels_.push_back(std::make_unique<sim::Kernel>());
  }

  segments_.resize(n);
  for (std::size_t seg = 0; seg < n; ++seg) build_segment(seg);
  build_links();
  for (std::size_t seg = 0; seg < n; ++seg) build_masters(seg);
  for (std::size_t seg = 0; seg < n; ++seg) preload(seg);

  std::vector<sim::Kernel*> ks;
  ks.reserve(kernels_.size());
  for (auto& k : kernels_) ks.push_back(k.get());
  std::vector<sim::LinkBase*> ls;
  ls.reserve(links_.size());
  for (auto& l : links_) ls.push_back(l.get());
  engine_ = std::make_unique<sim::ShardEngine>(
      std::move(ks), std::move(ls),
      sim::ShardEngine::Options{.window = sim::Time::zero(),
                                .threads = cfg_.threads});
}

FabricSystem::~FabricSystem() { flush_traces(); }

std::uint32_t FabricSystem::target_base(std::size_t seg, std::size_t t) const {
  const std::size_t g = seg * cfg_.targets + t;
  return kFabricBase + static_cast<std::uint32_t>(g) * kWindowStride;
}

void FabricSystem::build_segment(std::size_t s) {
  sim::Kernel& k = *kernels_[partition_[s]];
  auto seg = std::make_unique<Segment>();
  const std::string p = "s" + std::to_string(s);

  seg->clock = std::make_unique<sim::Clock>(k, p + ".clk", cfg_.clock_period);
  seg->bus = std::make_unique<pci::PciBus>(k, p + ".pci", *seg->clock);
  seg->arbiter = std::make_unique<pci::PciArbiter>(k, p + ".arb", *seg->bus);
  seg->monitor = std::make_unique<pci::PciMonitor>(k, p + ".mon", *seg->bus);

  for (std::size_t t = 0; t < cfg_.targets; ++t) {
    pci::TargetConfig tc;
    tc.base = target_base(s, t);
    tc.size = kWindowSize;
    tc.devsel = (t % 2 != 0) ? pci::DevselSpeed::Medium
                             : pci::DevselSpeed::Fast;
    tc.initial_wait = static_cast<unsigned>(t % 2);
    seg->targets.push_back(std::make_unique<pci::PciTarget>(
        k, p + ".t" + std::to_string(t), *seg->bus, tc));
    registry_.add(p + ".t" + std::to_string(t), tc.base, tc.size,
                  static_cast<std::uint32_t>(s));
  }

  seg->iface = std::make_unique<FabricBusInterface>(
      k, p + ".iface", static_cast<std::uint32_t>(s), registry_, *seg->bus,
      *seg->arbiter);
  seg->bridge = std::make_unique<BridgeUnit>(
      k, p + ".bridge", static_cast<std::uint32_t>(s), *seg->bus,
      *seg->arbiter, *seg->iface);

  if (cfg_.checkers) {
    seg->checker = std::make_unique<check::Monitor>(
        k, p + ".check", check::pci_rules(), *seg->clock,
        check::pci_probes(*seg->bus));
  }

  segments_[s] = std::move(seg);
}

void FabricSystem::build_links() {
  const std::size_t n = cfg_.segments;
  if (n < 2) return;
  auto kernel_of = [this](std::size_t seg) -> sim::Kernel& {
    return *kernels_[partition_[seg]];
  };

  if (cfg_.topo == Topology::Ring) {
    ring_out_.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t d = (s + 1) % n;
      links_.push_back(std::make_unique<FabricLink>(
          kernel_of(s), kernel_of(d),
          "link.s" + std::to_string(s) + ".s" + std::to_string(d),
          cfg_.bridge_latency));
      ring_out_[s] = links_.back().get();
    }
    for (std::size_t s = 0; s < n; ++s) {
      RouteFn route = [this, s](std::uint32_t) -> FabricLink& {
        return *ring_out_[s];
      };
      segments_[s]->iface->connect(route);
      segments_[s]->bridge->connect(route);
      segments_[s]->bridge->add_incoming(*ring_out_[(s + n - 1) % n]);
    }
    return;
  }

  // Star: segment 0 is the hub; every leaf has an uplink and a downlink.
  star_up_.resize(n);
  star_down_.resize(n);
  for (std::size_t s = 1; s < n; ++s) {
    links_.push_back(std::make_unique<FabricLink>(
        kernel_of(s), kernel_of(0), "up.s" + std::to_string(s),
        cfg_.bridge_latency));
    star_up_[s] = links_.back().get();
    links_.push_back(std::make_unique<FabricLink>(
        kernel_of(0), kernel_of(s), "down.s" + std::to_string(s),
        cfg_.bridge_latency));
    star_down_[s] = links_.back().get();
  }
  RouteFn hub_route = [this](std::uint32_t dst) -> FabricLink& {
    HLCS_ASSERT(dst != 0 && dst < star_down_.size(), "star: bad hub route");
    return *star_down_[dst];
  };
  segments_[0]->iface->connect(hub_route);
  segments_[0]->bridge->connect(hub_route);
  for (std::size_t s = 1; s < n; ++s) {
    segments_[0]->bridge->add_incoming(*star_up_[s]);
    RouteFn leaf_route = [this, s](std::uint32_t) -> FabricLink& {
      return *star_up_[s];
    };
    segments_[s]->iface->connect(leaf_route);
    segments_[s]->bridge->connect(leaf_route);
    segments_[s]->bridge->add_incoming(*star_down_[s]);
  }
}

void FabricSystem::build_masters(std::size_t s) {
  sim::Kernel& k = *kernels_[partition_[s]];
  Segment& seg = *segments_[s];
  const std::string p = "s" + std::to_string(s);
  const std::size_t n = cfg_.segments;

  // Master 0: a DMA channel copying from the local target 0 into the
  // reserved region of the NEXT segment's target 0 -- every copy (except
  // in a single-segment fabric) crosses the bridge fabric.
  const std::uint32_t src = target_base(s, 0);
  const std::uint32_t dst = target_base((s + 1) % n, 0) + kDmaDstOffset;
  seg.dma = std::make_unique<pattern::DmaBridge>(
      k, p + ".dma", *seg.iface, src, dst, cfg_.blocks, cfg_.words);

  // Masters 1..M-1: applications replaying deterministic random
  // workloads over the whole address map (local and remote windows).
  for (std::size_t m = 1; m < cfg_.masters; ++m) {
    sim::Xorshift rng(
        sim::lane_seed(cfg_.seed, 0x4A00 + s * cfg_.masters + m));
    std::vector<pattern::CommandType> wl;
    wl.reserve(cfg_.app_ops);
    for (std::size_t i = 0; i < cfg_.app_ops; ++i) {
      const std::size_t gt = rng.below(n * cfg_.targets);
      const std::uint32_t base =
          target_base(gt / cfg_.targets, gt % cfg_.targets);
      const std::uint32_t off =
          kAppRegion + 4 * static_cast<std::uint32_t>(rng.below(0x780));
      const std::size_t burst = 1 + rng.below(8);
      pattern::CommandType c;
      c.addr = base + off;
      switch (rng.below(4)) {
        case 0:
          c.op = pattern::BusOp::Write;
          c.data = {static_cast<std::uint32_t>(rng.next())};
          break;
        case 1:
          c.op = pattern::BusOp::Read;
          c.count = 1;
          break;
        case 2:
          c.op = pattern::BusOp::WriteBurst;
          for (std::size_t w = 0; w < burst; ++w) {
            c.data.push_back(static_cast<std::uint32_t>(rng.next()));
          }
          break;
        default:
          c.op = pattern::BusOp::ReadBurst;
          c.count = burst;
          break;
      }
      wl.push_back(std::move(c));
    }
    seg.apps.push_back(std::make_unique<pattern::Application>(
        k, p + ".m" + std::to_string(m), *seg.iface, std::move(wl)));
  }
}

void FabricSystem::preload(std::size_t s) {
  for (std::size_t t = 0; t < cfg_.targets; ++t) {
    const std::size_t g = s * cfg_.targets + t;
    pci::PciMemory& mem = segments_[s]->targets[t]->memory();
    for (std::uint32_t w = 0; w < kDmaDstOffset / 4; ++w) {
      mem.write_word(w * 4, pattern_word(cfg_.seed, g, w));
    }
  }
}

bool FabricSystem::all_done() const {
  for (const auto& seg : segments_) {
    if (seg->dma && !seg->dma->done()) return false;
    for (const auto& app : seg->apps) {
      if (!app->done()) return false;
    }
  }
  return true;
}

std::string FabricSystem::transcript() const {
  std::string out;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const Segment& seg = *segments_[s];
    if (seg.dma) {
      out += "== s" + std::to_string(s) + ".dma\n";
      out += seg.dma->transcript().to_string();
    }
    for (std::size_t m = 0; m < seg.apps.size(); ++m) {
      out += "== s" + std::to_string(s) + ".m" + std::to_string(m + 1) + "\n";
      out += seg.apps[m]->transcript().to_string();
    }
  }
  return out;
}

std::uint64_t FabricSystem::state_digest() const {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& seg : segments_) {
    for (const auto& t : seg->targets) {
      const pci::PciMemory& mem = t->memory();
      for (std::uint32_t off = 0; off < mem.size(); off += 4) {
        fnv_mix(h, mem.read_word(off));
      }
    }
  }
  for (char c : transcript()) fnv_mix(h, static_cast<unsigned char>(c));
  return h;
}

std::size_t FabricSystem::copy_errors() const {
  const std::size_t n = cfg_.segments;
  std::size_t errors = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (!segments_[s]->dma) continue;
    const std::size_t d = (s + 1) % n;
    const pci::PciMemory& dst = segments_[d]->targets[0]->memory();
    const std::size_t g = s * cfg_.targets;  // source = target 0 of s
    for (std::uint32_t w = 0; w < cfg_.blocks * cfg_.words; ++w) {
      if (dst.read_word(kDmaDstOffset + w * 4) !=
          pattern_word(cfg_.seed, g, w)) {
        ++errors;
      }
    }
  }
  return errors;
}

std::size_t FabricSystem::violations() const {
  std::size_t v = 0;
  for (const auto& seg : segments_) v += seg->monitor->violations().size();
  return v;
}

std::uint64_t FabricSystem::check_fails() const {
  std::uint64_t f = 0;
  for (const auto& seg : segments_) {
    if (!seg->checker) continue;
    for (const auto& p : seg->checker->stats().props) f += p.fails;
  }
  return f;
}

std::string FabricSystem::dump_topology() const {
  std::ostringstream os;
  os << "fabric: topo=" << to_string(cfg_.topo)
     << " segments=" << cfg_.segments << " masters=" << cfg_.masters
     << " targets=" << cfg_.targets << " shards=" << cfg_.shards
     << " threads=" << engine_->threads() << "\n";
  os << "timing: clock=" << cfg_.clock_period.to_string()
     << " bridge_latency=" << cfg_.bridge_latency.to_string()
     << " window=" << engine_->window().to_string() << "\n";
  os << "partition:";
  for (std::size_t j = 0; j < cfg_.shards; ++j) {
    os << " shard" << j << "[";
    bool first = true;
    for (std::size_t s = 0; s < cfg_.segments; ++s) {
      if (partition_[s] != j) continue;
      if (!first) os << " ";
      os << "s" << s;
      first = false;
    }
    os << "]";
  }
  os << "\n";
  for (std::size_t s = 0; s < cfg_.segments; ++s) {
    const Segment& seg = *segments_[s];
    os << "segment s" << s << " (shard " << partition_[s] << "): "
       << seg.targets.size() << " targets, "
       << (seg.dma ? 1 : 0) + seg.apps.size() << " masters";
    if (seg.dma) {
      os << ", dma -> s" << (s + 1) % cfg_.segments;
    }
    os << "\n";
  }
  for (const auto& l : links_) {
    os << "link " << l->name() << " latency " << l->latency().to_string()
       << "\n";
  }
  os << "endpoints:\n" << registry_.dump();
  return os.str();
}

std::vector<std::string> FabricSystem::attach_traces(const std::string& dir) {
  HLCS_ASSERT(traces_.empty(), "fabric: traces already attached");
  std::vector<std::string> paths;
  for (std::size_t j = 0; j < kernels_.size(); ++j) {
    auto trace = std::make_unique<sim::Trace>(dir + "/shard" +
                                              std::to_string(j) + ".vcd");
    for (std::size_t s = 0; s < cfg_.segments; ++s) {
      if (partition_[s] == j) segments_[s]->bus->trace_all(*trace);
    }
    kernels_[j]->attach_trace(*trace);
    paths.push_back(trace->path());
    traces_.push_back(std::move(trace));
  }
  return paths;
}

void FabricSystem::flush_traces() {
  for (auto& t : traces_) t->flush();
}

}  // namespace hlcs::fabric
