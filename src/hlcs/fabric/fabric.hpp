// hlcs::fabric -- a generator for large hierarchical systems built from
// the library elements of the pattern (paper Sec. 4: the methodology is
// only interesting if it scales past one bus): N PCI bus segments, each
// with its own clock, arbiter, monitor, targets and masters, joined by
// bridges into a ring or star fabric.  Applications keep talking to one
// guarded-method bus interface; the fabric interface routes by address
// through an EndpointRegistry and transparently tunnels remote commands
// over fixed-latency bridge links -- the communication refinement story
// of Figure 3 applied to a whole topology instead of one interface.
//
// The same links that carry bridge traffic are the sharding boundaries:
// FabricSystem partitions segments into contiguous shard blocks, puts
// each block on its own sim::Kernel, and drives them with a
// sim::ShardEngine whose conservative lookahead is the minimum bridge
// latency.  Observable behaviour (transcripts, memory images, check
// verdicts, waveforms) is bit-identical at every shard and thread
// count -- see sim/shard.hpp for the argument.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hlcs/check/monitor.hpp"
#include "hlcs/pattern/application.hpp"
#include "hlcs/pattern/bridge.hpp"
#include "hlcs/pattern/pci_bus_interface.hpp"
#include "hlcs/pci/pci.hpp"
#include "hlcs/sim/shard.hpp"
#include "hlcs/sim/sim.hpp"

namespace hlcs::fabric {

// ---------------------------------------------------------------------
// Messages and links

/// What travels between segments: a tunnelled guarded-method command on
/// its way to the segment that decodes the address, or its response on
/// the way back.  dst_segment always names the consuming segment, so
/// every hop applies the same rule: mine ? consume : forward.
struct FabricMsg {
  enum class Kind : std::uint8_t { Command, Response };
  Kind kind = Kind::Command;
  std::uint32_t src_segment = 0;  ///< segment of the issuing interface
  std::uint32_t dst_segment = 0;  ///< segment that consumes this message
  std::uint64_t txn = 0;          ///< issuer-local transaction id
  pattern::CommandType cmd;       ///< valid when kind == Command
  pattern::ResponseType resp;     ///< valid when kind == Response
};

using FabricLink = sim::Link<FabricMsg>;

/// Maps a destination segment to the outgoing link a message must take
/// from here (ring: the one successor link; star hub: the downlink of
/// the destination; star leaf: the uplink).
using RouteFn = std::function<FabricLink&(std::uint32_t dst_segment)>;

// ---------------------------------------------------------------------
// Endpoint registry

/// One decoded address window somewhere in the fabric.
struct Endpoint {
  std::string name;
  std::uint32_t base = 0;
  std::uint32_t size = 0;
  std::uint32_t segment = 0;
};

/// Dynamic endpoint registration with address-based routing: targets
/// register their windows as they are instantiated; interfaces route
/// every command by address at issue time.  Windows must not overlap.
class EndpointRegistry {
public:
  /// Register a window; rejects overlaps and zero-sized windows.
  void add(std::string name, std::uint32_t base, std::uint32_t size,
           std::uint32_t segment);

  /// The endpoint decoding `addr`, or nullptr when unmapped.
  const Endpoint* route(std::uint32_t addr) const;

  const std::vector<Endpoint>& endpoints() const { return eps_; }

  /// Deterministic one-line-per-endpoint dump (base-sorted).
  std::string dump() const;

private:
  std::vector<Endpoint> eps_;  // sorted by base
};

// ---------------------------------------------------------------------
// Per-segment elements

/// The fabric's bus-interface library element: behaves exactly like
/// PciBusInterface for addresses decoded on its own segment, and tunnels
/// everything else through the bridge fabric.  Applications cannot tell
/// the difference -- same AppPort, same command/response contract.
class FabricBusInterface final : public pattern::BusInterface {
public:
  FabricBusInterface(sim::Kernel& k, std::string name, std::uint32_t segment,
                     const EndpointRegistry& registry, pci::PciBus& bus,
                     pci::PciArbiter& arbiter);

  /// Wire the outbound routing function (links exist only after every
  /// segment does).  Must be called before the simulation runs if the
  /// fabric has more than one segment.
  void connect(RouteFn route) { route_ = std::move(route); }

  /// Called by the local BridgeUnit when a response message for
  /// transaction `txn` arrives back home.
  void complete(std::uint64_t txn, pattern::ResponseType resp);

  std::uint64_t local_commands() const { return local_commands_; }
  std::uint64_t remote_commands() const { return remote_commands_; }

protected:
  sim::Task execute(const pattern::CommandType& cmd,
                    pattern::ResponseType& resp) override;

private:
  std::uint32_t segment_;
  const EndpointRegistry& registry_;
  pci::PciBus& bus_;
  pci::PciArbiter::Port port_;
  pci::PciMaster master_;
  RouteFn route_;
  std::uint64_t next_txn_ = 1;
  std::map<std::uint64_t, pattern::ResponseType> done_;
  sim::Event resp_ev_;
  std::uint64_t local_commands_ = 0;
  std::uint64_t remote_commands_ = 0;
};

struct BridgeStats {
  std::uint64_t forwarded = 0;  ///< messages passed through to another hop
  std::uint64_t executed = 0;   ///< remote commands run on the local bus
  std::uint64_t completed = 0;  ///< responses handed to the local interface
};

/// The segment's port into the fabric: receives messages from incoming
/// links, forwards the ones addressed elsewhere, executes inbound
/// commands on the local bus through its own PCI master (the "second
/// master" of every segment) and ships responses home.  Reception never
/// blocks behind execution, so through-traffic is not delayed by a long
/// local tenure.
class BridgeUnit final : public sim::Module {
public:
  BridgeUnit(sim::Kernel& k, std::string name, std::uint32_t segment,
             pci::PciBus& bus, pci::PciArbiter& arbiter,
             FabricBusInterface& iface);

  void connect(RouteFn route) { route_ = std::move(route); }

  /// Attach an incoming link; spawns a receive process per link (a star
  /// hub has one per leaf).
  void add_incoming(FabricLink& in);

  const BridgeStats& stats() const { return stats_; }

private:
  sim::Task receive_loop(FabricLink& in);
  sim::Task exec_loop();

  std::uint32_t segment_;
  pci::PciBus& bus_;
  pci::PciArbiter::Port port_;
  pci::PciMaster master_;
  FabricBusInterface& iface_;
  RouteFn route_;
  std::deque<FabricMsg> exec_q_;
  sim::Event exec_ev_;
  BridgeStats stats_;
  std::size_t inputs_ = 0;
};

// ---------------------------------------------------------------------
// Topology generator

enum class Topology : std::uint8_t { Ring, Star };

const char* to_string(Topology t);

struct FabricConfig {
  Topology topo = Topology::Ring;
  std::size_t segments = 4;
  std::size_t masters = 2;  ///< per segment; master 0 is a DMA bridge
                            ///  channel copying to the next segment,
                            ///  the rest replay random workloads
  std::size_t targets = 2;  ///< per segment
  sim::Time clock_period = sim::Time::ps(30'000);    ///< 33 MHz PCI
  sim::Time bridge_latency = sim::Time::ps(120'000); ///< per fabric hop
  std::size_t blocks = 2;   ///< DMA channel: blocks per copy
  std::size_t words = 8;    ///< DMA channel: words per block
  std::size_t app_ops = 12; ///< commands per application master
  std::uint64_t seed = 0xB001;
  bool checkers = false;    ///< attach a check::Monitor per segment
  std::size_t shards = 1;   ///< kernel partitions; clamped to segments
  unsigned threads = 1;     ///< ShardEngine worker threads (0 = hw)
};

/// One generated bus segment and everything on it.
struct Segment {
  std::unique_ptr<sim::Clock> clock;
  std::unique_ptr<pci::PciBus> bus;
  std::unique_ptr<pci::PciArbiter> arbiter;
  std::unique_ptr<pci::PciMonitor> monitor;
  std::vector<std::unique_ptr<pci::PciTarget>> targets;
  std::unique_ptr<FabricBusInterface> iface;
  std::unique_ptr<BridgeUnit> bridge;
  std::unique_ptr<check::Monitor> checker;
  std::unique_ptr<pattern::DmaBridge> dma;
  std::vector<std::unique_ptr<pattern::Application>> apps;
};

/// The generated system: builds the whole topology from a FabricConfig,
/// partitions it across shard kernels, and runs it on a ShardEngine.
class FabricSystem {
public:
  explicit FabricSystem(FabricConfig cfg);
  ~FabricSystem();
  FabricSystem(const FabricSystem&) = delete;
  FabricSystem& operator=(const FabricSystem&) = delete;

  void run_for(sim::Time t) { engine_->run_for(t); }
  sim::Time now() const { return engine_->now(); }

  const FabricConfig& config() const { return cfg_; }
  const EndpointRegistry& registry() const { return registry_; }
  const Segment& segment(std::size_t s) const { return *segments_[s]; }
  std::size_t shard_of(std::size_t seg) const { return partition_[seg]; }
  sim::ShardEngine& engine() { return *engine_; }
  const sim::ShardEngine& engine() const { return *engine_; }

  /// Every DMA channel and application has finished its workload.
  bool all_done() const;

  /// Canonical merged transcript: segments in index order, the DMA
  /// channel then the applications of each.  Identical across shard and
  /// thread counts (the acceptance gate).
  std::string transcript() const;

  /// FNV-1a digest over every target memory image and every transcript.
  std::uint64_t state_digest() const;

  /// DMA copy errors across all segments (0 when every channel landed
  /// its blocks in the destination window).
  std::size_t copy_errors() const;

  /// Pin-level protocol violations summed over all segment monitors.
  std::size_t violations() const;

  /// Temporal-property failures summed over all segment checkers
  /// (0 when cfg.checkers is false).
  std::uint64_t check_fails() const;

  /// Deterministic topology dump: config, partition, per-segment
  /// inventory, links, endpoint registry.
  std::string dump_topology() const;

  /// Attach one VCD trace per shard under `dir` (shard<N>.vcd); every
  /// bus of the shard's segments is registered.  Call before running.
  /// Returns the file paths in shard order.
  std::vector<std::string> attach_traces(const std::string& dir);

  /// Flush attached traces (also happens on destruction).
  void flush_traces();

private:
  void build_segment(std::size_t s);
  void build_links();
  void build_masters(std::size_t s);
  void preload(std::size_t s);

  std::uint32_t target_base(std::size_t seg, std::size_t t) const;

  FabricConfig cfg_;
  EndpointRegistry registry_;
  std::vector<std::size_t> partition_;             // segment -> shard
  std::vector<std::unique_ptr<sim::Kernel>> kernels_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<FabricLink>> links_;
  // Ring: out link per segment.  Star: up_[s] (s>0) and down_[s] (s>0).
  std::vector<FabricLink*> ring_out_;
  std::vector<FabricLink*> star_up_;
  std::vector<FabricLink*> star_down_;
  std::unique_ptr<sim::ShardEngine> engine_;
  std::vector<std::unique_ptr<sim::Trace>> traces_;
};

}  // namespace hlcs::fabric
