// SharedObject<T> -- the SystemC+ / OSSS "global object".
//
// Semantics, from the paper (Sec. 2):
//   * All connected instances share one common state space.  Here the
//     shared state is the single T owned by the SharedObject; each module
//     connects by creating a Client, which is its in-module access point.
//   * Guarded methods: a call carries a Boolean guard over the object
//     state.  "If the condition is evaluated true at the time of the
//     method invocation then the call is processed; otherwise, the caller
//     is suspended until the condition becomes true."
//   * Concurrent calls are queued and scheduled by a user-defined
//     algorithm (see hlcs/osss/arbitration.hpp).
//
// Two service modes:
//   * Untimed: grants happen in delta cycles at the current simulated
//     time -- the high-level functional model ("function call" view).
//   * Clocked: bound to a Clock; at most ONE eligible call is granted per
//     rising edge -- matching the paper's observation that the methods
//     are "implemented with synchronous logic" and that completion time
//     depends on the number of concurrent processes (the future-work
//     experiment FW1 measures exactly this).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hlcs/osss/arbitration.hpp"
#include "hlcs/osss/histogram.hpp"
#include "hlcs/sim/clock.hpp"
#include "hlcs/sim/kernel.hpp"
#include "hlcs/sim/module.hpp"

namespace hlcs::osss {

struct ClientStats {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t granted = 0;
  std::uint64_t wait_total = 0;  ///< cycles (clocked) / deltas-grants (untimed)
  std::uint64_t wait_max = 0;
  // --- contention instrumentation (hlcs/contend) ---------------------
  /// Grant latency (enqueue -> grant) distribution, log2 buckets.
  Log2Histogram latency;
  /// Wait attribution: ticks spent queued while the guard was FALSE
  /// (the application's semantics held the call back) ...
  std::uint64_t guard_blocked = 0;
  /// ... vs ticks spent eligible (guard TRUE) but not chosen -- the
  /// share of the wait the arbitration policy is responsible for.
  std::uint64_t arb_blocked = 0;
  /// Worst-case starvation gap: the longest streak of consecutive ticks
  /// one call stayed eligible without being granted.  This is the
  /// quantity the hlcs::check no_starvation bound constrains.
  std::uint64_t starve_max = 0;
};

struct SharedObjectStats {
  std::uint64_t grants = 0;
  std::uint64_t try_call_hits = 0;
  std::uint64_t try_call_misses = 0;
  // Allocation observability for the granted-call fast path: an enqueue
  // that fits the recycled pending-slot pool is a hit; one that has to
  // grow the pool is a miss.  In steady state misses stay flat -- the
  // pool capacity converges on the contention high-water mark and every
  // further call() is allocation-free (docs/PERF.md).
  std::uint64_t pending_pool_hits = 0;
  std::uint64_t pending_pool_misses = 0;
  /// Guarded calls accounted through batched quantum commits (the
  /// loosely-timed fast path, hlcs/tlm/lt.hpp) and the number of commit
  /// episodes that carried them.  Batched calls are also counted in
  /// `grants` and in the owning client's calls/granted/latency, so the
  /// contention instrumentation stays meaningful under LT execution.
  std::uint64_t batched_calls = 0;
  std::uint64_t batched_commits = 0;
  /// Queue depth sampled at every busy service step (clocked: each
  /// rising edge with pending calls; untimed: each service delta).
  Log2Histogram depth;
  std::vector<ClientStats> clients;
};

template <class T>
class SharedObject : public sim::Module {
  /// Type-erased pending call.  The record itself lives in the caller's
  /// coroutine frame (it IS the awaiter), so queuing a call never
  /// allocates; guard/execute are reached through plain function
  /// pointers installed by the concrete awaiter -- no vtable, no
  /// virtual destructor, trivially destructible.
  struct PendingBase {
    std::size_t client = 0;
    std::uint64_t seq = 0;
    int priority = 0;
    std::uint64_t enq_tick = 0;
    std::uint64_t obs_tick = 0;       ///< last tick attribution observed
    std::uint64_t elig_streak = 0;    ///< contiguous ticks eligible-but-waiting
    std::coroutine_handle<> waiter;
    bool (*guard_fn)(const PendingBase*, const T&) = nullptr;
    void (*exec_fn)(PendingBase*, T&) = nullptr;
    bool guard_ok(const T& s) const { return guard_fn(this, s); }
    void execute(T& s) { exec_fn(this, s); }
  };

public:
  /// Untimed (functional) global object.
  SharedObject(sim::Kernel& k, std::string name,
               std::unique_ptr<ArbitrationPolicy> policy, T initial = T{})
      : Module(k, std::move(name)),
        state_(std::move(initial)),
        policy_(std::move(policy)),
        service_ev_(k, sub("service")) {
    HLCS_ASSERT(policy_ != nullptr, "SharedObject requires a policy");
    sim::MethodProcess& m =
        method("serve", &SharedObject::serve_thunk, this,
               /*initial_trigger=*/false);
    service_ev_.add_static(m);
  }

  /// Clocked (synchronous) global object: one grant per rising edge.
  SharedObject(sim::Kernel& k, std::string name, sim::Clock& clk,
               std::unique_ptr<ArbitrationPolicy> policy, T initial = T{})
      : Module(k, std::move(name)),
        state_(std::move(initial)),
        policy_(std::move(policy)),
        clock_(&clk),
        service_ev_(k, sub("service")) {
    HLCS_ASSERT(policy_ != nullptr, "SharedObject requires a policy");
    sim::MethodProcess& m =
        method("serve", &SharedObject::serve_thunk, this,
               /*initial_trigger=*/false);
    clk.posedge().add_static(m);
  }

  /// A module-side connection to the shared state space.  Creating a
  /// Client corresponds to instantiating the global object in a module
  /// and connecting it (paper Fig. 1).
  class Client {
  public:
    Client() = default;

    /// Guarded method call, blocking (awaitable).  `guard` is evaluated
    /// over the object state; `fn` executes atomically in the grant
    /// moment and its result is returned to the caller.
    template <class Guard, class Fn>
    auto call(Guard guard, Fn fn) const {
      using R = std::invoke_result_t<Fn, T&>;
      HLCS_ASSERT(obj_ != nullptr, "call through unconnected Client");
      return CallAwaiter<Guard, Fn, R>{*obj_, id_, priority_, std::move(guard),
                                       std::move(fn)};
    }

    /// Unguarded convenience: guard is always true (e.g. reset()).
    template <class Fn>
    auto call(Fn fn) const {
      return call([](const T&) { return true; }, std::move(fn));
    }

    /// Non-blocking probe: executes immediately iff the guard holds *and*
    /// no queued call is waiting (so it cannot starve blocked callers).
    /// Returns nullopt otherwise.
    template <class Guard, class Fn>
    auto try_call(Guard guard, Fn fn) const
        -> std::optional<std::invoke_result_t<Fn, T&>> {
      HLCS_ASSERT(obj_ != nullptr, "try_call through unconnected Client");
      return obj_->try_call_impl(id_, std::move(guard), std::move(fn));
    }

    /// Batched guarded-method episode (loosely-timed quantum commit):
    /// account `calls` zero-wait grants for this client and apply `fn`
    /// once over the state.  See SharedObject::commit_batch.
    template <class Fn>
    void commit_batch(std::uint64_t calls, Fn fn) const {
      HLCS_ASSERT(obj_ != nullptr, "commit_batch through unconnected Client");
      obj_->commit_batch(id_, calls, std::move(fn));
    }

    std::size_t id() const { return id_; }
    bool connected() const { return obj_ != nullptr; }

  private:
    friend class SharedObject;
    Client(SharedObject* o, std::size_t id, int priority)
        : obj_(o), id_(id), priority_(priority) {}
    SharedObject* obj_ = nullptr;
    std::size_t id_ = 0;
    int priority_ = 0;
  };

  Client make_client(std::string client_name, int priority = 0) {
    ClientStats cs;
    cs.name = std::move(client_name);
    stats_.clients.push_back(std::move(cs));
    return Client(this, stats_.clients.size() - 1, priority);
  }

  /// Batched guarded-method episode -- the loosely-timed fast path
  /// (hlcs/tlm/lt.hpp).  A quantum's worth of calls accumulated by
  /// `client_id` is committed as ONE arbitration episode: `fn` mutates
  /// the state once on behalf of all of them, and the client's
  /// call/grant counters and latency histogram absorb `calls` zero-wait
  /// grants (the calls never waited -- they ran ahead of kernel time).
  /// Queued calls, if any, observe the state change atomically; queued
  /// calls whose guards the mutation satisfied are re-serviced exactly
  /// as after a regular grant.
  template <class Fn>
  void commit_batch(std::size_t client_id, std::uint64_t calls, Fn fn) {
    HLCS_ASSERT(client_id < stats_.clients.size(),
                "commit_batch: unknown client");
    fn(state_);
    stats_.grants += calls;
    stats_.batched_calls += calls;
    stats_.batched_commits++;
    ClientStats& cs = stats_.clients[client_id];
    cs.calls += calls;
    cs.granted += calls;
    cs.latency.record_n(0, calls);
    // Only nudge the service loop when the mutation actually unblocked
    // someone: an idle-guard wakeup would spend a delta per quantum and
    // defeat the kernel time-warp the LT engine relies on.
    if (!clocked() && has_eligible()) service_ev_.notify_delta();
  }

  /// Read-only inspection of the shared state, outside arbitration.
  /// For monitors and tests; models a combinational observation port.
  const T& peek() const { return state_; }

  bool clocked() const { return clock_ != nullptr; }
  std::size_t pending() const { return queue_.size(); }
  const SharedObjectStats& stats() const { return stats_; }

  // Combinational observation ports for property monitors
  // (hlcs/check/object_rules.hpp).
  std::uint64_t grant_count() const { return stats_.grants; }
  /// Whether the most recent grant's guard held over the object state at
  /// the dispatch moment (re-checked just before execution).
  bool last_grant_guard_held() const { return last_grant_guard_held_; }
  /// Any queued call whose guard holds over the current state.
  bool has_eligible() const {
    for (const PendingBase* p : queue_) {
      if (p->guard_ok(state_)) return true;
    }
    return false;
  }
  /// Longest contiguous eligible-but-waiting streak among the calls
  /// still queued right now, in ticks -- the live starvation gap the
  /// policy-fairness pack (hlcs/check/object_rules.hpp) bounds.  Streaks
  /// update at service steps, so this reads the state as of the last
  /// step on the current tick.
  std::uint64_t max_eligible_wait() const {
    std::uint64_t worst = 0;
    for (const PendingBase* p : queue_) {
      if (p->guard_ok(state_) && p->elig_streak > worst) {
        worst = p->elig_streak;
      }
    }
    return worst;
  }

private:
  template <class Guard, class Fn, class R>
  struct CallAwaiter final : PendingBase {
    SharedObject& obj;
    Guard guard;
    Fn fn;
    // Result storage lives in the caller's coroutine frame.
    std::conditional_t<std::is_void_v<R>, char, std::optional<R>> result{};

    CallAwaiter(SharedObject& o, std::size_t client_id, int prio, Guard g,
                Fn f)
        : obj(o), guard(std::move(g)), fn(std::move(f)) {
      this->client = client_id;
      this->priority = prio;
      // Captureless-lambda thunks recover the concrete awaiter type; the
      // cast is exact because `this` is the only object these pointers
      // are ever installed on.
      this->guard_fn = [](const PendingBase* p, const T& s) {
        return static_cast<const CallAwaiter*>(p)->guard(s);
      };
      this->exec_fn = [](PendingBase* p, T& s) {
        auto* self = static_cast<CallAwaiter*>(p);
        if constexpr (std::is_void_v<R>) {
          self->fn(s);
        } else {
          self->result = self->fn(s);
        }
      };
    }

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      this->waiter = h;
      obj.enqueue(*this);
    }
    R await_resume() {
      if constexpr (!std::is_void_v<R>) {
        return std::move(*result);
      }
    }
  };

  void enqueue(PendingBase& p) {
    p.seq = next_seq_++;
    p.enq_tick = tick();
    p.obs_tick = p.enq_tick;
    p.elig_streak = 0;
    stats_.clients[p.client].calls++;
    if (queue_.size() < queue_.capacity()) {
      stats_.pending_pool_hits++;
    } else {
      stats_.pending_pool_misses++;
    }
    queue_.push_back(&p);
    if (!clocked()) service_ev_.notify_delta();
  }

  std::uint64_t tick() const {
    return clocked() ? clock_->cycles() : kernel().stats().deltas;
  }

  static void serve_thunk(void* self) {
    static_cast<SharedObject*>(self)->serve_one();
  }

  /// One service step: grant at most one eligible queued call.  The
  /// eligibility scan reuses member scratch buffers, so a grant does no
  /// heap work once the buffers reached the contention high-water mark.
  void serve_one() {
    if (queue_.empty()) return;
    stats_.depth.record(queue_.size());
    // Collect eligible requests.  The same pass attributes the ticks
    // elapsed since each call was last observed: while the guard is
    // false the application is blocking the call (guard_blocked); while
    // it is true the arbitration policy is (arb_blocked), and the
    // contiguous eligible streak tracks the starvation gap.
    eligible_.clear();
    eligible_pos_.clear();
    const std::uint64_t now_tick = tick();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      PendingBase* p = queue_[i];
      const std::uint64_t delta = now_tick - p->obs_tick;
      p->obs_tick = now_tick;
      ClientStats& cs = stats_.clients[p->client];
      if (p->guard_ok(state_)) {
        cs.arb_blocked += delta;
        p->elig_streak += delta;
        if (p->elig_streak > cs.starve_max) cs.starve_max = p->elig_streak;
        eligible_.push_back(RequestInfo{p->client, p->seq, p->priority,
                                        now_tick - p->enq_tick,
                                        p->elig_streak});
        eligible_pos_.push_back(i);
      } else {
        cs.guard_blocked += delta;
        p->elig_streak = 0;
      }
    }
    if (eligible_.empty()) return;
    const std::size_t chosen = policy_->pick(eligible_);
    const std::size_t qi = eligible_pos_[chosen];
    PendingBase* p = queue_[qi];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));

    last_grant_guard_held_ = p->guard_ok(state_);
    p->execute(state_);
    stats_.grants++;
    ClientStats& cs = stats_.clients[p->client];
    cs.granted++;
    const std::uint64_t waited = now_tick - p->enq_tick;
    cs.wait_total += waited;
    if (waited > cs.wait_max) cs.wait_max = waited;
    cs.latency.record(waited);

    kernel().make_runnable(p->waiter);
    // Untimed mode: further grants happen in subsequent deltas so every
    // grant is an atomic step; the state change may also have unblocked
    // guards.  Clocked mode re-evaluates on the next edge anyway.
    if (!clocked() && !queue_.empty()) service_ev_.notify_delta();
  }

  template <class Guard, class Fn>
  auto try_call_impl(std::size_t client_id, Guard guard, Fn fn)
      -> std::optional<std::invoke_result_t<Fn, T&>> {
    using R = std::invoke_result_t<Fn, T&>;
    static_assert(!std::is_void_v<R>,
                  "try_call requires a non-void result; return a status");
    if (!queue_.empty() || !guard(static_cast<const T&>(state_))) {
      stats_.try_call_misses++;
      return std::nullopt;
    }
    stats_.try_call_hits++;
    stats_.grants++;
    last_grant_guard_held_ = true;  // guard checked above
    if (client_id < stats_.clients.size()) {
      stats_.clients[client_id].calls++;
      stats_.clients[client_id].granted++;
    }
    return fn(state_);
  }

  T state_;
  std::unique_ptr<ArbitrationPolicy> policy_;
  sim::Clock* clock_ = nullptr;
  sim::Event service_ev_;
  // Pending-slot pool: the vector's capacity IS the slab -- call records
  // live in caller coroutine frames, so pointers are all that is pooled,
  // and capacity is never released while the object lives.
  std::vector<PendingBase*> queue_;
  std::vector<RequestInfo> eligible_;
  std::vector<std::size_t> eligible_pos_;
  std::uint64_t next_seq_ = 0;
  bool last_grant_guard_held_ = true;
  SharedObjectStats stats_;
};

}  // namespace hlcs::osss
