// A bounded FIFO intended as the state of a SharedObject: producers call
// push() guarded on !full(), consumers call pop() guarded on !empty().
// This is the prototypical guarded-method communication structure and is
// reused by the bus-interface pattern's command path.
#pragma once

#include <cstddef>
#include <deque>

#include "hlcs/sim/assert.hpp"

namespace hlcs::osss {

template <class V>
class GuardedFifo {
public:
  explicit GuardedFifo(std::size_t capacity = 1) : capacity_(capacity) {
    HLCS_ASSERT(capacity >= 1, "GuardedFifo capacity must be >= 1");
  }

  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  void push(V v) {
    HLCS_ASSERT(!full(), "push on full GuardedFifo (guard violated)");
    items_.push_back(std::move(v));
  }

  V pop() {
    HLCS_ASSERT(!empty(), "pop on empty GuardedFifo (guard violated)");
    V v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  const V& front() const {
    HLCS_ASSERT(!empty(), "front on empty GuardedFifo");
    return items_.front();
  }

  void clear() { items_.clear(); }

private:
  std::size_t capacity_;
  std::deque<V> items_;
};

}  // namespace hlcs::osss
