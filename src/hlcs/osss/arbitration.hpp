// Arbitration policies for concurrent guarded-method calls.
//
// The paper (Sec. 2): "if different modules invoke at the same time the
// execution of a guarded method of a shared global object, the calls are
// queued and scheduled according to a user defined algorithm."  This file
// provides the standard algorithms plus a hook for fully user-defined
// ones; the synthesiser accepts the same policy kinds (hlcs/synth).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hlcs/sim/assert.hpp"
#include "hlcs/sim/random.hpp"

namespace hlcs::osss {

/// What a policy sees about each queued call that is currently eligible
/// (its guard evaluates true).
struct RequestInfo {
  std::size_t client;      ///< stable client id (connection order)
  std::uint64_t seq;       ///< global arrival sequence number
  int priority;            ///< client priority (higher wins for priority policy)
  std::uint64_t waited;    ///< cycles (clocked) or grants (untimed) spent waiting
};

class ArbitrationPolicy {
public:
  virtual ~ArbitrationPolicy() = default;
  /// Pick one of the eligible requests; returns an index into `eligible`.
  /// `eligible` is never empty.
  virtual std::size_t pick(const std::vector<RequestInfo>& eligible) = 0;
  virtual std::string name() const = 0;
};

/// Oldest call first (arrival order).
class FifoArbitration final : public ArbitrationPolicy {
public:
  std::size_t pick(const std::vector<RequestInfo>& eligible) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < eligible.size(); ++i) {
      if (eligible[i].seq < eligible[best].seq) best = i;
    }
    return best;
  }
  std::string name() const override { return "fifo"; }
};

/// Rotating fairness over client ids: after granting client c, the next
/// grant prefers the smallest client id greater than c (cyclically).
class RoundRobinArbitration final : public ArbitrationPolicy {
public:
  std::size_t pick(const std::vector<RequestInfo>& eligible) override {
    std::size_t best = 0;
    auto rank = [this](std::size_t client) {
      // Distance from last_ + 1, cyclically; smaller rank preferred.
      return client > last_ ? client - last_ - 1
                            : client + (kWrap - last_) - 1;
    };
    for (std::size_t i = 1; i < eligible.size(); ++i) {
      if (rank(eligible[i].client) < rank(eligible[best].client)) best = i;
    }
    last_ = eligible[best].client;
    return best;
  }
  std::string name() const override { return "round_robin"; }

private:
  static constexpr std::size_t kWrap = 1ull << 32;
  std::size_t last_ = kWrap - 1;  // so client 0 is preferred initially
};

/// Highest client priority wins; FIFO among equals.
class StaticPriorityArbitration final : public ArbitrationPolicy {
public:
  std::size_t pick(const std::vector<RequestInfo>& eligible) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < eligible.size(); ++i) {
      const auto& a = eligible[i];
      const auto& b = eligible[best];
      if (a.priority > b.priority ||
          (a.priority == b.priority && a.seq < b.seq)) {
        best = i;
      }
    }
    return best;
  }
  std::string name() const override { return "static_priority"; }
};

/// Uniformly random among eligible (deterministic seed).
class RandomArbitration final : public ArbitrationPolicy {
public:
  explicit RandomArbitration(std::uint64_t seed = 0xC0FFEE)
      : rng_(seed) {}
  std::size_t pick(const std::vector<RequestInfo>& eligible) override {
    return static_cast<std::size_t>(rng_.below(eligible.size()));
  }
  std::string name() const override { return "random"; }

private:
  sim::Xorshift rng_;
};

/// Fully user-defined algorithm, as the paper allows.
class UserArbitration final : public ArbitrationPolicy {
public:
  using PickFn = std::function<std::size_t(const std::vector<RequestInfo>&)>;
  UserArbitration(std::string name, PickFn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {
    HLCS_ASSERT(fn_ != nullptr, "UserArbitration requires a pick function");
  }
  std::size_t pick(const std::vector<RequestInfo>& eligible) override {
    std::size_t i = fn_(eligible);
    HLCS_ASSERT(i < eligible.size(), "user arbitration picked out of range");
    return i;
  }
  std::string name() const override { return name_; }

private:
  std::string name_;
  PickFn fn_;
};

enum class PolicyKind { Fifo, RoundRobin, StaticPriority, Random };

inline std::unique_ptr<ArbitrationPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Fifo: return std::make_unique<FifoArbitration>();
    case PolicyKind::RoundRobin: return std::make_unique<RoundRobinArbitration>();
    case PolicyKind::StaticPriority:
      return std::make_unique<StaticPriorityArbitration>();
    case PolicyKind::Random: return std::make_unique<RandomArbitration>();
  }
  fail("unknown policy kind");
}

inline std::string policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Fifo: return "fifo";
    case PolicyKind::RoundRobin: return "round_robin";
    case PolicyKind::StaticPriority: return "static_priority";
    case PolicyKind::Random: return "random";
  }
  return "?";
}

}  // namespace hlcs::osss
