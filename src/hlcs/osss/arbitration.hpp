// Arbitration policies for concurrent guarded-method calls.
//
// The paper (Sec. 2): "if different modules invoke at the same time the
// execution of a guarded method of a shared global object, the calls are
// queued and scheduled according to a user defined algorithm."  This file
// provides the standard algorithms plus a hook for fully user-defined
// ones; the synthesiser accepts the same policy kinds (hlcs/synth).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hlcs/sim/assert.hpp"
#include "hlcs/sim/random.hpp"

namespace hlcs::osss {

/// What a policy sees about each queued call that is currently eligible
/// (its guard evaluates true).
struct RequestInfo {
  std::size_t client;      ///< stable client id (connection order)
  std::uint64_t seq;       ///< global arrival sequence number
  int priority;            ///< client priority (higher wins for priority policy)
  std::uint64_t waited;    ///< cycles (clocked) or grants (untimed) spent waiting
  /// Contiguous ticks this call has been eligible (guard true) without a
  /// grant -- `waited` minus any guard-blocked stretches.  This is the
  /// wait share the policy itself is responsible for; AdaptiveArbitration
  /// keys on it.  Callers that do not track it may leave it 0.
  std::uint64_t streak = 0;
};

class ArbitrationPolicy {
public:
  virtual ~ArbitrationPolicy() = default;
  /// Pick one of the eligible requests; returns an index into `eligible`.
  /// `eligible` is never empty.
  virtual std::size_t pick(const std::vector<RequestInfo>& eligible) = 0;
  virtual std::string name() const = 0;
};

/// Oldest call first (arrival order).
class FifoArbitration final : public ArbitrationPolicy {
public:
  std::size_t pick(const std::vector<RequestInfo>& eligible) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < eligible.size(); ++i) {
      if (eligible[i].seq < eligible[best].seq) best = i;
    }
    return best;
  }
  std::string name() const override { return "fifo"; }
};

/// Rotating fairness over client ids: after granting client c, the next
/// grant prefers the smallest client id greater than c (cyclically).
class RoundRobinArbitration final : public ArbitrationPolicy {
public:
  std::size_t pick(const std::vector<RequestInfo>& eligible) override {
    std::size_t best = 0;
    auto rank = [this](std::size_t client) {
      // Distance from last_ + 1, cyclically; smaller rank preferred.
      return client > last_ ? client - last_ - 1
                            : client + (kWrap - last_) - 1;
    };
    for (std::size_t i = 1; i < eligible.size(); ++i) {
      if (rank(eligible[i].client) < rank(eligible[best].client)) best = i;
    }
    last_ = eligible[best].client;
    return best;
  }
  std::string name() const override { return "round_robin"; }

private:
  static constexpr std::size_t kWrap = 1ull << 32;
  std::size_t last_ = kWrap - 1;  // so client 0 is preferred initially
};

/// Highest client priority wins; FIFO among equals.
class StaticPriorityArbitration final : public ArbitrationPolicy {
public:
  std::size_t pick(const std::vector<RequestInfo>& eligible) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < eligible.size(); ++i) {
      const auto& a = eligible[i];
      const auto& b = eligible[best];
      if (a.priority > b.priority ||
          (a.priority == b.priority && a.seq < b.seq)) {
        best = i;
      }
    }
    return best;
  }
  std::string name() const override { return "static_priority"; }
};

/// Uniformly random among eligible (deterministic seed).
class RandomArbitration final : public ArbitrationPolicy {
public:
  explicit RandomArbitration(std::uint64_t seed = 0xC0FFEE)
      : rng_(seed) {}
  std::size_t pick(const std::vector<RequestInfo>& eligible) override {
    return static_cast<std::size_t>(rng_.below(eligible.size()));
  }
  std::string name() const override { return "random"; }

private:
  sim::Xorshift rng_;
};

/// Fully user-defined algorithm, as the paper allows.
class UserArbitration final : public ArbitrationPolicy {
public:
  using PickFn = std::function<std::size_t(const std::vector<RequestInfo>&)>;
  UserArbitration(std::string name, PickFn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {
    HLCS_ASSERT(fn_ != nullptr, "UserArbitration requires a pick function");
  }
  std::size_t pick(const std::vector<RequestInfo>& eligible) override {
    std::size_t i = fn_(eligible);
    HLCS_ASSERT(i < eligible.size(), "user arbitration picked out of range");
    return i;
  }
  std::string name() const override { return name_; }

private:
  std::string name_;
  PickFn fn_;
};

/// Tuning knobs of AdaptiveArbitration.  The defaults are derived from
/// the committed contention cost model (bench/COSTMODEL_contend.json)
/// by hlcs::contend::derive_tuning -- a tier-1 test pins the two to
/// each other so the dataset and the defaults cannot drift apart
/// (docs/CONTENTION.md describes the derivation).
struct AdaptiveTuning {
  /// A request whose contiguous ELIGIBLE wait (RequestInfo::streak --
  /// guard-blocked stretches do not count) reaches this many ticks takes
  /// an absolute-priority "aged" lane: longest streak first.  This
  /// bounds the policy-caused wait under every traffic shape: once
  /// aged, a request is granted within (number of simultaneously aged
  /// requests) grants.  128 is the smallest power of two strictly above
  /// the worst best-static p99 (64, full saturation at 64 clients) in
  /// the committed cost model, so the lane never fires under any load a
  /// well-chosen static policy handles.
  std::uint64_t starve_bound = 128;
  /// Mode re-evaluation window, in pick() calls.
  unsigned window = 16;
  /// Contended picks (>= 2 eligible) per window at or above which the
  /// policy switches to the hot (eligible-streak) mode.
  unsigned hot_threshold = 8;
};

/// Contention-adaptive policy -- the cost-model feedback loop of
/// hlcs::contend (the paper's Sec. 1.5 future work, closed).  It blends
/// the static algorithms by observed contention:
///
///   * cold mode (mostly uncontended windows): longest-total-wait first
///     with priority tie-break -- FIFO/static-priority behaviour, the
///     cost model's winner at low contention;
///   * hot mode (contended windows): longest *eligible-streak* first --
///     fairness over the wait the policy itself caused, which flattens
///     the latency spikes FIFO suffers when a convoy of long
///     guard-blocked calls (with ancient arrival order, so ahead of
///     everything in FIFO order) becomes eligible at once;
///   * aged lane: any request whose eligible streak reached
///     `starve_bound` outranks both modes (longest streak first), so the
///     worst-case eligible wait stays bounded in cold mode too.
///
/// All state derives deterministically from the pick() stream, and the
/// same algorithm synthesises to RTL (synth::SynthOptions with
/// PolicyKind::Adaptive: age/streak counters + window registers).
class AdaptiveArbitration final : public ArbitrationPolicy {
public:
  explicit AdaptiveArbitration(AdaptiveTuning tuning = {})
      : t_(tuning) {
    HLCS_ASSERT(t_.starve_bound > 0, "adaptive: starve_bound must be > 0");
    HLCS_ASSERT(t_.window > 0, "adaptive: window must be > 0");
    HLCS_ASSERT(t_.hot_threshold <= t_.window,
                "adaptive: hot_threshold must be <= window");
  }

  std::size_t pick(const std::vector<RequestInfo>& eligible) override {
    // Lane selection: aged requests (streak >= starve_bound) exclude
    // everything else; otherwise the whole set competes.  The sort key
    // is the eligible streak in the aged lane and in hot mode, the
    // total wait in cold mode; bigger key wins, then higher priority,
    // then older arrival.
    bool any_aged = false;
    for (const RequestInfo& r : eligible) {
      if (r.streak >= t_.starve_bound) {
        any_aged = true;
        break;
      }
    }
    const bool use_streak = hot_ || any_aged;
    std::size_t best = eligible.size();
    std::uint64_t best_key = 0;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      const RequestInfo& r = eligible[i];
      if (any_aged && r.streak < t_.starve_bound) continue;
      const std::uint64_t key = use_streak ? r.streak : r.waited;
      if (best == eligible.size()) {
        best = i;
        best_key = key;
        continue;
      }
      const RequestInfo& b = eligible[best];
      bool wins = false;
      if (key != best_key) {
        wins = key > best_key;
      } else if (r.priority != b.priority) {
        wins = r.priority > b.priority;
      } else {
        wins = r.seq < b.seq;
      }
      if (wins) {
        best = i;
        best_key = key;
      }
    }

    // Mode window: re-evaluated every `window` picks from the count of
    // contended picks; the new mode applies from the next pick.
    ++win_picks_;
    if (eligible.size() >= 2) ++win_contended_;
    if (win_picks_ == t_.window) {
      hot_ = win_contended_ >= t_.hot_threshold;
      win_picks_ = 0;
      win_contended_ = 0;
    }
    return best;
  }

  std::string name() const override { return "adaptive"; }
  bool hot() const { return hot_; }
  const AdaptiveTuning& tuning() const { return t_; }

private:
  AdaptiveTuning t_;
  unsigned win_picks_ = 0;
  unsigned win_contended_ = 0;
  bool hot_ = false;
};

enum class PolicyKind { Fifo, RoundRobin, StaticPriority, Random, Adaptive };

/// `seed` feeds the Random policy's generator (other kinds ignore it).
/// Sweeps running many objects must pass per-object seeds -- derive
/// them with sim::lane_seed(root, object_index) -- or every object
/// replays the same "random" grant sequence.
inline std::unique_ptr<ArbitrationPolicy> make_policy(
    PolicyKind kind, std::uint64_t seed = 0xC0FFEE) {
  switch (kind) {
    case PolicyKind::Fifo: return std::make_unique<FifoArbitration>();
    case PolicyKind::RoundRobin: return std::make_unique<RoundRobinArbitration>();
    case PolicyKind::StaticPriority:
      return std::make_unique<StaticPriorityArbitration>();
    case PolicyKind::Random: return std::make_unique<RandomArbitration>(seed);
    case PolicyKind::Adaptive: return std::make_unique<AdaptiveArbitration>();
  }
  fail("unknown policy kind");
}

inline std::string policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Fifo: return "fifo";
    case PolicyKind::RoundRobin: return "round_robin";
    case PolicyKind::StaticPriority: return "static_priority";
    case PolicyKind::Random: return "random";
    case PolicyKind::Adaptive: return "adaptive";
  }
  return "?";
}

/// Inverse of policy_name, for CLIs: throws hlcs::Error naming the
/// unknown input and the accepted spellings.
inline PolicyKind parse_policy(std::string_view name) {
  if (name == "fifo") return PolicyKind::Fifo;
  if (name == "round_robin") return PolicyKind::RoundRobin;
  if (name == "static_priority") return PolicyKind::StaticPriority;
  if (name == "random") return PolicyKind::Random;
  if (name == "adaptive") return PolicyKind::Adaptive;
  fail("unknown arbitration policy '" + std::string(name) +
       "' (expected fifo, round_robin, static_priority, random or adaptive)");
}

}  // namespace hlcs::osss
