// Umbrella header for the OSSS / SystemC+ global-object layer.
#pragma once

#include "hlcs/osss/arbitration.hpp"
#include "hlcs/osss/bistable.hpp"
#include "hlcs/osss/guarded_fifo.hpp"
#include "hlcs/osss/histogram.hpp"
#include "hlcs/osss/shared_object.hpp"
