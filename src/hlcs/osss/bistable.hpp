// The shared bistable of the paper's Figure 1: the canonical global
// object.  Modules that connect to the same SharedObject<Bistable> share
// its state space -- a set() in one module is observed by get_state() in
// another.
#pragma once

namespace hlcs::osss {

class Bistable {
public:
  void set() { state_ = true; }
  void reset() { state_ = false; }
  bool get_state() const { return state_; }

private:
  bool state_ = false;
};

}  // namespace hlcs::osss
