#include "hlcs/pci/pci_monitor.hpp"

namespace hlcs::pci {

using sim::Logic;

void PciMonitor::on_edge() {
  const bool frame = asserted(bus_.frame_n);
  const bool irdy = asserted(bus_.irdy_n);
  const bool trdy = asserted(bus_.trdy_n);
  const bool devsel = asserted(bus_.devsel_n);
  const bool stop = asserted(bus_.stop_n);
  const sim::LogicVec ad = bus_.ad.read();
  const sim::LogicVec cbe = bus_.cbe.read();
  const Logic par = bus_.par.read();

  const bool active = frame || irdy;
  if (active) {
    ++busy_cycles_;
  } else {
    ++idle_cycles_;
  }

  // M5: parity covers the previous cycle's AD/CBE whenever PAR is driven.
  if (is_01(par) && ad_prev_.width() == 32 && ad_prev_.is_fully_defined() &&
      cbe_prev_.is_fully_defined()) {
    ++parity_checks_;
    const bool expect =
        even_parity(static_cast<std::uint32_t>(ad_prev_.to_uint()),
                    static_cast<std::uint8_t>(cbe_prev_.to_uint()));
    if (expect != (par == Logic::L1)) {
      violation("M5 parity error: PAR does not cover previous AD/CBE");
    }
  }

  // M1: driver conflicts show up as X.
  if (active && (ad.has_x() || cbe.has_x())) {
    violation("M1 AD/CBE driver conflict (X) during transaction");
  }
  // M2 / M6: target responses require DEVSEL#.
  if (trdy && !devsel) violation("M2 TRDY# asserted without DEVSEL#");
  if (stop && !devsel) violation("M6 STOP# asserted without DEVSEL#");

  // M3: FRAME# deassertion legality (high after low requires IRDY#).
  if (frame_prev_ && !frame && !irdy) {
    violation("M3 FRAME# deasserted while IRDY# deasserted");
  }

  // Address phase: FRAME# falls.
  if (frame && !frame_prev_ && !in_transaction_) {
    in_transaction_ = true;
    open_record_ = true;
    current_ = BusRecord{};
    current_.start_cycle = bus_.cycle();
    if (!ad.is_fully_defined() || !cbe.is_fully_defined()) {
      violation("M4 address phase with undriven/conflicting AD or C/BE#");
      current_.addr = static_cast<std::uint32_t>(ad.to_uint_lenient());
      current_.cmd =
          static_cast<PciCommand>(cbe.to_uint_lenient() & 0xF);
    } else {
      current_.addr = static_cast<std::uint32_t>(ad.to_uint());
      current_.cmd = static_cast<PciCommand>(cbe.to_uint() & 0xF);
    }
  } else if (in_transaction_) {
    if (devsel) current_.devsel_seen = true;
    if (stop) current_.stop_seen = true;
    if (irdy && trdy) {
      // Data transfer this edge.
      ++transfers_;
      current_.words.push_back(
          ad.is_fully_defined()
              ? static_cast<std::uint32_t>(ad.to_uint())
              : static_cast<std::uint32_t>(ad.to_uint_lenient()));
      if (ad.has_x()) violation("M1 data transfer with X on AD");
    } else if (irdy || trdy) {
      current_.wait_cycles++;
    }
    // Tenure ends when the bus returns to idle.
    if (!frame && !irdy) {
      in_transaction_ = false;
      current_.end_cycle = bus_.cycle();
      records_.push_back(current_);
      open_record_ = false;
    }
  }

  frame_prev_ = frame;
  ad_prev_ = ad;
  cbe_prev_ = cbe;
}

}  // namespace hlcs::pci
