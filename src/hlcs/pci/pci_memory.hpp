// Word-addressed backing store for PCI targets.  Sparse, so a target can
// decode a large BAR without allocating it.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "hlcs/sim/assert.hpp"

namespace hlcs::pci {

class PciMemory {
public:
  /// `size_bytes` is the decoded window; accesses outside it throw.
  explicit PciMemory(std::uint32_t size_bytes) : size_(size_bytes) {
    HLCS_ASSERT(size_bytes % 4 == 0, "PciMemory size must be word aligned");
    HLCS_ASSERT(size_bytes > 0, "PciMemory size must be positive");
  }

  std::uint32_t size() const { return size_; }

  std::uint32_t read_word(std::uint32_t offset) const {
    check(offset);
    auto it = words_.find(offset / 4);
    return it == words_.end() ? 0 : it->second;
  }

  void write_word(std::uint32_t offset, std::uint32_t value,
                  std::uint8_t byte_enables_n = 0x0) {
    check(offset);
    if (byte_enables_n == 0x0) {
      words_[offset / 4] = value;
      return;
    }
    // C/BE# is active low: a 0 bit enables the byte lane.
    std::uint32_t cur = read_word(offset);
    for (int lane = 0; lane < 4; ++lane) {
      if ((byte_enables_n >> lane & 1) == 0) {
        const std::uint32_t mask = 0xFFu << (lane * 8);
        cur = (cur & ~mask) | (value & mask);
      }
    }
    words_[offset / 4] = cur;
  }

  std::size_t words_touched() const { return words_.size(); }

private:
  void check(std::uint32_t offset) const {
    HLCS_ASSERT(offset % 4 == 0, "unaligned PCI word access");
    HLCS_ASSERT(offset < size_, "PCI memory access out of decoded range");
  }

  std::uint32_t size_;
  std::unordered_map<std::uint32_t, std::uint32_t> words_;
};

}  // namespace hlcs::pci
