#include "hlcs/pci/pci_target.hpp"

namespace hlcs::pci {

using sim::Logic;
using sim::Task;

// Tenure helpers end by writing the deasserting (high) levels and setting
// release_pending_; run() releases the drivers one edge later.  This
// keeps the sustained-tri-state hand-back cycle on the waveform without
// ever blocking the FSM, so an immediately following address phase is
// never missed (a master may restart one idle cycle after a retry).

Task PciTarget::run() {
  for (;;) {
    co_await bus_.clk.posedge();
    if (release_pending_) {
      drv_.trdy_n.release();
      drv_.devsel_n.release();
      drv_.stop_n.release();
      drv_.ad.release();
      drv_.par.release();
      release_pending_ = false;
    }
    const bool frame_now = asserted(bus_.frame_n);
    const bool address_phase = frame_now && !frame_prev_;
    frame_prev_ = frame_now;
    if (!address_phase) continue;

    // Latch address and command from the bus.
    if (!bus_.ad.read().is_fully_defined()) continue;  // corrupt: ignore
    const auto addr = static_cast<std::uint32_t>(bus_.ad.read().to_uint());
    const auto cmd =
        static_cast<PciCommand>(bus_.cbe.read().to_uint_lenient() & 0xF);
    const Space sp = decode(cmd, addr);
    if (sp == Space::None) {
      // Not ours; stay quiet (the master aborts, or another target
      // claims).  Wait out the foreign tenure before re-arming the
      // FRAME# edge detector, so burst data is never mistaken for a new
      // address phase.
      while (!bus_.idle()) co_await bus_.clk.posedge();
      frame_prev_ = false;
      continue;
    }

    stats_.tenures++;
    if (stats_.tenures <= cfg_.retry_first) {
      stats_.retries_issued++;
      co_await refuse_with_retry();
    } else {
      co_await serve_tenure(sp, cmd, addr);
    }
    frame_prev_ = false;
  }
}

Task PciTarget::refuse_with_retry() {
  // Decode latency, then DEVSEL# + STOP# with TRDY# high: target retry.
  for (unsigned i = 1; i < static_cast<unsigned>(cfg_.devsel); ++i) {
    co_await bus_.clk.posedge();
  }
  drv_.devsel_n.write(Logic::L0);
  drv_.stop_n.write(Logic::L0);
  drv_.trdy_n.write(Logic::L1);
  // Hold until the master backs off (bus idle).
  for (;;) {
    co_await bus_.clk.posedge();
    if (bus_.idle()) break;
  }
  end_tenure();
}

Task PciTarget::serve_tenure(Space sp, PciCommand cmd, std::uint32_t addr) {
  const bool rd = is_read(cmd);
  // Decode latency before claiming with DEVSEL#.
  for (unsigned i = 1; i < static_cast<unsigned>(cfg_.devsel); ++i) {
    co_await bus_.clk.posedge();
  }
  if (!cfg_.faults.no_devsel) drv_.devsel_n.write(Logic::L0);
  drv_.trdy_n.write(Logic::L1);

  unsigned wait = cfg_.initial_wait;
  unsigned words_this_tenure = 0;
  bool trdy_driven_low = false;
  bool drove_ad = false;
  std::uint32_t driven_ad = 0;

  for (;;) {
    // A burst that runs past the decoded window terminates with a
    // disconnect (STOP# without TRDY#) instead of serving foreign
    // addresses.
    if (sp != Space::Config &&
        !(addr >= cfg_.base && addr < cfg_.base + cfg_.size)) {
      drv_.trdy_n.write(Logic::L1);
      drv_.stop_n.write(Logic::L0);
      if (rd) drv_.ad.release();
      while (!bus_.idle()) co_await bus_.clk.posedge();
      stats_.disconnects_issued++;
      end_tenure();
      co_return;
    }
    // Insert wait states, then present data / readiness.
    while (wait > 0) {
      stats_.wait_states_inserted++;
      co_await bus_.clk.posedge();
      if (bus_.idle()) {  // master aborted mid-wait
        end_tenure();
        co_return;
      }
      --wait;
    }
    if (rd) {
      driven_ad = load(sp, addr);
      drv_.ad.write_uint(driven_ad);
      drove_ad = true;
    }
    const bool disconnect_now =
        cfg_.disconnect_after > 0 &&
        words_this_tenure + 1 >= cfg_.disconnect_after;
    drv_.trdy_n.write(Logic::L0);
    if (disconnect_now) drv_.stop_n.write(Logic::L0);
    trdy_driven_low = true;

    // Wait for the transfer edge (IRDY# asserted together with our TRDY#).
    for (;;) {
      co_await bus_.clk.posedge();
      // Parity for read data we drove in the cycle that just ended.
      if (rd && drove_ad) {
        bool p = even_parity(driven_ad, 0x0);
        ++par_phases_;
        if (cfg_.faults.corrupt_par_every > 0 &&
            par_phases_ % cfg_.faults.corrupt_par_every == 0) {
          p = !p;
        }
        drv_.par.write(p ? Logic::L1 : Logic::L0);
      }
      if (asserted(bus_.irdy_n) && trdy_driven_low) break;
      if (bus_.idle()) {  // master went away
        end_tenure();
        co_return;
      }
    }

    // Transfer happened on this edge.
    const bool last_phase = !asserted(bus_.frame_n);
    if (!rd) {
      const sim::LogicVec v = bus_.ad.read();
      if (v.is_fully_defined()) {
        store(sp, addr, static_cast<std::uint32_t>(v.to_uint()),
              static_cast<std::uint8_t>(bus_.cbe.read().to_uint_lenient()));
      }
      stats_.words_written++;
    } else {
      stats_.words_read++;
    }
    words_this_tenure++;
    addr += 4;

    const bool disconnected = cfg_.disconnect_after > 0 &&
                              words_this_tenure >= cfg_.disconnect_after;
    if (last_phase || disconnected) {
      if (disconnected) stats_.disconnects_issued++;
      if (rd) drv_.ad.release();
      drv_.trdy_n.write(Logic::L1);
      drv_.devsel_n.write(Logic::L1);
      drv_.stop_n.write(Logic::L1);
      // If the master is still mid-burst after a disconnect, wait for it
      // to back off before handing the wires back.
      while (!bus_.idle()) co_await bus_.clk.posedge();
      end_tenure();
      co_return;
    }

    // More data phases follow.
    drv_.trdy_n.write(Logic::L1);
    trdy_driven_low = false;
    if (rd) drv_.ad.release();
    wait = cfg_.per_word_wait;
  }
}

void PciTarget::end_tenure() {
  drv_.trdy_n.write(Logic::L1);
  drv_.devsel_n.write(Logic::L1);
  drv_.stop_n.write(Logic::L1);
  drv_.ad.release();
  release_pending_ = true;
}

}  // namespace hlcs::pci
