// Central PCI arbiter: REQ#/GNT# per master, hidden (overlapped)
// arbitration with rotating priority and bus parking on the last owner.
// REQ/GNT are modelled as point-to-point Signal<bool> pairs (true =
// asserted), as they are not shared wires on a real PCI bus either.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hlcs/pci/pci_bus.hpp"
#include "hlcs/sim/signal.hpp"

namespace hlcs::pci {

class PciArbiter : public sim::Module {
public:
  PciArbiter(sim::Kernel& k, std::string name, PciBus& bus)
      : Module(k, std::move(name)), bus_(bus) {
    sim::MethodProcess& m =
        method("arbitrate", [this] { on_edge(); }, /*initial_trigger=*/false);
    bus.clk.posedge().add_static(m);
  }

  struct Port {
    sim::Signal<bool>* req;
    sim::Signal<bool>* gnt;
  };

  /// Register a master; returns its REQ/GNT signal pair.  The master
  /// writes req, the arbiter writes gnt.
  Port add_master(const std::string& master_name) {
    auto req = std::make_unique<sim::Signal<bool>>(
        kernel(), sub(master_name + ".req"), false);
    auto gnt = std::make_unique<sim::Signal<bool>>(
        kernel(), sub(master_name + ".gnt"), false);
    Port p{req.get(), gnt.get()};
    reqs_.push_back(std::move(req));
    gnts_.push_back(std::move(gnt));
    return p;
  }

  std::size_t masters() const { return reqs_.size(); }
  std::uint64_t regrants() const { return regrants_; }

private:
  void on_edge() {
    if (reqs_.empty()) return;
    const std::size_t n = reqs_.size();
    // Hidden rotating arbitration with tenure tracking:
    //  * no competition       -> the owner keeps its grant (bus parking,
    //                            back-to-back tenures);
    //  * competition, busy    -> the owner's GNT# is pulled, which arms
    //                            its latency timer mid-burst; the tenure
    //                            still completes its final data phase;
    //  * competition, idle    -> a freshly granted owner gets a short
    //                            grace window to start (GNT# visibility
    //                            lags one edge), then ownership rotates
    //                            to the next requester.
    bool any_other = false;
    for (std::size_t i = 1; i < n; ++i) {
      if (reqs_[(owner_ + i) % n]->read()) {
        any_other = true;
        break;
      }
    }
    if (!bus_.idle()) {
      owner_used_bus_ = true;
      gnts_[owner_]->write(!any_other);
      return;
    }
    if (!any_other) {
      gnts_[owner_]->write(true);  // keep / park
      return;
    }
    if (!owner_used_bus_ && reqs_[owner_]->read() && idle_grant_age_ < 2) {
      // Fresh grantee: give it a chance to observe GNT# together with
      // the idle bus before rotating on.
      gnts_[owner_]->write(true);
      ++idle_grant_age_;
      return;
    }
    for (std::size_t i = 1; i <= n; ++i) {
      const std::size_t cand = (owner_ + i) % n;
      if (reqs_[cand]->read()) {
        gnts_[owner_]->write(false);
        owner_ = cand;
        gnts_[owner_]->write(true);
        owner_used_bus_ = false;
        idle_grant_age_ = 0;
        ++regrants_;
        return;
      }
    }
  }

  PciBus& bus_;
  std::vector<std::unique_ptr<sim::Signal<bool>>> reqs_;
  std::vector<std::unique_ptr<sim::Signal<bool>>> gnts_;
  std::size_t owner_ = 0;
  bool owner_used_bus_ = true;  // forces an initial rotation under contention
  unsigned idle_grant_age_ = 0;
  std::uint64_t regrants_ = 0;
};

}  // namespace hlcs::pci
