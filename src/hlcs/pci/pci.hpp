// Umbrella header for the pin-level PCI substrate.
#pragma once

#include "hlcs/pci/pci_arbiter.hpp"
#include "hlcs/pci/pci_bus.hpp"
#include "hlcs/pci/pci_master.hpp"
#include "hlcs/pci/pci_memory.hpp"
#include "hlcs/pci/pci_monitor.hpp"
#include "hlcs/pci/pci_target.hpp"
#include "hlcs/pci/pci_types.hpp"
