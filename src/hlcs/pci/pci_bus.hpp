// The shared PCI signal bundle.  Control signals are sustained-tri-state
// wires (an agent drives them low, drives them high for one cycle to
// hand back, then releases to Z); AD/CBE/PAR are plain tri-state.
// Undriven (Z) control signals read as deasserted, which models the
// bus pull-ups.
//
// Timing convention used by every agent in this library:
//   * all wires are sampled at the rising clock edge;
//   * an agent reacting to edge E writes its outputs immediately after
//     E, so they are visible to everyone at edge E+1.
#pragma once

#include <string>

#include "hlcs/sim/clock.hpp"
#include "hlcs/sim/module.hpp"
#include "hlcs/sim/trace.hpp"
#include "hlcs/sim/wire.hpp"

namespace hlcs::pci {

/// Helper: active-low sustained-tri-state sampling -- only a driven low
/// level counts as asserted (Z = pulled up = deasserted).
inline bool asserted(const sim::Wire& w) { return w.read() == sim::Logic::L0; }

class PciBus : public sim::Module {
public:
  PciBus(sim::Kernel& k, std::string name, sim::Clock& clock)
      : Module(k, std::move(name)),
        clk(clock),
        frame_n(k, sub("FRAME_n")),
        irdy_n(k, sub("IRDY_n")),
        trdy_n(k, sub("TRDY_n")),
        devsel_n(k, sub("DEVSEL_n")),
        stop_n(k, sub("STOP_n")),
        par(k, sub("PAR")),
        ad(k, sub("AD"), 32),
        cbe(k, sub("CBE_n"), 4) {}

  sim::Clock& clk;
  sim::Wire frame_n;
  sim::Wire irdy_n;
  sim::Wire trdy_n;
  sim::Wire devsel_n;
  sim::Wire stop_n;
  sim::Wire par;
  sim::WireVec ad;
  sim::WireVec cbe;

  /// Bus idle: no transaction in progress.
  bool idle() const { return !asserted(frame_n) && !asserted(irdy_n); }

  std::uint64_t cycle() const { return clk.cycles(); }

  /// Register every bus wire (and the clock) with a VCD trace -- this is
  /// how the paper's Figure 4 waveforms are regenerated.
  void trace_all(sim::Trace& t) {
    t.add(clk.signal());
    t.add(frame_n);
    t.add(irdy_n);
    t.add(trdy_n);
    t.add(devsel_n);
    t.add(stop_n);
    t.add(ad);
    t.add(cbe);
    t.add(par);
  }
};

/// Per-agent drivers for the shared wires.  Construction order defines
/// no priority; all conflicts resolve through the wire resolution rules.
struct PciAgentDrivers {
  explicit PciAgentDrivers(PciBus& bus)
      : frame_n(bus.frame_n.make_driver()),
        irdy_n(bus.irdy_n.make_driver()),
        trdy_n(bus.trdy_n.make_driver()),
        devsel_n(bus.devsel_n.make_driver()),
        stop_n(bus.stop_n.make_driver()),
        par(bus.par.make_driver()),
        ad(bus.ad.make_driver()),
        cbe(bus.cbe.make_driver()) {}

  sim::Wire::Driver frame_n;
  sim::Wire::Driver irdy_n;
  sim::Wire::Driver trdy_n;
  sim::Wire::Driver devsel_n;
  sim::Wire::Driver stop_n;
  sim::Wire::Driver par;
  sim::WireVec::Driver ad;
  sim::WireVec::Driver cbe;
};

}  // namespace hlcs::pci
