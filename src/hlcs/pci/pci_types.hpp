// Simplified PCI protocol types.  The paper implements "an handler of a
// simplified version of the PCI bus"; this substrate models the same
// simplification honestly at pin level:
//   * 32-bit multiplexed AD, 4-bit C/BE#, even parity PAR
//   * FRAME#, IRDY#, TRDY#, DEVSEL#, STOP# control (active low,
//     sustained tri-state), REQ#/GNT# central arbitration
//   * single and burst (linearly incrementing) memory transactions,
//     I/O and configuration accesses
//   * target wait states, DEVSEL decode speeds, retry and disconnect,
//     master abort on decode timeout
// Not modelled: 64-bit extension, dual address cycles, cache support
// (SBO#/SDONE), interrupt pins, and error signalling beyond parity
// checking (PERR#/SERR# are monitor-internal).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hlcs::pci {

/// PCI bus command encodings (driven on C/BE# during the address phase).
enum class PciCommand : std::uint8_t {
  InterruptAck = 0x0,
  Special = 0x1,
  IoRead = 0x2,
  IoWrite = 0x3,
  MemRead = 0x6,
  MemWrite = 0x7,
  ConfigRead = 0xA,
  ConfigWrite = 0xB,
  MemReadMultiple = 0xC,
  MemReadLine = 0xE,
  MemWriteInvalidate = 0xF,
};

inline bool is_read(PciCommand c) {
  switch (c) {
    case PciCommand::IoRead:
    case PciCommand::MemRead:
    case PciCommand::ConfigRead:
    case PciCommand::MemReadMultiple:
    case PciCommand::MemReadLine:
      return true;
    default:
      return false;
  }
}

inline bool is_write(PciCommand c) {
  switch (c) {
    case PciCommand::IoWrite:
    case PciCommand::MemWrite:
    case PciCommand::ConfigWrite:
    case PciCommand::MemWriteInvalidate:
      return true;
    default:
      return false;
  }
}

inline const char* to_string(PciCommand c) {
  switch (c) {
    case PciCommand::InterruptAck: return "int_ack";
    case PciCommand::Special: return "special";
    case PciCommand::IoRead: return "io_read";
    case PciCommand::IoWrite: return "io_write";
    case PciCommand::MemRead: return "mem_read";
    case PciCommand::MemWrite: return "mem_write";
    case PciCommand::ConfigRead: return "cfg_read";
    case PciCommand::ConfigWrite: return "cfg_write";
    case PciCommand::MemReadMultiple: return "mem_read_mult";
    case PciCommand::MemReadLine: return "mem_read_line";
    case PciCommand::MemWriteInvalidate: return "mem_write_inv";
  }
  return "?";
}

/// DEVSEL# decode speed: edges between address phase and DEVSEL#.
enum class DevselSpeed : std::uint8_t { Fast = 1, Medium = 2, Slow = 3 };

/// Outcome of one master transaction attempt.
enum class PciResult : std::uint8_t {
  Ok,
  Retry,        ///< target retry: no data transferred, try again
  Disconnect,   ///< target disconnect: partial data, continue at new addr
  MasterAbort,  ///< no DEVSEL# -- nobody claimed the address
};

inline const char* to_string(PciResult r) {
  switch (r) {
    case PciResult::Ok: return "ok";
    case PciResult::Retry: return "retry";
    case PciResult::Disconnect: return "disconnect";
    case PciResult::MasterAbort: return "master_abort";
  }
  return "?";
}

/// A master-level transaction request (one or more data phases).
struct PciTransaction {
  PciCommand cmd = PciCommand::MemRead;
  std::uint32_t addr = 0;
  /// Write payload (is_write) or read destination (is_read); for reads,
  /// `count` words are fetched into `data`.
  std::vector<std::uint32_t> data;
  std::size_t count = 1;  ///< number of data phases for reads

  // --- filled in by the master -----------------------------------------
  PciResult result = PciResult::Ok;
  std::size_t words_done = 0;
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;
  std::size_t retries = 0;

  /// Total bus clock cycles the transaction occupied (including retries).
  std::uint64_t cycles() const { return end_cycle - start_cycle; }
};

/// Even parity over 32 AD bits and 4 C/BE# bits.
inline bool even_parity(std::uint32_t ad, std::uint8_t cbe) {
  std::uint64_t x = (static_cast<std::uint64_t>(cbe & 0xF) << 32) | ad;
  x ^= x >> 32;
  x ^= x >> 16;
  x ^= x >> 8;
  x ^= x >> 4;
  x ^= x >> 2;
  x ^= x >> 1;
  return (x & 1) != 0;
}

}  // namespace hlcs::pci
