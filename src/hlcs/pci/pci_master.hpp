// Pin-level PCI bus master.
//
// PciMaster owns one set of bus drivers and a REQ/GNT pair.  It exposes a
// single coroutine entry point, execute(), which performs a complete
// logical transaction at pin level: arbitration, address phase,
// read-turnaround, data phases with wait states, and termination
// handling (retry, disconnect, master abort).  Retries and disconnect
// continuations are re-issued automatically (configurable).
//
// The bus-interface pattern (hlcs/pattern) instantiates this engine as
// the "processes that implement the pin-level PCI protocol" of the
// paper's interface element.
#pragma once

#include <cstdint>
#include <string>

#include "hlcs/pci/pci_bus.hpp"
#include "hlcs/pci/pci_types.hpp"
#include "hlcs/sim/signal.hpp"

namespace hlcs::pci {

struct MasterConfig {
  /// Edges to wait for DEVSEL# after the address phase before declaring
  /// master abort (PCI allows subtractive decode at 4).
  unsigned devsel_timeout = 5;
  /// Re-issue transactions terminated with Retry up to this many times.
  unsigned max_retries = 1000;
  /// When false, execute() returns Retry/Disconnect to the caller
  /// instead of re-issuing.
  bool auto_retry = true;
  /// PCI latency timer: once a tenure has lasted this many cycles AND
  /// GNT# has been taken away, the master terminates its burst after the
  /// next transfer and re-arbitrates (0 = unlimited tenure).
  unsigned latency_timer = 0;
};

struct MasterStats {
  std::uint64_t transactions = 0;
  std::uint64_t words = 0;
  std::uint64_t retries = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t master_aborts = 0;
  std::uint64_t preemptions = 0;  ///< bursts split by the latency timer
  std::uint64_t arbitration_wait_cycles = 0;
  std::uint64_t data_wait_cycles = 0;  ///< IRDY# asserted, TRDY# not
};

class PciMaster : public sim::Module {
public:
  PciMaster(sim::Kernel& k, std::string name, PciBus& bus,
            sim::Signal<bool>& req, sim::Signal<bool>& gnt,
            MasterConfig cfg = {})
      : Module(k, std::move(name)),
        bus_(bus),
        drv_(bus),
        req_(req),
        gnt_(gnt),
        cfg_(cfg) {}

  /// Run one logical transaction to completion (awaitable).  On return,
  /// `t.result`, `t.words_done`, `t.data` (reads), timing fields and
  /// retry counts are filled in.
  sim::Task execute(PciTransaction& t);

  const MasterStats& stats() const { return stats_; }
  PciBus& bus() { return bus_; }

private:
  /// One bus tenure starting at word `t.words_done`; returns the tenure
  /// outcome and updates `t` in place.
  sim::Task attempt(PciTransaction& t, PciResult& out);

  /// Drive the hand-back cycle and release every sustained-tri-state
  /// wire (the one-cycle high drive is pending from the caller).
  sim::Task release_all();

  PciBus& bus_;
  PciAgentDrivers drv_;
  sim::Signal<bool>& req_;
  sim::Signal<bool>& gnt_;
  MasterConfig cfg_;
  MasterStats stats_;
};

}  // namespace hlcs::pci
