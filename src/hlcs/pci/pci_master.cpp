#include "hlcs/pci/pci_master.hpp"

namespace hlcs::pci {

using sim::Logic;
using sim::Task;

Task PciMaster::execute(PciTransaction& t) {
  const bool rd = is_read(t.cmd);
  HLCS_ASSERT(rd || is_write(t.cmd), "transaction must be a read or write");
  if (rd) {
    t.data.clear();
    HLCS_ASSERT(t.count >= 1, "read transaction needs count >= 1");
  } else {
    HLCS_ASSERT(!t.data.empty(), "write transaction needs payload");
  }
  t.words_done = 0;
  t.retries = 0;
  t.start_cycle = bus_.cycle();

  const std::size_t total = rd ? t.count : t.data.size();
  for (;;) {
    PciResult r = PciResult::Ok;
    co_await attempt(t, r);
    if (r == PciResult::Ok && t.words_done == total) {
      t.result = PciResult::Ok;
      break;
    }
    if (r == PciResult::MasterAbort) {
      t.result = PciResult::MasterAbort;
      stats_.master_aborts++;
      break;
    }
    if (r == PciResult::Retry) {
      stats_.retries++;
      t.retries++;
      if (!cfg_.auto_retry || t.retries > cfg_.max_retries) {
        t.result = PciResult::Retry;
        break;
      }
      continue;
    }
    // Disconnect with work remaining: continue at the next address.
    stats_.disconnects++;
    if (!cfg_.auto_retry) {
      t.result = PciResult::Disconnect;
      break;
    }
  }
  req_.write(false);
  t.end_cycle = bus_.cycle();
  stats_.transactions++;
  stats_.words += t.words_done;
}

Task PciMaster::attempt(PciTransaction& t, PciResult& out) {
  const bool rd = is_read(t.cmd);
  const std::size_t total = rd ? t.count : t.data.size();
  const std::uint32_t addr = t.addr + static_cast<std::uint32_t>(t.words_done) * 4;

  // ---- arbitration ----------------------------------------------------
  req_.write(true);
  for (;;) {
    co_await bus_.clk.posedge();
    if (gnt_.read() && bus_.idle()) break;
    stats_.arbitration_wait_cycles++;
  }

  // ---- address phase ---------------------------------------------------
  // Drive after the grant edge; visible to targets at the next edge.
  drv_.frame_n.write(Logic::L0);
  drv_.ad.write_uint(addr);
  drv_.cbe.write_uint(static_cast<std::uint64_t>(t.cmd));
  co_await bus_.clk.posedge();  // the address phase edge

  // Address-phase parity, valid one cycle later.
  drv_.par.write(even_parity(addr, static_cast<std::uint8_t>(t.cmd))
                     ? Logic::L1
                     : Logic::L0);

  // ---- first data phase setup -------------------------------------------
  std::size_t remaining = total - t.words_done;
  bool wrote_ad_last_cycle = false;
  std::uint32_t last_ad = 0;
  std::uint8_t last_cbe = 0;
  if (rd) {
    drv_.ad.release();          // read turnaround
    drv_.cbe.write_uint(0x0);   // all byte lanes enabled (active low)
  } else {
    last_ad = t.data[t.words_done];
    last_cbe = 0x0;
    drv_.ad.write_uint(last_ad);
    drv_.cbe.write_uint(last_cbe);
    wrote_ad_last_cycle = true;
  }
  drv_.irdy_n.write(Logic::L0);
  if (remaining == 1) drv_.frame_n.write(Logic::L1);

  // ---- data phases -------------------------------------------------------
  bool devsel_seen = false;
  unsigned devsel_wait = 0;
  bool transferred_this_tenure = false;
  bool par_pending = false;  // we drove PAR last cycle and must manage it
  unsigned tenure_cycles = 0;
  bool preempted = false;
  out = PciResult::Ok;

  for (;;) {
    co_await bus_.clk.posedge();
    ++tenure_cycles;

    // Latency timer: with GNT# removed and the timer expired, signal the
    // last data phase (FRAME# high) so the burst ends at the next
    // transfer and the bus re-arbitrates.
    if (!preempted && cfg_.latency_timer > 0 && remaining > 1 &&
        !gnt_.read() && tenure_cycles > cfg_.latency_timer) {
      drv_.frame_n.write(Logic::L1);
      preempted = true;
      stats_.preemptions++;
    }

    // Write-data parity: PAR covers the AD/CBE we drove in the cycle
    // that just ended.
    if (wrote_ad_last_cycle) {
      drv_.par.write(even_parity(last_ad, last_cbe) ? Logic::L1 : Logic::L0);
      par_pending = true;
      wrote_ad_last_cycle = false;
    } else if (par_pending) {
      drv_.par.release();
      par_pending = false;
    }

    if (!devsel_seen) {
      if (asserted(bus_.devsel_n)) {
        devsel_seen = true;
      } else if (++devsel_wait > cfg_.devsel_timeout) {
        // Master abort: nobody claimed the address.  FRAME# deasserts
        // first (IRDY# still asserted, per protocol), IRDY# one cycle
        // later.
        if (remaining > 1) {
          drv_.frame_n.write(Logic::L1);
          co_await bus_.clk.posedge();
        }
        drv_.irdy_n.write(Logic::L1);
        drv_.ad.release();
        drv_.cbe.release();
        out = PciResult::MasterAbort;
        co_await release_all();
        co_return;
      }
    }

    const bool trdy = asserted(bus_.trdy_n);
    const bool stop = asserted(bus_.stop_n);

    if (devsel_seen && trdy) {
      // Data transfer on this edge (TRDY# means nothing until the
      // target has claimed the address with DEVSEL#).
      if (rd) {
        t.data.push_back(static_cast<std::uint32_t>(bus_.ad.read().to_uint()));
      }
      t.words_done++;
      remaining--;
      transferred_this_tenure = true;
      if (remaining == 0) {
        drv_.irdy_n.write(Logic::L1);
        drv_.ad.release();
        drv_.cbe.release();
        out = PciResult::Ok;
        co_await release_all();
        co_return;
      }
      if (preempted && remaining > 0 && !asserted(bus_.frame_n)) {
        // Latency-timer preemption: the FRAME# deassertion is visible on
        // the bus, so the transfer that just completed was the tenure's
        // last data phase; continue later as a disconnect.
        drv_.irdy_n.write(Logic::L1);
        drv_.ad.release();
        drv_.cbe.release();
        out = PciResult::Disconnect;
        co_await release_all();
        co_return;
      }
      if (stop) {
        // Disconnect with data: stop after this word, resume later.
        // FRAME# deasserts first with IRDY# held (the target has already
        // deasserted TRDY#, so no extra transfer happens), then IRDY#.
        drv_.frame_n.write(Logic::L1);
        co_await bus_.clk.posedge();
        drv_.irdy_n.write(Logic::L1);
        drv_.ad.release();
        drv_.cbe.release();
        out = PciResult::Disconnect;
        co_await release_all();
        co_return;
      }
      // Set up the next data phase.
      if (!rd) {
        last_ad = t.data[t.words_done];
        last_cbe = 0x0;
        drv_.ad.write_uint(last_ad);
        wrote_ad_last_cycle = true;
      }
      if (remaining == 1) drv_.frame_n.write(Logic::L1);
    } else if (devsel_seen && stop) {
      // Retry (or disconnect without data): target refuses this phase.
      // FRAME# deasserts first with IRDY# held, then IRDY# releases.
      if (remaining > 1) {
        drv_.frame_n.write(Logic::L1);
        co_await bus_.clk.posedge();
      }
      drv_.irdy_n.write(Logic::L1);
      drv_.ad.release();
      drv_.cbe.release();
      out = transferred_this_tenure ? PciResult::Disconnect : PciResult::Retry;
      co_await release_all();
      co_return;
    } else if (devsel_seen) {
      stats_.data_wait_cycles++;
    }
  }
}

Task PciMaster::release_all() {
  // The deasserting (high) levels written by the caller stay driven for
  // this cycle -- the sustained-tri-state hand-back -- then everything
  // floats.
  co_await bus_.clk.posedge();
  drv_.frame_n.release();
  drv_.irdy_n.release();
  drv_.ad.release();
  drv_.cbe.release();
  drv_.par.release();
}

}  // namespace hlcs::pci
