// Pin-level PCI target device: address decode (memory window, optional
// I/O window, configuration space by device number), DEVSEL# decode
// speed, programmable initial and per-word wait states, target retry and
// disconnect generation.  Backed by a PciMemory store.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "hlcs/pci/pci_bus.hpp"
#include "hlcs/pci/pci_memory.hpp"
#include "hlcs/pci/pci_types.hpp"

namespace hlcs::pci {

/// Directed protocol faults for checker validation (never enabled by a
/// well-formed system): the A/B suite in tests/pci/test_pci_assertions
/// drives these and asserts that PciMonitor and the property pack flag
/// the same edges.
struct TargetFaults {
  /// Serve tenures without ever asserting DEVSEL# (TRDY#/STOP# are still
  /// driven): violates M2/M6 and looks like a dropped DEVSEL# to the
  /// master, which master-aborts.
  bool no_devsel = false;
  /// >0: invert the driven PAR on every Nth read-data parity cycle
  /// (violates M5 on exactly those edges).
  unsigned corrupt_par_every = 0;
};

struct TargetConfig {
  std::uint32_t base = 0;          ///< memory window base (word aligned)
  std::uint32_t size = 0x1000;     ///< memory window size in bytes
  DevselSpeed devsel = DevselSpeed::Fast;
  unsigned initial_wait = 0;       ///< wait states before the first TRDY#
  unsigned per_word_wait = 0;      ///< wait states between burst words
  unsigned disconnect_after = 0;   ///< >0: disconnect after N words/tenure
  unsigned retry_first = 0;        ///< respond Retry to the first N tenures
  bool claim_io = false;           ///< also claim I/O commands in-window
  std::uint8_t device_number = 0;  ///< config-space decode (AD[15:11])
  std::uint16_t vendor_id = 0x1A2B;
  std::uint16_t device_id = 0x3C4D;
  TargetFaults faults = {};
};

struct TargetStats {
  std::uint64_t tenures = 0;
  std::uint64_t words_read = 0;
  std::uint64_t words_written = 0;
  std::uint64_t retries_issued = 0;
  std::uint64_t disconnects_issued = 0;
  std::uint64_t wait_states_inserted = 0;
};

class PciTarget : public sim::Module {
public:
  PciTarget(sim::Kernel& k, std::string name, PciBus& bus, TargetConfig cfg)
      : Module(k, std::move(name)),
        bus_(bus),
        drv_(bus),
        cfg_(cfg),
        mem_(cfg.size) {
    HLCS_ASSERT(cfg.base % 4 == 0, "target base must be word aligned");
    config_space_.fill(0);
    config_space_[0] = (static_cast<std::uint32_t>(cfg.device_id) << 16) |
                       cfg.vendor_id;
    config_space_[1] = 0x02000000;  // status/command placeholder
    config_space_[4] = cfg.base;    // BAR0
    spawn("fsm", [this]() { return run(); });
  }

  PciMemory& memory() { return mem_; }
  const PciMemory& memory() const { return mem_; }
  const TargetStats& stats() const { return stats_; }
  const TargetConfig& config() const { return cfg_; }

  std::uint32_t config_word(std::size_t index) const {
    return config_space_.at(index);
  }

private:
  enum class Space { None, Memory, Io, Config };

  Space decode(PciCommand cmd, std::uint32_t addr) const {
    switch (cmd) {
      case PciCommand::MemRead:
      case PciCommand::MemWrite:
      case PciCommand::MemReadMultiple:
      case PciCommand::MemReadLine:
      case PciCommand::MemWriteInvalidate:
        return (addr >= cfg_.base && addr < cfg_.base + cfg_.size)
                   ? Space::Memory
                   : Space::None;
      case PciCommand::IoRead:
      case PciCommand::IoWrite:
        return (cfg_.claim_io && addr >= cfg_.base &&
                addr < cfg_.base + cfg_.size)
                   ? Space::Io
                   : Space::None;
      case PciCommand::ConfigRead:
      case PciCommand::ConfigWrite:
        return (((addr >> 11) & 0x1F) == cfg_.device_number) ? Space::Config
                                                             : Space::None;
      default:
        return Space::None;
    }
  }

  std::uint32_t load(Space sp, std::uint32_t addr) const {
    if (sp == Space::Config) {
      return config_space_[(addr >> 2) & 0xF];
    }
    return mem_.read_word(addr - cfg_.base);
  }

  void store(Space sp, std::uint32_t addr, std::uint32_t value,
             std::uint8_t be_n) {
    if (sp == Space::Config) {
      // Only BAR0 (dword 4) is writable in this simplified device.
      if (((addr >> 2) & 0xF) == 4) config_space_[4] = value;
      return;
    }
    mem_.write_word(addr - cfg_.base, value, be_n);
  }

  sim::Task run();
  sim::Task serve_tenure(Space sp, PciCommand cmd, std::uint32_t addr);
  sim::Task refuse_with_retry();
  /// Write deasserting levels and schedule the tri-state release for the
  /// next edge (non-blocking, so run() never misses an address phase).
  void end_tenure();

  PciBus& bus_;
  PciAgentDrivers drv_;
  TargetConfig cfg_;
  PciMemory mem_;
  std::array<std::uint32_t, 16> config_space_{};
  TargetStats stats_;
  bool frame_prev_ = false;
  bool release_pending_ = false;
  std::uint64_t par_phases_ = 0;  ///< read parity cycles driven (fault counter)
};

}  // namespace hlcs::pci
