// Passive PCI protocol monitor: samples the bus on every rising edge,
// checks protocol invariants, and records every transaction it observes.
// Violations are collected (and optionally thrown), so tests can assert
// both "this traffic is legal" and "this corruption is detected".
//
// Checked rules:
//   M1  AD/CBE must never resolve to X while a transaction is active
//       (driver conflict).
//   M2  TRDY# asserted requires DEVSEL# asserted.
//   M3  FRAME# may deassert only while IRDY# is asserted.
//   M4  The address phase must carry a fully driven AD and C/BE#.
//   M5  PAR must equal even parity of the previous cycle's AD/CBE
//       whenever PAR is actively driven and AD was fully driven.
//   M6  STOP# asserted requires DEVSEL# asserted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hlcs/pci/pci_bus.hpp"
#include "hlcs/pci/pci_types.hpp"

namespace hlcs::pci {

/// One observed bus transaction (a tenure: address phase to idle).
struct BusRecord {
  PciCommand cmd = PciCommand::MemRead;
  std::uint32_t addr = 0;
  std::vector<std::uint32_t> words;
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;
  std::uint64_t wait_cycles = 0;  ///< cycles in-tenure without a transfer
  bool devsel_seen = false;
  bool stop_seen = false;

  PciResult result() const {
    if (!devsel_seen) return PciResult::MasterAbort;
    if (stop_seen && words.empty()) return PciResult::Retry;
    if (stop_seen) return PciResult::Disconnect;
    return PciResult::Ok;
  }
};

struct MonitorConfig {
  bool throw_on_violation = false;
  /// Stored violation strings are capped so multi-million-cycle sweeps
  /// on broken models cannot balloon memory; excess edges only bump
  /// dropped_violations().
  std::size_t max_recorded_violations = 1024;
};

class PciMonitor : public sim::Module {
public:
  PciMonitor(sim::Kernel& k, std::string name, PciBus& bus,
             MonitorConfig cfg = {})
      : Module(k, std::move(name)), bus_(bus), cfg_(cfg) {
    sim::MethodProcess& m =
        method("sample", [this] { on_edge(); }, /*initial_trigger=*/false);
    bus.clk.posedge().add_static(m);
  }

  const std::vector<BusRecord>& records() const { return records_; }
  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t dropped_violations() const { return dropped_violations_; }
  std::uint64_t total_violations() const {
    return violations_.size() + dropped_violations_;
  }
  std::uint64_t transfers() const { return transfers_; }
  std::uint64_t busy_cycles() const { return busy_cycles_; }
  std::uint64_t idle_cycles() const { return idle_cycles_; }
  std::uint64_t parity_checks() const { return parity_checks_; }

  void clear() {
    records_.clear();
    violations_.clear();
    dropped_violations_ = 0;
    transfers_ = 0;
    busy_cycles_ = 0;
    idle_cycles_ = 0;
  }

private:
  void violation(const std::string& what) {
    std::string msg = "cycle " + std::to_string(bus_.cycle()) + ": " + what;
    if (violations_.size() < cfg_.max_recorded_violations) {
      violations_.push_back(msg);
    } else {
      ++dropped_violations_;
    }
    if (cfg_.throw_on_violation) {
      throw ProtocolError(name() + ": " + msg);
    }
  }

  void on_edge();

  PciBus& bus_;
  MonitorConfig cfg_;
  std::vector<BusRecord> records_;
  std::vector<std::string> violations_;
  std::uint64_t dropped_violations_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t idle_cycles_ = 0;
  std::uint64_t parity_checks_ = 0;

  // sampling state
  bool in_transaction_ = false;
  bool frame_prev_ = false;
  bool open_record_ = false;
  BusRecord current_;
  sim::LogicVec ad_prev_;
  sim::LogicVec cbe_prev_;
};

}  // namespace hlcs::pci
