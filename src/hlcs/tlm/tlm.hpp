// Transaction-level IP models: the "memories, peripherals functional
// models" of the paper's Figure 2.  A TlmTarget serves word transactions
// through plain function calls; the functional bus interface routes
// application commands to these models without any pin activity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hlcs/pci/pci_types.hpp"
#include "hlcs/sim/assert.hpp"

namespace hlcs::tlm {

/// Outcome reuses the PCI result vocabulary so transcripts are directly
/// comparable across abstraction levels.
using Status = pci::PciResult;

class TlmTarget {
public:
  virtual ~TlmTarget() = default;

  /// Decoded address window.
  virtual std::uint32_t base() const = 0;
  virtual std::uint32_t size() const = 0;

  virtual Status read(std::uint32_t addr, std::vector<std::uint32_t>& out,
                      std::size_t count) = 0;
  virtual Status write(std::uint32_t addr,
                       const std::vector<std::uint32_t>& data) = 0;

  bool decodes(std::uint32_t addr) const {
    return addr >= base() && addr < base() + size();
  }
};

/// Flat functional memory.
class TlmMemory final : public TlmTarget {
public:
  TlmMemory(std::uint32_t base, std::uint32_t size_bytes)
      : base_(base), size_(size_bytes) {
    HLCS_ASSERT(size_bytes % 4 == 0, "TlmMemory size must be word aligned");
  }

  std::uint32_t base() const override { return base_; }
  std::uint32_t size() const override { return size_; }

  Status read(std::uint32_t addr, std::vector<std::uint32_t>& out,
              std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t a = addr + static_cast<std::uint32_t>(i) * 4;
      if (!decodes(a)) return Status::MasterAbort;
      auto it = words_.find((a - base_) / 4);
      out.push_back(it == words_.end() ? 0 : it->second);
    }
    return Status::Ok;
  }

  Status write(std::uint32_t addr,
               const std::vector<std::uint32_t>& data) override {
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::uint32_t a = addr + static_cast<std::uint32_t>(i) * 4;
      if (!decodes(a)) return Status::MasterAbort;
      words_[(a - base_) / 4] = data[i];
    }
    return Status::Ok;
  }

  std::uint32_t peek(std::uint32_t offset) const {
    auto it = words_.find(offset / 4);
    return it == words_.end() ? 0 : it->second;
  }

private:
  std::uint32_t base_;
  std::uint32_t size_;
  std::unordered_map<std::uint32_t, std::uint32_t> words_;
};

/// A small register-file peripheral: CTRL / STATUS / DATA / SCRATCH
/// registers with device-like behaviour (writing CTRL bit0 sets STATUS
/// busy for a number of polls -- enough to exercise polling loops in the
/// examples).  Word offsets: 0x0 CTRL, 0x4 STATUS, 0x8 DATA, 0xC SCRATCH.
class RegisterPeripheral final : public TlmTarget {
public:
  RegisterPeripheral(std::uint32_t base, unsigned busy_polls = 3)
      : base_(base), busy_polls_(busy_polls) {}

  std::uint32_t base() const override { return base_; }
  std::uint32_t size() const override { return 0x10; }

  Status read(std::uint32_t addr, std::vector<std::uint32_t>& out,
              std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t a = addr + static_cast<std::uint32_t>(i) * 4;
      if (!decodes(a)) return Status::MasterAbort;
      switch (a - base_) {
        case 0x0: out.push_back(ctrl_); break;
        case 0x4:
          if (busy_left_ > 0) {
            --busy_left_;
            out.push_back(0x1);  // busy
          } else {
            out.push_back(0x0);  // ready
          }
          break;
        case 0x8: out.push_back(data_); break;
        default: out.push_back(scratch_); break;
      }
    }
    return Status::Ok;
  }

  Status write(std::uint32_t addr,
               const std::vector<std::uint32_t>& data) override {
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::uint32_t a = addr + static_cast<std::uint32_t>(i) * 4;
      if (!decodes(a)) return Status::MasterAbort;
      switch (a - base_) {
        case 0x0:
          ctrl_ = data[i];
          if (ctrl_ & 1) {
            busy_left_ = busy_polls_;
            data_ = scratch_ ^ 0xFFFFFFFFu;  // the "operation": invert
          }
          break;
        case 0x8: data_ = data[i]; break;
        case 0xC: scratch_ = data[i]; break;
        default: break;  // STATUS read-only
      }
    }
    return Status::Ok;
  }

private:
  std::uint32_t base_;
  unsigned busy_polls_;
  unsigned busy_left_ = 0;
  std::uint32_t ctrl_ = 0;
  std::uint32_t data_ = 0;
  std::uint32_t scratch_ = 0;
};

/// Address router over several targets (first decode wins).
class TlmRouter final : public TlmTarget {
public:
  void attach(TlmTarget& t) { targets_.push_back(&t); }

  std::uint32_t base() const override { return 0; }
  std::uint32_t size() const override { return 0xFFFFFFFF; }

  Status read(std::uint32_t addr, std::vector<std::uint32_t>& out,
              std::size_t count) override {
    if (TlmTarget* t = route(addr)) return t->read(addr, out, count);
    return Status::MasterAbort;
  }
  Status write(std::uint32_t addr,
               const std::vector<std::uint32_t>& data) override {
    if (TlmTarget* t = route(addr)) return t->write(addr, data);
    return Status::MasterAbort;
  }

private:
  TlmTarget* route(std::uint32_t addr) const {
    for (TlmTarget* t : targets_) {
      if (t->decodes(addr)) return t;
    }
    return nullptr;
  }
  std::vector<TlmTarget*> targets_;
};

}  // namespace hlcs::tlm
