// Transaction-level IP models: the "memories, peripherals functional
// models" of the paper's Figure 2.  A TlmTarget serves word transactions
// through plain function calls; the functional bus interface routes
// application commands to these models without any pin activity.
//
// Targets may additionally grant a DMI-style direct window
// (get_direct_window): a raw span over their backing store that the
// loosely-timed fast path (hlcs/tlm/lt.hpp) turns into plain loads and
// stores.  A window is valid only while the provider's dmi_version() is
// unchanged; any decode change (e.g. TlmRouter::attach) bumps the
// version and thereby invalidates every outstanding window.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hlcs/pci/pci_types.hpp"
#include "hlcs/sim/assert.hpp"

namespace hlcs::tlm {

/// Outcome reuses the PCI result vocabulary so transcripts are directly
/// comparable across abstraction levels.
using Status = pci::PciResult;

/// A direct-access grant over a contiguous word span of a target's
/// backing store (the TLM-2.0 DMI idea).  The holder may load/store
/// through `words` for addresses in [base, base+size) while the
/// provider's dmi_version() still equals `version`; a mismatch means
/// the decode map changed and the window must be re-acquired.
struct DmiWindow {
  std::uint32_t* words = nullptr;  ///< first word of the span
  std::uint32_t base = 0;          ///< first byte address covered
  std::uint32_t size = 0;          ///< bytes covered
  std::uint64_t version = 0;       ///< provider dmi_version() at grant

  bool valid() const { return words != nullptr; }
  bool covers(std::uint32_t addr, std::size_t bytes) const {
    return words != nullptr && addr >= base &&
           static_cast<std::uint64_t>(addr) - base + bytes <= size;
  }
  std::uint32_t* at(std::uint32_t addr) const {
    return words + (addr - base) / 4;
  }
};

class TlmTarget {
public:
  virtual ~TlmTarget() = default;

  /// Decoded address window.
  virtual std::uint32_t base() const = 0;
  virtual std::uint32_t size() const = 0;

  virtual Status read(std::uint32_t addr, std::vector<std::uint32_t>& out,
                      std::size_t count) = 0;
  virtual Status write(std::uint32_t addr,
                       const std::vector<std::uint32_t>& data) = 0;

  /// Request a direct window covering `addr`.  Memory-like targets
  /// return a span (at least the enclosing word, typically a whole
  /// page); targets with read/write side effects keep the default and
  /// return an invalid window, forcing every access through
  /// read()/write().
  virtual DmiWindow get_direct_window(std::uint32_t addr) {
    (void)addr;
    return {};
  }

  /// Monotonic decode-map generation.  A cached DmiWindow is stale as
  /// soon as the provider's version differs from the one captured at
  /// grant time.
  virtual std::uint64_t dmi_version() const { return 0; }

  bool decodes(std::uint32_t addr) const {
    return addr >= base() && addr < base() + size();
  }
};

/// Flat functional memory, backed by 4 KiB pages allocated (zero-filled)
/// on first write.  Reads of never-written pages return zero without
/// allocating; direct windows allocate their page eagerly because they
/// hand out writable pointers.  Pages never move once allocated, so a
/// granted window stays valid for the life of the memory (the version
/// never changes).
class TlmMemory final : public TlmTarget {
public:
  static constexpr std::uint32_t kPageBytes = 4096;
  static constexpr std::uint32_t kPageWords = kPageBytes / 4;

  TlmMemory(std::uint32_t base, std::uint32_t size_bytes)
      : base_(base), size_(size_bytes) {
    HLCS_ASSERT(size_bytes % 4 == 0, "TlmMemory size must be word aligned");
    pages_.resize((size_bytes + kPageBytes - 1) / kPageBytes);
  }

  std::uint32_t base() const override { return base_; }
  std::uint32_t size() const override { return size_; }

  Status read(std::uint32_t addr, std::vector<std::uint32_t>& out,
              std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t a = addr + static_cast<std::uint32_t>(i) * 4;
      if (!decodes(a)) return Status::MasterAbort;
      const std::uint32_t off = a - base_;
      const Page* p = pages_[off / kPageBytes].get();
      out.push_back(p == nullptr ? 0 : p->w[(off % kPageBytes) / 4]);
    }
    return Status::Ok;
  }

  Status write(std::uint32_t addr,
               const std::vector<std::uint32_t>& data) override {
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::uint32_t a = addr + static_cast<std::uint32_t>(i) * 4;
      if (!decodes(a)) return Status::MasterAbort;
      const std::uint32_t off = a - base_;
      ensure_page(off / kPageBytes).w[(off % kPageBytes) / 4] = data[i];
    }
    return Status::Ok;
  }

  /// Direct window over the page containing `addr`, clamped to the
  /// decode window's tail.  Allocates the page (zero-filled) because the
  /// span is writable.
  DmiWindow get_direct_window(std::uint32_t addr) override {
    if (!decodes(addr)) return {};
    const std::uint32_t page = (addr - base_) / kPageBytes;
    DmiWindow w;
    w.words = ensure_page(page).w.data();
    w.base = base_ + page * kPageBytes;
    w.size = std::min(kPageBytes, size_ - page * kPageBytes);
    w.version = dmi_version();
    return w;
  }

  std::uint32_t peek(std::uint32_t offset) const {
    if (offset >= size_) return 0;
    const Page* p = pages_[offset / kPageBytes].get();
    return p == nullptr ? 0 : p->w[(offset % kPageBytes) / 4];
  }

  /// Pages materialised so far (observability for tests/benches: a
  /// sequential sweep should allocate ceil(span/4KiB) pages, reads of
  /// untouched space none).
  std::size_t pages_allocated() const {
    std::size_t n = 0;
    for (const auto& p : pages_) n += p != nullptr;
    return n;
  }

private:
  struct Page {
    std::array<std::uint32_t, kPageWords> w{};  // zero-filled on first touch
  };

  Page& ensure_page(std::uint32_t index) {
    if (!pages_[index]) pages_[index] = std::make_unique<Page>();
    return *pages_[index];
  }

  std::uint32_t base_;
  std::uint32_t size_;
  std::vector<std::unique_ptr<Page>> pages_;
};

/// A small register-file peripheral: CTRL / STATUS / DATA / SCRATCH
/// registers with device-like behaviour (writing CTRL bit0 sets STATUS
/// busy for a number of polls -- enough to exercise polling loops in the
/// examples).  Word offsets: 0x0 CTRL, 0x4 STATUS, 0x8 DATA, 0xC SCRATCH.
/// Reads have side effects (STATUS decrements the busy countdown), so
/// this target never grants a direct window.
class RegisterPeripheral final : public TlmTarget {
public:
  RegisterPeripheral(std::uint32_t base, unsigned busy_polls = 3)
      : base_(base), busy_polls_(busy_polls) {}

  std::uint32_t base() const override { return base_; }
  std::uint32_t size() const override { return 0x10; }

  Status read(std::uint32_t addr, std::vector<std::uint32_t>& out,
              std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t a = addr + static_cast<std::uint32_t>(i) * 4;
      if (!decodes(a)) return Status::MasterAbort;
      switch (a - base_) {
        case 0x0: out.push_back(ctrl_); break;
        case 0x4:
          if (busy_left_ > 0) {
            --busy_left_;
            out.push_back(0x1);  // busy
          } else {
            out.push_back(0x0);  // ready
          }
          break;
        case 0x8: out.push_back(data_); break;
        default: out.push_back(scratch_); break;
      }
    }
    return Status::Ok;
  }

  Status write(std::uint32_t addr,
               const std::vector<std::uint32_t>& data) override {
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::uint32_t a = addr + static_cast<std::uint32_t>(i) * 4;
      if (!decodes(a)) return Status::MasterAbort;
      switch (a - base_) {
        case 0x0:
          ctrl_ = data[i];
          if (ctrl_ & 1) {
            busy_left_ = busy_polls_;
            data_ = scratch_ ^ 0xFFFFFFFFu;  // the "operation": invert
          }
          break;
        case 0x8: data_ = data[i]; break;
        case 0xC: scratch_ = data[i]; break;
        default: break;  // STATUS read-only
      }
    }
    return Status::Ok;
  }

private:
  std::uint32_t base_;
  unsigned busy_polls_;
  unsigned busy_left_ = 0;
  std::uint32_t ctrl_ = 0;
  std::uint32_t data_ = 0;
  std::uint32_t scratch_ = 0;
};

/// Address router over several targets.  Targets are kept sorted by base
/// with overlap rejection at attach() (mirroring fabric::EndpointRegistry
/// semantics), so route() is a binary search instead of a linear scan.
class TlmRouter final : public TlmTarget {
public:
  /// Registers `t`; throws if its window overlaps an attached target.
  /// Every attach bumps the DMI version: the decode map changed, so all
  /// outstanding direct windows over this router are invalidated.
  void attach(TlmTarget& t) {
    auto it = std::lower_bound(
        targets_.begin(), targets_.end(), &t,
        [](const TlmTarget* a, const TlmTarget* b) {
          return a->base() < b->base();
        });
    if (it != targets_.end() && t.base() + t.size() > (*it)->base()) {
      fail("TlmRouter: window [" + std::to_string(t.base()) + ", +" +
           std::to_string(t.size()) + ") overlaps an attached target");
    }
    if (it != targets_.begin()) {
      const TlmTarget* prev = *(it - 1);
      if (prev->base() + prev->size() > t.base()) {
        fail("TlmRouter: window [" + std::to_string(t.base()) + ", +" +
             std::to_string(t.size()) + ") overlaps an attached target");
      }
    }
    targets_.insert(it, &t);
    ++generation_;
  }

  std::uint32_t base() const override { return 0; }
  std::uint32_t size() const override { return 0xFFFFFFFF; }

  Status read(std::uint32_t addr, std::vector<std::uint32_t>& out,
              std::size_t count) override {
    if (TlmTarget* t = route(addr)) return t->read(addr, out, count);
    return Status::MasterAbort;
  }
  Status write(std::uint32_t addr,
               const std::vector<std::uint32_t>& data) override {
    if (TlmTarget* t = route(addr)) return t->write(addr, data);
    return Status::MasterAbort;
  }

  /// Forwarded direct window, restamped with the ROUTER's version so a
  /// later attach() invalidates it even though the child's own span is
  /// unchanged.
  DmiWindow get_direct_window(std::uint32_t addr) override {
    if (TlmTarget* t = route(addr)) {
      DmiWindow w = t->get_direct_window(addr);
      if (w.valid()) w.version = dmi_version();
      return w;
    }
    return {};
  }

  /// Folds the attach generation with the children's versions, so a
  /// change anywhere below propagates to windows granted through the
  /// router.  O(targets); holders amortise the check over whole
  /// commands, not words (hlcs/tlm/lt.hpp).
  std::uint64_t dmi_version() const override {
    std::uint64_t v = generation_;
    for (const TlmTarget* t : targets_) v += t->dmi_version();
    return v;
  }

private:
  TlmTarget* route(std::uint32_t addr) const {
    auto it = std::upper_bound(
        targets_.begin(), targets_.end(), addr,
        [](std::uint32_t a, const TlmTarget* t) { return a < t->base(); });
    if (it == targets_.begin()) return nullptr;
    TlmTarget* t = *(it - 1);
    return (addr >= t->base() && addr - t->base() < t->size()) ? t : nullptr;
  }

  std::vector<TlmTarget*> targets_;  // sorted by base(), non-overlapping
  std::uint64_t generation_ = 0;
};

}  // namespace hlcs::tlm
