// Stimuli generators: "a set of stimuli generators, that will simulate
// the working conditions of the system in the model" (paper Sec. 3).
// Each generator produces a deterministic, seeded stream of CommandType
// values, so the same workload can be replayed against the functional
// interface, the pin-accurate interface, and the synthesised model.
#pragma once

#include <cstdint>
#include <vector>

#include "hlcs/pattern/command.hpp"
#include "hlcs/sim/random.hpp"

namespace hlcs::tlm {

struct WorkloadConfig {
  std::uint32_t base = 0x1000;      ///< target window base
  std::uint32_t span = 0x1000;      ///< addressable bytes
  std::size_t max_burst = 8;
  unsigned read_percent = 50;       ///< reads vs writes
  unsigned burst_percent = 30;      ///< burst vs single
  std::uint64_t seed = 0xBADC0DE;
};

/// Write-then-read sweep over the window: deterministic, verifiable
/// (reads must return what was written).
inline std::vector<pattern::CommandType> sequential_workload(
    const WorkloadConfig& cfg, std::size_t transactions) {
  std::vector<pattern::CommandType> cmds;
  cmds.reserve(transactions);
  const std::uint32_t words = cfg.span / 4;
  for (std::size_t i = 0; i < transactions / 2; ++i) {
    const std::uint32_t a =
        cfg.base + (static_cast<std::uint32_t>(i) % words) * 4;
    cmds.push_back(pattern::CommandType{
        .op = pattern::BusOp::Write,
        .addr = a,
        .data = {0xC0DE0000u + static_cast<std::uint32_t>(i)}});
  }
  for (std::size_t i = 0; i < transactions - transactions / 2; ++i) {
    const std::uint32_t a =
        cfg.base + (static_cast<std::uint32_t>(i) % words) * 4;
    cmds.push_back(pattern::CommandType{
        .op = pattern::BusOp::Read, .addr = a, .count = 1});
  }
  return cmds;
}

/// Mixed random workload (single + burst, reads + writes), seeded.
inline std::vector<pattern::CommandType> random_workload(
    const WorkloadConfig& cfg, std::size_t transactions) {
  sim::Xorshift rng(cfg.seed);
  std::vector<pattern::CommandType> cmds;
  cmds.reserve(transactions);
  const std::uint32_t words = cfg.span / 4;
  for (std::size_t i = 0; i < transactions; ++i) {
    const bool burst = rng.chance(cfg.burst_percent, 100);
    const std::size_t len =
        burst ? 2 + rng.below(cfg.max_burst > 2 ? cfg.max_burst - 1 : 1) : 1;
    // Keep the burst inside the window.
    const std::uint32_t max_start = words > len
                                        ? words - static_cast<std::uint32_t>(len)
                                        : 0;
    const std::uint32_t a =
        cfg.base + static_cast<std::uint32_t>(rng.below(max_start + 1)) * 4;
    if (rng.chance(cfg.read_percent, 100)) {
      cmds.push_back(pattern::CommandType{
          .op = len > 1 ? pattern::BusOp::ReadBurst : pattern::BusOp::Read,
          .addr = a,
          .count = len});
    } else {
      std::vector<std::uint32_t> payload;
      for (std::size_t w = 0; w < len; ++w) {
        payload.push_back(static_cast<std::uint32_t>(rng.next()));
      }
      cmds.push_back(pattern::CommandType{
          .op = len > 1 ? pattern::BusOp::WriteBurst : pattern::BusOp::Write,
          .addr = a,
          .data = std::move(payload)});
    }
  }
  return cmds;
}

/// DMA-like workload: long write bursts followed by long read-back
/// bursts (the streaming pattern the paper's flow motivates).
inline std::vector<pattern::CommandType> dma_workload(
    const WorkloadConfig& cfg, std::size_t blocks, std::size_t block_words) {
  std::vector<pattern::CommandType> cmds;
  sim::Xorshift rng(cfg.seed);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint32_t a =
        cfg.base +
        static_cast<std::uint32_t>((b * block_words * 4) % cfg.span);
    std::vector<std::uint32_t> payload;
    for (std::size_t w = 0; w < block_words; ++w) {
      payload.push_back(static_cast<std::uint32_t>(rng.next()));
    }
    cmds.push_back(pattern::CommandType{.op = pattern::BusOp::WriteBurst,
                                        .addr = a,
                                        .data = std::move(payload)});
    cmds.push_back(pattern::CommandType{
        .op = pattern::BusOp::ReadBurst, .addr = a, .count = block_words});
  }
  return cmds;
}

}  // namespace hlcs::tlm
