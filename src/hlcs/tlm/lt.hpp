// Loosely-timed (LT) execution support: temporal decoupling with a
// quantum keeper, in the style of Klingauf's "Systematic Transaction
// Level Modeling" / OSCI TLM-2.0 LT coding style (PAPERS.md).
//
// An LT initiator runs AHEAD of kernel time: each transaction's cost is
// folded into a local-time offset instead of a kernel wait, and the
// kernel is synchronised only when the offset reaches the configured
// quantum.  The sync itself has a fast path -- Kernel::try_warp() moves
// the clock directly when the initiator is the only pending activity --
// and falls back to an ordinary timed wait when other processes are
// due first.  Combined with DMI windows (hlcs/tlm/tlm.hpp) and batched
// guarded-method commits (osss::SharedObject::commit_batch), a stimuli
// workload executes as plain loads and stores between syncs.
#pragma once

#include <coroutine>
#include <cstdint>

#include "hlcs/sim/kernel.hpp"
#include "hlcs/sim/time.hpp"

namespace hlcs::tlm {

/// Counters of the loosely-timed fast path, reported through the
/// unified --stats printers next to NetlistStats/JitStats.
struct TlmStats {
  std::uint64_t transactions = 0;  ///< commands served on the LT path
  std::uint64_t quanta = 0;        ///< full quanta completed
  std::uint64_t syncs = 0;         ///< kernel synchronisations
  std::uint64_t warps = 0;         ///< syncs satisfied by Kernel::try_warp
  std::uint64_t dmi_hits = 0;      ///< window-granted access chunks
  std::uint64_t dmi_misses = 0;    ///< fallbacks through read()/write()
  std::uint64_t batched_guarded_calls = 0;  ///< calls folded into commits

  friend bool operator==(const TlmStats&, const TlmStats&) = default;
};

/// Tracks one initiator's local-time offset against kernel time and
/// decides when to synchronise.  `sync()` is awaitable: it either warps
/// the kernel clock forward without suspending (counted in
/// TlmStats::warps) or schedules a plain timed resume at local time.
class QuantumKeeper {
public:
  QuantumKeeper(sim::Kernel& k, sim::Time quantum, TlmStats& stats)
      : kernel_(k), quantum_(quantum), stats_(stats) {}

  sim::Time quantum() const { return quantum_; }
  void set_quantum(sim::Time q) { quantum_ = q; }

  /// Local run-ahead beyond kernel time.
  sim::Time local_offset() const { return offset_; }
  /// Absolute local time: what the initiator believes "now" is.
  sim::Time local_now() const { return kernel_.now() + offset_; }

  /// Accrue local cost without touching the kernel.
  void inc(sim::Time t) { offset_ += t; }

  /// True once the accumulated offset fills the quantum.
  bool need_sync() const { return offset_.picos() >= quantum_.picos(); }

  struct SyncAwaiter {
    QuantumKeeper& qk;
    bool await_ready() {
      if (qk.offset_.is_zero()) return true;
      if (qk.kernel_.try_warp(qk.kernel_.now() + qk.offset_)) {
        qk.finish_sync(/*warped=*/true);
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      qk.kernel_.schedule_resume(qk.kernel_.now() + qk.offset_, h);
    }
    void await_resume() {
      // Only reached after a real suspension (await_ready zeroes the
      // offset on the warp path), so a non-zero offset means the timed
      // resume just completed this sync.
      if (!qk.offset_.is_zero()) qk.finish_sync(/*warped=*/false);
    }
  };

  /// Bring kernel time up to local time and reset the offset.  No-op
  /// (no suspension) when the offset is zero.
  SyncAwaiter sync() { return SyncAwaiter{*this}; }

private:
  friend struct SyncAwaiter;

  void finish_sync(bool warped) {
    offset_ = sim::Time::zero();
    stats_.syncs++;
    if (warped) stats_.warps++;
  }

  sim::Kernel& kernel_;
  sim::Time quantum_;
  TlmStats& stats_;
  sim::Time offset_ = sim::Time::zero();
};

}  // namespace hlcs::tlm
