// SimpleBus: a second pin-level bus substrate (a minimal synchronous
// ready/valid handshake bus, in the spirit of AHB-Lite without bursts).
//
// The paper's methodology promises a LIBRARY of interface elements: "for
// each communication abstraction level, an interface could be provided
// in order to connect the units under design to the IPs models dealt
// with".  SimpleBus exists to make that concrete -- the same application
// and the same guarded-method contract refine onto a completely
// different protocol by swapping one library element
// (hlcs::pattern::SimpleBusInterface vs PciBusInterface).
//
// Protocol (all signals sampled at the rising edge):
//   master drives:  valid, write, addr[32], wdata[32]
//   targets drive (resolved wires, driven only when selected):
//                   ready, err, rdata[32]
//   A transfer completes at the edge where valid && (ready || err).
//   A target that decodes the address answers after its configured
//   latency; if nobody answers within the master's timeout the master
//   reports a decode error (the PCI master-abort analogue).
#pragma once

#include <cstdint>
#include <string>

#include "hlcs/pci/pci_memory.hpp"
#include "hlcs/sim/clock.hpp"
#include "hlcs/sim/module.hpp"
#include "hlcs/sim/signal.hpp"
#include "hlcs/sim/wire.hpp"

namespace hlcs::sbus {

class SimpleBus : public sim::Module {
public:
  SimpleBus(sim::Kernel& k, std::string name, sim::Clock& clock)
      : Module(k, std::move(name)),
        clk(clock),
        valid(k, sub("valid"), false),
        write(k, sub("write"), false),
        addr(k, sub("addr"), 0),
        wdata(k, sub("wdata"), 0),
        ready(k, sub("ready")),
        err(k, sub("err")),
        rdata(k, sub("rdata"), 32) {}

  sim::Clock& clk;
  // Master-driven.
  sim::Signal<bool> valid;
  sim::Signal<bool> write;
  sim::Signal<std::uint32_t> addr;
  sim::Signal<std::uint32_t> wdata;
  // Target-driven (resolved; Z when no target selected).
  sim::Wire ready;
  sim::Wire err;
  sim::WireVec rdata;

  std::uint64_t cycle() const { return clk.cycles(); }
};

struct SimpleTargetConfig {
  std::uint32_t base = 0;
  std::uint32_t size = 0x1000;
  unsigned latency = 0;  ///< cycles between seeing valid and ready
};

/// Memory-backed target.
class SimpleBusTarget : public sim::Module {
public:
  SimpleBusTarget(sim::Kernel& k, std::string name, SimpleBus& bus,
                  SimpleTargetConfig cfg)
      : Module(k, std::move(name)),
        bus_(bus),
        cfg_(cfg),
        mem_(cfg.size),
        ready_(bus.ready.make_driver()),
        err_(bus.err.make_driver()),
        rdata_(bus.rdata.make_driver()) {
    spawn("fsm", [this]() { return run(); });
  }

  pci::PciMemory& memory() { return mem_; }
  std::uint64_t accesses() const { return accesses_; }

private:
  bool decodes(std::uint32_t a) const {
    return a >= cfg_.base && a < cfg_.base + cfg_.size;
  }

  sim::Task run() {
    for (;;) {
      co_await bus_.clk.posedge();
      if (!bus_.valid.read() || !decodes(bus_.addr.read())) continue;
      // Selected: wait the configured latency, then answer.
      for (unsigned i = 0; i < cfg_.latency; ++i) {
        co_await bus_.clk.posedge();
        if (!bus_.valid.read()) break;  // master gave up
      }
      if (!bus_.valid.read()) continue;
      const std::uint32_t a = bus_.addr.read() - cfg_.base;
      if (bus_.write.read()) {
        mem_.write_word(a & ~3u, bus_.wdata.read());
      } else {
        rdata_.write_uint(mem_.read_word(a & ~3u));
      }
      ready_.write(sim::Logic::L1);
      ++accesses_;
      // Hold until the master samples the completion edge.
      co_await bus_.clk.posedge();
      ready_.release();
      rdata_.release();
    }
  }

  SimpleBus& bus_;
  SimpleTargetConfig cfg_;
  pci::PciMemory mem_;
  sim::Wire::Driver ready_;
  sim::Wire::Driver err_;
  sim::WireVec::Driver rdata_;
  std::uint64_t accesses_ = 0;
};

struct SimpleMasterConfig {
  unsigned timeout = 16;  ///< cycles to wait for ready before giving up
};

struct SimpleMasterStats {
  std::uint64_t transfers = 0;
  std::uint64_t wait_cycles = 0;
  std::uint64_t decode_errors = 0;
};

class SimpleBusMaster : public sim::Module {
public:
  SimpleBusMaster(sim::Kernel& k, std::string name, SimpleBus& bus,
                  SimpleMasterConfig cfg = {})
      : Module(k, std::move(name)), bus_(bus), cfg_(cfg) {}

  /// One word transfer; returns true on success (for reads, *data is the
  /// result), false on decode error / timeout.
  sim::Task transfer(bool is_write, std::uint32_t address,
                     std::uint32_t* data, bool* ok) {
    bus_.addr.write(address);
    bus_.write.write(is_write);
    if (is_write) bus_.wdata.write(*data);
    bus_.valid.write(true);
    *ok = false;
    for (unsigned waited = 0; waited <= cfg_.timeout; ++waited) {
      co_await bus_.clk.posedge();
      if (bus_.ready.read() == sim::Logic::L1) {
        if (!is_write) {
          *data = static_cast<std::uint32_t>(bus_.rdata.read().to_uint());
        }
        *ok = true;
        stats_.transfers++;
        break;
      }
      if (bus_.err.read() == sim::Logic::L1) break;
      stats_.wait_cycles++;
    }
    if (!*ok) stats_.decode_errors++;
    bus_.valid.write(false);
    co_return;
  }

  const SimpleMasterStats& stats() const { return stats_; }

private:
  SimpleBus& bus_;
  SimpleMasterConfig cfg_;
  SimpleMasterStats stats_;
};

}  // namespace hlcs::sbus
