// Umbrella header for the whole library.
#pragma once

#include "hlcs/check/check.hpp"
#include "hlcs/contend/contend.hpp"
#include "hlcs/osss/osss.hpp"
#include "hlcs/pattern/pattern.hpp"
#include "hlcs/pci/pci.hpp"
#include "hlcs/sbus/simple_bus.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/synth/synth.hpp"
#include "hlcs/tlm/lt.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/tlm/tlm.hpp"
#include "hlcs/verify/compare.hpp"
#include "hlcs/verify/coverage.hpp"
#include "hlcs/verify/transcript.hpp"
#include "hlcs/verify/vcd_reader.hpp"
