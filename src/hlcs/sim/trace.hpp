// VCD waveform tracing.  Channels register as Traceable; the kernel calls
// Sampler::sample() at the end of every delta cycle and the trace records
// value changes in standard VCD format (viewable in GTKWave), which is how
// the paper's Figure 4 waveforms are regenerated.
//
// The write path is change-driven and allocation-free in steady state:
// channels that commit a value change push their trace slot onto a dirty
// list (Traceable::trace_touch), so sample() visits only changed items
// instead of polling every registered channel; values travel as packed
// 2-bit-per-position TraceValue snapshots (scalar and <=64-bit vectors
// never touch the heap) and are compared word-wise against the last
// emitted snapshot; text accumulates in a chunked append buffer flushed
// in large writes.  The emitted bytes are identical to the original
// poll-everything emitter (pinned by tests/verify/golden_trace.vcd).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "hlcs/sim/assert.hpp"
#include "hlcs/sim/time.hpp"

namespace hlcs::sim {

class Trace;

/// A packed 4-valued vector snapshot: one 2-bit code per bit position,
/// split into two bit-planes (`lo` = code bit 0, `hi` = code bit 1).
/// Codes follow the Logic enum: 0 -> '0', 1 -> '1', 2 -> 'z', 3 -> 'x',
/// so for a LogicVec the planes are exactly `val|x` and `z|x`, and for
/// two-valued data (bool, integers) the hi plane is zero and the lo plane
/// is the value itself.  Widths up to 64 live entirely in two inline
/// words; wider values (seen only when parsing external VCD files) spill
/// to a heap vector laid out as [lo words..., hi words...].
class TraceValue {
public:
  TraceValue() = default;

  unsigned width() const { return width_; }
  bool is_inline() const { return width_ <= 64; }

  /// Make this an all-'0' value of `width` bits, keeping any existing
  /// heap capacity.
  void reset(unsigned width) {
    width_ = width;
    lo_ = hi_ = 0;
    if (width > 64) {
      wide_.assign(2 * words(), 0);
    } else {
      wide_.clear();
    }
  }

  /// Fast path: adopt both planes of a value of `width` <= 64 bits.
  void assign_inline(unsigned width, std::uint64_t lo, std::uint64_t hi) {
    HLCS_ASSERT(width >= 1 && width <= 64, "TraceValue inline width");
    width_ = width;
    lo_ = lo;
    hi_ = hi;
    wide_.clear();
  }

  /// Set the 2-bit code at bit position `i` (0 = LSB / rightmost char).
  void set_code(unsigned i, std::uint8_t code) {
    HLCS_ASSERT(i < width_, "TraceValue::set_code out of range");
    if (width_ <= 64) {
      const std::uint64_t b = 1ull << i;
      lo_ = (lo_ & ~b) | (std::uint64_t(code & 1) << i);
      hi_ = (hi_ & ~b) | (std::uint64_t(code >> 1) << i);
    } else {
      const std::size_t w = i / 64;
      const std::uint64_t b = 1ull << (i % 64);
      std::uint64_t& lo = wide_[w];
      std::uint64_t& hi = wide_[words() + w];
      lo = (lo & ~b) | (std::uint64_t(code & 1) << (i % 64));
      hi = (hi & ~b) | (std::uint64_t(code >> 1) << (i % 64));
    }
  }

  std::uint8_t code_at(unsigned i) const {
    HLCS_ASSERT(i < width_, "TraceValue::code_at out of range");
    if (width_ <= 64) {
      return static_cast<std::uint8_t>((lo_ >> i & 1) | ((hi_ >> i & 1) << 1));
    }
    const std::size_t w = i / 64;
    return static_cast<std::uint8_t>((wide_[w] >> (i % 64) & 1) |
                                     ((wide_[words() + w] >> (i % 64) & 1)
                                      << 1));
  }

  /// Append the value as VCD characters, MSB first, full width (the
  /// emitter does not canonically truncate; neither did its predecessor).
  void append_chars(std::string& out) const {
    for (unsigned i = width_; i-- > 0;) out.push_back(char_at(i));
  }

  std::string to_string() const {
    std::string s;
    s.reserve(width_);
    append_chars(s);
    return s;
  }

  char char_at(unsigned i) const {
    static constexpr char kChars[4] = {'0', '1', 'z', 'x'};
    return kChars[code_at(i)];
  }

  void swap(TraceValue& o) noexcept {
    std::swap(width_, o.width_);
    std::swap(lo_, o.lo_);
    std::swap(hi_, o.hi_);
    wide_.swap(o.wide_);
  }

  friend bool operator==(const TraceValue& a, const TraceValue& b) {
    if (a.width_ != b.width_) return false;
    if (a.width_ <= 64) return a.lo_ == b.lo_ && a.hi_ == b.hi_;
    return a.wide_ == b.wide_;
  }

private:
  std::size_t words() const { return (width_ + 63u) / 64u; }

  unsigned width_ = 0;
  std::uint64_t lo_ = 0;  // plane of code bit 0 (width <= 64)
  std::uint64_t hi_ = 0;  // plane of code bit 1 (width <= 64)
  std::vector<std::uint64_t> wide_;  // width > 64: [lo words, hi words]
};

class Traceable {
public:
  virtual ~Traceable();
  virtual std::string trace_name() const = 0;
  virtual unsigned trace_width() const = 0;
  /// Pack the current value into `v` (overwrites `v` entirely).
  virtual void trace_value_into(TraceValue& v) const = 0;
  /// Current value rendered MSB-first with VCD characters 0/1/x/z.
  /// Convenience for tests and tools; the trace itself never builds
  /// these strings.
  std::string trace_value() const;

protected:
  /// Channels call this when an update commits a changed value; it marks
  /// the trace slot dirty so the next sample() visits this item.  No-op
  /// when the traceable is not registered with a live Trace.
  void trace_touch();

private:
  friend class Trace;
  Trace* trace_hook_ = nullptr;
  std::uint32_t trace_slot_ = 0;
};

/// What the kernel sees: something to call after every delta cycle.
/// Decouples the kernel from the concrete Trace implementation so tests
/// and tools can substitute their own observers.
class Sampler {
public:
  virtual ~Sampler() = default;
  /// Record state at simulated time `now`; called after every delta.
  virtual void sample(Time now) = 0;
};

/// Observability counters for the waveform fast path, in the style of
/// KernelStats / NetlistStats.
struct TraceStats {
  std::uint64_t registered = 0;    // traceables added
  std::uint64_t samples = 0;       // sample() calls
  std::uint64_t dirty_visits = 0;  // items visited across all samples
  std::uint64_t changes = 0;       // value records written (incl. $dumpvars)
  std::uint64_t bytes_written = 0; // bytes flushed to the file
  std::uint64_t flushes = 0;       // buffer flushes (large writes)
  std::uint64_t packs_inline = 0;  // values packed without heap
  std::uint64_t packs_heap = 0;    // values spilled to the wide buffer
};

class Trace final : public Sampler {
public:
  /// Opens `path` for writing; the header is emitted on the first sample.
  explicit Trace(std::string path);
  ~Trace() override;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  void add(Traceable& t);

  /// Record changes at simulated time `now`.  Idempotent per (time,
  /// value) pair; called by the kernel after every delta cycle.
  void sample(Time now) override;

  /// Write out any buffered text.  Called automatically on destruction.
  void flush();

  const std::string& path() const { return path_; }
  const TraceStats& stats() const { return stats_; }

private:
  friend class Traceable;

  struct Item {
    Traceable* t;     // null once the traceable was destroyed
    std::string id;   // VCD identifier code
    TraceValue last;  // last emitted packed value
    unsigned width;
    bool dirty;
  };

  void touch(std::uint32_t slot) {
    Item& it = items_[slot];
    if (!it.dirty) {
      it.dirty = true;
      dirty_.push_back(slot);
    }
  }
  void forget(std::uint32_t slot) { items_[slot].t = nullptr; }

  void write_header();
  void first_sample(Time now);
  static std::string id_for(std::size_t index);
  void emit(const Item& item, const TraceValue& value);
  void note_pack(const TraceValue& v) {
    if (v.is_inline()) {
      stats_.packs_inline++;
    } else {
      stats_.packs_heap++;
    }
  }

  std::string path_;
  std::ofstream out_;
  std::vector<Item> items_;
  std::vector<std::uint32_t> dirty_;
  TraceValue scratch_;
  std::string buf_;
  TraceStats stats_;
  bool header_written_ = false;
  std::uint64_t marker_time_ps_ = 0;
  bool marker_valid_ = false;
};

inline void Traceable::trace_touch() {
  if (trace_hook_) trace_hook_->touch(trace_slot_);
}

}  // namespace hlcs::sim
