// VCD waveform tracing.  Channels register as Traceable; the kernel calls
// Trace::sample() at the end of every delta cycle and the trace records
// value changes in standard VCD format (viewable in GTKWave), which is how
// the paper's Figure 4 waveforms are regenerated.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "hlcs/sim/time.hpp"

namespace hlcs::sim {

class Traceable {
public:
  virtual ~Traceable() = default;
  virtual std::string trace_name() const = 0;
  virtual unsigned trace_width() const = 0;
  /// Current value, MSB-first, using VCD characters 0/1/x/z.
  virtual std::string trace_value() const = 0;
};

class Trace {
public:
  /// Opens `path` for writing; the header is emitted on the first sample.
  explicit Trace(std::string path);
  ~Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  void add(const Traceable& t);

  /// Record changes at simulated time `now`.  Idempotent per (time,
  /// value) pair; called by the kernel after every delta cycle.
  void sample(Time now);

  const std::string& path() const { return path_; }

private:
  struct Item {
    const Traceable* t;
    std::string id;    // VCD identifier code
    std::string last;  // last emitted value
  };

  void write_header();
  static std::string id_for(std::size_t index);
  void emit(const Item& item, const std::string& value);

  std::string path_;
  std::ofstream out_;
  std::vector<Item> items_;
  bool header_written_ = false;
  std::uint64_t last_time_ps_ = 0;
  bool time_marker_written_ = false;
};

}  // namespace hlcs::sim
