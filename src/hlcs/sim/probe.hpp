// Sampling hooks: a Probe is a named, width-annotated read of some piece
// of model state as an unsigned bit-vector.  Checkers (hlcs/check) sample
// a set of probes on every rising clock edge; the same probe set feeds
// both the behavioural property automaton and its synthesised netlist
// twin, so the two engines observe byte-identical inputs.
//
// Probes read committed channel values only (Signal/Wire reads outside
// the update phase), so sampling at a posedge sees the previous cycle's
// writes -- the same convention every clocked module in this library
// uses.
#pragma once

#include <concepts>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "hlcs/sim/logic.hpp"
#include "hlcs/sim/signal.hpp"
#include "hlcs/sim/wire.hpp"

namespace hlcs::sim {

struct Probe {
  std::string name;
  unsigned width = 1;
  std::function<std::uint64_t()> read;
};

/// Arbitrary sampled expression (e.g. a derived condition).
inline Probe probe_fn(std::string name, unsigned width,
                      std::function<std::uint64_t()> read) {
  return Probe{std::move(name), width, std::move(read)};
}

inline Probe probe(std::string name, const Signal<bool>& s) {
  return Probe{std::move(name), 1, [&s] { return s.read() ? 1u : 0u; }};
}

template <std::integral T>
  requires(!std::same_as<T, bool>)
Probe probe(std::string name, const Signal<T>& s, unsigned width = sizeof(T) * 8) {
  return Probe{std::move(name), width,
               [&s] { return static_cast<std::uint64_t>(s.read()); }};
}

/// Active-low wire sampled as "asserted" (driven low = 1).
inline Probe probe_low(std::string name, const Wire& w) {
  return Probe{std::move(name), 1, [&w] { return w.is_low() ? 1u : 0u; }};
}

/// Wire sampled as "driven high" (Z and X read as 0).
inline Probe probe_high(std::string name, const Wire& w) {
  return Probe{std::move(name), 1, [&w] { return w.is_high() ? 1u : 0u; }};
}

/// Wire sampled as "actively driven to 0 or 1" (not Z, not X).
inline Probe probe_driven(std::string name, const Wire& w) {
  return Probe{std::move(name), 1, [&w] { return is_01(w.read()) ? 1u : 0u; }};
}

/// Vector wire value; Z/X bits sample as 0 (lenient, like the monitors).
inline Probe probe_value(std::string name, const WireVec& w) {
  return Probe{std::move(name), w.width(),
               [&w] { return w.read().to_uint_lenient(); }};
}

inline Probe probe_defined(std::string name, const WireVec& w) {
  return Probe{std::move(name), 1,
               [&w] { return w.read().is_fully_defined() ? 1u : 0u; }};
}

inline Probe probe_has_x(std::string name, const WireVec& w) {
  return Probe{std::move(name), 1, [&w] { return w.read().has_x() ? 1u : 0u; }};
}

}  // namespace hlcs::sim
