// Deterministic pseudo-random source for workloads and randomized
// arbitration.  xorshift64* -- fast, seedable, identical across
// platforms, so every experiment in this repository is reproducible.
#pragma once

#include <cstdint>

#include "hlcs/sim/assert.hpp"

namespace hlcs::sim {

class Xorshift {
public:
  explicit constexpr Xorshift(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed ? seed : 1) {}

  constexpr std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, bound).
  constexpr std::uint64_t below(std::uint64_t bound) {
    HLCS_ASSERT(bound > 0, "Xorshift::below(0)");
    return next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    HLCS_ASSERT(lo <= hi, "Xorshift::range inverted bounds");
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

private:
  std::uint64_t state_;
};

}  // namespace hlcs::sim
