// Deterministic pseudo-random source for workloads and randomized
// arbitration.  xorshift64* -- fast, seedable, identical across
// platforms, so every experiment in this repository is reproducible.
#pragma once

#include <cstdint>

#include "hlcs/sim/assert.hpp"

namespace hlcs::sim {

class Xorshift {
public:
  explicit constexpr Xorshift(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed ? seed : 1) {}

  constexpr std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, bound).
  constexpr std::uint64_t below(std::uint64_t bound) {
    HLCS_ASSERT(bound > 0, "Xorshift::below(0)");
    return next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    HLCS_ASSERT(lo <= hi, "Xorshift::range inverted bounds");
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

private:
  std::uint64_t state_;
};

/// SplitMix64 output function: a single avalanche step of the SplitMix
/// generator.  Used to derive independent sub-seeds from one root seed.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Per-lane seed derivation shared by every randomized consumer (equiv,
/// fuzz suites, lock-step check tests): lane i of root seed S gets the
/// i-th output of the SplitMix64 stream seeded at S.  A failure report
/// that prints the lane seed is therefore reproducible standalone --
/// feed it back as the root seed of a single-lane run.
constexpr std::uint64_t lane_seed(std::uint64_t root, std::uint64_t lane) {
  return splitmix64(root + lane * 0x9E3779B97F4A7C15ull);
}

}  // namespace hlcs::sim
