// Error handling primitives shared by the whole library.
//
// Two categories of failure are distinguished:
//  * hlcs::Error          -- a user-visible error (bad configuration, protocol
//                            violation surfaced to the caller); thrown.
//  * HLCS_ASSERT          -- an internal invariant; violations also throw so
//                            that tests can observe them deterministically.
#pragma once

#include <stdexcept>
#include <string>

namespace hlcs {

/// Base exception for all library errors.
class Error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a model violates a bus-protocol rule (detected by monitors).
class ProtocolError : public Error {
public:
  using Error::Error;
};

/// Thrown when a description handed to the synthesiser is outside the
/// synthesisable subset.
class SynthesisError : public Error {
public:
  using Error::Error;
};

[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

}  // namespace hlcs

#define HLCS_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw ::hlcs::Error(std::string("assertion failed: ") + (msg) +       \
                          " [" #cond "] at " __FILE__ ":" +                 \
                          std::to_string(__LINE__));                        \
    }                                                                       \
  } while (0)
