#include "hlcs/sim/kernel.hpp"

#include <utility>

#include "hlcs/sim/trace.hpp"

namespace hlcs::sim {

Kernel::~Kernel() = default;

void Kernel::run_evaluation_phase() {
  // Processes made runnable while the phase runs execute in the same
  // phase, so keep draining until both queues are empty.  Batches drain
  // through recycled scratch buffers: clear-then-swap keeps both
  // capacities alive across phases (and drops stale entries left behind
  // by an exception unwind, matching the previous behaviour).
  while (!runnable_.empty() || !method_queue_.empty()) {
    // Fast path: one runnable coroutine and nothing else (the common
    // shape of notify/wake chains) -- skip the batch machinery.  While
    // it runs, suspend points may pull the next single runnable via
    // symmetric transfer (transfer_next), so one resume() call here can
    // execute a whole notify/wake chain; the budget bounds chain depth
    // and is disarmed for the batch path below, whose snapshot ordering
    // a transfer must not bypass.
    if (runnable_.size() == 1 && method_queue_.empty()) {
      const std::coroutine_handle<> h = runnable_[0];
      runnable_.clear();
      stats_.resumes++;
      transfer_budget_ = kTransferChain;
      h.resume();
      transfer_budget_ = 0;
      check_error();
      continue;
    }
    if (!runnable_.empty()) {
      runnable_scratch_.clear();
      runnable_scratch_.swap(runnable_);
      for (auto h : runnable_scratch_) {
        stats_.resumes++;
        h.resume();
        check_error();
      }
    }
    if (!method_queue_.empty()) {
      method_scratch_.clear();
      method_scratch_.swap(method_queue_);
      for (MethodProcess* m : method_scratch_) {
        m->queued_ = false;
        stats_.method_runs++;
        (*m)();
        check_error();
      }
    }
  }
}

void Kernel::run_update_phase() {
  update_scratch_.clear();
  update_scratch_.swap(update_queue_);
  for (Channel* c : update_scratch_) {
    c->update_pending_ = false;
    stats_.updates++;
    c->update();
  }
}

void Kernel::run_delta_notifications() {
  delta_event_scratch_.clear();
  delta_event_scratch_.swap(delta_events_);
  for (Event* e : delta_event_scratch_) e->trigger();
  if (!delta_waiters_.empty()) {
    for (auto h : delta_waiters_) make_runnable(h);
    delta_waiters_.clear();
  }
}

bool Kernel::delta_queues_empty() const {
  return runnable_.empty() && method_queue_.empty() && update_queue_.empty() &&
         delta_events_.empty() && delta_waiters_.empty();
}

void Kernel::dispatch_timed(const detail::TimedEntry& e) {
  switch (e.kind) {
    case detail::TimedKind::Resume:
      make_runnable(std::coroutine_handle<>::from_address(e.payload));
      break;
    case detail::TimedKind::EventTrigger:
      static_cast<Event*>(e.payload)->trigger();
      break;
    case detail::TimedKind::Method:
      queue_method(*static_cast<MethodProcess*>(e.payload));
      break;
  }
}

void Kernel::check_error() {
  if (error_) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    std::rethrow_exception(e);
  }
}

Time Kernel::next_activity() const {
  if (pending_delta()) return now_;
  if (!timed_.empty()) return Time::ps(timed_.next_at());
  return Time::max();
}

void Kernel::run_until(Time limit) {
  stop_requested_ = false;
  const std::uint64_t limit_ps = limit.picos();
  run_limit_ps_ = limit_ps;  // try_warp() may not overshoot this horizon
  for (;;) {
    // Delta loop at the current simulated time.
    while (!delta_queues_empty()) {
      run_evaluation_phase();
      if (!update_queue_.empty()) run_update_phase();
      if (!delta_events_.empty() || !delta_waiters_.empty())
        run_delta_notifications();
      stats_.deltas++;
      if (trace_) trace_->sample(now_);
      if (stop_requested_) return;
    }
    delta_work_ = false;  // all five queues just probed empty
    if (stop_requested_) return;
    // Fused fast cycle: while the only pending work is one timed Resume
    // entry (a single sleeping process -- the dominant steady-state
    // shape), resume it directly and complete its delta in place instead
    // of bouncing through the runnable queue and phase machinery.  The
    // observable schedule is identical: the resume is the sole action of
    // its evaluation phase and the delta completes with empty update and
    // notification phases, exactly as the general loop would run it.
    for (;;) {
      if (timed_.empty()) return;
      const std::uint64_t t = timed_.next_at();
      if (t > limit_ps) {
        // Do not consume entries beyond the horizon; a later run() call
        // can still reach them.
        now_ = limit;
        timed_.advance_base(limit_ps);
        return;
      }
      now_ = Time::ps(t);
      timed_.advance_base(t);
      detail::TimedEntry single;
      if (!timed_.pop_front_fast(t, single)) {
        // Several simultaneous entries: take the general batch path.
        timed_batch_.clear();
        timed_.pop_at(t, timed_batch_);
        stats_.timed_actions += timed_batch_.size();
        for (const detail::TimedEntry& e : timed_batch_) dispatch_timed(e);
        break;  // run the full delta loop
      }
      stats_.timed_actions++;
      if (single.kind != detail::TimedKind::Resume) {
        dispatch_timed(single);
        break;  // run the full delta loop
      }
      stats_.resumes++;
      std::coroutine_handle<>::from_address(single.payload).resume();
      check_error();
      if (delta_work_) {
        // Something was enqueued since the last full probe.  Re-probe:
        // if the resume made work pending in this same delta, let the
        // general loop finish the evaluation phase and the delta.
        if (!delta_queues_empty()) break;
        delta_work_ = false;
      }
      // Nothing else pending: the delta consisted of that one resume.
      stats_.deltas++;
      if (trace_) trace_->sample(now_);
      if (stop_requested_) return;
    }
  }
}

}  // namespace hlcs::sim
