#include "hlcs/sim/kernel.hpp"

#include <utility>

#include "hlcs/sim/trace.hpp"

namespace hlcs::sim {

Kernel::~Kernel() = default;

void Event::trigger() {
  kernel_.stats_.events_triggered++;
  if (!waiters_.empty()) {
    for (auto h : waiters_) kernel_.make_runnable(h);
    waiters_.clear();
  }
  for (MethodProcess* m : statics_) kernel_.queue_method(*m);
}

void Kernel::run_evaluation_phase() {
  // Processes made runnable while the phase runs execute in the same
  // phase, so keep draining until both queues are empty.
  while (!runnable_.empty() || !method_queue_.empty()) {
    std::vector<std::coroutine_handle<>> ready;
    ready.swap(runnable_);
    for (auto h : ready) {
      stats_.resumes++;
      h.resume();
      check_error();
    }
    std::vector<MethodProcess*> methods;
    methods.swap(method_queue_);
    for (MethodProcess* m : methods) {
      m->queued_ = false;
      stats_.method_runs++;
      (*m)();
      check_error();
    }
  }
}

void Kernel::run_update_phase() {
  std::vector<Channel*> updates;
  updates.swap(update_queue_);
  for (Channel* c : updates) {
    c->update_pending_ = false;
    stats_.updates++;
    c->update();
  }
}

void Kernel::run_delta_notifications() {
  std::vector<Event*> events;
  events.swap(delta_events_);
  for (Event* e : events) e->trigger();
  if (!delta_waiters_.empty()) {
    for (auto h : delta_waiters_) make_runnable(h);
    delta_waiters_.clear();
  }
}

bool Kernel::advance_time(Time limit) {
  if (timed_.empty()) return false;
  const std::uint64_t t = timed_.top().at_ps;
  if (t > limit.picos()) {
    // Do not consume entries beyond the horizon; a later run() call can
    // still reach them.
    now_ = limit;
    return false;
  }
  now_ = Time::ps(t);
  while (!timed_.empty() && timed_.top().at_ps == t) {
    TimedEntry e = timed_.top();
    timed_.pop();
    stats_.timed_actions++;
    switch (e.kind) {
      case TimedKind::Resume: make_runnable(e.handle); break;
      case TimedKind::EventTrigger: e.event->trigger(); break;
      case TimedKind::Method: queue_method(*e.m); break;
    }
  }
  return true;
}

void Kernel::check_error() {
  if (error_) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    std::rethrow_exception(e);
  }
}

void Kernel::run_until(Time limit) {
  stop_requested_ = false;
  for (;;) {
    // Delta loop at the current simulated time.
    while (!runnable_.empty() || !method_queue_.empty() ||
           !update_queue_.empty() || !delta_events_.empty() ||
           !delta_waiters_.empty()) {
      run_evaluation_phase();
      run_update_phase();
      run_delta_notifications();
      stats_.deltas++;
      if (trace_) trace_->sample(now_);
      if (stop_requested_) return;
    }
    if (stop_requested_) return;
    if (!advance_time(limit)) return;
  }
}

}  // namespace hlcs::sim
