#include "hlcs/sim/sweep.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "hlcs/sim/assert.hpp"

namespace hlcs::sim {

ParallelSweep::ParallelSweep(Scenario fn) : scenario_(std::move(fn)) {
  HLCS_ASSERT(scenario_ != nullptr, "ParallelSweep requires a scenario");
}

std::vector<SweepResult> ParallelSweep::run(std::size_t points,
                                            unsigned threads) {
  std::vector<SweepResult> results(points);
  std::vector<std::exception_ptr> errors(points);
  if (points == 0) return results;

  // One sweep point, entirely thread-local: private kernel, private
  // result slot, private error slot.  Workers never touch shared state
  // beyond the claim counter.
  const auto run_point = [&](std::size_t i) {
    SweepResult& r = results[i];
    r.index = i;
    try {
      Kernel k;
      scenario_(i, k, r.transcript);
      r.end_time = k.now();
      r.stats = k.stats();
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads > points) threads = static_cast<unsigned>(points);

  if (threads <= 1) {
    for (std::size_t i = 0; i < points; ++i) run_point(i);
  } else {
    // Dynamic claiming: sweep points can have wildly different runtimes
    // (e.g. client-count sweeps), so a shared atomic cursor load-balances
    // better than static striping and costs one fetch_add per point.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= points) return;
          run_point(i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  for (std::size_t i = 0; i < points; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  return results;
}

}  // namespace hlcs::sim
