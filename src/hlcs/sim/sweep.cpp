#include "hlcs/sim/sweep.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "hlcs/sim/assert.hpp"

namespace hlcs::sim {

void parallel_for_indexed(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);
  const auto run_one = [&](std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads > n) threads = static_cast<unsigned>(n);

  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    // Dynamic claiming: indices can have wildly different runtimes
    // (e.g. client-count sweeps), so a shared atomic cursor load-balances
    // better than static striping and costs one fetch_add per index.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          run_one(i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

ParallelSweep::ParallelSweep(Scenario fn) : scenario_(std::move(fn)) {
  HLCS_ASSERT(scenario_ != nullptr, "ParallelSweep requires a scenario");
}

std::vector<SweepResult> ParallelSweep::run(std::size_t points,
                                            unsigned threads) {
  std::vector<SweepResult> results(points);
  // One sweep point, entirely thread-local: private kernel, private
  // result slot.  Workers never touch shared state beyond the pool's
  // claim counter.
  parallel_for_indexed(points, threads, [&](std::size_t i) {
    SweepResult& r = results[i];
    r.index = i;
    Kernel k;
    scenario_(i, k, r.transcript);
    r.end_time = k.now();
    r.stats = k.stats();
  });
  return results;
}

}  // namespace hlcs::sim
