#include "hlcs/sim/trace.hpp"

#include <algorithm>
#include <vector>

#include "hlcs/sim/assert.hpp"

namespace hlcs::sim {

Trace::Trace(std::string path) : path_(std::move(path)), out_(path_) {
  if (!out_) fail("Trace: cannot open " + path_);
}

Trace::~Trace() = default;

void Trace::add(const Traceable& t) {
  HLCS_ASSERT(!header_written_, "Trace::add after tracing started");
  items_.push_back(Item{&t, id_for(items_.size()), {}});
}

std::string Trace::id_for(std::size_t index) {
  // VCD identifier codes: printable ASCII 33..126, base-94 little-endian.
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

void Trace::write_header() {
  out_ << "$date\n  (hlcs simulation)\n$end\n";
  out_ << "$version\n  hlcs VCD trace\n$end\n";
  out_ << "$timescale 1ps $end\n";
  // Hierarchical scopes from dotted names: "pci.AD" becomes scope "pci",
  // leaf "AD".  Items are emitted grouped by scope path so viewers show
  // the module tree.
  struct Entry {
    std::vector<std::string> scope;
    std::string leaf;
    const Item* item;
  };
  std::vector<Entry> entries;
  entries.reserve(items_.size());
  for (const Item& item : items_) {
    Entry e;
    e.item = &item;
    const std::string& full = item.t->trace_name();
    std::size_t start = 0, dot;
    while ((dot = full.find('.', start)) != std::string::npos) {
      e.scope.push_back(full.substr(start, dot - start));
      start = dot + 1;
    }
    e.leaf = full.substr(start);
    entries.push_back(std::move(e));
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.scope < b.scope;
                   });
  std::vector<std::string> open;
  auto sync_scope = [&](const std::vector<std::string>& want) {
    std::size_t common = 0;
    while (common < open.size() && common < want.size() &&
           open[common] == want[common]) {
      ++common;
    }
    while (open.size() > common) {
      out_ << "$upscope $end\n";
      open.pop_back();
    }
    for (std::size_t i = common; i < want.size(); ++i) {
      out_ << "$scope module " << want[i] << " $end\n";
      open.push_back(want[i]);
    }
  };
  for (const Entry& e : entries) {
    sync_scope(e.scope);
    out_ << "$var wire " << e.item->t->trace_width() << " " << e.item->id
         << " " << e.leaf << " $end\n";
  }
  sync_scope({});
  out_ << "$enddefinitions $end\n";
  header_written_ = true;
}

void Trace::emit(const Item& item, const std::string& value) {
  if (item.t->trace_width() == 1) {
    out_ << value << item.id << "\n";
  } else {
    out_ << "b" << value << " " << item.id << "\n";
  }
}

void Trace::sample(Time now) {
  if (!header_written_) {
    write_header();
    out_ << "$dumpvars\n";
    for (Item& item : items_) {
      item.last = item.t->trace_value();
      emit(item, item.last);
    }
    out_ << "$end\n";
    last_time_ps_ = now.picos();
    time_marker_written_ = true;
    return;
  }
  if (now.picos() != last_time_ps_) {
    last_time_ps_ = now.picos();
    time_marker_written_ = false;
  }
  for (Item& item : items_) {
    std::string v = item.t->trace_value();
    if (v != item.last) {
      if (!time_marker_written_) {
        out_ << "#" << last_time_ps_ << "\n";
        time_marker_written_ = true;
      }
      emit(item, v);
      item.last = std::move(v);
    }
  }
}

}  // namespace hlcs::sim
