#include "hlcs/sim/trace.hpp"

#include <algorithm>
#include <charconv>
#include <vector>

#include "hlcs/sim/assert.hpp"

namespace hlcs::sim {

namespace {

// Buffered text is pushed to the ofstream in chunks of this size; small
// simulations pay a single write at destruction.
constexpr std::size_t kFlushChunk = 64 * 1024;

void append_u64(std::string& out, std::uint64_t v) {
  char tmp[20];
  auto [end, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
  out.append(tmp, end);
}

}  // namespace

Traceable::~Traceable() {
  if (trace_hook_) trace_hook_->forget(trace_slot_);
}

std::string Traceable::trace_value() const {
  TraceValue v;
  trace_value_into(v);
  return v.to_string();
}

Trace::Trace(std::string path) : path_(std::move(path)), out_(path_) {
  if (!out_) fail("Trace: cannot open " + path_);
  buf_.reserve(kFlushChunk + 4096);
}

Trace::~Trace() {
  flush();
  for (Item& item : items_) {
    if (item.t) item.t->trace_hook_ = nullptr;
  }
}

void Trace::flush() {
  if (buf_.empty()) return;
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  out_.flush();  // make the dump readable while the Trace is still alive
  stats_.bytes_written += buf_.size();
  stats_.flushes++;
  buf_.clear();
}

void Trace::add(Traceable& t) {
  HLCS_ASSERT(!header_written_, "Trace::add after tracing started");
  HLCS_ASSERT(t.trace_hook_ == nullptr,
              "Traceable already registered with a Trace");
  t.trace_hook_ = this;
  t.trace_slot_ = static_cast<std::uint32_t>(items_.size());
  items_.push_back(
      Item{&t, id_for(items_.size()), TraceValue{}, t.trace_width(), false});
  stats_.registered++;
}

std::string Trace::id_for(std::size_t index) {
  // VCD identifier codes: printable ASCII 33..126, base-94 little-endian.
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

void Trace::write_header() {
  buf_ += "$date\n  (hlcs simulation)\n$end\n";
  buf_ += "$version\n  hlcs VCD trace\n$end\n";
  buf_ += "$timescale 1ps $end\n";
  // Hierarchical scopes from dotted names: "pci.AD" becomes scope "pci",
  // leaf "AD".  Items are emitted grouped by scope path so viewers show
  // the module tree.
  struct Entry {
    std::vector<std::string> scope;
    std::string leaf;
    const Item* item;
  };
  std::vector<Entry> entries;
  entries.reserve(items_.size());
  for (const Item& item : items_) {
    if (!item.t) continue;
    Entry e;
    e.item = &item;
    const std::string full = item.t->trace_name();
    std::size_t start = 0, dot;
    while ((dot = full.find('.', start)) != std::string::npos) {
      e.scope.push_back(full.substr(start, dot - start));
      start = dot + 1;
    }
    e.leaf = full.substr(start);
    entries.push_back(std::move(e));
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.scope < b.scope;
                   });
  std::vector<std::string> open;
  auto sync_scope = [&](const std::vector<std::string>& want) {
    std::size_t common = 0;
    while (common < open.size() && common < want.size() &&
           open[common] == want[common]) {
      ++common;
    }
    while (open.size() > common) {
      buf_ += "$upscope $end\n";
      open.pop_back();
    }
    for (std::size_t i = common; i < want.size(); ++i) {
      buf_ += "$scope module ";
      buf_ += want[i];
      buf_ += " $end\n";
      open.push_back(want[i]);
    }
  };
  for (const Entry& e : entries) {
    sync_scope(e.scope);
    buf_ += "$var wire ";
    append_u64(buf_, e.item->width);
    buf_ += " ";
    buf_ += e.item->id;
    buf_ += " ";
    buf_ += e.leaf;
    buf_ += " $end\n";
  }
  sync_scope({});
  buf_ += "$enddefinitions $end\n";
  header_written_ = true;
}

void Trace::emit(const Item& item, const TraceValue& value) {
  if (item.width == 1) {
    buf_.push_back(value.char_at(0));
  } else {
    buf_.push_back('b');
    value.append_chars(buf_);
    buf_.push_back(' ');
  }
  buf_ += item.id;
  buf_.push_back('\n');
  stats_.changes++;
}

void Trace::first_sample(Time now) {
  write_header();
  buf_ += "$dumpvars\n";
  for (Item& item : items_) {
    item.dirty = false;
    if (!item.t) continue;
    item.t->trace_value_into(item.last);
    note_pack(item.last);
    stats_.dirty_visits++;
    emit(item, item.last);
  }
  buf_ += "$end\n";
  dirty_.clear();
  marker_time_ps_ = now.picos();
  marker_valid_ = true;
  if (buf_.size() >= kFlushChunk) flush();
}

void Trace::sample(Time now) {
  stats_.samples++;
  if (!header_written_) {
    first_sample(now);
    return;
  }
  if (dirty_.empty()) return;
  // The dirty list holds slots in touch order; sort so changes are
  // emitted in registration order, exactly as the polling emitter did.
  std::sort(dirty_.begin(), dirty_.end());
  const std::uint64_t t = now.picos();
  for (std::uint32_t slot : dirty_) {
    Item& item = items_[slot];
    item.dirty = false;
    if (!item.t) continue;
    stats_.dirty_visits++;
    item.t->trace_value_into(scratch_);
    note_pack(scratch_);
    if (scratch_ == item.last) continue;  // touched but settled back
    if (!marker_valid_ || t != marker_time_ps_) {
      buf_.push_back('#');
      append_u64(buf_, t);
      buf_.push_back('\n');
      marker_time_ps_ = t;
      marker_valid_ = true;
    }
    emit(item, scratch_);
    item.last.swap(scratch_);
  }
  dirty_.clear();
  if (buf_.size() >= kFlushChunk) flush();
}

}  // namespace hlcs::sim
