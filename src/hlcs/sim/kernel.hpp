// The discrete-event simulation kernel.
//
// Scheduling model (mirrors IEEE 1666 SystemC):
//   1. Evaluation phase: run every runnable process (coroutine resumption
//      or triggered method) until none remain.  Processes made runnable
//      during the phase run in the same phase.
//   2. Update phase: every signal/wire with a pending write commits its
//      new value; commits that change a value schedule delta
//      notifications on the value-changed events.
//   3. Delta notification: triggered events wake their waiters; if any
//      process became runnable, loop back to 1 (same simulated time, next
//      delta cycle).
//   4. Time advance: pop the earliest timed actions and continue.
//
// The kernel is strictly single-threaded and deterministic: within a
// phase, processes run in the order they became runnable.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "hlcs/sim/assert.hpp"
#include "hlcs/sim/task.hpp"
#include "hlcs/sim/time.hpp"

namespace hlcs::sim {

class Kernel;
class Event;
class Trace;

/// Base for updatable channels (signals, wires).  A channel requests an
/// update during the evaluation phase; the kernel commits it in the
/// update phase.
class Channel {
public:
  explicit Channel(Kernel& k, std::string name);
  virtual ~Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const std::string& name() const { return name_; }
  Kernel& kernel() const { return kernel_; }

protected:
  friend class Kernel;
  /// Commit the pending write.  Called exactly once per update phase in
  /// which the channel requested an update.
  virtual void update() = 0;
  void request_update();

private:
  Kernel& kernel_;
  std::string name_;
  bool update_pending_ = false;
};

/// A process triggered by events through static sensitivity; runs a plain
/// function to completion each trigger (like SC_METHOD).
class MethodProcess {
public:
  MethodProcess(Kernel& k, std::string name, std::function<void()> fn)
      : kernel_(k), name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& name() const { return name_; }
  void operator()() { fn_(); }

private:
  friend class Kernel;
  friend class Event;
  Kernel& kernel_;
  std::string name_;
  std::function<void()> fn_;
  bool queued_ = false;
};

/// A notification primitive.  Processes wait on events dynamically
/// (`co_await ev`); method processes are attached statically.
class Event {
public:
  explicit Event(Kernel& k, std::string name = {});
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  const std::string& name() const { return name_; }

  /// Immediate notification: waiters become runnable in the current
  /// evaluation phase.
  void notify();
  /// Delta notification: waiters become runnable in the next delta cycle.
  void notify_delta();
  /// Timed notification: waiters present at T(now+t) wake then.
  void notify(Time t);

  /// Attach a method process permanently (static sensitivity).
  void add_static(MethodProcess& m) { statics_.push_back(&m); }

  /// Dynamic one-shot wait registration (used by the awaiter).
  void add_waiter(std::coroutine_handle<> h) { waiters_.push_back(h); }

  struct Awaiter {
    Event& ev;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { ev.add_waiter(h); }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() { return Awaiter{*this}; }

private:
  friend class Kernel;
  /// Wake all current waiters and queue all static methods.
  void trigger();

  Kernel& kernel_;
  std::string name_;
  std::vector<std::coroutine_handle<>> waiters_;
  std::vector<MethodProcess*> statics_;
};

/// Aggregate statistics, reported by benches and used in tests.
struct KernelStats {
  std::uint64_t deltas = 0;
  std::uint64_t resumes = 0;          // coroutine resumptions
  std::uint64_t method_runs = 0;      // method process executions
  std::uint64_t updates = 0;          // channel update commits
  std::uint64_t timed_actions = 0;    // timed-queue pops
  std::uint64_t events_triggered = 0;
};

class Kernel {
public:
  Kernel() = default;
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ----- process management ------------------------------------------
  /// Spawn a root thread process.  `f` is any callable returning Task;
  /// it is stored inside the kernel so lambda captures stay alive for
  /// the life of the coroutine.
  template <class F>
  void spawn(std::string name, F&& f) {
    auto holder = std::make_unique<ThreadHolder>();
    holder->name = std::move(name);
    holder->factory = std::function<Task()>(std::forward<F>(f));
    holder->task = holder->factory();
    HLCS_ASSERT(holder->task.valid(), "spawn: callable returned empty Task");
    holder->task.handle().promise().root_kernel = this;
    make_runnable(holder->task.handle());
    threads_.push_back(std::move(holder));
  }

  /// Create a method process.  Attach it to events for static
  /// sensitivity; optionally trigger it once at start.
  MethodProcess& method(std::string name, std::function<void()> fn,
                        bool initial_trigger = true) {
    methods_.push_back(
        std::make_unique<MethodProcess>(*this, std::move(name), std::move(fn)));
    MethodProcess& m = *methods_.back();
    if (initial_trigger) queue_method(m);
    return m;
  }

  // ----- scheduling primitives ----------------------------------------
  void make_runnable(std::coroutine_handle<> h) { runnable_.push_back(h); }
  void queue_method(MethodProcess& m) {
    if (!m.queued_) {
      m.queued_ = true;
      method_queue_.push_back(&m);
    }
  }
  void request_update(Channel& c) { update_queue_.push_back(&c); }
  void notify_delta_event(Event& e) { delta_events_.push_back(&e); }
  void schedule_resume(Time abs, std::coroutine_handle<> h) {
    timed_.push({abs.picos(), next_seq_++, TimedKind::Resume, h, nullptr, nullptr});
  }
  void schedule_event(Time abs, Event& e) {
    timed_.push({abs.picos(), next_seq_++, TimedKind::EventTrigger, nullptr, &e, nullptr});
  }
  void schedule_method(Time abs, MethodProcess& m) {
    timed_.push({abs.picos(), next_seq_++, TimedKind::Method, nullptr, nullptr, &m});
  }

  // ----- run control ---------------------------------------------------
  /// Run until no activity remains or `stop()` is called.
  void run() { run_until(Time::max()); }
  /// Run for `t` more simulated time.
  void run_for(Time t) { run_until(now_ + t); }
  /// Run until simulated time reaches `limit` (events at `limit` are
  /// still executed).
  void run_until(Time limit);
  void stop() { stop_requested_ = true; }

  Time now() const { return now_; }
  const KernelStats& stats() const { return stats_; }

  /// Awaitable: suspend the calling process for `t` simulated time.
  struct TimeAwaiter {
    Kernel& k;
    Time t;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      k.schedule_resume(k.now() + t, h);
    }
    void await_resume() const noexcept {}
  };
  TimeAwaiter wait(Time t) { return TimeAwaiter{*this, t}; }

  /// Awaitable: suspend for one delta cycle.
  struct DeltaAwaiter {
    Kernel& k;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  DeltaAwaiter wait_delta() { return DeltaAwaiter{*this}; }

  // ----- error reporting ------------------------------------------------
  void set_process_error(std::exception_ptr e) {
    if (!error_) error_ = e;
  }

  // ----- tracing ---------------------------------------------------------
  void attach_trace(Trace& t) { trace_ = &t; }

private:
  friend class Event;
  friend class Channel;

  struct ThreadHolder {
    std::string name;
    std::function<Task()> factory;
    Task task;
  };

  enum class TimedKind { Resume, EventTrigger, Method };
  struct TimedEntry {
    std::uint64_t at_ps;
    std::uint64_t seq;
    TimedKind kind;
    std::coroutine_handle<> handle;
    Event* event;
    MethodProcess* m;
    // Min-heap ordering: earliest time first, FIFO within a time.
    friend bool operator>(const TimedEntry& a, const TimedEntry& b) {
      if (a.at_ps != b.at_ps) return a.at_ps > b.at_ps;
      return a.seq > b.seq;
    }
  };

  void run_evaluation_phase();
  void run_update_phase();
  void run_delta_notifications();
  /// Pops all timed entries at the earliest timestamp; returns false if
  /// the queue is empty or past the limit.
  bool advance_time(Time limit);
  void check_error();

  Time now_ = Time::zero();
  bool stop_requested_ = false;
  std::exception_ptr error_;

  std::vector<std::coroutine_handle<>> runnable_;
  std::vector<MethodProcess*> method_queue_;
  std::vector<Channel*> update_queue_;
  std::vector<Event*> delta_events_;
  // Delta-wait processes resume via a dedicated event.
  std::vector<std::coroutine_handle<>> delta_waiters_;

  std::priority_queue<TimedEntry, std::vector<TimedEntry>,
                      std::greater<TimedEntry>>
      timed_;
  std::uint64_t next_seq_ = 0;

  std::vector<std::unique_ptr<ThreadHolder>> threads_;
  std::vector<std::unique_ptr<MethodProcess>> methods_;

  KernelStats stats_;
  Trace* trace_ = nullptr;
};

inline Channel::Channel(Kernel& k, std::string name)
    : kernel_(k), name_(std::move(name)) {}

inline void Channel::request_update() {
  if (!update_pending_) {
    update_pending_ = true;
    kernel_.request_update(*this);
  }
}

inline Event::Event(Kernel& k, std::string name)
    : kernel_(k), name_(std::move(name)) {}

inline void Event::notify() { trigger(); }

inline void Event::notify_delta() { kernel_.notify_delta_event(*this); }

inline void Event::notify(Time t) {
  kernel_.schedule_event(kernel_.now() + t, *this);
}

inline void Kernel::DeltaAwaiter::await_suspend(std::coroutine_handle<> h) {
  k.delta_waiters_.push_back(h);
}

// Root-process exception hand-off: when a root coroutine finishes with a
// stored exception and nobody awaits it, report it to the kernel.
inline std::coroutine_handle<> Task::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  promise_type& p = h.promise();
  if (p.continuation) return p.continuation;
  if (p.exception && p.root_kernel) p.root_kernel->set_process_error(p.exception);
  return std::noop_coroutine();
}

/// Convenience coroutine: wait on `ev` until `pred()` holds.
template <class Pred>
Task await_condition(Event& ev, Pred pred) {
  while (!pred()) co_await ev;
}

}  // namespace hlcs::sim
