// The discrete-event simulation kernel.
//
// Scheduling model (mirrors IEEE 1666 SystemC):
//   1. Evaluation phase: run every runnable process (coroutine resumption
//      or triggered method) until none remain.  Processes made runnable
//      during the phase run in the same phase.
//   2. Update phase: every signal/wire with a pending write commits its
//      new value; commits that change a value schedule delta
//      notifications on the value-changed events.
//   3. Delta notification: triggered events wake their waiters; if any
//      process became runnable, loop back to 1 (same simulated time, next
//      delta cycle).
//   4. Time advance: pop the earliest timed actions and continue.
//
// The kernel is strictly single-threaded and deterministic: within a
// phase, processes run in the order they became runnable.
//
// Hot-path design (see docs/PERF.md): the timed queue is a two-level
// calendar -- a bucket ring covering the near future plus a binary heap
// for far-future events -- and every per-phase work list is a recycled
// member buffer, so steady-state execution performs no heap allocation.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hlcs/sim/assert.hpp"
#include "hlcs/sim/task.hpp"
#include "hlcs/sim/time.hpp"

namespace hlcs::sim {

class Kernel;
class Event;
class Sampler;

/// Base for updatable channels (signals, wires).  A channel requests an
/// update during the evaluation phase; the kernel commits it in the
/// update phase.
class Channel {
public:
  explicit Channel(Kernel& k, std::string name);
  virtual ~Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const std::string& name() const { return name_; }
  Kernel& kernel() const { return kernel_; }

protected:
  friend class Kernel;
  /// Commit the pending write.  Called exactly once per update phase in
  /// which the channel requested an update.
  virtual void update() = 0;
  void request_update();

private:
  Kernel& kernel_;
  std::string name_;
  bool update_pending_ = false;
};

/// A process triggered by events through static sensitivity; runs a plain
/// function to completion each trigger (like SC_METHOD).
///
/// Two callable forms: a raw function pointer + context (preferred on hot
/// paths -- one indirect call, no type erasure) or a std::function for
/// arbitrary capturing callables.
class MethodProcess {
public:
  using RawFn = void (*)(void*);

  MethodProcess(Kernel& k, std::string name, std::function<void()> fn)
      : kernel_(k), name_(std::move(name)), fn_(std::move(fn)) {}
  MethodProcess(Kernel& k, std::string name, RawFn fn, void* ctx)
      : kernel_(k), name_(std::move(name)), raw_fn_(fn), ctx_(ctx) {}

  const std::string& name() const { return name_; }
  void operator()() {
    if (raw_fn_) {
      raw_fn_(ctx_);
    } else {
      fn_();
    }
  }

private:
  friend class Kernel;
  friend class Event;
  Kernel& kernel_;
  std::string name_;
  RawFn raw_fn_ = nullptr;
  void* ctx_ = nullptr;
  std::function<void()> fn_;
  bool queued_ = false;
};

/// A notification primitive.  Processes wait on events dynamically
/// (`co_await ev`); method processes are attached statically.
///
/// Lost-notification rule: `notify()` when no process is waiting and no
/// method is statically attached is a documented no-op -- the
/// notification is NOT latched for later waiters.  For an opening
/// handshake whose waiter may not have registered yet (e.g. the peer
/// process spawns later in the same phase), use `sync()`.
class Event {
public:
  explicit Event(Kernel& k, std::string name = {});
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  const std::string& name() const { return name_; }

  /// Immediate notification: waiters become runnable in the current
  /// evaluation phase.  No-op when nothing waits (see class comment).
  void notify();
  /// Delta notification: waiters become runnable in the next delta cycle.
  void notify_delta();
  /// Timed notification: waiters present at T(now+t) wake then.
  void notify(Time t);
  /// Opening-handshake-safe notification.  Delta-deferred, so every
  /// process spawned or made runnable in the *current* phase gets a
  /// chance to register its wait before the event fires.  Use this for
  /// the first notify of a ping-pong style protocol where spawn order
  /// would otherwise decide whether the notification is lost.
  void sync() { notify_delta(); }

  /// True iff at least one process is currently waiting dynamically.
  bool has_waiters() const { return inline_count_ != 0; }

  /// Attach a method process permanently (static sensitivity).
  void add_static(MethodProcess& m) { statics_.push_back(&m); }

  /// Dynamic one-shot wait registration (used by the awaiter).  The
  /// first kInlineWaiters waiters live in the event itself; only
  /// pathological fan-in spills to the heap-backed overflow vector.
  void add_waiter(std::coroutine_handle<> h);

  struct Awaiter {
    Event& ev;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
      return ev.suspend_on(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() { return Awaiter{*this}; }

private:
  friend class Kernel;
  static constexpr std::uint32_t kInlineWaiters = 4;

  /// Wake all current waiters and queue all static methods.
  void trigger();

  /// Awaiter backend: register the wait, then offer the scheduler's next
  /// single runnable (if any) for symmetric transfer.
  std::coroutine_handle<> suspend_on(std::coroutine_handle<> h);

  Kernel& kernel_;
  std::string name_;
  std::array<std::coroutine_handle<>, kInlineWaiters> inline_waiters_{};
  std::uint32_t inline_count_ = 0;
  std::vector<std::coroutine_handle<>> overflow_waiters_;
  std::vector<MethodProcess*> statics_;
};

/// Aggregate statistics, reported by benches and used in tests.
struct KernelStats {
  std::uint64_t deltas = 0;
  std::uint64_t resumes = 0;          // coroutine resumptions
  std::uint64_t method_runs = 0;      // method process executions
  std::uint64_t updates = 0;          // channel update commits
  std::uint64_t timed_actions = 0;    // timed-queue pops
  std::uint64_t events_triggered = 0;
  std::uint64_t time_warps = 0;       // successful try_warp() advances
  // Allocation-observability counters (docs/PERF.md).
  std::uint64_t timed_peak = 0;       // max simultaneous timed entries
  std::uint64_t waiter_reallocs = 0;  // event waiter overflow regrowths

  friend bool operator==(const KernelStats&, const KernelStats&) = default;
};

namespace detail {

enum class TimedKind : std::uint8_t { Resume, EventTrigger, Method };

struct TimedEntry {
  std::uint64_t at_ps;
  std::uint64_t seq;
  void* payload;
  TimedKind kind;
};

/// Two-level timed queue: a calendar ring of power-of-two buckets, each
/// 2^kBucketShift ps of simulated time wide, covering the near-future
/// horizon, plus a (at, seq) min-heap for everything beyond it.  Ring
/// entries live in one node slab threaded into per-bucket FIFO lists, and
/// freed nodes recycle through a freelist, so steady-state push/pop never
/// allocates.  The earliest bucket is located through an occupancy bitmap
/// (find-first-set instead of scanning empty buckets).  FIFO order among
/// same-time entries is preserved: bucket lists append in seq order and
/// mixed ring/heap batches are seq-sorted at pop time.
class TimedQueue {
public:
  static constexpr unsigned kBucketShift = 5;  // 32 ps per bucket
  static constexpr std::size_t kBuckets = 1024;
  static constexpr std::size_t kMask = kBuckets - 1;
  static constexpr std::uint64_t kHorizonPs = kBuckets << kBucketShift;
  static constexpr std::size_t kWords = kBuckets / 64;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// The bucket arrays (8 KiB) are initialised lazily on the first
  /// calendar insertion: workloads whose pending-entry count never
  /// exceeds one are served entirely by the bypass front and should not
  /// pay the fill at construction (benches build a Kernel per iteration).
  TimedQueue() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  /// High-water mark of simultaneous entries (tracked here because push
  /// already holds size_ in a register; Kernel::stats() folds it into
  /// KernelStats::timed_peak on read).
  std::size_t peak() const { return peak_; }

  /// `at_ps` must be >= the time last passed to advance_base().
  ///
  /// The earliest entry is kept in a one-element bypass cache (`front_`)
  /// rather than the calendar itself, so the ubiquitous single-sleeper
  /// pattern (one pending timed action at a time) never touches the ring
  /// at all and costs about as much as a pair of loads and stores.
  ///
  /// FIFO bookkeeping: the queue stamps each entry's seq internally.
  /// A push into an empty queue is stamped 0 without bumping the
  /// counter -- it has no live peers, any later same-time push gets a
  /// strictly larger stamp, and the counter RMW stays off the
  /// single-sleeper path.  A front displaced by an earlier-time push
  /// predates every live same-time entry (they all arrived while it was
  /// the minimum), so it re-enters its bucket list at the HEAD to keep
  /// the list in arrival order.
  void push(std::uint64_t at_ps, void* payload, TimedKind kind) {
    ++size_;
    if (size_ > peak_) peak_ = size_;
    if (front_valid_) [[likely]] {
      // Strict < keeps FIFO: an equal-time push has a larger seq, so the
      // incumbent front stays ahead of it.
      if (at_ps < front_.at_ps) {
        push_calendar(front_, /*at_head=*/true);
        front_ = TimedEntry{at_ps, next_seq_++, payload, kind};
      } else {
        push_calendar(TimedEntry{at_ps, next_seq_++, payload, kind},
                      /*at_head=*/false);
      }
      return;
    }
    if (size_ == 1) {
      front_ = TimedEntry{at_ps, 0, payload, kind};
      front_valid_ = true;
      return;
    }
    push_calendar(TimedEntry{at_ps, next_seq_++, payload, kind},
                  /*at_head=*/false);
  }

  /// Earliest timestamp in the queue.  Precondition: !empty().
  std::uint64_t next_at() const {
    if (front_valid_) return front_.at_ps;  // front is the global minimum
    std::uint64_t best = ~0ull;
    if (ring_count_ != 0) best = ring_min();
    if (!heap_.empty() && heap_.front().at_ps < best) {
      best = heap_.front().at_ps;
    }
    return best;
  }

  /// Fast single-entry pop: succeeds iff the queue holds exactly one
  /// entry and it is the bypass front.  The dominant advance_time shape
  /// (one sleeping process) then never touches the calendar or a batch
  /// vector at all.
  bool pop_front_fast(std::uint64_t t, TimedEntry& out) {
    if (front_valid_ && size_ == 1 && front_.at_ps == t) [[likely]] {
      out = front_;
      front_valid_ = false;
      size_ = 0;
      return true;
    }
    return false;
  }

  /// Remove every entry stamped exactly `t` and append them to `out` in
  /// seq (FIFO) order.
  void pop_at(std::uint64_t t, std::vector<TimedEntry>& out) {
    const std::size_t first = out.size();
    if (front_valid_ && front_.at_ps == t) {
      // Front has the minimal (at, seq), so it belongs first in the batch.
      out.push_back(front_);
      front_valid_ = false;
      --size_;
      if (size_ == 0) return;
    }
    const std::uint64_t bucket = t >> kBucketShift;
    if (ring_count_ != 0 && bucket - base_bucket_ < kBuckets) {
      const std::size_t slot = bucket & kMask;
      std::uint32_t idx = head_[slot];
      std::uint32_t keep_head = kNil, keep_tail = kNil;
      while (idx != kNil) {
        const std::uint32_t next = pool_[idx].next;
        if (pool_[idx].entry.at_ps == t) {
          out.push_back(pool_[idx].entry);
          free_node(idx);
          --ring_count_;
          --size_;
        } else {
          if (keep_tail == kNil) {
            keep_head = idx;
          } else {
            pool_[keep_tail].next = idx;
          }
          keep_tail = idx;
          pool_[idx].next = kNil;
        }
        idx = next;
      }
      head_[slot] = keep_head;
      tail_[slot] = keep_tail;
      if (keep_head == kNil) occ_[slot >> 6] &= ~(1ull << (slot & 63));
    }
    bool from_heap = false;
    while (!heap_.empty() && heap_.front().at_ps == t) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapAfter{});
      out.push_back(heap_.back());
      heap_.pop_back();
      --size_;
      from_heap = true;
    }
    if (from_heap && out.size() - first > 1) {
      // Ring and heap entries can share a timestamp (the heap entry was
      // pushed when the time was beyond the horizon).  Restore global
      // FIFO order.
      std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
                [](const TimedEntry& a, const TimedEntry& b) {
                  return a.seq < b.seq;
                });
    }
  }

  /// Slide the near-future window forward.  `now_ps` must be
  /// monotonically non-decreasing across calls.
  void advance_base(std::uint64_t now_ps) {
    base_bucket_ = now_ps >> kBucketShift;
  }

private:
  struct Node {
    TimedEntry entry;
    std::uint32_t next;
  };
  struct HeapAfter {  // min-heap on (at_ps, seq)
    bool operator()(const TimedEntry& a, const TimedEntry& b) const {
      if (a.at_ps != b.at_ps) return a.at_ps > b.at_ps;
      return a.seq > b.seq;
    }
  };

  void push_calendar(const TimedEntry& e, bool at_head) {
    if (!ring_init_) [[unlikely]] {
      head_.fill(kNil);
      tail_.fill(kNil);
      ring_init_ = true;
    }
    const std::uint64_t bucket = e.at_ps >> kBucketShift;
    if (bucket - base_bucket_ < kBuckets) {
      const std::size_t slot = bucket & kMask;
      const std::uint32_t idx = alloc_node(e);
      if (tail_[slot] == kNil) {
        head_[slot] = idx;
        tail_[slot] = idx;
        occ_[slot >> 6] |= 1ull << (slot & 63);
      } else if (at_head) {
        // Displaced bypass front: it predates every live same-time
        // entry, so it must precede them in its bucket's list.
        pool_[idx].next = head_[slot];
        head_[slot] = idx;
      } else {
        pool_[tail_[slot]].next = idx;
        tail_[slot] = idx;
      }
      ++ring_count_;
    } else {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), HeapAfter{});
    }
  }

  std::uint32_t alloc_node(const TimedEntry& e) {
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = pool_[idx].next;
      pool_[idx].entry = e;
      pool_[idx].next = kNil;
    } else {
      idx = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(Node{e, kNil});
    }
    return idx;
  }

  void free_node(std::uint32_t idx) {
    pool_[idx].next = free_head_;
    free_head_ = idx;
  }

  /// Earliest timestamp held in the ring.  Precondition: ring_count_>0.
  std::uint64_t ring_min() const {
    const std::size_t slot = first_occupied_slot();
    std::uint64_t best = ~0ull;
    for (std::uint32_t idx = head_[slot]; idx != kNil;
         idx = pool_[idx].next) {
      if (pool_[idx].entry.at_ps < best) best = pool_[idx].entry.at_ps;
    }
    return best;
  }

  /// First occupied slot at or cyclically after the base slot.  All
  /// occupied slots lie within one window, so the first hit in cyclic
  /// order is the earliest bucket.  Precondition: ring_count_ > 0.
  std::size_t first_occupied_slot() const {
    const std::size_t start = base_bucket_ & kMask;
    const std::size_t sw = start >> 6;
    const unsigned sb = static_cast<unsigned>(start & 63);
    std::uint64_t w = occ_[sw] & (~0ull << sb);
    if (w != 0) return (sw << 6) + static_cast<std::size_t>(std::countr_zero(w));
    for (std::size_t i = 1; i < kWords; ++i) {
      const std::size_t wi = (sw + i) & (kWords - 1);
      if (occ_[wi] != 0) {
        return (wi << 6) + static_cast<std::size_t>(std::countr_zero(occ_[wi]));
      }
    }
    // Wrapped all the way around: the hit is below the base bit in the
    // starting word.
    w = occ_[sw] & ~(~0ull << sb);
    HLCS_ASSERT(w != 0, "TimedQueue bitmap out of sync");
    return (sw << 6) + static_cast<std::size_t>(std::countr_zero(w));
  }

  std::vector<Node> pool_;
  std::array<std::uint32_t, kBuckets> head_;
  std::array<std::uint32_t, kBuckets> tail_;
  std::array<std::uint64_t, kWords> occ_{};
  std::vector<TimedEntry> heap_;
  TimedEntry front_{};
  bool front_valid_ = false;
  bool ring_init_ = false;
  std::uint64_t base_bucket_ = 0;
  // Starts at 1: stamp 0 is reserved for pushes into an empty queue
  // (see push), which must sort ahead of every later same-time stamp.
  std::uint64_t next_seq_ = 1;
  std::uint32_t free_head_ = kNil;
  std::size_t ring_count_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace detail

class Kernel {
public:
  Kernel() = default;
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ----- process management ------------------------------------------
  /// Spawn a root thread process.  `f` is any callable returning Task;
  /// it is stored inside the kernel so lambda captures stay alive for
  /// the life of the coroutine.
  template <class F>
  void spawn(std::string name, F&& f) {
    auto holder = std::make_unique<ThreadHolder>();
    holder->name = std::move(name);
    holder->factory = std::function<Task()>(std::forward<F>(f));
    holder->task = holder->factory();
    HLCS_ASSERT(holder->task.valid(), "spawn: callable returned empty Task");
    holder->task.handle().promise().root_kernel = this;
    make_runnable(holder->task.handle());
    threads_.push_back(std::move(holder));
  }

  /// Create a method process.  Attach it to events for static
  /// sensitivity; optionally trigger it once at start.
  MethodProcess& method(std::string name, std::function<void()> fn,
                        bool initial_trigger = true) {
    methods_.push_back(
        std::make_unique<MethodProcess>(*this, std::move(name), std::move(fn)));
    MethodProcess& m = *methods_.back();
    if (initial_trigger) queue_method(m);
    return m;
  }

  /// Raw-function-pointer flavour: dispatch is a single indirect call
  /// with no std::function machinery.  Preferred on hot paths.
  MethodProcess& method(std::string name, MethodProcess::RawFn fn, void* ctx,
                        bool initial_trigger = true) {
    methods_.push_back(
        std::make_unique<MethodProcess>(*this, std::move(name), fn, ctx));
    MethodProcess& m = *methods_.back();
    if (initial_trigger) queue_method(m);
    return m;
  }

  // ----- scheduling primitives ----------------------------------------
  // Every delta-cycle enqueue raises `delta_work_`; the run loop's fused
  // timed cycle then needs a single load to learn that nothing became
  // pending, instead of probing all five queues after every resume.
  void make_runnable(std::coroutine_handle<> h) {
    delta_work_ = true;
    runnable_.push_back(h);
  }
  /// Symmetric-transfer donor (scheduler-internal; called from awaiter
  /// suspend paths).  When the evaluation loop's next action would be to
  /// resume exactly one runnable coroutine, hand that handle to the
  /// suspending coroutine so it tail-transfers directly, skipping the
  /// bounce through the loop.  The observable schedule and statistics
  /// are identical: the loop would pop the same handle and count the
  /// same resume.  Transfers are only armed inside the eval loop's
  /// single-runnable fast path (`transfer_budget_` is zero during batch
  /// drains, the fused timed cycle, and outside run()), and the budget
  /// bounds chain depth so builds that cannot guarantee tail calls
  /// (e.g. sanitizers) cannot grow the stack without bound.
  std::coroutine_handle<> transfer_next() noexcept {
    if (transfer_budget_ != 0 && runnable_.size() == 1 &&
        method_queue_.empty() && !error_) [[likely]] {
      --transfer_budget_;
      const std::coroutine_handle<> h = runnable_[0];
      runnable_.clear();
      stats_.resumes++;
      return h;
    }
    return std::noop_coroutine();
  }
  void queue_method(MethodProcess& m) {
    if (!m.queued_) {
      m.queued_ = true;
      delta_work_ = true;
      method_queue_.push_back(&m);
    }
  }
  void request_update(Channel& c) {
    delta_work_ = true;
    update_queue_.push_back(&c);
  }
  void notify_delta_event(Event& e) {
    delta_work_ = true;
    delta_events_.push_back(&e);
  }
  void schedule_resume(Time abs, std::coroutine_handle<> h) {
    push_timed(abs, detail::TimedKind::Resume, h.address());
  }
  void schedule_event(Time abs, Event& e) {
    push_timed(abs, detail::TimedKind::EventTrigger, &e);
  }
  void schedule_method(Time abs, MethodProcess& m) {
    push_timed(abs, detail::TimedKind::Method, &m);
  }

  // ----- run control ---------------------------------------------------
  /// Run until no activity remains or `stop()` is called.
  void run() { run_until(Time::max()); }
  /// Run for `t` more simulated time.
  void run_for(Time t) { run_until(now_ + t); }
  /// Run until simulated time reaches `limit` (events at `limit` are
  /// still executed).
  void run_until(Time limit);
  void stop() { stop_requested_ = true; }

  Time now() const { return now_; }

  /// Loosely-timed time-warp hook (hlcs/tlm/lt.hpp): advance simulated
  /// time directly to `to`, skipping the timed-queue round trip a plain
  /// wait() would take.  Legal only when the calling process is the sole
  /// pending activity, i.e. nothing else could legally run before `to`:
  /// no delta-phase work is queued and no timed entry is stamped earlier
  /// than `to`; the warp must also not overshoot the current run()
  /// horizon (run_for slices would otherwise see time move backwards).
  /// Returns false -- changing nothing -- when any of that fails; the
  /// caller then falls back to an ordinary timed wait.  The observable
  /// schedule is identical either way: a refused warp means some other
  /// action was due first, a granted warp merely fast-forwards the clock
  /// the run loop would have idled across.
  bool try_warp(Time to) {
    const std::uint64_t to_ps = to.picos();
    if (to_ps <= now_.picos()) return true;
    if (to_ps > run_limit_ps_) return false;
    if (delta_work_ && !delta_queues_empty()) return false;
    if (!timed_.empty() && timed_.next_at() < to_ps) return false;
    now_ = to;
    timed_.advance_base(to_ps);
    stats_.time_warps++;
    return true;
  }

  // ----- shard-engine probes -------------------------------------------
  // A sharded run (sim/shard.hpp) drives several kernels window by
  // window; between windows the engine asks each kernel how far it could
  // usefully advance.  These are accurate probes, not the delta_work_
  // hint: they never report stale pending work.
  /// True when any delta-phase queue holds work (runnables, methods,
  /// updates, delta notifications or delta waiters).
  bool pending_delta() const { return !delta_queues_empty(); }
  /// True when the timed queue holds at least one entry.
  bool pending_timed() const { return !timed_.empty(); }
  /// Timestamp of the earliest pending activity: now() when delta work
  /// is pending, the earliest timed entry otherwise, Time::max() when
  /// the kernel is fully idle.
  Time next_activity() const;

  const KernelStats& stats() const {
    // Fold the queue-tracked high-water mark in on read, so the hot push
    // path carries no extra loads (see TimedQueue::peak).
    if (timed_.peak() > stats_.timed_peak) stats_.timed_peak = timed_.peak();
    return stats_;
  }

  /// Awaitable: suspend the calling process for `t` simulated time.
  struct TimeAwaiter {
    Kernel& k;
    Time t;
    bool await_ready() const noexcept { return false; }
    // No symmetric-transfer offer here: a timed wait is overwhelmingly
    // the last act of a process's delta (fused timed cycle never arms
    // transfers), so the offer would be declined at the cost of an
    // indirect noop resume on the hottest sleep path.
    void await_suspend(std::coroutine_handle<> h) {
      k.schedule_resume(k.now() + t, h);
    }
    void await_resume() const noexcept {}
  };
  TimeAwaiter wait(Time t) { return TimeAwaiter{*this, t}; }

  /// Awaitable: suspend for one delta cycle.
  struct DeltaAwaiter {
    Kernel& k;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  DeltaAwaiter wait_delta() { return DeltaAwaiter{*this}; }

  // ----- error reporting ------------------------------------------------
  void set_process_error(std::exception_ptr e) {
    if (!error_) error_ = e;
  }

  // ----- tracing ---------------------------------------------------------
  /// Attach an observer sampled after every delta cycle (typically a
  /// Trace).  The caller keeps ownership; detach before destroying it if
  /// the kernel will run again.
  void attach_trace(Sampler& t) { trace_ = &t; }
  void detach_trace() { trace_ = nullptr; }

private:
  friend class Event;
  friend class Channel;

  struct ThreadHolder {
    std::string name;
    std::function<Task()> factory;
    Task task;
  };

  void push_timed(Time abs, detail::TimedKind kind, void* payload) {
    timed_.push(abs.picos(), payload, kind);
  }

  void run_evaluation_phase();
  void run_update_phase();
  void run_delta_notifications();
  void dispatch_timed(const detail::TimedEntry& e);
  bool delta_queues_empty() const;
  void check_error();

  Time now_ = Time::zero();
  // Horizon of the run_until() call in progress; try_warp() may not
  // advance past it.  Zero outside run(), so warps are refused there.
  std::uint64_t run_limit_ps_ = 0;
  bool stop_requested_ = false;
  // True whenever a delta-cycle queue MAY be non-empty; cleared only
  // after a full delta_queues_empty() probe confirms they are drained.
  // Invariant: any non-empty delta queue implies delta_work_ is set.
  bool delta_work_ = false;
  std::exception_ptr error_;

  std::vector<std::coroutine_handle<>> runnable_;
  std::vector<MethodProcess*> method_queue_;
  std::vector<Channel*> update_queue_;
  std::vector<Event*> delta_events_;
  // Delta-wait processes resume via a dedicated event.
  std::vector<std::coroutine_handle<>> delta_waiters_;

  // Recycled batch buffers: each phase swaps its input queue into the
  // matching scratch buffer and drains that, so buffer capacity
  // ping-pongs between the two vectors instead of being freed and
  // re-grown every delta cycle.
  std::vector<std::coroutine_handle<>> runnable_scratch_;
  std::vector<MethodProcess*> method_scratch_;
  std::vector<Channel*> update_scratch_;
  std::vector<Event*> delta_event_scratch_;
  std::vector<detail::TimedEntry> timed_batch_;

  // Remaining symmetric-transfer hops before the chain must fall back to
  // the evaluation loop (see transfer_next).  Non-zero only while the
  // loop's single-runnable fast path is executing a coroutine.
  std::uint32_t transfer_budget_ = 0;
  static constexpr std::uint32_t kTransferChain = 128;

  detail::TimedQueue timed_;

  std::vector<std::unique_ptr<ThreadHolder>> threads_;
  std::vector<std::unique_ptr<MethodProcess>> methods_;

  // Mutable so the const stats() accessor can fold in lazily-tracked
  // counters (timed_peak) at read time.
  mutable KernelStats stats_;
  Sampler* trace_ = nullptr;
};

inline Channel::Channel(Kernel& k, std::string name)
    : kernel_(k), name_(std::move(name)) {}

inline void Channel::request_update() {
  if (!update_pending_) {
    update_pending_ = true;
    kernel_.request_update(*this);
  }
}

inline Event::Event(Kernel& k, std::string name)
    : kernel_(k), name_(std::move(name)) {}

inline void Event::trigger() {
  kernel_.stats_.events_triggered++;
  const std::uint32_t n = inline_count_;
  if (n == 1) [[likely]] {
    // Single dynamic waiter: the notify/wake handshake shape.
    inline_count_ = 0;
    kernel_.make_runnable(inline_waiters_[0]);
  } else if (n != 0) {
    for (std::uint32_t i = 0; i < n; ++i) {
      kernel_.make_runnable(inline_waiters_[i]);
    }
    inline_count_ = 0;
    // The overflow spill is only populated once the inline slots filled,
    // so it need not even be inspected unless they were full.
    if (n == kInlineWaiters && !overflow_waiters_.empty()) [[unlikely]] {
      for (auto h : overflow_waiters_) kernel_.make_runnable(h);
      overflow_waiters_.clear();
    }
  }
  for (MethodProcess* m : statics_) kernel_.queue_method(*m);
}

inline void Event::notify() { trigger(); }

inline void Event::notify_delta() { kernel_.notify_delta_event(*this); }

inline void Event::notify(Time t) {
  kernel_.schedule_event(kernel_.now() + t, *this);
}

inline std::coroutine_handle<> Event::suspend_on(std::coroutine_handle<> h) {
  add_waiter(h);
  return kernel_.transfer_next();
}

inline void Event::add_waiter(std::coroutine_handle<> h) {
  if (inline_count_ < kInlineWaiters) {
    inline_waiters_[inline_count_++] = h;
    return;
  }
  if (overflow_waiters_.size() == overflow_waiters_.capacity()) {
    kernel_.stats_.waiter_reallocs++;
  }
  overflow_waiters_.push_back(h);
}

inline std::coroutine_handle<> Kernel::DeltaAwaiter::await_suspend(
    std::coroutine_handle<> h) {
  k.delta_work_ = true;
  k.delta_waiters_.push_back(h);
  return k.transfer_next();
}

// Root-process exception hand-off: when a root coroutine finishes with a
// stored exception and nobody awaits it, report it to the kernel.
inline std::coroutine_handle<> Task::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  promise_type& p = h.promise();
  if (p.continuation) return p.continuation;
  if (p.root_kernel) {
    if (p.exception) p.root_kernel->set_process_error(p.exception);
    // A finishing root process can hand off to the next runnable just
    // like any other suspend point (transfer_next declines when the
    // exception above was recorded, so errors still unwind promptly).
    return p.root_kernel->transfer_next();
  }
  return std::noop_coroutine();
}

/// Convenience coroutine: wait on `ev` until `pred()` holds.
template <class Pred>
Task await_condition(Event& ev, Pred pred) {
  while (!pred()) co_await ev;
}

}  // namespace hlcs::sim
