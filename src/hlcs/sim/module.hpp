// A Module is the structural unit of a model: it owns channels and
// processes and provides hierarchical naming.  Mirrors sc_module in
// spirit, without macro ceremony.
#pragma once

#include <string>
#include <utility>

#include "hlcs/sim/kernel.hpp"

namespace hlcs::sim {

class Module {
public:
  Module(Kernel& k, std::string name) : kernel_(k), name_(std::move(name)) {}
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  Kernel& kernel() const { return kernel_; }
  const std::string& name() const { return name_; }

  /// Hierarchical name for a child object.
  std::string sub(const std::string& leaf) const { return name_ + "." + leaf; }

protected:
  /// Spawn a thread process named under this module.
  template <class F>
  void spawn(const std::string& leaf, F&& f) {
    kernel_.spawn(sub(leaf), std::forward<F>(f));
  }

  MethodProcess& method(const std::string& leaf, std::function<void()> fn,
                        bool initial_trigger = true) {
    return kernel_.method(sub(leaf), std::move(fn), initial_trigger);
  }

  /// Raw-function-pointer flavour (see Kernel::method): hot-path method
  /// processes dispatch through a single indirect call.
  MethodProcess& method(const std::string& leaf, MethodProcess::RawFn fn,
                        void* ctx, bool initial_trigger = true) {
    return kernel_.method(sub(leaf), fn, ctx, initial_trigger);
  }

private:
  Kernel& kernel_;
  std::string name_;
};

}  // namespace hlcs::sim
