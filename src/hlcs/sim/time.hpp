// Simulated time. One tick = 1 picosecond, stored as an unsigned 64-bit
// count, which covers ~213 days of simulated time -- far beyond any model
// in this library.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace hlcs::sim {

class Time {
public:
  constexpr Time() = default;

  static constexpr Time ps(std::uint64_t v) { return Time(v); }
  static constexpr Time ns(std::uint64_t v) { return Time(v * 1000ull); }
  static constexpr Time us(std::uint64_t v) { return Time(v * 1000000ull); }
  static constexpr Time ms(std::uint64_t v) { return Time(v * 1000000000ull); }
  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() { return Time(~0ull); }

  constexpr std::uint64_t picos() const { return ps_; }
  constexpr double to_ns() const { return static_cast<double>(ps_) / 1e3; }
  constexpr double to_us() const { return static_cast<double>(ps_) / 1e6; }

  constexpr bool is_zero() const { return ps_ == 0; }

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ps_ + b.ps_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ps_ - b.ps_); }
  friend constexpr Time operator*(Time a, std::uint64_t k) { return Time(a.ps_ * k); }
  friend constexpr Time operator*(std::uint64_t k, Time a) { return Time(a.ps_ * k); }
  friend constexpr std::uint64_t operator/(Time a, Time b) { return a.ps_ / b.ps_; }
  constexpr Time& operator+=(Time o) { ps_ += o.ps_; return *this; }

  friend constexpr auto operator<=>(Time, Time) = default;

  std::string to_string() const {
    if (ps_ == 0) return "0s";
    if (ps_ % 1000000ull == 0) return std::to_string(ps_ / 1000000ull) + "us";
    if (ps_ % 1000ull == 0) return std::to_string(ps_ / 1000ull) + "ns";
    return std::to_string(ps_) + "ps";
  }

private:
  constexpr explicit Time(std::uint64_t v) : ps_(v) {}
  std::uint64_t ps_ = 0;
};

namespace literals {
constexpr Time operator""_ps(unsigned long long v) { return Time::ps(v); }
constexpr Time operator""_ns(unsigned long long v) { return Time::ns(v); }
constexpr Time operator""_us(unsigned long long v) { return Time::us(v); }
constexpr Time operator""_ms(unsigned long long v) { return Time::ms(v); }
}  // namespace literals

}  // namespace hlcs::sim
