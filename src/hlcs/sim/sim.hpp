// Umbrella header for the simulation kernel.
#pragma once

#include "hlcs/sim/assert.hpp"
#include "hlcs/sim/clock.hpp"
#include "hlcs/sim/kernel.hpp"
#include "hlcs/sim/logic.hpp"
#include "hlcs/sim/module.hpp"
#include "hlcs/sim/probe.hpp"
#include "hlcs/sim/random.hpp"
#include "hlcs/sim/shard.hpp"
#include "hlcs/sim/signal.hpp"
#include "hlcs/sim/sweep.hpp"
#include "hlcs/sim/task.hpp"
#include "hlcs/sim/time.hpp"
#include "hlcs/sim/trace.hpp"
#include "hlcs/sim/wire.hpp"
