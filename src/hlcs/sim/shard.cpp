#include "hlcs/sim/shard.hpp"

#include <algorithm>
#include <chrono>

namespace hlcs::sim {

namespace {

std::size_t shard_index_of(const std::vector<Kernel*>& shards,
                           const Kernel& k, const char* what) {
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i] == &k) return i;
  }
  fail(std::string("ShardEngine: link ") + what +
       " kernel is not one of the engine's shards");
}

}  // namespace

ShardEngine::ShardEngine(std::vector<Kernel*> shards,
                         std::vector<LinkBase*> links)
    : ShardEngine(std::move(shards), std::move(links), Options{}) {}

ShardEngine::ShardEngine(std::vector<Kernel*> shards,
                         std::vector<LinkBase*> links, Options opt)
    : shards_(std::move(shards)), links_(std::move(links)) {
  HLCS_ASSERT(!shards_.empty(), "ShardEngine needs at least one shard");
  for (Kernel* k : shards_) {
    HLCS_ASSERT(k != nullptr, "ShardEngine: null shard kernel");
  }
  std::uint64_t min_latency = std::numeric_limits<std::uint64_t>::max();
  link_shards_.reserve(links_.size());
  for (LinkBase* l : links_) {
    HLCS_ASSERT(l != nullptr, "ShardEngine: null link");
    link_shards_.emplace_back(
        shard_index_of(shards_, l->source(), "source"),
        shard_index_of(shards_, l->target(), "target"));
    min_latency = std::min(min_latency, l->latency().picos());
  }
  window_ps_ = opt.window.picos();
  if (window_ps_ == 0) {
    // No explicit window: the largest safe width is the minimum link
    // latency; with no links at all, windows are unbounded (0 below
    // means "run straight to the limit").
    window_ps_ = links_.empty() ? 0 : min_latency;
  }
  if (!links_.empty() && window_ps_ > min_latency) {
    fail("ShardEngine: window " + Time::ps(window_ps_).to_string() +
         " exceeds the minimum link latency " +
         Time::ps(min_latency).to_string() +
         " -- conservative lookahead would be violated");
  }
  threads_ = opt.threads;
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_ = std::min<unsigned>(
      threads_, static_cast<unsigned>(shards_.size()));
  stats_.resize(shards_.size());
  activity_before_.resize(shards_.size());
  busy_ns_.resize(shards_.size());
  shard_errors_.resize(shards_.size());
}

ShardEngine::~ShardEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_go_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

std::uint64_t ShardEngine::activity_of(const Kernel& k) const {
  const KernelStats& s = k.stats();
  return s.timed_actions + s.deltas + s.resumes + s.method_runs;
}

const std::vector<ShardStats>& ShardEngine::stats() const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    stats_[i].kernel = shards_[i]->stats();
    stats_[i].msgs_sent = 0;
    stats_[i].msgs_received = 0;
    stats_[i].busy_ns = busy_ns_[i];
  }
  for (std::size_t li = 0; li < links_.size(); ++li) {
    stats_[link_shards_[li].first].msgs_sent += links_[li]->sent();
    stats_[link_shards_[li].second].msgs_received += links_[li]->delivered();
  }
  return stats_;
}

void ShardEngine::start_workers() {
  if (!workers_.empty() || threads_ <= 1) return;
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

void ShardEngine::worker_main(unsigned index) {
  std::uint64_t seen_round = 0;
  for (;;) {
    std::uint64_t target;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_go_.wait(lock,
                  [&] { return shutdown_ || round_ != seen_round; });
      if (shutdown_) return;
      seen_round = round_;
      target = round_target_ps_;
    }
    run_shard_range(index, target);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0) cv_done_.notify_one();
    }
  }
}

void ShardEngine::run_shard_range(std::size_t begin_stride,
                                  std::uint64_t target_ps) {
  for (std::size_t i = begin_stride; i < shards_.size(); i += threads_) {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      shards_[i]->run_until(Time::ps(target_ps));
    } catch (...) {
      shard_errors_[i] = std::current_exception();
    }
    busy_ns_[i] += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
}

void ShardEngine::run_window(std::uint64_t target_ps) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    activity_before_[i] = activity_of(*shards_[i]);
  }
  if (threads_ <= 1) {
    run_shard_range(0, target_ps);
  } else {
    start_workers();
    {
      std::lock_guard<std::mutex> lock(mu_);
      round_target_ps_ = target_ps;
      running_ = threads_ - 1;
      ++round_;
    }
    cv_go_.notify_all();
    run_shard_range(0, target_ps);  // the coordinator works stride 0
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_done_.wait(lock, [&] { return running_ == 0; });
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shard_errors_[i]) {
      std::exception_ptr e = std::exchange(shard_errors_[i], nullptr);
      std::rethrow_exception(e);
    }
  }
  ++windows_run_;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    stats_[i].windows++;
    if (activity_of(*shards_[i]) == activity_before_[i]) {
      stats_[i].stalled_windows++;
    }
  }
}

void ShardEngine::run_until(Time limit) {
  const std::uint64_t end = limit.picos();
  // Stragglers from a previous run_until call are already collected;
  // collecting again is a no-op but keeps the invariant obvious.
  for (LinkBase* l : links_) l->collect();
  while (now_ps_ <= end) {
    // Global next-event time: the earliest pending activity across all
    // shard kernels and all undelivered messages.  Partition-invariant:
    // the same model holds the same events no matter how it is split.
    std::uint64_t ne = std::numeric_limits<std::uint64_t>::max();
    for (Kernel* k : shards_) {
      ne = std::min(ne, k->next_activity().picos());
    }
    for (LinkBase* l : links_) {
      if (l->has_inflight()) {
        ne = std::min(ne, l->earliest_arrival_ps());
      }
    }
    if (ne > end) break;  // nothing left to do at or before the limit
    // The window boundary: the next lookahead grid point at or after
    // the next event (fast-forwarding over empty windows is safe --
    // and deterministic -- because boundaries stay on the fixed grid).
    std::uint64_t target = ne;
    if (window_ps_ != 0 && ne % window_ps_ != 0) {
      const std::uint64_t up = ne + (window_ps_ - ne % window_ps_);
      target = up < ne ? end : up;  // overflow clamps to the limit
    } else if (window_ps_ == 0) {
      target = end;  // no links: a single unbounded window
    }
    target = std::min(target, end);
    // Deliveries due in this window, in canonical link order.
    for (LinkBase* l : links_) l->stage_due(target);
    run_window(target);
    for (LinkBase* l : links_) l->collect();
    now_ps_ = target;
    if (target == end) break;
  }
  now_ps_ = end;
}

}  // namespace hlcs::sim
