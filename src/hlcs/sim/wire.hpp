// Multi-driver resolved wires carrying 4-valued logic.  Every agent that
// drives a wire obtains a Driver slot; the committed value is the wired
// resolution over all slots (undriven slots contribute Z).  Conflicting
// drivers resolve to X, which the PCI protocol monitor flags.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hlcs/sim/kernel.hpp"
#include "hlcs/sim/logic.hpp"
#include "hlcs/sim/trace.hpp"

namespace hlcs::sim {

/// A resolved scalar wire.
class Wire final : public Channel, public Traceable {
public:
  Wire(Kernel& k, std::string name)
      : Channel(k, std::move(name)), changed_(k, this->name() + ".changed") {}

  class Driver {
  public:
    Driver() = default;
    void write(Logic v) {
      HLCS_ASSERT(w_ != nullptr, "write through unbound Wire::Driver");
      if (w_->slots_[slot_] != v) {
        w_->slots_[slot_] = v;
        w_->request_update();
      }
    }
    void release() { write(Logic::Z); }
    bool bound() const { return w_ != nullptr; }

  private:
    friend class Wire;
    Driver(Wire* w, std::size_t s) : w_(w), slot_(s) {}
    Wire* w_ = nullptr;
    std::size_t slot_ = 0;
  };

  Driver make_driver() {
    slots_.push_back(Logic::Z);
    return Driver(this, slots_.size() - 1);
  }

  Logic read() const { return cur_; }
  /// Driven low / driven high helpers for active-low protocol signals.
  bool is_low() const { return cur_ == Logic::L0; }
  bool is_high() const { return cur_ == Logic::L1; }

  Event& changed() { return changed_; }

  // Traceable
  std::string trace_name() const override { return name(); }
  unsigned trace_width() const override { return 1; }
  void trace_value_into(TraceValue& v) const override {
    const auto code = static_cast<std::uint8_t>(cur_);
    v.assign_inline(1, code & 1, code >> 1);
  }

protected:
  void update() override {
    Logic r = Logic::Z;
    for (Logic v : slots_) r = resolve(r, v);
    if (r != cur_) {
      cur_ = r;
      changed_.notify_delta();
      trace_touch();
    }
  }

private:
  std::vector<Logic> slots_;
  Logic cur_ = Logic::Z;
  Event changed_;
};

/// A resolved vector wire (1..64 bits), e.g. the PCI AD bus.
class WireVec final : public Channel, public Traceable {
public:
  WireVec(Kernel& k, std::string name, unsigned width)
      : Channel(k, std::move(name)),
        width_(width),
        cur_(LogicVec::all_z(width)),
        changed_(k, this->name() + ".changed") {}

  class Driver {
  public:
    Driver() = default;
    void write(const LogicVec& v) {
      HLCS_ASSERT(w_ != nullptr, "write through unbound WireVec::Driver");
      HLCS_ASSERT(v.width() == w_->width_, "WireVec driver width mismatch");
      if (!(w_->slots_[slot_] == v)) {
        w_->slots_[slot_] = v;
        w_->request_update();
      }
    }
    void write_uint(std::uint64_t value) {
      HLCS_ASSERT(w_ != nullptr, "write through unbound WireVec::Driver");
      write(LogicVec::of(value, w_->width_));
    }
    void release() {
      HLCS_ASSERT(w_ != nullptr, "release of unbound WireVec::Driver");
      write(LogicVec::all_z(w_->width_));
    }
    bool bound() const { return w_ != nullptr; }

  private:
    friend class WireVec;
    Driver(WireVec* w, std::size_t s) : w_(w), slot_(s) {}
    WireVec* w_ = nullptr;
    std::size_t slot_ = 0;
  };

  Driver make_driver() {
    slots_.push_back(LogicVec::all_z(width_));
    return Driver(this, slots_.size() - 1);
  }

  unsigned width() const { return width_; }
  const LogicVec& read() const { return cur_; }
  Event& changed() { return changed_; }

  // Traceable
  std::string trace_name() const override { return name(); }
  unsigned trace_width() const override { return width_; }
  void trace_value_into(TraceValue& v) const override {
    v.assign_inline(width_, cur_.trace_plane_lo(), cur_.trace_plane_hi());
  }

protected:
  void update() override {
    LogicVec r = LogicVec::all_z(width_);
    for (const LogicVec& v : slots_) r = r.resolved_with(v);
    if (!(r == cur_)) {
      cur_ = r;
      changed_.notify_delta();
      trace_touch();
    }
  }

private:
  unsigned width_;
  std::vector<LogicVec> slots_;
  LogicVec cur_;
  Event changed_;
};

}  // namespace hlcs::sim
