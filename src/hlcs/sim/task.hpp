// Simulation processes are C++20 coroutines returning sim::Task.
//
// A Task supports nesting: a process coroutine may `co_await` another
// Task-returning coroutine; completion transfers control back to the
// awaiting coroutine via symmetric transfer.  Exceptions propagate up the
// await chain; an exception escaping a root process is recorded on the
// Kernel and re-thrown from Kernel::run().
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace hlcs::sim {

class Kernel;

class Task {
public:
  struct promise_type {
    std::coroutine_handle<> continuation{};
    std::exception_ptr exception{};
    Kernel* root_kernel = nullptr;  // set only on root process coroutines

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return h_ != nullptr; }
  bool done() const noexcept { return !h_ || h_.done(); }
  Handle handle() const noexcept { return h_; }

  // Awaitable interface: `co_await child_task` starts the child and
  // resumes the awaiter when the child completes.
  bool await_ready() const noexcept { return done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;  // symmetric transfer into the child
  }
  void await_resume() {
    if (h_ && h_.promise().exception) {
      std::rethrow_exception(h_.promise().exception);
    }
  }

private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  Handle h_ = nullptr;
};

}  // namespace hlcs::sim
