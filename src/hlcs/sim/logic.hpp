// Four-valued logic: 0, 1, Z (high impedance), X (unknown / conflict).
//
// The PCI substrate needs honest tri-state modelling: AD/CBE and the
// sustained-tri-state control signals (FRAME#, IRDY#, TRDY#, DEVSEL#,
// STOP#) are shared wires driven by whichever agent owns them, released
// to Z otherwise.  Driving conflicts resolve to X so the protocol monitor
// can detect real errors instead of silently picking a winner.
//
// LogicVec packs up to 64 bits as three bitmasks (value / Z / X), so
// resolution and comparison are word-parallel.
#pragma once

#include <cstdint>
#include <string>

#include "hlcs/sim/assert.hpp"

namespace hlcs::sim {

enum class Logic : std::uint8_t { L0 = 0, L1 = 1, Z = 2, X = 3 };

constexpr Logic logic_from_bool(bool b) { return b ? Logic::L1 : Logic::L0; }

constexpr bool is_01(Logic l) { return l == Logic::L0 || l == Logic::L1; }

/// True iff the value is a driven logic one (Z and X are not).
constexpr bool is_one(Logic l) { return l == Logic::L1; }
constexpr bool is_zero(Logic l) { return l == Logic::L0; }

/// Wired resolution: Z yields to anything; equal drivers agree; 0/1
/// conflict or any X produces X.
constexpr Logic resolve(Logic a, Logic b) {
  if (a == Logic::Z) return b;
  if (b == Logic::Z) return a;
  if (a == b) return a;
  return Logic::X;
}

constexpr char to_char(Logic l) {
  switch (l) {
    case Logic::L0: return '0';
    case Logic::L1: return '1';
    case Logic::Z: return 'z';
    default: return 'x';
  }
}

constexpr Logic logic_not(Logic l) {
  if (l == Logic::L0) return Logic::L1;
  if (l == Logic::L1) return Logic::L0;
  return Logic::X;
}

/// A fixed-width (1..64 bit) vector of 4-valued logic.
class LogicVec {
public:
  /// Default: zero-width (an "unbound" placeholder).
  constexpr LogicVec() = default;

  /// All bits X -- the state of an undriven, untouched net at power-up.
  constexpr explicit LogicVec(unsigned width)
      : width_(width), val_(0), z_(0), x_(mask(width)) {
    check_width(width);
  }

  static constexpr LogicVec of(std::uint64_t value, unsigned width) {
    check_width(width);
    LogicVec v;
    v.width_ = width;
    v.val_ = value & mask(width);
    v.z_ = 0;
    v.x_ = 0;
    return v;
  }

  static constexpr LogicVec all_z(unsigned width) {
    check_width(width);
    LogicVec v;
    v.width_ = width;
    v.z_ = mask(width);
    return v;
  }

  static constexpr LogicVec all_x(unsigned width) { return LogicVec(width); }

  constexpr unsigned width() const { return width_; }

  constexpr Logic bit(unsigned i) const {
    HLCS_ASSERT(i < width_, "LogicVec::bit index out of range");
    if (x_ >> i & 1) return Logic::X;
    if (z_ >> i & 1) return Logic::Z;
    return (val_ >> i & 1) ? Logic::L1 : Logic::L0;
  }

  constexpr void set_bit(unsigned i, Logic l) {
    HLCS_ASSERT(i < width_, "LogicVec::set_bit index out of range");
    const std::uint64_t b = 1ull << i;
    val_ &= ~b;
    z_ &= ~b;
    x_ &= ~b;
    switch (l) {
      case Logic::L1: val_ |= b; break;
      case Logic::Z: z_ |= b; break;
      case Logic::X: x_ |= b; break;
      case Logic::L0: break;
    }
  }

  /// True iff every bit is 0 or 1.
  constexpr bool is_fully_defined() const { return (z_ | x_) == 0; }

  constexpr bool has_x() const { return x_ != 0; }
  constexpr bool is_all_z() const { return z_ == mask(width_) && x_ == 0; }

  /// Numeric value; requires a fully defined vector.
  constexpr std::uint64_t to_uint() const {
    HLCS_ASSERT(is_fully_defined(), "to_uint on vector with Z/X bits");
    return val_;
  }

  /// Numeric value treating Z/X bits as zero (for lenient observers).
  constexpr std::uint64_t to_uint_lenient() const { return val_ & ~(z_ | x_); }

  /// Per-bit wired resolution of two drivers of equal width.
  constexpr LogicVec resolved_with(const LogicVec& o) const {
    HLCS_ASSERT(width_ == o.width_, "resolving vectors of different widths");
    LogicVec r;
    r.width_ = width_;
    // A bit of the result is X if either side is X, or both sides drive
    // (non-Z) and disagree.
    const std::uint64_t both_driven = ~z_ & ~o.z_ & ~x_ & ~o.x_;
    const std::uint64_t disagree = (val_ ^ o.val_) & both_driven;
    r.x_ = (x_ | o.x_ | disagree) & mask(width_);
    // Z only where both sides are Z.
    r.z_ = z_ & o.z_ & ~r.x_;
    // Value comes from whichever side drives.
    r.val_ = ((val_ & ~z_) | (o.val_ & ~o.z_)) & ~r.z_ & ~r.x_;
    return r;
  }

  friend constexpr bool operator==(const LogicVec& a, const LogicVec& b) {
    return a.width_ == b.width_ && a.val_ == b.val_ && a.z_ == b.z_ &&
           a.x_ == b.x_;
  }

  /// Bit-planes of the 2-bit trace code per bit (code == Logic enum
  /// value: 0/1/z/x -> 0/1/2/3).  lo carries code bit 0, hi code bit 1.
  constexpr std::uint64_t trace_plane_lo() const { return val_ | x_; }
  constexpr std::uint64_t trace_plane_hi() const { return z_ | x_; }

  std::string to_string() const {
    std::string s;
    s.reserve(width_);
    for (unsigned i = width_; i-- > 0;) s.push_back(to_char(bit(i)));
    return s;
  }

private:
  static constexpr std::uint64_t mask(unsigned w) {
    return w >= 64 ? ~0ull : (1ull << w) - 1;
  }
  static constexpr void check_width(unsigned w) {
    HLCS_ASSERT(w >= 1 && w <= 64, "LogicVec width must be in [1,64]");
  }

  unsigned width_ = 0;
  std::uint64_t val_ = 0;
  std::uint64_t z_ = 0;
  std::uint64_t x_ = 0;
};

}  // namespace hlcs::sim
