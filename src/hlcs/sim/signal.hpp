// Single-driver signals with SystemC evaluate/update semantics: a write
// during the evaluation phase becomes visible to readers only from the
// next delta cycle, which makes concurrent processes deterministic.
#pragma once

#include <concepts>
#include <string>
#include <type_traits>

#include "hlcs/sim/kernel.hpp"
#include "hlcs/sim/logic.hpp"
#include "hlcs/sim/trace.hpp"

namespace hlcs::sim {

namespace detail {

// Pack a value into the trace's 2-bit-per-position snapshot.  Codes match
// the Logic enum, so two-valued data has an all-zero hi plane and the lo
// plane is simply the bits of the value -- no per-bit work, no heap.
inline void trace_pack(TraceValue& out, bool v) {
  out.assign_inline(1, v ? 1 : 0, 0);
}
inline void trace_pack(TraceValue& out, Logic v) {
  const auto code = static_cast<std::uint8_t>(v);
  out.assign_inline(1, code & 1, code >> 1);
}
inline void trace_pack(TraceValue& out, const LogicVec& v) {
  out.assign_inline(v.width(), v.trace_plane_lo(), v.trace_plane_hi());
}
template <std::integral T>
  requires(!std::same_as<T, bool>)
void trace_pack(TraceValue& out, T v) {
  constexpr unsigned w = sizeof(T) * 8;
  constexpr std::uint64_t m = w >= 64 ? ~0ull : (1ull << w) - 1;
  out.assign_inline(w, static_cast<std::uint64_t>(v) & m, 0);
}

template <class T>
constexpr unsigned trace_width_of() {
  if constexpr (std::same_as<T, bool> || std::same_as<T, Logic>) {
    return 1;
  } else {
    return sizeof(T) * 8;
  }
}

}  // namespace detail

template <class T>
class Signal final : public Channel, public Traceable {
public:
  Signal(Kernel& k, std::string name, T init = T{})
      : Channel(k, std::move(name)),
        cur_(init),
        next_(init),
        changed_(k, this->name() + ".changed") {}

  const T& read() const { return cur_; }

  void write(const T& v) {
    next_ = v;
    request_update();
  }

  /// Notified (delta) whenever a committed write changes the value.
  Event& changed() { return changed_; }

  // Traceable
  std::string trace_name() const override { return name(); }
  unsigned trace_width() const override {
    if constexpr (std::same_as<T, LogicVec>) {
      return cur_.width();
    } else {
      return detail::trace_width_of<T>();
    }
  }
  void trace_value_into(TraceValue& v) const override {
    detail::trace_pack(v, cur_);
  }

protected:
  void update() override {
    if (!(next_ == cur_)) {
      cur_ = next_;
      changed_.notify_delta();
      trace_touch();
    }
  }

private:
  T cur_;
  T next_;
  Event changed_;
};

}  // namespace hlcs::sim
