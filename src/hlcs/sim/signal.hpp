// Single-driver signals with SystemC evaluate/update semantics: a write
// during the evaluation phase becomes visible to readers only from the
// next delta cycle, which makes concurrent processes deterministic.
#pragma once

#include <concepts>
#include <string>
#include <type_traits>

#include "hlcs/sim/kernel.hpp"
#include "hlcs/sim/logic.hpp"
#include "hlcs/sim/trace.hpp"

namespace hlcs::sim {

namespace detail {

inline std::string trace_repr(bool v) { return v ? "1" : "0"; }
inline std::string trace_repr(Logic v) { return std::string(1, to_char(v)); }
inline std::string trace_repr(const LogicVec& v) { return v.to_string(); }
template <std::integral T>
  requires(!std::same_as<T, bool>)
std::string trace_repr(T v) {
  // Binary, MSB first, natural width of the type.
  std::string s;
  for (int i = static_cast<int>(sizeof(T) * 8) - 1; i >= 0; --i) {
    s.push_back(((static_cast<std::uint64_t>(v) >> i) & 1) ? '1' : '0');
  }
  return s;
}

template <class T>
constexpr unsigned trace_width_of() {
  if constexpr (std::same_as<T, bool> || std::same_as<T, Logic>) {
    return 1;
  } else {
    return sizeof(T) * 8;
  }
}

}  // namespace detail

template <class T>
class Signal final : public Channel, public Traceable {
public:
  Signal(Kernel& k, std::string name, T init = T{})
      : Channel(k, std::move(name)),
        cur_(init),
        next_(init),
        changed_(k, this->name() + ".changed") {}

  const T& read() const { return cur_; }

  void write(const T& v) {
    next_ = v;
    request_update();
  }

  /// Notified (delta) whenever a committed write changes the value.
  Event& changed() { return changed_; }

  // Traceable
  std::string trace_name() const override { return name(); }
  unsigned trace_width() const override {
    if constexpr (std::same_as<T, LogicVec>) {
      return cur_.width();
    } else {
      return detail::trace_width_of<T>();
    }
  }
  std::string trace_value() const override { return detail::trace_repr(cur_); }

protected:
  void update() override {
    if (!(next_ == cur_)) {
      cur_ = next_;
      changed_.notify_delta();
    }
  }

private:
  T cur_;
  T next_;
  Event changed_;
};

}  // namespace hlcs::sim
