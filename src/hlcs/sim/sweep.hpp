// ParallelSweep -- run N independent simulation scenarios across a
// thread pool.
//
// The kernel is strictly single-threaded by design (determinism depends
// on it), but design-space exploration -- the paper's FW1 experiment
// sweeping client counts and arbitration policies -- is embarrassingly
// parallel ACROSS simulations: every sweep point owns a private Kernel
// and shares nothing.  ParallelSweep exploits exactly that boundary:
// each worker thread claims whole sweep points and runs an ordinary
// deterministic Kernel to completion, so results are bit-identical to a
// serial loop regardless of thread count or scheduling order.
//
// The scenario callback builds the model, runs the kernel, and appends
// whatever it wants recorded to `transcript`.  Anything it touches
// outside its own sweep point is a data race; keep all state local.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "hlcs/sim/kernel.hpp"

namespace hlcs::sim {

/// The worker-pool core shared by ParallelSweep and the synth batch
/// runner: run `fn(0) .. fn(n-1)` across `threads` workers, each index
/// claimed dynamically off a shared atomic cursor.  `threads == 0`
/// picks the hardware concurrency; `threads == 1` runs serially on the
/// calling thread (no workers spawned).  If any call throws, the
/// exception of the lowest failing index is rethrown after all workers
/// finish.  Determinism is the caller's contract: fn must write only
/// per-index state, so results are identical at any thread count.
void parallel_for_indexed(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn);

/// Outcome of one sweep point, indexed deterministically.
struct SweepResult {
  std::size_t index = 0;
  std::string transcript;  ///< scenario-written record
  Time end_time;           ///< kernel time when the scenario returned
  KernelStats stats;       ///< kernel statistics at completion
};

class ParallelSweep {
 public:
  /// `fn(index, kernel, transcript)` runs one sweep point.  The kernel
  /// is freshly constructed for the point; the scenario is responsible
  /// for calling run()/run_for() itself.
  using Scenario =
      std::function<void(std::size_t, Kernel&, std::string&)>;

  explicit ParallelSweep(Scenario fn);

  /// Run `points` sweep points on `threads` worker threads and return
  /// results ordered by index.  `threads == 0` picks the hardware
  /// concurrency; `threads == 1` runs serially on the calling thread
  /// (no workers spawned) -- useful as the determinism reference.
  /// If any scenario throws, the exception of the lowest-indexed
  /// failing point is rethrown after all workers finish.
  std::vector<SweepResult> run(std::size_t points, unsigned threads = 0);

 private:
  Scenario scenario_;
};

}  // namespace hlcs::sim
