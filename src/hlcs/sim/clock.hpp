// Clock generator.  Produces a bool signal plus dedicated posedge /
// negedge events (notified in the same delta as the corresponding signal
// change becomes visible, so a process woken by posedge() reads the
// signal high).
//
// Note: a Clock toggles forever; drive simulations with run_for() /
// run_until(), not the unbounded run().
#pragma once

#include <string>

#include "hlcs/sim/kernel.hpp"
#include "hlcs/sim/module.hpp"
#include "hlcs/sim/signal.hpp"

namespace hlcs::sim {

class Clock final : public Module {
public:
  Clock(Kernel& k, std::string name, Time period)
      : Module(k, std::move(name)),
        period_(period),
        half_(Time::ps(period.picos() / 2)),
        sig_(k, sub("clk"), false),
        posedge_(k, sub("posedge")),
        negedge_(k, sub("negedge")) {
    HLCS_ASSERT(period.picos() >= 2, "clock period too small");
    spawn("gen", [this]() { return generate(); });
  }

  Signal<bool>& signal() { return sig_; }
  const Signal<bool>& signal() const { return sig_; }
  bool high() const { return sig_.read(); }
  Time period() const { return period_; }

  /// Awaitable events; the clock signal already shows the new level when
  /// a waiter resumes.
  Event& posedge() { return posedge_; }
  Event& negedge() { return negedge_; }

  /// Rising edges generated so far (cycle counter).
  std::uint64_t cycles() const { return cycles_; }

private:
  Task generate() {
    for (;;) {
      co_await kernel().wait(half_);
      sig_.write(true);
      ++cycles_;
      posedge_.notify_delta();
      co_await kernel().wait(period_ - half_);
      sig_.write(false);
      negedge_.notify_delta();
    }
  }

  Time period_;
  Time half_;
  Signal<bool> sig_;
  Event posedge_;
  Event negedge_;
  std::uint64_t cycles_ = 0;
};

}  // namespace hlcs::sim
