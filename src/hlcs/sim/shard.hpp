// Sharded parallel simulation with conservative lookahead.
//
// A ShardEngine drives several ordinary Kernels -- one per shard, each
// with its own calendar queue and delta loop -- in lockstep windows.
// Shards interact only through Links: typed, fixed-latency, one-way
// message channels.  Because every link carries at least `lookahead`
// (the minimum link latency) of simulated delay, a shard can execute a
// whole window of width <= lookahead without observing any other shard:
// a message sent inside the window cannot arrive before the window
// ends.  Shards therefore advance independently up to the window
// boundary and synchronize only there (a classic conservative /
// Chandy-Misra-Bryant scheme with a global barrier instead of null
// messages).
//
// Determinism (the acceptance gate of this subsystem): the observable
// behaviour of every module is bit-identical at any shard count and any
// thread count, including the serial reference (every module on one
// kernel, run by one thread).  The argument has three legs:
//
//   1. Each Kernel is the unchanged strictly-deterministic serial
//      kernel; a shard's schedule depends only on the sequence of
//      (spawn, delivery) stimuli it receives.
//   2. Deliveries are staged, never direct: send() only appends to a
//      per-link outbox.  At each window boundary the engine moves due
//      messages into the target kernel as timed pump activations, always
//      in canonical (arrival time, link registration order, send order)
//      order, and always at the same boundary -- the one immediately
//      before the window containing the arrival -- regardless of shard
//      or thread count.  Window boundaries themselves are derived from
//      the global next-event time, which is partition-invariant.
//   3. Modules in different segments share no state except links, so
//      the relative interleaving of two segments' processes inside one
//      kernel (the only thing that differs between partitions) is not
//      observable to either of them.
//
// Consequently transcripts, check verdicts and per-signal waveforms are
// identical across partitions, and whole per-shard VCD files are
// byte-identical across thread counts for a fixed partition.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hlcs/sim/kernel.hpp"
#include "hlcs/sim/time.hpp"

namespace hlcs::sim {

class ShardEngine;

/// Per-shard statistics in the KernelStats tradition: the shard's own
/// kernel counters plus the engine-level window/synchronization view.
struct ShardStats {
  KernelStats kernel;                 ///< the shard kernel's counters
  std::uint64_t windows = 0;          ///< windows this shard executed
  std::uint64_t stalled_windows = 0;  ///< windows with no local activity
                                      ///  (pure horizon synchronization)
  std::uint64_t msgs_sent = 0;        ///< messages sent on outgoing links
  std::uint64_t msgs_received = 0;    ///< messages delivered on incoming
                                      ///  links
  std::uint64_t busy_ns = 0;          ///< wall nanoseconds spent running
                                      ///  this shard's kernel (excludes
                                      ///  barrier waits -- the busiest
                                      ///  shard's busy time is the
                                      ///  critical path of the run)
};

/// Type-independent part of a cross-shard channel; the engine talks to
/// links through this interface.  See Link<T> below for the user API.
///
/// Lifetime: a link references both kernels (event + pump method live on
/// the target kernel), so destroy links before their kernels.
class LinkBase {
public:
  LinkBase(Kernel& src, Kernel& dst, std::string name, Time latency)
      : src_(src),
        dst_(dst),
        name_(std::move(name)),
        latency_ps_(latency.picos()),
        arrived_(dst, name_ + ".arrived"),
        pump_(dst.method(
            name_ + ".pump", [this] { deliver_arrived(); },
            /*initial_trigger=*/false)) {
    HLCS_ASSERT(latency_ps_ > 0, "Link latency must be positive");
  }
  virtual ~LinkBase() = default;
  LinkBase(const LinkBase&) = delete;
  LinkBase& operator=(const LinkBase&) = delete;

  const std::string& name() const { return name_; }
  Time latency() const { return Time::ps(latency_ps_); }
  Kernel& source() const { return src_; }
  Kernel& target() const { return dst_; }

  /// Messages accepted by send() / handed to the receiver so far.
  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }

  /// Notified (immediate) in the delta in which new messages become
  /// receivable.  Receivers use the lost-notification-safe loop:
  ///   while (!link.ready()) co_await link.arrival();
  Event& arrival() { return arrived_; }

protected:
  friend class ShardEngine;

  // Engine hooks; all run between windows on the coordinating thread,
  // so they never race with in-window send()/pop() on the shard threads
  // (the window barrier orders them).
  /// Move the outbox (messages sent during the last window) into the
  /// engine-side inflight queue.
  virtual void collect() = 0;
  virtual bool has_inflight() const = 0;
  /// Earliest undelivered arrival time.  Precondition: has_inflight().
  virtual std::uint64_t earliest_arrival_ps() const = 0;
  /// Stage every inflight message with arrival <= target_ps for
  /// delivery and schedule the pump at each distinct arrival time.
  virtual void stage_due(std::uint64_t target_ps) = 0;
  /// Pump body: runs inside the target kernel at an arrival time; moves
  /// staged messages with arrival <= now into the ready queue.
  virtual void deliver_arrived() = 0;

  void schedule_pump(std::uint64_t at_ps) {
    if (at_ps != last_scheduled_ps_) {
      dst_.schedule_method(Time::ps(at_ps), pump_);
      last_scheduled_ps_ = at_ps;
    }
  }

  Kernel& src_;
  Kernel& dst_;
  std::string name_;
  std::uint64_t latency_ps_;
  Event arrived_;
  MethodProcess& pump_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t last_scheduled_ps_ = std::numeric_limits<std::uint64_t>::max();
};

/// A one-way typed message channel between two shards (or within one --
/// links between modules that share a kernel behave identically, which
/// is what makes partitions interchangeable).  send() may only be called
/// from processes of the source kernel; ready()/pop() only from
/// processes of the target kernel.  Messages sent at time t become
/// receivable at exactly t + latency.
template <class T>
class Link final : public LinkBase {
public:
  using LinkBase::LinkBase;

  /// Fire-and-forget send at the source kernel's current time.
  void send(T msg) {
    outbox_.push_back(Staged{src_.now().picos() + latency_ps_,
                             std::move(msg)});
    ++sent_;
  }

  /// True when a message is receivable right now.
  bool ready() const { return !ready_.empty(); }
  std::size_t ready_count() const { return ready_.size(); }

  /// Take the oldest receivable message.  Precondition: ready().
  T pop() {
    HLCS_ASSERT(!ready_.empty(), "Link::pop on empty link");
    T m = std::move(ready_.front());
    ready_.pop_front();
    return m;
  }

private:
  struct Staged {
    std::uint64_t arrival_ps;
    T payload;
  };

  void collect() override {
    // Per-link arrivals are monotone (fixed latency, monotone sends), so
    // appending keeps inflight_ sorted.
    for (Staged& s : outbox_) inflight_.push_back(std::move(s));
    outbox_.clear();
  }
  bool has_inflight() const override { return !inflight_.empty(); }
  std::uint64_t earliest_arrival_ps() const override {
    return inflight_.front().arrival_ps;
  }
  void stage_due(std::uint64_t target_ps) override {
    while (!inflight_.empty() &&
           inflight_.front().arrival_ps <= target_ps) {
      schedule_pump(inflight_.front().arrival_ps);
      due_.push_back(std::move(inflight_.front()));
      inflight_.pop_front();
    }
  }
  void deliver_arrived() override {
    const std::uint64_t now = dst_.now().picos();
    bool any = false;
    while (!due_.empty() && due_.front().arrival_ps <= now) {
      ready_.push_back(std::move(due_.front().payload));
      due_.pop_front();
      ++delivered_;
      any = true;
    }
    if (any) arrived_.notify();
  }

  std::deque<Staged> outbox_;    // written by the source shard in-window
  std::deque<Staged> inflight_;  // engine-side, between windows
  std::deque<Staged> due_;       // staged for delivery; drained by pump_
  std::deque<T> ready_;          // receivable; drained by the consumer
};

/// Drives N shard kernels through barrier-synchronized lookahead
/// windows, on a persistent worker pool.  See the file comment for the
/// execution and determinism model.
class ShardEngine {
public:
  struct Options {
    /// Window width; zero picks the largest safe value (the minimum
    /// link latency).  Must not exceed any link latency.
    Time window = Time::zero();
    /// Worker threads; 0 picks hardware concurrency, 1 runs every shard
    /// on the calling thread (the determinism reference).  Capped at
    /// the shard count.
    unsigned threads = 0;
  };

  ShardEngine(std::vector<Kernel*> shards, std::vector<LinkBase*> links);
  ShardEngine(std::vector<Kernel*> shards, std::vector<LinkBase*> links,
              Options opt);
  ~ShardEngine();
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Run every shard until simulated time reaches `limit` (events at
  /// `limit` are still executed, matching Kernel::run_until).
  void run_until(Time limit);
  void run_for(Time t) { run_until(Time::ps(now_ps_) + t); }

  Time now() const { return Time::ps(now_ps_); }
  Time window() const { return Time::ps(window_ps_); }
  unsigned threads() const { return threads_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Total windows the engine has synchronized.
  std::uint64_t windows_run() const { return windows_run_; }

  /// Per-shard statistics (kernel counters folded in on read).
  const std::vector<ShardStats>& stats() const;

private:
  struct KernelActivity {
    std::uint64_t events = 0;  // timed_actions + deltas snapshot
  };

  void run_window(std::uint64_t target_ps);
  void run_shard_range(std::size_t begin_stride, std::uint64_t target_ps);
  void worker_main(unsigned index);
  void start_workers();
  std::uint64_t activity_of(const Kernel& k) const;

  std::vector<Kernel*> shards_;
  std::vector<LinkBase*> links_;
  std::uint64_t window_ps_ = 0;
  unsigned threads_ = 1;
  std::uint64_t now_ps_ = 0;
  std::uint64_t windows_run_ = 0;

  mutable std::vector<ShardStats> stats_;
  std::vector<std::uint64_t> activity_before_;
  // Per-shard busy wall time.  Written only by the single worker that
  // owns the shard's stride during a window; read between windows (the
  // barrier orders both), so no atomics are needed.
  std::vector<std::uint64_t> busy_ns_;
  // Link index -> shard indices of its endpoints (stats attribution).
  std::vector<std::pair<std::size_t, std::size_t>> link_shards_;

  // Worker pool: workers are started lazily on the first parallel
  // window and live until destruction.  A round is published under
  // mu_ (round_/round_target_) and completion is counted back in
  // running_; both condition variables establish the happens-before
  // edges the in-window / between-window access split relies on.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_go_;
  std::condition_variable cv_done_;
  std::uint64_t round_ = 0;
  std::uint64_t round_target_ps_ = 0;
  unsigned running_ = 0;
  bool shutdown_ = false;
  std::vector<std::exception_ptr> shard_errors_;
};

}  // namespace hlcs::sim
