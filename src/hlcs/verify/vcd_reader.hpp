// VCD reader and waveform comparison.
//
// The paper's step-3 validation was done by inspecting simulation
// waveforms (Figure 4).  This reader parses the VCD files the library
// writes (and any standard 4-state VCD), reconstructs per-signal value
// timelines, and supports queries ("value of FRAME_n at 1250 ns") and
// whole-waveform comparison -- so waveform-level consistency checking is
// a test, not an eyeball.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hlcs/sim/assert.hpp"

namespace hlcs::verify {

struct VcdChange {
  std::uint64_t time_ps;
  std::string value;  ///< MSB-first, chars 0/1/x/z
};

struct VcdSignal {
  std::string name;
  unsigned width = 1;
  std::vector<VcdChange> changes;  ///< sorted by time

  /// Value at time t (last change at or before t); empty before the
  /// first change.
  std::string value_at(std::uint64_t t_ps) const {
    std::string v;
    for (const VcdChange& c : changes) {
      if (c.time_ps > t_ps) break;
      v = c.value;
    }
    return v;
  }

  std::size_t transitions() const {
    return changes.empty() ? 0 : changes.size() - 1;
  }
};

class VcdFile {
public:
  /// Parse from text; throws hlcs::Error on malformed input.
  static VcdFile parse(const std::string& text);
  /// Parse a file from disk.
  static VcdFile load(const std::string& path);

  const VcdSignal& signal(const std::string& name) const;
  bool has_signal(const std::string& name) const;
  std::vector<std::string> signal_names() const;
  std::uint64_t end_time_ps() const { return end_time_ps_; }
  unsigned timescale_ps() const { return timescale_ps_; }

private:
  std::map<std::string, VcdSignal> by_name_;  // keyed by signal name
  std::uint64_t end_time_ps_ = 0;
  unsigned timescale_ps_ = 1;
};

struct WaveCompareResult {
  bool equal = true;
  std::string first_difference;
  std::size_t signals_compared = 0;

  explicit operator bool() const { return equal; }
};

/// Compare two waveforms on the signals present in BOTH files, sampling
/// at every change point of either.  `sample_period_ps` > 0 restricts
/// comparison to multiples of that period (e.g. compare at clock edges
/// only, ignoring sub-cycle glitches).
WaveCompareResult compare_waves(const VcdFile& a, const VcdFile& b,
                                std::uint64_t sample_period_ps = 0);

}  // namespace hlcs::verify
