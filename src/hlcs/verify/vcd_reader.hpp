// VCD reader and waveform comparison.
//
// The paper's step-3 validation was done by inspecting simulation
// waveforms (Figure 4).  This reader parses the VCD files the library
// writes (and any standard 4-state VCD), reconstructs per-signal value
// timelines, and supports queries ("value of FRAME_n at 1250 ns") and
// whole-waveform comparison -- so waveform-level consistency checking is
// a test, not an eyeball.
//
// Parsing is a single zero-copy pass: the tokenizer hands out
// string_views into the loaded text and every change is stored as a
// packed sim::TraceValue (two bit-planes, inline up to 64 bits) keyed by
// a parallel time array -- no per-change heap string.  Values are
// normalised to the declared signal width with the canonical VCD
// left-extension rule, so "b1010" and "b00001010" read back identically
// for an 8-bit var.  For RTL-vs-behavioural consistency checks that do
// not need random access, compare_vcd_files() walks two dumps
// change-by-change holding only the current value per common signal
// instead of materialising both full timelines.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hlcs/sim/assert.hpp"
#include "hlcs/sim/trace.hpp"

namespace hlcs::verify {

struct VcdSignal {
  std::string name;
  unsigned width = 1;
  /// Change history: times_ps is sorted (duplicates allowed -- several
  /// delta-cycle changes can land on one instant; the last one wins) and
  /// values runs parallel to it.
  std::vector<std::uint64_t> times_ps;
  std::vector<sim::TraceValue> values;

  /// Packed value at time t (last change at or before t); nullptr before
  /// the first change.  O(log changes).
  const sim::TraceValue* packed_at(std::uint64_t t_ps) const;

  /// Value at time t rendered MSB-first with chars 0/1/x/z; empty string
  /// before the first change.
  std::string value_at(std::uint64_t t_ps) const {
    const sim::TraceValue* v = packed_at(t_ps);
    return v ? v->to_string() : std::string();
  }

  std::size_t num_changes() const { return times_ps.size(); }
  std::size_t transitions() const {
    return times_ps.empty() ? 0 : times_ps.size() - 1;
  }
};

class VcdFile {
public:
  /// Parse from text; throws hlcs::Error on malformed input.
  static VcdFile parse(const std::string& text);
  /// Parse a file from disk.
  static VcdFile load(const std::string& path);

  const VcdSignal& signal(const std::string& name) const;
  bool has_signal(const std::string& name) const;
  std::vector<std::string> signal_names() const;
  std::uint64_t end_time_ps() const { return end_time_ps_; }
  unsigned timescale_ps() const { return timescale_ps_; }

private:
  std::map<std::string, VcdSignal, std::less<>> by_name_;
  std::uint64_t end_time_ps_ = 0;
  unsigned timescale_ps_ = 1;
};

struct WaveCompareResult {
  bool equal = true;
  std::string first_difference;
  std::size_t signals_compared = 0;

  explicit operator bool() const { return equal; }
};

/// Compare two waveforms on the signals present in BOTH files, sampling
/// at every change point of either.  `sample_period_ps` > 0 restricts
/// comparison to multiples of that period (e.g. compare at clock edges
/// only, ignoring sub-cycle glitches).
WaveCompareResult compare_waves(const VcdFile& a, const VcdFile& b,
                                std::uint64_t sample_period_ps = 0);

/// Streaming variant of compare_waves for whole files: tokenizes both
/// dumps in one pass, keeps only the current value per common signal,
/// and stops at the first difference.  Same comparison semantics as
/// compare_waves (common signals, union of change instants, optional
/// sampling grid); signals_compared reports the number of common signals.
/// Throws hlcs::Error if either file is missing or malformed.
WaveCompareResult compare_vcd_files(const std::string& path_a,
                                    const std::string& path_b,
                                    std::uint64_t sample_period_ps = 0);

}  // namespace hlcs::verify
