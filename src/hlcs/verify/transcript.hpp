// Application-level transcripts: the observable behaviour of an
// application against a bus interface, recorded at the command/response
// boundary.  Two models are behaviourally consistent (paper Sec. 3,
// step 3) when their transcripts agree on everything except timing.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "hlcs/pattern/command.hpp"
#include "hlcs/sim/time.hpp"

namespace hlcs::verify {

struct TranscriptEntry {
  std::uint64_t id = 0;
  pattern::BusOp op = pattern::BusOp::Read;
  std::uint32_t addr = 0;
  std::vector<std::uint32_t> data;  ///< written payload or read result
  pci::PciResult status = pci::PciResult::Ok;
  sim::Time issued;
  sim::Time completed;
};

class Transcript {
public:
  void record(const pattern::CommandType& cmd,
              const pattern::ResponseType& resp, sim::Time issued,
              sim::Time completed) {
    TranscriptEntry e;
    e.id = resp.id;
    e.op = cmd.op;
    e.addr = cmd.addr;
    e.data = pattern::op_is_read(cmd.op) ? resp.data : cmd.data;
    e.status = resp.status;
    e.issued = issued;
    e.completed = completed;
    entries_.push_back(std::move(e));
  }

  const std::vector<TranscriptEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// Total simulated time from first issue to last completion.
  sim::Time span() const {
    if (entries_.empty()) return sim::Time::zero();
    return entries_.back().completed - entries_.front().issued;
  }

  std::string to_string() const {
    std::ostringstream os;
    for (const TranscriptEntry& e : entries_) {
      os << "#" << e.id << " " << pattern::to_string(e.op) << " @0x"
         << std::hex << e.addr << std::dec << " [";
      for (std::size_t i = 0; i < e.data.size(); ++i) {
        if (i) os << ",";
        os << std::hex << e.data[i] << std::dec;
      }
      os << "] " << pci::to_string(e.status) << " ("
         << e.issued.to_string() << ".." << e.completed.to_string() << ")\n";
    }
    return os.str();
  }

private:
  std::vector<TranscriptEntry> entries_;
};

}  // namespace hlcs::verify
