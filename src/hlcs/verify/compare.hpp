// Transcript comparison: the mechanised form of the paper's step 3
// ("the resulting model was again simulated to check behavior
// consistency with the original model").  Functional equivalence ignores
// timing; the timing report quantifies the cost delta between
// abstraction levels.  The waveform-level (Figure 4) counterpart lives
// in vcd_reader.hpp: compare_waves over parsed files, and the streaming
// compare_vcd_files that checks two dumps change-by-change without
// materialising either timeline.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "hlcs/verify/transcript.hpp"

namespace hlcs::verify {

struct CompareResult {
  bool equal = true;
  std::size_t compared = 0;
  std::string first_difference;  ///< empty when equal

  explicit operator bool() const { return equal; }
};

/// Functional equivalence: same operations, addresses, data and statuses
/// in the same order; timing is ignored (abstraction levels differ).
inline CompareResult compare_functional(const Transcript& a,
                                        const Transcript& b) {
  CompareResult r;
  auto diff = [&](std::size_t i, const std::string& what) {
    r.equal = false;
    r.first_difference = "entry " + std::to_string(i) + ": " + what;
  };
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const TranscriptEntry& ea = a.entries()[i];
    const TranscriptEntry& eb = b.entries()[i];
    if (ea.op != eb.op) {
      diff(i, std::string("op ") + pattern::to_string(ea.op) + " vs " +
                  pattern::to_string(eb.op));
      return r;
    }
    if (ea.addr != eb.addr) {
      diff(i, "addr mismatch");
      return r;
    }
    if (ea.status != eb.status) {
      diff(i, std::string("status ") + pci::to_string(ea.status) + " vs " +
                  pci::to_string(eb.status));
      return r;
    }
    if (ea.data != eb.data) {
      diff(i, "data mismatch");
      return r;
    }
    ++r.compared;
  }
  if (a.size() != b.size()) {
    diff(n, "length " + std::to_string(a.size()) + " vs " +
                std::to_string(b.size()));
  }
  return r;
}

struct TimingReport {
  sim::Time span_a;
  sim::Time span_b;
  double slowdown_b_over_a = 0.0;
  std::uint64_t mean_latency_ps_a = 0;
  std::uint64_t mean_latency_ps_b = 0;

  std::string to_string() const {
    std::ostringstream os;
    os << "span " << span_a.to_string() << " vs " << span_b.to_string()
       << " (x" << slowdown_b_over_a << "), mean latency "
       << mean_latency_ps_a << "ps vs " << mean_latency_ps_b << "ps";
    return os.str();
  }
};

inline TimingReport compare_timing(const Transcript& a, const Transcript& b) {
  TimingReport t;
  t.span_a = a.span();
  t.span_b = b.span();
  if (t.span_a.picos() > 0) {
    t.slowdown_b_over_a = static_cast<double>(t.span_b.picos()) /
                          static_cast<double>(t.span_a.picos());
  }
  auto mean_latency = [](const Transcript& tr) -> std::uint64_t {
    if (tr.empty()) return 0;
    std::uint64_t sum = 0;
    for (const TranscriptEntry& e : tr.entries()) {
      sum += (e.completed - e.issued).picos();
    }
    return sum / tr.size();
  };
  t.mean_latency_ps_a = mean_latency(a);
  t.mean_latency_ps_b = mean_latency(b);
  return t;
}

}  // namespace hlcs::verify
