#include "hlcs/verify/vcd_reader.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <string_view>

namespace hlcs::verify {

namespace {

/// Single-pass whitespace tokenizer: hands out views into the loaded
/// text, never copies a token.
struct Cursor {
  std::string_view text;
  std::size_t i = 0;

  std::string_view next() {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i >= text.size()) return {};
    const std::size_t s = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    return text.substr(s, i - s);
  }
};

std::uint64_t parse_u64(std::string_view s, const char* what) {
  std::uint64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) {
    fail(std::string("VCD: bad number in ") + what + ": " + std::string(s));
  }
  return v;
}

/// 2-bit code for a VCD value character; 0xFF for anything else.
std::uint8_t code_of(char ch) {
  switch (ch) {
    case '0': return 0;
    case '1': return 1;
    case 'z': case 'Z': return 2;
    case 'x': case 'X': return 3;
    default: return 0xFF;
  }
}

/// Pack a value token (MSB-first chars) into `v` at the declared signal
/// width, applying the canonical VCD left-extension rule: shorter tokens
/// extend with '0', except an x/z MSB which extends with itself.
void pack_token(sim::TraceValue& v, std::string_view tok, unsigned width) {
  if (tok.empty()) fail("VCD: empty value");
  if (tok.size() > width) {
    fail("VCD: value " + std::string(tok) + " wider than declared width " +
         std::to_string(width));
  }
  v.reset(width);
  const unsigned n = static_cast<unsigned>(tok.size());
  for (unsigned j = 0; j < n; ++j) {
    const std::uint8_t code = code_of(tok[n - 1 - j]);
    if (code == 0xFF) {
      fail("VCD: bad value character in " + std::string(tok));
    }
    if (code != 0) v.set_code(j, code);
  }
  if (n < width) {
    const std::uint8_t ext = code_of(tok[0]);
    if (ext >= 2) {
      for (unsigned j = n; j < width; ++j) v.set_code(j, ext);
    }
  }
}

bool is_scalar_value_char(char c) {
  return c == '0' || c == '1' || c == 'x' || c == 'X' || c == 'z' || c == 'Z';
}

bool is_dump_directive(std::string_view w) {
  return w == "$dumpvars" || w == "$dumpall" || w == "$dumpon" ||
         w == "$dumpoff";
}

struct VarDecl {
  std::string name;  // scope-qualified ("pci.AD")
  std::string id;    // VCD identifier code
  unsigned width = 1;
};

struct Header {
  unsigned timescale_ps = 1;
  std::vector<VarDecl> vars;  // in declaration order
};

void skip_to_end(Cursor& c) {
  for (std::string_view w = c.next(); !w.empty() && w != "$end";
       w = c.next()) {
  }
}

/// Parse the declaration section, leaving the cursor at the first dump
/// token.  Shared by VcdFile::parse and the streaming comparator.
Header parse_header(Cursor& c) {
  Header h;
  std::vector<std::string_view> scope_stack;
  for (;;) {
    const std::string_view w = c.next();
    if (w.empty()) break;
    if (w == "$enddefinitions") {
      skip_to_end(c);
      break;
    }
    if (w == "$timescale") {
      std::string spec;
      for (std::string_view t = c.next(); !t.empty() && t != "$end";
           t = c.next()) {
        spec += t;
      }
      // Accept "1ps", "1ns", "10ps" etc.
      std::size_t p = 0;
      unsigned mul = 0;
      while (p < spec.size() &&
             std::isdigit(static_cast<unsigned char>(spec[p]))) {
        mul = mul * 10 + static_cast<unsigned>(spec[p] - '0');
        ++p;
      }
      const std::string unit = spec.substr(p);
      unsigned unit_ps = 1;
      if (unit == "ps") unit_ps = 1;
      else if (unit == "ns") unit_ps = 1000;
      else if (unit == "us") unit_ps = 1000000;
      else fail("VCD: unsupported timescale unit " + unit);
      h.timescale_ps = (mul ? mul : 1) * unit_ps;
      continue;
    }
    if (w == "$scope") {
      c.next();  // scope kind (module)
      const std::string_view name = c.next();
      if (name.empty()) fail("VCD: truncated scope name");
      scope_stack.push_back(name);
      if (c.next() != "$end") fail("VCD: malformed $scope");
      continue;
    }
    if (w == "$upscope") {
      if (!scope_stack.empty()) scope_stack.pop_back();
      c.next();  // $end
      continue;
    }
    if (w == "$var") {
      c.next();  // var type (wire/reg)
      const std::string_view width_tok = c.next();
      if (width_tok.empty()) fail("VCD: truncated var width");
      const unsigned width =
          static_cast<unsigned>(parse_u64(width_tok, "var width"));
      const std::string_view id = c.next();
      if (id.empty()) fail("VCD: truncated var id");
      std::string name;
      const std::string_view name_tok = c.next();
      if (name_tok.empty()) fail("VCD: truncated var name");
      name = name_tok;
      // Optional bit-range token like [7:0] before $end.
      for (std::string_view t = c.next(); !t.empty() && t != "$end";
           t = c.next()) {
        name += t;
      }
      // Qualify with the enclosing scope path so hierarchical traces
      // round-trip ("pci" scope + "AD" leaf -> "pci.AD").
      std::string full;
      for (const std::string_view sc : scope_stack) {
        full += sc;
        full += '.';
      }
      full += name;
      h.vars.push_back(VarDecl{std::move(full), std::string(id), width});
      continue;
    }
    if (w == "$date" || w == "$version" || w == "$comment") {
      skip_to_end(c);
      continue;
    }
    fail("VCD: unexpected token in header: " + std::string(w));
  }
  return h;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("VCD: cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

const sim::TraceValue* VcdSignal::packed_at(std::uint64_t t_ps) const {
  const auto it = std::upper_bound(times_ps.begin(), times_ps.end(), t_ps);
  if (it == times_ps.begin()) return nullptr;
  return &values[static_cast<std::size_t>(it - times_ps.begin()) - 1];
}

VcdFile VcdFile::parse(const std::string& text) {
  VcdFile f;
  Cursor c{text};
  const Header h = parse_header(c);
  f.timescale_ps_ = h.timescale_ps;

  std::map<std::string, VcdSignal*, std::less<>> by_id;
  for (const VarDecl& v : h.vars) {
    VcdSignal sig;
    sig.name = v.name;
    sig.width = v.width;
    const auto [it, inserted] = f.by_name_.emplace(v.name, std::move(sig));
    if (!inserted) fail("VCD: duplicate signal name " + v.name);
    by_id[v.id] = &it->second;
  }

  // --- value changes ------------------------------------------------------
  std::uint64_t now = 0;
  for (;;) {
    const std::string_view w = c.next();
    if (w.empty()) break;
    if (w[0] == '#') {
      now = parse_u64(w.substr(1), "time marker") * f.timescale_ps_;
      f.end_time_ps_ = std::max(f.end_time_ps_, now);
      continue;
    }
    if (is_dump_directive(w) || w == "$end") continue;
    std::string_view value_tok;
    std::string_view id;
    if (w[0] == 'b' || w[0] == 'B') {
      value_tok = w.substr(1);
      id = c.next();
      if (id.empty()) fail("VCD: truncated vector id");
    } else if (is_scalar_value_char(w[0])) {
      value_tok = w.substr(0, 1);
      id = w.substr(1);
    } else {
      fail("VCD: unexpected token in dump: " + std::string(w));
    }
    const auto it = by_id.find(id);
    if (it == by_id.end()) {
      fail("VCD: change for unknown id " + std::string(id));
    }
    VcdSignal& sig = *it->second;
    sig.times_ps.push_back(now);
    sig.values.emplace_back();
    pack_token(sig.values.back(), value_tok, sig.width);
  }
  return f;
}

VcdFile VcdFile::load(const std::string& path) { return parse(read_file(path)); }

const VcdSignal& VcdFile::signal(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) fail("VCD: no signal named " + name);
  return it->second;
}

bool VcdFile::has_signal(const std::string& name) const {
  return by_name_.count(name) != 0;
}

std::vector<std::string> VcdFile::signal_names() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [n, s] : by_name_) names.push_back(n);
  return names;
}

namespace {

std::string diff_message(const std::string& name, std::uint64_t t,
                         const sim::TraceValue* va,
                         const sim::TraceValue* vb) {
  return name + " differs at " + std::to_string(t) + "ps: '" +
         (va ? va->to_string() : std::string()) + "' vs '" +
         (vb ? vb->to_string() : std::string()) + "'";
}

}  // namespace

WaveCompareResult compare_waves(const VcdFile& a, const VcdFile& b,
                                std::uint64_t sample_period_ps) {
  WaveCompareResult r;
  for (const std::string& name : a.signal_names()) {
    if (!b.has_signal(name)) continue;
    const VcdSignal& sa = a.signal(name);
    const VcdSignal& sb = b.signal(name);
    if (sa.width != sb.width) {
      r.equal = false;
      r.first_difference = name + ": width differs";
      return r;
    }
    // Merge-walk the two change timelines, comparing the current values
    // at every instant either side changed (filtered to the sampling
    // grid if given).  Several same-instant changes collapse to the
    // last one, matching the emitter's delta-cycle behaviour.
    const std::size_t na = sa.times_ps.size(), nb = sb.times_ps.size();
    std::size_t ia = 0, ib = 0;
    const sim::TraceValue* va = nullptr;
    const sim::TraceValue* vb = nullptr;
    while (ia < na || ib < nb) {
      constexpr auto kInf = ~0ull;
      const std::uint64_t t = std::min(ia < na ? sa.times_ps[ia] : kInf,
                                       ib < nb ? sb.times_ps[ib] : kInf);
      while (ia < na && sa.times_ps[ia] == t) va = &sa.values[ia++];
      while (ib < nb && sb.times_ps[ib] == t) vb = &sb.values[ib++];
      if (sample_period_ps != 0 && t % sample_period_ps != 0) continue;
      const bool eq = (va && vb) ? *va == *vb : va == vb;
      if (!eq) {
        r.equal = false;
        r.first_difference = diff_message(name, t, va, vb);
        return r;
      }
    }
    ++r.signals_compared;
  }
  return r;
}

namespace {

/// A signal present in both files under comparison: the only per-signal
/// state the streaming walk keeps is the current value on each side.
struct CommonSig {
  std::string name;
  unsigned width = 1;
  sim::TraceValue cur[2];
  bool has[2] = {false, false};
  std::uint32_t touch_epoch = 0;
};

/// Applies one file's dump section block-by-block ("block" = all changes
/// at one time marker), updating only the common signals' current values.
class DumpWalker {
public:
  DumpWalker(Cursor c, unsigned timescale_ps,
             std::map<std::string, std::int32_t, std::less<>> ids, int side,
             std::vector<CommonSig>& common)
      : c_(c),
        ids_(std::move(ids)),
        common_(common),
        timescale_ps_(timescale_ps),
        side_(side) {
    pend_ = c_.next();
    prime();
  }

  bool done() const { return done_; }
  std::uint64_t time() const { return time_ps_; }

  /// Apply every change of the pending block, recording the touched
  /// common-signal indices (deduplicated via `epoch`), then advance to
  /// the next block.
  void apply_block(std::vector<std::uint32_t>& touched, std::uint32_t epoch) {
    while (!pend_.empty() && pend_[0] != '#') {
      const std::string_view w = pend_;
      if (is_dump_directive(w) || w == "$end") {
        pend_ = c_.next();
        continue;
      }
      std::string_view value_tok;
      std::string_view id;
      if (w[0] == 'b' || w[0] == 'B') {
        value_tok = w.substr(1);
        id = c_.next();
        if (id.empty()) fail("VCD: truncated vector id");
      } else if (is_scalar_value_char(w[0])) {
        value_tok = w.substr(0, 1);
        id = w.substr(1);
      } else {
        fail("VCD: unexpected token in dump: " + std::string(w));
      }
      apply(value_tok, id, touched, epoch);
      pend_ = c_.next();
    }
    prime();
  }

private:
  void prime() {
    for (;;) {
      if (pend_.empty()) {
        done_ = true;
        return;
      }
      if (pend_[0] == '#') {
        time_ps_ = parse_u64(pend_.substr(1), "time marker") * timescale_ps_;
        pend_ = c_.next();
        continue;
      }
      return;
    }
  }

  void apply(std::string_view value_tok, std::string_view id,
             std::vector<std::uint32_t>& touched, std::uint32_t epoch) {
    const auto it = ids_.find(id);
    if (it == ids_.end()) {
      fail("VCD: change for unknown id " + std::string(id));
    }
    if (it->second < 0) return;  // declared, but not common to both files
    const auto ci = static_cast<std::uint32_t>(it->second);
    CommonSig& s = common_[ci];
    pack_token(s.cur[side_], value_tok, s.width);
    s.has[side_] = true;
    if (s.touch_epoch != epoch) {
      s.touch_epoch = epoch;
      touched.push_back(ci);
    }
  }

  Cursor c_;
  std::map<std::string, std::int32_t, std::less<>> ids_;
  std::vector<CommonSig>& common_;
  std::string_view pend_;
  std::uint64_t time_ps_ = 0;
  unsigned timescale_ps_ = 1;
  int side_ = 0;
  bool done_ = false;
};

}  // namespace

WaveCompareResult compare_vcd_files(const std::string& path_a,
                                    const std::string& path_b,
                                    std::uint64_t sample_period_ps) {
  const std::string text_a = read_file(path_a);
  const std::string text_b = read_file(path_b);
  Cursor ca{text_a};
  Cursor cb{text_b};
  const Header ha = parse_header(ca);
  const Header hb = parse_header(cb);

  WaveCompareResult r;
  std::map<std::string_view, const VarDecl*> b_by_name;
  for (const VarDecl& v : hb.vars) {
    if (!b_by_name.emplace(v.name, &v).second) {
      fail("VCD: duplicate signal name " + v.name);
    }
  }
  std::vector<CommonSig> common;
  std::map<std::string, std::int32_t, std::less<>> ids_a, ids_b;
  std::map<std::string_view, std::uint32_t> index_of;
  for (const VarDecl& v : ha.vars) {
    if (!index_of.emplace(v.name, 0).second) {
      fail("VCD: duplicate signal name " + v.name);
    }
    const auto bit = b_by_name.find(v.name);
    if (bit == b_by_name.end()) {
      ids_a[v.id] = -1;
      continue;
    }
    if (v.width != bit->second->width) {
      r.equal = false;
      r.first_difference = v.name + ": width differs";
      return r;
    }
    const auto ci = static_cast<std::uint32_t>(common.size());
    common.push_back(CommonSig{v.name, v.width, {}, {false, false}, 0});
    ids_a[v.id] = static_cast<std::int32_t>(ci);
    ids_b[bit->second->id] = static_cast<std::int32_t>(ci);
  }
  for (const VarDecl& v : hb.vars) {
    if (!ids_b.count(v.id)) ids_b[v.id] = -1;
  }

  DumpWalker wa(ca, ha.timescale_ps, std::move(ids_a), 0, common);
  DumpWalker wb(cb, hb.timescale_ps, std::move(ids_b), 1, common);
  std::vector<std::uint32_t> touched;
  std::uint32_t epoch = 0;
  while (!wa.done() || !wb.done()) {
    constexpr auto kInf = ~0ull;
    const std::uint64_t t = std::min(wa.done() ? kInf : wa.time(),
                                     wb.done() ? kInf : wb.time());
    ++epoch;
    touched.clear();
    if (!wa.done() && wa.time() == t) wa.apply_block(touched, epoch);
    if (!wb.done() && wb.time() == t) wb.apply_block(touched, epoch);
    if (sample_period_ps != 0 && t % sample_period_ps != 0) continue;
    std::sort(touched.begin(), touched.end());
    for (const std::uint32_t ci : touched) {
      const CommonSig& s = common[ci];
      const sim::TraceValue* va = s.has[0] ? &s.cur[0] : nullptr;
      const sim::TraceValue* vb = s.has[1] ? &s.cur[1] : nullptr;
      const bool eq = (va && vb) ? *va == *vb : va == vb;
      if (!eq) {
        r.equal = false;
        r.first_difference = diff_message(s.name, t, va, vb);
        return r;
      }
    }
  }
  r.signals_compared = common.size();
  return r;
}

}  // namespace hlcs::verify
