#include "hlcs/verify/vcd_reader.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace hlcs::verify {

namespace {

/// Split a VCD stream into whitespace-separated words.
std::vector<std::string> words_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string w;
  while (is >> w) out.push_back(w);
  return out;
}

}  // namespace

VcdFile VcdFile::parse(const std::string& text) {
  VcdFile f;
  const std::vector<std::string> words = words_of(text);
  std::size_t i = 0;
  auto need = [&](const char* what) -> const std::string& {
    if (i >= words.size()) fail(std::string("VCD: truncated ") + what);
    return words[i];
  };

  std::map<std::string, VcdSignal*> by_id;
  std::vector<std::string> scope_stack;

  // --- header -------------------------------------------------------------
  while (i < words.size()) {
    const std::string& w = words[i];
    if (w == "$enddefinitions") {
      // consume through $end
      while (i < words.size() && words[i] != "$end") ++i;
      ++i;
      break;
    }
    if (w == "$timescale") {
      ++i;
      std::string spec;
      while (i < words.size() && words[i] != "$end") spec += words[i++];
      ++i;
      // Accept "1ps", "1ns", "10ps" etc.
      std::size_t p = 0;
      unsigned mul = 0;
      while (p < spec.size() && std::isdigit(static_cast<unsigned char>(spec[p]))) {
        mul = mul * 10 + static_cast<unsigned>(spec[p] - '0');
        ++p;
      }
      const std::string unit = spec.substr(p);
      unsigned unit_ps = 1;
      if (unit == "ps") unit_ps = 1;
      else if (unit == "ns") unit_ps = 1000;
      else if (unit == "us") unit_ps = 1000000;
      else fail("VCD: unsupported timescale unit " + unit);
      f.timescale_ps_ = (mul ? mul : 1) * unit_ps;
      continue;
    }
    if (w == "$scope") {
      ++i;
      ++i;  // scope kind (module)
      scope_stack.push_back(need("scope name"));
      ++i;
      if (need("$end") != "$end") fail("VCD: malformed $scope");
      ++i;
      continue;
    }
    if (w == "$upscope") {
      if (!scope_stack.empty()) scope_stack.pop_back();
      i += 2;  // $upscope $end
      continue;
    }
    if (w == "$var") {
      ++i;
      ++i;  // var type (wire/reg)
      const unsigned width =
          static_cast<unsigned>(std::stoul(need("var width")));
      ++i;
      const std::string id = need("var id");
      ++i;
      std::string name = need("var name");
      ++i;
      // Optional bit-range token like [7:0] before $end.
      while (i < words.size() && words[i] != "$end") {
        name += words[i];
        ++i;
      }
      ++i;  // $end
      // Qualify with the enclosing scope path so hierarchical traces
      // round-trip ("pci" scope + "AD" leaf -> "pci.AD").
      std::string full;
      for (const std::string& sc : scope_stack) full += sc + ".";
      full += name;
      name = std::move(full);
      VcdSignal sig;
      sig.name = name;
      sig.width = width;
      auto [it, inserted] = f.by_name_.emplace(name, std::move(sig));
      if (!inserted) fail("VCD: duplicate signal name " + name);
      by_id[id] = &it->second;
      continue;
    }
    if (w == "$date" || w == "$version" || w == "$comment") {
      ++i;
      while (i < words.size() && words[i] != "$end") ++i;
      ++i;
      continue;
    }
    fail("VCD: unexpected token in header: " + w);
  }

  // --- value changes --------------------------------------------------------
  std::uint64_t now = 0;
  bool in_dump_block = false;
  while (i < words.size()) {
    const std::string& w = words[i];
    if (w.empty()) {
      ++i;
      continue;
    }
    if (w[0] == '#') {
      now = std::stoull(w.substr(1)) * f.timescale_ps_;
      f.end_time_ps_ = std::max(f.end_time_ps_, now);
      ++i;
      continue;
    }
    if (w == "$dumpvars" || w == "$dumpall" || w == "$dumpon" ||
        w == "$dumpoff") {
      in_dump_block = true;
      ++i;
      continue;
    }
    if (w == "$end") {
      in_dump_block = false;
      ++i;
      continue;
    }
    (void)in_dump_block;
    if (w[0] == 'b' || w[0] == 'B') {
      const std::string value = w.substr(1);
      ++i;
      const std::string& id = need("vector id");
      auto it = by_id.find(id);
      if (it == by_id.end()) fail("VCD: change for unknown id " + id);
      it->second->changes.push_back(VcdChange{now, value});
      ++i;
      continue;
    }
    // Scalar: value char + id glued together.
    const char v = w[0];
    if (v == '0' || v == '1' || v == 'x' || v == 'X' || v == 'z' ||
        v == 'Z') {
      const std::string id = w.substr(1);
      auto it = by_id.find(id);
      if (it == by_id.end()) fail("VCD: change for unknown id " + id);
      it->second->changes.push_back(
          VcdChange{now, std::string(1, static_cast<char>(std::tolower(v)))});
      ++i;
      continue;
    }
    fail("VCD: unexpected token in dump: " + w);
  }
  return f;
}

VcdFile VcdFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("VCD: cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

const VcdSignal& VcdFile::signal(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) fail("VCD: no signal named " + name);
  return it->second;
}

bool VcdFile::has_signal(const std::string& name) const {
  return by_name_.count(name) != 0;
}

std::vector<std::string> VcdFile::signal_names() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [n, s] : by_name_) names.push_back(n);
  return names;
}

WaveCompareResult compare_waves(const VcdFile& a, const VcdFile& b,
                                std::uint64_t sample_period_ps) {
  WaveCompareResult r;
  for (const std::string& name : a.signal_names()) {
    if (!b.has_signal(name)) continue;
    const VcdSignal& sa = a.signal(name);
    const VcdSignal& sb = b.signal(name);
    if (sa.width != sb.width) {
      r.equal = false;
      r.first_difference = name + ": width differs";
      return r;
    }
    // Union of change times (filtered to the sampling grid if given).
    std::vector<std::uint64_t> times;
    for (const VcdChange& c : sa.changes) times.push_back(c.time_ps);
    for (const VcdChange& c : sb.changes) times.push_back(c.time_ps);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    for (std::uint64_t t : times) {
      if (sample_period_ps != 0 && t % sample_period_ps != 0) continue;
      const std::string va = sa.value_at(t);
      const std::string vb = sb.value_at(t);
      if (va != vb) {
        r.equal = false;
        r.first_difference = name + " differs at " + std::to_string(t) +
                             "ps: '" + va + "' vs '" + vb + "'";
        return r;
      }
    }
    ++r.signals_compared;
  }
  return r;
}

}  // namespace hlcs::verify
