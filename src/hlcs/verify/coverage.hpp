// Lightweight functional coverage over transcripts and bus records:
// which operations, burst lengths, statuses and wait-state ranges the
// test set actually exercised.  The paper validates "at least with
// respect to the test set adopted" -- coverage makes that qualifier
// measurable.
#pragma once

#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include "hlcs/check/stats.hpp"
#include "hlcs/pci/pci_monitor.hpp"
#include "hlcs/verify/transcript.hpp"

namespace hlcs::verify {

class Coverage {
public:
  void observe(const Transcript& t) {
    for (const TranscriptEntry& e : t.entries()) {
      ops_[pattern::to_string(e.op)]++;
      statuses_[pci::to_string(e.status)]++;
      burst_bin(e.data.size());
    }
  }

  void observe(const std::vector<pci::BusRecord>& records) {
    for (const pci::BusRecord& r : records) {
      pci_cmds_[pci::to_string(r.cmd)]++;
      statuses_[pci::to_string(r.result())]++;
      burst_bin(r.words.size());
      wait_bin(r.wait_cycles);
    }
  }

  /// Property outcomes from a check monitor: per-property
  /// attempt/pass/fail/vacuous bins.  "Validated with respect to the
  /// test set" now includes which assertions the set exercised
  /// non-vacuously.
  void observe(const check::CheckStats& cs) {
    for (const check::PropertyStats& p : cs.props) {
      PropertyBin& b = properties_[p.name];
      b.attempts += p.attempts;
      b.passes += p.passes;
      b.fails += p.fails;
      b.vacuous += p.vacuous;
    }
  }

  std::size_t distinct_ops() const { return ops_.size(); }
  std::size_t distinct_properties() const { return properties_.size(); }
  /// Properties whose antecedent actually fired at least once.
  std::size_t non_vacuous_properties() const {
    std::size_t n = 0;
    for (const auto& [k, b] : properties_) {
      (void)k;
      if (b.attempts > 0) ++n;
    }
    return n;
  }
  std::uint64_t property_attempts(const std::string& prop) const {
    auto it = properties_.find(prop);
    return it == properties_.end() ? 0 : it->second.attempts;
  }
  std::size_t distinct_pci_cmds() const { return pci_cmds_.size(); }
  std::size_t distinct_statuses() const { return statuses_.size(); }
  std::size_t distinct_burst_bins() const { return bursts_.size(); }
  std::uint64_t hits(const std::string& op) const {
    auto it = ops_.find(op);
    return it == ops_.end() ? 0 : it->second;
  }

  std::string report() const {
    std::ostringstream os;
    os << "ops:";
    for (const auto& [k, v] : ops_) os << " " << k << "=" << v;
    os << "\npci_cmds:";
    for (const auto& [k, v] : pci_cmds_) os << " " << k << "=" << v;
    os << "\nstatuses:";
    for (const auto& [k, v] : statuses_) os << " " << k << "=" << v;
    os << "\nburst_bins:";
    for (const auto& [k, v] : bursts_) os << " " << k << "=" << v;
    os << "\nwait_bins:";
    for (const auto& [k, v] : waits_) os << " " << k << "=" << v;
    os << "\nproperties:";
    for (const auto& [k, b] : properties_) {
      os << " " << k << "=" << b.attempts << "/" << b.passes << "/" << b.fails
         << "/" << b.vacuous;
    }
    return os.str();
  }

private:
  void burst_bin(std::size_t words) {
    if (words == 0) bursts_["0"]++;
    else if (words == 1) bursts_["1"]++;
    else if (words <= 4) bursts_["2-4"]++;
    else if (words <= 16) bursts_["5-16"]++;
    else bursts_["17+"]++;
  }
  void wait_bin(std::uint64_t waits) {
    if (waits == 0) waits_["0"]++;
    else if (waits <= 4) waits_["1-4"]++;
    else if (waits <= 16) waits_["5-16"]++;
    else waits_["17+"]++;
  }

  struct PropertyBin {
    std::uint64_t attempts = 0;
    std::uint64_t passes = 0;
    std::uint64_t fails = 0;
    std::uint64_t vacuous = 0;
  };

  std::map<std::string, std::uint64_t> ops_;
  std::map<std::string, PropertyBin> properties_;
  std::map<std::string, std::uint64_t> pci_cmds_;
  std::map<std::string, std::uint64_t> statuses_;
  std::map<std::string, std::uint64_t> bursts_;
  std::map<std::string, std::uint64_t> waits_;
};

}  // namespace hlcs::verify
