// Structural Verilog-2001 emission.  The output of the ODETTE flow was
// handed to a conventional "RTL to gate" synthesiser; emit_verilog()
// produces that hand-off artefact.  Every expression node becomes a
// named intermediate wire, which keeps the printer trivially correct at
// the cost of verbosity (downstream synthesis flattens it anyway).
#pragma once

#include <string>

#include "hlcs/synth/netlist.hpp"

namespace hlcs::synth {

/// Render the netlist as a self-contained synthesisable Verilog module
/// with ports `clk`, the netlist inputs, and the netlist outputs.
std::string emit_verilog(const Netlist& nl);

}  // namespace hlcs::synth
